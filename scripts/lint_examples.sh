#!/usr/bin/env bash
# Lint gate: run `fixq lint --format json` over every example query,
# check the JSON diagnostic schema with jq, and fail on any
# error-severity finding (the CLI exits non-zero exactly then, but we
# also assert it from the JSON so the schema and the exit code cannot
# drift apart silently).
set -euo pipefail

FIXQ=${FIXQ:-dune exec fixq --}
shopt -s nullglob
examples=(examples/*.xq)
if [ ${#examples[@]} -eq 0 ]; then
  echo "no example queries found" >&2
  exit 1
fi

for f in "${examples[@]}"; do
  echo "lint $f"
  out=$($FIXQ lint --format json "$f")

  # every diagnostic carries the full located shape with a stable code
  jq -e '
    .diagnostics | all(
      (.severity | IN("error", "warning", "info")) and
      (.code | test("^FQ[0-9]{3}$")) and
      (.line | type == "number") and
      (.col | type == "number") and
      (.context | type == "string") and
      (.message | type == "string"))' <<<"$out" >/dev/null

  # every IFP got a divergence verdict and both checker fields
  jq -e '
    .ifps | all(
      (.divergence | IN("terminates", "bounded", "may-diverge")) and
      (.syntactic | type == "boolean") and
      (.hint_repairable | type == "boolean"))' <<<"$out" >/dev/null

  # the error counter agrees with the per-diagnostic severities
  jq -e '.errors == ([.diagnostics[] | select(.severity == "error")] | length)' \
    <<<"$out" >/dev/null

  errors=$(jq '.errors' <<<"$out")
  if [ "$errors" -ne 0 ]; then
    echo "error-severity findings in $f:" >&2
    jq -r '.diagnostics[] | select(.severity == "error")
           | "  \(.line):\(.col) \(.code) \(.message)"' <<<"$out" >&2
    exit 1
  fi

  # the SARIF view carries the same findings in the 2.1.0 shape:
  # versioned log, one fixq driver run, every result a located FQ0xx
  sarif=$($FIXQ lint --format sarif "$f")
  jq -e '.version == "2.1.0" and (.runs | length == 1)
         and .runs[0].tool.driver.name == "fixq"' <<<"$sarif" >/dev/null
  jq -e '
    .runs[0].results | all(
      (.ruleId | test("^FQ[0-9]{3}$")) and
      (.level | IN("error", "warning", "note")) and
      (.message.text | type == "string") and
      (.locations[0].physicalLocation.artifactLocation.uri
         | type == "string") and
      (.locations[0].physicalLocation.region.startLine
         | type == "number"))' <<<"$sarif" >/dev/null
  # every reported ruleId is declared in the driver's rule table
  jq -e '(.runs[0].tool.driver.rules | map(.id)) as $ids
         | .runs[0].results | all(.ruleId | IN($ids[]))' <<<"$sarif" >/dev/null
  # JSON and SARIF agree on the number of findings
  jq -e --argjson n "$(jq '.diagnostics | length' <<<"$out")" \
    '.runs[0].results | length == $n' <<<"$sarif" >/dev/null
done

echo "all ${#examples[@]} example queries lint clean"
