#!/usr/bin/env bash
# Chaos smoke: replay fixed fault-injection seeds against an XMark
# closure through a live fixq cluster. Fails on any coordinator crash,
# missing answer, result divergence from the fault-free single-process
# run, or a schedule that injected too few faults to mean anything.
# Event logs land in $OUT_DIR (default ./chaos-smoke) for CI artifact
# upload.
set -euo pipefail

FIXQ=${FIXQ:-dune exec fixq --}
OUT=${OUT_DIR:-chaos-smoke}
SEEDS=(11 23 42)
RUNS=8
mkdir -p "$OUT"

LOAD='{"op":"load-doc","id":1,"uri":"x.xml","generate":"xmark","size":0.002}'
QUERY='{"op":"run","id":2,"query":"with $x seeded by doc(\"x.xml\")/site/* recurse $x/*","cache":false}'

# fault-free reference result
printf '%s\n' "$LOAD" "$QUERY" '{"op":"shutdown"}' \
  | $FIXQ serve --pipe \
  | sed -n 's/.*"result":"\([^"]*\)".*/\1/p' > "$OUT/reference.txt"
[ -s "$OUT/reference.txt" ] \
  || { echo "chaos-smoke: reference run produced no result" >&2; exit 1; }

total_events=0
for seed in "${SEEDS[@]}"; do
  D=$(mktemp -d /tmp/fixq-smoke-XXXXXX)
  LOG="$OUT/chaos-seed-$seed.log"
  : > "$LOG"
  # Parity-safe faults only: connection drops (retried / failed over),
  # dropped scatter legs (reroute whole), and delays. Caps keep any
  # single request's worst case inside the retry budget.
  SCHEDULE="seed=$seed"
  SCHEDULE="$SCHEDULE,transport.send=drop:0.2#4,transport.recv=drop:0.2#4"
  SCHEDULE="$SCHEDULE,coordinator.scatter=drop:0.3#3"
  SCHEDULE="$SCHEDULE,server.handle=delay1#6,fixpoint.round=delay1#8"

  $FIXQ cluster --socket "$D/c.sock" --workers 2 --replication 2 \
    --worker-dir "$D/w" --health-interval-ms 3600000 \
    --chaos "$SCHEDULE" --chaos-log "$LOG" 2>"$D/cluster.err" &
  CLUSTER_PID=$!
  for i in $(seq 150); do [ -S "$D/c.sock" ] && break; sleep 0.1; done
  [ -S "$D/c.sock" ] || {
    echo "chaos-smoke: cluster did not come up (seed $seed)" >&2
    cat "$D/cluster.err" >&2
    exit 1
  }

  echo "$LOAD" | $FIXQ client -s "$D/c.sock" | grep -q '"ok":true' \
    || { echo "chaos-smoke: load-doc failed (seed $seed)" >&2; exit 1; }

  : > "$D/runs.txt"
  for i in $(seq $RUNS); do
    echo "$QUERY" | $FIXQ client -s "$D/c.sock" \
      | sed -n 's/.*"result":"\([^"]*\)".*/\1/p' >> "$D/runs.txt"
  done

  echo '{"op":"shutdown"}' | $FIXQ client -s "$D/c.sock" | grep -q '"ok":true' \
    || { echo "chaos-smoke: coordinator crashed under seed $seed" >&2; exit 1; }
  wait "$CLUSTER_PID" || true

  [ "$(wc -l < "$D/runs.txt")" -eq "$RUNS" ] \
    || { echo "chaos-smoke: dropped answers under seed $seed" >&2; exit 1; }
  sort -u "$D/runs.txt" | cmp -s - "$OUT/reference.txt" \
    || { echo "chaos-smoke: divergent result under seed $seed" >&2; exit 1; }

  events=$(wc -l < "$LOG")
  echo "chaos-smoke: seed $seed ok ($events faults injected, $RUNS runs byte-identical)"
  total_events=$((total_events + events))
  rm -rf "$D"
done

[ "$total_events" -ge 20 ] \
  || { echo "chaos-smoke: only $total_events faults injected (want >= 20)" >&2; exit 1; }
echo "chaos-smoke: PASS ($total_events faults across ${#SEEDS[@]} seeds)"
