#!/usr/bin/env bash
# Chaos smoke: replay fixed fault-injection seeds against an XMark
# closure through a live fixq cluster. Fails on any coordinator crash,
# missing answer, result divergence from the fault-free single-process
# run, or a schedule that injected too few faults to mean anything.
# Event logs land in $OUT_DIR (default ./chaos-smoke) for CI artifact
# upload.
set -euo pipefail

FIXQ=${FIXQ:-dune exec fixq --}
OUT=${OUT_DIR:-chaos-smoke}
SEEDS=(11 23 42)
RUNS=8
mkdir -p "$OUT"

LOAD='{"op":"load-doc","id":1,"uri":"x.xml","generate":"xmark","size":0.002}'
QUERY='{"op":"run","id":2,"query":"with $x seeded by doc(\"x.xml\")/site/* recurse $x/*","cache":false}'

# fault-free reference result
printf '%s\n' "$LOAD" "$QUERY" '{"op":"shutdown"}' \
  | $FIXQ serve --pipe \
  | sed -n 's/.*"result":"\([^"]*\)".*/\1/p' > "$OUT/reference.txt"
[ -s "$OUT/reference.txt" ] \
  || { echo "chaos-smoke: reference run produced no result" >&2; exit 1; }

total_events=0
for seed in "${SEEDS[@]}"; do
  D=$(mktemp -d /tmp/fixq-smoke-XXXXXX)
  LOG="$OUT/chaos-seed-$seed.log"
  : > "$LOG"
  # Parity-safe faults only: connection drops (retried / failed over),
  # dropped scatter legs (reroute whole), and delays. Caps keep any
  # single request's worst case inside the retry budget.
  SCHEDULE="seed=$seed"
  SCHEDULE="$SCHEDULE,transport.send=drop:0.2#4,transport.recv=drop:0.2#4"
  SCHEDULE="$SCHEDULE,coordinator.scatter=drop:0.3#3"
  SCHEDULE="$SCHEDULE,server.handle=delay1#6,fixpoint.round=delay1#8"

  $FIXQ cluster --socket "$D/c.sock" --workers 2 --replication 2 \
    --worker-dir "$D/w" --health-interval-ms 3600000 \
    --chaos "$SCHEDULE" --chaos-log "$LOG" 2>"$D/cluster.err" &
  CLUSTER_PID=$!
  for i in $(seq 150); do [ -S "$D/c.sock" ] && break; sleep 0.1; done
  [ -S "$D/c.sock" ] || {
    echo "chaos-smoke: cluster did not come up (seed $seed)" >&2
    cat "$D/cluster.err" >&2
    exit 1
  }

  echo "$LOAD" | $FIXQ client -s "$D/c.sock" | grep -q '"ok":true' \
    || { echo "chaos-smoke: load-doc failed (seed $seed)" >&2; exit 1; }

  : > "$D/runs.txt"
  for i in $(seq $RUNS); do
    echo "$QUERY" | $FIXQ client -s "$D/c.sock" \
      | sed -n 's/.*"result":"\([^"]*\)".*/\1/p' >> "$D/runs.txt"
  done

  echo '{"op":"shutdown"}' | $FIXQ client -s "$D/c.sock" | grep -q '"ok":true' \
    || { echo "chaos-smoke: coordinator crashed under seed $seed" >&2; exit 1; }
  wait "$CLUSTER_PID" || true

  [ "$(wc -l < "$D/runs.txt")" -eq "$RUNS" ] \
    || { echo "chaos-smoke: dropped answers under seed $seed" >&2; exit 1; }
  sort -u "$D/runs.txt" | cmp -s - "$OUT/reference.txt" \
    || { echo "chaos-smoke: divergent result under seed $seed" >&2; exit 1; }

  events=$(wc -l < "$LOG")
  echo "chaos-smoke: seed $seed ok ($events faults injected, $RUNS runs byte-identical)"
  total_events=$((total_events + events))
  rm -rf "$D"
done

[ "$total_events" -ge 20 ] \
  || { echo "chaos-smoke: only $total_events faults injected (want >= 20)" >&2; exit 1; }

# ---------------------------------------------------------------------
# Durability phase: SIGKILL a stateful server mid-WAL-append and
# mid-snapshot; a cold start over the same state directory must answer
# byte-identically to the fault-free reference.
# ---------------------------------------------------------------------
for point in store.wal store.snapshot; do
  for seed in "${SEEDS[@]}"; do
    D=$(mktemp -d /tmp/fixq-smoke-XXXXXX)
    LOG="$OUT/chaos-durable-$point-seed-$seed.log"
    : > "$LOG"
    # @3: the load and the first snapshot-relevant op land, the third
    # arrival at the point is killed mid-write.
    $FIXQ serve --socket "$D/s.sock" --state-dir "$D/state" \
      --snapshot-threshold 2 \
      --chaos "seed=$seed,$point=kill@3" --chaos-log "$LOG" 2>"$D/serve.err" &
    SERVE_PID=$!
    for i in $(seq 150); do [ -S "$D/s.sock" ] && break; sleep 0.1; done
    [ -S "$D/s.sock" ] || {
      echo "chaos-smoke: stateful server did not come up ($point seed $seed)" >&2
      cat "$D/serve.err" >&2; exit 1; }

    echo "$LOAD" | $FIXQ client -s "$D/s.sock" | grep -q '"ok":true' \
      || { echo "chaos-smoke: load-doc failed ($point seed $seed)" >&2; exit 1; }
    # keep patching until the injected SIGKILL lands (or give up)
    PATCH='{"op":"patch-doc","uri":"x.xml","action":"insert","path":"/site","xml":"<chaos/>"}'
    for i in $(seq 12); do
      kill -0 "$SERVE_PID" 2>/dev/null || break
      echo "$PATCH" | $FIXQ client -s "$D/s.sock" >/dev/null 2>&1 || true
      sleep 0.1
    done
    wait "$SERVE_PID" 2>/dev/null || true
    grep -q "$point kill" "$LOG" \
      || { echo "chaos-smoke: no $point kill fired (seed $seed)" >&2; exit 1; }

    # recovery: cold start, no chaos; the recovered doc must answer and
    # the patched state must equal a single-process replay of the same
    # accepted-op prefix (count the complete WAL/snapshot ops via stats).
    # The SIGKILLed server left its socket file behind — remove it so
    # the readiness loop below waits for the new listener, not the ghost.
    rm -f "$D/s.sock"
    $FIXQ serve --socket "$D/s.sock" --state-dir "$D/state" 2>"$D/serve2.err" &
    SERVE_PID=$!
    for i in $(seq 150); do [ -S "$D/s.sock" ] && break; sleep 0.1; done
    [ -S "$D/s.sock" ] || {
      echo "chaos-smoke: recovery start failed ($point seed $seed)" >&2
      cat "$D/serve2.err" >&2; exit 1; }
    echo '{"op":"stats"}' | $FIXQ client -s "$D/s.sock" \
      | grep -o '"recovered":{[^}]*}' > "$D/recovered.txt" || true
    grep -q '"recovered"' "$D/recovered.txt" \
      || { echo "chaos-smoke: no recovery counters ($point seed $seed)" >&2; exit 1; }
    REC=$(cat "$D/recovered.txt")
    # the doc's generation counts exactly the accepted ops (load = 1,
    # each durable patch +1) — rebuild that prefix in a fresh single
    # process and demand byte parity
    ANSWER=$(echo "$QUERY" | $FIXQ client -s "$D/s.sock")
    GEN=$(echo "$ANSWER" | grep -o '"generation":[0-9]*' | cut -d: -f2)
    [ -n "$GEN" ] && [ "$GEN" -ge 1 ] \
      || { echo "chaos-smoke: recovered doc unusable ($point seed $seed): $REC" >&2; exit 1; }
    echo "$ANSWER" | sed -n 's/.*"result":"\([^"]*\)".*/\1/p' > "$D/got.txt"
    { echo "$LOAD"
      for i in $(seq $((GEN - 1))); do echo "$PATCH"; done
      echo "$QUERY"
      echo '{"op":"shutdown"}'
    } | $FIXQ serve --pipe \
      | sed -n 's/.*"result":"\([^"]*\)".*/\1/p' > "$D/expected.txt"
    cmp -s "$D/expected.txt" "$D/got.txt" \
      || { echo "chaos-smoke: recovery diverged ($point seed $seed): $REC" >&2; exit 1; }
    echo '{"op":"shutdown"}' | $FIXQ client -s "$D/s.sock" >/dev/null
    wait "$SERVE_PID" 2>/dev/null || true
    echo "chaos-smoke: $point kill seed $seed ok (recovered $REC, byte-identical)"
    total_events=$((total_events + 1))
    rm -rf "$D"
  done
done

# ---------------------------------------------------------------------
# Rebalance phase: roll the topology (add a worker, drain one) with a
# SIGKILL landing on a key move; every document must answer
# byte-identically across the roll.
# ---------------------------------------------------------------------
for seed in "${SEEDS[@]}"; do
  D=$(mktemp -d /tmp/fixq-smoke-XXXXXX)
  LOG="$OUT/chaos-rebalance-seed-$seed.log"
  : > "$LOG"
  $FIXQ cluster --socket "$D/c.sock" --workers 2 --replication 1 \
    --worker-dir "$D/w" --health-interval-ms 200 \
    --chaos "seed=$seed,coordinator.rebalance=kill@1" \
    --chaos-log "$LOG" 2>"$D/cluster.err" &
  CLUSTER_PID=$!
  for i in $(seq 150); do [ -S "$D/c.sock" ] && break; sleep 0.1; done
  [ -S "$D/c.sock" ] || {
    echo "chaos-smoke: rebalance cluster did not come up (seed $seed)" >&2
    cat "$D/cluster.err" >&2; exit 1; }

  for i in 0 1 2 3 4 5; do
    echo '{"op":"load-doc","uri":"d'$i'.xml","generate":"xmark","size":0.001}' \
      | $FIXQ client -s "$D/c.sock" | grep -q '"ok":true' \
      || { echo "chaos-smoke: rebalance load d$i failed (seed $seed)" >&2; exit 1; }
  done
  roll_query() {
    for i in 0 1 2 3 4 5; do
      echo '{"op":"run","query":"with $x seeded by doc(\"d'$i'.xml\")/site/* recurse $x/*","cache":false}' \
        | $FIXQ client -s "$D/c.sock" \
        | sed -n 's/.*"result":"\([^"]*\)".*/\1/p'
    done
  }
  roll_query > "$D/before.txt"
  [ "$(wc -l < "$D/before.txt")" -eq 6 ] \
    || { echo "chaos-smoke: rebalance baseline incomplete (seed $seed)" >&2; exit 1; }

  echo '{"op":"add-worker"}' | $FIXQ client -s "$D/c.sock" \
    | grep -q '"pending":\[\]' \
    || { echo "chaos-smoke: add-worker left pending keys (seed $seed)" >&2; exit 1; }
  grep -q 'coordinator.rebalance kill' "$LOG" \
    || { echo "chaos-smoke: no rebalance kill fired (seed $seed)" >&2; exit 1; }
  echo '{"op":"drain","worker":"w0"}' | $FIXQ client -s "$D/c.sock" \
    | grep -q '"pending":\[\]' \
    || { echo "chaos-smoke: drain left pending keys (seed $seed)" >&2; exit 1; }

  roll_query > "$D/after.txt"
  cmp -s "$D/before.txt" "$D/after.txt" \
    || { echo "chaos-smoke: rebalance diverged (seed $seed)" >&2; exit 1; }

  echo '{"op":"shutdown"}' | $FIXQ client -s "$D/c.sock" | grep -q '"ok":true' \
    || { echo "chaos-smoke: coordinator crashed in rebalance (seed $seed)" >&2; exit 1; }
  wait "$CLUSTER_PID" || true
  echo "chaos-smoke: rebalance seed $seed ok (roll byte-identical under kill)"
  total_events=$((total_events + 1))
  rm -rf "$D"
done

echo "chaos-smoke: PASS ($total_events faults across ${#SEEDS[@]} seeds)"
