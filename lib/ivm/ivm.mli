(** Incremental view maintenance of cached fixpoint results under
    [patch-doc] document edits.

    The theory (Alvarez-Picallo et al., "Fixing Incremental
    Computation") says the derivative of a fixpoint is itself a
    fixpoint: a small document edit can be absorbed by re-entering the
    existing [∆ ← body(∆) except res] delta loop from the {e edit
    frontier} instead of recomputing from scratch. This module holds the
    machinery: a bounded store of {e maintained entries} (one per cached
    result the service adopted), and {!on_patch}, which remaps a cached
    result through a {!Xdm.Patch.delta} and runs the differential loop.

    Eligibility comes from {!Fixq_analysis.Analyze.ivm_eligibility}:
    [Ivm_full] entries survive inserts, deletes, replaces and text
    edits; [Ivm_insert_only] entries survive inserts and fall back to
    recompute otherwise; ineligible programs are never adopted. All
    fallbacks and failures are loud in the per-query counters so
    operators can see which workloads actually benefit. *)

type entry

type outcome =
  | Maintained of { serialized : string; delta_count : int; rounds : int }
      (** the updated serialized result, how many nodes entered/left it,
          and how many delta rounds the maintenance loop ran *)
  | Dropped of string  (** entry removed; the reason for the fallback *)

type t

val create : ?capacity:int -> registry:Fixq_xdm.Doc_registry.t -> unit -> t

(** Entries currently maintained. *)
val size : t -> int

(** Re-export of {!Fixq_analysis.Analyze.ivm_eligibility}. *)
val eligibility :
  ?stratified:bool -> Fixq_lang.Ast.program -> Fixq_analysis.Analyze.ivm_class

(** [adopt t ~hash ~config …] captures a just-computed result for future
    maintenance. No-op unless the program's main expression is an
    eligible fixed point and [result] is all nodes. Also evaluates and
    records the seed — the pre-edit seed cannot be recovered after the
    registry holds a patched tree. [footprint] is the per-doc generation
    footprint the execution recorded. *)
val adopt :
  t ->
  hash:string ->
  config:string ->
  program:Fixq_lang.Ast.program ->
  stratified:bool ->
  max_iterations:int ->
  result:Fixq_xdm.Item.seq ->
  footprint:(string * int) list ->
  unit

(** Drop entries whose footprint mentions [uri] (document replaced or
    unloaded wholesale — nothing to remap through). *)
val on_unload : t -> uri:string -> unit

(** [on_patch t ~uri ~op delta] maintains (or drops) every entry whose
    footprint mentions [uri], returning per-entry outcomes keyed by
    [(hash, config)]. Maintained entries keep their updated state for
    the next patch; dropped entries are removed and counted as
    fallbacks. *)
val on_patch :
  t ->
  uri:string ->
  op:Fixq_xdm.Patch.op ->
  Fixq_xdm.Patch.delta ->
  ((string * string) * outcome) list

(** Per-query-hash [(maintained, fallback, cumulative ∆ nodes)]
    counters, sorted by hash. Counters survive entry eviction. *)
val counters : t -> (string * (int * int * int)) list

(** Sums of {!counters} across queries. *)
val totals : t -> int * int * int
