module Xdm = Fixq_xdm
module Lang = Fixq_lang
module Analyze = Fixq_analysis.Analyze
module Node = Xdm.Node
module Item = Xdm.Item
module Patch = Xdm.Patch
module Accumulator = Xdm.Accumulator

type entry = {
  hash : string;
  config : string;
  program : Lang.Ast.program;
  var : string;
  seed_expr : Lang.Ast.expr;
  body : Lang.Ast.expr;
  cls : Analyze.ivm_class;
  stratified : bool;
  max_iterations : int;
  mutable nodes : Node.t list;
  mutable seed_nodes : Node.t list;
  mutable uris : string list;
}

type outcome =
  | Maintained of { serialized : string; delta_count : int; rounds : int }
  | Dropped of string

type counter = {
  mutable maintained : int;
  mutable fallback : int;
  mutable delta_nodes : int;
}

type t = {
  registry : Xdm.Doc_registry.t;
  entries : (string * string, entry) Hashtbl.t;
  order : (string * string) Queue.t;  (* adoption order, for eviction *)
  counters : (string, counter) Hashtbl.t;
  capacity : int;
  lock : Mutex.t;
}

let create ?(capacity = 64) ~registry () =
  { registry; entries = Hashtbl.create 16; order = Queue.create ();
    counters = Hashtbl.create 16; capacity = max 1 capacity;
    lock = Mutex.create () }

let with_lock t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let counter_for t hash =
  match Hashtbl.find_opt t.counters hash with
  | Some c -> c
  | None ->
    let c = { maintained = 0; fallback = 0; delta_nodes = 0 } in
    Hashtbl.add t.counters hash c;
    c

(* Callers hold the lock. *)
let evict_to_capacity t =
  while Hashtbl.length t.entries >= t.capacity && not (Queue.is_empty t.order)
  do
    let k = Queue.pop t.order in
    Hashtbl.remove t.entries k
  done

let size t = with_lock t (fun () -> Hashtbl.length t.entries)

let eligibility ?stratified p = Analyze.ivm_eligibility ?stratified p

let node_list items =
  List.filter_map (function Item.N n -> Some n | Item.A _ -> None) items

let all_nodes items =
  List.for_all (function Item.N _ -> true | Item.A _ -> false) items

let adopt t ~hash ~config ~program ~stratified ~max_iterations ~result
    ~footprint =
  match program.Lang.Ast.main with
  | Lang.Ast.Ifp { var; seed; body; accum = None } when all_nodes result -> (
    match Analyze.ivm_eligibility ~stratified program with
    | Analyze.Ivm_ineligible _ -> ()
    | cls ->
      (* The pre-edit seed is needed at maintenance time to tell fresh
         seed nodes from re-fed ones, and it cannot be recovered once
         the registry holds the patched tree — capture it now. *)
      let seed_nodes =
        match
          let ev =
            Lang.Eval.create ~registry:t.registry ~max_iterations ~stratified
              ()
          in
          Lang.Eval.load_prolog ev program;
          Item.as_node_seq "ivm seed" (Lang.Eval.eval_expr ev seed)
        with
        | ns -> Some ns
        | exception _ -> None
      in
      match seed_nodes with
      | None -> ()
      | Some seed_nodes ->
        let e =
          { hash; config; program; var; seed_expr = seed; body; cls;
            stratified; max_iterations; nodes = node_list result; seed_nodes;
            uris = List.map fst footprint }
        in
        with_lock t (fun () ->
            let k = (hash, config) in
            if not (Hashtbl.mem t.entries k) then begin
              evict_to_capacity t;
              Queue.push k t.order
            end;
            Hashtbl.replace t.entries k e))
  | _ -> ()

let drop_where t pred =
  with_lock t (fun () ->
      let doomed =
        Hashtbl.fold
          (fun k e acc -> if pred e then k :: acc else acc)
          t.entries []
      in
      List.iter (Hashtbl.remove t.entries) doomed;
      doomed)

let on_unload t ~uri =
  ignore (drop_where t (fun e -> List.mem uri e.uris))

exception Maintenance_failed of string

(* Differential re-evaluation (Alvarez-Picallo et al.: the derivative of
   a fixpoint is a fixpoint): re-enter the delta loop from the edit
   frontier instead of re-running the whole fixpoint.

   For eligible (downward) bodies the producers whose output a patch can
   change are exactly the ancestors of the edit point, so the frontier
   is [fresh seed nodes ∪ (ancestor spine ∩ previously-fed nodes)] —
   sub-linear in the document. The cached result survives the patch via
   the delta's old-id → new-node remap (dropping deleted nodes, which
   for filter-free downward bodies removes exactly the derivations the
   deleted subtree supported), and new derivations are absorbed into a
   rebuilt accumulator by the standard [∆ ← body(∆) except res] loop. *)
let maintain t entry (delta : Patch.delta) =
  let remap ns =
    List.filter_map (fun n -> Hashtbl.find_opt delta.Patch.remap n.Node.id) ns
  in
  let old_result = remap entry.nodes in
  let old_seed = remap entry.seed_nodes in
  let acc = Accumulator.create () in
  ignore
    (Accumulator.absorb acc ~who:"ivm remap"
       (List.map (fun n -> Item.N n) old_result));
  let ev =
    Lang.Eval.create ~registry:t.registry
      ~max_iterations:entry.max_iterations ~stratified:entry.stratified ()
  in
  Lang.Eval.load_prolog ev entry.program;
  let seed' =
    Item.as_node_seq "ivm seed" (Lang.Eval.eval_expr ev entry.seed_expr)
  in
  let fed : (int, unit) Hashtbl.t = Hashtbl.create 1024 in
  List.iter (fun n -> Hashtbl.replace fed n.Node.id ()) old_seed;
  List.iter (fun n -> Hashtbl.replace fed n.Node.id ()) old_result;
  let fresh_seed =
    List.filter (fun n -> not (Hashtbl.mem fed n.Node.id)) seed'
  in
  let spine =
    match delta.Patch.edit_parent with
    | None -> []
    | Some p ->
      let rec up n acc =
        let acc = if Hashtbl.mem fed n.Node.id then n :: acc else acc in
        match Node.parent n with None -> acc | Some q -> up q acc
      in
      up p []
  in
  let frontier =
    Item.ddo (List.map (fun n -> Item.N n) (fresh_seed @ spine))
  in
  let rounds = ref 0 in
  let total_fresh = ref 0 in
  (* Always at least one round: even an empty frontier must revalidate
     doc("…")-constant parts of the body against the patched tree. *)
  let rec loop delta_in =
    incr rounds;
    if !rounds > entry.max_iterations then
      raise
        (Maintenance_failed
           (Printf.sprintf "maintenance exceeded %d iterations"
              entry.max_iterations));
    let out = Lang.Eval.eval_expr ev ~vars:[ (entry.var, delta_in) ] entry.body in
    let fresh, fresh_n, _ = Accumulator.absorb acc ~who:"ivm body" out in
    total_fresh := !total_fresh + fresh_n;
    if fresh_n > 0 then loop fresh
  in
  loop frontier;
  let dropped = List.length entry.nodes - List.length old_result in
  let serialized = Xdm.Serializer.seq_to_string (Accumulator.to_seq acc) in
  entry.nodes <- Accumulator.to_nodes acc;
  entry.seed_nodes <- seed';
  Maintained
    { serialized; delta_count = !total_fresh + dropped; rounds = !rounds }

let on_patch t ~uri ~op (delta : Patch.delta) =
  let touched =
    with_lock t (fun () ->
        Hashtbl.fold
          (fun k e acc -> if List.mem uri e.uris then (k, e) :: acc else acc)
          t.entries [])
  in
  let insert_op = match op with Patch.Insert _ -> true | _ -> false in
  List.map
    (fun ((hash, config), e) ->
      let drop reason =
        with_lock t (fun () ->
            Hashtbl.remove t.entries (hash, config);
            (counter_for t hash).fallback <-
              (counter_for t hash).fallback + 1);
        ((hash, config), Dropped reason)
      in
      match e.cls with
      | Analyze.Ivm_ineligible r -> drop r
      | Analyze.Ivm_insert_only when not insert_op ->
        drop "insert-only eligibility: deletions fall back to recompute"
      | Analyze.Ivm_full | Analyze.Ivm_insert_only -> (
        match maintain t e delta with
        | Dropped r -> drop r
        | Maintained m as outcome ->
          with_lock t (fun () ->
              let c = counter_for t hash in
              c.maintained <- c.maintained + 1;
              c.delta_nodes <- c.delta_nodes + m.delta_count);
          ((hash, config), outcome)
        | exception Maintenance_failed r -> drop r
        | exception Lang.Eval.Error r -> drop ("evaluation failed: " ^ r)
        | exception Xdm.Atom.Type_error r -> drop ("non-node result: " ^ r)))
    touched

let counters t =
  with_lock t (fun () ->
      Hashtbl.fold
        (fun hash c acc ->
          (hash, (c.maintained, c.fallback, c.delta_nodes)) :: acc)
        t.counters []
      |> List.sort compare)

let totals t =
  List.fold_left
    (fun (m, f, d) (_, (m', f', d')) -> (m + m', f + f', d + d'))
    (0, 0, 0) (counters t)
