(* Query Q1 of Example 2.2 (the document root element is [curriculum];
   the paper's path starts at [course] directly — we spell the full
   path). *)
let q1 =
  {|with $x seeded by doc("curriculum.xml")/curriculum/course[@code="c1"]
recurse $x/id(./prerequisites/pre_code)|}

let q1_variant =
  {|with $x seeded by doc("curriculum.xml")/curriculum/course[@code="c1"]
recurse id($x/prerequisites/pre_code)|}

let q1_unfolded =
  {|with $x seeded by doc("curriculum.xml")/curriculum/course[@code="c1"]
recurse
  for $c in doc("curriculum.xml")/curriculum/course
  where $c/@code = $x/prerequisites/pre_code
  return $c|}

(* Example 2.4. *)
let q2 =
  {|let $seed := (<a/>,<b><c><d/></c></b>)
return with $x seeded by $seed
       recurse if (count($x/self::a)) then $x/* else ()|}

(* Figure 10, verbatim modulo the subset's syntax. *)
let bidder_network =
  {|declare variable $doc := doc("auction.xml");

declare function bidder ($in as node()*) as node()*
{ for $id in $in/@id
  let $b := $doc//open_auction[seller/@person = $id]
            /bidder/personref
  return $doc//people/person[@id = $b/@person]
};

for $p in $doc//people/person
return <person>
         { $p/@id }
         { data ((with $x seeded by $p
                  recurse bidder ($x))/@id) }
       </person>|}

let bidder_network_single pid =
  Printf.sprintf
    {|declare variable $doc := doc("auction.xml");

declare function bidder ($in as node()*) as node()*
{ for $id in $in/@id
  let $b := $doc//open_auction[seller/@person = $id]
            /bidder/personref
  return $doc//people/person[@id = $b/@person]
};

with $x seeded by $doc//people/person[@id = "%s"]
recurse bidder ($x)|}
    pid

(* Horizontal structural recursion along following-sibling (Section 5,
   "Romeo and Juliet Dialogs"): seeds are the speeches that open a
   dialog (no immediately preceding speech by a different speaker); a
   round extends every live dialog by its next speech if the speakers
   alternate. The recursion depth equals the longest uninterrupted
   dialog. *)
let dialogs =
  {|declare variable $doc := doc("romeo.xml");

with $x seeded by
  $doc//SPEECH[not(preceding-sibling::SPEECH[1]/SPEAKER != SPEAKER)]
recurse
  for $s in $x
  return $s/following-sibling::SPEECH[1][SPEAKER != $s/SPEAKER]|}

(* xlinkit curriculum case study, Rule 5: a course must not be among
   its own (transitive) prerequisites. *)
let curriculum_check =
  {|for $c in doc("curriculum.xml")/curriculum/course
where exists($c intersect
             (with $x seeded by $c
              recurse $x/id(./prerequisites/pre_code)))
return $c|}

(* ------------------------------------------------------------------ *)
(* Semiring-annotated variants (accumulate by)                         *)
(* ------------------------------------------------------------------ *)

(* Q1 over a weighted curriculum: cheapest cumulative cost of every
   transitively required course — the tropical (min-cost) semiring,
   Bellman-Ford over the derivation graph. *)
let cheapest_prerequisite code =
  Printf.sprintf
    {|with $x seeded by doc("curriculum.xml")/curriculum/course[@code="%s"]
recurse $x/id(./prerequisites/pre_code)
accumulate by min(number(./@cost))|}
    code

(* Figure-10 bidder reach over a rated people section: the max semiring
   keeps, per reachable person, the best bottleneck rating over all
   referral chains (widest path). *)
let weighted_bidder_reach pid =
  Printf.sprintf
    {|declare variable $doc := doc("auction.xml");

declare function bidder ($in as node()*) as node()*
{ for $id in $in/@id
  let $b := $doc//open_auction[seller/@person = $id]
            /bidder/personref
  return $doc//people/person[@id = $b/@person]
};

with $x seeded by $doc//people/person[@id = "%s"]
recurse bidder ($x)
accumulate by max(number(./@rating))|}
    pid

(* Counting semiring over Q1: number of distinct prerequisite
   derivation paths per course. Unstable on cyclic curricula — serve
   refuses it without a budget (FQ043). *)
let counted_closure code =
  Printf.sprintf
    {|with $x seeded by doc("curriculum.xml")/curriculum/course[@code="%s"]
recurse $x/id(./prerequisites/pre_code)
accumulate by count|}
    code

(* Why-provenance over Q1: which seed witnesses support each derived
   course. *)
let witnessed_closure code =
  Printf.sprintf
    {|with $x seeded by doc("curriculum.xml")/curriculum/course[@code="%s"]
recurse $x/id(./prerequisites/pre_code)
accumulate by why|}
    code

(* Hereditary-disease exploration: close the genealogy downwards from
   every on-file patient, then keep the hereditary cases found among
   ancestors (vertical structural recursion into subtrees of depth ≤ 5,
   Section 5). *)
let hospital =
  {|declare variable $doc := doc("hospital.xml");

(with $x seeded by $doc/hospital/patient
 recurse $x/parents/patient)[diagnosis = "hereditary"]|}
