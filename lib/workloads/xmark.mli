(** XMark-style auction documents (Schmidt et al., VLDB 2002) — the
    substrate of the paper's bidder-network experiment (Figure 10,
    Table 2).

    The generator emits exactly the structure the bidder-network query
    touches: a [people] section of [person] elements with [@id], and an
    [open_auctions] section where each [open_auction] carries a
    [seller/@person] reference and one or more [bidder/personref/@person]
    references. The seller→bidder edge set is drawn uniformly, so the
    reachable network grows super-linearly with the document size, as in
    the paper. *)

type params = {
  scale : float;  (** XMark scale factor; persons ≈ 25500·scale *)
  seed : int;
  bidders_per_auction : int;  (** expected bidders per auction *)
}

val default : params

val persons_of_scale : float -> int
val auctions_of_scale : float -> int

(** Generate a document. *)
val generate : params -> Fixq_xdm.Node.t

(** Same network as {!generate} (the structure rng stream is untouched)
    plus a per-person [@rating] attribute in 1–9 — the weighted
    document behind the max-semiring (widest-path) bidder reach. *)
val generate_weighted : params -> Fixq_xdm.Node.t

(** Generate and register under [uri] (default ["auction.xml"]). *)
val load :
  ?registry:Fixq_xdm.Doc_registry.t -> ?uri:string -> params -> Fixq_xdm.Node.t

val load_weighted :
  ?registry:Fixq_xdm.Doc_registry.t -> ?uri:string -> params -> Fixq_xdm.Node.t
