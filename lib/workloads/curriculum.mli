(** Curriculum data (Figure 1 of the paper; originally the xlinkit case
    study) — ToXgene stand-in.

    Courses [c1 … cn] carry prerequisite code lists. Edges are drawn
    with a locality bias towards earlier courses, which yields long
    prerequisite chains; a fraction of {e back edges} closes cycles so
    the Rule-5 consistency check ("courses that are among their own
    prerequisites") has violations to find. The [@code] attribute is
    declared of DTD type ID (via {!Fixq_xdm.Node.register_id_attribute})
    so [fn:id] resolves prerequisite codes, as in Query Q1. *)

type params = {
  courses : int;  (** paper: 800 (medium) and 4000 (large) *)
  seed : int;
  max_prereqs : int;
  back_edge_fraction : float;  (** fraction of courses with a cycle-closing edge *)
}

val default : params

val generate : params -> Fixq_xdm.Node.t

(** Same edge structure as {!generate} (the structure rng stream is
    untouched) plus a per-course [@cost] attribute in 1–9 — the
    weighted document behind [accumulate by min(number(./@cost))]. *)
val generate_weighted : params -> Fixq_xdm.Node.t

val load :
  ?registry:Fixq_xdm.Doc_registry.t -> ?uri:string -> params -> Fixq_xdm.Node.t

val load_weighted :
  ?registry:Fixq_xdm.Doc_registry.t -> ?uri:string -> params -> Fixq_xdm.Node.t

(** Reference computation of the Rule-5 violations (graph closure on the
    edge list, no XQuery involved) — test oracle: codes of courses that
    transitively require themselves. *)
val self_prerequisite_codes : Fixq_xdm.Node.t -> string list

(** Reference Bellman-Ford over the prerequisite edge list of a
    {!generate_weighted} document: cheapest cumulative cost of every
    course transitively required by [from] (node costs; the seed
    propagates 0 and is reported only if re-derived). Test oracle for
    the min-semiring kernel. *)
val cheapest_prerequisite_costs :
  Fixq_xdm.Node.t -> from:string -> (string * float) list
