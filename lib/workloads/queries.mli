(** The paper's queries, verbatim where the paper prints them and
    reconstructed where it only describes them (the Romeo-and-Juliet
    dialog query is "not reproduced … for space reasons"; the hospital
    query follows the prose of Section 5). All are written in the
    [with … seeded by … recurse] form — the [fix]/[delta] user-defined
    function variants (Figures 2 and 4) are obtained mechanically via
    {!Fixq_lang.Rewrite.desugar_naive} / [desugar_delta]. *)

(** Query Q1 (Example 2.2): transitive prerequisites of course "c1". *)
val q1 : string

(** The Section 4.1 variant of Q1 with [$x] free inside [id(·)]'s
    argument. *)
val q1_variant : string

(** The Section 4.1 unfolding of the variant ([id] expanded to a
    [for]/[where] over the course list): rejected by the syntactic
    check, accepted by the algebraic one. *)
val q1_unfolded : string

(** Query Q2 (Example 2.4): the non-distributive body on which Naïve
    and Delta disagree. *)
val q2 : string

(** Figure 10: the XMark bidder network (one IFP per person). *)
val bidder_network : string

(** The recursion of Figure 10 for a {e single} seed person with code
    [$pid] — used to study one fixpoint in isolation. *)
val bidder_network_single : string -> string

(** Romeo-and-Juliet dialogs: seeds are the dialog-starting speeches,
    each round extends every live dialog by its next
    alternating-speaker speech; the recursion depth is the maximum
    uninterrupted dialog length. *)
val dialogs : string

(** Curriculum consistency (xlinkit Rule 5): courses among their own
    prerequisites. *)
val curriculum_check : string

(** Hereditary-disease exploration: genealogy closure from hereditary
    cases down the nested patient records. *)
val hospital : string

(** Q1 over a {!Curriculum.generate_weighted} document with the
    tropical semiring: cheapest cumulative [@cost] per transitively
    required course, seeded at the given course code. *)
val cheapest_prerequisite : string -> string

(** Figure-10 bidder reach over a {!Xmark.generate_weighted} document
    with the max semiring: best bottleneck [@rating] per reachable
    person (widest path), seeded at the given person id. *)
val weighted_bidder_reach : string -> string

(** Q1 with the counting semiring: distinct derivation paths per
    course. Unstable — serve refuses it without a budget (FQ043). *)
val counted_closure : string -> string

(** Q1 with why-provenance: seed witnesses per derived course. *)
val witnessed_closure : string -> string
