module Node = Fixq_xdm.Node
module Doc_registry = Fixq_xdm.Doc_registry

type params = { scale : float; seed : int; bidders_per_auction : int }

let default = { scale = 0.01; seed = 42; bidders_per_auction = 2 }

let persons_of_scale scale = max 5 (int_of_float (25500.0 *. scale))
let auctions_of_scale scale = max 3 (int_of_float (12000.0 *. scale))

let first_names =
  [| "Ada"; "Grace"; "Alan"; "Edsger"; "Barbara"; "Donald"; "Tony"; "John";
     "Leslie"; "Robin" |]

let last_names =
  [| "Lovelace"; "Hopper"; "Turing"; "Dijkstra"; "Liskov"; "Knuth"; "Hoare";
     "Backus"; "Lamport"; "Milner" |]

(* [ratings] adds a [@rating] attribute per person from its own rng, so
   the weighted network has exactly the edge structure of the plain
   one. *)
let generate_with ?ratings p =
  let rng = Rng.create p.seed in
  let persons = persons_of_scale p.scale in
  let auctions = auctions_of_scale p.scale in
  let person i =
    let attrs =
      ("id", Printf.sprintf "person%d" i)
      :: (match ratings with None -> [] | Some f -> [ ("rating", f i) ])
    in
    Node.E
      ( "person",
        attrs,
        [ Node.E
            ( "name", [],
              [ Node.T
                  (Rng.choose rng first_names ^ " " ^ Rng.choose rng last_names)
              ] ) ] )
  in
  let auction i =
    let seller = Rng.int rng persons in
    let n_bidders = 1 + Rng.int rng (max 1 ((2 * p.bidders_per_auction) - 1)) in
    (* Mostly local seller→bidder edges with occasional long jumps:
       keeps the network quadratic in the document while stretching its
       diameter into the paper's 10–24 recursion-depth range. *)
    let bidder _ =
      let target =
        if Rng.float rng < 0.75 then
          (seller + 1 + Rng.int rng 7) mod persons
        else Rng.int rng persons
      in
      Node.E
        ( "bidder", [],
          [ Node.E
              ( "personref",
                [ ("person", Printf.sprintf "person%d" target) ], [] ) ] )
    in
    Node.E
      ( "open_auction",
        [ ("id", Printf.sprintf "open_auction%d" i) ],
        Node.E ("seller", [ ("person", Printf.sprintf "person%d" seller) ], [])
        :: List.init n_bidders bidder )
  in
  let spec =
    Node.E
      ( "site", [],
        [ Node.E ("people", [], List.init persons person);
          Node.E ("open_auctions", [], List.init auctions auction) ] )
  in
  Node.of_spec spec

let generate p = generate_with p

let generate_weighted p =
  let rating_rng = Rng.create (p.seed lxor 0x9e3779) in
  let n = persons_of_scale p.scale in
  let ratings = Array.init n (fun _ -> 1 + Rng.int rating_rng 9) in
  generate_with ~ratings:(fun i -> string_of_int ratings.(i)) p

let load ?(registry = Doc_registry.default) ?(uri = "auction.xml") p =
  let doc = generate p in
  Doc_registry.register ~registry uri doc;
  doc

let load_weighted ?(registry = Doc_registry.default) ?(uri = "auction.xml") p =
  let doc = generate_weighted p in
  Doc_registry.register ~registry uri doc;
  doc
