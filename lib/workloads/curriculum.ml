module Node = Fixq_xdm.Node
module Doc_registry = Fixq_xdm.Doc_registry

type params = {
  courses : int;
  seed : int;
  max_prereqs : int;
  back_edge_fraction : float;
}

let default =
  { courses = 800; seed = 11; max_prereqs = 3; back_edge_fraction = 0.02 }

(* [costs] adds a [@cost] attribute per course without perturbing the
   structure rng stream, so the weighted document has exactly the
   edge structure of the plain one. *)
let generate_with ?costs p =
  let rng = Rng.create p.seed in
  let code i = Printf.sprintf "c%d" (i + 1) in
  let course i =
    (* Forward edges point to earlier (higher-index) courses with a
       locality bias, producing chains; a few back edges close cycles. *)
    let n_pre =
      if i = p.courses - 1 then 0 else Rng.geometric rng ~p:0.45 ~max:p.max_prereqs
    in
    let prereq _ =
      let remaining = p.courses - i - 1 in
      if remaining <= 0 then None
      else
        let hop = 1 + Rng.geometric rng ~p:0.5 ~max:(min 8 remaining - 1) in
        Some (Node.E ("pre_code", [], [ Node.T (code (i + hop)) ]))
    in
    let forward = List.filter_map prereq (List.init n_pre (fun _ -> ())) in
    let backward =
      if i > 0 && Rng.float rng < p.back_edge_fraction then
        [ Node.E ("pre_code", [], [ Node.T (code (Rng.int rng i)) ]) ]
      else []
    in
    let attrs =
      ("code", code i)
      :: (match costs with None -> [] | Some f -> [ ("cost", f i) ])
    in
    Node.E
      ("course", attrs, [ Node.E ("prerequisites", [], forward @ backward) ])
  in
  let doc =
    Node.of_spec ~id_attrs:[ "code" ]
      (Node.E ("curriculum", [], List.init p.courses course))
  in
  doc

let generate p = generate_with p

let generate_weighted p =
  let cost_rng = Rng.create (p.seed lxor 0x9e3779) in
  let costs = Array.init p.courses (fun _ -> 1 + Rng.int cost_rng 9) in
  generate_with ~costs:(fun i -> string_of_int costs.(i)) p

let load ?(registry = Doc_registry.default) ?(uri = "curriculum.xml") p =
  let doc = generate p in
  Doc_registry.register ~registry uri doc;
  doc

let load_weighted ?(registry = Doc_registry.default)
    ?(uri = "curriculum.xml") p =
  let doc = generate_weighted p in
  Doc_registry.register ~registry uri doc;
  doc

let self_prerequisite_codes doc =
  let root = Node.root doc in
  (* Collect the edge list code → prereq codes. *)
  let edges = Hashtbl.create 256 in
  let codes = ref [] in
  Node.iter_subtree
    (fun n ->
      if Node.name n = "course" then begin
        let c =
          match
            List.find_opt (fun a -> Node.name a = "code") (Node.attributes n)
          with
          | Some a -> Node.string_value a
          | None -> ""
        in
        codes := c :: !codes;
        let pres = ref [] in
        Node.iter_subtree
          (fun m ->
            if Node.name m = "pre_code" then
              pres := Node.string_value m :: !pres)
          n;
        Hashtbl.replace edges c !pres
      end)
    root;
  let reaches_self start =
    let visited = Hashtbl.create 16 in
    let rec go c =
      match Hashtbl.find_opt edges c with
      | None -> false
      | Some nexts ->
        List.exists
          (fun n ->
            String.equal n start
            ||
            if Hashtbl.mem visited n then false
            else begin
              Hashtbl.replace visited n ();
              go n
            end)
          nexts
    in
    go start
  in
  List.filter reaches_self (List.rev !codes)

(* Reference Bellman-Ford over the prerequisite edge list with
   node costs, mirroring the min-semiring kernel's semantics: the seed
   propagates 0, a derived course's distance is min over incoming
   derivations of (source distance + its own [@cost]), and only
   {e derived} courses are reported (the seed appears only if some
   course requires it back). The test oracle for
   [accumulate by min(number(./@cost))]. *)
let cheapest_prerequisite_costs doc ~from =
  let root = Node.root doc in
  let cost = Hashtbl.create 256 in
  let edges = Hashtbl.create 256 in
  let codes = ref [] in
  Node.iter_subtree
    (fun n ->
      if Node.name n = "course" then begin
        let attr name =
          List.find_opt (fun a -> Node.name a = name) (Node.attributes n)
          |> Option.map Node.string_value
        in
        let c = Option.value ~default:"" (attr "code") in
        codes := c :: !codes;
        Hashtbl.replace cost c
          (match attr "cost" with Some s -> float_of_string s | None -> 1.0);
        let pres = ref [] in
        Node.iter_subtree
          (fun m ->
            if Node.name m = "pre_code" then
              pres := Node.string_value m :: !pres)
          n;
        Hashtbl.replace edges c (List.rev !pres)
      end)
    root;
  let best = Hashtbl.create 256 in
  let dist c =
    match Hashtbl.find_opt best c with Some d -> d | None -> infinity
  in
  (* The seed always propagates 0: re-deriving it can only cost more,
     exactly as the kernel's ⊕ discards non-improvements. *)
  let prop c = if String.equal c from then 0.0 else dist c in
  let changed = ref true in
  while !changed do
    changed := false;
    Hashtbl.iter
      (fun u pres ->
        let du = prop u in
        if du < infinity then
          List.iter
            (fun v ->
              match Hashtbl.find_opt cost v with
              | None -> ()
              | Some cv ->
                let cand = du +. cv in
                if cand < dist v then begin
                  Hashtbl.replace best v cand;
                  changed := true
                end)
            pres)
      edges
  done;
  List.filter_map
    (fun c -> Option.map (fun d -> (c, d)) (Hashtbl.find_opt best c))
    (List.rev !codes)
