(** Wiring: {!Supervisor} (worker processes) + {!Transport} (socket
    clients) + {!Coordinator} (routing, scatter-gather, failover) as
    one handle. This is what [fixq cluster] and the benchmarks use; the
    unit tests bypass it and drive {!Coordinator} over in-process
    servers instead. *)

type t

(** [launch ~dir ~count ~command ()] spawns [count] workers (see
    {!Supervisor.create}), connects a transport and a separate
    health-ping transport to each, starts the health thread
    (ping + respawn + document replay every [health_interval_ms],
    default 1000), and returns the assembled cluster. *)
val launch :
  dir:string ->
  count:int ->
  command:(name:string -> socket:string -> string array) ->
  ?config:Coordinator.config ->
  ?health_interval_ms:float ->
  unit ->
  t

val coordinator : t -> Coordinator.t
val supervisor : t -> Supervisor.t

(** The coordinator as a line handler, for
    {!Fixq_service.Server.serve_pipe_with} / [serve_socket_with]. *)
val handle_line : t -> string -> string * bool

(** Stop the health thread, terminate the workers, close the
    transports. Idempotent. *)
val shutdown : t -> unit
