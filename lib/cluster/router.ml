type t = { workers : string list; replication : int }

let create ~workers ~replication =
  if workers = [] then invalid_arg "Router.create: no workers";
  let n = List.length workers in
  let replication = max 1 (min replication n) in
  { workers; replication }

let workers t = t.workers
let replication t = t.replication

(* First 8 bytes of MD5(worker NUL key) as a non-negative int64.
   MD5 here is a mixing function, not a security primitive. *)
let score ~worker ~key =
  let d = Digest.string (worker ^ "\x00" ^ key) in
  let v = ref 0L in
  for i = 0 to 7 do
    v := Int64.logor (Int64.shift_left !v 8) (Int64.of_int (Char.code d.[i]))
  done;
  Int64.logand !v Int64.max_int

let ranking t ~key =
  t.workers
  |> List.map (fun w -> (score ~worker:w ~key, w))
  |> List.sort (fun (s1, w1) (s2, w2) ->
         match Int64.compare s2 s1 with 0 -> compare w1 w2 | c -> c)
  |> List.map snd

let replicas t ~key = List.filteri (fun i _ -> i < t.replication) (ranking t ~key)
