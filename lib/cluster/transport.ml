type conn = { fd : Unix.file_descr; ic : in_channel; oc : out_channel }
type t = { spath : string; lock : Mutex.t; mutable conn : conn option }

let create spath = { spath; lock = Mutex.create (); conn = None }
let path t = t.spath

let teardown t =
  match t.conn with
  | None -> ()
  | Some c ->
      t.conn <- None;
      (try close_in_noerr c.ic with _ -> ());
      (try close_out_noerr c.oc with _ -> ());
      (try Unix.close c.fd with _ -> ())

let connect t =
  match t.conn with
  | Some c -> c
  | None ->
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      (try Unix.connect fd (Unix.ADDR_UNIX t.spath)
       with e ->
         (try Unix.close fd with _ -> ());
         raise e);
      let c =
        {
          fd;
          ic = Unix.in_channel_of_descr fd;
          oc = Unix.out_channel_of_descr fd;
        }
      in
      t.conn <- Some c;
      c

(* Every injected transport fault resolves to an [Error _] after
   severing the connection — exactly the observable of a real network
   failure, so the retry/failover machinery above reacts identically.
   [Truncate] on send additionally writes a partial frame first,
   exercising the peer's mid-frame hardening. *)
exception Chaos of string

let chaos_send t line =
  match Fixq_chaos.check "transport.send" with
  | None -> ()
  | Some (Fixq_chaos.Delay s) -> Fixq_chaos.sleep s
  | Some Fixq_chaos.Kill -> Fixq_chaos.kill_self ()
  | Some (Fixq_chaos.Drop | Fixq_chaos.Oom) ->
      teardown t;
      raise (Chaos "chaos: connection dropped before send")
  | Some Fixq_chaos.Truncate ->
      (try
         let c = connect t in
         let n = max 1 (String.length line / 2) in
         output_string c.oc (String.sub line 0 (min n (String.length line)));
         flush c.oc
       with _ -> ());
      teardown t;
      raise (Chaos "chaos: frame truncated mid-send")

let chaos_recv t =
  match Fixq_chaos.check "transport.recv" with
  | None -> ()
  | Some (Fixq_chaos.Delay s) -> Fixq_chaos.sleep s
  | Some Fixq_chaos.Kill -> Fixq_chaos.kill_self ()
  | Some (Fixq_chaos.Drop | Fixq_chaos.Oom | Fixq_chaos.Truncate) ->
      (* the worker may already have processed the request; dropping the
         response exercises the caller's retry idempotency *)
      teardown t;
      raise (Chaos "chaos: connection dropped before receive")

let call ?timeout_ms t line =
  Mutex.lock t.lock;
  let result =
    try
      chaos_send t line;
      let c = connect t in
      (match timeout_ms with
      | Some ms when ms > 0. ->
          Unix.setsockopt_float c.fd Unix.SO_RCVTIMEO (ms /. 1000.)
      | _ -> Unix.setsockopt_float c.fd Unix.SO_RCVTIMEO 0.);
      output_string c.oc line;
      output_char c.oc '\n';
      flush c.oc;
      chaos_recv t;
      match Fixq_service.Frame.read c.ic with
      | `Line resp -> Ok resp
      | `Eof ->
          teardown t;
          Error "connection closed by worker"
      | `Truncated _ ->
          (* the worker died mid-answer: indistinguishable from a lost
             response, never from a complete one *)
          teardown t;
          Error "response truncated mid-frame"
      | `Oversized ->
          teardown t;
          Error "oversized response frame"
    with
    | Chaos msg -> Error msg
    | End_of_file ->
        teardown t;
        Error "connection closed by worker"
    | Unix.Unix_error (err, _, _) ->
        teardown t;
        Error (Unix.error_message err)
    | Sys_error msg ->
        teardown t;
        Error msg
  in
  Mutex.unlock t.lock;
  result

let close t =
  Mutex.lock t.lock;
  teardown t;
  Mutex.unlock t.lock
