type conn = { fd : Unix.file_descr; ic : in_channel; oc : out_channel }
type t = { spath : string; lock : Mutex.t; mutable conn : conn option }

let create spath = { spath; lock = Mutex.create (); conn = None }
let path t = t.spath

let teardown t =
  match t.conn with
  | None -> ()
  | Some c ->
      t.conn <- None;
      (try close_in_noerr c.ic with _ -> ());
      (try close_out_noerr c.oc with _ -> ());
      (try Unix.close c.fd with _ -> ())

let connect t =
  match t.conn with
  | Some c -> c
  | None ->
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      (try Unix.connect fd (Unix.ADDR_UNIX t.spath)
       with e ->
         (try Unix.close fd with _ -> ());
         raise e);
      let c =
        {
          fd;
          ic = Unix.in_channel_of_descr fd;
          oc = Unix.out_channel_of_descr fd;
        }
      in
      t.conn <- Some c;
      c

let call ?timeout_ms t line =
  Mutex.lock t.lock;
  let result =
    try
      let c = connect t in
      (match timeout_ms with
      | Some ms when ms > 0. ->
          Unix.setsockopt_float c.fd Unix.SO_RCVTIMEO (ms /. 1000.)
      | _ -> Unix.setsockopt_float c.fd Unix.SO_RCVTIMEO 0.);
      output_string c.oc line;
      output_char c.oc '\n';
      flush c.oc;
      let resp = input_line c.ic in
      Ok resp
    with
    | End_of_file ->
        teardown t;
        Error "connection closed by worker"
    | Unix.Unix_error (err, _, _) ->
        teardown t;
        Error (Unix.error_message err)
    | Sys_error msg ->
        teardown t;
        Error msg
  in
  Mutex.unlock t.lock;
  result

let close t =
  Mutex.lock t.lock;
  teardown t;
  Mutex.unlock t.lock
