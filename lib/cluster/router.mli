(** Rendezvous (highest-random-weight) placement of documents on
    workers.

    Every (worker, document) pair gets a deterministic pseudo-random
    score; a document lives on the [replication] highest-scoring
    workers. The property that makes this the right tool for a
    fixed-point cluster: placement depends only on the {e names}, so
    every coordinator — and every restart of the same coordinator —
    computes the same assignment with no shared state, and removing a
    worker reshuffles {e only} the documents that scored it into their
    replica set (the classic HRW stability argument; consistent hashing
    without the ring). *)

type t

(** [create ~workers ~replication] — [workers] are stable names (the
    supervisor names processes [w0], [w1], …; a respawned worker keeps
    its name, and therefore its documents). [replication] is clamped to
    [1 .. length workers]. Raises [Invalid_argument] on an empty worker
    list. *)
val create : workers:string list -> replication:int -> t

val workers : t -> string list
val replication : t -> int

(** Deterministic score of a (worker, key) pair — exposed for tests. *)
val score : worker:string -> key:string -> int64

(** All workers ordered by descending score for [key] (ties broken by
    name, so the order is total and reproducible). *)
val ranking : t -> key:string -> string list

(** The first [replication] entries of {!ranking}: the workers that
    hold (replicas of) document [key], best first. *)
val replicas : t -> key:string -> string list
