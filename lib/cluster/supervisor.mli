(** Worker-process lifecycle: spawn N [fixq serve --socket] processes,
    watch them, and respawn the ones that die.

    Workers get stable names [w0] … [wN-1]; a respawned worker keeps
    its predecessor's name and socket path, so the rendezvous placement
    ({!Router}) is untouched by a crash — only the worker's in-memory
    state (documents, caches) is gone, which the coordinator's
    [on_respawn] hook re-registers. *)

type t

(** [create ~dir ~count ~command ()] spawns [count] workers. Worker [w]
    listens on [dir/w.sock] and appends stdout+stderr to [dir/w.log];
    [command ~name ~socket] is the full argv (argv.(0) = executable).
    Blocks until every worker's socket accepts connections, or raises
    [Failure] after [ready_timeout_ms] (default 15000). *)
val create :
  dir:string ->
  count:int ->
  command:(name:string -> socket:string -> string array) ->
  ?ready_timeout_ms:float ->
  unit ->
  t

val names : t -> string list
val socket_path : t -> string -> string

(** Current pid of a worker ([None] for an unknown name). *)
val pid : t -> string -> int option

(** Times each worker was respawned, summed. *)
val restarts : t -> int

(** Spawn one more worker and block until its socket accepts. The name
    is the lowest [wN] above every name ever used — names are never
    reused, since rendezvous placement is keyed on them. Raises
    [Failure] if the worker does not come up or the supervisor is
    stopping. *)
val add_worker : t -> string

(** Permanently remove a worker: drop it from supervision (so the
    health thread will not respawn it), terminate the process (SIGTERM,
    grace, SIGKILL) and unlink its socket. Unknown names are a no-op. *)
val retire_worker : t -> string -> unit

(** SIGKILL a worker {e without} retiring it — the health thread will
    notice and respawn it. This is the chaos hook behind the
    [coordinator.rebalance] Kill fault. Unknown names are a no-op. *)
val kill9 : t -> string -> unit

(** One supervision sweep: reap exited workers ([waitpid WNOHANG]) and
    respawn them; additionally treat [ping name = false] as dead (kill,
    then respawn). Each respawned worker is re-awaited on its socket
    and then passed to [on_respawn]. Safe to call from any thread. *)
val check :
  ?ping:(string -> bool) -> on_respawn:(string -> unit) -> t -> unit

(** Run {!check} every [interval_ms] in a background thread until
    {!stop}. *)
val start_health :
  interval_ms:float ->
  ?ping:(string -> bool) ->
  on_respawn:(string -> unit) ->
  t ->
  unit

(** Stop the health thread and terminate every worker (SIGTERM, short
    grace, then SIGKILL). Idempotent. *)
val stop : t -> unit
