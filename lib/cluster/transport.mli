(** A persistent line-oriented client for one worker's Unix-domain
    socket: one request line out, one response line back, over a
    connection that is kept open across calls and re-dialed on demand.
    All failure modes (connect refused, timeout, torn connection,
    worker EOF) surface as [Error msg] — the coordinator turns those
    into retries and failovers, never into exceptions. *)

type t

(** [create path] — no connection is attempted until the first
    {!call}. *)
val create : string -> t

val path : t -> string

(** Send [line] (a newline is appended) and read one response line.
    [timeout_ms] bounds the {e read} via [SO_RCVTIMEO]; connect and
    write fail fast on their own. Any error tears down the cached
    connection so the next call starts from a fresh dial. Thread-safe:
    calls on the same [t] are serialized. *)
val call : ?timeout_ms:float -> t -> string -> (string, string) result

(** Close the cached connection, if any. *)
val close : t -> unit
