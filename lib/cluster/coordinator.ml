module Json = Fixq_service.Json
module Protocol = Fixq_service.Protocol
module Lang = Fixq.Lang

type backend = {
  workers : string list;
  send :
    string -> timeout_ms:float option -> string -> (string, string) result;
  info : string -> (string * Json.t) list;
  restarts : unit -> int;
  stop : unit -> unit;
}

type config = {
  replication : int;
  scatter : bool;
  retries : int;
  backoff_ms : float;
  timeout_ms : float option;
}

let default_config =
  { replication = 2; scatter = true; retries = 2; backoff_ms = 50.;
    timeout_ms = None }

(* What one worker process holds, and in which order it loaded it. A
   worker allocates node ids in load order and [Item.ddo] sorts
   cross-document by node id, so [ords] is exactly the worker's
   cross-document serialization (and seed enumeration) order. *)
type worker_docs = {
  mutable next_ord : int;
  ords : (string, int) Hashtbl.t;  (** uri → local load order *)
}

type t = {
  config : config;
  backend : backend;
  router : Router.t;
  lock : Mutex.t;
  doc_lock : Mutex.t;
      (** serializes document placement: load/unload, failover
          shipping, respawn replay. Two racing load-docs for one uri
          (or a load racing a replay) must not leave workers holding
          different content or different load orders than [docs] and
          [loaded] record. Never acquired while holding [lock]. *)
  alive : (string, unit) Hashtbl.t;
  docs : (string, int * string list) Hashtbl.t;
      (** uri → (load sequence, request-line history: the load-doc line
          followed by every patch-doc line applied since, in order).
          Failover shipping and respawn replay re-send the whole
          history so the recipient reconstructs the patched document.
          The sequence is the document's position in the global load
          order — fresh on every (re)load {e and} every patch, because
          both allocate fresh node ids on the workers that take them.
          [gather_keyed] sorts by it, and
          [order_ok] admits a worker to scatter (or prefers it for
          routed multi-document runs) only when the worker's own load
          order agrees, so position() enumeration and cross-document
          serialization match across processes. *)
  loaded : (string, worker_docs) Hashtbl.t;
  mutable doc_seq : int;
  mutable generation : int;
  mutable retries_total : int;
  mutable failovers_total : int;
  mutable scatter_runs : int;
  mutable routed_runs : int;
  started_at : float;
}

let create ?(config = default_config) backend =
  let router =
    Router.create ~workers:backend.workers ~replication:config.replication
  in
  let alive = Hashtbl.create 8 in
  List.iter (fun w -> Hashtbl.replace alive w ()) backend.workers;
  { config; backend; router; lock = Mutex.create ();
    doc_lock = Mutex.create (); alive;
    docs = Hashtbl.create 16; loaded = Hashtbl.create 8; doc_seq = 0;
    generation = 0; retries_total = 0; failovers_total = 0; scatter_runs = 0;
    routed_runs = 0; started_at = Unix.gettimeofday () }

let router t = t.router

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let doc_locked t f =
  Mutex.lock t.doc_lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.doc_lock) f

let is_alive t name = locked t (fun () -> Hashtbl.mem t.alive name)
let mark_dead t name = locked t (fun () -> Hashtbl.remove t.alive name)

let alive_workers t =
  locked t (fun () ->
      List.filter (fun w -> Hashtbl.mem t.alive w) t.backend.workers)

(* The per-worker bookkeeping below runs under [t.lock]. *)

let worker_docs t name =
  match Hashtbl.find_opt t.loaded name with
  | Some wd -> wd
  | None ->
    let wd = { next_ord = 0; ords = Hashtbl.create 16 } in
    Hashtbl.replace t.loaded name wd;
    wd

(* The worker just (re)loaded [uri], allocating fresh node ids: the
   document is now LAST in its local load order. *)
let record_loaded t name uri =
  let wd = worker_docs t name in
  wd.next_ord <- wd.next_ord + 1;
  Hashtbl.replace wd.ords uri wd.next_ord

(* After [ensure_docs] ships whatever [name] is missing of [uris] (in
   global load order, appended after everything it already holds),
   will [name] hold [uris] in the global load order? Seed enumeration
   — hence position() slicing — and cross-document serialization both
   follow worker-local node-id order, so a scatter leg whose order
   diverges from its peers slices a different enumeration, and the
   gathered union silently drops or duplicates items. *)
let order_ok t name uris =
  let ords =
    match Hashtbl.find_opt t.loaded name with
    | Some wd -> wd.ords
    | None -> Hashtbl.create 0
  in
  let known =
    List.filter_map
      (fun uri ->
        Option.map (fun (seq, _) -> (uri, seq)) (Hashtbl.find_opt t.docs uri))
      uris
  in
  let (held, missing) =
    List.partition (fun (uri, _) -> Hashtbl.mem ords uri) known
  in
  let by_ord =
    List.sort compare
      (List.map (fun (uri, _) -> (Hashtbl.find ords uri, uri)) held)
  in
  let by_seq = List.sort compare (List.map (fun (u, s) -> (s, u)) held) in
  List.map snd by_ord = List.map snd by_seq
  && List.for_all
       (fun (_, hseq) -> List.for_all (fun (_, mseq) -> hseq < mseq) missing)
       held

(* ------------------------------------------------------------------ *)
(* Sending with retry / failover                                       *)
(* ------------------------------------------------------------------ *)

(* Retry the same worker with doubling backoff and jitter; when the
   budget is exhausted, mark it dead and let the caller fail over. *)
let send_retry t name ~timeout_ms line =
  let rec go attempt =
    match t.backend.send name ~timeout_ms line with
    | Ok r -> Ok r
    | Error e ->
      if attempt >= t.config.retries then begin
        mark_dead t name;
        Error e
      end
      else begin
        locked t (fun () -> t.retries_total <- t.retries_total + 1);
        let backoff = t.config.backoff_ms *. (2. ** float_of_int attempt) in
        let jitter = Random.float (max 1. (backoff *. 0.5)) in
        Thread.delay ((backoff +. jitter) /. 1000.);
        go (attempt + 1)
      end
  in
  go 0

(* The documents of [uris] that [name] is missing, oldest global load
   sequence first — shipping in that order keeps the worker's local
   node-id order aligned with the global one whenever possible. *)
let missing_docs t name uris =
  locked t (fun () ->
      let ords =
        match Hashtbl.find_opt t.loaded name with
        | Some wd -> wd.ords
        | None -> Hashtbl.create 0
      in
      List.filter_map
        (fun uri ->
          match Hashtbl.find_opt t.docs uri with
          | Some (seq, lines) when not (Hashtbl.mem ords uri) ->
            Some (seq, uri, lines)
          | _ -> None)
        uris
      |> List.sort compare)

(* Make sure [name] holds every document of [uris] that the coordinator
   knows, re-sending the recorded load-doc lines for missing ones in
   global load order. This is what lets failover land on a worker
   outside a document's replica set: the document follows the query. *)
let ensure_docs t name uris =
  match missing_docs t name uris with
  | [] -> Ok ()
  | _ :: _ ->
    (* ship under the document lock: a concurrent (re)load of one of
       these uris, or a second shipper racing to the same worker, must
       not interleave — the worker would hold content or a load order
       the coordinator did not record *)
    doc_locked t (fun () ->
        (* a document's history (load line then patch lines) must land
           whole: recording the uri only after the last line means a
           partial replay leaves the worker out of the replica set *)
        let rec push_lines uri = function
          | [] -> Ok ()
          | line :: rest -> (
            match send_retry t name ~timeout_ms:t.config.timeout_ms line with
            | Error e -> Error e
            | Ok resp -> (
              match Json.parse resp with
              | j when Json.bool_opt (Json.member "ok" j) = Some true ->
                push_lines uri rest
              | _ -> Error (Printf.sprintf "replaying %s on %s failed" uri name)
              | exception Json.Parse_error _ ->
                Error (Printf.sprintf "replaying %s on %s: bad response" uri
                         name)))
        in
        let rec push = function
          | [] -> Ok ()
          | (_, uri, lines) :: rest -> (
            match push_lines uri lines with
            | Error e -> Error e
            | Ok () ->
              locked t (fun () -> record_loaded t name uri);
              push rest)
        in
        (* recompute under the lock: a racing shipper may have won *)
        push (missing_docs t name uris))

let on_worker_respawn t name =
  doc_locked t (fun () ->
      let lines =
        locked t (fun () ->
            Hashtbl.replace t.alive name ();
            (* the respawned process is empty: forget, then replay in
               global load order so its node-id order matches its
               scatter peers' *)
            let uris =
              match Hashtbl.find_opt t.loaded name with
              | Some wd -> Hashtbl.fold (fun uri _ acc -> uri :: acc) wd.ords []
              | None -> []
            in
            Hashtbl.remove t.loaded name;
            List.filter_map
              (fun uri ->
                Option.map
                  (fun (seq, lines) -> (seq, uri, lines))
                  (Hashtbl.find_opt t.docs uri))
              uris
            |> List.sort compare)
      in
      List.iter
        (fun (_, uri, doc_lines) ->
          let ok =
            List.for_all
              (fun line ->
                match
                  send_retry t name ~timeout_ms:t.config.timeout_ms line
                with
                | Ok _ -> true
                | Error _ -> false)
              doc_lines
          in
          if ok then locked t (fun () -> record_loaded t name uri))
        lines)

(* ------------------------------------------------------------------ *)
(* Routing                                                             *)
(* ------------------------------------------------------------------ *)

let parse_query query =
  match Lang.Parser.parse_program query with
  | p -> Ok p
  | exception Lang.Parser.Error { line; col; msg } ->
    Error (Printf.sprintf "parse error at %d:%d: %s" line col msg)
  | exception Lang.Lexer.Error { pos; msg } ->
    let line, col = Lang.Lexer.line_col_of query pos in
    Error (Printf.sprintf "lex error at %d:%d: %s" line col msg)

(* Preference order for a query: the rendezvous ranking of its first
   document (or of the query text itself when it touches no document),
   restricted to live workers. Workers outside the replica set still
   qualify — [ensure_docs] ships them the documents — so a query
   survives as long as one worker lives. Multi-document queries prefer
   workers whose local load order matches the global one: the others
   would answer with a set-equal but differently serialized result
   (documents in the wrong order). *)
let candidates t ~docs ~query =
  let key = match docs with [] -> "q:" ^ query | uri :: _ -> uri in
  let ranked = Router.ranking t.router ~key in
  locked t (fun () ->
      let live = List.filter (fun w -> Hashtbl.mem t.alive w) ranked in
      match docs with
      | [] | [ _ ] -> live
      | _ ->
        let (consistent, rest) =
          List.partition (fun w -> order_ok t w docs) live
        in
        consistent @ rest)

(* Live workers inside the replica sets of ALL the query's documents
   whose local document load order agrees with the global one — the
   only sound scatter targets: a worker that loaded (or will receive,
   via [ensure_docs]) the documents in another order enumerates the
   seed differently, and the position()-mod-N slices would overlap or
   miss elements. *)
let scatter_set t ~docs ~query =
  let reps =
    match docs with
    | [] -> Router.replicas t.router ~key:("q:" ^ query)
    | first :: rest ->
      List.fold_left
        (fun acc uri ->
          let r = Router.replicas t.router ~key:uri in
          List.filter (fun w -> List.mem w r) acc)
        (Router.replicas t.router ~key:first)
        rest
  in
  locked t (fun () ->
      List.filter
        (fun w -> Hashtbl.mem t.alive w && order_ok t w docs)
        reps)

(* Scatter is sound only when uniting the slices provably reproduces
   the whole: the program must BE one IFP (not merely contain one),
   its body must pass the Figure-5 syntactic distributivity check —
   Theorem 3.2 then gives e(s1 ∪ s2) = e(s1) ∪ e(s2) — and the
   analyzer must classify it [Terminates] (node-only seed and body):
   [gather_keyed] merges by portable node identity, while atoms would
   have to be restored to the single process's engine-production
   order, which the slices do not carry. The whole precondition lives
   in {!Fixq_analysis.Analyze.scatter_eligible}, shared with `fixq
   lint`'s report. *)
let scatterable t ~stratified (p : Lang.Ast.program) =
  t.config.scatter && Fixq_analysis.Analyze.scatter_eligible ~stratified p

(* ------------------------------------------------------------------ *)
(* JSON plumbing                                                       *)
(* ------------------------------------------------------------------ *)

let obj_fields = function Json.Obj fields -> fields | _ -> []

let without keys fields =
  List.filter (fun (k, _) -> not (List.mem k keys)) fields

let append_field (resp : string) key value =
  match Json.parse resp with
  | Json.Obj fields -> Json.to_string (Json.Obj (fields @ [ (key, value) ]))
  | _ | (exception Json.Parse_error _) -> resp

let forward_timeout t (params : Protocol.run_params) =
  (* give the worker its own budget plus slack before the transport
     gives up on the read; an unbudgeted request inherits the
     coordinator default *)
  match params.Protocol.timeout_ms with
  | Some ms -> Some ((ms *. 2.) +. 5000.)
  | None -> t.config.timeout_ms

(* ------------------------------------------------------------------ *)
(* The run path                                                        *)
(* ------------------------------------------------------------------ *)

(* Route the whole request to the first candidate that answers, marking
   losers dead and failing over down the preference order. *)
let run_routed t ~id ~docs ~cands ~timeout_ms line =
  let rec go = function
    | [] ->
      Json.to_string
        (Protocol.error_response ~id "no live worker can serve this request")
    | name :: rest -> (
      let fail () =
        if rest <> [] then
          locked t (fun () -> t.failovers_total <- t.failovers_total + 1);
        go rest
      in
      match ensure_docs t name docs with
      | Error _ -> fail ()
      | Ok () -> (
        match send_retry t name ~timeout_ms line with
        | Error _ -> fail ()
        | Ok resp ->
          locked t (fun () -> t.routed_runs <- t.routed_runs + 1);
          append_field resp "worker" (Json.Str name)))
  in
  go cands

type keyed_entry = { sort : int * int; tie : string; xml : string }

(* Merge the legs' keyed item lists into the single-process
   serialization: dedupe by portable identity, order document nodes by
   (document load sequence, preorder rank) — exactly [Item.ddo]'s
   document order for identically-loaded stores — and join with single
   spaces as [Serializer.seq_to_string] does.

   Each worker serializes its shard already in that order, so the legs
   are merged pairwise (the same kernel shape as
   [Fixq_xdm.Accumulator.merged]) instead of re-sorted globally; a leg
   that arrives out of order is sorted first (counted as a fallback).
   Entries sharing a key keep the earlier leg's serialization — the
   first-seen-wins rule of the old hash-based dedup — and the output
   order among survivors depends only on the key, so the merged bytes
   equal the old globally-sorted bytes. *)
let entry_key e = (e.sort, e.tie)

let gather_keyed t legs =
  let parse_leg leg =
    match Json.member "keyed" leg with
    | Json.List items ->
      List.map
        (fun item ->
          let xml =
            Option.value ~default:"" (Json.str_opt (Json.member "x" item))
          in
          match Json.str_opt (Json.member "u" item) with
          | Some u ->
            let rank =
              Option.value ~default:0 (Json.int_opt (Json.member "r" item))
            in
            let seq =
              locked t (fun () ->
                  match Hashtbl.find_opt t.docs u with
                  | Some (seq, _) -> seq
                  | None -> max_int - 1)
            in
            { sort = (seq, rank); tie = "u:" ^ u; xml }
          | None ->
            let k =
              Option.value ~default:("x:" ^ xml)
                (Json.str_opt (Json.member "k" item))
            in
            { sort = (max_int, 0); tie = k; xml })
        items
    | _ -> []
  in
  (* Strictly-ascending scan doubling as within-leg dedup (first wins). *)
  let sorted_leg entries =
    let sorted =
      let rec ascending prev = function
        | [] -> true
        | e :: rest ->
          compare (entry_key prev) (entry_key e) < 0 && ascending e rest
      in
      match entries with [] -> true | e :: rest -> ascending e rest
    in
    if sorted then entries
    else begin
      incr Fixq_xdm.Counters.fallback_sorts;
      let stable =
        List.stable_sort
          (fun a b -> compare (entry_key a) (entry_key b))
          entries
      in
      let rec dedup = function
        | [] -> []
        | a :: rest ->
          let rec drop = function
            | b :: more when entry_key a = entry_key b -> drop more
            | more -> more
          in
          a :: dedup (drop rest)
      in
      dedup stable
    end
  in
  (* Linear two-leg merge; on equal keys the earlier leg's entry wins. *)
  let merge a b =
    incr Fixq_xdm.Counters.merges;
    Fixq_xdm.Counters.merged_items :=
      !Fixq_xdm.Counters.merged_items + List.length a + List.length b;
    let rec go acc a b =
      match (a, b) with
      | ([], rest) | (rest, []) -> List.rev_append acc rest
      | (x :: xs, y :: ys) ->
        let c = compare (entry_key x) (entry_key y) in
        if c < 0 then go (x :: acc) xs b
        else if c > 0 then go (y :: acc) a ys
        else go (x :: acc) xs ys
    in
    go [] a b
  in
  let rec reduce = function
    | [] -> []
    | [ l ] -> l
    | l1 :: l2 :: rest -> reduce (merge l1 l2 :: rest)
  in
  let merged = reduce (List.map (fun l -> sorted_leg (parse_leg l)) legs) in
  String.concat " " (List.map (fun e -> e.xml) merged)

let num_member name j = Option.value ~default:0. (Json.num_opt (Json.member name j))
let int_member name j = Option.value ~default:0 (Json.int_opt (Json.member name j))

(* Chaos faults on a scatter leg resolve to a leg [Error], i.e. the
   `Transport shape — the coordinator falls back to whole-query routing
   exactly as it would for a worker that died between scatter and
   gather. [Kill] additionally marks the worker dead so the fallback
   must route around it (the in-flight failover path). *)
let chaos_scatter t name =
  match Fixq_chaos.check "coordinator.scatter" with
  | None -> None
  | Some (Fixq_chaos.Delay s) ->
    Fixq_chaos.sleep s;
    None
  | Some Fixq_chaos.Kill ->
    mark_dead t name;
    Some (Printf.sprintf "chaos: %s killed mid-scatter" name)
  | Some (Fixq_chaos.Drop | Fixq_chaos.Truncate | Fixq_chaos.Oom) ->
    Some (Printf.sprintf "chaos: scatter leg to %s dropped" name)

let run_scatter t ~id ~docs ~workers ~timeout_ms fields =
  let m = List.length workers in
  let base = without [ "id"; "partition" ] fields in
  let results = Array.make m (Error "not sent") in
  let threads =
    List.mapi
      (fun j name ->
        let leg_line =
          Json.to_string
            (Json.Obj
               (base
               @ [ ("partition",
                    Json.Obj
                      [ ("index", Json.of_int j); ("of", Json.of_int m) ]) ]))
        in
        Thread.create
          (fun () ->
            let r =
              match chaos_scatter t name with
              | Some e -> Error e
              | None -> (
                match ensure_docs t name docs with
                | Error e -> Error e
                | Ok () ->
                (* re-check after shipping: a racing load-doc may have
                   changed this worker's local order since
                   [scatter_set] approved it *)
                if locked t (fun () -> order_ok t name docs) then
                  send_retry t name ~timeout_ms leg_line
                else
                  Error
                    (Printf.sprintf
                       "%s no longer holds documents in global load order"
                       name))
            in
            results.(j) <- r)
          ())
      workers
  in
  List.iter Thread.join threads;
  let parsed =
    Array.to_list results
    |> List.map (fun r ->
           match r with
           | Error e -> Error (`Transport e)
           | Ok resp -> (
             match Json.parse resp with
             | j ->
               if Json.bool_opt (Json.member "ok" j) = Some true then Ok j
               else
                 Error
                   (`Worker
                     (Option.value ~default:"worker error"
                        (Json.str_opt (Json.member "error" j))))
             | exception Json.Parse_error m -> Error (`Worker m)))
  in
  if List.exists (function Error (`Transport _) -> true | _ -> false) parsed
  then `Fallback (* a leg died or fell out of load order: give up *)
  else
    match
      List.find_map
        (function Error (`Worker m) -> Some m | _ -> None)
        parsed
    with
    | Some msg -> `Response (Json.to_string (Protocol.error_response ~id msg))
    | None ->
      let legs = List.filter_map Result.to_option parsed in
      (* belt and braces under the static node-only gate: if a leg
         still produced an item without portable node identity (an
         atom or constructed node, keyed "k"), its single-process
         serialization order cannot be rebuilt here — run whole *)
      let nodes_only =
        List.for_all
          (fun leg ->
            match Json.member "keyed" leg with
            | Json.List items ->
              List.for_all
                (fun item -> Json.str_opt (Json.member "u" item) <> None)
                items
            | _ -> true)
          legs
      in
      if not nodes_only then `Fallback
      else
      let first = List.hd legs in
      let result = gather_keyed t legs in
      locked t (fun () -> t.scatter_runs <- t.scatter_runs + 1);
      let generation = locked t (fun () -> t.generation) in
      `Response
        (Json.to_string
           (Protocol.ok_response ~id
              [ ("engine", Json.member "engine" first);
                ("mode", Json.member "mode" first);
                ("used_delta", Json.member "used_delta" first);
                ("generation", Json.of_int generation);
                ("nodes_fed",
                 Json.of_int
                   (List.fold_left
                      (fun acc l -> acc + int_member "nodes_fed" l)
                      0 legs));
                ("depth",
                 Json.of_int
                   (List.fold_left
                      (fun acc l -> max acc (int_member "depth" l))
                      0 legs));
                ("result", Json.Str result);
                ("scatter",
                 Json.Obj
                   [ ("legs", Json.of_int m);
                     ("workers",
                      Json.List (List.map (fun w -> Json.Str w) workers)) ]);
                ("wall_ms",
                 Json.Num
                   (List.fold_left
                      (fun acc l -> Float.max acc (num_member "wall_ms" l))
                      0. legs)) ]))

let handle_run t ~id req (params : Protocol.run_params) =
  match parse_query params.Protocol.query with
  | Error msg -> Json.to_string (Protocol.error_response ~id msg)
  | Ok program ->
    let docs = Fixq.doc_uris program in
    let line = Json.to_string req in
    let timeout_ms = forward_timeout t params in
    let cands = candidates t ~docs ~query:params.Protocol.query in
    let stratified = Option.value ~default:false params.Protocol.stratified in
    let scatter_workers =
      if params.Protocol.partition <> None then []
        (* client already partitions: forward whole *)
      else if scatterable t ~stratified program then
        scatter_set t ~docs ~query:params.Protocol.query
      else []
    in
    if List.length scatter_workers >= 2 then
      match
        run_scatter t ~id ~docs ~workers:scatter_workers ~timeout_ms
          (obj_fields req)
      with
      | `Response r -> r
      | `Fallback ->
        (* failover: re-route the whole query to whoever is left *)
        locked t (fun () -> t.failovers_total <- t.failovers_total + 1);
        let cands = candidates t ~docs ~query:params.Protocol.query in
        run_routed t ~id ~docs ~cands ~timeout_ms line
    else run_routed t ~id ~docs ~cands ~timeout_ms line

(* ------------------------------------------------------------------ *)
(* Documents                                                           *)
(* ------------------------------------------------------------------ *)

(* One document op at a time ([doc_lock]): with several serving
   threads, two racing load-docs for the same uri with different
   sources could otherwise leave replicas holding different content
   while [t.docs] records a single line. *)
let handle_load_doc t ~id req uri =
  doc_locked t @@ fun () ->
  let line = Json.to_string (Json.Obj (without [ "id" ] (obj_fields req))) in
  let reps = Router.replicas t.router ~key:uri in
  let results =
    List.map
      (fun name ->
        if not (is_alive t name) then (name, Error "dead")
        else (name, send_retry t name ~timeout_ms:t.config.timeout_ms line))
      reps
  in
  (* a protocol-level failure (bad path, bad generator) is deterministic
     across replicas: report it instead of recording the document *)
  let worker_error =
    List.find_map
      (fun (_, r) ->
        match r with
        | Ok resp -> (
          match Json.parse resp with
          | j when Json.bool_opt (Json.member "ok" j) = Some false ->
            Json.str_opt (Json.member "error" j)
          | _ -> None
          | exception Json.Parse_error _ -> None)
        | Error _ -> None)
      results
  in
  match worker_error with
  | Some msg -> Json.to_string (Protocol.error_response ~id msg)
  | None ->
    let succeeded =
      List.filter_map
        (fun (name, r) -> match r with Ok _ -> Some name | Error _ -> None)
        results
    in
    if succeeded = [] then
      Json.to_string
        (Protocol.error_response ~id
           (Printf.sprintf "no live replica accepted document %s" uri))
    else begin
      let generation =
        locked t (fun () ->
            (* a (re)load allocates fresh node ids on every worker that
               takes it, so the document moves to the END of the global
               load order: always a fresh sequence *)
            t.doc_seq <- t.doc_seq + 1;
            Hashtbl.replace t.docs uri (t.doc_seq, [ line ]);
            (* workers that held an older copy (stale replicas after a
               reload, earlier failover recipients) must be re-shipped
               the new line before they serve this document again *)
            Hashtbl.iter (fun _ wd -> Hashtbl.remove wd.ords uri) t.loaded;
            List.iter (fun name -> record_loaded t name uri) succeeded;
            t.generation <- t.generation + 1;
            t.generation)
      in
      Json.to_string
        (Protocol.ok_response ~id
           [ ("uri", Json.Str uri);
             ("generation", Json.of_int generation);
             ("workers",
              Json.List (List.map (fun w -> Json.Str w) succeeded)) ])
    end

let handle_unload_doc t ~id req uri =
  doc_locked t @@ fun () ->
  let line = Json.to_string (Json.Obj (without [ "id" ] (obj_fields req))) in
  let holders =
    locked t (fun () ->
        Hashtbl.fold
          (fun name wd acc ->
            if Hashtbl.mem wd.ords uri then name :: acc else acc)
          t.loaded [])
  in
  List.iter
    (fun name ->
      if is_alive t name then
        ignore (send_retry t name ~timeout_ms:t.config.timeout_ms line);
      locked t (fun () -> Hashtbl.remove (worker_docs t name).ords uri))
    holders;
  let generation =
    locked t (fun () ->
        Hashtbl.remove t.docs uri;
        t.generation <- t.generation + 1;
        t.generation)
  in
  Json.to_string
    (Protocol.ok_response ~id
       [ ("uri", Json.Str uri); ("generation", Json.of_int generation) ])

(* A patch ships only to the workers currently holding the uri — the
   shards owning the document — never the whole fleet: workers without
   the document pick the patch up from the line history the next time
   [ensure_docs] or a respawn replay lands the document on them. Each
   holder rebuilds the patched subtree with fresh node ids, so (like a
   reload) the document moves to the END of every holder's local load
   order; recording a fresh sequence and re-recording ords keeps
   [order_ok] honest. *)
let handle_patch_doc t ~id req uri =
  doc_locked t @@ fun () ->
  let line = Json.to_string (Json.Obj (without [ "id" ] (obj_fields req))) in
  let known = locked t (fun () -> Hashtbl.mem t.docs uri) in
  if not known then
    Json.to_string
      (Protocol.error_response ~id
         (Printf.sprintf "no document loaded under %S" uri))
  else begin
    let holders =
      locked t (fun () ->
          Hashtbl.fold
            (fun name wd acc ->
              if Hashtbl.mem wd.ords uri && Hashtbl.mem t.alive name then
                name :: acc
              else acc)
            t.loaded []
          |> List.sort compare)
    in
    let results =
      List.map
        (fun name ->
          (name, send_retry t name ~timeout_ms:t.config.timeout_ms line))
        holders
    in
    (* a protocol-level refusal (bad path, malformed payload) is
       deterministic across holders: report it, leave the history
       unchanged so replicas stay consistent *)
    let worker_error =
      List.find_map
        (fun (_, r) ->
          match r with
          | Ok resp -> (
            match Json.parse resp with
            | j when Json.bool_opt (Json.member "ok" j) = Some false ->
              Json.str_opt (Json.member "error" j)
            | _ -> None
            | exception Json.Parse_error _ -> None)
          | Error _ -> None)
        results
    in
    match worker_error with
    | Some msg -> Json.to_string (Protocol.error_response ~id msg)
    | None ->
      let succeeded, failed =
        List.partition_map
          (fun (name, r) ->
            match r with Ok _ -> Left name | Error _ -> Right name)
          results
      in
      if succeeded = [] then
        Json.to_string
          (Protocol.error_response ~id
             (Printf.sprintf "no live holder accepted patch for %s" uri))
      else begin
        let generation =
          locked t (fun () ->
              t.doc_seq <- t.doc_seq + 1;
              (match Hashtbl.find_opt t.docs uri with
               | Some (_, lines) ->
                 Hashtbl.replace t.docs uri (t.doc_seq, lines @ [ line ])
               | None -> ());
              (* a holder that missed the patch holds stale content:
                 drop it from the replica set so it gets the full
                 history replayed before serving this uri again *)
              List.iter
                (fun name ->
                  Hashtbl.remove (worker_docs t name).ords uri)
                failed;
              List.iter
                (fun name ->
                  Hashtbl.remove (worker_docs t name).ords uri;
                  record_loaded t name uri)
                succeeded;
              t.generation <- t.generation + 1;
              t.generation)
        in
        Json.to_string
          (Protocol.ok_response ~id
             [ ("uri", Json.Str uri);
               ("generation", Json.of_int generation);
               ("workers",
                Json.List (List.map (fun w -> Json.Str w) succeeded)) ])
      end
  end

(* ------------------------------------------------------------------ *)
(* Query-shaped forwards that are not runs                             *)
(* ------------------------------------------------------------------ *)

(* prepare broadcasts to every live replica — cache warming is only
   useful where the query may later land; check/plan route like a run. *)
let handle_prepare t ~id req query =
  match parse_query query with
  | Error msg -> Json.to_string (Protocol.error_response ~id msg)
  | Ok program -> (
    let docs = Fixq.doc_uris program in
    let targets =
      match scatter_set t ~docs ~query with
      | [] -> (
        match candidates t ~docs ~query with [] -> [] | c :: _ -> [ c ])
      | reps -> reps
    in
    let line = Json.to_string (Json.Obj (without [ "id" ] (obj_fields req))) in
    let results =
      List.filter_map
        (fun name ->
          match ensure_docs t name docs with
          | Error _ -> None
          | Ok () -> (
            match send_retry t name ~timeout_ms:t.config.timeout_ms line with
            | Ok resp -> Some (name, resp)
            | Error _ -> None))
        targets
    in
    match results with
    | [] ->
      Json.to_string
        (Protocol.error_response ~id "no live worker can serve this request")
    | (_, first) :: _ ->
      let fields =
        match Json.parse first with
        | Json.Obj f -> without [ "ok"; "id" ] f
        | _ | (exception Json.Parse_error _) -> []
      in
      Json.to_string
        (Protocol.ok_response ~id
           (fields
           @ [ ("workers",
                Json.List (List.map (fun (w, _) -> Json.Str w) results)) ])))

let handle_query_forward t ~id req query =
  match parse_query query with
  | Error msg -> Json.to_string (Protocol.error_response ~id msg)
  | Ok program ->
    let docs = Fixq.doc_uris program in
    let cands = candidates t ~docs ~query in
    run_routed t ~id ~docs ~cands ~timeout_ms:t.config.timeout_ms
      (Json.to_string req)

(* ------------------------------------------------------------------ *)
(* Stats                                                               *)
(* ------------------------------------------------------------------ *)

let worker_stats t name =
  if not (is_alive t name) then Json.Null
  else
    match
      send_retry t name ~timeout_ms:t.config.timeout_ms {|{"op":"stats"}|}
    with
    | Error _ -> Json.Null
    | Ok resp -> (
      match Json.parse resp with
      | j -> Json.member "stats" j
      | exception Json.Parse_error _ -> Json.Null)

let handle_stats t ~id =
  let workers =
    List.map
      (fun name ->
        Json.Obj
          ([ ("name", Json.Str name);
             ("alive", Json.Bool (is_alive t name)) ]
          @ t.backend.info name
          @ [ ("stats", worker_stats t name) ]))
      t.backend.workers
  in
  let (gen, docs, retries, failovers, scatter, routed) =
    locked t (fun () ->
        ( t.generation,
          Hashtbl.fold (fun uri (seq, _) acc -> (seq, uri) :: acc) t.docs []
          |> List.sort compare |> List.map snd,
          t.retries_total, t.failovers_total, t.scatter_runs, t.routed_runs ))
  in
  Json.to_string
    (Protocol.ok_response ~id
       [ ("stats",
          Json.Obj
            [ ("workers", Json.List workers);
              ("documents", Json.List (List.map (fun u -> Json.Str u) docs));
              ("generation", Json.of_int gen);
              ("replication", Json.of_int (Router.replication t.router));
              ("retries", Json.of_int retries);
              ("failovers", Json.of_int failovers);
              ("scatter_runs", Json.of_int scatter);
              ("routed_runs", Json.of_int routed);
              ("restarts", Json.of_int (t.backend.restarts ()));
              ("uptime_ms",
               Json.Num ((Unix.gettimeofday () -. t.started_at) *. 1000.)) ]) ])

(* Inject worker="name" as the first label of every sample line so the
   workers' expositions can share one scrape page; # TYPE headers are
   deduplicated across workers. *)
let relabel_exposition ~worker ~seen_types buf text =
  List.iter
    (fun line ->
      if line = "" then ()
      else if String.length line > 0 && line.[0] = '#' then begin
        if not (Hashtbl.mem seen_types line) then begin
          Hashtbl.replace seen_types line ();
          Buffer.add_string buf line;
          Buffer.add_char buf '\n'
        end
      end
      else
        let space = String.index_opt line ' ' in
        let brace = String.index_opt line '{' in
        let out =
          match (brace, space) with
          | (Some b, Some s) when b < s ->
            String.sub line 0 b
            ^ Printf.sprintf "{worker=%S," worker
            ^ String.sub line (b + 1) (String.length line - b - 1)
          | (_, Some s) ->
            String.sub line 0 s
            ^ Printf.sprintf "{worker=%S}" worker
            ^ String.sub line s (String.length line - s)
          | _ -> line
        in
        Buffer.add_string buf out;
        Buffer.add_char buf '\n')
    (String.split_on_char '\n' text)

let prometheus_stats t =
  let buf = Buffer.create 2048 in
  let gauge name value =
    Buffer.add_string buf (Printf.sprintf "# TYPE %s gauge\n%s %s\n" name name value)
  in
  let counter name value =
    Buffer.add_string buf
      (Printf.sprintf "# TYPE %s counter\n%s %d\n" name name value)
  in
  let (gen, ndocs, retries, failovers, scatter, routed) =
    locked t (fun () ->
        ( t.generation, Hashtbl.length t.docs, t.retries_total,
          t.failovers_total, t.scatter_runs, t.routed_runs ))
  in
  gauge "fixq_cluster_uptime_seconds"
    (Printf.sprintf "%.3f" (Unix.gettimeofday () -. t.started_at));
  gauge "fixq_cluster_workers"
    (string_of_int (List.length t.backend.workers));
  gauge "fixq_cluster_workers_alive"
    (string_of_int (List.length (alive_workers t)));
  gauge "fixq_cluster_generation" (string_of_int gen);
  gauge "fixq_cluster_documents" (string_of_int ndocs);
  counter "fixq_cluster_retries_total" retries;
  counter "fixq_cluster_failovers_total" failovers;
  counter "fixq_cluster_scatter_runs_total" scatter;
  counter "fixq_cluster_routed_runs_total" routed;
  counter "fixq_cluster_worker_restarts_total" (t.backend.restarts ());
  let seen_types = Hashtbl.create 32 in
  List.iter
    (fun name ->
      if is_alive t name then
        match
          send_retry t name ~timeout_ms:t.config.timeout_ms
            {|{"op":"stats","format":"prometheus"}|}
        with
        | Error _ -> ()
        | Ok resp -> (
          match Json.parse resp with
          | j -> (
            match Json.str_opt (Json.member "prometheus" j) with
            | Some text -> relabel_exposition ~worker:name ~seen_types buf text
            | None -> ())
          | exception Json.Parse_error _ -> ()))
    t.backend.workers;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Dispatch                                                            *)
(* ------------------------------------------------------------------ *)

let broadcast_shutdown t =
  List.iter
    (fun name ->
      if is_alive t name then
        ignore
          (t.backend.send name ~timeout_ms:(Some 2000.) {|{"op":"shutdown"}|}))
    t.backend.workers

let handle_line t line =
  match Json.parse line with
  | exception Json.Parse_error msg ->
    (Json.to_string (Protocol.error_response ~id:Json.Null msg), false)
  | req -> (
    let id = Protocol.request_id req in
    match Protocol.parse_request req with
    | Error msg -> (Json.to_string (Protocol.error_response ~id msg), false)
    | Ok parsed -> (
      try
        match parsed with
        | Protocol.Run params -> (handle_run t ~id req params, false)
        | Protocol.Prepare { query; _ } ->
          (handle_prepare t ~id req query, false)
        | Protocol.Check { query; _ } | Protocol.Plan { query; _ } ->
          (handle_query_forward t ~id req query, false)
        | Protocol.Load_doc { uri; _ } -> (handle_load_doc t ~id req uri, false)
        | Protocol.Unload_doc { uri } ->
          (handle_unload_doc t ~id req uri, false)
        | Protocol.Patch_doc { uri; _ } ->
          (handle_patch_doc t ~id req uri, false)
        | Protocol.Stats Protocol.Stats_json -> (handle_stats t ~id, false)
        | Protocol.Stats Protocol.Stats_prometheus ->
          ( Json.to_string
              (Protocol.ok_response ~id
                 [ ("prometheus", Json.Str (prometheus_stats t)) ]),
            false )
        | Protocol.Ping ->
          ( Json.to_string
              (Protocol.ok_response ~id
                 [ ("pong", Json.Bool true);
                   ("workers",
                    Json.of_int (List.length (alive_workers t))) ]),
            false )
        | Protocol.Shutdown ->
          broadcast_shutdown t;
          ( Json.to_string
              (Protocol.ok_response ~id [ ("shutdown", Json.Bool true) ]),
            true )
      with exn ->
        ( Json.to_string
            (Protocol.error_response ~id
               ("internal error: " ^ Printexc.to_string exn)),
          false )))
