module Json = Fixq_service.Json
module Protocol = Fixq_service.Protocol
module Mirror = Fixq_service.Store
module Lang = Fixq.Lang

type backend = {
  workers : string list;
  send :
    string -> timeout_ms:float option -> string -> (string, string) result;
  info : string -> (string * Json.t) list;
  restarts : unit -> int;
  stop : unit -> unit;
  add_worker : unit -> (string, string) result;
  retire_worker : string -> unit;
  kill_worker : string -> unit;
}

type config = {
  replication : int;
  scatter : bool;
  retries : int;
  backoff_ms : float;
  jitter : float;
  timeout_ms : float option;
  compact_patches : int;
  min_slice_cost : float;
}

let default_config =
  { replication = 2; scatter = true; retries = 2; backoff_ms = 50.;
    jitter = 0.5; timeout_ms = None; compact_patches = 16;
    min_slice_cost = 0. }

(* What one worker process holds, and in which order it loaded it. A
   worker allocates node ids in load order and [Item.ddo] sorts
   cross-document by node id, so [ords] is exactly the worker's
   cross-document serialization (and seed enumeration) order. *)
type worker_docs = {
  mutable next_ord : int;
  ords : (string, int) Hashtbl.t;  (** uri → local load order *)
}

type t = {
  config : config;
  backend : backend;
  mutable workers : string list;
      (** current cluster membership, under [lock] — starts as
          [backend.workers], grows on add-worker, shrinks on
          remove-worker *)
  mutable router : Router.t;
  mutable next_router : Router.t option;
      (** set only while a rebalance is in flight ([doc_lock] held) *)
  cutover : (string, unit) Hashtbl.t;
      (** uris already routed by [next_router]: each key's cutover is
          one table insert under [lock] — atomic per key *)
  drained : (string, unit) Hashtbl.t;
      (** workers out of the routing table but still running *)
  lock : Mutex.t;
  doc_lock : Mutex.t;
      (** serializes document placement: load/unload, failover
          shipping, respawn replay. Two racing load-docs for one uri
          (or a load racing a replay) must not leave workers holding
          different content or different load orders than [docs] and
          [loaded] record. Never acquired while holding [lock]. *)
  alive : (string, unit) Hashtbl.t;
  docs : (string, int * string list) Hashtbl.t;
      (** uri → (load sequence, request-line history: the load-doc line
          followed by every patch-doc line applied since, in order).
          Failover shipping and respawn replay re-send the whole
          history so the recipient reconstructs the patched document.
          The sequence is the document's position in the global load
          order — fresh on every (re)load {e and} every patch, because
          both allocate fresh node ids on the workers that take them.
          [gather_keyed] sorts by it, and
          [order_ok] admits a worker to scatter (or prefers it for
          routed multi-document runs) only when the worker's own load
          order agrees, so position() enumeration and cross-document
          serialization match across processes. *)
  loaded : (string, worker_docs) Hashtbl.t;
  mirror : Mirror.t;
      (** coordinator-local copy of every loaded document, maintained
          best-effort from the same op stream the workers see — the
          synopsis source for cost-sized scatter ([min_slice_cost]);
          losing an update only degrades estimates, never answers *)
  mutable doc_seq : int;
  mutable generation : int;
  mutable retries_total : int;
  mutable backoff_ms_total : float;
  mutable failovers_total : int;
  mutable scatter_runs : int;
  mutable routed_runs : int;
  mutable rebalances_total : int;
  mutable docs_moved_total : int;
  mutable compactions_total : int;
  started_at : float;
}

let create ?(config = default_config) (backend : backend) =
  let router =
    Router.create ~workers:backend.workers ~replication:config.replication
  in
  let alive = Hashtbl.create 8 in
  List.iter (fun w -> Hashtbl.replace alive w ()) backend.workers;
  { config; backend; workers = backend.workers; router; next_router = None;
    cutover = Hashtbl.create 16; drained = Hashtbl.create 4;
    lock = Mutex.create ();
    doc_lock = Mutex.create (); alive;
    docs = Hashtbl.create 16; loaded = Hashtbl.create 8;
    mirror = Mirror.create (); doc_seq = 0;
    generation = 0; retries_total = 0; backoff_ms_total = 0.;
    failovers_total = 0; scatter_runs = 0;
    routed_runs = 0; rebalances_total = 0; docs_moved_total = 0;
    compactions_total = 0; started_at = Unix.gettimeofday () }

let router t = t.router

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let doc_locked t f =
  Mutex.lock t.doc_lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.doc_lock) f

let is_alive t name = locked t (fun () -> Hashtbl.mem t.alive name)
let mark_dead t name = locked t (fun () -> Hashtbl.remove t.alive name)
let current_workers t = locked t (fun () -> t.workers)

let alive_workers t =
  locked t (fun () ->
      List.filter (fun w -> Hashtbl.mem t.alive w) t.workers)

(* During a rebalance a key routes by the old table until its cutover
   lands in [t.cutover]; outside one, [next_router] is [None] and the
   current table decides. Both reads happen under one [lock] section so
   a key's routing flips atomically. *)
let router_for_locked t key =
  match t.next_router with
  | Some next when Hashtbl.mem t.cutover key -> next
  | _ -> t.router

let ranking_for t ~key =
  locked t (fun () -> Router.ranking (router_for_locked t key) ~key)

let replicas_for t ~key =
  locked t (fun () -> Router.replicas (router_for_locked t key) ~key)

(* The per-worker bookkeeping below runs under [t.lock]. *)

let worker_docs t name =
  match Hashtbl.find_opt t.loaded name with
  | Some wd -> wd
  | None ->
    let wd = { next_ord = 0; ords = Hashtbl.create 16 } in
    Hashtbl.replace t.loaded name wd;
    wd

(* The worker just (re)loaded [uri], allocating fresh node ids: the
   document is now LAST in its local load order. *)
let record_loaded t name uri =
  let wd = worker_docs t name in
  wd.next_ord <- wd.next_ord + 1;
  Hashtbl.replace wd.ords uri wd.next_ord

(* After [ensure_docs] ships whatever [name] is missing of [uris] (in
   global load order, appended after everything it already holds),
   will [name] hold [uris] in the global load order? Seed enumeration
   — hence position() slicing — and cross-document serialization both
   follow worker-local node-id order, so a scatter leg whose order
   diverges from its peers slices a different enumeration, and the
   gathered union silently drops or duplicates items. *)
let order_ok t name uris =
  let ords =
    match Hashtbl.find_opt t.loaded name with
    | Some wd -> wd.ords
    | None -> Hashtbl.create 0
  in
  let known =
    List.filter_map
      (fun uri ->
        Option.map (fun (seq, _) -> (uri, seq)) (Hashtbl.find_opt t.docs uri))
      uris
  in
  let (held, missing) =
    List.partition (fun (uri, _) -> Hashtbl.mem ords uri) known
  in
  let by_ord =
    List.sort compare
      (List.map (fun (uri, _) -> (Hashtbl.find ords uri, uri)) held)
  in
  let by_seq = List.sort compare (List.map (fun (u, s) -> (s, u)) held) in
  List.map snd by_ord = List.map snd by_seq
  && List.for_all
       (fun (_, hseq) -> List.for_all (fun (_, mseq) -> hseq < mseq) missing)
       held

(* ------------------------------------------------------------------ *)
(* Sending with retry / failover                                       *)
(* ------------------------------------------------------------------ *)

(* Retry the same worker with doubling backoff and jitter ([config.jitter]
   is the fraction of the backoff the random component may add — 0
   makes retries deterministic); when the budget is exhausted, mark it
   dead and let the caller fail over. *)
let send_retry t name ~timeout_ms line =
  let rec go attempt =
    match t.backend.send name ~timeout_ms line with
    | Ok r -> Ok r
    | Error e ->
      if attempt >= t.config.retries then begin
        mark_dead t name;
        Error e
      end
      else begin
        let backoff = t.config.backoff_ms *. (2. ** float_of_int attempt) in
        let jitter =
          if t.config.jitter <= 0. then 0.
          else Random.float (max 1. (backoff *. t.config.jitter))
        in
        locked t (fun () ->
            t.retries_total <- t.retries_total + 1;
            t.backoff_ms_total <- t.backoff_ms_total +. backoff +. jitter);
        Thread.delay ((backoff +. jitter) /. 1000.);
        go (attempt + 1)
      end
  in
  go 0

(* The documents of [uris] that [name] is missing, oldest global load
   sequence first — shipping in that order keeps the worker's local
   node-id order aligned with the global one whenever possible. *)
let missing_docs t name uris =
  locked t (fun () ->
      let ords =
        match Hashtbl.find_opt t.loaded name with
        | Some wd -> wd.ords
        | None -> Hashtbl.create 0
      in
      List.filter_map
        (fun uri ->
          match Hashtbl.find_opt t.docs uri with
          | Some (seq, lines) when not (Hashtbl.mem ords uri) ->
            Some (seq, uri, lines)
          | _ -> None)
        uris
      |> List.sort compare)

(* Make sure [name] holds every document of [uris] that the coordinator
   knows, re-sending the recorded load-doc lines for missing ones in
   global load order. This is what lets failover land on a worker
   outside a document's replica set: the document follows the query. *)
let ensure_docs t name uris =
  match missing_docs t name uris with
  | [] -> Ok ()
  | _ :: _ ->
    (* ship under the document lock: a concurrent (re)load of one of
       these uris, or a second shipper racing to the same worker, must
       not interleave — the worker would hold content or a load order
       the coordinator did not record *)
    doc_locked t (fun () ->
        (* a document's history (load line then patch lines) must land
           whole: recording the uri only after the last line means a
           partial replay leaves the worker out of the replica set *)
        let rec push_lines uri = function
          | [] -> Ok ()
          | line :: rest -> (
            match send_retry t name ~timeout_ms:t.config.timeout_ms line with
            | Error e -> Error e
            | Ok resp -> (
              match Json.parse resp with
              | j when Json.bool_opt (Json.member "ok" j) = Some true ->
                push_lines uri rest
              | _ -> Error (Printf.sprintf "replaying %s on %s failed" uri name)
              | exception Json.Parse_error _ ->
                Error (Printf.sprintf "replaying %s on %s: bad response" uri
                         name)))
        in
        let rec push = function
          | [] -> Ok ()
          | (_, uri, lines) :: rest -> (
            match push_lines uri lines with
            | Error e -> Error e
            | Ok () ->
              locked t (fun () -> record_loaded t name uri);
              push rest)
        in
        (* recompute under the lock: a racing shipper may have won *)
        push (missing_docs t name uris))

(* ------------------------------------------------------------------ *)
(* History compaction                                                   *)
(* ------------------------------------------------------------------ *)

(* Replace a document's request-line history (load line + every patch
   line since) with ONE materialized load-doc line, dumped from a live
   holder. The global load sequence is KEPT: a worker rebuilding the
   document from the materialized line produces the same tree —
   preorder ranks are structural — as one that replayed the patches,
   so [order_ok] and [gather_keyed] are unaffected; only replays get
   shorter. Requires [doc_lock]. *)
let compact_doc t uri =
  let info =
    locked t (fun () ->
        match Hashtbl.find_opt t.docs uri with
        | None -> None
        | Some (seq, lines) ->
          let holders =
            Hashtbl.fold
              (fun name wd acc ->
                if Hashtbl.mem wd.ords uri && Hashtbl.mem t.alive name then
                  name :: acc
                else acc)
              t.loaded []
            |> List.sort compare
          in
          Some (seq, lines, holders))
  in
  match info with
  | None -> Error (Printf.sprintf "no document loaded under %S" uri)
  | Some (_, [ line ], _) -> Ok line (* already compact *)
  | Some (seq, _, holders) ->
    let dump =
      Json.to_string
        (Json.Obj [ ("op", Json.Str "dump-doc"); ("uri", Json.Str uri) ])
    in
    let rec try_holders = function
      | [] -> Error (Printf.sprintf "no live holder can dump %s" uri)
      | h :: rest -> (
        match send_retry t h ~timeout_ms:t.config.timeout_ms dump with
        | Error _ -> try_holders rest
        | Ok resp -> (
          match Json.parse resp with
          | j when Json.bool_opt (Json.member "ok" j) = Some true -> (
            match Json.str_opt (Json.member "xml" j) with
            | None -> try_holders rest
            | Some xml ->
              let line =
                Json.to_string
                  (Json.Obj
                     [ ("op", Json.Str "load-doc"); ("uri", Json.Str uri);
                       ("xml", Json.Str xml) ])
              in
              locked t (fun () ->
                  match Hashtbl.find_opt t.docs uri with
                  | Some (seq', _) when seq' = seq ->
                    (* same seq: nothing reloaded the doc meanwhile *)
                    Hashtbl.replace t.docs uri (seq, [ line ]);
                    t.compactions_total <- t.compactions_total + 1
                  | _ -> ());
              Ok line)
          | _ -> try_holders rest
          | exception Json.Parse_error _ -> try_holders rest))
    in
    try_holders holders

(* Compact every multi-line history — the cluster [{"op":"snapshot"}]
   op. Requires [doc_lock]. *)
let compact_all t =
  let uris =
    locked t (fun () ->
        Hashtbl.fold
          (fun uri (_, lines) acc ->
            if List.length lines > 1 then uri :: acc else acc)
          t.docs [])
  in
  List.fold_left
    (fun acc uri ->
      match compact_doc t uri with Ok _ -> acc + 1 | Error _ -> acc)
    0 uris

let on_worker_respawn t name =
  doc_locked t (fun () ->
      let lines =
        locked t (fun () ->
            Hashtbl.replace t.alive name ();
            (* the respawned process is empty: forget, then replay in
               global load order so its node-id order matches its
               scatter peers' *)
            let uris =
              match Hashtbl.find_opt t.loaded name with
              | Some wd -> Hashtbl.fold (fun uri _ acc -> uri :: acc) wd.ords []
              | None -> []
            in
            Hashtbl.remove t.loaded name;
            List.filter_map
              (fun uri ->
                Option.map
                  (fun (seq, lines) -> (seq, uri, lines))
                  (Hashtbl.find_opt t.docs uri))
              uris
            |> List.sort compare)
      in
      List.iter
        (fun (_, uri, doc_lines) ->
          (* replay the compacted history when we can: one materialized
             load line instead of load + N patches *)
          let doc_lines =
            if t.config.compact_patches > 0 && List.length doc_lines > 1 then
              match compact_doc t uri with
              | Ok line -> [ line ]
              | Error _ -> doc_lines
            else doc_lines
          in
          let ok =
            List.for_all
              (fun line ->
                match
                  send_retry t name ~timeout_ms:t.config.timeout_ms line
                with
                | Ok _ -> true
                | Error _ -> false)
              doc_lines
          in
          if ok then locked t (fun () -> record_loaded t name uri))
        lines)

(* ------------------------------------------------------------------ *)
(* Routing                                                             *)
(* ------------------------------------------------------------------ *)

let parse_query query =
  match Lang.Parser.parse_program query with
  | p -> Ok p
  | exception Lang.Parser.Error { line; col; msg } ->
    Error (Printf.sprintf "parse error at %d:%d: %s" line col msg)
  | exception Lang.Lexer.Error { pos; msg } ->
    let line, col = Lang.Lexer.line_col_of query pos in
    Error (Printf.sprintf "lex error at %d:%d: %s" line col msg)

(* Preference order for a query: the rendezvous ranking of its first
   document (or of the query text itself when it touches no document),
   restricted to live workers. Workers outside the replica set still
   qualify — [ensure_docs] ships them the documents — so a query
   survives as long as one worker lives. Multi-document queries prefer
   workers whose local load order matches the global one: the others
   would answer with a set-equal but differently serialized result
   (documents in the wrong order). *)
let candidates t ~docs ~query =
  let key = match docs with [] -> "q:" ^ query | uri :: _ -> uri in
  let ranked = ranking_for t ~key in
  locked t (fun () ->
      let live = List.filter (fun w -> Hashtbl.mem t.alive w) ranked in
      match docs with
      | [] | [ _ ] -> live
      | _ ->
        let (consistent, rest) =
          List.partition (fun w -> order_ok t w docs) live
        in
        consistent @ rest)

(* Live workers inside the replica sets of ALL the query's documents
   whose local document load order agrees with the global one — the
   only sound scatter targets: a worker that loaded (or will receive,
   via [ensure_docs]) the documents in another order enumerates the
   seed differently, and the position()-mod-N slices would overlap or
   miss elements. *)
let scatter_set t ~docs ~query =
  let reps =
    match docs with
    | [] -> replicas_for t ~key:("q:" ^ query)
    | first :: rest ->
      List.fold_left
        (fun acc uri ->
          let r = replicas_for t ~key:uri in
          List.filter (fun w -> List.mem w r) acc)
        (replicas_for t ~key:first)
        rest
  in
  locked t (fun () ->
      List.filter
        (fun w -> Hashtbl.mem t.alive w && order_ok t w docs)
        reps)

(* Scatter is sound only when uniting the slices provably reproduces
   the whole: the program must BE one IFP (not merely contain one),
   its body must pass the Figure-5 syntactic distributivity check —
   Theorem 3.2 then gives e(s1 ∪ s2) = e(s1) ∪ e(s2) — and the
   analyzer must classify it [Terminates] (node-only seed and body):
   [gather_keyed] merges by portable node identity, while atoms would
   have to be restored to the single process's engine-production
   order, which the slices do not carry. The whole precondition lives
   in {!Fixq_analysis.Analyze.scatter_eligible}, shared with `fixq
   lint`'s report. *)
let scatterable t ~stratified (p : Lang.Ast.program) =
  t.config.scatter && Fixq_analysis.Analyze.scatter_eligible ~stratified p

(* ------------------------------------------------------------------ *)
(* JSON plumbing                                                       *)
(* ------------------------------------------------------------------ *)

let obj_fields = function Json.Obj fields -> fields | _ -> []

let without keys fields =
  List.filter (fun (k, _) -> not (List.mem k keys)) fields

let append_field (resp : string) key value =
  match Json.parse resp with
  | Json.Obj fields -> Json.to_string (Json.Obj (fields @ [ (key, value) ]))
  | _ | (exception Json.Parse_error _) -> resp

let forward_timeout t (params : Protocol.run_params) =
  (* give the worker its own budget plus slack before the transport
     gives up on the read; an unbudgeted request inherits the
     coordinator default *)
  match params.Protocol.timeout_ms with
  | Some ms -> Some ((ms *. 2.) +. 5000.)
  | None -> t.config.timeout_ms

(* ------------------------------------------------------------------ *)
(* The run path                                                        *)
(* ------------------------------------------------------------------ *)

(* Route the whole request to the first candidate that answers, marking
   losers dead and failing over down the preference order. *)
let run_routed t ~id ~docs ~cands ~timeout_ms line =
  let rec go = function
    | [] ->
      Json.to_string
        (Protocol.error_response ~id "no live worker can serve this request")
    | name :: rest -> (
      let fail () =
        if rest <> [] then
          locked t (fun () -> t.failovers_total <- t.failovers_total + 1);
        go rest
      in
      match ensure_docs t name docs with
      | Error _ -> fail ()
      | Ok () -> (
        match send_retry t name ~timeout_ms line with
        | Error _ -> fail ()
        | Ok resp ->
          locked t (fun () -> t.routed_runs <- t.routed_runs + 1);
          append_field resp "worker" (Json.Str name)))
  in
  go cands

type keyed_entry = { sort : int * int; tie : string; xml : string }

(* Merge the legs' keyed item lists into the single-process
   serialization: dedupe by portable identity, order document nodes by
   (document load sequence, preorder rank) — exactly [Item.ddo]'s
   document order for identically-loaded stores — and join with single
   spaces as [Serializer.seq_to_string] does.

   Each worker serializes its shard already in that order, so the legs
   are merged pairwise (the same kernel shape as
   [Fixq_xdm.Accumulator.merged]) instead of re-sorted globally; a leg
   that arrives out of order is sorted first (counted as a fallback).
   Entries sharing a key keep the earlier leg's serialization — the
   first-seen-wins rule of the old hash-based dedup — and the output
   order among survivors depends only on the key, so the merged bytes
   equal the old globally-sorted bytes. *)
let entry_key e = (e.sort, e.tie)

let gather_keyed t legs =
  let parse_leg leg =
    match Json.member "keyed" leg with
    | Json.List items ->
      List.map
        (fun item ->
          let xml =
            Option.value ~default:"" (Json.str_opt (Json.member "x" item))
          in
          match Json.str_opt (Json.member "u" item) with
          | Some u ->
            let rank =
              Option.value ~default:0 (Json.int_opt (Json.member "r" item))
            in
            let seq =
              locked t (fun () ->
                  match Hashtbl.find_opt t.docs u with
                  | Some (seq, _) -> seq
                  | None -> max_int - 1)
            in
            { sort = (seq, rank); tie = "u:" ^ u; xml }
          | None ->
            let k =
              Option.value ~default:("x:" ^ xml)
                (Json.str_opt (Json.member "k" item))
            in
            { sort = (max_int, 0); tie = k; xml })
        items
    | _ -> []
  in
  (* Strictly-ascending scan doubling as within-leg dedup (first wins). *)
  let sorted_leg entries =
    let sorted =
      let rec ascending prev = function
        | [] -> true
        | e :: rest ->
          compare (entry_key prev) (entry_key e) < 0 && ascending e rest
      in
      match entries with [] -> true | e :: rest -> ascending e rest
    in
    if sorted then entries
    else begin
      incr Fixq_xdm.Counters.fallback_sorts;
      let stable =
        List.stable_sort
          (fun a b -> compare (entry_key a) (entry_key b))
          entries
      in
      let rec dedup = function
        | [] -> []
        | a :: rest ->
          let rec drop = function
            | b :: more when entry_key a = entry_key b -> drop more
            | more -> more
          in
          a :: dedup (drop rest)
      in
      dedup stable
    end
  in
  (* Linear two-leg merge; on equal keys the earlier leg's entry wins. *)
  let merge a b =
    incr Fixq_xdm.Counters.merges;
    Fixq_xdm.Counters.merged_items :=
      !Fixq_xdm.Counters.merged_items + List.length a + List.length b;
    let rec go acc a b =
      match (a, b) with
      | ([], rest) | (rest, []) -> List.rev_append acc rest
      | (x :: xs, y :: ys) ->
        let c = compare (entry_key x) (entry_key y) in
        if c < 0 then go (x :: acc) xs b
        else if c > 0 then go (y :: acc) a ys
        else go (x :: acc) xs ys
    in
    go [] a b
  in
  let rec reduce = function
    | [] -> []
    | [ l ] -> l
    | l1 :: l2 :: rest -> reduce (merge l1 l2 :: rest)
  in
  let merged = reduce (List.map (fun l -> sorted_leg (parse_leg l)) legs) in
  String.concat " " (List.map (fun e -> e.xml) merged)

let num_member name j = Option.value ~default:0. (Json.num_opt (Json.member name j))
let int_member name j = Option.value ~default:0 (Json.int_opt (Json.member name j))

(* Chaos faults on a scatter leg resolve to a leg [Error], i.e. the
   `Transport shape — the coordinator falls back to whole-query routing
   exactly as it would for a worker that died between scatter and
   gather. [Kill] additionally marks the worker dead so the fallback
   must route around it (the in-flight failover path). *)
let chaos_scatter t name =
  match Fixq_chaos.check "coordinator.scatter" with
  | None -> None
  | Some (Fixq_chaos.Delay s) ->
    Fixq_chaos.sleep s;
    None
  | Some Fixq_chaos.Kill ->
    mark_dead t name;
    Some (Printf.sprintf "chaos: %s killed mid-scatter" name)
  | Some (Fixq_chaos.Drop | Fixq_chaos.Truncate | Fixq_chaos.Oom) ->
    Some (Printf.sprintf "chaos: scatter leg to %s dropped" name)

let run_scatter t ~id ~docs ~workers ~timeout_ms fields =
  let m = List.length workers in
  let base = without [ "id"; "partition" ] fields in
  let results = Array.make m (Error "not sent") in
  let threads =
    List.mapi
      (fun j name ->
        let leg_line =
          Json.to_string
            (Json.Obj
               (base
               @ [ ("partition",
                    Json.Obj
                      [ ("index", Json.of_int j); ("of", Json.of_int m) ]) ]))
        in
        Thread.create
          (fun () ->
            let r =
              match chaos_scatter t name with
              | Some e -> Error e
              | None -> (
                match ensure_docs t name docs with
                | Error e -> Error e
                | Ok () ->
                (* re-check after shipping: a racing load-doc may have
                   changed this worker's local order since
                   [scatter_set] approved it *)
                if locked t (fun () -> order_ok t name docs) then
                  send_retry t name ~timeout_ms leg_line
                else
                  Error
                    (Printf.sprintf
                       "%s no longer holds documents in global load order"
                       name))
            in
            results.(j) <- r)
          ())
      workers
  in
  List.iter Thread.join threads;
  let parsed =
    Array.to_list results
    |> List.map (fun r ->
           match r with
           | Error e -> Error (`Transport e)
           | Ok resp -> (
             match Json.parse resp with
             | j ->
               if Json.bool_opt (Json.member "ok" j) = Some true then Ok j
               else
                 Error
                   (`Worker
                     (Option.value ~default:"worker error"
                        (Json.str_opt (Json.member "error" j))))
             | exception Json.Parse_error m -> Error (`Worker m)))
  in
  if List.exists (function Error (`Transport _) -> true | _ -> false) parsed
  then `Fallback (* a leg died or fell out of load order: give up *)
  else
    match
      List.find_map
        (function Error (`Worker m) -> Some m | _ -> None)
        parsed
    with
    | Some msg -> `Response (Json.to_string (Protocol.error_response ~id msg))
    | None ->
      let legs = List.filter_map Result.to_option parsed in
      (* belt and braces under the static node-only gate: if a leg
         still produced an item without portable node identity (an
         atom or constructed node, keyed "k"), its single-process
         serialization order cannot be rebuilt here — run whole *)
      let nodes_only =
        List.for_all
          (fun leg ->
            match Json.member "keyed" leg with
            | Json.List items ->
              List.for_all
                (fun item -> Json.str_opt (Json.member "u" item) <> None)
                items
            | _ -> true)
          legs
      in
      if not nodes_only then `Fallback
      else
      let first = List.hd legs in
      let result = gather_keyed t legs in
      locked t (fun () -> t.scatter_runs <- t.scatter_runs + 1);
      let generation = locked t (fun () -> t.generation) in
      `Response
        (Json.to_string
           (Protocol.ok_response ~id
              [ ("engine", Json.member "engine" first);
                ("mode", Json.member "mode" first);
                ("used_delta", Json.member "used_delta" first);
                ("generation", Json.of_int generation);
                ("nodes_fed",
                 Json.of_int
                   (List.fold_left
                      (fun acc l -> acc + int_member "nodes_fed" l)
                      0 legs));
                ("depth",
                 Json.of_int
                   (List.fold_left
                      (fun acc l -> max acc (int_member "depth" l))
                      0 legs));
                ("result", Json.Str result);
                ("scatter",
                 Json.Obj
                   [ ("legs", Json.of_int m);
                     ("workers",
                      Json.List (List.map (fun w -> Json.Str w) workers)) ]);
                ("wall_ms",
                 Json.Num
                   (List.fold_left
                      (fun acc l -> Float.max acc (num_member "wall_ms" l))
                      0. legs)) ]))

let handle_run t ~id req (params : Protocol.run_params) =
  match parse_query params.Protocol.query with
  | Error msg -> Json.to_string (Protocol.error_response ~id msg)
  | Ok program ->
    let docs = Fixq.doc_uris program in
    let line = Json.to_string req in
    let timeout_ms = forward_timeout t params in
    let cands = candidates t ~docs ~query:params.Protocol.query in
    let stratified = Option.value ~default:false params.Protocol.stratified in
    let scatter_workers =
      if params.Protocol.partition <> None then []
        (* client already partitions: forward whole *)
      else if scatterable t ~stratified program then
        scatter_set t ~docs ~query:params.Protocol.query
      else []
    in
    (* Cost-sized scatter: instead of fanning out to every eligible
       replica, give each leg at least [min_slice_cost] estimated work
       — per the local mirror's synopses — so a cheap query over a
       small seed doesn't pay per-leg coordination for nothing. *)
    let scatter_workers =
      if t.config.min_slice_cost <= 0. || List.length scatter_workers < 2
      then scatter_workers
      else begin
        let estimate =
          try
            (Fixq_cost.Estimate.analyze ~registry:(Mirror.registry t.mirror)
               program)
              .Fixq_cost.Estimate.work
          with _ -> Float.infinity
        in
        let legs =
          max 1 (int_of_float (ceil (estimate /. t.config.min_slice_cost)))
        in
        List.filteri (fun i _ -> i < legs) scatter_workers
      end
    in
    if List.length scatter_workers >= 2 then
      match
        run_scatter t ~id ~docs ~workers:scatter_workers ~timeout_ms
          (obj_fields req)
      with
      | `Response r -> r
      | `Fallback ->
        (* failover: re-route the whole query to whoever is left *)
        locked t (fun () -> t.failovers_total <- t.failovers_total + 1);
        let cands = candidates t ~docs ~query:params.Protocol.query in
        run_routed t ~id ~docs ~cands ~timeout_ms line
    else run_routed t ~id ~docs ~cands ~timeout_ms line

(* ------------------------------------------------------------------ *)
(* Documents                                                           *)
(* ------------------------------------------------------------------ *)

(* One document op at a time ([doc_lock]): with several serving
   threads, two racing load-docs for the same uri with different
   sources could otherwise leave replicas holding different content
   while [t.docs] records a single line. *)
(* Best-effort replay of an accepted document op into the coordinator's
   local mirror. The mirror only feeds cost estimation (synopses for
   scatter sizing); a failed replay — unreadable path on this host, a
   patch racing a reload — degrades estimates, so it is swallowed. *)
let mirror_apply t req =
  try
    match Protocol.parse_request req with
    | Ok (Protocol.Load_doc { uri; source }) -> (
      match source with
      | Protocol.From_xml xml -> Mirror.load_xml t.mirror ~uri xml
      | Protocol.From_path path -> Mirror.load_file t.mirror ~uri path
      | Protocol.From_generator { kind; size; seed } ->
        let size =
          match size with
          | Some s -> s
          | None -> (
            match kind with
            | "xmark" -> 0.002
            | "hospital" -> 1000.0
            | _ -> 100.0)
        in
        Mirror.load_generated t.mirror ~uri ~kind ~size ~seed)
    | Ok (Protocol.Patch_doc { uri; op }) ->
      ignore (Mirror.patch t.mirror ~uri op)
    | Ok (Protocol.Unload_doc { uri }) -> Mirror.unload t.mirror uri
    | Ok _ | Error _ -> ()
  with _ -> ()

let handle_load_doc t ~id req uri =
  doc_locked t @@ fun () ->
  let line = Json.to_string (Json.Obj (without [ "id" ] (obj_fields req))) in
  let reps = replicas_for t ~key:uri in
  let results =
    List.map
      (fun name ->
        if not (is_alive t name) then (name, Error "dead")
        else (name, send_retry t name ~timeout_ms:t.config.timeout_ms line))
      reps
  in
  (* a protocol-level failure (bad path, bad generator) is deterministic
     across replicas: report it instead of recording the document *)
  let worker_error =
    List.find_map
      (fun (_, r) ->
        match r with
        | Ok resp -> (
          match Json.parse resp with
          | j when Json.bool_opt (Json.member "ok" j) = Some false ->
            Json.str_opt (Json.member "error" j)
          | _ -> None
          | exception Json.Parse_error _ -> None)
        | Error _ -> None)
      results
  in
  match worker_error with
  | Some msg -> Json.to_string (Protocol.error_response ~id msg)
  | None ->
    let succeeded =
      List.filter_map
        (fun (name, r) -> match r with Ok _ -> Some name | Error _ -> None)
        results
    in
    if succeeded = [] then
      Json.to_string
        (Protocol.error_response ~id
           (Printf.sprintf "no live replica accepted document %s" uri))
    else begin
      mirror_apply t req;
      let generation =
        locked t (fun () ->
            (* a (re)load allocates fresh node ids on every worker that
               takes it, so the document moves to the END of the global
               load order: always a fresh sequence *)
            t.doc_seq <- t.doc_seq + 1;
            Hashtbl.replace t.docs uri (t.doc_seq, [ line ]);
            (* workers that held an older copy (stale replicas after a
               reload, earlier failover recipients) must be re-shipped
               the new line before they serve this document again *)
            Hashtbl.iter (fun _ wd -> Hashtbl.remove wd.ords uri) t.loaded;
            List.iter (fun name -> record_loaded t name uri) succeeded;
            t.generation <- t.generation + 1;
            t.generation)
      in
      Json.to_string
        (Protocol.ok_response ~id
           [ ("uri", Json.Str uri);
             ("generation", Json.of_int generation);
             ("workers",
              Json.List (List.map (fun w -> Json.Str w) succeeded)) ])
    end

let handle_unload_doc t ~id req uri =
  doc_locked t @@ fun () ->
  let line = Json.to_string (Json.Obj (without [ "id" ] (obj_fields req))) in
  let holders =
    locked t (fun () ->
        Hashtbl.fold
          (fun name wd acc ->
            if Hashtbl.mem wd.ords uri then name :: acc else acc)
          t.loaded [])
  in
  List.iter
    (fun name ->
      if is_alive t name then
        ignore (send_retry t name ~timeout_ms:t.config.timeout_ms line);
      locked t (fun () -> Hashtbl.remove (worker_docs t name).ords uri))
    holders;
  mirror_apply t req;
  let generation =
    locked t (fun () ->
        Hashtbl.remove t.docs uri;
        t.generation <- t.generation + 1;
        t.generation)
  in
  Json.to_string
    (Protocol.ok_response ~id
       [ ("uri", Json.Str uri); ("generation", Json.of_int generation) ])

(* A patch ships only to the workers currently holding the uri — the
   shards owning the document — never the whole fleet: workers without
   the document pick the patch up from the line history the next time
   [ensure_docs] or a respawn replay lands the document on them. Each
   holder rebuilds the patched subtree with fresh node ids, so (like a
   reload) the document moves to the END of every holder's local load
   order; recording a fresh sequence and re-recording ords keeps
   [order_ok] honest. *)
let handle_patch_doc t ~id req uri =
  doc_locked t @@ fun () ->
  let line = Json.to_string (Json.Obj (without [ "id" ] (obj_fields req))) in
  let known = locked t (fun () -> Hashtbl.mem t.docs uri) in
  if not known then
    Json.to_string
      (Protocol.error_response ~id
         (Printf.sprintf "no document loaded under %S" uri))
  else begin
    let holders =
      locked t (fun () ->
          Hashtbl.fold
            (fun name wd acc ->
              if Hashtbl.mem wd.ords uri && Hashtbl.mem t.alive name then
                name :: acc
              else acc)
            t.loaded []
          |> List.sort compare)
    in
    let results =
      List.map
        (fun name ->
          (name, send_retry t name ~timeout_ms:t.config.timeout_ms line))
        holders
    in
    (* a protocol-level refusal (bad path, malformed payload) is
       deterministic across holders: report it, leave the history
       unchanged so replicas stay consistent *)
    let worker_error =
      List.find_map
        (fun (_, r) ->
          match r with
          | Ok resp -> (
            match Json.parse resp with
            | j when Json.bool_opt (Json.member "ok" j) = Some false ->
              Json.str_opt (Json.member "error" j)
            | _ -> None
            | exception Json.Parse_error _ -> None)
          | Error _ -> None)
        results
    in
    match worker_error with
    | Some msg -> Json.to_string (Protocol.error_response ~id msg)
    | None ->
      let succeeded, failed =
        List.partition_map
          (fun (name, r) ->
            match r with Ok _ -> Left name | Error _ -> Right name)
          results
      in
      if succeeded = [] then
        Json.to_string
          (Protocol.error_response ~id
             (Printf.sprintf "no live holder accepted patch for %s" uri))
      else begin
        mirror_apply t req;
        let generation =
          locked t (fun () ->
              t.doc_seq <- t.doc_seq + 1;
              (match Hashtbl.find_opt t.docs uri with
               | Some (_, lines) ->
                 Hashtbl.replace t.docs uri (t.doc_seq, lines @ [ line ])
               | None -> ());
              (* a holder that missed the patch holds stale content:
                 drop it from the replica set so it gets the full
                 history replayed before serving this uri again *)
              List.iter
                (fun name ->
                  Hashtbl.remove (worker_docs t name).ords uri)
                failed;
              List.iter
                (fun name ->
                  Hashtbl.remove (worker_docs t name).ords uri;
                  record_loaded t name uri)
                succeeded;
              t.generation <- t.generation + 1;
              t.generation)
        in
        (* keep respawn replay and failover shipping O(1) lines per
           document: past the threshold, fold the history into one
           materialized load (same seq, so the global order is kept) *)
        if t.config.compact_patches > 0 then begin
          let depth =
            locked t (fun () ->
                match Hashtbl.find_opt t.docs uri with
                | Some (_, lines) -> List.length lines
                | None -> 0)
          in
          if depth > t.config.compact_patches then ignore (compact_doc t uri)
        end;
        Json.to_string
          (Protocol.ok_response ~id
             [ ("uri", Json.Str uri);
               ("generation", Json.of_int generation);
               ("workers",
                Json.List (List.map (fun w -> Json.Str w) succeeded)) ])
      end
  end

(* ------------------------------------------------------------------ *)
(* Online rebalancing                                                   *)
(* ------------------------------------------------------------------ *)

(* A chaos fault on a key move. [Kill] SIGKILLs the DESTINATION worker
   mid-move — the realistic mid-cutover crash: the health thread
   respawns the process (its [on_respawn] replay then queues on
   [doc_lock] until the rebalance finishes), and the move is retried on
   a later round against the fresh, empty worker. The other faults fail
   the attempt without side effects; it is retried the same way. *)
let chaos_rebalance t ~dest =
  match Fixq_chaos.check "coordinator.rebalance" with
  | None -> Ok ()
  | Some (Fixq_chaos.Delay s) ->
    Fixq_chaos.sleep s;
    Ok ()
  | Some Fixq_chaos.Kill ->
    t.backend.kill_worker dest;
    mark_dead t dest;
    Error (Printf.sprintf "chaos: destination %s killed mid-move" dest)
  | Some (Fixq_chaos.Drop | Fixq_chaos.Truncate | Fixq_chaos.Oom) ->
    Error "chaos: key move dropped"

(* Move one key to its placement under [next]: compact its history to a
   single materialized load line (dumped from a live holder — snapshot
   shipping, not line replay), send that to the replicas gained under
   [next], then flip the key's routing in one [cutover] insert. The old
   holders keep serving the key until that flip. Requires [doc_lock]. *)
let move_key t ~next uri =
  let old_reps = Router.replicas t.router ~key:uri in
  let new_reps = Router.replicas next ~key:uri in
  let gained = List.filter (fun w -> not (List.mem w old_reps)) new_reps in
  let targets =
    locked t (fun () ->
        List.filter
          (fun w ->
            match Hashtbl.find_opt t.loaded w with
            | Some wd -> not (Hashtbl.mem wd.ords uri)
            | None -> true)
          gained)
  in
  let lines =
    (* a doc whose only holders died ships its recorded history instead *)
    match compact_doc t uri with
    | Ok line -> [ line ]
    | Error _ -> (
      match locked t (fun () -> Hashtbl.find_opt t.docs uri) with
      | Some (_, lines) -> lines
      | None -> [])
  in
  let ship_to dest =
    if lines = [] then Error (Printf.sprintf "no recorded history for %s" uri)
    else
    match chaos_rebalance t ~dest with
    | Error _ as e -> e
    | Ok () ->
      let rec push = function
        | [] ->
          locked t (fun () -> record_loaded t dest uri);
          Ok ()
        | line :: rest -> (
          match send_retry t dest ~timeout_ms:t.config.timeout_ms line with
          | Error _ as e -> e
          | Ok resp -> (
            match Json.parse resp with
            | j when Json.bool_opt (Json.member "ok" j) = Some true ->
              push rest
            | j ->
              Error
                (Option.value ~default:"load refused"
                   (Json.str_opt (Json.member "error" j)))
            | exception Json.Parse_error _ -> Error "bad response"))
      in
      push lines
  in
  let shipped =
    List.fold_left
      (fun acc dest -> match acc with Error _ -> acc | Ok () -> ship_to dest)
      (Ok ()) targets
  in
  match shipped with
  | Error _ as e -> e
  | Ok () ->
    locked t (fun () -> Hashtbl.replace t.cutover uri ());
    Ok ()

(* Swap the routing table to [next]. Runs whole under [doc_lock]:
   loads, unloads and patches queue behind it; queries keep flowing
   (they contend on [doc_lock] only when a document must be shipped).
   Key moves that keep failing — chaos killing the destination over and
   over — are bounded by [max_rounds] and then cut over anyway: that is
   safe, because routing a query at a replica that lacks the document
   makes [ensure_docs] ship the (compacted) history on demand. Returns
   (moved, still-pending) uris. *)
let rebalance t ~next =
  doc_locked t @@ fun () ->
  locked t (fun () ->
      t.rebalances_total <- t.rebalances_total + 1;
      t.next_router <- Some next;
      Hashtbl.reset t.cutover);
  let keys =
    locked t (fun () ->
        Hashtbl.fold (fun uri (seq, _) acc -> (seq, uri) :: acc) t.docs []
        |> List.sort compare |> List.map snd)
  in
  let moving =
    List.filter
      (fun uri ->
        Router.replicas t.router ~key:uri <> Router.replicas next ~key:uri)
      keys
  in
  let max_rounds = 50 in
  let rec rounds n pending =
    if pending = [] || n >= max_rounds then pending
    else begin
      if n > 0 then Thread.delay 0.2;
      (* a killed destination needs the health thread's respawn *)
      let failed =
        List.filter
          (fun uri ->
            match move_key t ~next uri with Ok () -> false | Error _ -> true)
          pending
      in
      rounds (n + 1) failed
    end
  in
  let pending = rounds 0 moving in
  locked t (fun () ->
      t.router <- next;
      t.next_router <- None;
      Hashtbl.reset t.cutover;
      t.docs_moved_total <- t.docs_moved_total + List.length moving);
  (moving, pending)

let topology_response t ~id ~worker ~moved ~pending =
  Json.to_string
    (Protocol.ok_response ~id
       [ ("worker", Json.Str worker);
         ("moved", Json.List (List.map (fun u -> Json.Str u) moved));
         ("pending", Json.List (List.map (fun u -> Json.Str u) pending));
         ("workers",
          Json.List
            (List.map (fun w -> Json.Str w)
               (locked t (fun () -> Router.workers t.router)))) ])

let handle_add_worker t ~id =
  match t.backend.add_worker () with
  | Error msg -> Json.to_string (Protocol.error_response ~id msg)
  | Ok name ->
    locked t (fun () ->
        t.workers <- t.workers @ [ name ];
        Hashtbl.replace t.alive name ());
    let next =
      Router.create
        ~workers:(locked t (fun () -> Router.workers t.router) @ [ name ])
        ~replication:t.config.replication
    in
    let (moved, pending) = rebalance t ~next in
    topology_response t ~id ~worker:name ~moved ~pending

(* Take [name] out of the routing table (its keys move to the
   survivors) but keep the process running. Idempotent-ish: draining a
   worker already out of the table moves nothing. *)
let drain_out t name =
  let current = locked t (fun () -> Router.workers t.router) in
  if not (List.mem name current) then Ok ([], [])
  else if List.length current <= 1 then
    Error "cannot drain the last worker"
  else begin
    let next =
      Router.create
        ~workers:(List.filter (fun w -> w <> name) current)
        ~replication:t.config.replication
    in
    let (moved, pending) = rebalance t ~next in
    locked t (fun () -> Hashtbl.replace t.drained name ());
    Ok (moved, pending)
  end

let handle_drain t ~id name =
  if not (List.mem name (current_workers t)) then
    Json.to_string
      (Protocol.error_response ~id (Printf.sprintf "unknown worker %S" name))
  else
    match drain_out t name with
    | Error msg -> Json.to_string (Protocol.error_response ~id msg)
    | Ok (moved, pending) ->
      topology_response t ~id ~worker:name ~moved ~pending

let handle_remove_worker t ~id name =
  if not (List.mem name (current_workers t)) then
    Json.to_string
      (Protocol.error_response ~id (Printf.sprintf "unknown worker %S" name))
  else
    match drain_out t name with
    | Error msg -> Json.to_string (Protocol.error_response ~id msg)
    | Ok (moved, pending) ->
      t.backend.retire_worker name;
      locked t (fun () ->
          t.workers <- List.filter (fun w -> w <> name) t.workers;
          Hashtbl.remove t.alive name;
          Hashtbl.remove t.drained name;
          Hashtbl.remove t.loaded name);
      topology_response t ~id ~worker:name ~moved ~pending

(* The cluster-level [{"op":"snapshot"}]: compact every document's line
   history (the cluster's equivalent of the workers' WAL-truncating
   snapshot — respawn replay afterwards is one line per document). *)
let handle_cluster_snapshot t ~id =
  let compacted = doc_locked t (fun () -> compact_all t) in
  let docs = locked t (fun () -> Hashtbl.length t.docs) in
  Json.to_string
    (Protocol.ok_response ~id
       [ ("snapshot", Json.Bool true);
         ("compacted", Json.of_int compacted);
         ("documents", Json.of_int docs) ])

(* dump-doc forwards to a live holder of the uri, verbatim. *)
let handle_dump_doc t ~id req uri =
  let holders =
    locked t (fun () ->
        Hashtbl.fold
          (fun name wd acc ->
            if Hashtbl.mem wd.ords uri && Hashtbl.mem t.alive name then
              name :: acc
            else acc)
          t.loaded []
        |> List.sort compare)
  in
  let line = Json.to_string req in
  let rec go = function
    | [] ->
      Json.to_string
        (Protocol.error_response ~id
           (Printf.sprintf "no live holder of %S" uri))
    | h :: rest -> (
      match send_retry t h ~timeout_ms:t.config.timeout_ms line with
      | Error _ -> go rest
      | Ok resp -> append_field resp "worker" (Json.Str h))
  in
  go holders

(* ------------------------------------------------------------------ *)
(* Query-shaped forwards that are not runs                             *)
(* ------------------------------------------------------------------ *)

(* prepare broadcasts to every live replica — cache warming is only
   useful where the query may later land; check/plan route like a run. *)
let handle_prepare t ~id req query =
  match parse_query query with
  | Error msg -> Json.to_string (Protocol.error_response ~id msg)
  | Ok program -> (
    let docs = Fixq.doc_uris program in
    let targets =
      match scatter_set t ~docs ~query with
      | [] -> (
        match candidates t ~docs ~query with [] -> [] | c :: _ -> [ c ])
      | reps -> reps
    in
    let line = Json.to_string (Json.Obj (without [ "id" ] (obj_fields req))) in
    let results =
      List.filter_map
        (fun name ->
          match ensure_docs t name docs with
          | Error _ -> None
          | Ok () -> (
            match send_retry t name ~timeout_ms:t.config.timeout_ms line with
            | Ok resp -> Some (name, resp)
            | Error _ -> None))
        targets
    in
    match results with
    | [] ->
      Json.to_string
        (Protocol.error_response ~id "no live worker can serve this request")
    | (_, first) :: _ ->
      let fields =
        match Json.parse first with
        | Json.Obj f -> without [ "ok"; "id" ] f
        | _ | (exception Json.Parse_error _) -> []
      in
      Json.to_string
        (Protocol.ok_response ~id
           (fields
           @ [ ("workers",
                Json.List (List.map (fun (w, _) -> Json.Str w) results)) ])))

let handle_query_forward t ~id req query =
  match parse_query query with
  | Error msg -> Json.to_string (Protocol.error_response ~id msg)
  | Ok program ->
    let docs = Fixq.doc_uris program in
    let cands = candidates t ~docs ~query in
    run_routed t ~id ~docs ~cands ~timeout_ms:t.config.timeout_ms
      (Json.to_string req)

(* ------------------------------------------------------------------ *)
(* Stats                                                               *)
(* ------------------------------------------------------------------ *)

let worker_stats t name =
  if not (is_alive t name) then Json.Null
  else
    match
      send_retry t name ~timeout_ms:t.config.timeout_ms {|{"op":"stats"}|}
    with
    | Error _ -> Json.Null
    | Ok resp -> (
      match Json.parse resp with
      | j -> Json.member "stats" j
      | exception Json.Parse_error _ -> Json.Null)

let handle_stats t ~id =
  let workers =
    List.map
      (fun name ->
        Json.Obj
          ([ ("name", Json.Str name);
             ("alive", Json.Bool (is_alive t name)) ]
          @ t.backend.info name
          @ [ ("drained",
               Json.Bool (locked t (fun () -> Hashtbl.mem t.drained name)));
              ("stats", worker_stats t name) ]))
      (current_workers t)
  in
  let ( gen, docs, retries, backoff_ms, failovers, scatter, routed,
        rebalances, moved, compactions ) =
    locked t (fun () ->
        ( t.generation,
          Hashtbl.fold (fun uri (seq, _) acc -> (seq, uri) :: acc) t.docs []
          |> List.sort compare |> List.map snd,
          t.retries_total, t.backoff_ms_total, t.failovers_total,
          t.scatter_runs, t.routed_runs, t.rebalances_total,
          t.docs_moved_total, t.compactions_total ))
  in
  Json.to_string
    (Protocol.ok_response ~id
       [ ("stats",
          Json.Obj
            [ ("workers", Json.List workers);
              ("documents", Json.List (List.map (fun u -> Json.Str u) docs));
              ("generation", Json.of_int gen);
              ("replication", Json.of_int (Router.replication t.router));
              ("retries", Json.of_int retries);
              ("backoff_ms_total", Json.Num backoff_ms);
              ("failovers", Json.of_int failovers);
              ("scatter_runs", Json.of_int scatter);
              ("routed_runs", Json.of_int routed);
              ("rebalances", Json.of_int rebalances);
              ("docs_moved", Json.of_int moved);
              ("compactions", Json.of_int compactions);
              ("restarts", Json.of_int (t.backend.restarts ()));
              ("uptime_ms",
               Json.Num ((Unix.gettimeofday () -. t.started_at) *. 1000.)) ]) ])

(* Inject worker="name" as the first label of every sample line so the
   workers' expositions can share one scrape page; # TYPE headers are
   deduplicated across workers. *)
let relabel_exposition ~worker ~seen_types buf text =
  List.iter
    (fun line ->
      if line = "" then ()
      else if String.length line > 0 && line.[0] = '#' then begin
        if not (Hashtbl.mem seen_types line) then begin
          Hashtbl.replace seen_types line ();
          Buffer.add_string buf line;
          Buffer.add_char buf '\n'
        end
      end
      else
        let space = String.index_opt line ' ' in
        let brace = String.index_opt line '{' in
        let out =
          match (brace, space) with
          | (Some b, Some s) when b < s ->
            String.sub line 0 b
            ^ Printf.sprintf "{worker=%S," worker
            ^ String.sub line (b + 1) (String.length line - b - 1)
          | (_, Some s) ->
            String.sub line 0 s
            ^ Printf.sprintf "{worker=%S}" worker
            ^ String.sub line s (String.length line - s)
          | _ -> line
        in
        Buffer.add_string buf out;
        Buffer.add_char buf '\n')
    (String.split_on_char '\n' text)

let prometheus_stats t =
  let buf = Buffer.create 2048 in
  let gauge name value =
    Buffer.add_string buf (Printf.sprintf "# TYPE %s gauge\n%s %s\n" name name value)
  in
  let counter name value =
    Buffer.add_string buf
      (Printf.sprintf "# TYPE %s counter\n%s %d\n" name name value)
  in
  let ( gen, ndocs, retries, backoff_ms, failovers, scatter, routed,
        rebalances, moved, compactions ) =
    locked t (fun () ->
        ( t.generation, Hashtbl.length t.docs, t.retries_total,
          t.backoff_ms_total, t.failovers_total, t.scatter_runs,
          t.routed_runs, t.rebalances_total, t.docs_moved_total,
          t.compactions_total ))
  in
  gauge "fixq_cluster_uptime_seconds"
    (Printf.sprintf "%.3f" (Unix.gettimeofday () -. t.started_at));
  gauge "fixq_cluster_workers"
    (string_of_int (List.length (current_workers t)));
  gauge "fixq_cluster_workers_alive"
    (string_of_int (List.length (alive_workers t)));
  gauge "fixq_cluster_generation" (string_of_int gen);
  gauge "fixq_cluster_documents" (string_of_int ndocs);
  counter "fixq_retries_total" retries;
  Buffer.add_string buf
    (Printf.sprintf
       "# TYPE fixq_backoff_ms_total counter\nfixq_backoff_ms_total %.3f\n"
       backoff_ms);
  counter "fixq_cluster_retries_total" retries;
  counter "fixq_cluster_failovers_total" failovers;
  counter "fixq_cluster_scatter_runs_total" scatter;
  counter "fixq_cluster_routed_runs_total" routed;
  counter "fixq_cluster_rebalances_total" rebalances;
  counter "fixq_cluster_docs_moved_total" moved;
  counter "fixq_cluster_compactions_total" compactions;
  counter "fixq_cluster_worker_restarts_total" (t.backend.restarts ());
  let seen_types = Hashtbl.create 32 in
  List.iter
    (fun name ->
      if is_alive t name then
        match
          send_retry t name ~timeout_ms:t.config.timeout_ms
            {|{"op":"stats","format":"prometheus"}|}
        with
        | Error _ -> ()
        | Ok resp -> (
          match Json.parse resp with
          | j -> (
            match Json.str_opt (Json.member "prometheus" j) with
            | Some text -> relabel_exposition ~worker:name ~seen_types buf text
            | None -> ())
          | exception Json.Parse_error _ -> ()))
    (current_workers t);
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Dispatch                                                            *)
(* ------------------------------------------------------------------ *)

let broadcast_shutdown t =
  List.iter
    (fun name ->
      if is_alive t name then
        ignore
          (t.backend.send name ~timeout_ms:(Some 2000.) {|{"op":"shutdown"}|}))
    (current_workers t)

let handle_line t line =
  match Json.parse line with
  | exception Json.Parse_error msg ->
    (Json.to_string (Protocol.error_response ~id:Json.Null msg), false)
  | req -> (
    let id = Protocol.request_id req in
    match Protocol.parse_request req with
    | Error msg -> (Json.to_string (Protocol.error_response ~id msg), false)
    | Ok parsed -> (
      try
        match parsed with
        | Protocol.Run params -> (handle_run t ~id req params, false)
        | Protocol.Prepare { query; _ } ->
          (handle_prepare t ~id req query, false)
        | Protocol.Check { query; _ } | Protocol.Plan { query; _ }
        | Protocol.Explain { query; _ } ->
          (handle_query_forward t ~id req query, false)
        | Protocol.Load_doc { uri; _ } -> (handle_load_doc t ~id req uri, false)
        | Protocol.Unload_doc { uri } ->
          (handle_unload_doc t ~id req uri, false)
        | Protocol.Patch_doc { uri; _ } ->
          (handle_patch_doc t ~id req uri, false)
        | Protocol.Snapshot -> (handle_cluster_snapshot t ~id, false)
        | Protocol.Dump_doc { uri } -> (handle_dump_doc t ~id req uri, false)
        | Protocol.Add_worker -> (handle_add_worker t ~id, false)
        | Protocol.Remove_worker { name } ->
          (handle_remove_worker t ~id name, false)
        | Protocol.Drain { name } -> (handle_drain t ~id name, false)
        | Protocol.Stats Protocol.Stats_json -> (handle_stats t ~id, false)
        | Protocol.Stats Protocol.Stats_prometheus ->
          ( Json.to_string
              (Protocol.ok_response ~id
                 [ ("prometheus", Json.Str (prometheus_stats t)) ]),
            false )
        | Protocol.Ping ->
          ( Json.to_string
              (Protocol.ok_response ~id
                 [ ("pong", Json.Bool true);
                   ("workers",
                    Json.of_int (List.length (alive_workers t))) ]),
            false )
        | Protocol.Shutdown ->
          broadcast_shutdown t;
          ( Json.to_string
              (Protocol.ok_response ~id [ ("shutdown", Json.Bool true) ]),
            true )
      with exn ->
        ( Json.to_string
            (Protocol.error_response ~id
               ("internal error: " ^ Printexc.to_string exn)),
          false )))
