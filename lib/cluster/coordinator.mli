(** The cluster coordinator: speaks the {!Fixq_service.Protocol} wire
    format to clients and fans requests out to workers.

    Routing is document-sharded: [load-doc] goes to the rendezvous
    replicas of its URI ({!Router}), and a query follows the documents
    it mentions ([Fixq.doc_uris]). Queries whose whole program is a
    single {e distributive} IFP are scatter-gathered: the seed is
    sliced into one residue class per live replica
    ([partition:{index,of}]), every replica runs its slice, and the
    coordinator unites the keyed results in document order —
    Theorem 3.2 is exactly the licence that this union equals the
    single-process answer. Everything else routes whole to one worker.

    Failures heal in layers: per-send retries with exponential backoff
    and jitter, then failover to the next live replica (marking the
    loser dead), while the supervisor's respawn hook
    ({!on_worker_respawn}) brings workers back and replays their
    documents.

    Topology changes online: [add-worker] spawns a worker and
    [remove-worker]/[drain] retire or empty one, each followed by a
    rebalance — every key whose rendezvous replica set changes (exactly
    the gained/lost worker's keys, the HRW property) has its document
    state shipped snapshot-style (a [dump-doc] from a live holder,
    materialized into one load line) to its new replicas while the old
    holders keep serving, then cut over atomically per key. The
    [coordinator.rebalance] chaos point kills a destination mid-move to
    exercise the retry rounds. *)

module Json = Fixq_service.Json

type backend = {
  workers : string list;  (** initial worker names, supervisor order *)
  send :
    string -> timeout_ms:float option -> string -> (string, string) result;
      (** [send name ~timeout_ms line] — one request line to one
          worker; [Error] means transport failure (dead worker), not a
          protocol-level [{"ok":false}] *)
  info : string -> (string * Json.t) list;
      (** per-worker extras for [stats] (pid, socket, restarts, …) *)
  restarts : unit -> int;  (** total respawns so far *)
  stop : unit -> unit;  (** terminate the workers (after [shutdown]) *)
  add_worker : unit -> (string, string) result;
      (** spawn one more worker, return its name once it accepts *)
  retire_worker : string -> unit;
      (** permanently terminate a worker (no respawn) *)
  kill_worker : string -> unit;
      (** SIGKILL without retiring — the supervisor respawns it; the
          [coordinator.rebalance] Kill fault lands here *)
}

type config = {
  replication : int;  (** replicas per document (clamped to cluster size) *)
  scatter : bool;  (** allow seed-partitioned scatter-gather *)
  retries : int;  (** re-sends per request leg before failover *)
  backoff_ms : float;  (** base backoff; doubles per retry, plus jitter *)
  jitter : float;
      (** jitter as a fraction of the current backoff ([0.] disables,
          making retry timing deterministic; default 0.5) *)
  timeout_ms : float option;  (** transport read budget for forwards *)
  compact_patches : int;
      (** fold a document's line history into one materialized load
          once it exceeds this many lines (and before respawn replay /
          rebalance shipping); [0] disables compaction (default 16) *)
  min_slice_cost : float;
      (** cost-sized scatter: cap the fan-out so every leg carries at
          least this much estimated work (per the coordinator's local
          document mirror and {!Fixq_cost.Estimate}); [0.] disables the
          sizing — every eligible replica gets a leg (default) *)
}

val default_config : config

type t

val create : ?config:config -> backend -> t

(** The current routing table (it changes when a rebalance completes). *)
val router : t -> Router.t

(** Current membership: [backend.workers] plus added minus removed
    workers (drained workers are still members — running but unrouted). *)
val current_workers : t -> string list

(** Workers currently believed alive (a failed send marks its target
    dead; {!on_worker_respawn} revives it). *)
val alive_workers : t -> string list

val mark_dead : t -> string -> unit

(** The supervisor respawn hook: mark [name] alive again and replay
    every document it is supposed to hold. *)
val on_worker_respawn : t -> string -> unit

(** The coordinator as a line handler — plug into
    {!Fixq_service.Server.serve_pipe_with} /
    [serve_socket_with]. Returns (response line, shutdown?). On
    [shutdown] the workers have been told to shut down too (best
    effort); the caller should then [backend.stop ()]. *)
val handle_line : t -> string -> string * bool
