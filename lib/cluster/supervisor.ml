module Server = Fixq_service.Server

type worker = {
  w_name : string;
  w_socket : string;
  w_log : string;
  mutable w_pid : int;
  mutable w_restarts : int;
}

type t = {
  dir : string;
  command : name:string -> socket:string -> string array;
  ready_timeout_ms : float;
  lock : Mutex.t;
  mutable workers : worker list;
  mutable health : Thread.t option;
  mutable stopping : bool;
}

let spawn_process t w =
  let argv = t.command ~name:w.w_name ~socket:w.w_socket in
  let devnull = Unix.openfile "/dev/null" [ Unix.O_RDONLY ] 0 in
  let log =
    Unix.openfile w.w_log [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_APPEND ] 0o644
  in
  let pid = Unix.create_process argv.(0) argv devnull log log in
  Unix.close devnull;
  Unix.close log;
  w.w_pid <- pid

let wait_ready t w =
  let deadline = Unix.gettimeofday () +. (t.ready_timeout_ms /. 1000.) in
  let rec poll () =
    if Server.socket_alive w.w_socket then ()
    else if Unix.gettimeofday () > deadline then
      failwith
        (Printf.sprintf "worker %s did not come up on %s within %.0fms"
           w.w_name w.w_socket t.ready_timeout_ms)
    else begin
      (* bail out early if the process already died (bad flags, …) *)
      (match Unix.waitpid [ Unix.WNOHANG ] w.w_pid with
      | (0, _) -> ()
      | (_, _) ->
        failwith
          (Printf.sprintf "worker %s exited during startup; see %s" w.w_name
             w.w_log)
      | exception Unix.Unix_error _ -> ());
      Thread.delay 0.02;
      poll ()
    end
  in
  poll ()

let create ~dir ~count ~command ?(ready_timeout_ms = 15000.) () =
  if count < 1 then invalid_arg "Supervisor.create: count < 1";
  if not (Sys.file_exists dir) then Unix.mkdir dir 0o755;
  let t =
    { dir; command; ready_timeout_ms; lock = Mutex.create (); workers = [];
      health = None; stopping = false }
  in
  t.workers <-
    List.init count (fun i ->
        let name = Printf.sprintf "w%d" i in
        { w_name = name;
          w_socket = Filename.concat dir (name ^ ".sock");
          w_log = Filename.concat dir (name ^ ".log");
          w_pid = -1; w_restarts = 0 });
  List.iter (fun w -> spawn_process t w) t.workers;
  List.iter (fun w -> wait_ready t w) t.workers;
  t

let names t = List.map (fun w -> w.w_name) t.workers
let find t name = List.find_opt (fun w -> w.w_name = name) t.workers

(* Worker names are never reused: a retired [w2] leaves a gap, and the
   next add becomes [w5] if 4 was the highest ever — rendezvous
   placement is name-keyed, so reusing a name would silently inherit
   the old worker's documents. *)
let next_name workers =
  let top =
    List.fold_left
      (fun acc w ->
        let n = String.length w.w_name in
        if n > 1 && w.w_name.[0] = 'w' then
          match int_of_string_opt (String.sub w.w_name 1 (n - 1)) with
          | Some i -> max acc i
          | None -> acc
        else acc)
      (-1) workers
  in
  Printf.sprintf "w%d" (top + 1)

let add_worker t =
  Mutex.lock t.lock;
  if t.stopping then begin
    Mutex.unlock t.lock;
    failwith "Supervisor.add_worker: supervisor is stopping"
  end;
  let name = next_name t.workers in
  let w =
    { w_name = name;
      w_socket = Filename.concat t.dir (name ^ ".sock");
      w_log = Filename.concat t.dir (name ^ ".log");
      w_pid = -1; w_restarts = 0 }
  in
  t.workers <- t.workers @ [ w ];
  spawn_process t w;
  Mutex.unlock t.lock;
  wait_ready t w;
  name

let socket_path t name =
  match find t name with
  | Some w -> w.w_socket
  | None -> invalid_arg ("Supervisor.socket_path: unknown worker " ^ name)

let pid t name = Option.map (fun w -> w.w_pid) (find t name)

let restarts t =
  Mutex.lock t.lock;
  let n = List.fold_left (fun acc w -> acc + w.w_restarts) 0 t.workers in
  Mutex.unlock t.lock;
  n

let reaped w =
  match Unix.waitpid [ Unix.WNOHANG ] w.w_pid with
  | (0, _) -> false
  | (_, _) -> true
  | exception Unix.Unix_error (Unix.ECHILD, _, _) ->
    (* already reaped (or reparented); dead either way if kill fails *)
    (match Unix.kill w.w_pid 0 with
    | () -> false
    | exception Unix.Unix_error _ -> true)
  | exception Unix.Unix_error _ -> false

let kill_worker w =
  (try Unix.kill w.w_pid Sys.sigterm with Unix.Unix_error _ -> ());
  let deadline = Unix.gettimeofday () +. 2.0 in
  let rec wait () =
    if reaped w then ()
    else if Unix.gettimeofday () > deadline then begin
      (try Unix.kill w.w_pid Sys.sigkill with Unix.Unix_error _ -> ());
      (try ignore (Unix.waitpid [] w.w_pid) with Unix.Unix_error _ -> ())
    end
    else begin
      Thread.delay 0.05;
      wait ()
    end
  in
  wait ()

let retire_worker t name =
  Mutex.lock t.lock;
  let (gone, kept) = List.partition (fun w -> w.w_name = name) t.workers in
  t.workers <- kept;
  Mutex.unlock t.lock;
  List.iter
    (fun w ->
      kill_worker w;
      if Sys.file_exists w.w_socket then
        try Unix.unlink w.w_socket with Unix.Unix_error _ | Sys_error _ -> ())
    gone

let kill9 t name =
  match find t name with
  | Some w when w.w_pid > 0 -> (
    try Unix.kill w.w_pid Sys.sigkill with Unix.Unix_error _ -> ())
  | _ -> ()

let check ?ping ~on_respawn t =
  (* snapshot under the lock; ping and kill (seconds each for an
     unresponsive worker) run outside it so they cannot block stop()
     or restarts(); only the quick respawn bookkeeping relocks *)
  Mutex.lock t.lock;
  let snapshot = if t.stopping then [] else t.workers in
  Mutex.unlock t.lock;
  let respawn_list =
    List.filter
      (fun w ->
        if reaped w then true
        else
          match ping with
          | Some p when not (p w.w_name) ->
            kill_worker w;
            true
          | _ -> false)
      snapshot
  in
  if respawn_list <> [] then begin
    Mutex.lock t.lock;
    let spawned =
      if t.stopping then [] (* stop() won the race: stay down *)
      else begin
        (* a worker retired since the snapshot must stay down *)
        let still =
          List.filter (fun w -> List.memq w t.workers) respawn_list
        in
        List.iter
          (fun w ->
            w.w_restarts <- w.w_restarts + 1;
            spawn_process t w)
          still;
        still
      end
    in
    Mutex.unlock t.lock;
    List.iter
      (fun w ->
        wait_ready t w;
        on_respawn w.w_name)
      spawned
  end

let start_health ~interval_ms ?ping ~on_respawn t =
  if t.health <> None then invalid_arg "Supervisor.start_health: already running";
  let thread () =
    let tick = 0.05 in
    let rec sleep remaining =
      if (not t.stopping) && remaining > 0. then begin
        Thread.delay (min tick remaining);
        sleep (remaining -. tick)
      end
    in
    while not t.stopping do
      sleep (interval_ms /. 1000.);
      if not t.stopping then
        try check ?ping ~on_respawn t with _ -> ()
    done
  in
  t.health <- Some (Thread.create thread ())

let stop t =
  Mutex.lock t.lock;
  let already = t.stopping in
  t.stopping <- true;
  Mutex.unlock t.lock;
  if not already then begin
    (match t.health with Some th -> Thread.join th | None -> ());
    t.health <- None;
    List.iter kill_worker t.workers;
    List.iter
      (fun w ->
        if Sys.file_exists w.w_socket then
          try Unix.unlink w.w_socket with Unix.Unix_error _ | Sys_error _ -> ())
      t.workers
  end
