module Json = Fixq_service.Json

type t = {
  supervisor : Supervisor.t;
  coordinator : Coordinator.t;
  transport_lock : Mutex.t;
      (** [add-worker]/[remove-worker] mutate the transport tables while
          request threads read them *)
  transports : (string, Transport.t) Hashtbl.t;
  ping_transports : (string, Transport.t) Hashtbl.t;
      (** health pings ride their own connections so a long-running
          request on the main transport cannot stall the health loop *)
}

let launch ~dir ~count ~command ?(config = Coordinator.default_config)
    ?(health_interval_ms = 1000.) () =
  let supervisor = Supervisor.create ~dir ~count ~command () in
  let transport_lock = Mutex.create () in
  let transports = Hashtbl.create 8 in
  let ping_transports = Hashtbl.create 8 in
  let with_transports f =
    Mutex.lock transport_lock;
    Fun.protect ~finally:(fun () -> Mutex.unlock transport_lock) f
  in
  let register name =
    let path = Supervisor.socket_path supervisor name in
    with_transports (fun () ->
        Hashtbl.replace transports name (Transport.create path);
        Hashtbl.replace ping_transports name (Transport.create path))
  in
  List.iter register (Supervisor.names supervisor);
  let send name ~timeout_ms line =
    match with_transports (fun () -> Hashtbl.find_opt transports name) with
    | None -> Error ("unknown worker " ^ name)
    | Some tr -> Transport.call ?timeout_ms tr line
  in
  let info name =
    [ ("socket", Json.Str (Supervisor.socket_path supervisor name));
      ("pid", Json.of_int (Option.value ~default:(-1) (Supervisor.pid supervisor name))) ]
  in
  let add_worker () =
    match Supervisor.add_worker supervisor with
    | name ->
      register name;
      Ok name
    | exception Failure msg -> Error msg
  in
  let retire_worker name =
    Supervisor.retire_worker supervisor name;
    with_transports (fun () ->
        (match Hashtbl.find_opt transports name with
        | Some tr ->
          Transport.close tr;
          Hashtbl.remove transports name
        | None -> ());
        match Hashtbl.find_opt ping_transports name with
        | Some tr ->
          Transport.close tr;
          Hashtbl.remove ping_transports name
        | None -> ())
  in
  let backend =
    { Coordinator.workers = Supervisor.names supervisor; send; info;
      restarts = (fun () -> Supervisor.restarts supervisor);
      stop = (fun () -> Supervisor.stop supervisor);
      add_worker; retire_worker;
      kill_worker = (fun name -> Supervisor.kill9 supervisor name) }
  in
  let coordinator = Coordinator.create ~config backend in
  let ping name =
    let find_ping name =
      Mutex.lock transport_lock;
      let tr = Hashtbl.find_opt ping_transports name in
      Mutex.unlock transport_lock;
      tr
    in
    (* A chaos fault on the health probe reports the worker unresponsive,
       so the supervisor SIGKILLs and respawns it — a real worker crash
       and doc-replay cycle driven from a deterministic schedule.
       [Delay] stalls the probe instead (a slow worker, not a dead one). *)
    let chaos_dead =
      match Fixq_chaos.check "supervisor.ping" with
      | None -> false
      | Some (Fixq_chaos.Delay s) ->
        Fixq_chaos.sleep s;
        false
      | Some
          ( Fixq_chaos.Drop | Fixq_chaos.Truncate | Fixq_chaos.Kill
          | Fixq_chaos.Oom ) ->
        true
    in
    if chaos_dead then false
    else
    match find_ping name with
    | None -> false
    | Some tr -> (
      let once () = Transport.call ~timeout_ms:5000. tr {|{"op":"ping"}|} in
      match once () with
      | Ok _ -> true
      | Error _ -> (
        (* the first failure may just be a stale cached connection to a
           predecessor process — the failed call tore it down, so one
           immediate retry dials fresh; only that failing means dead *)
        match once () with Ok _ -> true | Error _ -> false))
  in
  Supervisor.start_health ~interval_ms:health_interval_ms ~ping
    ~on_respawn:(fun name -> Coordinator.on_worker_respawn coordinator name)
    supervisor;
  { supervisor; coordinator; transport_lock; transports; ping_transports }

let coordinator t = t.coordinator
let supervisor t = t.supervisor
let handle_line t line = Coordinator.handle_line t.coordinator line

let shutdown t =
  Supervisor.stop t.supervisor;
  Mutex.lock t.transport_lock;
  Hashtbl.iter (fun _ tr -> Transport.close tr) t.transports;
  Hashtbl.iter (fun _ tr -> Transport.close tr) t.ping_transports;
  Mutex.unlock t.transport_lock
