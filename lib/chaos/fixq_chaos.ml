type fault =
  | Drop
  | Delay of float
  | Truncate
  | Kill
  | Oom

type event = { point : string; fault : fault; seq : int }

let points =
  [ "transport.send"; "transport.recv"; "coordinator.scatter";
    "supervisor.ping"; "server.handle"; "fixpoint.round"; "store.read";
    "store.patch"; "store.wal"; "store.snapshot"; "coordinator.rebalance" ]

let fault_to_string = function
  | Drop -> "drop"
  | Delay s -> Printf.sprintf "delay%d" (int_of_float (s *. 1000.0 +. 0.5))
  | Truncate -> "truncate"
  | Kill -> "kill"
  | Oom -> "oom"

(* splitmix64: tiny, seedable, statistically fine for fault scheduling, and
   independent of any global Random state the host program may use. *)
module Rng = struct
  type t = { mutable state : int64 }

  let create seed = { state = seed }

  let next t =
    t.state <- Int64.add t.state 0x9E3779B97F4A7C15L;
    let z = t.state in
    let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30))
        0xBF58476D1CE4E5B9L in
    let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27))
        0x94D049BB133111EBL in
    Int64.logxor z (Int64.shift_right_logical z 31)

  (* uniform float in [0, 1) from the top 53 bits *)
  let float t =
    let bits = Int64.shift_right_logical (next t) 11 in
    Int64.to_float bits *. (1.0 /. 9007199254740992.0)
end

type rule = {
  fault : fault;
  prob : float;
  nth : int option;  (* fire only on the n-th arrival (1-based) *)
  max : int option;  (* cap total firings *)
  rng : Rng.t;
  mutable fired_count : int;
}

type point_state = {
  rules : rule list;
  mutable arrivals : int;
}

let enabled = ref false
let mutex = Mutex.create ()
let table : (string, point_state) Hashtbl.t = Hashtbl.create 16
let fired_total = ref 0
let event_log : event list ref = ref []
let log_fd : Unix.file_descr option ref = ref None
let log_path : string option ref = ref None

let close_log () =
  (match !log_fd with
   | Some fd -> (try Unix.close fd with Unix.Unix_error _ -> ())
   | None -> ());
  log_fd := None

let set_log path =
  Mutex.lock mutex;
  close_log ();
  log_path := path;
  (match path with
   | Some p ->
     (try
        log_fd :=
          Some (Unix.openfile p [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_APPEND ]
                  0o644)
      with Unix.Unix_error _ -> log_fd := None)
   | None -> ());
  Mutex.unlock mutex

(* One atomic [write] per event so entries survive SIGKILL mid-run. *)
let log_event ev =
  match !log_fd with
  | None -> ()
  | Some fd ->
    let line =
      Printf.sprintf "%d %d %s %s\n" (Unix.getpid ()) ev.seq ev.point
        (fault_to_string ev.fault)
    in
    let b = Bytes.of_string line in
    (try ignore (Unix.write fd b 0 (Bytes.length b))
     with Unix.Unix_error _ -> ())

let reset_locked () =
  Hashtbl.reset table;
  enabled := false;
  fired_total := 0;
  event_log := []

let reset () =
  Mutex.lock mutex;
  reset_locked ();
  close_log ();
  log_path := None;
  Mutex.unlock mutex

let active () = !enabled

(* Distinct PRNG stream per rule: mix the global seed with the point name
   and the rule's index so adding a rule never perturbs the others. *)
let rule_seed ~seed ~point ~index =
  let h = Hashtbl.hash (point, index) in
  Int64.logxor (Int64.of_int seed)
    (Int64.mul (Int64.of_int (h + 1)) 0x9E3779B97F4A7C15L)

let parse_kind s =
  match s with
  | "drop" -> Ok Drop
  | "truncate" -> Ok Truncate
  | "kill" -> Ok Kill
  | "oom" -> Ok Oom
  | _ ->
    let n = String.length s in
    if n > 5 && String.sub s 0 5 = "delay" then
      match int_of_string_opt (String.sub s 5 (n - 5)) with
      | Some ms when ms >= 0 -> Ok (Delay (float_of_int ms /. 1000.0))
      | _ -> Error (Printf.sprintf "chaos: bad delay %S" s)
    else Error (Printf.sprintf "chaos: unknown fault kind %S" s)

(* <kind>[:<prob>][@<nth>][#<max>] — suffixes may appear in any order. *)
let parse_rule_spec spec =
  let buf = Buffer.create 8 in
  let prob = ref 1.0 and nth = ref None and max = ref None in
  let err = ref None in
  let n = String.length spec in
  let rec take_num i =
    if i < n && (match spec.[i] with
        | '0' .. '9' | '.' | 'e' | 'E' | '-' | '+' -> true
        | _ -> false)
    then take_num (i + 1)
    else i
  in
  let rec go i =
    if i >= n || !err <> None then ()
    else
      match spec.[i] with
      | ':' | '@' | '#' ->
        let stop = take_num (i + 1) in
        let num = String.sub spec (i + 1) (stop - i - 1) in
        (match spec.[i] with
         | ':' ->
           (match float_of_string_opt num with
            | Some p when p >= 0.0 && p <= 1.0 -> prob := p
            | _ -> err := Some (Printf.sprintf "chaos: bad probability %S" num))
         | '@' ->
           (match int_of_string_opt num with
            | Some k when k >= 1 -> nth := Some k
            | _ -> err := Some (Printf.sprintf "chaos: bad @nth %S" num))
         | _ ->
           (match int_of_string_opt num with
            | Some k when k >= 1 -> max := Some k
            | _ -> err := Some (Printf.sprintf "chaos: bad #max %S" num)));
        go stop
      | c ->
        Buffer.add_char buf c;
        go (i + 1)
  in
  go 0;
  match !err with
  | Some e -> Error e
  | None ->
    (match parse_kind (Buffer.contents buf) with
     | Error e -> Error e
     | Ok fault -> Ok (fault, !prob, !nth, !max))

let configure spec =
  let items =
    String.split_on_char ',' spec
    |> List.map String.trim
    |> List.filter (fun s -> s <> "")
  in
  let seed = ref 0 in
  let parsed = ref [] in  (* (point, fault, prob, nth, max) newest first *)
  let error = ref None in
  List.iter
    (fun item ->
       if !error = None then
         match String.index_opt item '=' with
         | None ->
           error := Some (Printf.sprintf "chaos: expected key=value in %S" item)
         | Some eq ->
           let key = String.sub item 0 eq in
           let value =
             String.sub item (eq + 1) (String.length item - eq - 1)
           in
           if key = "seed" then
             match int_of_string_opt value with
             | Some s -> seed := s
             | None -> error := Some (Printf.sprintf "chaos: bad seed %S" value)
           else if List.mem key points then
             match parse_rule_spec value with
             | Ok (fault, prob, nth, max) ->
               parsed := (key, fault, prob, nth, max) :: !parsed
             | Error e -> error := Some e
           else
             error := Some (Printf.sprintf "chaos: unknown point %S" key))
    items;
  match !error with
  | Some e -> Error e
  | None ->
    Mutex.lock mutex;
    reset_locked ();
    let index = Hashtbl.create 8 in  (* point -> next rule index *)
    List.iter
      (fun (point, fault, prob, nth, max) ->
         let i =
           match Hashtbl.find_opt index point with Some i -> i | None -> 0
         in
         Hashtbl.replace index point (i + 1);
         let rule =
           { fault; prob; nth; max;
             rng = Rng.create (rule_seed ~seed:!seed ~point ~index:i);
             fired_count = 0 }
         in
         let st =
           match Hashtbl.find_opt table point with
           | Some st -> st
           | None ->
             let st = { rules = []; arrivals = 0 } in
             Hashtbl.replace table point st;
             st
         in
         Hashtbl.replace table point { st with rules = st.rules @ [ rule ] })
      (List.rev !parsed);
    if Hashtbl.length table > 0 then enabled := true;
    Mutex.unlock mutex;
    Ok ()

let from_env () =
  (match Sys.getenv_opt "FIXQ_CHAOS_LOG" with
   | Some p when p <> "" -> set_log (Some p)
   | _ -> ());
  match Sys.getenv_opt "FIXQ_CHAOS" with
  | Some spec when String.trim spec <> "" -> configure spec
  | _ -> Ok ()

let check point =
  if not (List.mem point points) then
    invalid_arg (Printf.sprintf "Fixq_chaos.check: unknown point %S" point);
  if not !enabled then None
  else begin
    Mutex.lock mutex;
    let result =
      match Hashtbl.find_opt table point with
      | None -> None
      | Some st ->
        st.arrivals <- st.arrivals + 1;
        let arrival = st.arrivals in
        let rec first_firing = function
          | [] -> None
          | rule :: rest ->
            let capped =
              match rule.max with Some m -> rule.fired_count >= m | None -> false
            in
            let due =
              match rule.nth with Some n -> arrival = n | None -> true
            in
            (* Always advance the PRNG for probabilistic rules so firing
               positions depend only on the seed, not on other rules. *)
            let roll =
              if rule.prob >= 1.0 then 0.0 else Rng.float rule.rng
            in
            if (not capped) && due && roll < rule.prob then begin
              rule.fired_count <- rule.fired_count + 1;
              Some rule.fault
            end
            else first_firing rest
        in
        first_firing st.rules
    in
    (match result with
     | Some fault ->
       incr fired_total;
       let ev = { point; fault; seq = !fired_total } in
       event_log := ev :: !event_log;
       log_event ev
     | None -> ());
    Mutex.unlock mutex;
    result
  end

let fired () = !fired_total
let events () = List.rev !event_log

let sleep s = if s > 0.0 then Unix.sleepf s

let kill_self () =
  Unix.kill (Unix.getpid ()) Sys.sigkill;
  (* unreachable, but keeps the return type open *)
  assert false
