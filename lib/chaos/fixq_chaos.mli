(** Process-wide, seed-deterministic fault injection.

    A schedule maps named injection points to fault rules. Code under test
    calls {!check} at each point; when the registry is inactive this is a
    single mutable-ref load, so instrumented hot paths cost nothing in
    production. When active, a per-rule deterministic PRNG (derived from the
    global seed, the point name and the rule index) decides whether the
    point fires, so a given [seed=N] schedule replays the exact same fault
    sequence on every run.

    Schedule grammar (comma-separated items):
    {v
      seed=N
      <point>=<kind>[:<prob>][@<nth>][#<max>]
    v}
    where [<point>] is one of {!points}, [<kind>] is
    [drop | truncate | kill | oom | delay<MS>], [:<prob>] is a firing
    probability in \[0,1\] (default 1.0), [@<nth>] fires only on the n-th
    arrival at the point (1-based), and [#<max>] caps the total number of
    firings for the rule. Repeating a point adds an independent rule. *)

type fault =
  | Drop  (** sever the connection / fail the operation *)
  | Delay of float  (** sleep this many seconds, then proceed *)
  | Truncate  (** cut a frame short mid-write *)
  | Kill  (** SIGKILL the current process *)
  | Oom  (** raise [Out_of_memory] at the point *)

type event = { point : string; fault : fault; seq : int }

val points : string list
(** The valid injection-point names. *)

val fault_to_string : fault -> string

val configure : string -> (unit, string) result
(** Parse a schedule spec and activate the registry. Replaces any previous
    schedule. [Error msg] on malformed specs; the registry is left
    untouched on error. The empty string deactivates (like {!reset}). *)

val from_env : unit -> (unit, string) result
(** Configure from [FIXQ_CHAOS] (if set and non-empty) and direct the event
    log to [FIXQ_CHAOS_LOG] (if set). [Ok ()] when the variable is unset. *)

val set_log : string option -> unit
(** Append fired events to this file ([O_APPEND], one atomic write per
    event, so entries survive a subsequent SIGKILL). [None] disables. *)

val reset : unit -> unit
(** Deactivate and clear the schedule, counters, and event list. *)

val active : unit -> bool

val check : string -> fault option
(** [check point] returns the fault to inject at this arrival, if any.
    Constant-time [None] when the registry is inactive. Raises
    [Invalid_argument] if [point] is not in {!points}. *)

val fired : unit -> int
(** Total number of faults injected since the last {!configure}/{!reset}. *)

val events : unit -> event list
(** Fired events, oldest first. *)

val sleep : float -> unit
(** Sleep helper for [Delay] faults; the argument is seconds (the [Delay]
    payload can be passed directly). *)

val kill_self : unit -> 'a
(** Send SIGKILL to the current process (for [Kill] faults). *)
