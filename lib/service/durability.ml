module Wal = Fixq_durable.Wal
module Snapshot = Fixq_durable.Snapshot

type recovered = {
  rec_docs : (string * string) list;
  rec_gens : (string * int) list;
  rec_generation : int;
  rec_cache : Json.t list;
  rec_tail : (int * Json.t) list;
  rec_last_seq : int;
  rec_snapshot_seq : int;
  rec_truncated_bytes : int;
  rec_diagnostic : string option;
}

type t = {
  dir : string;
  threshold : int;
  wal : Wal.t;
  lock : Mutex.t;
  mutable d_last_seq : int;
  mutable ops_since : int;
  mutable d_appends : int;
  mutable d_snapshots : int;
  d_recovery : recovered;
}

let wal_file dir = Filename.concat dir "wal"

(* mkdir -p: a cluster worker's state dir is <state-dir>/<name>, so the
   parent may not exist either *)
let rec ensure_dir dir =
  if not (Sys.file_exists dir) then begin
    let parent = Filename.dirname dir in
    if parent <> dir then ensure_dir parent;
    try Unix.mkdir dir 0o755 with Unix.Unix_error _ -> ()
  end

(* ------------------------------------------------------------------ *)
(* Snapshot payload encoding                                           *)
(* ------------------------------------------------------------------ *)

(* meta = {"last_seq":N,"generation":G,"gens":[{"u":U,"g":G},…]}
   items = {"t":"doc","u":U,"x":XML} rows in registration order,
   then {"t":"cache",…} rows the server interprets. *)

let decode_snapshot (s : Snapshot.loaded) =
  match Json.parse s.Snapshot.meta with
  | exception Json.Parse_error msg -> Error ("snapshot meta: " ^ msg)
  | meta -> (
    match Json.int_opt (Json.member "last_seq" meta) with
    | None -> Error "snapshot meta: missing last_seq"
    | Some last_seq -> (
      let generation =
        Option.value ~default:0 (Json.int_opt (Json.member "generation" meta))
      in
      let gens =
        match Json.member "gens" meta with
        | Json.List rows ->
          List.filter_map
            (fun r ->
              match
                (Json.str_opt (Json.member "u" r),
                 Json.int_opt (Json.member "g" r))
              with
              | (Some u, Some g) -> Some (u, g)
              | _ -> None)
            rows
        | _ -> []
      in
      let rec split docs cache = function
        | [] -> Ok (List.rev docs, List.rev cache)
        | item :: rest -> (
          match Json.parse item with
          | exception Json.Parse_error msg ->
            Error ("snapshot item: " ^ msg)
          | j -> (
            match Json.str_opt (Json.member "t" j) with
            | Some "doc" -> (
              match
                (Json.str_opt (Json.member "u" j),
                 Json.str_opt (Json.member "x" j))
              with
              | (Some u, Some x) -> split ((u, x) :: docs) cache rest
              | _ -> Error "snapshot doc item: missing u/x")
            | Some "cache" -> split docs (j :: cache) rest
            | _ -> Error "snapshot item: unknown tag"))
      in
      match split [] [] s.Snapshot.items with
      | Error _ as e -> e
      | Ok (docs, cache) -> Ok (last_seq, generation, gens, docs, cache)))

let recover ~dir =
  ensure_dir dir;
  let empty =
    { rec_docs = []; rec_gens = []; rec_generation = 0; rec_cache = [];
      rec_tail = []; rec_last_seq = 0; rec_snapshot_seq = 0;
      rec_truncated_bytes = 0; rec_diagnostic = None }
  in
  let (snap, snap_diag) =
    match Snapshot.read ~dir with
    | Ok None -> (None, None)
    | Ok (Some s) -> (
      match decode_snapshot s with
      | Ok v -> (Some v, None)
      | Error msg -> (None, Some msg))
    | Error msg -> (None, Some msg)
  in
  let base =
    match snap with
    | None -> { empty with rec_diagnostic = snap_diag }
    | Some (last_seq, generation, gens, docs, cache) ->
      { empty with
        rec_docs = docs; rec_gens = gens; rec_generation = generation;
        rec_cache = cache; rec_last_seq = last_seq;
        rec_snapshot_seq = last_seq }
  in
  let w = Wal.load (wal_file dir) in
  let join a b =
    match (a, b) with
    | (None, x) | (x, None) -> x
    | (Some a, Some b) -> Some (a ^ "; " ^ b)
  in
  let (tail, last_seq, bad) =
    List.fold_left
      (fun (tail, last, bad) (seq, payload) ->
        if seq <= base.rec_snapshot_seq then (tail, max last seq, bad)
        else
          match Json.parse payload with
          | op -> ((seq, op) :: tail, max last seq, bad)
          | exception Json.Parse_error msg ->
            ( tail, max last seq,
              join bad
                (Some (Printf.sprintf "wal seq %d: unparseable op (%s)" seq msg))
            ))
      ([], base.rec_last_seq, None) w.Wal.records
  in
  { base with
    rec_tail = List.rev tail;
    rec_last_seq = last_seq;
    rec_truncated_bytes = w.Wal.truncated_bytes;
    rec_diagnostic = join base.rec_diagnostic (join w.Wal.diagnostic bad) }

let start ~dir ~threshold recovered =
  ensure_dir dir;
  { dir; threshold = max 0 threshold;
    wal = Wal.open_wal (wal_file dir);
    lock = Mutex.create ();
    d_last_seq = recovered.rec_last_seq;
    ops_since = List.length recovered.rec_tail;
    d_appends = 0; d_snapshots = 0; d_recovery = recovered }

let with_lock t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let with_op t op apply =
  with_lock t (fun () ->
      let saved = Wal.size t.wal in
      let seq = t.d_last_seq + 1 in
      Wal.append t.wal ~seq (Json.to_string op);
      t.d_last_seq <- seq;
      t.d_appends <- t.d_appends + 1;
      t.ops_since <- t.ops_since + 1;
      match apply () with
      | v -> v
      | exception e ->
        (* the op failed after the append: a replay must not apply it *)
        Wal.rewind t.wal saved;
        t.d_last_seq <- seq - 1;
        t.ops_since <- t.ops_since - 1;
        raise e)

let due t = t.threshold > 0 && t.ops_since >= t.threshold

let snapshot t ~state =
  with_lock t (fun () ->
      let (meta_fields, items) = state () in
      let meta =
        Json.to_string
          (Json.Obj (("last_seq", Json.of_int t.d_last_seq) :: meta_fields))
      in
      let items = List.map Json.to_string items in
      Wal.fsync t.wal;
      match Snapshot.write ~dir:t.dir ~meta ~items with
      | Error _ as e -> e
      | Ok () ->
        (* the snapshot covers every appended record: drop them all *)
        Wal.truncate t.wal;
        t.ops_since <- 0;
        t.d_snapshots <- t.d_snapshots + 1;
        Ok ())

let close t = with_lock t (fun () -> Wal.close t.wal)
let last_seq t = t.d_last_seq
let wal_bytes t = Wal.size t.wal
let ops_since_snapshot t = t.ops_since
let appends t = t.d_appends
let snapshots t = t.d_snapshots
let recovery t = t.d_recovery
