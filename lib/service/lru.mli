(** A thread-safe LRU cache, the shared substrate of the service's
    prepared-query and result caches.

    Classic hash-table-plus-doubly-linked-list: {!find} and {!put} are
    O(1); inserting into a full cache evicts the least recently used
    entry. Every operation takes an internal mutex, so one cache can be
    shared by all worker threads. Hit/miss counters are maintained for
    the [stats] protocol op. *)

type ('k, 'v) t

(** [create ~capacity ()] — [capacity] (default 64, clamped to ≥ 1) is
    the maximum number of live entries. *)
val create : ?capacity:int -> unit -> ('k, 'v) t

(** Lookup; promotes the entry to most-recently-used and counts a hit
    or a miss. *)
val find : ('k, 'v) t -> 'k -> 'v option

(** [find_valid t k ~valid] — like {!find}, but an entry failing [valid]
    is evicted and counted as a miss: staleness behaves exactly like
    absence, both to the caller and in the hit/miss statistics. *)
val find_valid : ('k, 'v) t -> 'k -> valid:('v -> bool) -> 'v option

(** Insert or replace; promotes to most-recently-used, evicting the LRU
    entry if the cache was full. Does not touch the hit/miss
    counters. *)
val put : ('k, 'v) t -> 'k -> 'v -> unit

val remove : ('k, 'v) t -> 'k -> unit
val clear : ('k, 'v) t -> unit
val length : ('k, 'v) t -> int
val capacity : ('k, 'v) t -> int
val hits : ('k, 'v) t -> int
val misses : ('k, 'v) t -> int

(** Keys from most to least recently used (a debugging/stats aid). *)
val keys : ('k, 'v) t -> 'k list

(** Key/value snapshot, MRU first, with {e no} recency or counter
    effects — for maintenance sweeps over live entries. *)
val bindings : ('k, 'v) t -> ('k * 'v) list
