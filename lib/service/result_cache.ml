type key = { hash : string; config : string }

type entry = {
  serialized : string;
  used_delta : bool option;
  nodes_fed : int;
  depth : int;
  wall_ms : float;
  footprint : (string * int) list;
  semiring : string option;
  annotations : (string * string) list;
}

type t = (string, entry) Lru.t

let render { hash; config } = hash ^ "|" ^ config

let parse rendered =
  match String.index_opt rendered '|' with
  | Some i ->
    { hash = String.sub rendered 0 i;
      config =
        String.sub rendered (i + 1) (String.length rendered - i - 1) }
  | None -> { hash = rendered; config = "" }

let fresh ~current entry =
  List.for_all (fun (uri, gen) -> current uri = gen) entry.footprint

let create ?(capacity = 256) () : t = Lru.create ~capacity ()

let find t key ~current =
  Lru.find_valid t (render key) ~valid:(fresh ~current)

let put t key entry = Lru.put t (render key) entry
let remove t key = Lru.remove t (render key)

let bindings t =
  List.map (fun (k, entry) -> (parse k, entry)) (Lru.bindings t)

let clear = Lru.clear
let length = Lru.length
let hits = Lru.hits
let misses = Lru.misses
