type key = { hash : string; config : string; generation : int }

type entry = {
  serialized : string;
  used_delta : bool option;
  nodes_fed : int;
  depth : int;
  wall_ms : float;
}

type t = (string, entry) Lru.t

let render { hash; config; generation } =
  Printf.sprintf "%s|%s|%d" hash config generation

let create ?(capacity = 256) () : t = Lru.create ~capacity ()
let find t key = Lru.find t (render key)
let put t key entry = Lru.put t (render key) entry
let clear = Lru.clear
let length = Lru.length
let hits = Lru.hits
let misses = Lru.misses
