(** The newline-delimited JSON protocol of [fixq serve].

    One request object per line, one response object per line. Every
    request carries an ["op"] discriminator; an optional ["id"] member
    of any JSON type is echoed verbatim in the response, so clients
    talking to a multi-worker server can match responses to requests.

    Ops:
    - [{"op":"run","query":Q}] — evaluate. Optional: ["engine"]
      ("interp"|"algebra"), ["mode"] ("auto"|"naive"|"delta"; "auto"
      uses the mode pinned at preparation), ["stratified"] (bool),
      ["max_iterations"] (int), ["timeout_ms"] (number), ["cache"]
      (bool, default true — set false to bypass the result cache).
    - [{"op":"check","query":Q}] — distributivity verdicts and pinned
      modes, without running.
    - [{"op":"plan","query":Q}] — ASCII algebra plan of the first IFP.
    - [{"op":"load-doc","uri":U, ...}] — register a document; the
      source is one of ["xml"] (inline), ["path"] (file), or
      ["generate"] ("xmark"|"curriculum"|"play"|"hospital", with
      optional ["size"], ["seed"]).
    - [{"op":"unload-doc","uri":U}]
    - [{"op":"stats"}] — cache counters, per-query latency aggregates.
    - [{"op":"ping"}]
    - [{"op":"shutdown"}] — answer, then stop the server.

    Responses: [{"ok":true, ...}] or
    [{"ok":false,"id":…,"error":"…"}]. *)

type doc_source =
  | From_xml of string
  | From_path of string
  | From_generator of { kind : string; size : float option; seed : int }

type run_params = {
  query : string;
  engine : [ `Interp | `Algebra ];
  mode : [ `Pinned | `Naive | `Delta ];
      (** [`Pinned] = the preparation-time decision *)
  stratified : bool option;  (** [None] = server default *)
  max_iterations : int option;
  timeout_ms : float option;
  cache : bool;  (** [false] bypasses the result cache *)
}

type request =
  | Run of run_params
  | Check of { query : string; stratified : bool option }
  | Plan of { query : string; stratified : bool option }
  | Load_doc of { uri : string; source : doc_source }
  | Unload_doc of { uri : string }
  | Stats
  | Ping
  | Shutdown

(** Parse a request object. [Error msg] on unknown ops, missing or
    ill-typed members. *)
val parse_request : Json.t -> (request, string) result

(** The ["id"] member ([Null] when absent). *)
val request_id : Json.t -> Json.t

(** [{"ok":false,"id":…,"error":msg}] — ["id"] omitted when [Null]. *)
val error_response : id:Json.t -> string -> Json.t

(** [{"ok":true,"id":…} ∪ fields] — ["id"] omitted when [Null]. *)
val ok_response : id:Json.t -> (string * Json.t) list -> Json.t
