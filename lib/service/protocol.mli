(** The newline-delimited JSON protocol of [fixq serve] (and, one level
    up, of the [fixq cluster] coordinator, which speaks the same wire
    format to clients and forwards to workers).

    One request object per line, one response object per line. Every
    request carries an ["op"] discriminator; an optional ["id"] member
    of any JSON type is echoed verbatim in the response, so clients
    talking to a multi-worker server can match responses to requests.

    Ops:
    - [{"op":"run","query":Q}] — evaluate. Optional: ["engine"]
      ("interp"|"algebra"|"sql"|"auto"; "auto" resolves to the engine
      the cost model predicts cheapest — the response reports the
      resolution), ["mode"] ("auto"|"naive"|"delta"; "auto"
      uses the mode pinned at preparation), ["stratified"] (bool),
      ["max_iterations"] (int), ["timeout_ms"] (number), ["cache"]
      (bool, default true — set false to bypass the result cache),
      ["partition"] ([{"index":k,"of":n}] — evaluate with the first
      IFP's seed sliced to the k-th residue class modulo n; the
      response then carries a ["keyed"] item list so a coordinator can
      unite slices; see {!Server}).
    - [{"op":"prepare","query":Q}] — parse, statically check, compute
      both distributivity verdicts, pin the fixpoint mode and compile
      the plan into the prepared-query LRU {e without executing}: cache
      warming for coordinators and deploy scripts.
    - [{"op":"check","query":Q}] — distributivity verdicts and pinned
      modes, without running.
    - [{"op":"plan","query":Q}] — ASCII algebra plan of the first IFP,
      annotated with per-operator cardinality intervals from the loaded
      documents' synopses.
    - [{"op":"explain","query":Q}] — the static cost report: per-operator
      cardinality estimates, the certified fixpoint round bound (when
      derivable), per-engine cost estimates and the chosen engine with
      its reasoning.
    - [{"op":"load-doc","uri":U, ...}] — register a document; the
      source is one of ["xml"] (inline), ["path"] (file), or
      ["generate"] ("xmark"|"curriculum"|"play"|"hospital", with
      optional ["size"], ["seed"]).
    - [{"op":"unload-doc","uri":U}]
    - [{"op":"patch-doc","uri":U,"action":A,"path":P, ...}] — apply a
      structural edit to the document registered under [U] at element
      path [P] ([/site/people[2]] — child steps, 1-based selectors).
      [A] is ["insert"] (with ["xml"], optional ["position"]:
      "into"|"into-first"|"into-last"|"before"|"after", default
      into-last), ["delete"], ["replace"] (with ["xml"]), or
      ["set-text"] (with ["text"]). Eligible cached fixpoint results
      are maintained differentially instead of recomputed (see
      {!Fixq_ivm.Ivm}); the response reports ∆ sizes and per-entry
      maintenance outcomes.
    - [{"op":"snapshot"}] — force a durability snapshot (when the server
      runs with [--state-dir]); the cluster coordinator instead compacts
      its per-worker doc-line histories.
    - [{"op":"dump-doc","uri":U}] — the serialized bytes of the document
      registered under [U].
    - [{"op":"add-worker"}], [{"op":"remove-worker","worker":W}],
      [{"op":"drain","worker":W}] — cluster-only topology ops; a plain
      server answers with an error.
    - [{"op":"stats"}] — cache counters, per-query latency aggregates.
      With ["format":"prometheus"], the response instead carries a
      ["prometheus"] member with the text exposition of the same
      counters, ready to serve to a scraper.
    - [{"op":"ping"}]
    - [{"op":"shutdown"}] — answer, then stop the server.

    Responses: [{"ok":true, ...}] or
    [{"ok":false,"id":…,"error":"…"}]. *)

type doc_source =
  | From_xml of string
  | From_path of string
  | From_generator of { kind : string; size : float option; seed : int }

type run_params = {
  query : string;
  engine : [ `Interp | `Algebra | `Sql | `Auto ];
      (** [`Auto] resolves to the cost model's cheapest engine at
          request time *)
  mode : [ `Pinned | `Naive | `Delta ];
      (** [`Pinned] = the preparation-time decision *)
  stratified : bool option;  (** [None] = server default *)
  max_iterations : int option;
  timeout_ms : float option;
  cache : bool;  (** [false] bypasses the result cache *)
  partition : (int * int) option;
      (** [(index, count)]: slice the first IFP's seed to one residue
          class; sound to unite across all [count] slices exactly when
          the IFP is distributive (Theorem 3.2) *)
}

type stats_format = Stats_json | Stats_prometheus

type request =
  | Run of run_params
  | Prepare of { query : string; stratified : bool option }
  | Check of { query : string; stratified : bool option }
  | Plan of { query : string; stratified : bool option }
  | Explain of { query : string; stratified : bool option }
      (** Static cost & cardinality report ({!Fixq_cost.Estimate}). *)
  | Load_doc of { uri : string; source : doc_source }
  | Unload_doc of { uri : string }
  | Patch_doc of { uri : string; op : Fixq_xdm.Patch.op }
  | Snapshot
      (** Force a durability snapshot ([fixq serve --state-dir]); on the
          cluster coordinator, compact all per-worker doc histories. *)
  | Dump_doc of { uri : string }
      (** Serialized bytes of a registered document — the snapshot-based
          transfer primitive behind cluster rebalancing. *)
  | Add_worker  (** Cluster only: spin up one worker and rebalance onto it. *)
  | Remove_worker of { name : string }
      (** Cluster only: drain, rebalance off, then retire the worker. *)
  | Drain of { name : string }
      (** Cluster only: move keys off the worker but keep it running. *)
  | Stats of stats_format
  | Ping
  | Shutdown

(** Parse a request object. [Error msg] on unknown ops, missing or
    ill-typed members. *)
val parse_request : Json.t -> (request, string) result

(** Parse the CLI convenience syntax
    ["URI ACTION [PAYLOAD] at /PATH [POSITION]"], e.g.
    ["auction.xml insert <bidder/> at /site/people into-first"] or
    ["auction.xml delete at /site/regions"]. The payload/path boundary
    is the last [" at "]. Returns the URI and the structured op. *)
val parse_patch_spec : string -> (string * Fixq_xdm.Patch.op, string) result

(** The ["id"] member ([Null] when absent). *)
val request_id : Json.t -> Json.t

(** [{"ok":false,"id":…,"error":msg} ∪ extra] — ["id"] omitted when
    [Null]. [extra] carries structured degradation detail, e.g. the
    governor's [("retry_after_ms", …)] hint on shed responses. *)
val error_response : ?extra:(string * Json.t) list -> id:Json.t -> string -> Json.t

(** [{"ok":true,"id":…} ∪ fields] — ["id"] omitted when [Null]. *)
val ok_response : id:Json.t -> (string * Json.t) list -> Json.t
