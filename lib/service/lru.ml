type ('k, 'v) node = {
  key : 'k;
  mutable value : 'v;
  mutable prev : ('k, 'v) node option;  (* toward MRU *)
  mutable next : ('k, 'v) node option;  (* toward LRU *)
}

type ('k, 'v) t = {
  table : ('k, ('k, 'v) node) Hashtbl.t;
  cap : int;
  lock : Mutex.t;
  mutable first : ('k, 'v) node option;  (* MRU *)
  mutable last : ('k, 'v) node option;  (* LRU *)
  mutable hits : int;
  mutable misses : int;
}

let create ?(capacity = 64) () =
  { table = Hashtbl.create 16; cap = max 1 capacity;
    lock = Mutex.create (); first = None; last = None; hits = 0; misses = 0 }

let with_lock t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

(* list surgery — call only with the lock held *)

let unlink t node =
  (match node.prev with
  | Some p -> p.next <- node.next
  | None -> t.first <- node.next);
  (match node.next with
  | Some n -> n.prev <- node.prev
  | None -> t.last <- node.prev);
  node.prev <- None;
  node.next <- None

let push_front t node =
  node.next <- t.first;
  node.prev <- None;
  (match t.first with Some f -> f.prev <- Some node | None -> ());
  t.first <- Some node;
  if t.last = None then t.last <- Some node

let find t key =
  with_lock t (fun () ->
      match Hashtbl.find_opt t.table key with
      | Some node ->
        t.hits <- t.hits + 1;
        unlink t node;
        push_front t node;
        Some node.value
      | None ->
        t.misses <- t.misses + 1;
        None)

let find_valid t key ~valid =
  with_lock t (fun () ->
      match Hashtbl.find_opt t.table key with
      | Some node when valid node.value ->
        t.hits <- t.hits + 1;
        unlink t node;
        push_front t node;
        Some node.value
      | Some node ->
        (* present but stale: evict and account a miss, so staleness is
           indistinguishable from absence to callers and stats alike *)
        t.misses <- t.misses + 1;
        unlink t node;
        Hashtbl.remove t.table key;
        None
      | None ->
        t.misses <- t.misses + 1;
        None)

let put t key value =
  with_lock t (fun () ->
      match Hashtbl.find_opt t.table key with
      | Some node ->
        node.value <- value;
        unlink t node;
        push_front t node
      | None ->
        if Hashtbl.length t.table >= t.cap then begin
          match t.last with
          | Some lru ->
            unlink t lru;
            Hashtbl.remove t.table lru.key
          | None -> ()
        end;
        let node = { key; value; prev = None; next = None } in
        Hashtbl.replace t.table key node;
        push_front t node)

let remove t key =
  with_lock t (fun () ->
      match Hashtbl.find_opt t.table key with
      | Some node ->
        unlink t node;
        Hashtbl.remove t.table key
      | None -> ())

let clear t =
  with_lock t (fun () ->
      Hashtbl.reset t.table;
      t.first <- None;
      t.last <- None)

let length t = with_lock t (fun () -> Hashtbl.length t.table)
let capacity t = t.cap
let hits t = with_lock t (fun () -> t.hits)
let misses t = with_lock t (fun () -> t.misses)

let keys t =
  with_lock t (fun () ->
      let rec go acc = function
        | None -> List.rev acc
        | Some node -> go (node.key :: acc) node.next
      in
      go [] t.first)

(* A snapshot with no recency or counter effects — enumeration for
   maintenance sweeps must not masquerade as cache traffic. *)
let bindings t =
  with_lock t (fun () ->
      let rec go acc = function
        | None -> List.rev acc
        | Some node -> go ((node.key, node.value) :: acc) node.next
      in
      go [] t.first)
