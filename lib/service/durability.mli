(** Crash durability for the document store: a snapshot + WAL pair
    under one state directory.

    Every accepted document op ([load-doc] / [unload-doc] /
    [patch-doc]) is appended to [<dir>/wal] as a checksummed
    {!Fixq_durable.Wal} record {e before} it is applied
    (log-before-apply); a snapshot — taken every
    [snapshot_threshold] ops, on an explicit [snapshot] op, and on
    clean shutdown — materializes the registry (documents, generation
    stamps, result-cache rows) into [<dir>/snapshot] and truncates the
    log, so recovery is O(snapshot) + O(tail) instead of O(full
    history).

    This module owns the files, the op sequence numbers and the
    counters; the {e contents} of op and snapshot payloads are the
    server's business (JSON lines). {!Server} serializes document ops
    through {!with_op}, so the log order is the apply order. *)

type t

type recovered = {
  rec_docs : (string * string) list;
      (** snapshot documents as [(uri, xml)], in registration order *)
  rec_gens : (string * int) list;  (** per-URI generation stamps *)
  rec_generation : int;  (** global registry generation *)
  rec_cache : Json.t list;  (** result-cache rows, opaque to this module *)
  rec_tail : (int * Json.t) list;
      (** WAL ops to replay, [(seq, op)], strictly after the snapshot *)
  rec_last_seq : int;  (** highest sequence number seen anywhere *)
  rec_snapshot_seq : int;  (** snapshot's last covered seq; 0 if none *)
  rec_truncated_bytes : int;  (** torn-tail bytes dropped from the WAL *)
  rec_diagnostic : string option;
      (** why the WAL tail or the snapshot was rejected, when one was *)
}

val recover : dir:string -> recovered
(** Read-only recovery scan: load the snapshot if present and valid
    (an invalid one is reported in [rec_diagnostic] and recovery falls
    back to full WAL replay — the WAL is only truncated after a
    snapshot commits, so nothing is lost), then the WAL, keeping only
    records past the snapshot. Creates [dir] if missing. Never
    raises on corrupt state. *)

val start : dir:string -> threshold:int -> recovered -> t
(** Open the WAL for appending (physically truncating any torn tail)
    and adopt [recovered]'s sequence position. Call after the
    recovered state has been applied. *)

val with_op : t -> Json.t -> (unit -> 'a) -> 'a
(** [with_op t op apply] — append [op] to the WAL, then run [apply],
    holding the op lock throughout so log order is apply order. If the
    append fails ({!Fixq_durable.Wal.Append_failed}), [apply] never
    runs; if [apply] raises, the record is rewound off the log so a
    failed op is never replayed. *)

val due : t -> bool
(** Has the op count since the last snapshot reached the threshold? *)

val snapshot :
  t ->
  state:(unit -> (string * Json.t) list * Json.t list) ->
  (unit, string) result
(** Take a snapshot: under the op lock, call [state ()] for the meta
    fields and item rows, write them atomically
    ({!Fixq_durable.Snapshot}), and on success truncate the WAL. The
    covered sequence number is recorded in the meta under
    ["last_seq"]. [Error] leaves the WAL and the previous snapshot
    untouched. *)

val close : t -> unit
(** Fsync and close the WAL (clean shutdown, after a final
    {!snapshot}). *)

val last_seq : t -> int

val wal_bytes : t -> int

val ops_since_snapshot : t -> int

val appends : t -> int
(** WAL records appended by this process (not counting recovery). *)

val snapshots : t -> int
(** Snapshots successfully installed by this process. *)

val recovery : t -> recovered
(** The recovery this handle was started from (for stats). *)
