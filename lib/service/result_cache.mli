(** The result cache: serialized query answers keyed by
    [(query hash, engine/mode configuration, registry generation)].

    The generation component makes invalidation precise without any
    bookkeeping: a [load-doc] bumps the registry generation, every
    subsequent lookup therefore misses, and the stale entries age out
    of the LRU on their own. An entry stores the serialized result plus
    the Table-2 instrumentation (nodes fed back, recursion depth) so a
    cache hit can answer with the same statistics the original
    execution reported. *)

type key = {
  hash : string;  (** prepared-query hash *)
  config : string;  (** engine/mode/stratified discriminator *)
  generation : int;  (** registry generation the result was computed at *)
}

type entry = {
  serialized : string;
  used_delta : bool option;
  nodes_fed : int;
  depth : int;
  wall_ms : float;  (** cost of the original execution *)
}

type t

val create : ?capacity:int -> unit -> t
val find : t -> key -> entry option
val put : t -> key -> entry -> unit
val clear : t -> unit
val length : t -> int
val hits : t -> int
val misses : t -> int
