(** The result cache: serialized query answers keyed by
    [(query hash, engine/mode configuration)] and guarded by the
    {e per-document generation footprint} recorded when the answer was
    computed.

    Instead of baking the global registry generation into the key — and
    so losing every cached answer whenever {e any} document loads — each
    entry remembers which documents its execution actually read and at
    which per-doc generation ({!Fixq_xdm.Doc_registry.track}). A lookup
    revalidates that footprint: loading an unrelated document leaves the
    entry live, while touching a footprint document evicts it (counted
    as a miss, exactly as if it had never been cached). An entry stores
    the serialized result plus the Table-2 instrumentation (nodes fed
    back, recursion depth) so a cache hit can answer with the same
    statistics the original execution reported. *)

type key = {
  hash : string;  (** prepared-query hash *)
  config : string;  (** engine/mode/stratified discriminator *)
}

type entry = {
  serialized : string;
  used_delta : bool option;
  nodes_fed : int;
  depth : int;
  wall_ms : float;  (** cost of the original execution *)
  footprint : (string * int) list;
      (** sorted [(uri, doc_generation)] pairs read by the execution *)
  semiring : string option;
      (** [accumulate by] kind of the run, if the query was annotated *)
  annotations : (string * string) list;
      (** [(serialized node, annotation)] pairs for annotated queries,
          replayed verbatim on a cache hit *)
}

type t

val create : ?capacity:int -> unit -> t

(** [find t key ~current] — [current uri] must return the live per-doc
    generation. A footprint mismatch evicts the entry and counts a
    miss. *)
val find : t -> key -> current:(string -> int) -> entry option

val put : t -> key -> entry -> unit
val remove : t -> key -> unit

(** Live entries, MRU first, without touching hit/miss counters or
    recency — the [patch-doc] maintenance sweep. *)
val bindings : t -> (key * entry) list

val clear : t -> unit
val length : t -> int
val hits : t -> int
val misses : t -> int
