module Xdm = Fixq_xdm
module W = Fixq_workloads

type t = { reg : Xdm.Doc_registry.t }

exception Error of string

let create ?(registry = Xdm.Doc_registry.create ()) () = { reg = registry }
let registry t = t.reg
let generation t = Xdm.Doc_registry.generation ~registry:t.reg ()

let load_xml t ~uri xml =
  match Xdm.Xml_parser.parse_string ~uri xml with
  | doc -> Xdm.Doc_registry.register ~registry:t.reg uri doc
  | exception Xdm.Xml_parser.Parse_error { line; col; msg } ->
    raise
      (Error
         (Printf.sprintf "cannot parse document %S at %d:%d: %s" uri line col
            msg))

let chaos_read_point path =
  match Fixq_chaos.check "store.read" with
  | None -> ()
  | Some (Fixq_chaos.Delay s) -> Fixq_chaos.sleep s
  | Some Fixq_chaos.Oom -> raise Out_of_memory
  | Some Fixq_chaos.Kill -> Fixq_chaos.kill_self ()
  | Some (Fixq_chaos.Drop | Fixq_chaos.Truncate) ->
    raise (Error (Printf.sprintf "chaos: injected read failure on %s" path))

let read_file path =
  chaos_read_point path;
  try
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        let n = in_channel_length ic in
        really_input_string ic n)
  with
  | Sys_error msg -> raise (Error ("cannot read " ^ msg))
  | End_of_file ->
    (* the file shrank between the length probe and the read *)
    raise
      (Error (Printf.sprintf "cannot read %s: file truncated mid-read" path))

let load_file t ~uri path = load_xml t ~uri (read_file path)

let load_generated t ~uri ~kind ~size ~seed =
  let doc =
    match kind with
    | "xmark" -> W.Xmark.generate { W.Xmark.default with scale = size; seed }
    | "curriculum" ->
      W.Curriculum.generate
        { W.Curriculum.default with courses = int_of_float size; seed }
    | "play" -> W.Shakespeare.generate { W.Shakespeare.default with seed }
    | "hospital" ->
      W.Hospital.generate
        { W.Hospital.default with total = int_of_float size; seed }
    | other ->
      raise
        (Error
           (Printf.sprintf
              "unknown generator %S (expected xmark|curriculum|play|hospital)"
              other))
  in
  Xdm.Doc_registry.register ~registry:t.reg uri doc

let unload t uri = Xdm.Doc_registry.unregister ~registry:t.reg uri
let uris t = Xdm.Doc_registry.uris ~registry:t.reg ()

let doc_generation t uri = Xdm.Doc_registry.doc_generation ~registry:t.reg uri
let synopsis t uri = Xdm.Doc_registry.synopsis ~registry:t.reg uri
let track t f = Xdm.Doc_registry.track ~registry:t.reg f

let chaos_patch_point uri =
  match Fixq_chaos.check "store.patch" with
  | None -> ()
  | Some (Fixq_chaos.Delay s) -> Fixq_chaos.sleep s
  | Some Fixq_chaos.Oom -> raise Out_of_memory
  | Some Fixq_chaos.Kill -> Fixq_chaos.kill_self ()
  | Some (Fixq_chaos.Drop | Fixq_chaos.Truncate) ->
    raise (Error (Printf.sprintf "chaos: injected patch failure on %s" uri))

(* The chaos point fires before any mutation: a killed worker leaves the
   registry exactly as it was, so a respawn that replays the document
   history (load + patches) converges to the same tree. *)
let patch t ~uri op =
  chaos_patch_point uri;
  match Xdm.Doc_registry.find ~registry:t.reg uri with
  | None -> raise (Error (Printf.sprintf "no document loaded under %S" uri))
  | Some root -> (
    match Xdm.Patch.apply root op with
    | delta ->
      (* Maintain an already-built synopsis incrementally (cost of the
         edited subtrees); an unbuilt one stays lazy. *)
      let syn = Xdm.Doc_registry.cached_synopsis ~registry:t.reg uri in
      Xdm.Doc_registry.register ~registry:t.reg uri delta.Xdm.Patch.new_root;
      (match syn with
      | None -> ()
      | Some syn ->
        (match Xdm.Synopsis.patched syn ~old_root:root ~op ~delta with
        | syn -> Xdm.Doc_registry.set_synopsis ~registry:t.reg uri syn
        | exception _ -> ()));
      delta
    | exception Xdm.Patch.Patch_error msg ->
      raise (Error (Printf.sprintf "cannot patch %S: %s" uri msg)))
