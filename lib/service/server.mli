(** The [fixq serve] server: long-lived state (document store,
    prepared-query cache, result cache, metrics) plus the two
    transports — newline-delimited JSON over a Unix-domain socket, or
    over stdin/stdout ([--pipe], the mode tests drive).

    Request handling is synchronous and thread-safe; the worker pool
    ([config.workers] threads with a mutex-guarded job queue) lets
    several clients — or, in pipe mode, several in-flight requests —
    evaluate concurrently. Per-request failures of any kind (parse
    errors, dynamic errors, iteration budgets, deadlines) become
    [{"ok":false,…}] responses; nothing short of transport EOF or an
    explicit [shutdown] op stops the server. *)

type config = {
  workers : int;  (** worker threads (default 1) *)
  prepared_capacity : int;  (** prepared-query LRU entries (64) *)
  result_capacity : int;  (** result LRU entries (256) *)
  max_iterations : int;
      (** default per-request IFP iteration budget (100,000) *)
  timeout_ms : float option;
      (** default per-request wall-clock budget (none) *)
  stratified : bool;  (** default for the Section-6 refinement *)
  governor : Governor.config;
      (** resource limits: memory budget, load shedding, recursion
          depth (all off by default) *)
  state_dir : string option;
      (** durability: when set, document ops are write-ahead logged
          under this directory and snapshots make recovery
          O(snapshot)+O(tail) ({!Durability}); [create] recovers from
          whatever the directory holds (default [None]) *)
  snapshot_threshold : int;
      (** take a snapshot every this many logged ops; [0] disables
          op-count-triggered snapshots (default 64) *)
}

val default_config : config

type t

(** Build a server. With [config.state_dir] set, first recovers the
    document store, result cache and maintained IVM entries from the
    directory's snapshot + WAL (tolerating torn tails and invalid
    snapshots — see {!Durability}), then opens the WAL for appending. *)
val create : ?config:config -> ?store:Store.t -> unit -> t

val store : t -> Store.t
val config : t -> config
val governor : t -> Governor.t

(** Force a durability snapshot (and truncate the WAL). [Error] when
    the server has no [state_dir] or the write failed. *)
val force_snapshot : t -> (unit, string) result

(** Handle one request object. Returns the response and whether this
    was a [shutdown]. Never raises. *)
val handle : t -> Json.t -> Json.t * bool

(** {!handle} on raw wire lines (invalid JSON becomes an error
    response). *)
val handle_line : t -> string -> string * bool

(** The Prometheus text exposition of the server's counters (cache
    hits/misses/sizes, generation, uptime, per-query aggregates) — the
    payload of [{"op":"stats","format":"prometheus"}]. *)
val prometheus_stats : t -> string

(** Raised by the socket transports instead of clobbering the socket of
    another {e live} server at the same path. Stale socket files (left
    by a crashed process; nothing accepts behind them) are unlinked and
    reused as before. *)
exception Socket_in_use of string

(** [socket_alive path] — does a connect to the Unix socket at [path]
    currently succeed? *)
val socket_alive : string -> bool

(** Generic transports: serve with an arbitrary line handler (response
    line, stop?). The single-process server and the cluster coordinator
    share these. [workers] is the handler thread count (default 1). *)
val serve_pipe_with :
  handle:(string -> string * bool) ->
  ?workers:int ->
  in_channel ->
  out_channel ->
  unit

(** Like {!serve_pipe_with} for a Unix-domain socket listener. Raises
    {!Socket_in_use} when a live server already answers at [path]. *)
val serve_socket_with :
  handle:(string -> string * bool) ->
  ?workers:int ->
  path:string ->
  unit ->
  unit

(** Serve requests line-by-line from [ic] to [oc] until EOF or a
    [shutdown] op. With [workers > 1], requests are dispatched to the
    pool and responses may interleave out of request order — clients
    should tag requests with ["id"]. *)
val serve_pipe : t -> in_channel -> out_channel -> unit

(** Listen on a Unix-domain socket at [path] (unlinking any stale
    socket first), serving each connection from the worker pool. A
    [shutdown] op from any client stops accepting, drains in-flight
    work and returns. Raises {!Socket_in_use} rather than stealing a
    live server's socket. *)
val serve_socket : t -> path:string -> unit
