(** Resource governor: per-request memory budgets, recursion-depth
    guard, and load shedding for the serving layer. All limits are off
    by default ({!default_config}); the server behaves exactly as
    before until a knob is set. *)

type config = {
  max_heap_mb : int option;
      (** per-request major-heap growth budget; exceeding it aborts the
          run with a structured error at the next fixpoint round *)
  shed_heap_mb : int option;
      (** global watermark: shed new query work while the major heap is
          above this *)
  max_pending : int option;
      (** shed new query work while this many requests are in flight *)
  max_call_depth : int option;
      (** user-function recursion bound forwarded to the evaluator *)
  max_cost : float option;
      (** admission envelope over the static cost estimate
          ({!Fixq_cost.Estimate}): an unbudgeted query whose predicted
          cost on its engine exceeds this is refused with FQ055; a
          budgeted one is down-budgeted to its certified round bound *)
  retry_after_ms : int;  (** hint attached to shed responses (200) *)
}

val default_config : config

type t

exception Shed of { retry_after_ms : int; reason : string }

val create : config -> t
val config : t -> config

val admit : t -> unit
(** Admission control for query work (run/prepare/check/plan). Raises
    {!Shed} instead of admitting when over the heap watermark or the
    in-flight cap. On success the caller owes a {!release}. *)

val release : t -> unit

val with_memory_budget : t -> (round_check:(unit -> unit) -> 'a) -> 'a
(** Run a request body under the per-request heap budget. The provided
    [round_check] must be installed as the evaluation's per-round hook;
    it raises [Out_of_memory] once heap growth since entry exceeds
    [max_heap_mb] (a [Gc] alarm catches growth inside long rounds; the
    direct re-check makes small budgets deterministic). No-op without a
    budget. *)

val note_oom : t -> unit
(** Count a request degraded by [Out_of_memory]. *)

val note_stack : t -> unit
(** Count a request degraded by [Stack_overflow]. *)

val inflight : t -> int

val counter_rows : t -> (string * int) list
(** [("shed", n); ("oom", n); ("stack_overflow", n)] for stats
    expositions. *)
