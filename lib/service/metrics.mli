(** Per-query latency aggregates for the [stats] protocol op.

    One record per prepared-query hash: execution count, total/min/max
    wall milliseconds. Only actual executions are recorded — result
    -cache hits never reach the engine, and their (near-zero) service
    time would only flatter the numbers; the cache counters already
    tell that story. Thread-safe. *)

type t

val create : unit -> t

(** [record t ~key ~label ~ms] folds one execution into the aggregate
    for [key]. [label] is a human-readable identifier (a query preview)
    kept for reporting. *)
val record : t -> key:string -> label:string -> ms:float -> unit

(** All aggregates as a JSON array, most-executed first. Each element:
    [{"query": label, "count": n, "total_ms": t, "min_ms": m,
    "max_ms": M, "mean_ms": µ}]. *)
val to_json : t -> Json.t
