(** Per-query latency aggregates for the [stats] protocol op.

    One record per prepared-query hash: execution count, total/min/max
    wall milliseconds. Only actual executions are recorded — result
    -cache hits never reach the engine, and their (near-zero) service
    time would only flatter the numbers; the cache counters already
    tell that story. Thread-safe. *)

type t

val create : unit -> t

(** [record t ~key ~label ~ms] folds one execution into the aggregate
    for [key]. [label] is a human-readable identifier (a query preview)
    kept for reporting. *)
val record : t -> key:string -> label:string -> ms:float -> unit

(** All aggregates as a JSON array, most-executed first. Each element:
    [{"query": label, "count": n, "total_ms": t, "min_ms": m,
    "max_ms": M, "mean_ms": µ}]. *)
val to_json : t -> Json.t

(** A point-in-time copy of one aggregate (for exports that outlive the
    lock, e.g. the Prometheus exposition). *)
type snapshot = {
  s_label : string;
  s_count : int;
  s_total_ms : float;
  s_min_ms : float;
  s_max_ms : float;
}

(** Aggregates sorted most-executed first, copied under the lock. *)
val snapshots : t -> snapshot list

(** Escape a string for use as a Prometheus label value (backslash,
    double quote, newline). *)
val escape_label : string -> string

(** Prometheus text-exposition lines for the per-query aggregates:
    [<prefix>_query_executions_total{query="…"}] and
    [<prefix>_query_ms_total{query="…"}], with one [# TYPE] header per
    family. [labels] (e.g. [{|worker="w0"|}]) is spliced into every
    sample's label set. *)
val to_prometheus : ?labels:string -> prefix:string -> t -> string
