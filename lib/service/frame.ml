(* Newline-delimited frame reads that can tell a complete line from a
   stream cut mid-frame. [input_line] cannot: it returns a final
   unterminated line as if it were complete, so a peer dying mid-write
   used to hand the reader a truncated JSON frame that parsed as
   garbage (or worse, as a shorter valid frame). *)

let default_max_len = 64 * 1024 * 1024

let read ?(max_len = default_max_len) ic =
  let buf = Buffer.create 256 in
  let rec go oversized =
    match input_char ic with
    | exception End_of_file ->
      if Buffer.length buf = 0 && not oversized then `Eof
      else `Truncated (Buffer.contents buf)
    | '\n' -> if oversized then `Oversized else `Line (Buffer.contents buf)
    | _ when oversized -> go true
    | c ->
      if Buffer.length buf >= max_len then begin
        (* keep consuming to the frame boundary so the stream stays in
           sync and the caller can answer with a clean error *)
        Buffer.clear buf;
        go true
      end
      else begin
        Buffer.add_char buf c;
        go false
      end
  in
  go false
