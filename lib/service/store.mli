(** The server's document store: a {!Fixq_xdm.Doc_registry.t} plus the
    loading front ends the protocol's [load-doc] op needs (inline XML,
    file system, or one of the benchmark workload generators).

    Versioning itself lives in the registry — every mutation bumps its
    generation counter — so this module is mostly a convenience veneer;
    what it adds is uniform error reporting ({!Error} instead of four
    different exceptions) and the generator dispatch. *)

type t

exception Error of string

val create : ?registry:Fixq_xdm.Doc_registry.t -> unit -> t
val registry : t -> Fixq_xdm.Doc_registry.t

(** Current registry generation — the result cache's version stamp. *)
val generation : t -> int

(** Parse [xml] and register it under [uri]. *)
val load_xml : t -> uri:string -> string -> unit

(** Read and parse the file at [path], register under [uri]. *)
val load_file : t -> uri:string -> string -> unit

(** The raw bytes at [path] ({!Error} on failure; subject to the
    ["store.read"] chaos point) — the WAL materializes file-sourced
    [load-doc]s with these bytes so replay is independent of the file
    system. *)
val read_file : string -> string

(** Generate a benchmark document and register it under [uri]. [kind]
    is one of ["xmark"], ["curriculum"], ["play"], ["hospital"]; [size]
    is the scale factor (xmark) or element count (curriculum/hospital,
    truncated to int). *)
val load_generated :
  t -> uri:string -> kind:string -> size:float -> seed:int -> unit

(** Drop a document. No error if the URI was not registered (the
    generation is only bumped when something was actually removed). *)
val unload : t -> string -> unit

val uris : t -> string list

(** Per-document generation stamp
    ({!Fixq_xdm.Doc_registry.doc_generation}). *)
val doc_generation : t -> string -> int

(** Lazily built, patch-maintained structural synopsis of a loaded
    document ({!Fixq_xdm.Doc_registry.synopsis}). *)
val synopsis : t -> string -> Fixq_xdm.Synopsis.t option

(** Footprint-recording wrapper ({!Fixq_xdm.Doc_registry.track}): run
    [f] and report which documents it read, at which generations. *)
val track : t -> (unit -> 'a) -> 'a * (string * int) list

(** [patch t ~uri op] applies a structural edit to the document
    registered under [uri] and re-registers the patched tree (bumping
    its per-doc generation), returning the structured delta for
    incremental maintenance. Raises {!Error} when nothing is loaded
    under [uri] or the edit is invalid. Subject to the ["store.patch"]
    chaos point, which fires {e before} any mutation so a killed worker
    can be replayed to a consistent state. *)
val patch : t -> uri:string -> Fixq_xdm.Patch.op -> Fixq_xdm.Patch.delta
