(** Hardened newline-delimited frame reads.

    Unlike [input_line], {!read} distinguishes a newline-terminated
    frame from a stream that ended mid-frame — the difference between
    "the peer answered" and "the peer died while answering", which the
    retry layers above must not conflate. *)

val default_max_len : int
(** 64 MiB. *)

val read :
  ?max_len:int ->
  in_channel ->
  [ `Line of string  (** complete, newline-terminated frame *)
  | `Truncated of string  (** stream ended mid-frame; partial bytes *)
  | `Oversized  (** frame exceeded [max_len]; consumed up to its end *)
  | `Eof  (** clean end of stream at a frame boundary *) ]
(** Blocking read of one frame. An oversized frame is drained to its
    terminating newline (bounding memory at [max_len]) so the stream
    stays framed and the caller can answer a protocol error. May raise
    [Sys_error] like any channel read on a broken descriptor. *)
