module Xdm = Fixq_xdm

type config = {
  workers : int;
  prepared_capacity : int;
  result_capacity : int;
  max_iterations : int;
  timeout_ms : float option;
  stratified : bool;
}

let default_config =
  { workers = 1; prepared_capacity = 64; result_capacity = 256;
    max_iterations = 100_000; timeout_ms = None; stratified = false }

type t = {
  config : config;
  store : Store.t;
  prepared : (string, Prepared.t) Lru.t;
  results : Result_cache.t;
  metrics : Metrics.t;
  started_at : float;
}

let create ?(config = default_config) ?(store = Store.create ()) () =
  { config; store;
    prepared = Lru.create ~capacity:config.prepared_capacity ();
    results = Result_cache.create ~capacity:config.result_capacity ();
    metrics = Metrics.create (); started_at = Unix.gettimeofday () }

let store t = t.store
let config t = t.config

(* ------------------------------------------------------------------ *)
(* Request handling                                                    *)
(* ------------------------------------------------------------------ *)

let mode_string = function
  | Fixq.Naive -> "naive"
  | Fixq.Delta -> "delta"
  | Fixq.Auto -> "auto"

let preview query =
  let flat =
    String.map (function '\n' | '\r' | '\t' -> ' ' | c -> c) query
  in
  if String.length flat <= 60 then flat else String.sub flat 0 57 ^ "..."

(* Prepared-query cache: keyed by source text (and the stratified flag,
   which changes both distributivity checks). *)
let get_prepared t ~stratified ~max_iterations query =
  let key = (if stratified then "s|" else "p|") ^ query in
  match Lru.find t.prepared key with
  | Some p -> (p, "hit")
  | None ->
    let p = Prepared.prepare ~store:t.store ~stratified ~max_iterations query in
    Lru.put t.prepared key p;
    (p, "miss")

let handle_run t ~id
    { Protocol.query; engine; mode; stratified; max_iterations; timeout_ms;
      cache } =
  let stratified = Option.value ~default:t.config.stratified stratified in
  let max_iterations =
    Option.value ~default:t.config.max_iterations max_iterations
  in
  let timeout_ms =
    match timeout_ms with Some _ as x -> x | None -> t.config.timeout_ms
  in
  let generation = Store.generation t.store in
  let (prepared, prepared_status) =
    get_prepared t ~stratified ~max_iterations query
  in
  let run_mode =
    match mode with
    | `Pinned -> Prepared.mode_for prepared engine
    | `Naive -> Fixq.Naive
    | `Delta -> Fixq.Delta
  in
  let engine_str = match engine with `Interp -> "interp" | `Algebra -> "algebra" in
  let rkey =
    { Result_cache.hash = prepared.Prepared.hash;
      config =
        Printf.sprintf "%s:%s:%b" engine_str (mode_string run_mode) stratified;
      generation }
  in
  let respond ~result_status (entry : Result_cache.entry) =
    Protocol.ok_response ~id
      [ ("engine", Json.Str engine_str);
        ("mode", Json.Str (mode_string run_mode));
        ("used_delta", Json.of_bool_opt entry.Result_cache.used_delta);
        ("prepared_cache", Json.Str prepared_status);
        ("result_cache", Json.Str result_status);
        ("generation", Json.of_int generation);
        ("nodes_fed", Json.of_int entry.Result_cache.nodes_fed);
        ("depth", Json.of_int entry.Result_cache.depth);
        ("result", Json.Str entry.Result_cache.serialized);
        ("wall_ms", Json.Num entry.Result_cache.wall_ms) ]
  in
  match (if cache then Result_cache.find t.results rkey else None) with
  | Some entry -> respond ~result_status:"hit" entry
  | None ->
    let deadline =
      Option.map (fun ms -> Unix.gettimeofday () +. (ms /. 1000.0)) timeout_ms
    in
    let fixq_engine =
      match engine with
      | `Interp -> Fixq.Interpreter run_mode
      | `Algebra -> Fixq.Algebra run_mode
    in
    let report =
      Fixq.run_program ~registry:(Store.registry t.store) ~max_iterations
        ~stratified ?deadline ~engine:fixq_engine prepared.Prepared.program
    in
    let entry =
      { Result_cache.serialized =
          Xdm.Serializer.seq_to_string report.Fixq.result;
        used_delta = report.Fixq.used_delta;
        nodes_fed = report.Fixq.nodes_fed; depth = report.Fixq.depth;
        wall_ms = report.Fixq.wall_ms }
    in
    (* Cache only when no document changed under the evaluation: a
       concurrent load-doc would make this entry's generation stamp a
       lie. *)
    if cache && Store.generation t.store = generation then
      Result_cache.put t.results rkey entry;
    Metrics.record t.metrics ~key:prepared.Prepared.hash
      ~label:(preview query) ~ms:report.Fixq.wall_ms;
    respond ~result_status:"miss" entry

let handle_check t ~id query stratified =
  let stratified = Option.value ~default:t.config.stratified stratified in
  let (p, prepared_status) =
    get_prepared t ~stratified ~max_iterations:t.config.max_iterations query
  in
  Protocol.ok_response ~id
    [ ("ifp_count", Json.of_int p.Prepared.ifp_count);
      ("syntactic", Json.Bool p.Prepared.syntactic);
      ("algebraic", Json.of_bool_opt p.Prepared.algebraic);
      ("interp_mode", Json.Str (mode_string p.Prepared.interp_mode));
      ("algebra_mode", Json.Str (mode_string p.Prepared.algebra_mode));
      ("stratified", Json.Bool stratified);
      ("warnings",
       Json.List (List.map (fun w -> Json.Str w) p.Prepared.warnings));
      ("prepared_cache", Json.Str prepared_status) ]

let handle_plan t ~id query stratified =
  let stratified = Option.value ~default:t.config.stratified stratified in
  let (p, prepared_status) =
    get_prepared t ~stratified ~max_iterations:t.config.max_iterations query
  in
  match p.Prepared.plan with
  | None ->
    Protocol.error_response ~id
      "no compilable IFP body found (interpreter-only query)"
  | Some (_, plan) ->
    Protocol.ok_response ~id
      [ ("distributive", Json.of_bool_opt p.Prepared.algebraic);
        ("prepared_cache", Json.Str prepared_status);
        ("plan", Json.Str (Fixq_algebra.Render.to_ascii plan)) ]

let handle_load_doc t ~id uri (source : Protocol.doc_source) =
  (match source with
  | Protocol.From_xml xml -> Store.load_xml t.store ~uri xml
  | Protocol.From_path path -> Store.load_file t.store ~uri path
  | Protocol.From_generator { kind; size; seed } ->
    let size =
      match size with
      | Some s -> s
      | None -> (
        match kind with "xmark" -> 0.002 | "hospital" -> 1000.0 | _ -> 100.0)
    in
    Store.load_generated t.store ~uri ~kind ~size ~seed);
  Protocol.ok_response ~id
    [ ("uri", Json.Str uri);
      ("generation", Json.of_int (Store.generation t.store)) ]

let cache_stats_json ~hits ~misses ~size ~capacity =
  Json.Obj
    [ ("hits", Json.of_int hits); ("misses", Json.of_int misses);
      ("size", Json.of_int size); ("capacity", Json.of_int capacity) ]

let handle_stats t ~id =
  Protocol.ok_response ~id
    [ ("stats",
       Json.Obj
         [ ("generation", Json.of_int (Store.generation t.store));
           ("documents",
            Json.List
              (List.map (fun u -> Json.Str u) (Store.uris t.store)));
           ("prepared",
            cache_stats_json ~hits:(Lru.hits t.prepared)
              ~misses:(Lru.misses t.prepared) ~size:(Lru.length t.prepared)
              ~capacity:(Lru.capacity t.prepared));
           ("results",
            cache_stats_json ~hits:(Result_cache.hits t.results)
              ~misses:(Result_cache.misses t.results)
              ~size:(Result_cache.length t.results)
              ~capacity:t.config.result_capacity);
           ("queries", Metrics.to_json t.metrics);
           ("uptime_ms",
            Json.Num ((Unix.gettimeofday () -. t.started_at) *. 1000.0)) ]) ]

let handle t request =
  let id = Protocol.request_id request in
  match Protocol.parse_request request with
  | Error msg -> (Protocol.error_response ~id msg, false)
  | Ok req -> (
    try
      match req with
      | Protocol.Run r -> (handle_run t ~id r, false)
      | Protocol.Check { query; stratified } ->
        (handle_check t ~id query stratified, false)
      | Protocol.Plan { query; stratified } ->
        (handle_plan t ~id query stratified, false)
      | Protocol.Load_doc { uri; source } ->
        (handle_load_doc t ~id uri source, false)
      | Protocol.Unload_doc { uri } ->
        Store.unload t.store uri;
        ( Protocol.ok_response ~id
            [ ("uri", Json.Str uri);
              ("generation", Json.of_int (Store.generation t.store)) ],
          false )
      | Protocol.Stats -> (handle_stats t ~id, false)
      | Protocol.Ping -> (Protocol.ok_response ~id [ ("pong", Json.Bool true) ], false)
      | Protocol.Shutdown ->
        (Protocol.ok_response ~id [ ("shutdown", Json.Bool true) ], true)
    with
    | Prepared.Rejected msg | Store.Error msg | Fixq.Error msg ->
      (Protocol.error_response ~id msg, false)
    | exn ->
      (* A request must never take the server down. *)
      (Protocol.error_response ~id
         ("internal error: " ^ Printexc.to_string exn),
       false))

let handle_line t line =
  match Json.parse line with
  | request ->
    let (response, shutdown) = handle t request in
    (Json.to_string response, shutdown)
  | exception Json.Parse_error msg ->
    (Json.to_string (Protocol.error_response ~id:Json.Null msg), false)

(* ------------------------------------------------------------------ *)
(* Worker pool                                                         *)
(* ------------------------------------------------------------------ *)

module Pool = struct
  type pool = {
    jobs : (unit -> unit) Queue.t;
    lock : Mutex.t;
    nonempty : Condition.t;
    idle : Condition.t;
    mutable stop : bool;
    mutable active : int;
    mutable threads : Thread.t list;
  }

  let rec worker p =
    Mutex.lock p.lock;
    while Queue.is_empty p.jobs && not p.stop do
      Condition.wait p.nonempty p.lock
    done;
    if Queue.is_empty p.jobs then Mutex.unlock p.lock (* stopping *)
    else begin
      let job = Queue.pop p.jobs in
      p.active <- p.active + 1;
      Mutex.unlock p.lock;
      (try job () with _ -> ());
      Mutex.lock p.lock;
      p.active <- p.active - 1;
      if Queue.is_empty p.jobs && p.active = 0 then Condition.broadcast p.idle;
      Mutex.unlock p.lock;
      worker p
    end

  let create n =
    let p =
      { jobs = Queue.create (); lock = Mutex.create ();
        nonempty = Condition.create (); idle = Condition.create ();
        stop = false; active = 0; threads = [] }
    in
    p.threads <- List.init (max 1 n) (fun _ -> Thread.create worker p);
    p

  let submit p job =
    Mutex.lock p.lock;
    Queue.push job p.jobs;
    Condition.signal p.nonempty;
    Mutex.unlock p.lock

  (* Block until every submitted job has finished. *)
  let drain p =
    Mutex.lock p.lock;
    while not (Queue.is_empty p.jobs && p.active = 0) do
      Condition.wait p.idle p.lock
    done;
    Mutex.unlock p.lock

  let shutdown p =
    drain p;
    Mutex.lock p.lock;
    p.stop <- true;
    Condition.broadcast p.nonempty;
    Mutex.unlock p.lock;
    List.iter Thread.join p.threads
end

(* ------------------------------------------------------------------ *)
(* Transports                                                          *)
(* ------------------------------------------------------------------ *)

let is_shutdown_line line =
  match Json.parse line with
  | j -> Json.str_opt (Json.member "op" j) = Some "shutdown"
  | exception Json.Parse_error _ -> false

let serve_pipe t ic oc =
  let out_lock = Mutex.create () in
  let write_line s =
    Mutex.lock out_lock;
    output_string oc s;
    output_char oc '\n';
    flush oc;
    Mutex.unlock out_lock
  in
  if t.config.workers <= 1 then
    let rec loop () =
      match input_line ic with
      | exception End_of_file -> ()
      | line when String.trim line = "" -> loop ()
      | line ->
        let (response, shutdown) = handle_line t line in
        write_line response;
        if not shutdown then loop ()
    in
    loop ()
  else begin
    let pool = Pool.create t.config.workers in
    let rec loop () =
      match input_line ic with
      | exception End_of_file -> ()
      | line when String.trim line = "" -> loop ()
      | line ->
        if is_shutdown_line line then begin
          (* answer shutdown only after in-flight requests completed *)
          Pool.drain pool;
          let (response, _) = handle_line t line in
          write_line response
        end
        else begin
          Pool.submit pool (fun () ->
              let (response, _) = handle_line t line in
              write_line response);
          loop ()
        end
    in
    loop ();
    Pool.shutdown pool
  end

let serve_socket t ~path =
  (* a client hanging up mid-response must not kill the process *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  if Sys.file_exists path then Unix.unlink path;
  let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind sock (Unix.ADDR_UNIX path);
  Unix.listen sock 64;
  let stopping = ref false in
  let pool = Pool.create t.config.workers in
  let handle_conn fd =
    let ic = Unix.in_channel_of_descr fd in
    let oc = Unix.out_channel_of_descr fd in
    let rec loop () =
      match input_line ic with
      | exception End_of_file -> ()
      | exception Sys_error _ -> ()
      | line when String.trim line = "" -> loop ()
      | line ->
        let (response, shutdown) = handle_line t line in
        (try
           output_string oc response;
           output_char oc '\n';
           flush oc
         with Sys_error _ -> ());
        if shutdown then begin
          stopping := true;
          (* wake the accept loop *)
          (try Unix.shutdown sock Unix.SHUTDOWN_RECEIVE with Unix.Unix_error _ -> ());
          (try Unix.close sock with Unix.Unix_error _ -> ())
        end
        else loop ()
    in
    Fun.protect
      ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
      loop
  in
  (try
     while not !stopping do
       let (fd, _) = Unix.accept sock in
       Pool.submit pool (fun () -> handle_conn fd)
     done
   with Unix.Unix_error _ | Sys_error _ -> ());
  Pool.shutdown pool;
  (try Unix.close sock with Unix.Unix_error _ -> ());
  if Sys.file_exists path then (try Unix.unlink path with Sys_error _ -> ())
