module Xdm = Fixq_xdm
module Diag = Fixq_analysis.Diag
module Analyze = Fixq_analysis.Analyze
module Ivm = Fixq_ivm.Ivm
module Semiring = Fixq_semiring.Semiring

type config = {
  workers : int;
  prepared_capacity : int;
  result_capacity : int;
  max_iterations : int;
  timeout_ms : float option;
  stratified : bool;
  governor : Governor.config;
  state_dir : string option;
  snapshot_threshold : int;
}

let default_config =
  { workers = 1; prepared_capacity = 64; result_capacity = 256;
    max_iterations = 100_000; timeout_ms = None; stratified = false;
    governor = Governor.default_config; state_dir = None;
    snapshot_threshold = 64 }

(* What a snapshot needs to revive a maintained IVM entry: the query
   source (to re-prepare) and the result as portable (uri, preorder
   rank) node identities (to rebuild the item sequence against the
   reloaded trees). Recorded at adoption time, keyed like the result
   cache. *)
type persist_row = {
  p_source : string;
  p_stratified : bool;
  p_max_iterations : int;
  p_items : (string * int) list;
}

type t = {
  config : config;
  store : Store.t;
  prepared : (string, Prepared.t) Lru.t;
  results : Result_cache.t;
  metrics : Metrics.t;
  governor : Governor.t;
  ivm : Ivm.t;
      (** maintained fixpoint entries mirroring eligible result-cache
          entries; consulted by [patch-doc] *)
  started_at : float;
  ranks : (int, (int, int) Hashtbl.t) Hashtbl.t;
      (** per-document preorder ranks, keyed by root node id — node ids
          are process-global and never reused, so entries never go
          stale (see {!keyed_items}) *)
  ranks_lock : Mutex.t;
  analysis_counters : (string, int) Hashtbl.t;
      (** divergence class of each freshly prepared query, plus
          refusals — exposed in stats JSON and Prometheus *)
  analysis_lock : Mutex.t;
  mutable durable : Durability.t option;
      (** the snapshot+WAL pair when running with [state_dir] — [None]
          during recovery replay, so replayed ops are not re-logged *)
  persist : (Result_cache.key, persist_row) Hashtbl.t;
  persist_lock : Mutex.t;
  mutable recovered_stats : (string * Json.t) list;
      (** what the last recovery restored (stats exposition) *)
}

(* [create] proper lives below the request handlers: recovery replays
   WAL ops through them. *)
let create_raw ?(config = default_config) ?(store = Store.create ()) () =
  { config; store;
    prepared = Lru.create ~capacity:config.prepared_capacity ();
    results = Result_cache.create ~capacity:config.result_capacity ();
    metrics = Metrics.create (); governor = Governor.create config.governor;
    ivm =
      Ivm.create ~capacity:config.result_capacity
        ~registry:(Store.registry store) ();
    started_at = Unix.gettimeofday ();
    ranks = Hashtbl.create 8; ranks_lock = Mutex.create ();
    analysis_counters = Hashtbl.create 8; analysis_lock = Mutex.create ();
    durable = None; persist = Hashtbl.create 8;
    persist_lock = Mutex.create (); recovered_stats = [] }

let bump_analysis t key =
  Mutex.lock t.analysis_lock;
  Hashtbl.replace t.analysis_counters key
    (1 + Option.value ~default:0 (Hashtbl.find_opt t.analysis_counters key));
  Mutex.unlock t.analysis_lock

let analysis_counter_rows t =
  Mutex.lock t.analysis_lock;
  let rows = Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.analysis_counters [] in
  Mutex.unlock t.analysis_lock;
  List.sort compare rows

let store t = t.store
let config t = t.config
let governor t = t.governor

(* ------------------------------------------------------------------ *)
(* Request handling                                                    *)
(* ------------------------------------------------------------------ *)

let mode_string = function
  | Fixq.Naive -> "naive"
  | Fixq.Delta -> "delta"
  | Fixq.Auto -> "auto"

let preview query =
  let flat =
    String.map (function '\n' | '\r' | '\t' -> ' ' | c -> c) query
  in
  if String.length flat <= 60 then flat else String.sub flat 0 57 ^ "..."

(* Prepared-query cache: keyed by source text (and the stratified flag,
   which changes both distributivity checks). *)
let get_prepared t ~stratified ~max_iterations query =
  let key = (if stratified then "s|" else "p|") ^ query in
  match Lru.find t.prepared key with
  | Some p ->
    (* still a hit — only the synopsis-dependent cost estimate is
       recomputed when documents changed since prepare time *)
    let p' = Prepared.refresh ~store:t.store p in
    if p' != p then Lru.put t.prepared key p';
    (p', "hit")
  | None ->
    let p = Prepared.prepare ~store:t.store ~stratified ~max_iterations query in
    (match Prepared.divergence p with
    | Some d -> bump_analysis t (Analyze.divergence_string d)
    | None -> ());
    (match Prepared.semiring p with
    | Some k -> bump_analysis t ("semiring:" ^ Semiring.kind_to_string k)
    | None -> ());
    Lru.put t.prepared key p;
    (p, "miss")

let diag_json (d : Diag.t) =
  let line, col = match d.Diag.loc with Some lc -> lc | None -> (0, 0) in
  Json.Obj
    [ ("severity", Json.Str (Diag.severity_string d.Diag.severity));
      ("code", Json.Str d.Diag.code);
      ("line", Json.of_int line);
      ("col", Json.of_int col);
      ("context", Json.Str d.Diag.context);
      ("message", Json.Str d.Diag.message) ]

(* ------------------------------------------------------------------ *)
(* Cross-process node identity                                         *)
(* ------------------------------------------------------------------ *)

(* Two workers that loaded the same document (same XML bytes, path, or
   generator+seed) hold structurally identical trees, so a node's
   preorder position within its tree — element, then its attributes,
   then its children, the id order documented in [Node] — names the
   same node in both processes. [keyed_items] tags each result item
   with that portable identity so a cluster coordinator can unite
   result slices by node identity and document order, reproducing
   byte-for-byte what a single process would serialize. *)

let rank_table root =
  let tbl = Hashtbl.create 256 in
  let next = ref 0 in
  let rec walk n =
    Hashtbl.replace tbl n.Xdm.Node.id !next;
    incr next;
    List.iter walk (Xdm.Node.attributes n);
    List.iter walk (Xdm.Node.children n)
  in
  walk root;
  tbl

let rank_of t root =
  Mutex.lock t.ranks_lock;
  let tbl =
    match Hashtbl.find_opt t.ranks root.Xdm.Node.id with
    | Some tbl -> tbl
    | None ->
      let tbl = rank_table root in
      Hashtbl.replace t.ranks root.Xdm.Node.id tbl;
      tbl
  in
  Mutex.unlock t.ranks_lock;
  tbl

let keyed_items t (items : Xdm.Item.seq) =
  Json.List
    (List.map
       (fun item ->
         match (item : Xdm.Item.t) with
         | Xdm.Item.N n -> (
           let root = Xdm.Node.root n in
           let xml = Xdm.Serializer.to_string n in
           match Xdm.Node.uri root with
           | Some u ->
             let rank =
               match Hashtbl.find_opt (rank_of t root) n.Xdm.Node.id with
               | Some r -> r
               | None -> -1 (* detached from its indexed tree; content key *)
             in
             if rank >= 0 then
               Json.Obj
                 [ ("u", Json.Str u); ("r", Json.of_int rank);
                   ("x", Json.Str xml) ]
             else Json.Obj [ ("k", Json.Str ("x:" ^ xml)); ("x", Json.Str xml) ]
           | None ->
             (* constructed node: no portable identity; key by content.
                Distributive bodies never construct (constructors void
                the verdict), so the scatter path never lands here. *)
             Json.Obj [ ("k", Json.Str ("x:" ^ xml)); ("x", Json.Str xml) ])
         | Xdm.Item.A a ->
           let s = Xdm.Serializer.escape_text (Xdm.Atom.to_string a) in
           Json.Obj [ ("k", Json.Str ("a:" ^ s)); ("x", Json.Str s) ])
       items)

(* Record the snapshot-persistable identity of a just-adopted IVM
   entry: possible exactly when every result item is a node with a
   portable (uri, preorder rank) identity — the same condition the
   cluster's keyed merge needs. Anything else clears the row. *)
let record_persist t key ~query ~stratified ~max_iterations items =
  if t.durable <> None then begin
    let rows =
      List.fold_left
        (fun acc item ->
          match (acc, (item : Xdm.Item.t)) with
          | (None, _) | (_, Xdm.Item.A _) -> None
          | (Some acc, Xdm.Item.N n) -> (
            let root = Xdm.Node.root n in
            match Xdm.Node.uri root with
            | None -> None
            | Some u -> (
              match Hashtbl.find_opt (rank_of t root) n.Xdm.Node.id with
              | Some r -> Some ((u, r) :: acc)
              | None -> None)))
        (Some []) items
    in
    Mutex.lock t.persist_lock;
    (match rows with
    | Some rows ->
      Hashtbl.replace t.persist key
        { p_source = query; p_stratified = stratified;
          p_max_iterations = max_iterations; p_items = List.rev rows }
    | None -> Hashtbl.remove t.persist key);
    Mutex.unlock t.persist_lock
  end

let handle_run t ~id
    { Protocol.query; engine; mode; stratified; max_iterations; timeout_ms;
      cache; partition } =
  (* A budget is an explicit request-level iteration or time bound, or
     a server-wide timeout. The config's max_iterations default is a
     backstop, not a budget the caller chose. *)
  let unbudgeted =
    max_iterations = None && timeout_ms = None && t.config.timeout_ms = None
  in
  let stratified = Option.value ~default:t.config.stratified stratified in
  let max_iterations =
    Option.value ~default:t.config.max_iterations max_iterations
  in
  let timeout_ms =
    match timeout_ms with Some _ as x -> x | None -> t.config.timeout_ms
  in
  let generation = Store.generation t.store in
  let (prepared, prepared_status) =
    get_prepared t ~stratified ~max_iterations query
  in
  match (if unbudgeted then Prepared.divergence prepared else None) with
  | Some (Analyze.May_diverge reason) ->
    bump_analysis t "refused";
    (* An unstable [accumulate by] semiring gets its own code so
       clients can distinguish "your aggregate cannot stabilize" from
       the structural may-diverge verdict. *)
    let code =
      match Prepared.semiring prepared with
      | Some k when Semiring.stability k = Semiring.Unstable -> "FQ043"
      | _ -> "FQ040"
    in
    Protocol.error_response ~id
      ~extra:
        [ ("code", Json.Str code);
          ("divergence", Json.Str "may-diverge");
          ("reason", Json.Str reason) ]
      (Printf.sprintf
         "query may diverge (%s) and carries no budget: set \
          max_iterations or timeout_ms"
         reason)
  | _ ->
  (* [engine:"auto"]: resolve to the cost model's cheapest engine before
     anything downstream — cache keys, pinned modes and execution all see
     a plain fixed engine, so an auto run is byte-identical to the same
     request with the chosen engine spelled out. *)
  let auto = engine = `Auto in
  let engine =
    match engine with
    | `Auto -> Prepared.chosen_engine prepared
    | (`Interp | `Algebra | `Sql) as e -> e
  in
  let engine_str =
    match engine with
    | `Interp -> "interp"
    | `Algebra -> "algebra"
    | `Sql -> "sql"
  in
  let cost = prepared.Prepared.cost in
  let predicted_cost =
    match
      List.find_opt
        (fun e -> e.Fixq_cost.Estimate.eng_name = engine_str)
        cost.Fixq_cost.Estimate.engines
    with
    | Some e -> e.Fixq_cost.Estimate.eng_cost
    | None -> cost.Fixq_cost.Estimate.work
  in
  let over_envelope =
    match (Governor.config t.governor).Governor.max_cost with
    | Some envelope when predicted_cost > envelope -> Some envelope
    | _ -> None
  in
  match over_envelope with
  | Some envelope when unbudgeted ->
    (* Admission control: predicted cost exceeds the governor envelope
       and the caller brought no budget of their own. *)
    bump_analysis t "refused-cost";
    Protocol.error_response ~id
      ~extra:
        [ ("code", Json.Str "FQ055");
          ("engine", Json.Str engine_str);
          ("estimated_cost", Json.Num (Float.round predicted_cost));
          ("max_cost", Json.Num envelope);
          ("rounds_bound",
           (match cost.Fixq_cost.Estimate.rounds_bound with
           | Some b -> Json.of_int b
           | None -> Json.Null)) ]
      (Printf.sprintf
         "predicted cost %.0f exceeds the admission envelope %.0f and the \
          request carries no budget: set max_iterations or timeout_ms"
         predicted_cost envelope)
  | _ ->
  (* Budgeted but over the envelope: down-budget the iteration cap to
     the certified round bound — the run cannot legitimately need more
     rounds, so this only cuts runaway headroom. *)
  let down_budgeted =
    match (over_envelope, cost.Fixq_cost.Estimate.rounds_bound) with
    | Some _, Some bound when bound < max_iterations -> Some bound
    | _ -> None
  in
  let max_iterations = Option.value ~default:max_iterations down_budgeted in
  let run_mode =
    match mode with
    | `Pinned ->
      Prepared.mode_for prepared
        (engine :> [ `Interp | `Algebra | `Sql | `Auto ])
    | `Naive -> Fixq.Naive
    | `Delta -> Fixq.Delta
  in
  let rkey =
    { Result_cache.hash = prepared.Prepared.hash;
      config =
        Printf.sprintf "%s:%s:%b" engine_str (mode_string run_mode) stratified }
  in
  let respond ~result_status ?(extra = []) (entry : Result_cache.entry) =
    let annotated =
      match entry.Result_cache.semiring with
      | None -> []
      | Some kind ->
        [ ("semiring", Json.Str kind);
          ("annotations",
           Json.List
             (List.map
                (fun (x, a) ->
                  Json.Obj [ ("x", Json.Str x); ("a", Json.Str a) ])
                entry.Result_cache.annotations)) ]
    in
    let cost_extra =
      (if auto then [ ("chosen_by", Json.Str "cost") ] else [])
      @
      match down_budgeted with
      | Some bound ->
        [ ("down_budgeted", Json.of_int bound);
          ("estimated_cost", Json.Num (Float.round predicted_cost)) ]
      | None -> []
    in
    Protocol.ok_response ~id
      ([ ("engine", Json.Str engine_str);
         ("mode", Json.Str (mode_string run_mode));
         ("used_delta", Json.of_bool_opt entry.Result_cache.used_delta);
         ("prepared_cache", Json.Str prepared_status);
         ("result_cache", Json.Str result_status);
         ("generation", Json.of_int generation);
         ("nodes_fed", Json.of_int entry.Result_cache.nodes_fed);
         ("depth", Json.of_int entry.Result_cache.depth);
         ("result", Json.Str entry.Result_cache.serialized) ]
      @ cost_extra @ annotated @ extra
      @ [ ("wall_ms", Json.Num entry.Result_cache.wall_ms) ])
  in
  (* Partitioned runs (the cluster's scatter legs) always execute: the
     keyed item list cannot be rebuilt from a cached serialization, and
     the coordinator only scatters cold or invalidated work anyway. *)
  let cache = cache && partition = None in
  let current uri = Store.doc_generation t.store uri in
  match (if cache then Result_cache.find t.results rkey ~current else None) with
  | Some entry -> respond ~result_status:"hit" entry
  | None ->
    let deadline =
      Option.map (fun ms -> Unix.gettimeofday () +. (ms /. 1000.0)) timeout_ms
    in
    let fixq_engine =
      match engine with
      | `Interp -> Fixq.Interpreter run_mode
      | `Algebra -> Fixq.Algebra run_mode
      | `Sql -> Fixq.Sql run_mode
    in
    let program =
      match partition with
      | None -> prepared.Prepared.program
      | Some (index, count) ->
        Fixq.partition_first_seed ~index ~count prepared.Prepared.program
    in
    let report, footprint =
      Store.track t.store (fun () ->
          Governor.with_memory_budget t.governor (fun ~round_check ->
              Fixq.run_program ~registry:(Store.registry t.store)
                ~max_iterations ~stratified ?deadline ~round_hook:round_check
                ?max_call_depth:
                  (Governor.config t.governor).Governor.max_call_depth
                ~engine:fixq_engine program))
    in
    let entry =
      { Result_cache.serialized =
          Xdm.Serializer.seq_to_string report.Fixq.result;
        used_delta = report.Fixq.used_delta;
        nodes_fed = report.Fixq.nodes_fed; depth = report.Fixq.depth;
        wall_ms = report.Fixq.wall_ms; footprint;
        semiring = report.Fixq.semiring;
        annotations = report.Fixq.annotations }
    in
    (* Cache only when no document changed under the evaluation: a
       concurrent load-doc would make this entry's footprint stamps a
       lie. *)
    if cache && Store.generation t.store = generation then begin
      Result_cache.put t.results rkey entry;
      (* Eligible fixpoints additionally become maintained entries so a
         later patch-doc can update the cached bytes differentially. *)
      Ivm.adopt t.ivm ~hash:rkey.Result_cache.hash
        ~config:rkey.Result_cache.config ~program:prepared.Prepared.program
        ~stratified ~max_iterations ~result:report.Fixq.result ~footprint;
      record_persist t rkey ~query ~stratified ~max_iterations
        report.Fixq.result
    end;
    Metrics.record t.metrics ~key:prepared.Prepared.hash
      ~label:(preview query) ~ms:report.Fixq.wall_ms;
    let extra =
      match partition with
      | None -> []
      | Some (index, count) ->
        [ ("partition", Json.Str (Printf.sprintf "%d/%d" index count));
          ("keyed", keyed_items t report.Fixq.result) ]
    in
    respond ~result_status:"miss" ~extra entry

(* prepare: warm the prepared-query LRU (parse + static check + both
   verdicts + pinned modes + compiled plan) without executing — the
   cluster coordinator uses this to warm every replica before traffic. *)
let handle_prepare t ~id query stratified =
  let stratified = Option.value ~default:t.config.stratified stratified in
  let (p, prepared_status) =
    get_prepared t ~stratified ~max_iterations:t.config.max_iterations query
  in
  Protocol.ok_response ~id
    [ ("prepared_cache", Json.Str prepared_status);
      ("hash", Json.Str p.Prepared.hash);
      ("ifp_count", Json.of_int p.Prepared.ifp_count);
      ("interp_mode", Json.Str (mode_string p.Prepared.interp_mode));
      ("algebra_mode", Json.Str (mode_string p.Prepared.algebra_mode));
      ("has_plan", Json.Bool (p.Prepared.plan <> None));
      ("prepare_ms", Json.Num p.Prepared.prepare_ms) ]

let handle_check t ~id query stratified =
  let stratified = Option.value ~default:t.config.stratified stratified in
  let (p, prepared_status) =
    get_prepared t ~stratified ~max_iterations:t.config.max_iterations query
  in
  let first = match p.Prepared.analysis.Analyze.ifps with
    | r :: _ -> Some r
    | [] -> None
  in
  let sql =
    Fixq.sql_of_first_ifp ~registry:(Store.registry t.store)
      p.Prepared.program
  in
  Protocol.ok_response ~id
    [ ("ifp_count", Json.of_int p.Prepared.ifp_count);
      ("syntactic", Json.Bool p.Prepared.syntactic);
      ("algebraic", Json.of_bool_opt p.Prepared.algebraic);
      ("interp_mode", Json.Str (mode_string p.Prepared.interp_mode));
      ("algebra_mode", Json.Str (mode_string p.Prepared.algebra_mode));
      ("stratified", Json.Bool stratified);
      ("warnings",
       Json.List (List.map (fun w -> Json.Str w) p.Prepared.warnings));
      ("diagnostics",
       Json.List (List.map diag_json (Prepared.diagnostics p)));
      ("divergence",
       (match Prepared.divergence p with
       | Some d -> Json.Str (Analyze.divergence_string d)
       | None -> Json.Null));
      ("semiring",
       (match Prepared.semiring p with
       | Some k -> Json.Str (Semiring.kind_to_string k)
       | None -> Json.Null));
      ("convergence",
       (match Prepared.semiring p with
       | Some k -> Json.Str (Semiring.stability_string (Semiring.stability k))
       | None -> Json.Null));
      ("node_only",
       Json.of_bool_opt
         (Option.map
            (fun r -> r.Analyze.node_only_seed && r.Analyze.node_only_body)
            first));
      ("ivm",
       Json.Str
         (Analyze.ivm_string
            (Analyze.ivm_eligibility ~stratified p.Prepared.program)));
      ("blocking",
       (match p.Prepared.push with
       | Some { Fixq_algebra.Push.blocking = Some b; _ } -> Json.Str b
       | _ -> Json.Null));
      ("sql_renderable", Json.of_bool_opt (Option.map Result.is_ok sql));
      ("sql_reason",
       (match sql with
       | Some (Error reason) -> Json.Str reason
       | Some (Ok _) | None -> Json.Null));
      ("rounds_bound",
       (match p.Prepared.cost.Fixq_cost.Estimate.rounds_bound with
       | Some b -> Json.of_int b
       | None -> Json.Null));
      ("bound_reason",
       Json.Str p.Prepared.cost.Fixq_cost.Estimate.bound_reason);
      ("estimated_cost",
       Json.Obj
         (List.map
            (fun e ->
              ( e.Fixq_cost.Estimate.eng_name,
                Json.Num (Float.round e.Fixq_cost.Estimate.eng_cost) ))
            p.Prepared.cost.Fixq_cost.Estimate.engines));
      ("chosen_engine", Json.Str p.Prepared.cost.Fixq_cost.Estimate.chosen);
      ("prepared_cache", Json.Str prepared_status) ]

let handle_plan t ~id query stratified =
  let stratified = Option.value ~default:t.config.stratified stratified in
  let (p, prepared_status) =
    get_prepared t ~stratified ~max_iterations:t.config.max_iterations query
  in
  match p.Prepared.plan with
  | None ->
    Protocol.error_response ~id
      "no compilable IFP body found (interpreter-only query)"
  | Some (_, plan) ->
    let cards =
      Fixq_cost.Estimate.plan_cards ~registry:(Store.registry t.store) plan
    in
    let annot p =
      Some ("card " ^ Fixq_cost.Estimate.interval_string (cards p))
    in
    Protocol.ok_response ~id
      [ ("distributive", Json.of_bool_opt p.Prepared.algebraic);
        ("prepared_cache", Json.Str prepared_status);
        ("plan", Json.Str (Fixq_algebra.Render.to_ascii_annotated ~annot plan)) ]

(* explain: the full cost report — per-engine estimates, certified round
   bound, per-operator cardinality table — without executing anything. *)
let handle_explain t ~id query stratified =
  let stratified = Option.value ~default:t.config.stratified stratified in
  let (p, prepared_status) =
    get_prepared t ~stratified ~max_iterations:t.config.max_iterations query
  in
  let module E = Fixq_cost.Estimate in
  let c = p.Prepared.cost in
  Protocol.ok_response ~id
    [ ("prepared_cache", Json.Str prepared_status);
      ("work", Json.Num (Float.round c.E.work));
      ("result_card", Json.Str (E.interval_string c.E.result_card));
      ("rounds_bound",
       (match c.E.rounds_bound with
       | Some b -> Json.of_int b
       | None -> Json.Null));
      ("bound_reason", Json.Str c.E.bound_reason);
      ("engines",
       Json.List
         (List.map
            (fun e ->
              Json.Obj
                [ ("name", Json.Str e.E.eng_name);
                  ("cost", Json.Num (Float.round e.E.eng_cost));
                  ("native", Json.Bool e.E.eng_native);
                  ("note", Json.Str e.E.eng_note) ])
            c.E.engines));
      ("chosen", Json.Str c.E.chosen);
      ("choice_reason", Json.Str c.E.choice_reason);
      ("operators",
       Json.List
         (List.map
            (fun r ->
              Json.Obj
                ([ ("desc", Json.Str r.E.op_desc);
                   ("depth", Json.of_int r.E.op_depth);
                   ("card", Json.Str (E.interval_string r.E.op_card)) ]
                @ (match r.E.op_loc with
                  | Some (l, col) ->
                    [ ("line", Json.of_int l); ("col", Json.of_int col) ]
                  | None -> [])
                @
                match r.E.op_note with
                | Some n -> [ ("note", Json.Str n) ]
                | None -> []))
            c.E.rows));
      ("diagnostics", Json.List (List.map diag_json c.E.diagnostics));
      ("text", Json.Str (E.to_text c)) ]

let handle_load_doc t ~id uri (source : Protocol.doc_source) =
  (match source with
  | Protocol.From_xml xml -> Store.load_xml t.store ~uri xml
  | Protocol.From_path path -> Store.load_file t.store ~uri path
  | Protocol.From_generator { kind; size; seed } ->
    let size =
      match size with
      | Some s -> s
      | None -> (
        match kind with "xmark" -> 0.002 | "hospital" -> 1000.0 | _ -> 100.0)
    in
    Store.load_generated t.store ~uri ~kind ~size ~seed);
  (* A wholesale replacement leaves nothing to remap a maintained entry
     through — only patch-doc preserves node identity. *)
  Ivm.on_unload t.ivm ~uri;
  Protocol.ok_response ~id
    [ ("uri", Json.Str uri);
      ("generation", Json.of_int (Store.generation t.store)) ]

let handle_patch_doc t ~id uri op =
  let t0 = Unix.gettimeofday () in
  let delta = Store.patch t.store ~uri op in
  let outcomes =
    Ivm.on_patch t.ivm ~uri ~op delta
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  let current u = Store.doc_generation t.store u in
  let maintained = ref 0 in
  let dropped = ref 0 in
  let entry_rows =
    List.map
      (fun ((hash, config), outcome) ->
        let key = { Result_cache.hash; config } in
        let base =
          [ ("hash", Json.Str hash); ("config", Json.Str config) ]
        in
        match (outcome : Ivm.outcome) with
        | Ivm.Maintained { serialized; delta_count; rounds } ->
          incr maintained;
          (match
             List.find_opt
               (fun (k, _) -> k = key)
               (Result_cache.bindings t.results)
           with
          | Some (_, entry) ->
            (* Refresh the cached bytes in place. Only the patched
               document's stamp advances; the rest of the footprint
               keeps its recorded generations, so an unrelated
               concurrent load still invalidates as before. *)
            Result_cache.put t.results key
              { entry with
                Result_cache.serialized;
                footprint =
                  List.map
                    (fun (u, g) -> (u, if u = uri then current u else g))
                    entry.Result_cache.footprint }
          | None -> ());
          Json.Obj
            (base
            @ [ ("outcome", Json.Str "maintained");
                ("delta", Json.of_int delta_count);
                ("rounds", Json.of_int rounds) ])
        | Ivm.Dropped reason ->
          incr dropped;
          Result_cache.remove t.results key;
          Json.Obj
            (base
            @ [ ("outcome", Json.Str "recompute");
                ("reason", Json.Str reason) ]))
      outcomes
  in
  Protocol.ok_response ~id
    [ ("uri", Json.Str uri);
      ("path", Json.Str (Xdm.Patch.path_of_op op));
      ("generation", Json.of_int (Store.generation t.store));
      ("doc_generation", Json.of_int (current uri));
      ("inserted", Json.of_int delta.Xdm.Patch.inserted_count);
      ("deleted", Json.of_int (List.length delta.Xdm.Patch.deleted));
      ("maintained", Json.of_int !maintained);
      ("recompute", Json.of_int !dropped);
      ("entries", Json.List entry_rows);
      ("wall_ms", Json.Num ((Unix.gettimeofday () -. t0) *. 1000.0)) ]

(* ------------------------------------------------------------------ *)
(* Durability: snapshot + WAL                                          *)
(* ------------------------------------------------------------------ *)

(* WAL op payloads are exactly the protocol's request objects, so
   replay reuses [Protocol.parse_request] and the handlers above. *)

let op_json_of_load uri (source : Protocol.doc_source) =
  match source with
  | Protocol.From_xml xml ->
    Json.Obj
      [ ("op", Json.Str "load-doc"); ("uri", Json.Str uri);
        ("xml", Json.Str xml) ]
  | Protocol.From_path path ->
    (* never logged: materialized to [From_xml] before the append so
       replay does not depend on the file still being there *)
    Json.Obj
      [ ("op", Json.Str "load-doc"); ("uri", Json.Str uri);
        ("path", Json.Str path) ]
  | Protocol.From_generator { kind; size; seed } ->
    (* generators are deterministic in (kind, size, seed): logging the
       parameters replays the identical tree without materializing it *)
    Json.Obj
      ([ ("op", Json.Str "load-doc"); ("uri", Json.Str uri);
         ("generate", Json.Str kind) ]
      @ (match size with Some s -> [ ("size", Json.Num s) ] | None -> [])
      @ [ ("seed", Json.of_int seed) ])

let op_json_of_unload uri =
  Json.Obj [ ("op", Json.Str "unload-doc"); ("uri", Json.Str uri) ]

let op_json_of_patch uri (op : Xdm.Patch.op) =
  let base action fields =
    Json.Obj
      ([ ("op", Json.Str "patch-doc"); ("uri", Json.Str uri);
         ("action", Json.Str action);
         ("path", Json.Str (Xdm.Patch.path_of_op op)) ]
      @ fields)
  in
  match op with
  | Xdm.Patch.Insert { position; xml; _ } ->
    base "insert"
      [ ("position", Json.Str (Xdm.Patch.string_of_position position));
        ("xml", Json.Str xml) ]
  | Xdm.Patch.Delete _ -> base "delete" []
  | Xdm.Patch.Replace { xml; _ } -> base "replace" [ ("xml", Json.Str xml) ]
  | Xdm.Patch.Set_text { text; _ } ->
    base "set-text" [ ("text", Json.Str text) ]

(* Append-before-apply: [f] only runs once the record is on disk;
   if [f] raises, the record is rewound so replay never applies a
   failed op. Transparent when no state dir is configured. *)
let logged t op f =
  match t.durable with
  | None -> f ()
  | Some d -> Durability.with_op d op f

(* The snapshot's view of the server, evaluated under the durability op
   lock so no document op is in flight: documents (in construction
   order — node ids grow monotonically, so sorting roots by id replays
   registrations in a compatible order), every per-URI generation
   stamp, and the live result-cache rows (with IVM revival info where
   recorded). *)
let snapshot_state t () =
  let reg = Store.registry t.store in
  let docs =
    Store.uris t.store
    |> List.filter_map (fun u ->
           Option.map
             (fun d -> (d.Xdm.Node.id, u, Xdm.Serializer.to_string d))
             (Xdm.Doc_registry.find ~registry:reg u))
    |> List.sort (fun (a, _, _) (b, _, _) -> compare a b)
  in
  let doc_rows =
    List.map
      (fun (_, u, x) ->
        Json.Obj
          [ ("t", Json.Str "doc"); ("u", Json.Str u); ("x", Json.Str x) ])
      docs
  in
  let bindings = Result_cache.bindings t.results in
  Mutex.lock t.persist_lock;
  (* drop persist rows whose cache entry was evicted (bounds the table) *)
  let live = Hashtbl.create 16 in
  List.iter (fun (k, _) -> Hashtbl.replace live k ()) bindings;
  Hashtbl.iter
    (fun k _ -> if not (Hashtbl.mem live k) then Hashtbl.remove t.persist k)
    (Hashtbl.copy t.persist);
  let persist_of k = Hashtbl.find_opt t.persist k in
  let cache_rows =
    List.rev_map
      (fun ((key : Result_cache.key), (e : Result_cache.entry)) ->
        let ivm_field =
          match persist_of key with
          | None -> []
          | Some p ->
            [ ( "ivm",
                Json.Obj
                  [ ("source", Json.Str p.p_source);
                    ("stratified", Json.Bool p.p_stratified);
                    ("max_iterations", Json.of_int p.p_max_iterations);
                    ("items",
                     Json.List
                       (List.map
                          (fun (u, r) ->
                            Json.Obj
                              [ ("u", Json.Str u); ("r", Json.of_int r) ])
                          p.p_items)) ] ) ]
        in
        Json.Obj
          ([ ("t", Json.Str "cache");
             ("hash", Json.Str key.Result_cache.hash);
             ("config", Json.Str key.Result_cache.config);
             ("serialized", Json.Str e.Result_cache.serialized);
             ("used_delta", Json.of_bool_opt e.Result_cache.used_delta);
             ("nodes_fed", Json.of_int e.Result_cache.nodes_fed);
             ("depth", Json.of_int e.Result_cache.depth);
             ("wall_ms", Json.Num e.Result_cache.wall_ms);
             ("footprint",
              Json.List
                (List.map
                   (fun (u, g) ->
                     Json.Obj [ ("u", Json.Str u); ("g", Json.of_int g) ])
                   e.Result_cache.footprint));
             ("semiring",
              (match e.Result_cache.semiring with
              | Some s -> Json.Str s
              | None -> Json.Null));
             ("annotations",
              Json.List
                (List.map
                   (fun (x, a) ->
                     Json.Obj [ ("x", Json.Str x); ("a", Json.Str a) ])
                   e.Result_cache.annotations)) ]
          @ ivm_field))
      bindings
  in
  Mutex.unlock t.persist_lock;
  let meta =
    [ ("generation", Json.of_int (Store.generation t.store));
      ("gens",
       Json.List
         (List.map
            (fun (u, g) ->
              Json.Obj [ ("u", Json.Str u); ("g", Json.of_int g) ])
            (Xdm.Doc_registry.generations ~registry:reg ()))) ]
  in
  (meta, doc_rows @ List.rev cache_rows)

let force_snapshot t =
  match t.durable with
  | None -> Error "snapshot requires a server started with --state-dir"
  | Some d -> Durability.snapshot d ~state:(snapshot_state t)

let maybe_snapshot t =
  match t.durable with
  | Some d when Durability.due d -> ignore (force_snapshot t)
  | _ -> ()

(* ------------------------------------------------------------------ *)
(* Recovery                                                            *)
(* ------------------------------------------------------------------ *)

(* Invert the preorder rank: nodes of [root] as an array indexed by
   rank (the walk order of [rank_table]). *)
let nodes_by_rank root =
  let acc = ref [] in
  let rec walk n =
    acc := n :: !acc;
    List.iter walk (Xdm.Node.attributes n);
    List.iter walk (Xdm.Node.children n)
  in
  walk root;
  Array.of_list (List.rev !acc)

(* Best-effort revival of one maintained IVM entry: re-prepare the
   source, rebuild the item sequence from (uri, rank) identities
   against the reloaded trees, and re-adopt. Any mismatch (document
   gone, rank out of range, program no longer eligible) silently
   degrades to "cached result without maintenance" — correct, just
   slower on the next patch. *)
let readopt_ivm t ~key ~footprint iv =
  match
    ( Json.str_opt (Json.member "source" iv),
      Json.bool_opt (Json.member "stratified" iv),
      Json.int_opt (Json.member "max_iterations" iv) )
  with
  | (Some source, Some stratified, Some max_iterations) -> (
    let items =
      match Json.member "items" iv with
      | Json.List rows ->
        List.map
          (fun r ->
            match
              ( Json.str_opt (Json.member "u" r),
                Json.int_opt (Json.member "r" r) )
            with
            | (Some u, Some rank) -> (u, rank)
            | _ -> raise Exit)
          rows
      | _ -> raise Exit
    in
    let reg = Store.registry t.store in
    let by_root : (string, Xdm.Node.t array) Hashtbl.t = Hashtbl.create 4 in
    let result =
      List.map
        (fun (u, rank) ->
          let arr =
            match Hashtbl.find_opt by_root u with
            | Some arr -> arr
            | None -> (
              match Xdm.Doc_registry.find ~registry:reg u with
              | None -> raise Exit
              | Some root ->
                let arr = nodes_by_rank root in
                Hashtbl.replace by_root u arr;
                arr)
          in
          if rank >= 0 && rank < Array.length arr then Xdm.Item.N arr.(rank)
          else raise Exit)
        items
    in
    let (prepared, _) = get_prepared t ~stratified ~max_iterations source in
    Ivm.adopt t.ivm ~hash:key.Result_cache.hash
      ~config:key.Result_cache.config ~program:prepared.Prepared.program
      ~stratified ~max_iterations ~result ~footprint;
    Mutex.lock t.persist_lock;
    Hashtbl.replace t.persist key
      { p_source = source; p_stratified = stratified;
        p_max_iterations = max_iterations; p_items = items };
    Mutex.unlock t.persist_lock;
    true)
  | _ -> false

let restore_cache_row t row =
  match
    ( Json.str_opt (Json.member "hash" row),
      Json.str_opt (Json.member "config" row),
      Json.str_opt (Json.member "serialized" row) )
  with
  | (Some hash, Some config, Some serialized) ->
    let pairs name fa fb =
      match Json.member name row with
      | Json.List l ->
        List.filter_map
          (fun r ->
            match (fa (Json.member "u" r), fb (Json.member "g" r)) with
            | (Some a, Some b) -> Some (a, b)
            | _ -> None)
          l
      | _ -> []
    in
    let annotations =
      match Json.member "annotations" row with
      | Json.List l ->
        List.filter_map
          (fun r ->
            match
              ( Json.str_opt (Json.member "x" r),
                Json.str_opt (Json.member "a" r) )
            with
            | (Some x, Some a) -> Some (x, a)
            | _ -> None)
          l
      | _ -> []
    in
    let footprint = pairs "footprint" Json.str_opt Json.int_opt in
    let key = { Result_cache.hash; config } in
    Result_cache.put t.results key
      { Result_cache.serialized;
        used_delta = Json.bool_opt (Json.member "used_delta" row);
        nodes_fed =
          Option.value ~default:0 (Json.int_opt (Json.member "nodes_fed" row));
        depth =
          Option.value ~default:0 (Json.int_opt (Json.member "depth" row));
        wall_ms =
          Option.value ~default:0.0
            (Json.num_opt (Json.member "wall_ms" row));
        footprint;
        semiring = Json.str_opt (Json.member "semiring" row);
        annotations };
    let revived =
      match Json.member "ivm" row with
      | Json.Obj _ as iv -> (
        try readopt_ivm t ~key ~footprint iv with _ -> false)
      | _ -> false
    in
    Some revived
  | _ -> None

(* Replay one WAL tail op through the live handlers (durability is
   still unset, so nothing is re-logged). A replayed op that fails
   failed identically before the crash — log-rewind keeps failed ops
   out of the WAL, so this is purely defensive. *)
let apply_recovered_op t op =
  match Protocol.parse_request op with
  | Ok (Protocol.Load_doc { uri; source }) -> (
    try
      ignore (handle_load_doc t ~id:Json.Null uri source);
      true
    with _ -> false)
  | Ok (Protocol.Unload_doc { uri }) ->
    Store.unload t.store uri;
    Ivm.on_unload t.ivm ~uri;
    true
  | Ok (Protocol.Patch_doc { uri; op }) -> (
    try
      ignore (handle_patch_doc t ~id:Json.Null uri op);
      true
    with _ -> false)
  | Ok _ | Error _ -> false

let recover_state t ~dir ~threshold =
  let r = Durability.recover ~dir in
  let docs = ref 0 in
  List.iter
    (fun (uri, xml) ->
      try
        Store.load_xml t.store ~uri xml;
        incr docs
      with Store.Error _ -> ())
    r.Durability.rec_docs;
  Xdm.Doc_registry.restore
    ~registry:(Store.registry t.store)
    ~gens:r.Durability.rec_gens ~generation:r.Durability.rec_generation ();
  let cache = ref 0 and ivm = ref 0 in
  List.iter
    (fun row ->
      match restore_cache_row t row with
      | Some revived ->
        incr cache;
        if revived then incr ivm
      | None -> ())
    r.Durability.rec_cache;
  let tail = ref 0 in
  List.iter
    (fun (_, op) -> if apply_recovered_op t op then incr tail)
    r.Durability.rec_tail;
  t.recovered_stats <-
    [ ("docs", Json.of_int !docs);
      ("tail_ops", Json.of_int !tail);
      ("cache_entries", Json.of_int !cache);
      ("ivm_entries", Json.of_int !ivm);
      ("truncated_bytes", Json.of_int r.Durability.rec_truncated_bytes);
      ("diagnostic",
       (match r.Durability.rec_diagnostic with
       | Some d -> Json.Str d
       | None -> Json.Null)) ];
  t.durable <- Some (Durability.start ~dir ~threshold r)

let create ?(config = default_config) ?store () =
  let t =
    match store with
    | Some store -> create_raw ~config ~store ()
    | None -> create_raw ~config ()
  in
  (match config.state_dir with
  | None -> ()
  | Some dir ->
    recover_state t ~dir ~threshold:config.snapshot_threshold);
  t

let cache_stats_json ~hits ~misses ~size ~capacity =
  Json.Obj
    [ ("hits", Json.of_int hits); ("misses", Json.of_int misses);
      ("size", Json.of_int size); ("capacity", Json.of_int capacity) ]

(* Process-wide set-kernel totals (merge/bitmap/name-index work done by
   every fixpoint round served so far), as label/value rows shared by
   the JSON and Prometheus expositions. *)
let kernel_counter_rows () =
  let c = Xdm.Counters.snapshot () in
  [ ("merges", c.Xdm.Counters.merges);
    ("merged_items", c.Xdm.Counters.merged_items);
    ("fallback_sorts", c.Xdm.Counters.fallback_sorts);
    ("bitmap_tests", c.Xdm.Counters.bitmap_tests);
    ("bitmap_hits", c.Xdm.Counters.bitmap_hits);
    ("index_steps", c.Xdm.Counters.index_steps);
    ("index_nodes", c.Xdm.Counters.index_nodes);
    ("col_batches", c.Xdm.Counters.col_batches);
    ("col_rows", c.Xdm.Counters.col_rows);
    ("col_boxed_rows", c.Xdm.Counters.col_boxed_rows) ]

(* Prometheus text exposition of the same counters the JSON stats
   report: cache hit/miss/size, registry generation, uptime, and the
   per-query execution aggregates from [Metrics]. Emitted by workers
   (scraped directly or relayed by the coordinator). *)
let prometheus_stats t =
  let buf = Buffer.create 1024 in
  let gauge name ?(labels = "") value =
    Buffer.add_string buf (Printf.sprintf "# TYPE %s gauge\n" name);
    Buffer.add_string buf
      (Printf.sprintf "%s%s %s\n" name
         (if labels = "" then "" else "{" ^ labels ^ "}")
         value)
  in
  let counter_family name samples =
    Buffer.add_string buf (Printf.sprintf "# TYPE %s counter\n" name);
    List.iter
      (fun (labels, value) ->
        Buffer.add_string buf
          (Printf.sprintf "%s{%s} %d\n" name labels value))
      samples
  in
  gauge "fixq_uptime_seconds"
    (Printf.sprintf "%.3f" (Unix.gettimeofday () -. t.started_at));
  gauge "fixq_store_generation" (string_of_int (Store.generation t.store));
  gauge "fixq_documents" (string_of_int (List.length (Store.uris t.store)));
  (match t.durable with
  | None -> ()
  | Some d ->
    let counter name value =
      Buffer.add_string buf
        (Printf.sprintf "# TYPE %s counter\n%s %d\n" name name value)
    in
    counter "fixq_wal_appends_total" (Durability.appends d);
    counter "fixq_snapshots_total" (Durability.snapshots d);
    gauge "fixq_wal_bytes" (string_of_int (Durability.wal_bytes d));
    gauge "fixq_wal_last_seq" (string_of_int (Durability.last_seq d));
    let stat name =
      match List.assoc_opt name t.recovered_stats with
      | Some (Json.Num n) -> int_of_float n
      | _ -> 0
    in
    gauge "fixq_recovery_replayed_ops" (string_of_int (stat "tail_ops"));
    gauge "fixq_recovery_truncated_bytes"
      (string_of_int (stat "truncated_bytes")));
  counter_family "fixq_cache_hits_total"
    [ ("cache=\"prepared\"", Lru.hits t.prepared);
      ("cache=\"results\"", Result_cache.hits t.results) ];
  counter_family "fixq_cache_misses_total"
    [ ("cache=\"prepared\"", Lru.misses t.prepared);
      ("cache=\"results\"", Result_cache.misses t.results) ];
  Buffer.add_string buf "# TYPE fixq_cache_entries gauge\n";
  List.iter
    (fun (label, v) ->
      Buffer.add_string buf
        (Printf.sprintf "fixq_cache_entries{cache=%S} %d\n" label v))
    [ ("prepared", Lru.length t.prepared);
      ("results", Result_cache.length t.results) ];
  counter_family "fixq_kernel_ops_total"
    (List.map
       (fun (k, v) -> (Printf.sprintf "kernel=%S" k, v))
       (kernel_counter_rows ()));
  gauge "fixq_inflight_requests"
    (string_of_int (Governor.inflight t.governor));
  counter_family "fixq_degraded_requests_total"
    (List.map
       (fun (k, v) -> (Printf.sprintf "reason=%S" k, v))
       (Governor.counter_rows t.governor));
  (match analysis_counter_rows t with
  | [] -> ()
  | rows ->
    let is_semiring k =
      String.length k > 9 && String.sub k 0 9 = "semiring:"
    in
    counter_family "fixq_prepared_divergence_total"
      (List.filter_map
         (fun (k, v) ->
           if k = "refused" || k = "refused-cost" || is_semiring k then None
           else Some (Printf.sprintf "class=%S" k, v))
         rows);
    (match List.filter (fun (k, _) -> is_semiring k) rows with
    | [] -> ()
    | semi ->
      counter_family "fixq_semiring_queries_total"
        (List.map
           (fun (k, v) ->
             ( Printf.sprintf "kind=%S"
                 (String.sub k 9 (String.length k - 9)),
               v ))
           semi));
    (match
       (List.assoc_opt "refused" rows, List.assoc_opt "refused-cost" rows)
     with
    | (None, None) -> ()
    | (diverge, cost) ->
      counter_family "fixq_refused_queries_total"
        ((match diverge with
         | Some n -> [ ("reason=\"may-diverge\"", n) ]
         | None -> [])
        @
        match cost with
        | Some n -> [ ("reason=\"cost\"", n) ]
        | None -> [])));
  gauge "fixq_ivm_entries" (string_of_int (Ivm.size t.ivm));
  (match Ivm.counters t.ivm with
  | [] -> ()
  | rows ->
    counter_family "fixq_ivm_maintained_total"
      (List.map (fun (h, (m, _, _)) -> (Printf.sprintf "query=%S" h, m)) rows);
    counter_family "fixq_ivm_fallback_recompute_total"
      (List.map (fun (h, (_, f, _)) -> (Printf.sprintf "query=%S" h, f)) rows);
    counter_family "fixq_ivm_delta_nodes_total"
      (List.map (fun (h, (_, _, d)) -> (Printf.sprintf "query=%S" h, d)) rows));
  Buffer.add_string buf (Metrics.to_prometheus ~prefix:"fixq" t.metrics);
  Buffer.contents buf

let durability_json t =
  match t.durable with
  | None -> Json.Null
  | Some d ->
    Json.Obj
      [ ("state_dir", Json.Str (Option.value ~default:"" t.config.state_dir));
        ("last_seq", Json.of_int (Durability.last_seq d));
        ("wal_bytes", Json.of_int (Durability.wal_bytes d));
        ("wal_appends", Json.of_int (Durability.appends d));
        ("snapshots", Json.of_int (Durability.snapshots d));
        ("ops_since_snapshot",
         Json.of_int (Durability.ops_since_snapshot d));
        ("recovered", Json.Obj t.recovered_stats) ]

let handle_stats t ~id =
  Protocol.ok_response ~id
    [ ("stats",
       Json.Obj
         [ ("generation", Json.of_int (Store.generation t.store));
           ("durability", durability_json t);
           ("documents",
            Json.List
              (List.map (fun u -> Json.Str u) (Store.uris t.store)));
           ("prepared",
            cache_stats_json ~hits:(Lru.hits t.prepared)
              ~misses:(Lru.misses t.prepared) ~size:(Lru.length t.prepared)
              ~capacity:(Lru.capacity t.prepared));
           ("results",
            cache_stats_json ~hits:(Result_cache.hits t.results)
              ~misses:(Result_cache.misses t.results)
              ~size:(Result_cache.length t.results)
              ~capacity:t.config.result_capacity);
           ("queries", Metrics.to_json t.metrics);
           ("kernels",
            Json.Obj
              (List.map
                 (fun (k, v) -> (k, Json.of_int v))
                 (kernel_counter_rows ())));
           ("governor",
            Json.Obj
              (("inflight", Json.of_int (Governor.inflight t.governor))
              :: List.map
                   (fun (k, v) -> (k, Json.of_int v))
                   (Governor.counter_rows t.governor)));
           ("analysis",
            Json.Obj
              (List.map
                 (fun (k, v) -> (k, Json.of_int v))
                 (analysis_counter_rows t)));
           ("ivm",
            (let m, f, d = Ivm.totals t.ivm in
             Json.Obj
               [ ("entries", Json.of_int (Ivm.size t.ivm));
                 ("maintained_total", Json.of_int m);
                 ("fallback_recompute_total", Json.of_int f);
                 ("delta_nodes_total", Json.of_int d);
                 ("queries",
                  Json.Obj
                    (List.map
                       (fun (hash, (m, f, d)) ->
                         ( hash,
                           Json.Obj
                             [ ("maintained", Json.of_int m);
                               ("fallback_recompute", Json.of_int f);
                               ("delta_nodes", Json.of_int d) ] ))
                       (Ivm.counters t.ivm))) ]));
           ("uptime_ms",
            Json.Num ((Unix.gettimeofday () -. t.started_at) *. 1000.0)) ]) ]

(* Chaos faults injected at the request boundary become the same
   degradations the governor produces naturally. *)
exception Chaos_fault of string

let chaos_handle_point () =
  match Fixq_chaos.check "server.handle" with
  | None -> ()
  | Some Fixq_chaos.Kill -> Fixq_chaos.kill_self ()
  | Some (Fixq_chaos.Delay s) -> Fixq_chaos.sleep s
  | Some Fixq_chaos.Oom -> raise Out_of_memory
  | Some Fixq_chaos.Drop -> raise (Chaos_fault "injected fault: drop")
  | Some Fixq_chaos.Truncate -> raise (Chaos_fault "injected fault: truncate")

let handle t request =
  let id = Protocol.request_id request in
  match Protocol.parse_request request with
  | Error msg -> (Protocol.error_response ~id msg, false)
  | Ok req -> (
    (* Only query work is subject to admission control: ping, stats and
       document ops must keep answering on a loaded server. *)
    let admitted =
      match req with
      | Protocol.Run _ | Protocol.Prepare _ | Protocol.Check _
      | Protocol.Plan _ | Protocol.Explain _ ->
        true
      | _ -> false
    in
    try
      if admitted then Governor.admit t.governor;
      Fun.protect
        ~finally:(fun () -> if admitted then Governor.release t.governor)
        (fun () ->
          chaos_handle_point ();
          match req with
          | Protocol.Run r -> (handle_run t ~id r, false)
          | Protocol.Prepare { query; stratified } ->
            (handle_prepare t ~id query stratified, false)
          | Protocol.Check { query; stratified } ->
            (handle_check t ~id query stratified, false)
          | Protocol.Plan { query; stratified } ->
            (handle_plan t ~id query stratified, false)
          | Protocol.Explain { query; stratified } ->
            (handle_explain t ~id query stratified, false)
          | Protocol.Load_doc { uri; source } ->
            (* materialize file sources before logging, so the WAL
               replays without the file *)
            let source =
              match source with
              | Protocol.From_path path when t.durable <> None ->
                Protocol.From_xml (Store.read_file path)
              | s -> s
            in
            let resp =
              logged t (op_json_of_load uri source) (fun () ->
                  handle_load_doc t ~id uri source)
            in
            maybe_snapshot t;
            (resp, false)
          | Protocol.Unload_doc { uri } ->
            let resp =
              logged t (op_json_of_unload uri) (fun () ->
                  Store.unload t.store uri;
                  Ivm.on_unload t.ivm ~uri;
                  Protocol.ok_response ~id
                    [ ("uri", Json.Str uri);
                      ("generation", Json.of_int (Store.generation t.store))
                    ])
            in
            maybe_snapshot t;
            (resp, false)
          | Protocol.Patch_doc { uri; op } ->
            let resp =
              logged t (op_json_of_patch uri op) (fun () ->
                  handle_patch_doc t ~id uri op)
            in
            maybe_snapshot t;
            (resp, false)
          | Protocol.Snapshot -> (
            match force_snapshot t with
            | Ok () ->
              let d = Option.get t.durable in
              ( Protocol.ok_response ~id
                  [ ("snapshot", Json.Bool true);
                    ("last_seq", Json.of_int (Durability.last_seq d));
                    ("wal_bytes", Json.of_int (Durability.wal_bytes d)) ],
                false )
            | Error msg -> (Protocol.error_response ~id msg, false))
          | Protocol.Dump_doc { uri } -> (
            match
              Xdm.Doc_registry.find ~registry:(Store.registry t.store) uri
            with
            | Some root ->
              ( Protocol.ok_response ~id
                  [ ("uri", Json.Str uri);
                    ("doc_generation",
                     Json.of_int (Store.doc_generation t.store uri));
                    ("xml", Json.Str (Xdm.Serializer.to_string root)) ],
                false )
            | None ->
              ( Protocol.error_response ~id
                  (Printf.sprintf "no document loaded under %S" uri),
                false ))
          | Protocol.Add_worker | Protocol.Remove_worker _ | Protocol.Drain _
            ->
            ( Protocol.error_response ~id
                "cluster-only op (send it to a fixq cluster coordinator)",
              false )
          | Protocol.Stats Protocol.Stats_json -> (handle_stats t ~id, false)
          | Protocol.Stats Protocol.Stats_prometheus ->
            ( Protocol.ok_response ~id
                [ ("prometheus", Json.Str (prometheus_stats t)) ],
              false )
          | Protocol.Ping ->
            (Protocol.ok_response ~id [ ("pong", Json.Bool true) ], false)
          | Protocol.Shutdown ->
            (* flush the WAL and install a final snapshot so a clean
               restart replays nothing *)
            (match t.durable with
            | Some d ->
              ignore (force_snapshot t);
              t.durable <- None;
              Durability.close d
            | None -> ());
            (Protocol.ok_response ~id [ ("shutdown", Json.Bool true) ], true))
    with
    | Prepared.Rejected { message; diagnostics } ->
      ( Protocol.error_response ~id
          ~extra:
            [ ("diagnostics", Json.List (List.map diag_json diagnostics)) ]
          message,
        false )
    | Store.Error msg | Fixq.Error msg | Chaos_fault msg ->
      (Protocol.error_response ~id msg, false)
    | Fixq_durable.Wal.Append_failed msg ->
      (* the op was refused before any mutation: store and log agree *)
      (Protocol.error_response ~id ("durability: " ^ msg), false)
    | Governor.Shed { retry_after_ms; reason } ->
      ( Protocol.error_response ~id
          ~extra:[ ("retry_after_ms", Json.of_int retry_after_ms) ]
          ("overloaded: " ^ reason),
        false )
    | Out_of_memory ->
      (* The run was aborted between fixpoint rounds (memory budget) or
         by a failed allocation. Nothing was cached: both caches are
         only written after a fully successful computation, so the
         failed request leaves no poisoned entry behind. *)
      Governor.note_oom t.governor;
      ( Protocol.error_response ~id
          "out of memory: request aborted (memory budget exceeded)",
        false )
    | Stack_overflow ->
      Governor.note_stack t.governor;
      ( Protocol.error_response ~id
          "stack overflow: request aborted (recursion too deep)",
        false )
    | exn ->
      (* A request must never take the server down. *)
      (Protocol.error_response ~id
         ("internal error: " ^ Printexc.to_string exn),
       false))

let handle_line t line =
  match Json.parse line with
  | request ->
    let (response, shutdown) = handle t request in
    (Json.to_string response, shutdown)
  | exception Json.Parse_error msg ->
    (Json.to_string (Protocol.error_response ~id:Json.Null msg), false)

(* ------------------------------------------------------------------ *)
(* Worker pool                                                         *)
(* ------------------------------------------------------------------ *)

module Pool = struct
  type pool = {
    jobs : (unit -> unit) Queue.t;
    lock : Mutex.t;
    nonempty : Condition.t;
    idle : Condition.t;
    mutable stop : bool;
    mutable active : int;
    mutable threads : Thread.t list;
  }

  let rec worker p =
    Mutex.lock p.lock;
    while Queue.is_empty p.jobs && not p.stop do
      Condition.wait p.nonempty p.lock
    done;
    if Queue.is_empty p.jobs then Mutex.unlock p.lock (* stopping *)
    else begin
      let job = Queue.pop p.jobs in
      p.active <- p.active + 1;
      Mutex.unlock p.lock;
      (try job () with _ -> ());
      Mutex.lock p.lock;
      p.active <- p.active - 1;
      if Queue.is_empty p.jobs && p.active = 0 then Condition.broadcast p.idle;
      Mutex.unlock p.lock;
      worker p
    end

  let create n =
    let p =
      { jobs = Queue.create (); lock = Mutex.create ();
        nonempty = Condition.create (); idle = Condition.create ();
        stop = false; active = 0; threads = [] }
    in
    p.threads <- List.init (max 1 n) (fun _ -> Thread.create worker p);
    p

  let submit p job =
    Mutex.lock p.lock;
    Queue.push job p.jobs;
    Condition.signal p.nonempty;
    Mutex.unlock p.lock

  (* Block until every submitted job has finished. *)
  let drain p =
    Mutex.lock p.lock;
    while not (Queue.is_empty p.jobs && p.active = 0) do
      Condition.wait p.idle p.lock
    done;
    Mutex.unlock p.lock

  let shutdown p =
    drain p;
    Mutex.lock p.lock;
    p.stop <- true;
    Condition.broadcast p.nonempty;
    Mutex.unlock p.lock;
    List.iter Thread.join p.threads
end

(* ------------------------------------------------------------------ *)
(* Transports                                                          *)
(* ------------------------------------------------------------------ *)

let is_shutdown_line line =
  match Json.parse line with
  | j -> Json.str_opt (Json.member "op" j) = Some "shutdown"
  | exception Json.Parse_error _ -> false

(* The transports are generic over the request handler so that the
   single-process server and the cluster coordinator (whose handler
   fans out to worker processes) share the exact same pipe/socket
   plumbing. [handle] maps one request line to (response line, stop). *)

(* A stream that dies mid-frame or ships an oversized frame gets a
   well-formed error response (where the transport still accepts one)
   and otherwise ends the connection cleanly — never a bare
   [End_of_file] out of the serve loop, and never a truncated frame
   handed to the handler as if it were complete. *)
let frame_error_line kind =
  Json.to_string
    (Protocol.error_response ~id:Json.Null
       (match kind with
       | `Truncated -> "protocol error: stream ended mid-frame"
       | `Oversized ->
         Printf.sprintf "protocol error: frame larger than %d bytes"
           Frame.default_max_len))

let serve_pipe_with ~handle ?(workers = 1) ic oc =
  let out_lock = Mutex.create () in
  let write_line s =
    Mutex.lock out_lock;
    output_string oc s;
    output_char oc '\n';
    flush oc;
    Mutex.unlock out_lock
  in
  if workers <= 1 then
    let rec loop () =
      match Frame.read ic with
      | `Eof -> ()
      | `Truncated _ -> write_line (frame_error_line `Truncated)
      | `Oversized ->
        write_line (frame_error_line `Oversized);
        loop ()
      | `Line line when String.trim line = "" -> loop ()
      | `Line line ->
        let (response, shutdown) = handle line in
        write_line response;
        if not shutdown then loop ()
    in
    loop ()
  else begin
    let pool = Pool.create workers in
    let rec loop () =
      match Frame.read ic with
      | `Eof -> ()
      | `Truncated _ -> write_line (frame_error_line `Truncated)
      | `Oversized ->
        write_line (frame_error_line `Oversized);
        loop ()
      | `Line line when String.trim line = "" -> loop ()
      | `Line line ->
        if is_shutdown_line line then begin
          (* answer shutdown only after in-flight requests completed *)
          Pool.drain pool;
          let (response, _) = handle line in
          write_line response
        end
        else begin
          Pool.submit pool (fun () ->
              let (response, _) = handle line in
              write_line response);
          loop ()
        end
    in
    loop ();
    Pool.shutdown pool
  end

exception Socket_in_use of string

(* Is there a live server behind this socket path? A stale path left by
   a crashed process refuses the connection; a healthy one accepts. *)
let socket_alive path =
  let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close sock with Unix.Unix_error _ -> ())
    (fun () ->
      match Unix.connect sock (Unix.ADDR_UNIX path) with
      | () -> true
      | exception Unix.Unix_error _ -> false)

let serve_socket_with ~handle ?(workers = 1) ~path () =
  (* a client hanging up mid-response must not kill the process *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  if Sys.file_exists path then begin
    (* refuse to clobber another live server's socket; only unlink a
       stale leftover that nothing answers behind *)
    if socket_alive path then raise (Socket_in_use path);
    Unix.unlink path
  end;
  let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind sock (Unix.ADDR_UNIX path);
  Unix.listen sock 64;
  let stopping = ref false in
  let pool = Pool.create workers in
  let handle_conn fd =
    let ic = Unix.in_channel_of_descr fd in
    let oc = Unix.out_channel_of_descr fd in
    let write_line response =
      try
        output_string oc response;
        output_char oc '\n';
        flush oc
      with Sys_error _ -> ()
    in
    let rec loop () =
      match Frame.read ic with
      | exception Sys_error _ -> ()
      | `Eof -> ()
      | `Truncated _ -> write_line (frame_error_line `Truncated)
      | `Oversized ->
        write_line (frame_error_line `Oversized);
        loop ()
      | `Line line when String.trim line = "" -> loop ()
      | `Line line ->
        let (response, shutdown) = handle line in
        write_line response;
        if shutdown then begin
          stopping := true;
          (* wake the accept loop *)
          (try Unix.shutdown sock Unix.SHUTDOWN_RECEIVE with Unix.Unix_error _ -> ());
          (try Unix.close sock with Unix.Unix_error _ -> ())
        end
        else loop ()
    in
    Fun.protect
      ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
      loop
  in
  (try
     while not !stopping do
       let (fd, _) = Unix.accept sock in
       Pool.submit pool (fun () -> handle_conn fd)
     done
   with Unix.Unix_error _ | Sys_error _ -> ());
  Pool.shutdown pool;
  (try Unix.close sock with Unix.Unix_error _ -> ());
  if Sys.file_exists path then (try Unix.unlink path with Sys_error _ -> ())

let serve_pipe t ic oc =
  serve_pipe_with ~handle:(handle_line t) ~workers:t.config.workers ic oc

let serve_socket t ~path =
  serve_socket_with ~handle:(handle_line t) ~workers:t.config.workers ~path ()
