module Xdm = Fixq_xdm
module Diag = Fixq_analysis.Diag
module Analyze = Fixq_analysis.Analyze
module Ivm = Fixq_ivm.Ivm
module Semiring = Fixq_semiring.Semiring

type config = {
  workers : int;
  prepared_capacity : int;
  result_capacity : int;
  max_iterations : int;
  timeout_ms : float option;
  stratified : bool;
  governor : Governor.config;
}

let default_config =
  { workers = 1; prepared_capacity = 64; result_capacity = 256;
    max_iterations = 100_000; timeout_ms = None; stratified = false;
    governor = Governor.default_config }

type t = {
  config : config;
  store : Store.t;
  prepared : (string, Prepared.t) Lru.t;
  results : Result_cache.t;
  metrics : Metrics.t;
  governor : Governor.t;
  ivm : Ivm.t;
      (** maintained fixpoint entries mirroring eligible result-cache
          entries; consulted by [patch-doc] *)
  started_at : float;
  ranks : (int, (int, int) Hashtbl.t) Hashtbl.t;
      (** per-document preorder ranks, keyed by root node id — node ids
          are process-global and never reused, so entries never go
          stale (see {!keyed_items}) *)
  ranks_lock : Mutex.t;
  analysis_counters : (string, int) Hashtbl.t;
      (** divergence class of each freshly prepared query, plus
          refusals — exposed in stats JSON and Prometheus *)
  analysis_lock : Mutex.t;
}

let create ?(config = default_config) ?(store = Store.create ()) () =
  { config; store;
    prepared = Lru.create ~capacity:config.prepared_capacity ();
    results = Result_cache.create ~capacity:config.result_capacity ();
    metrics = Metrics.create (); governor = Governor.create config.governor;
    ivm =
      Ivm.create ~capacity:config.result_capacity
        ~registry:(Store.registry store) ();
    started_at = Unix.gettimeofday ();
    ranks = Hashtbl.create 8; ranks_lock = Mutex.create ();
    analysis_counters = Hashtbl.create 8; analysis_lock = Mutex.create () }

let bump_analysis t key =
  Mutex.lock t.analysis_lock;
  Hashtbl.replace t.analysis_counters key
    (1 + Option.value ~default:0 (Hashtbl.find_opt t.analysis_counters key));
  Mutex.unlock t.analysis_lock

let analysis_counter_rows t =
  Mutex.lock t.analysis_lock;
  let rows = Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.analysis_counters [] in
  Mutex.unlock t.analysis_lock;
  List.sort compare rows

let store t = t.store
let config t = t.config
let governor t = t.governor

(* ------------------------------------------------------------------ *)
(* Request handling                                                    *)
(* ------------------------------------------------------------------ *)

let mode_string = function
  | Fixq.Naive -> "naive"
  | Fixq.Delta -> "delta"
  | Fixq.Auto -> "auto"

let preview query =
  let flat =
    String.map (function '\n' | '\r' | '\t' -> ' ' | c -> c) query
  in
  if String.length flat <= 60 then flat else String.sub flat 0 57 ^ "..."

(* Prepared-query cache: keyed by source text (and the stratified flag,
   which changes both distributivity checks). *)
let get_prepared t ~stratified ~max_iterations query =
  let key = (if stratified then "s|" else "p|") ^ query in
  match Lru.find t.prepared key with
  | Some p -> (p, "hit")
  | None ->
    let p = Prepared.prepare ~store:t.store ~stratified ~max_iterations query in
    (match Prepared.divergence p with
    | Some d -> bump_analysis t (Analyze.divergence_string d)
    | None -> ());
    (match Prepared.semiring p with
    | Some k -> bump_analysis t ("semiring:" ^ Semiring.kind_to_string k)
    | None -> ());
    Lru.put t.prepared key p;
    (p, "miss")

let diag_json (d : Diag.t) =
  let line, col = match d.Diag.loc with Some lc -> lc | None -> (0, 0) in
  Json.Obj
    [ ("severity", Json.Str (Diag.severity_string d.Diag.severity));
      ("code", Json.Str d.Diag.code);
      ("line", Json.of_int line);
      ("col", Json.of_int col);
      ("context", Json.Str d.Diag.context);
      ("message", Json.Str d.Diag.message) ]

(* ------------------------------------------------------------------ *)
(* Cross-process node identity                                         *)
(* ------------------------------------------------------------------ *)

(* Two workers that loaded the same document (same XML bytes, path, or
   generator+seed) hold structurally identical trees, so a node's
   preorder position within its tree — element, then its attributes,
   then its children, the id order documented in [Node] — names the
   same node in both processes. [keyed_items] tags each result item
   with that portable identity so a cluster coordinator can unite
   result slices by node identity and document order, reproducing
   byte-for-byte what a single process would serialize. *)

let rank_table root =
  let tbl = Hashtbl.create 256 in
  let next = ref 0 in
  let rec walk n =
    Hashtbl.replace tbl n.Xdm.Node.id !next;
    incr next;
    List.iter walk (Xdm.Node.attributes n);
    List.iter walk (Xdm.Node.children n)
  in
  walk root;
  tbl

let rank_of t root =
  Mutex.lock t.ranks_lock;
  let tbl =
    match Hashtbl.find_opt t.ranks root.Xdm.Node.id with
    | Some tbl -> tbl
    | None ->
      let tbl = rank_table root in
      Hashtbl.replace t.ranks root.Xdm.Node.id tbl;
      tbl
  in
  Mutex.unlock t.ranks_lock;
  tbl

let keyed_items t (items : Xdm.Item.seq) =
  Json.List
    (List.map
       (fun item ->
         match (item : Xdm.Item.t) with
         | Xdm.Item.N n -> (
           let root = Xdm.Node.root n in
           let xml = Xdm.Serializer.to_string n in
           match Xdm.Node.uri root with
           | Some u ->
             let rank =
               match Hashtbl.find_opt (rank_of t root) n.Xdm.Node.id with
               | Some r -> r
               | None -> -1 (* detached from its indexed tree; content key *)
             in
             if rank >= 0 then
               Json.Obj
                 [ ("u", Json.Str u); ("r", Json.of_int rank);
                   ("x", Json.Str xml) ]
             else Json.Obj [ ("k", Json.Str ("x:" ^ xml)); ("x", Json.Str xml) ]
           | None ->
             (* constructed node: no portable identity; key by content.
                Distributive bodies never construct (constructors void
                the verdict), so the scatter path never lands here. *)
             Json.Obj [ ("k", Json.Str ("x:" ^ xml)); ("x", Json.Str xml) ])
         | Xdm.Item.A a ->
           let s = Xdm.Serializer.escape_text (Xdm.Atom.to_string a) in
           Json.Obj [ ("k", Json.Str ("a:" ^ s)); ("x", Json.Str s) ])
       items)

let handle_run t ~id
    { Protocol.query; engine; mode; stratified; max_iterations; timeout_ms;
      cache; partition } =
  (* A budget is an explicit request-level iteration or time bound, or
     a server-wide timeout. The config's max_iterations default is a
     backstop, not a budget the caller chose. *)
  let unbudgeted =
    max_iterations = None && timeout_ms = None && t.config.timeout_ms = None
  in
  let stratified = Option.value ~default:t.config.stratified stratified in
  let max_iterations =
    Option.value ~default:t.config.max_iterations max_iterations
  in
  let timeout_ms =
    match timeout_ms with Some _ as x -> x | None -> t.config.timeout_ms
  in
  let generation = Store.generation t.store in
  let (prepared, prepared_status) =
    get_prepared t ~stratified ~max_iterations query
  in
  match (if unbudgeted then Prepared.divergence prepared else None) with
  | Some (Analyze.May_diverge reason) ->
    bump_analysis t "refused";
    (* An unstable [accumulate by] semiring gets its own code so
       clients can distinguish "your aggregate cannot stabilize" from
       the structural may-diverge verdict. *)
    let code =
      match Prepared.semiring prepared with
      | Some k when Semiring.stability k = Semiring.Unstable -> "FQ043"
      | _ -> "FQ040"
    in
    Protocol.error_response ~id
      ~extra:
        [ ("code", Json.Str code);
          ("divergence", Json.Str "may-diverge");
          ("reason", Json.Str reason) ]
      (Printf.sprintf
         "query may diverge (%s) and carries no budget: set \
          max_iterations or timeout_ms"
         reason)
  | _ ->
  let run_mode =
    match mode with
    | `Pinned -> Prepared.mode_for prepared engine
    | `Naive -> Fixq.Naive
    | `Delta -> Fixq.Delta
  in
  let engine_str = match engine with `Interp -> "interp" | `Algebra -> "algebra" in
  let rkey =
    { Result_cache.hash = prepared.Prepared.hash;
      config =
        Printf.sprintf "%s:%s:%b" engine_str (mode_string run_mode) stratified }
  in
  let respond ~result_status ?(extra = []) (entry : Result_cache.entry) =
    let annotated =
      match entry.Result_cache.semiring with
      | None -> []
      | Some kind ->
        [ ("semiring", Json.Str kind);
          ("annotations",
           Json.List
             (List.map
                (fun (x, a) ->
                  Json.Obj [ ("x", Json.Str x); ("a", Json.Str a) ])
                entry.Result_cache.annotations)) ]
    in
    Protocol.ok_response ~id
      ([ ("engine", Json.Str engine_str);
         ("mode", Json.Str (mode_string run_mode));
         ("used_delta", Json.of_bool_opt entry.Result_cache.used_delta);
         ("prepared_cache", Json.Str prepared_status);
         ("result_cache", Json.Str result_status);
         ("generation", Json.of_int generation);
         ("nodes_fed", Json.of_int entry.Result_cache.nodes_fed);
         ("depth", Json.of_int entry.Result_cache.depth);
         ("result", Json.Str entry.Result_cache.serialized) ]
      @ annotated @ extra
      @ [ ("wall_ms", Json.Num entry.Result_cache.wall_ms) ])
  in
  (* Partitioned runs (the cluster's scatter legs) always execute: the
     keyed item list cannot be rebuilt from a cached serialization, and
     the coordinator only scatters cold or invalidated work anyway. *)
  let cache = cache && partition = None in
  let current uri = Store.doc_generation t.store uri in
  match (if cache then Result_cache.find t.results rkey ~current else None) with
  | Some entry -> respond ~result_status:"hit" entry
  | None ->
    let deadline =
      Option.map (fun ms -> Unix.gettimeofday () +. (ms /. 1000.0)) timeout_ms
    in
    let fixq_engine =
      match engine with
      | `Interp -> Fixq.Interpreter run_mode
      | `Algebra -> Fixq.Algebra run_mode
    in
    let program =
      match partition with
      | None -> prepared.Prepared.program
      | Some (index, count) ->
        Fixq.partition_first_seed ~index ~count prepared.Prepared.program
    in
    let report, footprint =
      Store.track t.store (fun () ->
          Governor.with_memory_budget t.governor (fun ~round_check ->
              Fixq.run_program ~registry:(Store.registry t.store)
                ~max_iterations ~stratified ?deadline ~round_hook:round_check
                ?max_call_depth:
                  (Governor.config t.governor).Governor.max_call_depth
                ~engine:fixq_engine program))
    in
    let entry =
      { Result_cache.serialized =
          Xdm.Serializer.seq_to_string report.Fixq.result;
        used_delta = report.Fixq.used_delta;
        nodes_fed = report.Fixq.nodes_fed; depth = report.Fixq.depth;
        wall_ms = report.Fixq.wall_ms; footprint;
        semiring = report.Fixq.semiring;
        annotations = report.Fixq.annotations }
    in
    (* Cache only when no document changed under the evaluation: a
       concurrent load-doc would make this entry's footprint stamps a
       lie. *)
    if cache && Store.generation t.store = generation then begin
      Result_cache.put t.results rkey entry;
      (* Eligible fixpoints additionally become maintained entries so a
         later patch-doc can update the cached bytes differentially. *)
      Ivm.adopt t.ivm ~hash:rkey.Result_cache.hash
        ~config:rkey.Result_cache.config ~program:prepared.Prepared.program
        ~stratified ~max_iterations ~result:report.Fixq.result ~footprint
    end;
    Metrics.record t.metrics ~key:prepared.Prepared.hash
      ~label:(preview query) ~ms:report.Fixq.wall_ms;
    let extra =
      match partition with
      | None -> []
      | Some (index, count) ->
        [ ("partition", Json.Str (Printf.sprintf "%d/%d" index count));
          ("keyed", keyed_items t report.Fixq.result) ]
    in
    respond ~result_status:"miss" ~extra entry

(* prepare: warm the prepared-query LRU (parse + static check + both
   verdicts + pinned modes + compiled plan) without executing — the
   cluster coordinator uses this to warm every replica before traffic. *)
let handle_prepare t ~id query stratified =
  let stratified = Option.value ~default:t.config.stratified stratified in
  let (p, prepared_status) =
    get_prepared t ~stratified ~max_iterations:t.config.max_iterations query
  in
  Protocol.ok_response ~id
    [ ("prepared_cache", Json.Str prepared_status);
      ("hash", Json.Str p.Prepared.hash);
      ("ifp_count", Json.of_int p.Prepared.ifp_count);
      ("interp_mode", Json.Str (mode_string p.Prepared.interp_mode));
      ("algebra_mode", Json.Str (mode_string p.Prepared.algebra_mode));
      ("has_plan", Json.Bool (p.Prepared.plan <> None));
      ("prepare_ms", Json.Num p.Prepared.prepare_ms) ]

let handle_check t ~id query stratified =
  let stratified = Option.value ~default:t.config.stratified stratified in
  let (p, prepared_status) =
    get_prepared t ~stratified ~max_iterations:t.config.max_iterations query
  in
  let first = match p.Prepared.analysis.Analyze.ifps with
    | r :: _ -> Some r
    | [] -> None
  in
  let sql =
    Fixq.sql_of_first_ifp ~registry:(Store.registry t.store)
      p.Prepared.program
  in
  Protocol.ok_response ~id
    [ ("ifp_count", Json.of_int p.Prepared.ifp_count);
      ("syntactic", Json.Bool p.Prepared.syntactic);
      ("algebraic", Json.of_bool_opt p.Prepared.algebraic);
      ("interp_mode", Json.Str (mode_string p.Prepared.interp_mode));
      ("algebra_mode", Json.Str (mode_string p.Prepared.algebra_mode));
      ("stratified", Json.Bool stratified);
      ("warnings",
       Json.List (List.map (fun w -> Json.Str w) p.Prepared.warnings));
      ("diagnostics",
       Json.List (List.map diag_json (Prepared.diagnostics p)));
      ("divergence",
       (match Prepared.divergence p with
       | Some d -> Json.Str (Analyze.divergence_string d)
       | None -> Json.Null));
      ("semiring",
       (match Prepared.semiring p with
       | Some k -> Json.Str (Semiring.kind_to_string k)
       | None -> Json.Null));
      ("convergence",
       (match Prepared.semiring p with
       | Some k -> Json.Str (Semiring.stability_string (Semiring.stability k))
       | None -> Json.Null));
      ("node_only",
       Json.of_bool_opt
         (Option.map
            (fun r -> r.Analyze.node_only_seed && r.Analyze.node_only_body)
            first));
      ("ivm",
       Json.Str
         (Analyze.ivm_string
            (Analyze.ivm_eligibility ~stratified p.Prepared.program)));
      ("blocking",
       (match p.Prepared.push with
       | Some { Fixq_algebra.Push.blocking = Some b; _ } -> Json.Str b
       | _ -> Json.Null));
      ("sql_renderable", Json.of_bool_opt (Option.map Result.is_ok sql));
      ("sql_reason",
       (match sql with
       | Some (Error reason) -> Json.Str reason
       | Some (Ok _) | None -> Json.Null));
      ("prepared_cache", Json.Str prepared_status) ]

let handle_plan t ~id query stratified =
  let stratified = Option.value ~default:t.config.stratified stratified in
  let (p, prepared_status) =
    get_prepared t ~stratified ~max_iterations:t.config.max_iterations query
  in
  match p.Prepared.plan with
  | None ->
    Protocol.error_response ~id
      "no compilable IFP body found (interpreter-only query)"
  | Some (_, plan) ->
    Protocol.ok_response ~id
      [ ("distributive", Json.of_bool_opt p.Prepared.algebraic);
        ("prepared_cache", Json.Str prepared_status);
        ("plan", Json.Str (Fixq_algebra.Render.to_ascii plan)) ]

let handle_load_doc t ~id uri (source : Protocol.doc_source) =
  (match source with
  | Protocol.From_xml xml -> Store.load_xml t.store ~uri xml
  | Protocol.From_path path -> Store.load_file t.store ~uri path
  | Protocol.From_generator { kind; size; seed } ->
    let size =
      match size with
      | Some s -> s
      | None -> (
        match kind with "xmark" -> 0.002 | "hospital" -> 1000.0 | _ -> 100.0)
    in
    Store.load_generated t.store ~uri ~kind ~size ~seed);
  (* A wholesale replacement leaves nothing to remap a maintained entry
     through — only patch-doc preserves node identity. *)
  Ivm.on_unload t.ivm ~uri;
  Protocol.ok_response ~id
    [ ("uri", Json.Str uri);
      ("generation", Json.of_int (Store.generation t.store)) ]

let handle_patch_doc t ~id uri op =
  let t0 = Unix.gettimeofday () in
  let delta = Store.patch t.store ~uri op in
  let outcomes =
    Ivm.on_patch t.ivm ~uri ~op delta
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  let current u = Store.doc_generation t.store u in
  let maintained = ref 0 in
  let dropped = ref 0 in
  let entry_rows =
    List.map
      (fun ((hash, config), outcome) ->
        let key = { Result_cache.hash; config } in
        let base =
          [ ("hash", Json.Str hash); ("config", Json.Str config) ]
        in
        match (outcome : Ivm.outcome) with
        | Ivm.Maintained { serialized; delta_count; rounds } ->
          incr maintained;
          (match
             List.find_opt
               (fun (k, _) -> k = key)
               (Result_cache.bindings t.results)
           with
          | Some (_, entry) ->
            (* Refresh the cached bytes in place. Only the patched
               document's stamp advances; the rest of the footprint
               keeps its recorded generations, so an unrelated
               concurrent load still invalidates as before. *)
            Result_cache.put t.results key
              { entry with
                Result_cache.serialized;
                footprint =
                  List.map
                    (fun (u, g) -> (u, if u = uri then current u else g))
                    entry.Result_cache.footprint }
          | None -> ());
          Json.Obj
            (base
            @ [ ("outcome", Json.Str "maintained");
                ("delta", Json.of_int delta_count);
                ("rounds", Json.of_int rounds) ])
        | Ivm.Dropped reason ->
          incr dropped;
          Result_cache.remove t.results key;
          Json.Obj
            (base
            @ [ ("outcome", Json.Str "recompute");
                ("reason", Json.Str reason) ]))
      outcomes
  in
  Protocol.ok_response ~id
    [ ("uri", Json.Str uri);
      ("path", Json.Str (Xdm.Patch.path_of_op op));
      ("generation", Json.of_int (Store.generation t.store));
      ("doc_generation", Json.of_int (current uri));
      ("inserted", Json.of_int delta.Xdm.Patch.inserted_count);
      ("deleted", Json.of_int (List.length delta.Xdm.Patch.deleted));
      ("maintained", Json.of_int !maintained);
      ("recompute", Json.of_int !dropped);
      ("entries", Json.List entry_rows);
      ("wall_ms", Json.Num ((Unix.gettimeofday () -. t0) *. 1000.0)) ]

let cache_stats_json ~hits ~misses ~size ~capacity =
  Json.Obj
    [ ("hits", Json.of_int hits); ("misses", Json.of_int misses);
      ("size", Json.of_int size); ("capacity", Json.of_int capacity) ]

(* Process-wide set-kernel totals (merge/bitmap/name-index work done by
   every fixpoint round served so far), as label/value rows shared by
   the JSON and Prometheus expositions. *)
let kernel_counter_rows () =
  let c = Xdm.Counters.snapshot () in
  [ ("merges", c.Xdm.Counters.merges);
    ("merged_items", c.Xdm.Counters.merged_items);
    ("fallback_sorts", c.Xdm.Counters.fallback_sorts);
    ("bitmap_tests", c.Xdm.Counters.bitmap_tests);
    ("bitmap_hits", c.Xdm.Counters.bitmap_hits);
    ("index_steps", c.Xdm.Counters.index_steps);
    ("index_nodes", c.Xdm.Counters.index_nodes);
    ("col_batches", c.Xdm.Counters.col_batches);
    ("col_rows", c.Xdm.Counters.col_rows);
    ("col_boxed_rows", c.Xdm.Counters.col_boxed_rows) ]

(* Prometheus text exposition of the same counters the JSON stats
   report: cache hit/miss/size, registry generation, uptime, and the
   per-query execution aggregates from [Metrics]. Emitted by workers
   (scraped directly or relayed by the coordinator). *)
let prometheus_stats t =
  let buf = Buffer.create 1024 in
  let gauge name ?(labels = "") value =
    Buffer.add_string buf (Printf.sprintf "# TYPE %s gauge\n" name);
    Buffer.add_string buf
      (Printf.sprintf "%s%s %s\n" name
         (if labels = "" then "" else "{" ^ labels ^ "}")
         value)
  in
  let counter_family name samples =
    Buffer.add_string buf (Printf.sprintf "# TYPE %s counter\n" name);
    List.iter
      (fun (labels, value) ->
        Buffer.add_string buf
          (Printf.sprintf "%s{%s} %d\n" name labels value))
      samples
  in
  gauge "fixq_uptime_seconds"
    (Printf.sprintf "%.3f" (Unix.gettimeofday () -. t.started_at));
  gauge "fixq_store_generation" (string_of_int (Store.generation t.store));
  gauge "fixq_documents" (string_of_int (List.length (Store.uris t.store)));
  counter_family "fixq_cache_hits_total"
    [ ("cache=\"prepared\"", Lru.hits t.prepared);
      ("cache=\"results\"", Result_cache.hits t.results) ];
  counter_family "fixq_cache_misses_total"
    [ ("cache=\"prepared\"", Lru.misses t.prepared);
      ("cache=\"results\"", Result_cache.misses t.results) ];
  Buffer.add_string buf "# TYPE fixq_cache_entries gauge\n";
  List.iter
    (fun (label, v) ->
      Buffer.add_string buf
        (Printf.sprintf "fixq_cache_entries{cache=%S} %d\n" label v))
    [ ("prepared", Lru.length t.prepared);
      ("results", Result_cache.length t.results) ];
  counter_family "fixq_kernel_ops_total"
    (List.map
       (fun (k, v) -> (Printf.sprintf "kernel=%S" k, v))
       (kernel_counter_rows ()));
  gauge "fixq_inflight_requests"
    (string_of_int (Governor.inflight t.governor));
  counter_family "fixq_degraded_requests_total"
    (List.map
       (fun (k, v) -> (Printf.sprintf "reason=%S" k, v))
       (Governor.counter_rows t.governor));
  (match analysis_counter_rows t with
  | [] -> ()
  | rows ->
    let is_semiring k =
      String.length k > 9 && String.sub k 0 9 = "semiring:"
    in
    counter_family "fixq_prepared_divergence_total"
      (List.filter_map
         (fun (k, v) ->
           if k = "refused" || is_semiring k then None
           else Some (Printf.sprintf "class=%S" k, v))
         rows);
    (match List.filter (fun (k, _) -> is_semiring k) rows with
    | [] -> ()
    | semi ->
      counter_family "fixq_semiring_queries_total"
        (List.map
           (fun (k, v) ->
             ( Printf.sprintf "kind=%S"
                 (String.sub k 9 (String.length k - 9)),
               v ))
           semi));
    (match List.assoc_opt "refused" rows with
    | Some n ->
      counter_family "fixq_refused_queries_total"
        [ ("reason=\"may-diverge\"", n) ]
    | None -> ()));
  gauge "fixq_ivm_entries" (string_of_int (Ivm.size t.ivm));
  (match Ivm.counters t.ivm with
  | [] -> ()
  | rows ->
    counter_family "fixq_ivm_maintained_total"
      (List.map (fun (h, (m, _, _)) -> (Printf.sprintf "query=%S" h, m)) rows);
    counter_family "fixq_ivm_fallback_recompute_total"
      (List.map (fun (h, (_, f, _)) -> (Printf.sprintf "query=%S" h, f)) rows);
    counter_family "fixq_ivm_delta_nodes_total"
      (List.map (fun (h, (_, _, d)) -> (Printf.sprintf "query=%S" h, d)) rows));
  Buffer.add_string buf (Metrics.to_prometheus ~prefix:"fixq" t.metrics);
  Buffer.contents buf

let handle_stats t ~id =
  Protocol.ok_response ~id
    [ ("stats",
       Json.Obj
         [ ("generation", Json.of_int (Store.generation t.store));
           ("documents",
            Json.List
              (List.map (fun u -> Json.Str u) (Store.uris t.store)));
           ("prepared",
            cache_stats_json ~hits:(Lru.hits t.prepared)
              ~misses:(Lru.misses t.prepared) ~size:(Lru.length t.prepared)
              ~capacity:(Lru.capacity t.prepared));
           ("results",
            cache_stats_json ~hits:(Result_cache.hits t.results)
              ~misses:(Result_cache.misses t.results)
              ~size:(Result_cache.length t.results)
              ~capacity:t.config.result_capacity);
           ("queries", Metrics.to_json t.metrics);
           ("kernels",
            Json.Obj
              (List.map
                 (fun (k, v) -> (k, Json.of_int v))
                 (kernel_counter_rows ())));
           ("governor",
            Json.Obj
              (("inflight", Json.of_int (Governor.inflight t.governor))
              :: List.map
                   (fun (k, v) -> (k, Json.of_int v))
                   (Governor.counter_rows t.governor)));
           ("analysis",
            Json.Obj
              (List.map
                 (fun (k, v) -> (k, Json.of_int v))
                 (analysis_counter_rows t)));
           ("ivm",
            (let m, f, d = Ivm.totals t.ivm in
             Json.Obj
               [ ("entries", Json.of_int (Ivm.size t.ivm));
                 ("maintained_total", Json.of_int m);
                 ("fallback_recompute_total", Json.of_int f);
                 ("delta_nodes_total", Json.of_int d);
                 ("queries",
                  Json.Obj
                    (List.map
                       (fun (hash, (m, f, d)) ->
                         ( hash,
                           Json.Obj
                             [ ("maintained", Json.of_int m);
                               ("fallback_recompute", Json.of_int f);
                               ("delta_nodes", Json.of_int d) ] ))
                       (Ivm.counters t.ivm))) ]));
           ("uptime_ms",
            Json.Num ((Unix.gettimeofday () -. t.started_at) *. 1000.0)) ]) ]

(* Chaos faults injected at the request boundary become the same
   degradations the governor produces naturally. *)
exception Chaos_fault of string

let chaos_handle_point () =
  match Fixq_chaos.check "server.handle" with
  | None -> ()
  | Some Fixq_chaos.Kill -> Fixq_chaos.kill_self ()
  | Some (Fixq_chaos.Delay s) -> Fixq_chaos.sleep s
  | Some Fixq_chaos.Oom -> raise Out_of_memory
  | Some Fixq_chaos.Drop -> raise (Chaos_fault "injected fault: drop")
  | Some Fixq_chaos.Truncate -> raise (Chaos_fault "injected fault: truncate")

let handle t request =
  let id = Protocol.request_id request in
  match Protocol.parse_request request with
  | Error msg -> (Protocol.error_response ~id msg, false)
  | Ok req -> (
    (* Only query work is subject to admission control: ping, stats and
       document ops must keep answering on a loaded server. *)
    let admitted =
      match req with
      | Protocol.Run _ | Protocol.Prepare _ | Protocol.Check _
      | Protocol.Plan _ ->
        true
      | _ -> false
    in
    try
      if admitted then Governor.admit t.governor;
      Fun.protect
        ~finally:(fun () -> if admitted then Governor.release t.governor)
        (fun () ->
          chaos_handle_point ();
          match req with
          | Protocol.Run r -> (handle_run t ~id r, false)
          | Protocol.Prepare { query; stratified } ->
            (handle_prepare t ~id query stratified, false)
          | Protocol.Check { query; stratified } ->
            (handle_check t ~id query stratified, false)
          | Protocol.Plan { query; stratified } ->
            (handle_plan t ~id query stratified, false)
          | Protocol.Load_doc { uri; source } ->
            (handle_load_doc t ~id uri source, false)
          | Protocol.Unload_doc { uri } ->
            Store.unload t.store uri;
            Ivm.on_unload t.ivm ~uri;
            ( Protocol.ok_response ~id
                [ ("uri", Json.Str uri);
                  ("generation", Json.of_int (Store.generation t.store)) ],
              false )
          | Protocol.Patch_doc { uri; op } ->
            (handle_patch_doc t ~id uri op, false)
          | Protocol.Stats Protocol.Stats_json -> (handle_stats t ~id, false)
          | Protocol.Stats Protocol.Stats_prometheus ->
            ( Protocol.ok_response ~id
                [ ("prometheus", Json.Str (prometheus_stats t)) ],
              false )
          | Protocol.Ping ->
            (Protocol.ok_response ~id [ ("pong", Json.Bool true) ], false)
          | Protocol.Shutdown ->
            (Protocol.ok_response ~id [ ("shutdown", Json.Bool true) ], true))
    with
    | Prepared.Rejected { message; diagnostics } ->
      ( Protocol.error_response ~id
          ~extra:
            [ ("diagnostics", Json.List (List.map diag_json diagnostics)) ]
          message,
        false )
    | Store.Error msg | Fixq.Error msg | Chaos_fault msg ->
      (Protocol.error_response ~id msg, false)
    | Governor.Shed { retry_after_ms; reason } ->
      ( Protocol.error_response ~id
          ~extra:[ ("retry_after_ms", Json.of_int retry_after_ms) ]
          ("overloaded: " ^ reason),
        false )
    | Out_of_memory ->
      (* The run was aborted between fixpoint rounds (memory budget) or
         by a failed allocation. Nothing was cached: both caches are
         only written after a fully successful computation, so the
         failed request leaves no poisoned entry behind. *)
      Governor.note_oom t.governor;
      ( Protocol.error_response ~id
          "out of memory: request aborted (memory budget exceeded)",
        false )
    | Stack_overflow ->
      Governor.note_stack t.governor;
      ( Protocol.error_response ~id
          "stack overflow: request aborted (recursion too deep)",
        false )
    | exn ->
      (* A request must never take the server down. *)
      (Protocol.error_response ~id
         ("internal error: " ^ Printexc.to_string exn),
       false))

let handle_line t line =
  match Json.parse line with
  | request ->
    let (response, shutdown) = handle t request in
    (Json.to_string response, shutdown)
  | exception Json.Parse_error msg ->
    (Json.to_string (Protocol.error_response ~id:Json.Null msg), false)

(* ------------------------------------------------------------------ *)
(* Worker pool                                                         *)
(* ------------------------------------------------------------------ *)

module Pool = struct
  type pool = {
    jobs : (unit -> unit) Queue.t;
    lock : Mutex.t;
    nonempty : Condition.t;
    idle : Condition.t;
    mutable stop : bool;
    mutable active : int;
    mutable threads : Thread.t list;
  }

  let rec worker p =
    Mutex.lock p.lock;
    while Queue.is_empty p.jobs && not p.stop do
      Condition.wait p.nonempty p.lock
    done;
    if Queue.is_empty p.jobs then Mutex.unlock p.lock (* stopping *)
    else begin
      let job = Queue.pop p.jobs in
      p.active <- p.active + 1;
      Mutex.unlock p.lock;
      (try job () with _ -> ());
      Mutex.lock p.lock;
      p.active <- p.active - 1;
      if Queue.is_empty p.jobs && p.active = 0 then Condition.broadcast p.idle;
      Mutex.unlock p.lock;
      worker p
    end

  let create n =
    let p =
      { jobs = Queue.create (); lock = Mutex.create ();
        nonempty = Condition.create (); idle = Condition.create ();
        stop = false; active = 0; threads = [] }
    in
    p.threads <- List.init (max 1 n) (fun _ -> Thread.create worker p);
    p

  let submit p job =
    Mutex.lock p.lock;
    Queue.push job p.jobs;
    Condition.signal p.nonempty;
    Mutex.unlock p.lock

  (* Block until every submitted job has finished. *)
  let drain p =
    Mutex.lock p.lock;
    while not (Queue.is_empty p.jobs && p.active = 0) do
      Condition.wait p.idle p.lock
    done;
    Mutex.unlock p.lock

  let shutdown p =
    drain p;
    Mutex.lock p.lock;
    p.stop <- true;
    Condition.broadcast p.nonempty;
    Mutex.unlock p.lock;
    List.iter Thread.join p.threads
end

(* ------------------------------------------------------------------ *)
(* Transports                                                          *)
(* ------------------------------------------------------------------ *)

let is_shutdown_line line =
  match Json.parse line with
  | j -> Json.str_opt (Json.member "op" j) = Some "shutdown"
  | exception Json.Parse_error _ -> false

(* The transports are generic over the request handler so that the
   single-process server and the cluster coordinator (whose handler
   fans out to worker processes) share the exact same pipe/socket
   plumbing. [handle] maps one request line to (response line, stop). *)

(* A stream that dies mid-frame or ships an oversized frame gets a
   well-formed error response (where the transport still accepts one)
   and otherwise ends the connection cleanly — never a bare
   [End_of_file] out of the serve loop, and never a truncated frame
   handed to the handler as if it were complete. *)
let frame_error_line kind =
  Json.to_string
    (Protocol.error_response ~id:Json.Null
       (match kind with
       | `Truncated -> "protocol error: stream ended mid-frame"
       | `Oversized ->
         Printf.sprintf "protocol error: frame larger than %d bytes"
           Frame.default_max_len))

let serve_pipe_with ~handle ?(workers = 1) ic oc =
  let out_lock = Mutex.create () in
  let write_line s =
    Mutex.lock out_lock;
    output_string oc s;
    output_char oc '\n';
    flush oc;
    Mutex.unlock out_lock
  in
  if workers <= 1 then
    let rec loop () =
      match Frame.read ic with
      | `Eof -> ()
      | `Truncated _ -> write_line (frame_error_line `Truncated)
      | `Oversized ->
        write_line (frame_error_line `Oversized);
        loop ()
      | `Line line when String.trim line = "" -> loop ()
      | `Line line ->
        let (response, shutdown) = handle line in
        write_line response;
        if not shutdown then loop ()
    in
    loop ()
  else begin
    let pool = Pool.create workers in
    let rec loop () =
      match Frame.read ic with
      | `Eof -> ()
      | `Truncated _ -> write_line (frame_error_line `Truncated)
      | `Oversized ->
        write_line (frame_error_line `Oversized);
        loop ()
      | `Line line when String.trim line = "" -> loop ()
      | `Line line ->
        if is_shutdown_line line then begin
          (* answer shutdown only after in-flight requests completed *)
          Pool.drain pool;
          let (response, _) = handle line in
          write_line response
        end
        else begin
          Pool.submit pool (fun () ->
              let (response, _) = handle line in
              write_line response);
          loop ()
        end
    in
    loop ();
    Pool.shutdown pool
  end

exception Socket_in_use of string

(* Is there a live server behind this socket path? A stale path left by
   a crashed process refuses the connection; a healthy one accepts. *)
let socket_alive path =
  let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close sock with Unix.Unix_error _ -> ())
    (fun () ->
      match Unix.connect sock (Unix.ADDR_UNIX path) with
      | () -> true
      | exception Unix.Unix_error _ -> false)

let serve_socket_with ~handle ?(workers = 1) ~path () =
  (* a client hanging up mid-response must not kill the process *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  if Sys.file_exists path then begin
    (* refuse to clobber another live server's socket; only unlink a
       stale leftover that nothing answers behind *)
    if socket_alive path then raise (Socket_in_use path);
    Unix.unlink path
  end;
  let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind sock (Unix.ADDR_UNIX path);
  Unix.listen sock 64;
  let stopping = ref false in
  let pool = Pool.create workers in
  let handle_conn fd =
    let ic = Unix.in_channel_of_descr fd in
    let oc = Unix.out_channel_of_descr fd in
    let write_line response =
      try
        output_string oc response;
        output_char oc '\n';
        flush oc
      with Sys_error _ -> ()
    in
    let rec loop () =
      match Frame.read ic with
      | exception Sys_error _ -> ()
      | `Eof -> ()
      | `Truncated _ -> write_line (frame_error_line `Truncated)
      | `Oversized ->
        write_line (frame_error_line `Oversized);
        loop ()
      | `Line line when String.trim line = "" -> loop ()
      | `Line line ->
        let (response, shutdown) = handle line in
        write_line response;
        if shutdown then begin
          stopping := true;
          (* wake the accept loop *)
          (try Unix.shutdown sock Unix.SHUTDOWN_RECEIVE with Unix.Unix_error _ -> ());
          (try Unix.close sock with Unix.Unix_error _ -> ())
        end
        else loop ()
    in
    Fun.protect
      ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
      loop
  in
  (try
     while not !stopping do
       let (fd, _) = Unix.accept sock in
       Pool.submit pool (fun () -> handle_conn fd)
     done
   with Unix.Unix_error _ | Sys_error _ -> ());
  Pool.shutdown pool;
  (try Unix.close sock with Unix.Unix_error _ -> ());
  if Sys.file_exists path then (try Unix.unlink path with Sys_error _ -> ())

let serve_pipe t ic oc =
  serve_pipe_with ~handle:(handle_line t) ~workers:t.config.workers ic oc

let serve_socket t ~path =
  serve_socket_with ~handle:(handle_line t) ~workers:t.config.workers ~path ()
