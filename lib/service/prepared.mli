(** The prepared-query layer: everything about a query that does not
    depend on {e when} it runs, computed once and cached.

    Preparing a query performs the whole per-query pipeline of the
    paper — parse (with source spans), static check, the full analyzer
    pass ({!Fixq_analysis.Analyze}: lint rules, distributivity blame,
    divergence classification), compilation of the first IFP body to a
    Table-1 algebra plan, and the algebraic ∪ push-up (Section 4.1) —
    and pins the fixpoint algorithm each engine should use: Delta/µ∆
    when the respective check proves distributivity, Naïve/µ otherwise.
    Repeat runs of the same query text skip all of it (an LRU cache in
    the server keys prepared queries by source text).

    For programs with more than one IFP the pinned mode degrades to
    [Auto]: the first site's verdict must not be forced onto the
    others, and [Auto] re-decides per site exactly as an unprepared run
    would. *)

type t = {
  source : string;
  hash : string;  (** hex digest of [source] — the result-cache key *)
  program : Fixq.Lang.Ast.program;
  spans : Fixq.Lang.Parser.Spans.t;
      (** node → source position side-table from parsing *)
  warnings : string list;  (** static warnings; static errors reject *)
  analysis : Fixq_analysis.Analyze.t;
      (** located diagnostics and per-IFP reports *)
  push : Fixq_algebra.Push.outcome option;
      (** full ∪ push-up outcome, including the blocking operator *)
  ifp_count : int;
  syntactic : bool;  (** Figure 5 verdict for the first IFP ([false] if none) *)
  algebraic : bool option;
      (** ∪ push-up verdict; [None] when the body is outside the
          compilable subset or there is no IFP *)
  plan : (int * Fixq.Algebra_ir.Plan.t) option;
      (** fix-ref id and compiled plan of the first IFP body *)
  sql : (Fixq_algebra.Render_sql.rendered, string) result option;
      (** SQL:1999 rendering of the first IFP body ([None] when there is
          no IFP or no compilable plan) *)
  cost : Fixq_cost.Estimate.t;
      (** synopsis-driven cost & cardinality estimate: per-operator
          cardinalities, certified round bound, per-engine costs and the
          cheapest-engine verdict ([--engine auto]) *)
  interp_mode : Fixq.mode;  (** pinned algorithm for the interpreter *)
  algebra_mode : Fixq.mode;  (** pinned algorithm for the algebra engine *)
  stratified : bool;  (** checks ran with the Section-6 refinement *)
  generation : int;  (** registry generation at preparation time *)
  prepare_ms : float;
}

(** Parse or static errors. [message] is the legacy one-line rendering;
    [diagnostics] the located, coded findings behind it. *)
exception
  Rejected of {
    message : string;
    diagnostics : Fixq_analysis.Diag.t list;
  }

(** [prepare ~store ~stratified ~max_iterations src] runs the full
    pipeline. Compiling the first IFP body requires evaluating the
    surrounding program up to that site, so preparation may read
    documents from [store]; [max_iterations] bounds that evaluation
    (preparing a divergent query terminates with the plan simply not
    captured).

    @raise Rejected on parse errors or static errors. *)
val prepare :
  store:Store.t -> stratified:bool -> max_iterations:int -> string -> t

(** [refresh ~store t] — [t] unchanged when the store generation still
    matches [t]'s; otherwise a copy with only the cost estimate re-run
    against the current synopses. The text-derived parts (parse,
    static check, verdicts, plan) are generation-independent and keep
    their amortization; the cost estimate is not, and admission or
    engine choice acting on a pre-[patch-doc] estimate would mis-gate
    grown documents. *)
val refresh : store:Store.t -> t -> t

(** All located diagnostics for the query, sorted by position: the
    analyzer's, plus the FQ031 push-block mapping (which needs the
    compiled plan's verdict and so is assembled here). *)
val diagnostics : t -> Fixq_analysis.Diag.t list

(** Divergence class of the first IFP ([None] when the query has no
    fixed point). *)
val divergence : t -> Fixq_analysis.Analyze.divergence option

(** [accumulate by] kind of the first IFP ([None] for a plain
    fixpoint or a query without one). *)
val semiring : t -> Fixq_semiring.Semiring.kind option

(** The engine the cost model picked as cheapest — what [--engine auto]
    resolves to. *)
val chosen_engine : t -> [ `Interp | `Algebra | `Sql ]

(** The mode a request for the given engine kind should run with:
    [`Interp] → [interp_mode], [`Algebra]/[`Sql] → [algebra_mode] (the
    Sql engine runs the same compiled plan), [`Auto] → the mode of
    {!chosen_engine}. *)
val mode_for : t -> [ `Interp | `Algebra | `Sql | `Auto ] -> Fixq.mode

val hash_source : string -> string
