module Patch = Fixq_xdm.Patch

type doc_source =
  | From_xml of string
  | From_path of string
  | From_generator of { kind : string; size : float option; seed : int }

type run_params = {
  query : string;
  engine : [ `Interp | `Algebra | `Sql | `Auto ];
  mode : [ `Pinned | `Naive | `Delta ];
  stratified : bool option;
  max_iterations : int option;
  timeout_ms : float option;
  cache : bool;
  partition : (int * int) option;
}

type stats_format = Stats_json | Stats_prometheus

type request =
  | Run of run_params
  | Prepare of { query : string; stratified : bool option }
  | Check of { query : string; stratified : bool option }
  | Plan of { query : string; stratified : bool option }
  | Explain of { query : string; stratified : bool option }
  | Load_doc of { uri : string; source : doc_source }
  | Unload_doc of { uri : string }
  | Patch_doc of { uri : string; op : Patch.op }
  | Snapshot
  | Dump_doc of { uri : string }
  | Add_worker
  | Remove_worker of { name : string }
  | Drain of { name : string }
  | Stats of stats_format
  | Ping
  | Shutdown

let request_id j = Json.member "id" j

let query_of j =
  match Json.str_opt (Json.member "query" j) with
  | Some q -> Ok q
  | None -> Error "missing string member \"query\""

let ( let* ) r f = Result.bind r f

let parse_request j =
  match Json.str_opt (Json.member "op" j) with
  | None -> Error "missing string member \"op\""
  | Some op -> (
    let stratified = Json.bool_opt (Json.member "stratified" j) in
    match op with
    | "run" ->
      let* query = query_of j in
      let* engine =
        match Json.str_opt (Json.member "engine" j) with
        | None | Some "interp" -> Ok `Interp
        | Some "algebra" -> Ok `Algebra
        | Some "sql" -> Ok `Sql
        | Some "auto" -> Ok `Auto
        | Some other ->
          Error
            (Printf.sprintf "unknown engine %S (interp|algebra|sql|auto)"
               other)
      in
      let* mode =
        match Json.str_opt (Json.member "mode" j) with
        | None | Some "auto" -> Ok `Pinned
        | Some "naive" -> Ok `Naive
        | Some "delta" -> Ok `Delta
        | Some other ->
          Error (Printf.sprintf "unknown mode %S (auto|naive|delta)" other)
      in
      let* partition =
        match Json.member "partition" j with
        | Json.Null -> Ok None
        | p -> (
          match
            ( Json.int_opt (Json.member "index" p),
              Json.int_opt (Json.member "of" p) )
          with
          | (Some index, Some count) when count >= 1 && index >= 0 && index < count
            ->
            Ok (Some (index, count))
          | (Some index, Some count) ->
            Error
              (Printf.sprintf "invalid partition %d/%d (need 0 <= index < of)"
                 index count)
          | _ -> Error "partition needs integer members \"index\" and \"of\"")
      in
      Ok
        (Run
           { query; engine; mode; stratified;
             max_iterations = Json.int_opt (Json.member "max_iterations" j);
             timeout_ms = Json.num_opt (Json.member "timeout_ms" j);
             cache =
               Option.value ~default:true
                 (Json.bool_opt (Json.member "cache" j));
             partition })
    | "prepare" ->
      let* query = query_of j in
      Ok (Prepare { query; stratified })
    | "check" ->
      let* query = query_of j in
      Ok (Check { query; stratified })
    | "plan" ->
      let* query = query_of j in
      Ok (Plan { query; stratified })
    | "explain" ->
      let* query = query_of j in
      Ok (Explain { query; stratified })
    | "load-doc" -> (
      match Json.str_opt (Json.member "uri" j) with
      | None -> Error "missing string member \"uri\""
      | Some uri ->
        let* source =
          match
            ( Json.str_opt (Json.member "xml" j),
              Json.str_opt (Json.member "path" j),
              Json.str_opt (Json.member "generate" j) )
          with
          | (Some xml, None, None) -> Ok (From_xml xml)
          | (None, Some path, None) -> Ok (From_path path)
          | (None, None, Some kind) ->
            Ok
              (From_generator
                 { kind;
                   size = Json.num_opt (Json.member "size" j);
                   seed =
                     Option.value ~default:42
                       (Json.int_opt (Json.member "seed" j)) })
          | (None, None, None) ->
            Error "load-doc needs one of \"xml\", \"path\", \"generate\""
          | _ ->
            Error "load-doc takes exactly one of \"xml\", \"path\", \"generate\""
        in
        Ok (Load_doc { uri; source }))
    | "unload-doc" -> (
      match Json.str_opt (Json.member "uri" j) with
      | Some uri -> Ok (Unload_doc { uri })
      | None -> Error "missing string member \"uri\"")
    | "patch-doc" -> (
      match
        ( Json.str_opt (Json.member "uri" j),
          Json.str_opt (Json.member "path" j) )
      with
      | (None, _) -> Error "missing string member \"uri\""
      | (_, None) -> Error "missing string member \"path\""
      | (Some uri, Some path) ->
        let xml_of () =
          match Json.str_opt (Json.member "xml" j) with
          | Some xml -> Ok xml
          | None -> Error "missing string member \"xml\""
        in
        let* op =
          match Json.str_opt (Json.member "action" j) with
          | Some "insert" ->
            let* xml = xml_of () in
            let* position =
              match Json.str_opt (Json.member "position" j) with
              | None -> Ok Patch.Last
              | Some s -> (
                match Patch.position_of_string s with
                | Some p -> Ok p
                | None ->
                  Error
                    (Printf.sprintf
                       "unknown position %S \
                        (into|into-first|into-last|before|after)"
                       s))
            in
            Ok (Patch.Insert { path; position; xml })
          | Some "delete" -> Ok (Patch.Delete { path })
          | Some "replace" ->
            let* xml = xml_of () in
            Ok (Patch.Replace { path; xml })
          | Some "set-text" -> (
            match Json.str_opt (Json.member "text" j) with
            | Some text -> Ok (Patch.Set_text { path; text })
            | None -> Error "missing string member \"text\"")
          | Some other ->
            Error
              (Printf.sprintf
                 "unknown action %S (insert|delete|replace|set-text)" other)
          | None -> Error "missing string member \"action\""
        in
        Ok (Patch_doc { uri; op }))
    | "stats" -> (
      match Json.str_opt (Json.member "format" j) with
      | None | Some "json" -> Ok (Stats Stats_json)
      | Some "prometheus" -> Ok (Stats Stats_prometheus)
      | Some other ->
        Error (Printf.sprintf "unknown stats format %S (json|prometheus)" other))
    | "snapshot" -> Ok Snapshot
    | "dump-doc" -> (
      match Json.str_opt (Json.member "uri" j) with
      | Some uri -> Ok (Dump_doc { uri })
      | None -> Error "missing string member \"uri\"")
    | "add-worker" -> Ok Add_worker
    | "remove-worker" -> (
      match Json.str_opt (Json.member "worker" j) with
      | Some name -> Ok (Remove_worker { name })
      | None -> Error "missing string member \"worker\"")
    | "drain" -> (
      match Json.str_opt (Json.member "worker" j) with
      | Some name -> Ok (Drain { name })
      | None -> Error "missing string member \"worker\"")
    | "ping" -> Ok Ping
    | "shutdown" -> Ok Shutdown
    | other -> Error (Printf.sprintf "unknown op %S" other))

(* [--patch] convenience grammar: URI ACTION [PAYLOAD] at /PATH
   [POSITION]. The payload/path boundary is the {e last} " at " — paths
   contain no spaces, so payload XML may mention "at" freely. *)
let parse_patch_spec spec =
  let split_first s =
    match String.index_opt s ' ' with
    | None -> (s, "")
    | Some i ->
      ( String.sub s 0 i,
        String.trim (String.sub s (i + 1) (String.length s - i - 1)) )
  in
  let uri, rest = split_first (String.trim spec) in
  let action, rest = split_first rest in
  let usage = "expected \"URI ACTION [PAYLOAD] at /PATH [POSITION]\"" in
  if uri = "" || action = "" then Error ("patch spec: " ^ usage)
  else begin
    let padded = " " ^ rest in
    let n = String.length padded in
    let last_at = ref None in
    for i = 0 to n - 4 do
      if String.sub padded i 4 = " at " then last_at := Some i
    done;
    match !last_at with
    | None -> Error ("patch spec: missing \" at /PATH\"; " ^ usage)
    | Some i ->
      let payload = String.trim (String.sub padded 0 i) in
      let tail = String.trim (String.sub padded (i + 4) (n - i - 4)) in
      let path, pos_str = split_first tail in
      let ( let* ) = Result.bind in
      let* position =
        match pos_str with
        | "" -> Ok Patch.Last
        | s -> (
          match Patch.position_of_string s with
          | Some p -> Ok p
          | None ->
            Error
              (Printf.sprintf
                 "patch spec: unknown position %S \
                  (into|into-first|into-last|before|after)"
                 s))
      in
      let* () =
        if path = "" then Error ("patch spec: missing path; " ^ usage)
        else Ok ()
      in
      let need_payload what =
        if payload = "" then
          Error (Printf.sprintf "patch spec: %s needs %s" action what)
        else Ok payload
      in
      let* op =
        match action with
        | "insert" ->
          let* xml = need_payload "an XML payload" in
          Ok (Patch.Insert { path; position; xml })
        | "replace" ->
          let* xml = need_payload "an XML payload" in
          Ok (Patch.Replace { path; xml })
        | "set-text" -> Ok (Patch.Set_text { path; text = payload })
        | "delete" ->
          if payload <> "" then
            Error "patch spec: delete takes no payload"
          else Ok (Patch.Delete { path })
        | other ->
          Error
            (Printf.sprintf
               "patch spec: unknown action %S \
                (insert|delete|replace|set-text)"
               other)
      in
      Ok (uri, op)
  end

let with_id ~id fields =
  match id with Json.Null -> fields | id -> ("id", id) :: fields

let error_response ?(extra = []) ~id msg =
  Json.Obj
    (("ok", Json.Bool false)
    :: with_id ~id (("error", Json.Str msg) :: extra))

let ok_response ~id fields =
  Json.Obj (("ok", Json.Bool true) :: with_id ~id fields)
