module Lang = Fixq_lang
module Push = Fixq_algebra.Push
module Analyze = Fixq_analysis.Analyze
module Diag = Fixq_analysis.Diag
module Estimate = Fixq_cost.Estimate

type t = {
  source : string;
  hash : string;
  program : Lang.Ast.program;
  spans : Lang.Parser.Spans.t;
  warnings : string list;
  analysis : Analyze.t;
  push : Push.outcome option;
  ifp_count : int;
  syntactic : bool;
  algebraic : bool option;
  plan : (int * Fixq_algebra.Plan.t) option;
  sql : (Fixq_algebra.Render_sql.rendered, string) result option;
  cost : Estimate.t;
  interp_mode : Fixq.mode;
  algebra_mode : Fixq.mode;
  stratified : bool;
  generation : int;
  prepare_ms : float;
}

exception Rejected of { message : string; diagnostics : Diag.t list }

let reject message diagnostics = raise (Rejected { message; diagnostics })

let hash_source src = Digest.to_hex (Digest.string src)

let format_diagnostic d = Format.asprintf "%a" Lang.Static.pp_diagnostic d

let prepare ~store ~stratified ~max_iterations source =
  let t0 = Unix.gettimeofday () in
  let registry = Store.registry store in
  let generation = Store.generation store in
  let program, spans =
    match Lang.Parser.parse_program_spans source with
    | p -> p
    | exception Lang.Parser.Error { line; col; msg } ->
      let message = Printf.sprintf "parse error at %d:%d: %s" line col msg in
      reject message [ Analyze.parse_error_diag ~line ~col msg ]
    | exception Lang.Lexer.Error { pos; msg } ->
      let line, col = Lang.Lexer.line_col_of source pos in
      let message = Printf.sprintf "lex error at %d:%d: %s" line col msg in
      reject message [ Analyze.parse_error_diag ~line ~col msg ]
  in
  let static = Lang.Static.check_program program in
  (match Lang.Static.errors static with
  | [] -> ()
  | errs ->
    reject
      (String.concat "; " (List.map format_diagnostic errs))
      (List.map (Analyze.of_static ~spans) errs));
  let warnings = List.map format_diagnostic static in
  let analysis = Analyze.analyze ~stratified ~spans program in
  let ifp_count = List.length analysis.Analyze.ifps in
  let syntactic =
    match analysis.Analyze.ifps with
    | [] -> false
    | r :: _ -> r.Analyze.syntactic
  in
  let plan =
    if ifp_count = 0 then None
    else Fixq.plan_of_first_ifp ~registry ~max_iterations program
  in
  let push =
    Option.map
      (fun (fix_id, p) -> Push.check ~stratified ~fix_id p)
      plan
  in
  let algebraic = Option.map (fun o -> o.Push.distributive) push in
  let sql =
    if ifp_count = 0 then None
    else Fixq.sql_of_first_ifp ~registry ~max_iterations program
  in
  let cost =
    Estimate.analyze ~registry ~spans
      ~compiled:(if ifp_count = 0 then None else Some (plan <> None))
      ~sql_renderable:(Option.map Result.is_ok sql)
      ~algebra_delta:(algebraic = Some true)
      ~interp_delta:syntactic program
  in
  let interp_mode =
    if ifp_count = 0 then Fixq.Naive
    else if ifp_count > 1 then Fixq.Auto
    else if syntactic then Fixq.Delta
    else Fixq.Naive
  in
  let algebra_mode =
    if ifp_count = 0 then Fixq.Naive
    else if ifp_count > 1 then Fixq.Auto
    else
      match algebraic with
      | Some true -> Fixq.Delta
      | Some false -> Fixq.Naive
      | None ->
        (* body outside the compilable subset: the site falls back to
           the interpreter, whose Auto strategy re-checks syntactically *)
        Fixq.Auto
  in
  { source; hash = hash_source source; program; spans; warnings; analysis;
    push; ifp_count; syntactic; algebraic; plan; sql; cost; interp_mode;
    algebra_mode; stratified; generation;
    prepare_ms = (Unix.gettimeofday () -. t0) *. 1000.0 }

(* The parse, the static check and the distributivity verdicts depend
   only on the query text, but the cost estimate reads the document
   synopses — so a cached entry served after a load-doc/patch-doc must
   re-run just the abstract interpreter, or admission and engine
   choice would act on the document as it was at prepare time. *)
let refresh ~store t =
  let generation = Store.generation store in
  if t.generation = generation then t
  else
    let cost =
      Estimate.analyze ~registry:(Store.registry store) ~spans:t.spans
        ~compiled:(if t.ifp_count = 0 then None else Some (t.plan <> None))
        ~sql_renderable:(Option.map Result.is_ok t.sql)
        ~algebra_delta:(t.algebraic = Some true)
        ~interp_delta:t.syntactic t.program
    in
    { t with cost; generation }

(* Diagnostics including the FQ031 push-block mapping, which needs the
   plan verdict and so cannot be part of [Analyze.analyze], plus the
   cost analyzer's FQ050–FQ054 findings. *)
let diagnostics t =
  let push_blocks =
    match (t.push, t.analysis.Analyze.ifps) with
    | Some o, r :: _ -> (
      match Analyze.push_block_diag ~spans:t.spans r o with
      | Some d -> [ d ]
      | None -> [])
    | _ -> []
  in
  List.stable_sort Diag.compare
    (t.analysis.Analyze.diagnostics @ push_blocks
    @ t.cost.Estimate.diagnostics)

let divergence t =
  match t.analysis.Analyze.ifps with
  | [] -> None
  | r :: _ -> Some r.Analyze.divergence

let semiring t =
  match t.analysis.Analyze.ifps with
  | [] -> None
  | r :: _ -> r.Analyze.semiring

let chosen_engine t =
  match t.cost.Estimate.chosen with
  | "algebra" -> `Algebra
  | "sql" -> `Sql
  | _ -> `Interp

(* The Sql engine compiles the same Table-1 plan as the algebra engine
   before rendering, so it inherits the algebraic mode pin. *)
let rec mode_for t = function
  | `Interp -> t.interp_mode
  | `Algebra -> t.algebra_mode
  | `Sql -> t.algebra_mode
  | `Auto -> mode_for t (chosen_engine t)
