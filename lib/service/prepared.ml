module Lang = Fixq_lang
module Push = Fixq_algebra.Push

type t = {
  source : string;
  hash : string;
  program : Lang.Ast.program;
  warnings : string list;
  ifp_count : int;
  syntactic : bool;
  algebraic : bool option;
  plan : (int * Fixq_algebra.Plan.t) option;
  interp_mode : Fixq.mode;
  algebra_mode : Fixq.mode;
  stratified : bool;
  generation : int;
  prepare_ms : float;
}

exception Rejected of string

let hash_source src = Digest.to_hex (Digest.string src)

let format_diagnostic d = Format.asprintf "%a" Lang.Static.pp_diagnostic d

let prepare ~store ~stratified ~max_iterations source =
  let t0 = Unix.gettimeofday () in
  let registry = Store.registry store in
  let generation = Store.generation store in
  let program =
    match Lang.Parser.parse_program source with
    | p -> p
    | exception Lang.Parser.Error { line; col; msg } ->
      raise
        (Rejected (Printf.sprintf "parse error at %d:%d: %s" line col msg))
    | exception Lang.Lexer.Error { pos; msg } ->
      raise (Rejected (Printf.sprintf "lex error at offset %d: %s" pos msg))
  in
  let diagnostics = Lang.Static.check_program program in
  (match Lang.Static.errors diagnostics with
  | [] -> ()
  | errs ->
    raise (Rejected (String.concat "; " (List.map format_diagnostic errs))));
  let warnings = List.map format_diagnostic diagnostics in
  let ifp_count = Fixq.count_ifps program in
  let syntactic =
    match Fixq.first_ifp program with
    | None -> false
    | Some (var, body) ->
      let functions = Hashtbl.create 16 in
      List.iter
        (fun fd -> Hashtbl.replace functions fd.Lang.Ast.fname fd)
        program.Lang.Ast.functions;
      Lang.Distributivity.check ~functions ~stratified var body
  in
  let plan =
    if ifp_count = 0 then None
    else Fixq.plan_of_first_ifp ~registry ~max_iterations program
  in
  let algebraic =
    Option.map
      (fun (fix_id, p) -> (Push.check ~stratified ~fix_id p).Push.distributive)
      plan
  in
  let interp_mode =
    if ifp_count = 0 then Fixq.Naive
    else if ifp_count > 1 then Fixq.Auto
    else if syntactic then Fixq.Delta
    else Fixq.Naive
  in
  let algebra_mode =
    if ifp_count = 0 then Fixq.Naive
    else if ifp_count > 1 then Fixq.Auto
    else
      match algebraic with
      | Some true -> Fixq.Delta
      | Some false -> Fixq.Naive
      | None ->
        (* body outside the compilable subset: the site falls back to
           the interpreter, whose Auto strategy re-checks syntactically *)
        Fixq.Auto
  in
  { source; hash = hash_source source; program; warnings; ifp_count;
    syntactic; algebraic; plan; interp_mode; algebra_mode; stratified;
    generation; prepare_ms = (Unix.gettimeofday () -. t0) *. 1000.0 }

let mode_for t = function
  | `Interp -> t.interp_mode
  | `Algebra -> t.algebra_mode
