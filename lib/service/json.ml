type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of string

(* ------------------------------------------------------------------ *)
(* Printing                                                            *)
(* ------------------------------------------------------------------ *)

let escape_to buf s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\012' -> Buffer.add_string buf "\\f"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s

let number_to_string f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.0f" f
  else if Float.is_nan f || Float.abs f = Float.infinity then "null"
  else
    (* shortest representation that round-trips *)
    let s = Printf.sprintf "%.12g" f in
    if float_of_string s = f then s else Printf.sprintf "%.17g" f

let rec write buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Num f -> Buffer.add_string buf (number_to_string f)
  | Str s ->
    Buffer.add_char buf '"';
    escape_to buf s;
    Buffer.add_char buf '"'
  | List items ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i item ->
        if i > 0 then Buffer.add_char buf ',';
        write buf item)
      items;
    Buffer.add_char buf ']'
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (name, value) ->
        if i > 0 then Buffer.add_char buf ',';
        Buffer.add_char buf '"';
        escape_to buf name;
        Buffer.add_string buf "\":";
        write buf value)
      fields;
    Buffer.add_char buf '}'

let to_string j =
  let buf = Buffer.create 256 in
  write buf j;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Parsing                                                             *)
(* ------------------------------------------------------------------ *)

type parser_state = { src : string; mutable pos : int; mutable depth : int }

(* Containers may nest at most this deep. parse_value recurses per
   nesting level, so without a cap a hostile frame of a few hundred
   thousand '['s overflows the stack — an exception the wire loop's
   [Parse_error] handler cannot contain. *)
let max_nesting = 512

let fail st msg =
  raise (Parse_error (Printf.sprintf "%s at offset %d" msg st.pos))

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let advance st = st.pos <- st.pos + 1

let skip_ws st =
  let rec go () =
    match peek st with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance st;
      go ()
    | _ -> ()
  in
  go ()

let expect st c =
  match peek st with
  | Some d when d = c -> advance st
  | _ -> fail st (Printf.sprintf "expected '%c'" c)

let parse_literal st word value =
  if
    st.pos + String.length word <= String.length st.src
    && String.sub st.src st.pos (String.length word) = word
  then begin
    st.pos <- st.pos + String.length word;
    value
  end
  else fail st (Printf.sprintf "expected '%s'" word)

(* decode \uXXXX (with surrogate pairs) to UTF-8 bytes *)
let add_unicode st buf =
  let hex4 () =
    if st.pos + 4 > String.length st.src then fail st "truncated \\u escape";
    let s = String.sub st.src st.pos 4 in
    st.pos <- st.pos + 4;
    match int_of_string_opt ("0x" ^ s) with
    | Some n -> n
    | None -> fail st "invalid \\u escape"
  in
  let cp = hex4 () in
  let cp =
    if cp >= 0xD800 && cp <= 0xDBFF then begin
      (* high surrogate: require a following \uXXXX low surrogate *)
      if
        st.pos + 2 <= String.length st.src
        && st.src.[st.pos] = '\\'
        && st.src.[st.pos + 1] = 'u'
      then begin
        st.pos <- st.pos + 2;
        let lo = hex4 () in
        if lo >= 0xDC00 && lo <= 0xDFFF then
          0x10000 + (((cp - 0xD800) lsl 10) lor (lo - 0xDC00))
        else fail st "unpaired surrogate"
      end
      else fail st "unpaired surrogate"
    end
    else cp
  in
  if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
  else if cp < 0x800 then begin
    Buffer.add_char buf (Char.chr (0xC0 lor (cp lsr 6)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end
  else if cp < 0x10000 then begin
    Buffer.add_char buf (Char.chr (0xE0 lor (cp lsr 12)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end
  else begin
    Buffer.add_char buf (Char.chr (0xF0 lor (cp lsr 18)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 12) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end

let parse_string st =
  expect st '"';
  let buf = Buffer.create 16 in
  let rec go () =
    match peek st with
    | None -> fail st "unterminated string"
    | Some '"' -> advance st
    | Some '\\' ->
      advance st;
      (match peek st with
      | None -> fail st "unterminated escape"
      | Some c ->
        advance st;
        (match c with
        | '"' -> Buffer.add_char buf '"'
        | '\\' -> Buffer.add_char buf '\\'
        | '/' -> Buffer.add_char buf '/'
        | 'n' -> Buffer.add_char buf '\n'
        | 'r' -> Buffer.add_char buf '\r'
        | 't' -> Buffer.add_char buf '\t'
        | 'b' -> Buffer.add_char buf '\b'
        | 'f' -> Buffer.add_char buf '\012'
        | 'u' -> add_unicode st buf
        | c -> fail st (Printf.sprintf "bad escape '\\%c'" c)));
      go ()
    | Some c ->
      advance st;
      Buffer.add_char buf c;
      go ()
  in
  go ();
  Buffer.contents buf

let parse_number st =
  let start = st.pos in
  let is_num_char = function
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while (match peek st with Some c -> is_num_char c | None -> false) do
    advance st
  done;
  let s = String.sub st.src start (st.pos - start) in
  match float_of_string_opt s with
  | Some f -> Num f
  | None -> fail st (Printf.sprintf "bad number %S" s)

let rec parse_value st =
  if st.depth >= max_nesting then
    fail st (Printf.sprintf "nesting deeper than %d" max_nesting);
  st.depth <- st.depth + 1;
  let v = parse_value_inner st in
  st.depth <- st.depth - 1;
  v

and parse_value_inner st =
  skip_ws st;
  match peek st with
  | None -> fail st "unexpected end of input"
  | Some '{' ->
    advance st;
    skip_ws st;
    if peek st = Some '}' then begin
      advance st;
      Obj []
    end
    else begin
      let fields = ref [] in
      let rec fields_loop () =
        skip_ws st;
        let name = parse_string st in
        skip_ws st;
        expect st ':';
        let value = parse_value st in
        fields := (name, value) :: !fields;
        skip_ws st;
        match peek st with
        | Some ',' ->
          advance st;
          fields_loop ()
        | Some '}' -> advance st
        | _ -> fail st "expected ',' or '}'"
      in
      fields_loop ();
      Obj (List.rev !fields)
    end
  | Some '[' ->
    advance st;
    skip_ws st;
    if peek st = Some ']' then begin
      advance st;
      List []
    end
    else begin
      let items = ref [] in
      let rec items_loop () =
        let v = parse_value st in
        items := v :: !items;
        skip_ws st;
        match peek st with
        | Some ',' ->
          advance st;
          items_loop ()
        | Some ']' -> advance st
        | _ -> fail st "expected ',' or ']'"
      in
      items_loop ();
      List (List.rev !items)
    end
  | Some '"' -> Str (parse_string st)
  | Some 't' -> parse_literal st "true" (Bool true)
  | Some 'f' -> parse_literal st "false" (Bool false)
  | Some 'n' -> parse_literal st "null" Null
  | Some ('-' | '0' .. '9') -> parse_number st
  | Some c -> fail st (Printf.sprintf "unexpected character '%c'" c)

let parse src =
  let st = { src; pos = 0; depth = 0 } in
  let v = parse_value st in
  skip_ws st;
  if st.pos <> String.length src then fail st "trailing garbage";
  v

(* ------------------------------------------------------------------ *)
(* Accessors                                                           *)
(* ------------------------------------------------------------------ *)

let member name = function
  | Obj fields -> Option.value ~default:Null (List.assoc_opt name fields)
  | _ -> Null

let str_opt = function Str s -> Some s | _ -> None
let num_opt = function Num f -> Some f | _ -> None

let int_opt = function
  | Num f when Float.is_integer f -> Some (int_of_float f)
  | _ -> None

let bool_opt = function Bool b -> Some b | _ -> None
let of_int n = Num (float_of_int n)
let of_bool_opt = function None -> Null | Some b -> Bool b
