(* Resource governor: keeps one hostile or merely huge request from
   taking the whole server (and its caches) down.

   Three mechanisms, all cooperative and cheap:

   - Load shedding at admission: new query work is rejected with a
     retry_after hint while the major heap sits above a watermark or
     too many requests are already in flight. Control-plane ops (ping,
     stats, shutdown …) are never shed, so a loaded server stays
     observable and drainable.

   - A per-request memory budget: the request records the major-heap
     size at start; a [Gc.create_alarm] marks the request once the
     heap has grown past the budget, and the fixpoint round hook
     (called between rounds on both engines) re-checks directly and
     raises [Out_of_memory] at a safe point. Attribution is
     approximate under concurrency — the heap is shared — but a lone
     runaway IFP is exactly the case that matters, and it is the only
     thing that can grow the heap by gigabytes between rounds.

   - A recursion-depth guard forwarded to the evaluator
     ([max_call_depth]), bounding user-function recursion. *)

type config = {
  max_heap_mb : int option;
  shed_heap_mb : int option;
  max_pending : int option;
  max_call_depth : int option;
  max_cost : float option;
  retry_after_ms : int;
}

let default_config =
  { max_heap_mb = None; shed_heap_mb = None; max_pending = None;
    max_call_depth = None; max_cost = None; retry_after_ms = 200 }

type t = {
  config : config;
  lock : Mutex.t;
  mutable inflight : int;
  mutable shed_total : int;
  mutable oom_total : int;
  mutable stack_total : int;
}

exception Shed of { retry_after_ms : int; reason : string }

let create config =
  { config; lock = Mutex.create (); inflight = 0; shed_total = 0;
    oom_total = 0; stack_total = 0 }

let config t = t.config

let words_per_mb = 1024 * 1024 / (Sys.word_size / 8)

let heap_words () = (Gc.quick_stat ()).Gc.heap_words

let shed t reason =
  Mutex.lock t.lock;
  t.shed_total <- t.shed_total + 1;
  Mutex.unlock t.lock;
  raise (Shed { retry_after_ms = t.config.retry_after_ms; reason })

(* Admission control for query work. Call {!release} when the request
   finishes (success or failure). *)
let admit t =
  (match t.config.shed_heap_mb with
  | Some mb when heap_words () > mb * words_per_mb ->
    shed t
      (Printf.sprintf "heap above shed watermark (%d MiB)" mb)
  | _ -> ());
  Mutex.lock t.lock;
  match t.config.max_pending with
  | Some m when t.inflight >= m ->
    Mutex.unlock t.lock;
    shed t (Printf.sprintf "too many requests in flight (%d)" m)
  | _ ->
    t.inflight <- t.inflight + 1;
    Mutex.unlock t.lock

let release t =
  Mutex.lock t.lock;
  if t.inflight > 0 then t.inflight <- t.inflight - 1;
  Mutex.unlock t.lock

let note_oom t =
  Mutex.lock t.lock;
  t.oom_total <- t.oom_total + 1;
  Mutex.unlock t.lock

let note_stack t =
  Mutex.lock t.lock;
  t.stack_total <- t.stack_total + 1;
  Mutex.unlock t.lock

(* Run [f] under the per-request memory budget. [f] receives a
   [round_check] to install as the evaluator's per-round hook; the
   check raises [Out_of_memory] once heap growth since entry exceeds
   the budget. The Gc alarm marks long rounds that allocate past the
   budget between checks; the flag fires the exception at the next
   round boundary, where the evaluator's state is consistent and the
   partial result is simply dropped. *)
let with_memory_budget t f =
  match t.config.max_heap_mb with
  | None -> f ~round_check:(fun () -> ())
  | Some mb ->
    let budget = mb * words_per_mb in
    let start = heap_words () in
    let exceeded = ref false in
    let alarm =
      Gc.create_alarm (fun () ->
          if heap_words () - start > budget then exceeded := true)
    in
    let round_check () =
      if !exceeded || heap_words () - start > budget then
        raise Out_of_memory
    in
    Fun.protect
      ~finally:(fun () -> Gc.delete_alarm alarm)
      (fun () -> f ~round_check)

let inflight t = t.inflight

let counter_rows t =
  Mutex.lock t.lock;
  let rows =
    [ ("shed", t.shed_total); ("oom", t.oom_total);
      ("stack_overflow", t.stack_total) ]
  in
  Mutex.unlock t.lock;
  rows
