(** Minimal JSON for the [fixq serve] wire protocol.

    The toolchain this repo builds against carries no JSON library, and
    the protocol needs nothing exotic: newline-delimited objects of
    strings, numbers, booleans and shallow nesting. Hand-rolled here —
    one value type, a recursive-descent parser, a printer with
    deterministic field order (the order of the [Obj] list, so
    responses are stable for the cram tests). *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of string

(** Parse one JSON value; trailing whitespace allowed, anything else
    raises {!Parse_error}. *)
val parse : string -> t

(** Compact single-line rendering (no newlines — one value per line on
    the wire). Numbers that are integral print without a decimal
    point. *)
val to_string : t -> string

(** [member name j] is the field [name] of object [j], [Null] when
    absent or when [j] is not an object. *)
val member : string -> t -> t

val str_opt : t -> string option
val num_opt : t -> float option
val int_opt : t -> int option
val bool_opt : t -> bool option

val of_int : int -> t
val of_bool_opt : bool option -> t  (** [Null] for [None] *)
