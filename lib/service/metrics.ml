type agg = {
  label : string;
  mutable count : int;
  mutable total_ms : float;
  mutable min_ms : float;
  mutable max_ms : float;
}

type t = { table : (string, agg) Hashtbl.t; lock : Mutex.t }

let create () = { table = Hashtbl.create 16; lock = Mutex.create () }

let record t ~key ~label ~ms =
  Mutex.lock t.lock;
  (match Hashtbl.find_opt t.table key with
  | Some a ->
    a.count <- a.count + 1;
    a.total_ms <- a.total_ms +. ms;
    if ms < a.min_ms then a.min_ms <- ms;
    if ms > a.max_ms then a.max_ms <- ms
  | None ->
    Hashtbl.replace t.table key
      { label; count = 1; total_ms = ms; min_ms = ms; max_ms = ms });
  Mutex.unlock t.lock

let sorted_aggs t =
  Mutex.lock t.lock;
  let aggs =
    Hashtbl.fold
      (fun _ a acc ->
        { a with label = a.label } :: acc (* copy under the lock *))
      t.table []
  in
  Mutex.unlock t.lock;
  List.sort (fun a b -> compare (b.count, b.label) (a.count, a.label)) aggs

let to_json t =
  let aggs = sorted_aggs t in
  Json.List
    (List.map
       (fun a ->
         Json.Obj
           [ ("query", Json.Str a.label);
             ("count", Json.of_int a.count);
             ("total_ms", Json.Num a.total_ms);
             ("min_ms", Json.Num a.min_ms);
             ("max_ms", Json.Num a.max_ms);
             ("mean_ms", Json.Num (a.total_ms /. float_of_int a.count)) ])
       aggs)

type snapshot = {
  s_label : string;
  s_count : int;
  s_total_ms : float;
  s_min_ms : float;
  s_max_ms : float;
}

let snapshots t =
  List.map
    (fun a ->
      { s_label = a.label; s_count = a.count; s_total_ms = a.total_ms;
        s_min_ms = a.min_ms; s_max_ms = a.max_ms })
    (sorted_aggs t)

let escape_label s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (function
      | '\\' -> Buffer.add_string buf "\\\\"
      | '"' -> Buffer.add_string buf "\\\""
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* Prometheus numbers must not use OCaml's "1." spelling. *)
let prom_float f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.0f" f
  else Printf.sprintf "%g" f

let to_prometheus ?(labels = "") ~prefix t =
  let buf = Buffer.create 512 in
  let snaps = snapshots t in
  let sample family value s =
    Buffer.add_string buf
      (Printf.sprintf "%s_%s{query=\"%s\"%s} %s\n" prefix family
         (escape_label s.s_label)
         (if labels = "" then "" else "," ^ labels)
         value)
  in
  if snaps <> [] then begin
    Buffer.add_string buf
      (Printf.sprintf "# TYPE %s_query_executions_total counter\n" prefix);
    List.iter
      (fun s -> sample "query_executions_total" (string_of_int s.s_count) s)
      snaps;
    Buffer.add_string buf
      (Printf.sprintf "# TYPE %s_query_ms_total counter\n" prefix);
    List.iter
      (fun s -> sample "query_ms_total" (prom_float s.s_total_ms) s)
      snaps
  end;
  Buffer.contents buf
