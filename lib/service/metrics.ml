type agg = {
  label : string;
  mutable count : int;
  mutable total_ms : float;
  mutable min_ms : float;
  mutable max_ms : float;
}

type t = { table : (string, agg) Hashtbl.t; lock : Mutex.t }

let create () = { table = Hashtbl.create 16; lock = Mutex.create () }

let record t ~key ~label ~ms =
  Mutex.lock t.lock;
  (match Hashtbl.find_opt t.table key with
  | Some a ->
    a.count <- a.count + 1;
    a.total_ms <- a.total_ms +. ms;
    if ms < a.min_ms then a.min_ms <- ms;
    if ms > a.max_ms then a.max_ms <- ms
  | None ->
    Hashtbl.replace t.table key
      { label; count = 1; total_ms = ms; min_ms = ms; max_ms = ms });
  Mutex.unlock t.lock

let to_json t =
  Mutex.lock t.lock;
  let aggs = Hashtbl.fold (fun _ a acc -> a :: acc) t.table [] in
  Mutex.unlock t.lock;
  let aggs =
    List.sort (fun a b -> compare (b.count, b.label) (a.count, a.label)) aggs
  in
  Json.List
    (List.map
       (fun a ->
         Json.Obj
           [ ("query", Json.Str a.label);
             ("count", Json.of_int a.count);
             ("total_ms", Json.Num a.total_ms);
             ("min_ms", Json.Num a.min_ms);
             ("max_ms", Json.Num a.max_ms);
             ("mean_ms", Json.Num (a.total_ms /. float_of_int a.count)) ])
       aggs)
