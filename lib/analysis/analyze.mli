(** Static analysis over parsed programs: located lint findings,
    distributivity blame, and divergence classification for every
    inflationary fixed point.

    This sits above {!Fixq_lang} (syntax, Figure-5 distributivity) and
    {!Fixq_algebra} (the ∪-push over Table-1 plans) and below the
    service/cluster layers, which consume its verdicts instead of
    re-deriving them. *)

module Lang = Fixq_lang
module Push = Fixq_algebra.Push

(** Termination classification of one IFP (conservative):

    - [Terminates]: seed and body are node-only over loaded documents —
      the accumulator is bounded by the finite node universe, so the
      fixed point is reached (Section 2.2 of the paper). This is also
      exactly the cluster's scatter precondition: slices merge by
      portable node identity.
    - [Bounded]: the body mints no fresh nodes and no new atoms by
      arithmetic; the value universe is bounded but not node-only.
    - [May_diverge reason]: the body can mint fresh values every round
      (node constructors, or arithmetic over the recursion variable). *)
type divergence = Terminates | Bounded | May_diverge of string

val divergence_string : divergence -> string

val divergence_reason : divergence -> string option

(** Per-IFP analysis. [blame] is present iff [syntactic] is [false];
    [hint_repairable] says {!Lang.Rewrite.distributivity_hint} applied
    to [body] would satisfy Figure 5 (no constructor, no positional
    access, no [order by], no nested IFP). *)
type ifp_report = {
  index : int;  (** position in program order (main, functions, globals) *)
  var : string;
  context : string;
  loc : (int * int) option;
  seed : Lang.Ast.expr;
  body : Lang.Ast.expr;
  node_only_seed : bool;
  node_only_body : bool;
  semiring : Fixq_semiring.Semiring.kind option;
      (** the [accumulate by] kind, [None] for a plain IFP *)
  divergence : divergence;
  syntactic : bool;  (** Figure-5 [ds] verdict on the body *)
  blame : Lang.Distributivity.blame option;
  hint_repairable : bool;
}

type t = {
  diagnostics : Diag.t list;  (** sorted by source position *)
  ifps : ifp_report list;  (** in program order *)
}

(** Conservative syntactic check that [e] evaluates to document-tree
    nodes only — never atoms, never freshly constructed nodes. [env]
    lists the variables known to be bound to node-only sequences.
    (Moved here from [Fixq]; the cluster's scatter gate and the
    divergence classifier share it.) *)
val node_only : env:string list -> Lang.Ast.expr -> bool

(** Divergence classification. The structural verdict (node-only ⇒
    [Terminates]; constructor/arithmetic ⇒ [May_diverge]; else
    [Bounded]) is refined by the semiring stability of an [accumulate
    by] clause: stable kinds (bool, max, why) keep the structural
    class, the p-stable min semiring caps at [Bounded], and the
    unstable count semiring forces [May_diverge]. *)
val classify :
  ?accum:Lang.Ast.accum ->
  var:string ->
  seed:Lang.Ast.expr ->
  body:Lang.Ast.expr ->
  unit ->
  divergence

(** Full analysis: {!Lang.Static} findings (re-coded and located),
    lint rules FQ020–FQ023, and per-IFP distributivity blame (FQ030,
    FQ032) and divergence class (FQ040, FQ041 — or FQ043/FQ044 when an
    [accumulate by] semiring drives the verdict). [spans] locates
    diagnostics; without it every [loc] is [None]. *)
val analyze :
  ?stratified:bool ->
  ?spans:Lang.Parser.Spans.t ->
  Lang.Ast.program ->
  t

(** Convert one {!Lang.Static} diagnostic, resolving its node to a
    position through [spans]. *)
val of_static :
  ?spans:Lang.Parser.Spans.t -> Lang.Static.diagnostic -> Diag.t

(** An [FQ001] parse/lex error at a known position. *)
val parse_error_diag : line:int -> col:int -> string -> Diag.t

(** Locate the source construct that compiled to the plan operator
    blocking the algebraic ∪-push ([outcome.blocking]), as an [FQ031]
    diagnostic against the IFP's body. [None] when the push succeeded. *)
val push_block_diag :
  ?spans:Lang.Parser.Spans.t -> ifp_report -> Push.outcome -> Diag.t option

(** The cluster's scatter precondition, centralised: exactly one IFP,
    it is the main expression, it [Terminates] (node-only seed and
    body), and Figure 5 accepts the body. *)
val scatter_eligible : ?stratified:bool -> Lang.Ast.program -> bool

(** Incremental-view-maintenance eligibility of a prepared program.

    - [Ivm_full]: single top-level fixed point, node-only, syntactically
      distributive, and both seed and body stay in the {e filter-free
      downward grammar} (child / descendant / descendant-or-self / self
      / attribute steps, union, intersect, sequence, [let], variables,
      [doc("…")] literals). Such results can be maintained under
      insertions {e and} deletions: downward bodies derive only within
      the producer's subtree, so deleting a subtree deletes every result
      it supported and nothing else.
    - [Ivm_insert_only]: as above but with filters, each restricted to
      insert-monotone predicates (downward existence paths, [and]/[or],
      comparisons whose operands are literals or attribute-ended
      downward paths). Insertions are maintainable — a predicate on an
      existing node can only flip on the re-fed ancestor spine — but
      deletions may un-derive results, so they fall back to recompute.
    - [Ivm_ineligible reason]: everything else; the cache entry is
      dropped on any patch to a footprint document. *)
type ivm_class = Ivm_full | Ivm_insert_only | Ivm_ineligible of string

val ivm_eligibility : ?stratified:bool -> Lang.Ast.program -> ivm_class

(** ["full" | "insert-only" | "ineligible"] — the [check] op's [ivm]
    field. *)
val ivm_string : ivm_class -> string

val ivm_reason : ivm_class -> string option

(** Apply {!Lang.Rewrite.distributivity_hint} to every
    [hint_repairable] IFP of the report; returns the rewritten program
    and how many hints were applied. *)
val apply_hints : Lang.Ast.program -> t -> Lang.Ast.program * int
