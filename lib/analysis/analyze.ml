module Lang = Fixq_lang
module Push = Fixq_algebra.Push
module Semiring = Fixq_semiring.Semiring
open Lang.Ast

type divergence = Terminates | Bounded | May_diverge of string

let divergence_string = function
  | Terminates -> "terminates"
  | Bounded -> "bounded"
  | May_diverge _ -> "may-diverge"

let divergence_reason = function
  | Terminates | Bounded -> None
  | May_diverge r -> Some r

type ifp_report = {
  index : int;
  var : string;
  context : string;
  loc : (int * int) option;
  seed : Lang.Ast.expr;
  body : Lang.Ast.expr;
  node_only_seed : bool;
  node_only_body : bool;
  semiring : Semiring.kind option;
      (** the [accumulate by] kind, [None] for a plain IFP *)
  divergence : divergence;
  syntactic : bool;
  blame : Lang.Distributivity.blame option;
  hint_repairable : bool;
}

type t = { diagnostics : Diag.t list; ifps : ifp_report list }

(* ------------------------------------------------------------------ *)
(* Generic traversal *)

let iter_children f e =
  match e with
  | Literal _ | Empty_seq | Var _ | Context_item | Root | Axis_step _ -> ()
  | Sequence (a, b)
  | Union (a, b)
  | Except (a, b)
  | Intersect (a, b)
  | Path (a, b)
  | Filter (a, b)
  | Arith (_, a, b)
  | Gen_cmp (_, a, b)
  | Val_cmp (_, a, b)
  | Node_is (a, b)
  | Node_before (a, b)
  | Node_after (a, b)
  | And (a, b)
  | Or (a, b)
  | Range (a, b) ->
    f a;
    f b
  | Neg a
  | Text_constr a
  | Attr_constr (_, a)
  | Comment_constr a
  | Doc_constr a
  | Comp_elem (_, a)
  | Instance_of (a, _)
  | Cast (a, _, _)
  | Castable (a, _, _) ->
    f a
  | For { source; body; _ } ->
    f source;
    f body
  | Sort { source; key; body; _ } ->
    f source;
    f key;
    f body
  | Let { value; body; _ } ->
    f value;
    f body
  | If (c, t, e') ->
    f c;
    f t;
    f e'
  | Quantified (_, _, s, p) ->
    f s;
    f p
  | Call (_, args) -> List.iter f args
  | Elem_constr (_, attrs, content) ->
    List.iter
      (fun (_, pieces) ->
        List.iter (function A_lit _ -> () | A_expr e -> f e) pieces)
      attrs;
    List.iter f content
  | Typeswitch (s, cases, _, d) ->
    f s;
    List.iter (fun (_, _, b) -> f b) cases;
    f d
  | Ifp { seed; body; accum; _ } ->
    f seed;
    (match accum with Some { weight = Some w; _ } -> f w | _ -> ());
    f body

let rec iter_deep f e =
  f e;
  iter_children (iter_deep f) e

exception Found of expr

let find_deep p e =
  try
    iter_deep (fun e -> if p e then raise (Found e)) e;
    None
  with Found e -> Some e

let exists_deep p e = find_deep p e <> None

(* Identity-preserving map over direct children: [apply_hints] needs a
   top-down mapper (the bottom-up {!Lang.Rewrite.map_expr} rebuilds
   children before the callback sees the parent, destroying the
   physical identities the span table is keyed on). *)
let map_children f e =
  match e with
  | Literal _ | Empty_seq | Var _ | Context_item | Root | Axis_step _ -> e
  | Sequence (a, b) -> Sequence (f a, f b)
  | Union (a, b) -> Union (f a, f b)
  | Except (a, b) -> Except (f a, f b)
  | Intersect (a, b) -> Intersect (f a, f b)
  | Path (a, b) -> Path (f a, f b)
  | Filter (a, b) -> Filter (f a, f b)
  | Arith (op, a, b) -> Arith (op, f a, f b)
  | Gen_cmp (c, a, b) -> Gen_cmp (c, f a, f b)
  | Val_cmp (c, a, b) -> Val_cmp (c, f a, f b)
  | Node_is (a, b) -> Node_is (f a, f b)
  | Node_before (a, b) -> Node_before (f a, f b)
  | Node_after (a, b) -> Node_after (f a, f b)
  | And (a, b) -> And (f a, f b)
  | Or (a, b) -> Or (f a, f b)
  | Range (a, b) -> Range (f a, f b)
  | Neg a -> Neg (f a)
  | Text_constr a -> Text_constr (f a)
  | Attr_constr (n, a) -> Attr_constr (n, f a)
  | Comment_constr a -> Comment_constr (f a)
  | Doc_constr a -> Doc_constr (f a)
  | Comp_elem (n, a) -> Comp_elem (n, f a)
  | Instance_of (a, ty) -> Instance_of (f a, ty)
  | Cast (a, ty, o) -> Cast (f a, ty, o)
  | Castable (a, ty, o) -> Castable (f a, ty, o)
  | For r -> For { r with source = f r.source; body = f r.body }
  | Sort r -> Sort { r with source = f r.source; key = f r.key; body = f r.body }
  | Let r -> Let { r with value = f r.value; body = f r.body }
  | If (c, t, e') -> If (f c, f t, f e')
  | Quantified (q, v, s, p) -> Quantified (q, v, f s, f p)
  | Call (n, args) -> Call (n, List.map f args)
  | Elem_constr (n, attrs, content) ->
    Elem_constr
      ( n,
        List.map
          (fun (an, pieces) ->
            ( an,
              List.map
                (function A_lit l -> A_lit l | A_expr e -> A_expr (f e))
                pieces ))
          attrs,
        List.map f content )
  | Typeswitch (s, cases, dv, db) ->
    Typeswitch (f s, List.map (fun (ty, v, b) -> (ty, v, f b)) cases, dv, f db)
  | Ifp { var; seed; body; accum } ->
    let accum =
      Option.map (fun a -> { a with weight = Option.map f a.weight }) accum
    in
    Ifp { var; seed = f seed; body = f body; accum }

(* ------------------------------------------------------------------ *)
(* Node-only check (moved from [Fixq]) *)

let node_only ~env e =
  let rec go env (e : expr) =
    match e with
    | Root | Axis_step _ | Empty_seq -> true
    | Var v -> List.mem v env
    | Sequence (a, b) | Union (a, b) | Except (a, b) | Intersect (a, b) ->
      go env a && go env b
    (* a path's value is its last step's; a filter's is its subject's *)
    | Path (_, b) -> go env b
    | Filter (a, _) -> go env a
    | If (_, t, e') -> go env t && go env e'
    | For { var; source; body; _ } | Sort { var; source; body; _ } ->
      go (if go env source then var :: env else env) body
    | Let { var; value; body } ->
      go (if go env value then var :: env else env) body
    | Typeswitch (_, cases, _, d) ->
      List.for_all (fun (_, _, b) -> go env b) cases && go env d
    | Ifp { var; seed; body; _ } -> go env seed && go (var :: env) body
    | Call (("doc" | "id" | "idref" | "root"), _) -> true
    | Call (("reverse" | "unordered"), [ a ]) -> go env a
    | _ -> false
  in
  go env e

(* ------------------------------------------------------------------ *)
(* Divergence classification *)

let has_arith_over var body =
  exists_deep
    (fun e ->
      match e with
      | Arith _ | Neg _ | Range _ -> is_free var e
      | _ -> false)
    body

let classify_structural ~var ~seed ~body =
  (* Node-only first: it is the strongest guarantee (finite node
     universe ⇒ termination, Section 2.2) and exactly the cluster's
     scatter precondition — internal constructors or arithmetic in a
     branch whose *value* is still node-only do not endanger it. *)
  if node_only ~env:[] seed && node_only ~env:[ var ] body then Terminates
  else if has_constructor body then
    May_diverge
      "node constructors in the recursive body mint fresh node \
       identities every round"
  else if has_arith_over var body then
    May_diverge
      (Printf.sprintf
         "arithmetic over $%s can mint new atoms every round" var)
  else Bounded

(* Semiring-annotated fixpoints refine the structural verdict by the
   stability of the annotation structure (after Abo Khamis et al.):
   naturally-ordered stable semirings (bool, max, why) keep the
   structural class; a p-stable semiring (min / tropical) caps the
   annotated rounds at |nodes| — never better than Bounded; an
   unstable semiring (count) can grow annotations on every cycle, so
   the site may diverge regardless of node-only structure. *)
let classify ?accum ~var ~seed ~body () =
  let structural = classify_structural ~var ~seed ~body in
  match accum with
  | None | Some { kind = Semiring.Bool; _ } -> structural
  | Some { kind; _ } -> (
    match (Semiring.stability kind, structural) with
    | Semiring.Stable, s -> s
    | Semiring.P_stable, May_diverge r -> May_diverge r
    | Semiring.P_stable, _ -> Bounded
    | Semiring.Unstable, May_diverge r -> May_diverge r
    | Semiring.Unstable, _ ->
      May_diverge
        (Printf.sprintf
           "the %s semiring is not stable: annotations on a cycle \
            through $%s can grow on every round"
           (Semiring.kind_to_string kind) var))

(* ------------------------------------------------------------------ *)
(* Diagnostic constructors *)

let loc_of spans at =
  match (spans, at) with
  | Some spans, Some e -> Lang.Parser.Spans.line_col spans e
  | _ -> None

let of_static ?spans (d : Lang.Static.diagnostic) =
  Diag.make
    ~loc:(loc_of spans d.at)
    ~code:d.code
    ~severity:
      (match d.severity with
      | Lang.Static.Error -> Diag.Error
      | Lang.Static.Warning -> Diag.Warning)
    ~context:d.context d.message

let parse_error_diag ~line ~col msg =
  Diag.make ~loc:(Some (line, col)) ~code:"FQ001" ~severity:Diag.Error
    ~context:"parse" msg

(* ------------------------------------------------------------------ *)
(* Lint rules FQ020–FQ023 *)

let unused_binding_diags ?spans (p : program) =
  let out = ref [] in
  let emit at ctx fmt =
    Format.kasprintf
      (fun message ->
        out :=
          Diag.make ~loc:(loc_of spans (Some at)) ~code:"FQ020"
            ~severity:Diag.Warning ~context:ctx message
          :: !out)
      fmt
  in
  let emit_for at ctx fmt =
    Format.kasprintf
      (fun message ->
        out :=
          Diag.make ~loc:(loc_of spans (Some at)) ~code:"FQ021"
            ~severity:Diag.Warning ~context:ctx message
          :: !out)
      fmt
  in
  let walk ctx =
    iter_deep (fun e ->
        match e with
        | Let { var; body; _ } when not (is_free var body) ->
          emit e ctx "the let binding $%s is never used" var
        | For { var; pos; body; _ } ->
          if not (is_free var body) then
            emit_for e ctx "the for binding $%s is never used" var;
          (match pos with
          | Some p when not (is_free p body) ->
            emit_for e ctx "the positional binding $%s is never used" p
          | _ -> ())
        | Sort { var; key; body; _ }
          when (not (is_free var key)) && not (is_free var body) ->
          emit_for e ctx "the for binding $%s is never used" var
        | _ -> ())
  in
  walk "main" p.main;
  List.iter (fun fd -> walk fd.fname fd.body) p.functions;
  List.iter
    (fun (v, e) -> walk (Printf.sprintf "variable $%s" v) e)
    p.variables;
  List.rev !out

let unused_function_diags ?spans (p : program) =
  let declared = Hashtbl.create 16 in
  List.iter (fun fd -> Hashtbl.replace declared fd.fname fd) p.functions;
  let reached = Hashtbl.create 16 in
  let rec visit e =
    iter_deep
      (fun e ->
        match e with
        | Call (f, _) when Hashtbl.mem declared f && not (Hashtbl.mem reached f)
          ->
          Hashtbl.replace reached f ();
          visit (Hashtbl.find declared f).body
        | _ -> ())
      e
  in
  visit p.main;
  List.iter (fun (_, e) -> visit e) p.variables;
  List.filter_map
    (fun fd ->
      if Hashtbl.mem reached fd.fname then None
      else
        Some
          (Diag.make
             ~loc:
               (match spans with
               | Some s -> Lang.Parser.Spans.fun_line_col s fd.fname
               | None -> None)
             ~code:"FQ022" ~severity:Diag.Warning ~context:fd.fname
             (Printf.sprintf
                "function %s is declared but never called" fd.fname)))
    p.functions

let shadowing_diags ?spans (p : program) =
  let out = ref [] in
  let emit at ctx v =
    out :=
      Diag.make ~loc:(loc_of spans (Some at)) ~code:"FQ023"
        ~severity:Diag.Warning ~context:ctx
        (Printf.sprintf
           "$%s shadows an outer binding inside a recursion body" v)
      :: !out
  in
  (* Only inside IFP bodies: rebinding a name there silently cuts the
     recursion variable (or an outer loop variable) out of scope, which
     is almost always a mistake in a fixpoint. *)
  let rec inside ctx bound e =
    let check at v k =
      if List.mem v bound then emit at ctx v;
      k (v :: bound)
    in
    match e with
    | For { var; pos; source; body } ->
      inside ctx bound source;
      check e var (fun bound ->
          let bound =
            match pos with
            | Some p ->
              if List.mem p bound then emit e ctx p;
              p :: bound
            | None -> bound
          in
          inside ctx bound body)
    | Sort { var; source; key; body; _ } ->
      inside ctx bound source;
      check e var (fun bound ->
          inside ctx bound key;
          inside ctx bound body)
    | Let { var; value; body } ->
      inside ctx bound value;
      check e var (fun bound -> inside ctx bound body)
    | Quantified (_, v, source, pred) ->
      inside ctx bound source;
      check e v (fun bound -> inside ctx bound pred)
    | Typeswitch (scrut, cases, dvar, dbody) ->
      inside ctx bound scrut;
      List.iter
        (fun (_, v, b) ->
          match v with
          | Some v -> check e v (fun bound -> inside ctx bound b)
          | None -> inside ctx bound b)
        cases;
      (match dvar with
      | Some v -> check e v (fun bound -> inside ctx bound dbody)
      | None -> inside ctx bound dbody)
    | Ifp { var; seed; body; accum } ->
      inside ctx bound seed;
      (match accum with
      | Some { weight = Some w; _ } -> inside ctx bound w
      | _ -> ());
      check e var (fun bound -> inside ctx bound body)
    | _ -> iter_children (inside ctx bound) e
  in
  let outside ctx =
    iter_deep (fun e ->
        match e with
        | Ifp { var; body; _ } -> inside ctx [ var ] body
        | _ -> ())
  in
  outside "main" p.main;
  List.iter (fun fd -> outside fd.fname fd.body) p.functions;
  List.iter
    (fun (v, e) -> outside (Printf.sprintf "variable $%s" v) e)
    p.variables;
  List.rev !out

(* ------------------------------------------------------------------ *)
(* Per-IFP reports *)

let program_functions (p : program) =
  let functions = Hashtbl.create 16 in
  List.iter (fun fd -> Hashtbl.replace functions fd.fname fd) p.functions;
  functions

let ifp_sites (p : program) =
  let acc = ref [] in
  let walk ctx = iter_deep (fun e ->
      match e with Ifp _ -> acc := (ctx, e) :: !acc | _ -> ())
  in
  walk "main" p.main;
  List.iter (fun fd -> walk fd.fname fd.body) p.functions;
  List.iter
    (fun (v, e) -> walk (Printf.sprintf "variable $%s" v) e)
    p.variables;
  List.rev !acc

let report_of ~functions ~stratified ?spans index (ctx, site) =
  match site with
  | Ifp { var; seed; body; accum } ->
    let syntactic_blame =
      Lang.Distributivity.blame_of ~functions ~stratified var body
    in
    let syntactic = syntactic_blame = None in
    let hint_repairable =
      (not syntactic)
      && (not (has_constructor body))
      && (not (Lang.Distributivity.mentions_position body))
      && (not (exists_deep (function Sort _ -> true | _ -> false) body))
      && (not (exists_deep (function Ifp _ -> true | _ -> false) body))
      && (match accum with
         | Some { kind; _ } -> kind = Semiring.Bool
         | None -> true)
    in
    {
      index;
      var;
      context = ctx;
      loc = loc_of spans (Some site);
      seed;
      body;
      node_only_seed = node_only ~env:[] seed;
      node_only_body = node_only ~env:[ var ] body;
      semiring = Option.map (fun (a : accum) -> a.kind) accum;
      divergence = classify ?accum ~var ~seed ~body ();
      syntactic;
      blame = syntactic_blame;
      hint_repairable;
    }
  | _ -> invalid_arg "report_of: not an IFP site"

let ifp_diags ?spans (r : ifp_report) =
  let at_ifp = r.loc in
  let blame_diags =
    match r.blame with
    | None -> []
    | Some b ->
      let reason = b.Lang.Distributivity.reason in
      let suffix =
        (* most reasons already name their rule *)
        if String.length reason >= 5 && String.sub reason 0 5 = "rule " then
          ""
        else Printf.sprintf " (rule %s)" b.Lang.Distributivity.rule
      in
      let d =
        Diag.make
          ~loc:(loc_of spans (Some b.Lang.Distributivity.blamed))
          ~code:"FQ030" ~severity:Diag.Warning ~context:r.context
          (Printf.sprintf "not distributive for $%s: %s%s" r.var reason
             suffix)
      in
      if r.hint_repairable then
        [
          d;
          Diag.make ~loc:at_ifp ~code:"FQ032" ~severity:Diag.Info
            ~context:r.context
            (Printf.sprintf
               "the distributivity hint can repair this recursion body \
                (fixq lint --fix-hints)");
        ]
      else [ d ]
  in
  let semiring_stability =
    Option.map Semiring.stability r.semiring
  in
  let divergence_diags =
    match r.divergence with
    | Terminates -> []
    | Bounded when semiring_stability = Some Semiring.P_stable ->
      [
        Diag.make ~loc:at_ifp ~code:"FQ044" ~severity:Diag.Info
          ~context:r.context
          (Printf.sprintf
             "accumulate by %s over $%s is p-stable: the node set \
              converges but annotations improve for up to |nodes| \
              extra rounds"
             (Semiring.kind_to_string
                (Option.get r.semiring))
             r.var);
      ]
    | Bounded ->
      [
        Diag.make ~loc:at_ifp ~code:"FQ041" ~severity:Diag.Info
          ~context:r.context
          (Printf.sprintf
             "fixed point over $%s is bounded but not node-only; serve \
              it with an iteration or time budget"
             r.var);
      ]
    | May_diverge reason when semiring_stability = Some Semiring.Unstable ->
      [
        Diag.make ~loc:at_ifp ~code:"FQ043" ~severity:Diag.Warning
          ~context:r.context
          (Printf.sprintf
             "unstable semiring: accumulate by %s over $%s may \
              diverge: %s"
             (Semiring.kind_to_string (Option.get r.semiring))
             r.var reason);
      ]
    | May_diverge reason ->
      [
        Diag.make ~loc:at_ifp ~code:"FQ040" ~severity:Diag.Warning
          ~context:r.context
          (Printf.sprintf "fixed point over $%s may diverge: %s" r.var
             reason);
      ]
  in
  blame_diags @ divergence_diags

(* ------------------------------------------------------------------ *)
(* Push-block → source mapping *)

let push_block_diag ?spans (r : ifp_report) (o : Push.outcome) =
  match o.Push.blocking with
  | None -> None
  | Some blocking ->
    let starts p = String.length blocking >= String.length p
                   && String.sub blocking 0 (String.length p) = p in
    let find p = find_deep p r.body in
    let culprit =
      if starts "\\" then
        find (function Except _ | Intersect _ -> true | _ -> false)
      else if starts "count" || starts "sum" || starts "max" || starts "min"
      then
        let name =
          match String.index_opt blocking ' ' with
          | Some i -> String.sub blocking 0 i
          | None -> blocking
        in
        find (function Call (f, _) -> f = name | _ -> false)
      else if starts "\xcc\xba" (* ̺ row-numbering *) then
        match
          find (function
            | Call (("position" | "last"), _) -> true
            | _ -> false)
        with
        | Some e -> Some e
        | None -> find (function Filter _ -> true | _ -> false)
      else if starts "#" || starts "document" || starts "text" then
        find (fun e -> has_constructor e && match e with
          | Elem_constr _ | Comp_elem _ | Text_constr _ | Attr_constr _
          | Comment_constr _ | Doc_constr _ -> true
          | _ -> false)
      else None
    in
    let loc =
      match culprit with Some c -> loc_of spans (Some c) | None -> r.loc
    in
    Some
      (Diag.make ~loc ~code:"FQ031" ~severity:Diag.Info ~context:r.context
         (Printf.sprintf
            "the algebraic \xe2\x88\xaa-push is blocked at plan operator \
             '%s'%s"
            blocking
            (match culprit with
            | Some _ -> " \xe2\x80\x94 introduced by this construct"
            | None -> "")))

(* ------------------------------------------------------------------ *)
(* Assembly *)

let analyze ?(stratified = false) ?spans (p : program) =
  let functions = program_functions p in
  let ifps =
    List.mapi (report_of ~functions ~stratified ?spans) (ifp_sites p)
  in
  let diagnostics =
    List.map (of_static ?spans) (Lang.Static.check_program p)
    @ unused_binding_diags ?spans p
    @ unused_function_diags ?spans p
    @ shadowing_diags ?spans p
    @ List.concat_map (ifp_diags ?spans) ifps
  in
  { diagnostics = List.stable_sort Diag.compare diagnostics; ifps }

let count_ifps (p : program) =
  List.length (ifp_sites p)

let scatter_eligible ?(stratified = false) (p : program) =
  count_ifps p = 1
  &&
  match p.main with
  (* Annotated fixpoints never scatter: the keyed gather merges node
     sets, not semiring annotations. *)
  | Ifp { var; seed; body; accum = None } ->
    classify ~var ~seed ~body () = Terminates
    && Lang.Distributivity.check
         ~functions:(program_functions p) ~stratified var body
  | _ -> false

(* ------------------------------------------------------------------ *)
(* IVM eligibility *)

type ivm_class = Ivm_full | Ivm_insert_only | Ivm_ineligible of string

let ivm_string = function
  | Ivm_full -> "full"
  | Ivm_insert_only -> "insert-only"
  | Ivm_ineligible _ -> "ineligible"

let ivm_reason = function
  | Ivm_full | Ivm_insert_only -> None
  | Ivm_ineligible r -> Some r

(* The maintenance grammar: expressions whose value from a context node
   depends only on that node's subtree ("downward"). For such bodies the
   producers whose output a patch can change are exactly the ancestors
   of the edit point, which is what makes the maintenance frontier
   sub-linear. Filters are allowed only when insert-monotone — an
   existing node's predicate can then flip false→true only by gaining
   descendants, i.e. only on the ancestor spine the frontier already
   re-feeds — and any filter at all downgrades eligibility to
   insert-only, because deletions can un-derive filtered results. *)
let downward_axis = function
  | Axis.Child | Axis.Descendant | Axis.Descendant_or_self | Axis.Self
  | Axis.Attribute ->
    true
  | _ -> false

let rec downward_check ~env ~filtered e =
  match e with
  | Var v -> List.mem v env
  | Empty_seq | Context_item -> true
  | Axis_step { axis; _ } -> downward_axis axis
  | Path (a, b) | Sequence (a, b) | Union (a, b) | Intersect (a, b) ->
    downward_check ~env ~filtered a && downward_check ~env ~filtered b
  | Let { var; value; body } ->
    downward_check ~env ~filtered value
    && downward_check ~env:(var :: env) ~filtered body
  | Call ("doc", [ Literal _ ]) -> true
  | Filter (a, p) ->
    filtered := true;
    downward_check ~env ~filtered a && monotone_pred ~env ~filtered p
  | _ -> false

and monotone_pred ~env ~filtered e =
  match e with
  | And (a, b) | Or (a, b) ->
    monotone_pred ~env ~filtered a && monotone_pred ~env ~filtered b
  | Gen_cmp (_, a, b) | Val_cmp (_, a, b) ->
    stable_operand ~env ~filtered a && stable_operand ~env ~filtered b
  | e -> downward_check ~env ~filtered e

(* Comparison operands whose value at an existing node a patch cannot
   change: literals, and downward paths ending in an attribute step
   (attribute values never change under subtree edits; only node
   insertion/removal does, which the frontier covers). *)
and stable_operand ~env ~filtered e =
  match e with
  | Literal _ -> true
  | Axis_step { axis = Axis.Attribute; _ } -> true
  | Path (a, b) ->
    downward_check ~env ~filtered a && stable_operand ~env ~filtered b
  | _ -> false

let ivm_eligibility ?(stratified = false) (p : program) : ivm_class =
  if count_ifps p <> 1 then
    Ivm_ineligible "the program must be a single top-level fixed point"
  else
    match p.main with
    | Ifp { accum = Some _; _ } ->
      Ivm_ineligible
        "annotated fixpoints are not maintained: a patch can change \
         annotations without changing the node set"
    | Ifp { var; seed; body; accum = None } ->
      if classify ~var ~seed ~body () <> Terminates then
        Ivm_ineligible "seed/body are not provably node-only"
      else if
        not
          (Lang.Distributivity.check
             ~functions:(program_functions p) ~stratified var body)
      then Ivm_ineligible "recursion body is not syntactically distributive"
      else begin
        (* Globals extend the environment only when filter-free
           downward themselves (they are re-evaluated against the
           patched document by the maintenance engine). *)
        let env0 =
          List.fold_left
            (fun env (v, e) ->
              let f = ref false in
              if downward_check ~env ~filtered:f e && not !f then v :: env
              else env)
            [] p.variables
        in
        let bf = ref false in
        let sf = ref false in
        if not (downward_check ~env:(var :: env0) ~filtered:bf body) then
          Ivm_ineligible
            "recursion body falls outside the downward maintenance grammar \
             (child/descendant/self/attribute steps, union/intersect, \
             insert-monotone predicates)"
        else if not (downward_check ~env:env0 ~filtered:sf seed) then
          Ivm_ineligible "seed falls outside the downward maintenance grammar"
        else if !bf || !sf then Ivm_insert_only
        else Ivm_full
      end
    | _ -> Ivm_ineligible "the fixed point is not the main expression"

let apply_hints (p : program) (a : t) =
  let repairable =
    List.filter_map
      (fun r -> if r.hint_repairable then Some r.index else None)
      a.ifps
  in
  let applied = ref 0 in
  let idx = ref (-1) in
  let rec go e =
    match e with
    | Ifp { var; seed; body; accum } ->
      incr idx;
      let i = !idx in
      let seed = go seed in
      let body = go body in
      if List.mem i repairable then begin
        incr applied;
        Ifp
          { var; seed; accum;
            body = Lang.Rewrite.distributivity_hint ~var body }
      end
      else Ifp { var; seed; body; accum }
    | e -> map_children go e
  in
  let main = go p.main in
  let functions =
    List.map (fun (fd : fundef) -> { fd with body = go fd.body }) p.functions
  in
  let variables = List.map (fun (v, e) -> (v, go e)) p.variables in
  ({ functions; variables; main }, !applied)
