type severity = Error | Warning | Info

type t = {
  code : string;
  severity : severity;
  loc : (int * int) option;
  context : string;
  message : string;
}

let severity_string = function
  | Error -> "error"
  | Warning -> "warning"
  | Info -> "info"

let to_text d =
  let pos =
    match d.loc with
    | Some (l, c) -> Printf.sprintf "%d:%d: " l c
    | None -> ""
  in
  Printf.sprintf "%s%s %s (%s): %s" pos (severity_string d.severity) d.code
    d.context d.message

let compare a b =
  let pos = function None -> (0, 0) | Some (l, c) -> (l, c) in
  match Stdlib.compare (pos a.loc) (pos b.loc) with
  | 0 -> Stdlib.compare a.code b.code
  | n -> n

let is_error d = d.severity = Error

let make ?(loc = None) ~code ~severity ~context message =
  { code; severity; loc; context; message }
