(** Located diagnostics with stable codes.

    Every finding the analyzer (or the parser, or {!Fixq_lang.Static})
    produces is rendered as one of these: a stable [FQ0xx] code, a
    severity, an optional source position ([line:col], 1-based) and the
    enclosing context (["main"], a function name, or ["variable $v"]).

    Code ranges:
    - [FQ001] parse/lex errors;
    - [FQ01x] name-resolution/arity errors and warnings from
      {!Fixq_lang.Static} ([FQ010] undefined variable, [FQ011] unknown
      function, [FQ012] wrong arity, [FQ013] duplicate function,
      [FQ014] duplicate parameter, [FQ015] IFP variable unused);
    - [FQ02x] lint warnings ([FQ020] unused [let] binding, [FQ021]
      unused [for] binding, [FQ022] unused declared function, [FQ023]
      shadowing inside an IFP body);
    - [FQ03x] distributivity ([FQ030] non-distributive with blame,
      [FQ031] algebraic ∪-push blocked, [FQ032] hint-repairable);
    - [FQ04x] divergence ([FQ040] may diverge, [FQ041] bounded). *)

type severity = Error | Warning | Info

type t = {
  code : string;  (** stable [FQ0xx] code *)
  severity : severity;
  loc : (int * int) option;  (** 1-based [line, col] when resolvable *)
  context : string;  (** enclosing function, ["main"], or ["parse"] *)
  message : string;
}

val severity_string : severity -> string

(** ["3:7: warning FQ020 (main): …"]; position prefix omitted when the
    node carries no span. *)
val to_text : t -> string

(** Source order: by position (unlocated first), then code. *)
val compare : t -> t -> int

val is_error : t -> bool

val make :
  ?loc:(int * int) option ->
  code:string ->
  severity:severity ->
  context:string ->
  string ->
  t
