(** The semiring-parameterized inflationary fixpoint kernel.

    Mirrors the shape of the engines' Delta loop (Figure 3(b)) but
    threads an {!Annot_acc}: an accumulator whose [absorb] merges
    incoming annotations with ⊕ ({!Semiring.improve}) and returns only
    the entries whose annotation strictly improved — the next round's
    frontier. Per-round cost stays O(|out| + |∆|), the PR-3 property.

    The kernel is closure-parameterized (per-node body application,
    weight lookup, stats recording) so it depends only on [fixq_xdm];
    the interpreter and the algebra engine's fallback both drive it. *)

module Item = Fixq_xdm.Item
module Node = Fixq_xdm.Node
module Atom = Fixq_xdm.Atom

exception Diverged of int

let default_max = 1_000_000

(* ------------------------------------------------------------------ *)
(* Annotated accumulator                                               *)
(* ------------------------------------------------------------------ *)

module Annot_acc = struct
  type t = {
    kind : Semiring.kind;
    anns : (int, Semiring.ann) Hashtbl.t;  (* node id → current ⊕-total *)
    nodes : (int, Node.t) Hashtbl.t;
    mutable size : int;
  }

  let create kind =
    { kind; anns = Hashtbl.create 256; nodes = Hashtbl.create 256; size = 0 }

  let size t = t.size

  (* Merge one annotated node; return its refeed increment if the
     stored annotation strictly improved. *)
  let merge t (n : Node.t) ann =
    match Hashtbl.find_opt t.anns n.Node.id with
    | None ->
      Hashtbl.replace t.anns n.Node.id ann;
      Hashtbl.replace t.nodes n.Node.id n;
      t.size <- t.size + 1;
      Some ann
    | Some old -> (
      match Semiring.improve t.kind ~old ~incoming:ann with
      | None -> None
      | Some (updated, increment) ->
        Hashtbl.replace t.anns n.Node.id updated;
        Some increment)

  (* Absorb a round's annotated output. Returns the strictly improved
     entries sorted by node id (document order for stored trees), so
     the next round's frontier is deterministic. A node improved by
     several sources in the same round yields one entry whose increment
     is the ⊕ of the individual increments — keeping an arbitrary one
     (e.g. an early improvement later superseded) would propagate a
     stale annotation downstream. *)
  let absorb t entries =
    let fresh = Hashtbl.create 16 in
    List.iter
      (fun ((n : Node.t), ann) ->
        match merge t n ann with
        | None -> ()
        | Some inc -> (
          match Hashtbl.find_opt fresh n.Node.id with
          | None -> Hashtbl.replace fresh n.Node.id (n, inc)
          | Some (_, prev) ->
            Hashtbl.replace fresh n.Node.id (n, Semiring.plus t.kind prev inc)))
      entries;
    Hashtbl.fold (fun _ e acc -> e :: acc) fresh []
    |> List.sort (fun ((a : Node.t), _) ((b : Node.t), _) ->
           compare a.Node.id b.Node.id)

  let entries t =
    Hashtbl.fold (fun id n acc -> (n, Hashtbl.find t.anns id) :: acc) t.nodes []
    |> List.sort (fun ((a : Node.t), _) ((b : Node.t), _) ->
           compare a.Node.id b.Node.id)

  let to_seq t = List.map (fun (n, _) -> Item.N n) (entries t)
  let find t (n : Node.t) = Hashtbl.find_opt t.anns n.Node.id
end

let node_of ~who = function
  | Item.N n -> n
  | Item.A a ->
    Atom.type_error "%s: expected a sequence of nodes, got atom %s" who
      (Atom.to_string a)

(* ------------------------------------------------------------------ *)
(* Boolean kernel: the paper's loops over an annotated accumulator      *)
(* ------------------------------------------------------------------ *)

(* [accumulate by bool] is today's IFP run through the semiring
   machinery: Mark annotations, batch feeding, and the same
   naive-vs-delta choice the legacy loop makes — so results (and the
   recorded round statistics) are byte-identical to [Fixpoint.naive]/
   [Fixpoint.delta] by construction. *)
let run_bool ?(max_iterations = default_max) ~use_delta ~record ~body ~seed ()
    =
  let acc = Annot_acc.create Semiring.Bool in
  let absorb items =
    let n0 = Annot_acc.size acc in
    let fresh =
      Annot_acc.absorb acc
        (List.map (fun it -> (node_of ~who:"accumulate" it, Semiring.Mark)) items)
    in
    (List.map (fun (n, _) -> Item.N n) fresh, Annot_acc.size acc - n0)
  in
  let seed_n = List.length seed in
  let first = body seed in
  let first_n = List.length first in
  let (fresh, _) = absorb first in
  record ~fed:seed_n ~produced:first_n ~result_size:(Annot_acc.size acc);
  let rec loop fresh i =
    if i > max_iterations then raise (Diverged i);
    let input = if use_delta then fresh else Annot_acc.to_seq acc in
    let fed = List.length input in
    let out = body input in
    let out_n = List.length out in
    let (fresh, fresh_n) = absorb out in
    record ~fed ~produced:out_n ~result_size:(Annot_acc.size acc);
    if fresh_n = 0 then acc else loop fresh (i + 1)
  in
  loop fresh 1

(* ------------------------------------------------------------------ *)
(* Annotated kernel: per-node feeding with ⊕-merge and ∆-refeed         *)
(* ------------------------------------------------------------------ *)

(* Non-boolean kinds feed the body one frontier node at a time so each
   produced node's annotation can be ⊗-extended from its source:
   candidate = src_ann ⊗ weight(produced). The frontier for the next
   round is exactly the set of strict improvements — for [Min] this is
   Bellman-Ford over the derivation graph; for [Count] the increments
   propagate path multiplicities; for [Why] the newly discovered
   witnesses. Seeds carry {!Semiring.seed_ann} but (as in the paper's
   loop) only enter the result if the body derives them. *)
let run_annotated ?(max_iterations = default_max) ~kind ~record ~step ~weight
    ~seed () =
  let acc = Annot_acc.create kind in
  let weight_of =
    match weight with
    | Some w when Semiring.takes_weight kind -> fun n -> Some (w n)
    | _ -> fun _ -> None
  in
  let feed (src, src_ann) =
    let out = step src in
    List.map
      (fun it ->
        let n = node_of ~who:"accumulate" it in
        (n, Semiring.extend kind src_ann (weight_of n)))
      out
  in
  let frontier =
    List.map (fun it ->
        let n = node_of ~who:"accumulate" it in
        (n, Semiring.seed_ann kind n))
      seed
  in
  let rec loop frontier i =
    if i > max_iterations then raise (Diverged i);
    let fed = List.length frontier in
    let out = List.concat_map feed frontier in
    let fresh = Annot_acc.absorb acc out in
    record ~fed ~produced:(List.length out)
      ~result_size:(Annot_acc.size acc);
    if fresh = [] then acc else loop fresh (i + 1)
  in
  loop frontier 1

(* Dispatch on the kind: [Bool] batches (legacy parity), the rest run
   the per-node annotated loop. *)
let run ?max_iterations ~kind ~use_delta ~record ~body ~step ~weight ~seed ()
    =
  match kind with
  | Semiring.Bool -> run_bool ?max_iterations ~use_delta ~record ~body ~seed ()
  | _ -> run_annotated ?max_iterations ~kind ~record ~step ~weight ~seed ()
