(** Annotation semirings for inflationary fixed points.

    The paper's IFP accumulates a plain node set — the boolean semiring:
    a node is in or out. Following "Convergence of Datalog over
    (Pre-)Semirings" (Abo Khamis et al.) and Zaniolo et al.'s
    aggregate-fixpoint work, the same inflationary loop runs over any
    naturally ordered semiring: each accumulated node carries an
    annotation, [absorb] merges annotations with the semiring's ⊕, and
    only nodes whose annotation {e strictly improved} are re-fed — so
    the |∆|-scaling of the Delta loop carries over unchanged.

    Convergence is classified by semiring stability:
    - stable semirings ([Bool], [Max], [Why]) reach a fixpoint in at
      most |domain| rounds — the loop terminates;
    - p-stable semirings ([Min], the tropical semiring) converge within
      a polynomial round bound — termination is bounded but annotations
      may improve after the node set has stabilized;
    - unstable semirings ([Count], ℕ under +) diverge on cyclic data —
      the query may diverge and needs an explicit budget. *)

module Node = Fixq_xdm.Node

module Int_set = Set.Make (Int)

type kind =
  | Bool  (** set membership — the paper's IFP, byte-identical *)
  | Count  (** ⊕ = +: number of distinct derivations per node *)
  | Max  (** ⊕ = max, ⊗ = min: widest-bottleneck annotation *)
  | Min  (** ⊕ = min, ⊗ = +: tropical semiring, cheapest derivation *)
  | Why  (** ⊕ = ∪ over seed-witness sets: why-provenance *)

let kind_to_string = function
  | Bool -> "bool"
  | Count -> "count"
  | Max -> "max"
  | Min -> "min"
  | Why -> "why"

let kind_of_string = function
  | "bool" -> Some Bool
  | "count" -> Some Count
  | "max" -> Some Max
  | "min" -> Some Min
  | "why" -> Some Why
  | _ -> None

let pp_kind ppf k = Format.pp_print_string ppf (kind_to_string k)
let show_kind = kind_to_string
let equal_kind (a : kind) (b : kind) = a = b

(** Does the accumulate kind take a weight expression? [Min]/[Max]
    extend a source annotation with the produced node's weight; the
    other kinds propagate annotations structurally. *)
let takes_weight = function Min | Max -> true | Bool | Count | Why -> false

type stability = Stable | P_stable | Unstable

let stability = function
  | Bool | Max | Why -> Stable
  | Min -> P_stable
  | Count -> Unstable

let stability_string = function
  | Stable -> "stable"
  | P_stable -> "p-stable"
  | Unstable -> "unstable"

(* ------------------------------------------------------------------ *)
(* Annotations                                                         *)
(* ------------------------------------------------------------------ *)

type ann =
  | Mark  (** [Bool]: presence *)
  | Num of float  (** [Count]/[Min]/[Max] *)
  | Wit of Int_set.t  (** [Why]: ids of the seed nodes this node derives from *)

let num = function
  | Num f -> f
  | Mark | Wit _ -> invalid_arg "Semiring.num: not a numeric annotation"

(* Annotation of a seed node: the ⊗-neutral starting point of every
   derivation rooted at it. *)
let seed_ann kind (n : Node.t) =
  match kind with
  | Bool -> Mark
  | Count -> Num 1.0  (* one derivation: the seed itself *)
  | Min -> Num 0.0  (* zero accumulated cost *)
  | Max -> Num infinity  (* an unconstrained bottleneck *)
  | Why -> Wit (Int_set.singleton n.Node.id)

(* ⊗: extend a source annotation across one derivation step onto a
   produced node whose weight is [w] ([None] for weightless kinds). *)
let extend kind src w =
  match (kind, src) with
  | (Bool, _) -> Mark
  | (Count, a) -> a  (* each derivation of the source yields one here *)
  | (Min, Num c) -> Num (c +. Option.value ~default:0.0 w)
  | (Max, Num c) -> Num (Float.min c (Option.value ~default:infinity w))
  | (Why, a) -> a
  | ((Min | Max), _) -> invalid_arg "Semiring.extend: non-numeric annotation"

(* ⊕ with strict-improvement detection. [improve ~old ~incoming] returns
   the updated stored annotation together with the {e increment} to
   re-feed, or [None] when the incoming annotation is absorbed without
   change. The increment is what downstream nodes still need to see:
   the new best value for [Min]/[Max], the count delta for [Count], the
   genuinely new witnesses for [Why]. *)
let improve kind ~old ~incoming =
  match (kind, old, incoming) with
  | (Bool, Mark, Mark) -> None
  | (Count, Num c, Num d) -> if d = 0.0 then None else Some (Num (c +. d), Num d)
  | (Min, Num c, Num d) -> if d < c then Some (Num d, Num d) else None
  | (Max, Num c, Num d) -> if d > c then Some (Num d, Num d) else None
  | (Why, Wit s, Wit s') ->
    let fresh = Int_set.diff s' s in
    if Int_set.is_empty fresh then None
    else Some (Wit (Int_set.union s s'), Wit fresh)
  | _ -> invalid_arg "Semiring.improve: annotation does not match the kind"

(* Raw ⊕ without improvement detection: combines several same-round
   increments for one node into the single refeed entry the next round
   should see (best value for [Min]/[Max], summed delta for [Count],
   witness union for [Why]). *)
let plus kind a b =
  match (kind, a, b) with
  | (Bool, Mark, Mark) -> Mark
  | (Count, Num c, Num d) -> Num (c +. d)
  | (Min, Num c, Num d) -> Num (Float.min c d)
  | (Max, Num c, Num d) -> Num (Float.max c d)
  | (Why, Wit s, Wit s') -> Wit (Int_set.union s s')
  | _ -> invalid_arg "Semiring.plus: annotation does not match the kind"

let float_to_string f =
  if Float.is_integer f && Float.abs f < 1e15 then
    string_of_int (int_of_float f)
  else if f = infinity then "INF"
  else Printf.sprintf "%g" f

let ann_to_string = function
  | Mark -> "true"
  | Num f -> float_to_string f
  | Wit s ->
    "{"
    ^ String.concat "," (List.map string_of_int (Int_set.elements s))
    ^ "}"

let equal_ann a b =
  match (a, b) with
  | (Mark, Mark) -> true
  | (Num x, Num y) -> Float.equal x y
  | (Wit x, Wit y) -> Int_set.equal x y
  | _ -> false
