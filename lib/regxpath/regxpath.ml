module Axis = Fixq_xdm.Axis
module Node = Fixq_xdm.Node
module Item = Fixq_xdm.Item
module Ast = Fixq_lang.Ast
module Eval = Fixq_lang.Eval

type t =
  | Step of Axis.t * Axis.test
  | Seq of t * t
  | Alt of t * t
  | Plus of t
  | Star of t
  | Opt of t
  | Test of t
  | Self

exception Parse_error of string

let fail fmt = Format.kasprintf (fun s -> raise (Parse_error s)) fmt

(* ------------------------------------------------------------------ *)
(* Parser                                                              *)
(* ------------------------------------------------------------------ *)

type pstate = { src : string; mutable pos : int }

let peek st = if st.pos < String.length st.src then st.src.[st.pos] else '\000'

let advance st = st.pos <- st.pos + 1

let skip_ws st =
  while peek st = ' ' || peek st = '\t' || peek st = '\n' do
    advance st
  done

let is_name_char c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || (c >= '0' && c <= '9')
  || c = '_' || c = '-'

let read_name st =
  let start = st.pos in
  while is_name_char (peek st) do
    advance st
  done;
  if st.pos = start then fail "expected a name at offset %d" start;
  String.sub st.src start (st.pos - start)

let rec parse_alt st =
  let left = parse_seq st in
  skip_ws st;
  if peek st = '|' then begin
    advance st;
    skip_ws st;
    Alt (left, parse_alt st)
  end
  else left

and parse_seq st =
  let left = parse_postfix st in
  skip_ws st;
  if peek st = '/' then begin
    advance st;
    skip_ws st;
    Seq (left, parse_seq st)
  end
  else left

and parse_postfix st =
  let rec go p =
    skip_ws st;
    match peek st with
    | '+' ->
      advance st;
      go (Plus p)
    | '*' ->
      advance st;
      go (Star p)
    | '?' ->
      advance st;
      go (Opt p)
    | '[' ->
      advance st;
      skip_ws st;
      let filter = parse_alt st in
      skip_ws st;
      if peek st <> ']' then fail "expected ']'";
      advance st;
      (* p[q] filters the targets of p on the existence of q *)
      go (Seq (p, Test filter))
    | _ -> p
  in
  go (parse_primary st)

and parse_primary st =
  skip_ws st;
  match peek st with
  | '(' ->
    advance st;
    let p = parse_alt st in
    skip_ws st;
    if peek st <> ')' then fail "expected ')'";
    advance st;
    p
  | '.' ->
    advance st;
    if peek st = '.' then begin
      advance st;
      Step (Axis.Parent, Axis.Kind_node)
    end
    else Self
  | '@' ->
    advance st;
    let n = read_name st in
    Step (Axis.Attribute, Axis.Name n)
  | c when is_name_char c -> (
    let n = read_name st in
    if peek st = ':' && st.pos + 1 < String.length st.src
       && st.src.[st.pos + 1] = ':'
    then begin
      advance st;
      advance st;
      match Axis.axis_of_string n with
      | None -> fail "unknown axis %S" n
      | Some axis ->
        let test =
          if peek st = '*' then begin
            advance st;
            Axis.Name "*"
          end
          else
            let tn = read_name st in
            if peek st = '(' then begin
              advance st;
              if peek st <> ')' then fail "expected ')'";
              advance st;
              match tn with
              | "node" -> Axis.Kind_node
              | "text" -> Axis.Kind_text
              | "comment" -> Axis.Kind_comment
              | "element" -> Axis.Kind_element None
              | _ -> fail "unknown kind test %S" tn
            end
            else Axis.Name tn
        in
        Step (axis, test)
    end
    else Step (Axis.Child, Axis.Name n))
  | '*' ->
    advance st;
    Step (Axis.Child, Axis.Name "*")
  | c -> fail "unexpected character %C at offset %d" c st.pos

let parse src =
  let st = { src; pos = 0 } in
  let p = parse_alt st in
  skip_ws st;
  if st.pos <> String.length src then
    fail "trailing input at offset %d" st.pos;
  p

let rec pp ppf = function
  | Step (axis, test) ->
    Format.fprintf ppf "%s::%a" (Axis.axis_to_string axis) Axis.pp_test test
  | Seq (a, b) -> Format.fprintf ppf "%a/%a" pp a pp b
  | Alt (a, b) -> Format.fprintf ppf "(%a|%a)" pp a pp b
  | Plus p -> Format.fprintf ppf "(%a)+" pp p
  | Star p -> Format.fprintf ppf "(%a)*" pp p
  | Opt p -> Format.fprintf ppf "(%a)?" pp p
  | Test p -> Format.fprintf ppf "[%a]" pp p
  | Self -> Format.pp_print_string ppf "."

(* ------------------------------------------------------------------ *)
(* Translation to IFP                                                  *)
(* ------------------------------------------------------------------ *)

let rec to_ifp = function
  | Self -> Ast.Context_item
  | Step (axis, test) -> Ast.Axis_step { axis; test }
  | Seq (a, b) -> Ast.Path (to_ifp a, to_ifp b)
  | Alt (a, b) -> Ast.Union (to_ifp a, to_ifp b)
  | Test p -> Ast.Filter (Ast.Context_item, to_ifp p)
  | Opt p -> Ast.Union (Ast.Context_item, to_ifp p)
  | Star p -> Ast.Union (Ast.Context_item, to_ifp (Plus p))
  | Plus p ->
    (* s+ ≡ with $x seeded by . recurse $x/s — the body is
       distributivity-safe by construction (rule STEP2). *)
    let var = Ast.fresh_var "rx" in
    Ast.Ifp
      { var; seed = Ast.Context_item;
        body = Ast.Path (Ast.Var var, to_ifp p); accum = None }

let eval ?(strategy = Eval.Auto) starts p =
  let e = to_ifp p in
  let ev = Eval.create ~strategy () in
  let results =
    List.concat_map
      (fun n -> Eval.eval_expr ev ~context:(Item.N n) e)
      starts
  in
  Item.as_node_seq "Regxpath.eval" (Item.ddo results)

(* ------------------------------------------------------------------ *)
(* Reference semantics (test oracle)                                   *)
(* ------------------------------------------------------------------ *)

let dedup nodes =
  let seen = Hashtbl.create 64 in
  List.filter
    (fun (n : Node.t) ->
      if Hashtbl.mem seen n.Node.id then false
      else begin
        Hashtbl.add seen n.Node.id ();
        true
      end)
    nodes

let rec sem p nodes =
  match p with
  | Self -> nodes
  | Step (axis, test) -> dedup (List.concat_map (Axis.step axis test) nodes)
  | Seq (a, b) -> sem b (sem a nodes)
  | Alt (a, b) -> dedup (sem a nodes @ sem b nodes)
  | Opt q -> dedup (nodes @ sem q nodes)
  | Test q -> List.filter (fun n -> sem q [ n ] <> []) nodes
  | Star q -> dedup (nodes @ sem (Plus q) nodes)
  | Plus q ->
    let seen = Hashtbl.create 64 in
    let acc = ref [] in
    let rec grow frontier =
      let next =
        List.filter
          (fun (n : Node.t) ->
            if Hashtbl.mem seen n.Node.id then false
            else begin
              Hashtbl.add seen n.Node.id ();
              true
            end)
          (sem q frontier)
      in
      if next <> [] then begin
        acc := next @ !acc;
        grow next
      end
    in
    grow nodes;
    !acc

let eval_reference starts p =
  List.sort Node.compare_doc_order (sem p starts)
