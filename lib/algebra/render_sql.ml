(* Plan → SQL:1999 renderer (Section 2 / Section 6 of the paper).

   A µ/µ∆ site whose body stays inside the step/id/data spine of the
   Table-1 dialect is exactly a linear WITH RECURSIVE query over
   materialized document relations:

     - step_k(src, dst)   the transition relation of one (axis, test)
                          step, over every node of the document
     - val_k(src, v)      string values of the nodes reachable by
                          step_k (fn:data)
     - ids_k(v, dst)      fn:id resolution of the strings in val_k
     - seed(iter, item)   the loop-lifted seed relation

   Nodes are encoded by their stable preorder ids (integers), strings
   stay strings — the cell vocabulary of {!Fixq_sqlrec.Sqldb}.

   Rendering is static: it decides renderability and emits the SQL text
   from the plan alone. {!prepare} additionally materializes the tables
   against a seed's document and parses the emitted text back through
   {!Fixq_sqlrec.Sqlrec.parse}, so the query fed to the SQL engine is
   by construction inside the grammar the engine accepts. *)

module Axis = Fixq_xdm.Axis
module Node = Fixq_xdm.Node
module Sqlrec = Fixq_sqlrec.Sqlrec
module Sqldb = Fixq_sqlrec.Sqldb

type rendered = {
  sql : string;
  steps : (Axis.t * Axis.test) list;  (** step_k is the k-th entry *)
  vals : int list;  (** step indices whose val_k table is required *)
  ids : int list;  (** step indices whose ids_k table is required *)
}

let rec_table = "fixpoint"
let seed_table = "seed"

exception Unrenderable of string

let fail fmt = Format.kasprintf (fun s -> raise (Unrenderable s)) fmt

(* ------------------------------------------------------------------ *)
(* Normalization                                                       *)
(* ------------------------------------------------------------------ *)

(* Templates and Iterate markers are evaluation-transparent. *)
let rec strip (p : Plan.t) : Plan.t =
  match p with
  | Plan.Template (_, q) -> strip q
  | Plan.Iterate it -> strip it.Plan.it_result
  | Plan.Lit_table _ | Plan.Doc _ | Plan.Fix_ref _ -> p
  | Plan.Project (c, q) -> Plan.Project (c, strip q)
  | Plan.Select (c, q) -> Plan.Select (c, strip q)
  | Plan.Join (pr, a, b) -> Plan.Join (pr, strip a, strip b)
  | Plan.Cross (a, b) -> Plan.Cross (strip a, strip b)
  | Plan.Distinct q -> Plan.Distinct (strip q)
  | Plan.Union (a, b) -> Plan.Union (strip a, strip b)
  | Plan.Difference (a, b) -> Plan.Difference (strip a, strip b)
  | Plan.Aggr (a, s, q) -> Plan.Aggr (a, s, strip q)
  | Plan.Fun (f, s, q) -> Plan.Fun (f, s, strip q)
  | Plan.Tag (c, q) -> Plan.Tag (c, strip q)
  | Plan.Row_num (s, q) -> Plan.Row_num (s, strip q)
  | Plan.Step (a, t, c, q) -> Plan.Step (a, t, c, strip q)
  | Plan.Id_join (a, b) -> Plan.Id_join (strip a, strip b)
  | Plan.Construct (k, q) -> Plan.Construct (k, strip q)
  | Plan.Mu f -> Plan.Mu { f with Plan.seed = strip f.Plan.seed; body = strip f.Plan.body }
  | Plan.Mu_delta f ->
    Plan.Mu_delta { f with Plan.seed = strip f.Plan.seed; body = strip f.Plan.body }

(* Structural equality restricted to the tiny shapes the loop wrapper
   re-tags (δ/π over the recursion leaf). Anything larger — in
   particular plans that could hold node-valued literal cells, on which
   polymorphic compare is unsafe — compares unequal, which only makes
   the normalization conservative. *)
let rec small_eq (a : Plan.t) (b : Plan.t) =
  match (a, b) with
  | (Plan.Fix_ref (i, s), Plan.Fix_ref (j, t)) -> i = j && s = t
  | (Plan.Distinct x, Plan.Distinct y) -> small_eq x y
  | (Plan.Project (c, x), Plan.Project (d, y)) -> c = d && small_eq x y
  | (Plan.Tag (c, x), Plan.Tag (d, y)) -> c = d && small_eq x y
  | _ -> false

(* The compiler's loop-lifting wrapper: the body of a [for]/path
   iteration re-tags each (iter, item) context row with a fresh [inner]
   id, runs the per-row computation with [inner] as its iteration
   column, and joins the original [iter] back at the end:

     δ? (π[iter:iter', item] (⋈_{iter=inner} (CORE,
                                π[iter,inner] (#inner (BASE)))))

   where CORE reads its context through π[iter:inner,item](#inner(BASE)).
   Because the per-row computation is driven by [item] only — [inner]
   is threaded, never inspected — substituting BASE for that reader and
   dropping the closing join is an identity: each context row keeps its
   original iteration id all the way through. *)
let unwrap_loop (p : Plan.t) : Plan.t =
  let rewrap, p =
    match p with Plan.Distinct q -> ((fun x -> Plan.Distinct x), q) | _ -> ((fun x -> x), p)
  in
  match p with
  | Plan.Project
      ( [ ("iter", iter_src); ("item", "item") ],
        Plan.Join
          ( { Plan.equi = [ ("iter", "inner") ]; theta = [] },
            core,
            Plan.Project (wrap_cols, Plan.Tag ("inner", base)) ) )
    when iter_src = "iter'"
         && List.sort compare (List.map fst wrap_cols) = [ "inner"; "iter" ]
         && List.for_all (fun (n, o) -> n = o) wrap_cols ->
    let substituted = ref false in
    let rec sub q =
      match q with
      | Plan.Project ([ ("iter", "inner"); ("item", "item") ], Plan.Tag ("inner", base'))
        when small_eq base base' ->
        substituted := true;
        base'
      | Plan.Project (c, q) -> Plan.Project (c, sub q)
      | Plan.Select (c, q) -> Plan.Select (c, sub q)
      | Plan.Distinct q -> Plan.Distinct (sub q)
      | Plan.Fun (f, s, q) -> Plan.Fun (f, s, sub q)
      | Plan.Step (a, t, c, q) -> Plan.Step (a, t, c, sub q)
      | Plan.Id_join (a, b) -> Plan.Id_join (sub a, sub b)
      | Plan.Join (pr, a, b) -> Plan.Join (pr, sub a, sub b)
      | Plan.Cross (a, b) -> Plan.Cross (sub a, sub b)
      | Plan.Union (a, b) -> Plan.Union (sub a, sub b)
      | q -> q
    in
    let core = sub core in
    if !substituted then rewrap core else rewrap (Plan.Project ([ ("iter", "iter"); ("item", "item") ], core))
  | _ -> rewrap p

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)
(* ------------------------------------------------------------------ *)

(* Where a column's values come from, so table materialization can stay
   keyed to the node universes that actually flow through the query. *)
type dom =
  | Dnode  (** document nodes out of the recursion input or an id lookup *)
  | Dstep of int  (** dst nodes of step table k *)
  | Dval of int  (** string values of val table k *)
  | Dother  (** iteration ids and other non-item columns *)

type state = {
  mutable steps : (Axis.t * Axis.test) list;  (* reversed *)
  mutable nsteps : int;
  mutable vals : int list;
  mutable ids : int list;
  mutable naliases : int;
  mutable rec_refs : int;
}

type frag = {
  from : (string * string) list;  (* (table, alias), reversed *)
  where : (string * string) list;  (* "a.c" = "b.c", reversed *)
  cols : (string * (string * dom)) list;  (* schema col → (operand, domain) *)
}

let alias st =
  let a = Printf.sprintf "a%d" st.naliases in
  st.naliases <- st.naliases + 1;
  a

let step_index st axis test =
  let rec find i = function
    | [] -> None
    | (a, t) :: _ when a = axis && t = test -> Some (st.nsteps - 1 - i)
    | _ :: r -> find (i + 1) r
  in
  match find 0 st.steps with
  | Some k -> k
  | None ->
    st.steps <- (axis, test) :: st.steps;
    st.nsteps <- st.nsteps + 1;
    st.nsteps - 1

let col_of frag c =
  match List.assoc_opt c frag.cols with
  | Some x -> x
  | None -> fail "internal: column %s lost during rendering" c

(* Does [p] read exactly the recursion input (modulo δ and π renamings)?
   Used for the context side of ⋈id, which contributes only the lookup
   roots: under the single-document precondition checked by {!prepare}
   those are constant, so the reference neither appears in the SQL nor
   counts against SQL:1999 linearity. *)
let rec is_rec_input fix_id (p : Plan.t) =
  match p with
  | Plan.Fix_ref (i, _) -> i = fix_id
  | Plan.Distinct q | Plan.Project (_, q) -> is_rec_input fix_id q
  | _ -> false

let rec render_plan st ~fix_id (p : Plan.t) : frag =
  match p with
  | Plan.Fix_ref (i, schema) when i = fix_id ->
    st.rec_refs <- st.rec_refs + 1;
    if st.rec_refs > 1 then
      fail "the recursion input is referenced more than once (SQL:1999 linearity)";
    let a = alias st in
    { from = [ (rec_table, a) ];
      where = [];
      cols =
        List.map
          (fun c -> (c, (a ^ "." ^ c, if c = "item" then Dnode else Dother)))
          schema }
  | Plan.Fix_ref (_, _) ->
    fail "the body reads a free variable binding (no relational rendering)"
  | Plan.Distinct q ->
    (* WITH RECURSIVE iterates with set semantics: every round is
       distinct already, so inner δ is the identity here. *)
    render_plan st ~fix_id q
  | Plan.Project (cols, q) ->
    let f = render_plan st ~fix_id q in
    { f with cols = List.map (fun (n, o) -> (n, col_of f o)) cols }
  | Plan.Step (axis, test, c, q) ->
    let f = render_plan st ~fix_id q in
    let (op, d) = col_of f c in
    (match d with
    | Dnode | Dstep _ -> ()
    | Dval _ | Dother -> fail "axis step over a non-node column");
    let k = step_index st axis test in
    let a = alias st in
    { from = (Printf.sprintf "step_%d" k, a) :: f.from;
      where = (op, a ^ ".src") :: f.where;
      cols =
        List.map
          (fun (n, v) -> if n = c then (n, (a ^ ".dst", Dstep k)) else (n, v))
          f.cols }
  | Plan.Fun (Plan.P_data, spec, q) ->
    let f = render_plan st ~fix_id q in
    let arg =
      match spec.Plan.fun_args with
      | [ a ] -> a
      | _ -> fail "fn:data over %d columns" (List.length spec.Plan.fun_args)
    in
    let (op, d) = col_of f arg in
    let k =
      match d with
      | Dstep k -> k
      | _ -> fail "fn:data is only rendered over axis-step results"
    in
    if not (List.mem k st.vals) then st.vals <- k :: st.vals;
    let a = alias st in
    { from = (Printf.sprintf "val_%d" k, a) :: f.from;
      where = (op, a ^ ".src") :: f.where;
      cols = f.cols @ [ (spec.Plan.fun_result, (a ^ ".v", Dval k)) ] }
  | Plan.Id_join (ctx, arg) ->
    if not (is_rec_input fix_id ctx) then
      fail "fn:id over a context other than the recursion input";
    let f = render_plan st ~fix_id arg in
    let (op, d) = col_of f "item" in
    let k =
      match d with
      | Dval k -> k
      | _ -> fail "fn:id argument is not a rendered string column"
    in
    if not (List.mem k st.ids) then st.ids <- k :: st.ids;
    let a = alias st in
    { from = (Printf.sprintf "ids_%d" k, a) :: f.from;
      where = (op, a ^ ".v") :: f.where;
      cols =
        List.map
          (fun (n, v) -> if n = "item" then (n, (a ^ ".dst", Dnode)) else (n, v))
          f.cols }
  | p -> fail "operator %s has no SQL:1999 rendering" (Plan.op_symbol p)

let render ~fix_id (body : Plan.t) : (rendered, string) result =
  let st =
    { steps = []; nsteps = 0; vals = []; ids = []; naliases = 0; rec_refs = 0 }
  in
  match
    let body = unwrap_loop (strip body) in
    let f = render_plan st ~fix_id body in
    let (iter_op, _) = col_of f "iter" in
    let (item_op, d) = col_of f "item" in
    (match d with
    | Dnode | Dstep _ -> ()
    | Dval _ | Dother -> fail "the body yields atoms, not nodes");
    if st.rec_refs = 0 then fail "the body never reads the recursion input";
    (* IFP semantics (Figure 3): the result accumulates body outputs
       only — the seed just feeds the first round. So the
       non-recursive member is the body select read over the seed
       relation instead of the recursive table. *)
    let from_over start =
      String.concat ", "
        (List.rev_map
           (fun (t, a) -> (if t = rec_table then start else t) ^ " " ^ a)
           f.from)
    in
    let where =
      match List.rev f.where with
      | [] -> ""
      | ws ->
        "\n     WHERE "
        ^ String.concat " AND " (List.map (fun (l, r) -> l ^ " = " ^ r) ws)
    in
    let member start =
      Printf.sprintf "(SELECT %s, %s\n     FROM %s%s)" iter_op item_op
        (from_over start) where
    in
    Printf.sprintf
      "WITH RECURSIVE %s(iter, item) AS (\n\
      \    %s\n\
      \  UNION ALL\n\
      \    %s\n\
       )\n\
       SELECT DISTINCT iter, item FROM %s"
      rec_table (member seed_table) (member rec_table) rec_table
  with
  | sql ->
    Ok
      { sql;
        steps = List.rev st.steps;
        vals = List.sort compare st.vals;
        ids = List.sort compare st.ids }
  | exception Unrenderable reason -> Error reason

(* ------------------------------------------------------------------ *)
(* Table materialization                                               *)
(* ------------------------------------------------------------------ *)

type tables = {
  named : (string * Sqldb.table) list;
  decode : (int, Node.t) Hashtbl.t;
}

(* All nodes of the tree under [root], attributes included (they can be
   step destinations and then step sources). *)
let universe root =
  let out = ref [] in
  let rec walk n =
    out := n :: !out;
    Array.iter walk n.Node.attributes;
    Array.iter walk n.Node.children
  in
  walk root;
  List.rev !out

let whitespace_tokens s =
  String.split_on_char ' ' s
  |> List.concat_map (String.split_on_char '\n')
  |> List.concat_map (String.split_on_char '\t')
  |> List.concat_map (String.split_on_char '\r')
  |> List.filter (fun t -> t <> "")

(* Materialize the document relations [r] requires against [root]. *)
let materialize (r : rendered) (root : Node.t) : tables =
  let decode = Hashtbl.create 256 in
  let uni = universe root in
  List.iter (fun n -> Hashtbl.replace decode n.Node.id n) uni;
  let step_tbls =
    List.map
      (fun (axis, test) ->
        let rows = ref [] in
        List.iter
          (fun src ->
            List.iter
              (fun dst ->
                rows := [ Sqldb.I src.Node.id; Sqldb.I dst.Node.id ] :: !rows)
              (Axis.step axis test src))
          uni;
        { Sqldb.columns = [ "src"; "dst" ]; rows = List.rev !rows })
      r.steps
  in
  let dsts k =
    let tbl = List.nth step_tbls k in
    let seen = Hashtbl.create 64 in
    List.filter_map
      (fun row ->
        match row with
        | [ _; Sqldb.I d ] when not (Hashtbl.mem seen d) ->
          Hashtbl.replace seen d ();
          Hashtbl.find_opt decode d
        | _ -> None)
      tbl.Sqldb.rows
  in
  let val_tbls =
    List.map
      (fun k ->
        let rows =
          List.map
            (fun n -> [ Sqldb.I n.Node.id; Sqldb.S (Node.string_value n) ])
            (dsts k)
        in
        (k, { Sqldb.columns = [ "src"; "v" ]; rows }))
      r.vals
  in
  let id_tbls =
    List.map
      (fun k ->
        let strings = Hashtbl.create 64 in
        List.iter
          (fun n ->
            let s = Node.string_value n in
            if not (Hashtbl.mem strings s) then Hashtbl.replace strings s ())
          (dsts k);
        let rows = ref [] in
        Hashtbl.iter
          (fun s () ->
            List.iter
              (fun tok ->
                match Node.lookup_id root tok with
                | Some e ->
                  Hashtbl.replace decode e.Node.id e;
                  rows := [ Sqldb.S s; Sqldb.I e.Node.id ] :: !rows
                | None -> ())
              (whitespace_tokens s))
          strings;
        (k, { Sqldb.columns = [ "v"; "dst" ]; rows = !rows }))
      r.ids
  in
  let named =
    List.mapi (fun k t -> (Printf.sprintf "step_%d" k, t)) step_tbls
    @ List.map (fun (k, t) -> (Printf.sprintf "val_%d" k, t)) val_tbls
    @ List.map (fun (k, t) -> (Printf.sprintf "ids_%d" k, t)) id_tbls
  in
  { named; decode }

type prepared = {
  rendered : rendered;
  query : Sqlrec.query;
  tables : tables;
  root : Node.t;
}

(* The single document every node of the fixpoint lives in: axis steps
   stay inside their tree and fn:id resolves against the roots of the
   recursion input, so a single-rooted seed pins the whole run to one
   tree. A multi-rooted (or atom-carrying) seed is declined. *)
let seed_root (seed : Fixq_xdm.Item.seq) : (Node.t, string) result =
  let rec go acc = function
    | [] -> (
      match acc with
      | Some r -> Ok r
      | None -> Error "empty seed: no document to materialize")
    | Fixq_xdm.Item.A _ :: _ -> Error "the seed contains atoms"
    | Fixq_xdm.Item.N n :: rest -> (
      let r = Node.root n in
      match acc with
      | Some r0 when not (Node.equal r0 r) ->
        Error "the seed spans more than one document"
      | _ -> go (Some r) rest)
  in
  go None seed

let prepare ~seed ~fix_id (body : Plan.t) : (prepared, string) result =
  match render ~fix_id body with
  | Error e -> Error e
  | Ok rendered -> (
    match seed_root seed with
    | Error e -> Error e
    | Ok root ->
      (* Round-trip through the SQL:1999 front end: the engine runs the
         parsed text, not the plan. *)
      let query = Sqlrec.parse rendered.sql in
      Ok { rendered; query; tables = materialize rendered root; root })

(* A fresh database per run: the materialized document relations are
   shared (immutable), only the seed table varies between evaluations
   of the same site. *)
let database (p : prepared) ~(seed_rows : (int * int) list) : Sqldb.t =
  let db = Sqldb.create () in
  List.iter (fun (name, t) -> Sqldb.add_table db name t) p.tables.named;
  Sqldb.add_table db seed_table
    { Sqldb.columns = [ "iter"; "item" ];
      rows = List.map (fun (it, id) -> [ Sqldb.I it; Sqldb.I id ]) seed_rows };
  db

let legend (r : rendered) : string list =
  List.mapi
    (fun k (axis, test) ->
      Format.asprintf "step_%d(src, dst): %s::%a over every document node" k
        (Axis.axis_to_string axis) Axis.pp_test test)
    r.steps
  @ List.map
      (fun k -> Printf.sprintf "val_%d(src, v): string values of step_%d targets" k k)
      r.vals
  @ List.map
      (fun k ->
        Printf.sprintf "ids_%d(v, dst): fn:id resolution of val_%d values" k k)
      r.ids
  @ [ Printf.sprintf "%s(iter, item): the loop-lifted seed relation" seed_table ]
