let to_ascii_annotated ~annot plan =
  let buf = Buffer.create 256 in
  let rec go prefix child_prefix p =
    Buffer.add_string buf prefix;
    Buffer.add_string buf (Plan.op_symbol p);
    (match annot p with
    | Some a ->
      Buffer.add_string buf "  {";
      Buffer.add_string buf a;
      Buffer.add_char buf '}'
    | None -> ());
    Buffer.add_char buf '\n';
    let kids = Plan.children p in
    let n = List.length kids in
    List.iteri
      (fun i k ->
        if i = n - 1 then
          go (child_prefix ^ "└─ ") (child_prefix ^ "   ") k
        else go (child_prefix ^ "├─ ") (child_prefix ^ "│  ") k)
      kids
  in
  go "" "" plan;
  Buffer.contents buf

let to_ascii plan = to_ascii_annotated ~annot:(fun _ -> None) plan

let to_dot plan =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "digraph plan {\n  node [shape=box, fontname=\"monospace\"];\n";
  let counter = ref 0 in
  let rec go p =
    incr counter;
    let my_id = !counter in
    Buffer.add_string buf
      (Printf.sprintf "  n%d [label=\"%s\"];\n" my_id
         (String.concat "\\\""
            (String.split_on_char '"' (Plan.op_symbol p))));
    List.iter
      (fun k ->
        let kid_id = go k in
        Buffer.add_string buf (Printf.sprintf "  n%d -> n%d;\n" my_id kid_id))
      (Plan.children p);
    my_id
  in
  ignore (go plan);
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let summary plan =
  let rec count p =
    1 + List.fold_left (fun acc k -> acc + count k) 0 (Plan.children p)
  in
  let rec depth p =
    1 + List.fold_left (fun acc k -> max acc (depth k)) 0 (Plan.children p)
  in
  Printf.sprintf "%d operators, depth %d" (count plan) (depth plan)
