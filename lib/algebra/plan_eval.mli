(** Column-engine evaluation of algebra plans — the MonetDB/XQuery
    stand-in.

    XPath step joins run over the pre/size/level encoding through the
    staircase join ({!Fixq_store.Staircase}); µ and µ∆ implement Naïve
    and Delta at the algebra level, re-binding the plan's {!Plan.Fix_ref}
    leaf on each round and recording fed/produced tuple counts in a
    {!Fixq_lang.Stats.t}. Because [iter] is part of every tuple, a
    loop-lifted fixpoint iterates all outer iterations in one relational
    computation (one of the paper's selling points for the algebraic
    route). *)

exception Error of string

type t

val create :
  ?registry:Fixq_xdm.Doc_registry.t ->
  ?max_iterations:int ->
  stats:Fixq_lang.Stats.t ->
  unit ->
  t

val stats : t -> Fixq_lang.Stats.t

(** Evaluate a closed plan (no unbound [Fix_ref]). *)
val run : t -> Plan.t -> Relation.t

(** A session carries the memo for plans that depend on externally
    bound references; callers that re-run the same plan with the same
    binding values may pass the same session to keep those
    materializations (e.g. a query computing one fixpoint per person
    evaluates [$doc//open_auction] once, not once per person). *)
type session

val new_session : unit -> session

(** Evaluate with fixpoint references pre-bound (used by µ/µ∆ and by
    tests that drive a body plan manually). A fresh session is used
    when none is given. *)
val run_with :
  t -> ?session:session -> (int * Relation.t) list -> Plan.t -> Relation.t

(**/**)

(** Internal profiling counters: memo-lifetime tag (["V:"] volatile /
    ["R:"] run / ["P:"] persistent) + operator prefix → evaluations and
    output rows. The V: entries are what a fixpoint re-pays per round. *)
val profile : (string, int * int * float) Hashtbl.t

(** Record per-operator self-time in {!profile} (off by default: the
    clock reads are measurable on fixpoint-heavy workloads). *)
val profile_timing : bool ref
