(** Plan rendering: ASCII trees (for terminal output à la Figure 9) and
    Graphviz dot. *)

(** ASCII tree, root at top. *)
val to_ascii : Plan.t -> string

(** ASCII tree with a per-operator annotation appended as [ {…}] when
    [annot] returns one — the cardinality-annotated [fixq plan] view. *)
val to_ascii_annotated : annot:(Plan.t -> string option) -> Plan.t -> string

(** Graphviz [digraph]. *)
val to_dot : Plan.t -> string

(** One-line summary: operator count and depth. *)
val summary : Plan.t -> string
