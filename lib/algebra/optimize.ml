module Phys = Hashtbl.Make (struct
  type t = Plan.t

  let equal = ( == )
  let hash = Hashtbl.hash
end)

module SS = Set.Make (String)

let rewrites = ref 0

let last_rewrite_count () = !rewrites

let is_empty_lit = function Plan.Lit_table (_, []) -> true | _ -> false

(* Re-project [p] onto [schema] (all names must exist in p). *)
let reproject schema p =
  if Plan.schema_of p = schema then p
  else Plan.Project (List.map (fun c -> (c, c)) schema, p)

(* ------------------------------------------------------------------ *)
(* Distinctness analysis                                               *)
(* ------------------------------------------------------------------ *)

(* [distinct_output p]: is the output of [p] duplicate-free for every
   input binding? Used to drop redundant δ operators: column-appending
   operators (⊚, ̺) and row filters (σ) preserve distinctness, # makes
   any input distinct (fresh tags), joins of distinct inputs are
   distinct (each match pair is unique and keeps all columns), and the
   fixpoint operators assemble their result from bitmap-deduplicated
   runs. A projection preserves distinctness only when it is an
   injective renaming of the full schema. *)
let distinct_output root =
  let memo : bool Phys.t = Phys.create 32 in
  let umemo : SS.t Phys.t = Phys.create 32 in
  (* [uniq p]: columns whose value differs on every row of [p]'s output,
     for any input binding — single-column keys. # mints fresh tags and
     an unpartitioned ̺ mints a global rank; π/σ/δ/Template/∖ preserve
     uniqueness on surviving columns (renamings or row subsets); every
     column of a ≤1-row source is trivially unique. *)
  let rec uniq p =
    match Phys.find_opt umemo p with
    | Some s -> s
    | None ->
      let s = uniq_compute p in
      Phys.replace umemo p s;
      s
  and uniq_compute = function
    | Plan.Tag (c, q) -> SS.add c (uniq q)
    | Plan.Row_num ({ Plan.num_partition = None; _ } as spec, q) ->
      SS.add spec.Plan.num_result (uniq q)
    | Plan.Row_num (_, q) | Plan.Fun (_, _, q) -> uniq q
    | Plan.Select (_, q) | Plan.Distinct q | Plan.Template (_, q) -> uniq q
    | Plan.Difference (a, _) -> uniq a
    | Plan.Project (cols, q) ->
      let u = uniq q in
      List.fold_left
        (fun s (nw, old) -> if SS.mem old u then SS.add nw s else s)
        SS.empty cols
    | (Plan.Doc _ | Plan.Lit_table (_, ([] | [ _ ]))) as p ->
      (match Plan.schema_of p with
      | s -> SS.of_list s
      | exception _ -> SS.empty)
    | _ -> SS.empty
  in
  (* [covers pred a b kept]: do the [kept] join-output columns
     functionally determine every output column of [⋈pred(a,b)]?
     Determination saturates through the equi keys (equal by
     definition) and through single-column keys: once a key of one
     side is determined, that side's row — hence all of its columns —
     is. With both inputs distinct, a projection onto a determining
     set keeps the join's rows pairwise distinct (drop the δ). *)
  let covers pred a b kept =
    match (Plan.schema_of a, Plan.schema_of b) with
    | exception _ -> false
    | sa, sb ->
      let outb c = if List.mem c sa then c ^ "'" else c in
      let det = ref kept and changed = ref true in
      let add c =
        if not (SS.mem c !det) then begin
          det := SS.add c !det;
          changed := true
        end
      in
      while !changed do
        changed := false;
        if SS.exists (fun u -> SS.mem u !det) (uniq a) then List.iter add sa;
        if SS.exists (fun u -> SS.mem (outb u) !det) (uniq b) then
          List.iter (fun c -> add (outb c)) sb;
        List.iter
          (fun (lc, rc) ->
            if SS.mem lc !det then add (outb rc);
            if SS.mem (outb rc) !det then add lc)
          pred.Plan.equi
      done;
      List.for_all (fun c -> SS.mem c !det) sa
      && List.for_all (fun c -> SS.mem (outb c) !det) sb
  in
  let no_keys = { Plan.equi = []; theta = [] } in
  let rec go p =
    match Phys.find_opt memo p with
    | Some b -> b
    | None ->
      let b = compute p in
      Phys.replace memo p b;
      b
  and compute = function
    | Plan.Distinct _ | Plan.Step _ | Plan.Id_join _ | Plan.Tag _
    | Plan.Mu _ | Plan.Mu_delta _ | Plan.Doc _ | Plan.Aggr _ ->
      true
    | Plan.Lit_table (_, ([] | [ _ ])) -> true
    | Plan.Template (_, q)
    | Plan.Select (_, q)
    | Plan.Fun (_, _, q)
    | Plan.Row_num (_, q) ->
      go q
    | Plan.Difference (a, _) -> go a
    | Plan.Join (_, a, b) | Plan.Cross (a, b) -> go a && go b
    | Plan.Project (cols, q) ->
      let kept = SS.of_list (List.map snd cols) in
      (* a kept unique column keeps rows pairwise distinct outright *)
      (not (SS.is_empty (SS.inter kept (uniq q))))
      || (match Plan.schema_of q with
         | s ->
           let olds = List.sort compare (List.map snd cols) in
           let rec nodup = function
             | a :: b :: _ when String.equal a b -> false
             | _ :: tl -> nodup tl
             | [] -> true
           in
           List.sort compare s = olds && nodup olds && go q
         | exception _ -> false)
      || (match q with
         | Plan.Join (pred, a, b) ->
           go a && go b && covers pred a b kept
         | Plan.Cross (a, b) -> go a && go b && covers no_keys a b kept
         | _ -> false)
    | Plan.Iterate it -> go it.Plan.it_result
    | Plan.Lit_table _ | Plan.Fix_ref _ | Plan.Union _
    | Plan.Construct _ ->
      false
  in
  go root

(* One local simplification step at the root of [p]; children are
   already rewritten. *)
let step (p : Plan.t) : Plan.t =
  let hit q =
    incr rewrites;
    q
  in
  match p with
  (* δ is idempotent; drop it over any provably-distinct subplan (the
     step join, another δ — possibly through templates, column
     appenders and joins of distinct inputs) *)
  | Plan.Distinct q when distinct_output q -> hit q
  (* δ∘π∘δ: the inner δ only removes duplicates the outer δ would
     remove anyway (π maps equal rows to equal rows) *)
  | Plan.Distinct (Plan.Project (cols, Plan.Distinct q)) ->
    hit (Plan.Distinct (Plan.Project (cols, q)))
  (* projection fusion: π_a(π_b(q)) = π_{a∘b}(q) *)
  | Plan.Project (outer, Plan.Project (inner, q)) ->
    let compose (n, o) =
      match List.assoc_opt o inner with
      | Some deeper -> (n, deeper)
      | None -> (n, o) (* unreachable for well-formed plans *)
    in
    hit (Plan.Project (List.map compose outer, q))
  (* identity projection *)
  | Plan.Project (cols, q)
    when List.for_all (fun (n, o) -> String.equal n o) cols
         && (try Plan.schema_of q = List.map fst cols with _ -> false) ->
    hit q
  (* units of ∪ *)
  | Plan.Union (a, b) when is_empty_lit a -> (
    match Plan.schema_of p with
    | schema -> hit (reproject schema b)
    | exception _ -> p)
  | Plan.Union (a, b) when is_empty_lit b ->
    ignore b;
    hit a
  (* difference with an empty subtrahend / minuend *)
  | Plan.Difference (a, b) when is_empty_lit b -> hit a
  | Plan.Difference (a, b) when is_empty_lit a ->
    ignore b;
    hit a (* a is the empty table: result is empty = a *)
  (* keyless equi-join is a cross product *)
  | Plan.Join ({ Plan.equi = []; theta = [] }, a, b) -> hit (Plan.Cross (a, b))
  | p -> p

let rewrite plan =
  let memo : Plan.t Phys.t = Phys.create 64 in
  let rec go p =
    match Phys.find_opt memo p with
    | Some q -> q
    | None ->
      let q = step (rebuild p) in
      Phys.replace memo p q;
      q
  and rebuild (p : Plan.t) : Plan.t =
    match p with
    | Plan.Lit_table _ | Plan.Doc _ | Plan.Fix_ref _ -> p
    | Plan.Project (cols, q) -> Plan.Project (cols, go q)
    | Plan.Select (c, q) -> Plan.Select (c, go q)
    | Plan.Join (pred, a, b) -> Plan.Join (pred, go a, go b)
    | Plan.Cross (a, b) -> Plan.Cross (go a, go b)
    | Plan.Distinct q -> Plan.Distinct (go q)
    | Plan.Union (a, b) -> Plan.Union (go a, go b)
    | Plan.Difference (a, b) -> Plan.Difference (go a, go b)
    | Plan.Aggr (agg, spec, q) -> Plan.Aggr (agg, spec, go q)
    | Plan.Fun (prim, spec, q) -> Plan.Fun (prim, spec, go q)
    | Plan.Tag (c, q) -> Plan.Tag (c, go q)
    | Plan.Row_num (spec, q) -> Plan.Row_num (spec, go q)
    | Plan.Step (axis, test, col, q) -> Plan.Step (axis, test, col, go q)
    | Plan.Id_join (a, b) -> Plan.Id_join (go a, go b)
    | Plan.Construct (k, q) -> Plan.Construct (k, go q)
    | Plan.Mu f ->
      Plan.Mu { f with Plan.seed = go f.Plan.seed; body = go f.Plan.body }
    | Plan.Mu_delta f ->
      Plan.Mu_delta
        { f with Plan.seed = go f.Plan.seed; body = go f.Plan.body }
    | Plan.Template (n, q) -> Plan.Template (n, go q)
    | Plan.Iterate it ->
      Plan.Iterate
        { it with
          Plan.it_source = go it.Plan.it_source;
          it_map = go it.Plan.it_map;
          it_result = go it.Plan.it_result }
  in
  go plan

(* ------------------------------------------------------------------ *)
(* Projection pushdown / dead-column elimination                       *)
(* ------------------------------------------------------------------ *)

(* Needed-column analysis over the plan DAG: the set of columns each
   physical node must actually produce, as the union over all of its
   parents' requirements. Set-semantics boundaries (δ, ∪, \, µ, µ∆,
   ⋈id, ε) require full rows — their children are pinned to their whole
   schema — while everything in between can narrow:

   - ⋈/× inputs are wrapped in π keeping only needed ∪ key columns, so
     the probe-and-gather kernel never materializes dead columns (a
     column dropped from one side can change the join's clash renaming,
     so the join is re-normalized by an outer π mapping the new output
     names back to the original ones);
   - ⊚/#/̺ whose result column no parent needs are dropped entirely
     (they are cardinality-preserving column appenders);
   - existing π nodes shed output columns no parent needs.

   Needs flow top-down in reverse postorder (every parent before its
   children), so each node's requirement is complete before it is
   propagated; the rebuild is memoized per physical node, preserving
   the DAG sharing the evaluator's memo and # alignment depend on. *)
let prune root =
  let order = ref [] in
  let seen : unit Phys.t = Phys.create 64 in
  let rec dfs p =
    if not (Phys.mem seen p) then begin
      Phys.replace seen p ();
      List.iter dfs (Plan.children p);
      order := p :: !order
    end
  in
  dfs root;
  let full p = SS.of_list (Plan.schema_of p) in
  let needed : SS.t Phys.t = Phys.create 64 in
  let note p s =
    let cur = Option.value ~default:SS.empty (Phys.find_opt needed p) in
    Phys.replace needed p (SS.union cur s)
  in
  let need_of p = Option.value ~default:(full p) (Phys.find_opt needed p) in
  (* requirement a join imposes on its left / right input *)
  let join_needs pred a b n =
    let sa = Plan.schema_of a and sb = Plan.schema_of b in
    let na = SS.filter (fun c -> List.mem c sa) n in
    let na =
      List.fold_left (fun s (lc, _) -> SS.add lc s) na pred.Plan.equi
    in
    let na =
      List.fold_left (fun s (lc, _, _) -> SS.add lc s) na pred.Plan.theta
    in
    let nb =
      List.fold_left
        (fun s c ->
          let out = if List.mem c sa then c ^ "'" else c in
          if SS.mem out n then SS.add c s else s)
        SS.empty sb
    in
    let nb =
      List.fold_left (fun s (_, rc) -> SS.add rc s) nb pred.Plan.equi
    in
    let nb =
      List.fold_left (fun s (_, _, rc) -> SS.add rc s) nb pred.Plan.theta
    in
    (na, nb)
  in
  let no_keys = { Plan.equi = []; theta = [] } in
  let propagate p =
    let n = need_of p in
    match p with
    | Plan.Lit_table _ | Plan.Doc _ | Plan.Fix_ref _ -> ()
    | Plan.Project (cols, q) ->
      let s =
        SS.of_list
          (List.filter_map
             (fun (nw, old) -> if SS.mem nw n then Some old else None)
             cols)
      in
      (* never let a child shrink to zero width: keep the first source
         column alive so cardinality-only consumers (count) still see
         their rows *)
      note q (if SS.is_empty s then SS.singleton (snd (List.hd cols)) else s)
    | Plan.Select (c, q) -> note q (SS.add c n)
    | Plan.Join (pred, a, b) ->
      let (na, nb) = join_needs pred a b n in
      note a na;
      note b nb
    | Plan.Cross (a, b) ->
      let (na, nb) = join_needs no_keys a b n in
      note a (if SS.is_empty na then SS.singleton (List.hd (Plan.schema_of a)) else na);
      note b (if SS.is_empty nb then SS.singleton (List.hd (Plan.schema_of b)) else nb)
    | Plan.Distinct q | Plan.Construct (_, q) -> note q (full q)
    | Plan.Union (a, b) | Plan.Difference (a, b) | Plan.Id_join (a, b) ->
      note a (full a);
      note b (full b)
    | Plan.Mu f | Plan.Mu_delta f ->
      note f.Plan.seed (full f.Plan.seed);
      note f.Plan.body (full f.Plan.body)
    | Plan.Aggr (_, spec, q) ->
      let s =
        SS.of_list
          (Option.to_list spec.Plan.agg_input
          @ Option.to_list spec.Plan.agg_partition)
      in
      note q
        (if SS.is_empty s then
           match Plan.schema_of q with
           | c :: _ -> SS.singleton c
           | [] -> SS.empty
         else s)
    | Plan.Fun (_, spec, q) ->
      if SS.mem spec.Plan.fun_result n then
        note q
          (SS.union
             (SS.remove spec.Plan.fun_result n)
             (SS.of_list spec.Plan.fun_args))
      else note q n
    | Plan.Tag (c, q) -> note q (SS.remove c n)
    | Plan.Row_num (spec, q) ->
      if SS.mem spec.Plan.num_result n then
        note q
          (SS.union
             (SS.remove spec.Plan.num_result n)
             (SS.of_list
                (spec.Plan.num_order
                @ Option.to_list spec.Plan.num_partition)))
      else note q n
    | Plan.Step (_, _, col, q) -> note q (SS.add col n)
    | Plan.Template (_, q) -> note q n
    | Plan.Iterate it -> note it.Plan.it_result n
  in
  note root (full root);
  List.iter propagate !order;
  (* Bottom-up rebuild. Invariant: [schema_of (go p)] contains every
     column of [need_of p] (it may retain more — base tables and
     dropped appenders keep what they have) with original names, so
     parents only ever reference columns that exist. *)
  let rebuilt : Plan.t Phys.t = Phys.create 64 in
  let narrow keep q =
    let s = Plan.schema_of q in
    let kept = List.filter (fun c -> SS.mem c keep) s in
    let kept = if kept = [] then [ List.hd s ] else kept in
    if List.length kept = List.length s then q
    else begin
      incr rewrites;
      Plan.Project (List.map (fun c -> (c, c)) kept, q)
    end
  in
  let rec go p =
    match Phys.find_opt rebuilt p with
    | Some q -> q
    | None ->
      let q = build p in
      Phys.replace rebuilt p q;
      q
  and rebuild_join pred a b n =
    let (na, nb) = join_needs pred a b n in
    let sa = Plan.schema_of a and sb = Plan.schema_of b in
    let a' = narrow na (go a) and b' = narrow nb (go b) in
    let j =
      match pred with
      | { Plan.equi = []; theta = [] } -> Plan.Cross (a', b')
      | _ -> Plan.Join (pred, a', b')
    in
    let sa' = Plan.schema_of a' and sb' = Plan.schema_of b' in
    (* original and rebuilt output names, keyed by (side, source col) *)
    let out_names la lb =
      List.map (fun c -> ((`L, c), c)) la
      @ List.map
          (fun c -> ((`R, c), if List.mem c la then c ^ "'" else c))
          lb
    in
    let orig_out = out_names sa sb in
    let new_out = out_names sa' sb' in
    let cols =
      List.filter_map
        (fun (src, o) ->
          if SS.mem o n then Some (o, List.assoc src new_out) else None)
        orig_out
    in
    let cols =
      if cols = [] then
        match Plan.schema_of j with c :: _ -> [ (c, c) ] | [] -> []
      else cols
    in
    if List.map snd cols = Plan.schema_of j
       && List.for_all (fun (nw, o) -> String.equal nw o) cols
    then j
    else Plan.Project (cols, j)
  and build p =
    let n = need_of p in
    match p with
    | Plan.Lit_table _ | Plan.Doc _ | Plan.Fix_ref _ -> p
    | Plan.Project (cols, q) ->
      let q' = go q in
      let cols' = List.filter (fun (nw, _) -> SS.mem nw n) cols in
      let cols' = if cols' = [] then [ List.hd cols ] else cols' in
      if List.length cols' < List.length cols then incr rewrites;
      Plan.Project (cols', q')
    | Plan.Select (c, q) -> Plan.Select (c, go q)
    | Plan.Join (pred, a, b) -> rebuild_join pred a b n
    | Plan.Cross (a, b) -> rebuild_join no_keys a b n
    | Plan.Distinct q -> Plan.Distinct (go q)
    | Plan.Union (a, b) -> Plan.Union (go a, go b)
    | Plan.Difference (a, b) -> Plan.Difference (go a, go b)
    | Plan.Aggr (agg, spec, q) -> Plan.Aggr (agg, spec, go q)
    | Plan.Fun (prim, spec, q) ->
      if SS.mem spec.Plan.fun_result n then Plan.Fun (prim, spec, go q)
      else begin
        incr rewrites;
        go q
      end
    | Plan.Tag (c, q) ->
      if SS.mem c n then Plan.Tag (c, go q)
      else begin
        incr rewrites;
        go q
      end
    | Plan.Row_num (spec, q) ->
      if SS.mem spec.Plan.num_result n then Plan.Row_num (spec, go q)
      else begin
        incr rewrites;
        go q
      end
    | Plan.Step (axis, test, col, q) -> Plan.Step (axis, test, col, go q)
    | Plan.Id_join (a, b) -> Plan.Id_join (go a, go b)
    | Plan.Construct (k, q) -> Plan.Construct (k, go q)
    | Plan.Mu f ->
      Plan.Mu { f with Plan.seed = go f.Plan.seed; body = go f.Plan.body }
    | Plan.Mu_delta f ->
      Plan.Mu_delta
        { f with Plan.seed = go f.Plan.seed; body = go f.Plan.body }
    | Plan.Template (nm, q) -> Plan.Template (nm, go q)
    | Plan.Iterate it ->
      Plan.Iterate
        { it with
          Plan.it_source = go it.Plan.it_source;
          it_map = go it.Plan.it_map;
          it_result = go it.Plan.it_result }
  in
  go root

let optimize plan =
  rewrites := 0;
  (* local rewrites first (removing redundant δ widens what the
     needed-column pass may narrow), then pushdown, then a final local
     pass to fuse the π chains the pushdown introduced *)
  rewrite (prune (rewrite plan))
