(** In-memory relations with named columns.

    The algebra evaluates over flat 1NF tables; XQuery item sequences
    are encoded as [iter|item] tables ([pos] is dropped: the fixpoint
    operators and the distributivity machinery work modulo duplicates
    and order — Definition 3.1 — and the engine re-establishes document
    order when materializing results). *)

type t

val schema : t -> string list
val rows : t -> Value.t array list
val cardinal : t -> int

(** [create schema rows]: every row must have [List.length schema]
    cells. *)
val create : string list -> Value.t array list -> t

val empty : string list -> t

(** Column index; raises [Invalid_argument] for unknown columns. *)
val column_index : t -> string -> int

val get : t -> Value.t array -> string -> Value.t

(** [project renames t] keeps/renames columns: [(new_name, old_name)]
    pairs, in order. *)
val project : (string * string) list -> t -> t

val select : (Value.t array -> bool) -> t -> t
val map_rows : (Value.t array -> Value.t array) -> string list -> t -> t
val append_column : string -> (Value.t array -> Value.t) -> t -> t

(** Hashable identity of a row (cell-wise {!Value.key}) — what
    {!distinct}/{!difference} compare by. *)
val row_key : Value.t array -> Value.key list

(** Hash table keyed by rows under the same cell-wise equivalence as
    {!row_key}, without allocating keys. Exposed so incremental callers
    (the µ/µ∆ loops) can maintain their own seen-set across rounds. *)
module Row_tbl : Hashtbl.S with type key = Value.t array

(** Set-style distinct over all columns. *)
val distinct : t -> t

(** Union of compatible relations (bag union; schemas must have equal
    column lists, possibly reordered — the right side is permuted). *)
val union : t -> t -> t

(** Bag difference on all columns ([EXCEPT ALL]-style: removes every
    matching occurrence). *)
val difference : t -> t -> t

(** [equi_join keys l r] joins on [(lcol, rcol)] equality pairs;
    right-side key columns are dropped when they share a name with a
    left column? No — all columns of both sides are kept, right-side
    columns that clash with left names get a ["'"] suffix. Use
    [project] to clean up. *)
val equi_join :
  ?extra:(Value.t array -> Value.t array -> bool) ->
  (string * string) list ->
  t ->
  t ->
  t

val cross : t -> t -> t

(** [group_count ~partition ~result t]: number of rows per value of the
    [partition] column (the whole table when [partition] is [None]).
    Result schema: partition column (if any) followed by [result]. *)
val group_count : partition:string option -> result:string -> t -> t

(** [number ~order ~partition ~result t] appends 1-based ranks ordered
    by the [order] columns within each [partition] group. *)
val number :
  order:string list -> partition:string option -> result:string -> t -> t

(** Append a column of unique integer tags. *)
val tag : result:string -> t -> t

val sort_by : string list -> t -> t
val pp : Format.formatter -> t -> unit
