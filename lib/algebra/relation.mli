(** In-memory relations with named columns, stored column-wise.

    The algebra evaluates over flat 1NF tables; XQuery item sequences
    are encoded as [iter|item] tables ([pos] is dropped: the fixpoint
    operators and the distributivity machinery work modulo duplicates
    and order — Definition 3.1 — and the engine re-establishes document
    order when materializing results).

    Storage is columnar: each column is a typed vector ([int array] for
    iter/tag/rank/int cells, [Node.t array] for node columns — node
    identity is the dense preorder id — plus string/bool vectors and a
    boxed [Value.t array] fallback for mixed columns). Operators are
    batch kernels: projection selects column pointers, select/join/
    distinct compute row-index vectors and gather survivors, and the
    hot distinct path hashes packed-int row keys in an off-heap
    {!Pair_set} instead of boxing rows. *)

type col =
  | Ints of int array
  | Nodes of Fixq_xdm.Node.t array
  | Bools of bool array
  | Strs of string array
  | Vals of Value.t array

type t

val schema : t -> string list
val cardinal : t -> int

(** The column vectors, in schema order. Treat as read-only: columns
    are shared across relations by projection/union. *)
val cols : t -> col array

(** Column by name; raises [Invalid_argument] for unknown columns. *)
val col : t -> string -> col

val col_length : col -> int
val col_get : col -> int -> Value.t

(** Cell hash/equality/order used by the batch kernels — aligned with
    {!Value.hash_cell}, {!Value.equal_key_cell} and {!Value.compare}
    (nodes by identity for hash/eq, document order for order). *)
val col_hash : col -> int -> int

val col_eq : col -> int -> col -> int -> bool
val col_order : col -> int -> col -> int -> int

(** Packed-int representation of int-like cells (ints, node ids,
    bools — 2 kind bits keep them distinct), or [None] for columns that
    need boxed comparison. *)
val int_rep : col -> (int -> int) option

(** [of_cols schema cols]: columns must have equal lengths. *)
val of_cols : string list -> col array -> t

(** Build a typed column from boxed cells (uniform kinds get a typed
    vector, mixed columns stay boxed). *)
val col_of_values : Value.t array -> col

(** [create schema rows] builds typed columns from boxed rows; every
    row must have [List.length schema] cells. *)
val create : string list -> Value.t array list -> t

val empty : string list -> t

(** Boxed row materialization (cold paths and tests). *)
val rows : t -> Value.t array list

val row : t -> int -> Value.t array
val column_index : t -> string -> int
val get : t -> Value.t array -> string -> Value.t

(** [gather t idx] keeps rows [idx] in order (indices may repeat). *)
val gather : t -> int array -> t

(** Concatenate relations sharing [schema] (column-wise append). *)
val concat_many : string list -> t list -> t

(** [project renames t] keeps/renames columns: [(new_name, old_name)]
    pairs, in order. O(width): shares column vectors. *)
val project : (string * string) list -> t -> t

(** Keep rows whose named column is effectively true (fast path for
    [Bools] columns). *)
val select_bool : string -> t -> t

(** Append a column vector (length must match). *)
val append_col : string -> col -> t -> t

(** Hashable identity of a row (cell-wise {!Value.key}) — what
    {!distinct}/{!difference} compare by. *)
val row_key : Value.t array -> Value.key list

(** Hash table keyed by boxed rows under the same cell-wise equivalence
    as {!row_key} — the generic fallback seen-set for the µ/µ∆ loops. *)
module Row_tbl : Hashtbl.S with type key = Value.t array

(** Open-addressing set of packed int pairs over off-heap [Bigarray]
    storage — the µ/µ∆ seen-set fast path. *)
module Pair_set : sig
  type t

  val create : int -> t

  (** [add t a b] inserts the pair and reports whether it was fresh. *)
  val add : t -> int -> int -> bool
end

(** Set-style distinct over all columns. *)
val distinct : t -> t

(** Union of compatible relations (bag union; schemas must have equal
    column lists, possibly reordered — the right side is permuted). *)
val union : t -> t -> t

(** Bag difference on all columns ([EXCEPT ALL]: each right occurrence
    cancels one matching left occurrence). *)
val difference : t -> t -> t

(** [equi_join keys l r] joins on [(lcol, rcol)] equality pairs; all
    columns of both sides are kept, right-side columns that clash with
    left names get a ["'"] suffix. [extra] is an additional predicate
    over (left row index, right row index). *)
val equi_join :
  ?extra:(int -> int -> bool) -> (string * string) list -> t -> t -> t

(** [semi_join keys l r] keeps the left rows with at least one matching
    right row (each at most once, in left order) — the target of the
    δ∘π∘⋈ existential-filter rewrite. *)
val semi_join :
  ?extra:(int -> int -> bool) -> (string * string) list -> t -> t -> t

val cross : t -> t -> t

(** [group_count ~partition ~result t]: number of rows per value of the
    [partition] column (the whole table when [partition] is [None]).
    Result schema: partition column (if any) followed by [result]. *)
val group_count : partition:string option -> result:string -> t -> t

(** [number ~order ~partition ~result t] appends 1-based ranks ordered
    by the [order] columns within each [partition] group. *)
val number :
  order:string list -> partition:string option -> result:string -> t -> t

(** Append a column of unique integer tags. *)
val tag : result:string -> t -> t

val sort_by : string list -> t -> t
val pp : Format.formatter -> t -> unit
