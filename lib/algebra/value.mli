(** Cell values of the relational XQuery encoding.

    Following the Pathfinder scheme, the [item] column of an
    [iter|pos|item] table carries either an atomic value or a node
    reference; nodes are referenced by their {!Fixq_xdm.Node.t}
    back-pointer (a surrogate for Pathfinder's pre ranks — document
    order and identity are preserved by the node's id). *)

type t =
  | Int of int
  | Dbl of float
  | Str of string
  | Bool of bool
  | Nd of Fixq_xdm.Node.t

(** Total order: used for sorting, grouping and join keys. Nodes order
    by document order; across kinds an arbitrary but fixed kind order
    applies. *)
val compare : t -> t -> int

val equal : t -> t -> bool

(** Value comparison with numeric promotion (general comparison
    semantics); raises [Fixq_xdm.Atom.Type_error] on incomparable
    kinds. *)
val compare_value : t -> t -> int

val of_atom : Fixq_xdm.Atom.t -> t

(** Atomic view; a node becomes its (untyped) string value. *)
val to_atom : t -> Fixq_xdm.Atom.t

val as_node : string -> t -> Fixq_xdm.Node.t
val to_bool : t -> bool

(** Hashable/structurally-comparable key form (nodes by identity). *)
type key = KI of int | KF of float | KS of string | KB of bool | KN of int

val key : t -> key

(** Allocation-free equivalents of comparing/hashing [key t]: the same
    equivalence as structural [(=)] on {!key} (NaN ≠ NaN, nodes by
    identity). Backing for the row hash tables on the µ/µ∆ hot path. *)
val equal_key_cell : t -> t -> bool

val hash_cell : t -> int
val pp : Format.formatter -> t -> unit
