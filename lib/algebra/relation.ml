type t = { schema : string list; rows : Value.t array list }

let schema t = t.schema
let rows t = t.rows
let cardinal t = List.length t.rows

let create schema rows =
  let n = List.length schema in
  List.iter
    (fun r ->
      if Array.length r <> n then
        invalid_arg
          (Printf.sprintf "Relation.create: row width %d, schema width %d"
             (Array.length r) n))
    rows;
  { schema; rows }

let empty schema = { schema; rows = [] }

let column_index t c =
  let rec go i = function
    | [] -> invalid_arg (Printf.sprintf "Relation: unknown column %S" c)
    | x :: rest -> if String.equal x c then i else go (i + 1) rest
  in
  go 0 t.schema

let get t row c = row.(column_index t c)

let project renames t =
  let idx =
    Array.of_list (List.map (fun (_, old) -> column_index t old) renames)
  in
  { schema = List.map fst renames;
    rows = List.map (fun r -> Array.map (fun i -> r.(i)) idx) t.rows }

let select p t = { t with rows = List.filter p t.rows }

let map_rows f schema t = { schema; rows = List.map f t.rows }

let append_column name f t =
  { schema = t.schema @ [ name ];
    rows = List.map (fun r -> Array.append r [| f r |]) t.rows }

let row_key r = Array.to_list (Array.map Value.key r)

(* Row-keyed hash table: cell-wise {!Value.equal_key_cell} equality —
   identical grouping to hashing [row_key], minus the per-row key
   allocation. Rows are never mutated once built (operators copy on
   write), so using the row array itself as key is safe. *)
module Row_tbl = Hashtbl.Make (struct
  type t = Value.t array

  let equal a b =
    Array.length a = Array.length b
    &&
    let rec go i =
      i < 0 || (Value.equal_key_cell a.(i) b.(i) && go (i - 1))
    in
    go (Array.length a - 1)

  let hash r = Array.fold_left (fun h c -> (h * 31) + Value.hash_cell c) 17 r
end)

let distinct t =
  let seen = Row_tbl.create 64 in
  let rows =
    List.filter
      (fun r ->
        if Row_tbl.mem seen r then false
        else begin
          Row_tbl.replace seen r ();
          true
        end)
      t.rows
  in
  { t with rows }

let union a b =
  if List.sort compare a.schema <> List.sort compare b.schema then
    invalid_arg "Relation.union: incompatible schemas";
  let b' =
    if a.schema = b.schema then b
    else project (List.map (fun c -> (c, c)) a.schema) b
  in
  { schema = a.schema; rows = a.rows @ b'.rows }

let difference a b =
  if List.sort compare a.schema <> List.sort compare b.schema then
    invalid_arg "Relation.difference: incompatible schemas";
  let b' =
    if a.schema = b.schema then b
    else project (List.map (fun c -> (c, c)) a.schema) b
  in
  let counts = Row_tbl.create 64 in
  List.iter
    (fun r ->
      Row_tbl.replace counts r
        (1 + Option.value ~default:0 (Row_tbl.find_opt counts r)))
    b'.rows;
  let rows =
    List.filter
      (fun r ->
        match Row_tbl.find_opt counts r with
        | Some n when n > 0 ->
          Row_tbl.replace counts r (n - 1);
          false
        | _ -> true)
      a.rows
  in
  { schema = a.schema; rows }

let rename_clashes left_schema right_schema =
  List.map
    (fun c -> if List.mem c left_schema then c ^ "'" else c)
    right_schema

let key_of row idx = Array.map (fun i -> row.(i)) idx

(* Hash indexes of join sides, cached weakly per physical relation.
   Memoized loop-invariant subplans re-enter [equi_join] with the
   physically same relation on every fixpoint round, so without this
   the µ∆ loop pays an O(|invariant side|) rebuild per round no matter
   how small ∆ is. Ephemeron keys let per-round volatile relations be
   collected together with their indexes. *)
module Index_cache = Ephemeron.K1.Make (struct
  type nonrec t = t

  let equal = ( == )
  let hash = Hashtbl.hash
end)

type join_index = Value.t array list ref Row_tbl.t

let join_indexes : (int array * join_index) list Index_cache.t =
  Index_cache.create 64

let build_index idx rel : join_index =
  let tbl = Row_tbl.create 64 in
  List.iter
    (fun row ->
      let k = key_of row idx in
      match Row_tbl.find_opt tbl k with
      | Some bucket -> bucket := row :: !bucket
      | None -> Row_tbl.add tbl k (ref [ row ]))
    rel.rows;
  Row_tbl.iter (fun _ bucket -> bucket := List.rev !bucket) tbl;
  tbl

let index_for idx rel =
  let existing =
    match Index_cache.find_opt join_indexes rel with
    | Some l -> l
    | None -> []
  in
  match List.find_opt (fun (i, _) -> i = idx) existing with
  | Some (_, tbl) -> tbl
  | None ->
    let tbl = build_index idx rel in
    Index_cache.replace join_indexes rel ((idx, tbl) :: existing);
    tbl

let equi_join ?extra keys l r =
  let lidx =
    Array.of_list (List.map (fun (lc, _) -> column_index l lc) keys)
  in
  let ridx =
    Array.of_list (List.map (fun (_, rc) -> column_index r rc) keys)
  in
  let tbl = index_for ridx r in
  let out_schema = l.schema @ rename_clashes l.schema r.schema in
  let rows =
    List.concat_map
      (fun lrow ->
        let matches =
          match Row_tbl.find_opt tbl (key_of lrow lidx) with
          | Some bucket -> !bucket
          | None -> []
        in
        List.filter_map
          (fun rrow ->
            let keep =
              match extra with None -> true | Some f -> f lrow rrow
            in
            if keep then Some (Array.append lrow rrow) else None)
          matches)
      l.rows
  in
  { schema = out_schema; rows }

let cross l r =
  let out_schema = l.schema @ rename_clashes l.schema r.schema in
  { schema = out_schema;
    rows =
      List.concat_map
        (fun lrow -> List.map (fun rrow -> Array.append lrow rrow) r.rows)
        l.rows }

let group_count ~partition ~result t =
  match partition with
  | None ->
    { schema = [ result ];
      rows = [ [| Value.Int (List.length t.rows) |] ] }
  | Some part ->
    let pi = column_index t part in
    let counts = Hashtbl.create 64 in
    let order = ref [] in
    List.iter
      (fun r ->
        let k = Value.key r.(pi) in
        (match Hashtbl.find_opt counts k with
        | None ->
          order := (k, r.(pi)) :: !order;
          Hashtbl.replace counts k 1
        | Some n -> Hashtbl.replace counts k (n + 1)))
      t.rows;
    { schema = [ part; result ];
      rows =
        List.rev_map
          (fun (k, v) -> [| v; Value.Int (Hashtbl.find counts k) |])
          !order }

let sort_by cols t =
  let idx = List.map (column_index t) cols in
  let cmp a b =
    let rec go = function
      | [] -> 0
      | i :: rest ->
        let c = Value.compare a.(i) b.(i) in
        if c <> 0 then c else go rest
    in
    go idx
  in
  { t with rows = List.stable_sort cmp t.rows }

let number ~order ~partition ~result t =
  let sorted =
    sort_by (match partition with None -> order | Some p -> p :: order) t
  in
  let pi = Option.map (column_index t) partition in
  let rows =
    let rank = ref 0 in
    let current = ref None in
    List.map
      (fun r ->
        (match pi with
        | None -> incr rank
        | Some i ->
          let key = r.(i) in
          (match !current with
          | Some k when Value.equal k key -> incr rank
          | _ ->
            current := Some key;
            rank := 1));
        Array.append r [| Value.Int !rank |])
      sorted.rows
  in
  { schema = t.schema @ [ result ]; rows }

let tag_counter = ref 0

let tag ~result t =
  { schema = t.schema @ [ result ];
    rows =
      List.map
        (fun r ->
          incr tag_counter;
          Array.append r [| Value.Int !tag_counter |])
        t.rows }

let pp ppf t =
  Format.fprintf ppf "@[<v>%s@," (String.concat " | " t.schema);
  List.iter
    (fun r ->
      Format.fprintf ppf "%s@,"
        (String.concat " | "
           (Array.to_list (Array.map (Format.asprintf "%a" Value.pp) r))))
    t.rows;
  Format.fprintf ppf "@]"
