module Node = Fixq_xdm.Node
module Counters = Fixq_xdm.Counters

(* Columnar storage: one typed vector per column. [iter]/[pos]/tag/rank
   columns and int cells live in unboxed [int array]s, node columns in
   [Node.t array]s (identity = dense preorder id), strings/bools in
   their own vectors; [Vals] is the boxed fallback for mixed columns.
   Operators are batch kernels over whole columns: projection is column
   pointer selection, select/join/distinct produce row-index vectors and
   gather the survivors, so the per-row boxing and hashing of the old
   list-of-[Value.t array] representation only remains on cold paths. *)
type col =
  | Ints of int array
  | Nodes of Node.t array
  | Bools of bool array
  | Strs of string array
  | Vals of Value.t array

type t = { schema : string list; nrows : int; cols : col array }

let batch n =
  incr Counters.col_batches;
  Counters.col_rows := !Counters.col_rows + n

let boxed_rows n = Counters.col_boxed_rows := !Counters.col_boxed_rows + n

let col_length = function
  | Ints a -> Array.length a
  | Nodes a -> Array.length a
  | Bools a -> Array.length a
  | Strs a -> Array.length a
  | Vals a -> Array.length a

let col_get c i : Value.t =
  match c with
  | Ints a -> Value.Int a.(i)
  | Nodes a -> Value.Nd a.(i)
  | Bools a -> Value.Bool a.(i)
  | Strs a -> Value.Str a.(i)
  | Vals a -> a.(i)

(* Cell hash, aligned with {!Value.hash_cell} so mixed-variant columns
   (one side typed, the other boxed) still group together. *)
let col_hash c i =
  match c with
  | Ints a -> Hashtbl.hash (Array.unsafe_get a i)
  | Nodes a -> 0x9e3779b1 * ((Array.unsafe_get a i).Node.id + 1)
  | Bools a -> Hashtbl.hash (Array.unsafe_get a i)
  | Strs a -> Hashtbl.hash (Array.unsafe_get a i)
  | Vals a -> Value.hash_cell (Array.unsafe_get a i)

(* Cell equality under the {!Value.equal_key_cell} equivalence. *)
let col_eq a i b j =
  match (a, b) with
  | (Ints x, Ints y) -> Int.equal x.(i) y.(j)
  | (Nodes x, Nodes y) -> x.(i).Node.id = y.(j).Node.id
  | (Bools x, Bools y) -> Bool.equal x.(i) y.(j)
  | (Strs x, Strs y) -> String.equal x.(i) y.(j)
  | _ -> Value.equal_key_cell (col_get a i) (col_get b j)

(* Cell order under {!Value.compare} (nodes by document order). *)
let col_order a i b j =
  match (a, b) with
  | (Ints x, Ints y) -> Int.compare x.(i) y.(j)
  | (Nodes x, Nodes y) -> Node.compare_doc_order x.(i) y.(j)
  | (Strs x, Strs y) -> String.compare x.(i) y.(j)
  | (Bools x, Bools y) -> Bool.compare x.(i) y.(j)
  | _ -> Value.compare (col_get a i) (col_get b j)

(* Packed integer representation of int-like cells, used by the hashing
   kernels and the µ seen-sets: 2 kind bits keep Int 1, node id 1 and
   true distinct, matching [Value.equal_key_cell] across kinds. *)
let int_rep = function
  | Ints a -> Some (fun i -> (Array.unsafe_get a i) lsl 2)
  | Nodes a -> Some (fun i -> ((Array.unsafe_get a i).Node.id lsl 2) lor 1)
  | Bools a -> Some (fun i -> ((if Array.unsafe_get a i then 1 else 0) lsl 2) lor 2)
  | Strs _ | Vals _ -> None

let gather_col c (idx : int array) =
  match c with
  | Ints a -> Ints (Array.map (fun i -> Array.unsafe_get a i) idx)
  | Nodes a -> Nodes (Array.map (fun i -> Array.unsafe_get a i) idx)
  | Bools a -> Bools (Array.map (fun i -> Array.unsafe_get a i) idx)
  | Strs a -> Strs (Array.map (fun i -> Array.unsafe_get a i) idx)
  | Vals a -> Vals (Array.map (fun i -> Array.unsafe_get a i) idx)

let concat_col a b =
  if col_length a = 0 then b
  else if col_length b = 0 then a
  else
    match (a, b) with
    | (Ints x, Ints y) -> Ints (Array.append x y)
    | (Nodes x, Nodes y) -> Nodes (Array.append x y)
    | (Bools x, Bools y) -> Bools (Array.append x y)
    | (Strs x, Strs y) -> Strs (Array.append x y)
    | (Vals x, Vals y) -> Vals (Array.append x y)
    | _ ->
      let la = col_length a and lb = col_length b in
      boxed_rows (la + lb);
      Vals
        (Array.init (la + lb) (fun i ->
             if i < la then col_get a i else col_get b (i - la)))

(* ------------------------------------------------------------------ *)
(* Construction and accessors                                          *)
(* ------------------------------------------------------------------ *)

let schema t = t.schema
let cardinal t = t.nrows
let cols t = t.cols

let of_cols schema cols =
  let nrows = if Array.length cols = 0 then 0 else col_length cols.(0) in
  Array.iter
    (fun c ->
      if col_length c <> nrows then
        invalid_arg "Relation.of_cols: ragged columns")
    cols;
  if List.length schema <> Array.length cols then
    invalid_arg "Relation.of_cols: schema/column arity mismatch";
  { schema; nrows; cols }

let empty schema =
  { schema; nrows = 0;
    cols = Array.of_list (List.map (fun _ -> Ints [||]) schema) }

(* Column type detection when building from boxed rows: a uniform cell
   kind gets a typed vector, anything mixed stays boxed. *)
let column_of_cells n get =
  if n = 0 then Ints [||]
  else
    let kind v =
      match (v : Value.t) with
      | Value.Int _ -> 0
      | Value.Nd _ -> 1
      | Value.Bool _ -> 2
      | Value.Str _ -> 3
      | Value.Dbl _ -> 4
    in
    let k0 = kind (get 0) in
    let uniform = ref true in
    for i = 1 to n - 1 do
      if kind (get i) <> k0 then uniform := false
    done;
    if not !uniform then begin
      boxed_rows n;
      Vals (Array.init n get)
    end
    else
      match get 0 with
      | Value.Int _ ->
        Ints
          (Array.init n (fun i ->
               match get i with Value.Int x -> x | _ -> assert false))
      | Value.Nd _ ->
        Nodes
          (Array.init n (fun i ->
               match get i with Value.Nd x -> x | _ -> assert false))
      | Value.Bool _ ->
        Bools
          (Array.init n (fun i ->
               match get i with Value.Bool x -> x | _ -> assert false))
      | Value.Str _ ->
        Strs
          (Array.init n (fun i ->
               match get i with Value.Str x -> x | _ -> assert false))
      | Value.Dbl _ ->
        boxed_rows n;
        Vals (Array.init n get)

let col_of_values (a : Value.t array) =
  column_of_cells (Array.length a) (fun i -> a.(i))

let create schema rows =
  let width = List.length schema in
  List.iter
    (fun r ->
      if Array.length r <> width then
        invalid_arg
          (Printf.sprintf "Relation.create: row width %d, schema width %d"
             (Array.length r) width))
    rows;
  let ra = Array.of_list rows in
  let n = Array.length ra in
  { schema; nrows = n;
    cols = Array.init width (fun j -> column_of_cells n (fun i -> ra.(i).(j))) }

let column_index t c =
  let rec go i = function
    | [] -> invalid_arg (Printf.sprintf "Relation: unknown column %S" c)
    | x :: rest -> if String.equal x c then i else go (i + 1) rest
  in
  go 0 t.schema

let col t name = t.cols.(column_index t name)

let row t i = Array.map (fun c -> col_get c i) t.cols

let rows t =
  let out = ref [] in
  for i = t.nrows - 1 downto 0 do
    out := row t i :: !out
  done;
  !out

let get t r c = r.(column_index t c)

let gather t idx =
  { schema = t.schema; nrows = Array.length idx;
    cols = Array.map (fun c -> gather_col c idx) t.cols }

let concat_many schema = function
  | [] -> empty schema
  | [ r ] -> r
  | r0 :: _ as rels ->
    let nrows = List.fold_left (fun acc r -> acc + r.nrows) 0 rels in
    batch nrows;
    let cols =
      Array.mapi
        (fun j _ ->
          List.fold_left
            (fun acc r -> concat_col acc r.cols.(j))
            (Ints [||]) rels)
        r0.cols
    in
    { schema; nrows; cols }

(* ------------------------------------------------------------------ *)
(* Projection / selection                                              *)
(* ------------------------------------------------------------------ *)

(* Columnar projection is column-pointer selection: no row is copied. *)
let project renames t =
  let pick =
    Array.of_list (List.map (fun (_, old) -> col t old) renames)
  in
  { schema = List.map fst renames; nrows = t.nrows; cols = pick }

let select_bool name t =
  batch t.nrows;
  let c = col t name in
  let idx = Array.make t.nrows 0 in
  let n = ref 0 in
  (match c with
  | Bools a ->
    for i = 0 to t.nrows - 1 do
      if Array.unsafe_get a i then begin
        idx.(!n) <- i;
        incr n
      end
    done
  | _ ->
    boxed_rows t.nrows;
    for i = 0 to t.nrows - 1 do
      if Value.to_bool (col_get c i) then begin
        idx.(!n) <- i;
        incr n
      end
    done);
  gather t (Array.sub idx 0 !n)

let append_col name c t =
  if col_length c <> t.nrows then
    invalid_arg "Relation.append_col: length mismatch";
  { schema = t.schema @ [ name ]; nrows = t.nrows;
    cols = Array.append t.cols [| c |] }

(* ------------------------------------------------------------------ *)
(* Row hashing infrastructure                                          *)
(* ------------------------------------------------------------------ *)

let row_key r = Array.to_list (Array.map Value.key r)

(* Row-keyed hash table over boxed rows; the generic fallback identity
   for distinct/difference and the µ seen-set when a column isn't
   int-like. *)
module Row_tbl = Hashtbl.Make (struct
  type t = Value.t array

  let equal a b =
    Array.length a = Array.length b
    &&
    let rec go i =
      i < 0 || (Value.equal_key_cell a.(i) b.(i) && go (i - 1))
    in
    go (Array.length a - 1)

  let hash r = Array.fold_left (fun h c -> (h * 31) + Value.hash_cell c) 17 r
end)

(* Open-addressing set of int pairs backed by off-heap [Bigarray]
   vectors — the µ/µ∆ seen-set and the distinct kernel key their rows
   as packed ints ({!int_rep}), so membership costs two unboxed probes
   and the GC never scans the table. *)
module Pair_set = struct
  type ba = (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t

  type t = {
    mutable k1 : ba;
    mutable k2 : ba;
    mutable mask : int;
    mutable size : int;
  }

  let absent = min_int

  let make_ba n : ba =
    let a = Bigarray.Array1.create Bigarray.int Bigarray.c_layout n in
    Bigarray.Array1.fill a absent;
    a

  let create hint =
    let cap = ref 16 in
    while !cap < hint * 2 do
      cap := !cap * 2
    done;
    { k1 = make_ba !cap; k2 = make_ba !cap; mask = !cap - 1; size = 0 }

  let slot_hash a b = ((a * 0x9e3779b1) lxor (b * 0x85ebca6b)) land max_int

  let rec insert_raw t a b =
    let i = ref (slot_hash a b land t.mask) in
    let res = ref (-1) in
    while !res < 0 do
      let x = Bigarray.Array1.unsafe_get t.k1 !i in
      if x = absent then begin
        Bigarray.Array1.unsafe_set t.k1 !i a;
        Bigarray.Array1.unsafe_set t.k2 !i b;
        t.size <- t.size + 1;
        res := 1
      end
      else if x = a && Bigarray.Array1.unsafe_get t.k2 !i = b then res := 0
      else i := (!i + 1) land t.mask
    done;
    if !res = 1 && t.size * 3 > (t.mask + 1) * 2 then grow t;
    !res = 1

  and grow t =
    let old1 = t.k1 and old2 = t.k2 in
    let cap = (t.mask + 1) * 2 in
    t.k1 <- make_ba cap;
    t.k2 <- make_ba cap;
    t.mask <- cap - 1;
    t.size <- 0;
    for i = 0 to Bigarray.Array1.dim old1 - 1 do
      let a = Bigarray.Array1.unsafe_get old1 i in
      if a <> absent then
        ignore (insert_raw t a (Bigarray.Array1.unsafe_get old2 i))
    done

  (* [add t a b] inserts and reports whether the pair was fresh. *)
  let add t a b = insert_raw t a b
end

(* ------------------------------------------------------------------ *)
(* Distinct / union / difference                                       *)
(* ------------------------------------------------------------------ *)

let distinct_generic t =
  (* Bucket candidate rows by combined cell hash; verify with cell
     equality. Works for any column mix without boxing typed cells. *)
  let w = Array.length t.cols in
  let tbl : (int, int list ref) Hashtbl.t = Hashtbl.create (t.nrows * 2) in
  let idx = Array.make t.nrows 0 in
  let n = ref 0 in
  let cols = t.cols in
  for i = 0 to t.nrows - 1 do
    let h = ref 17 in
    for j = 0 to w - 1 do
      h := (!h * 31) + col_hash (Array.unsafe_get cols j) i
    done;
    let eq_row k =
      let rec go j = j >= w || (col_eq cols.(j) i cols.(j) k && go (j + 1)) in
      go 0
    in
    match Hashtbl.find_opt tbl !h with
    | Some bucket ->
      if not (List.exists eq_row !bucket) then begin
        bucket := i :: !bucket;
        idx.(!n) <- i;
        incr n
      end
    | None ->
      Hashtbl.add tbl !h (ref [ i ]);
      idx.(!n) <- i;
      incr n
  done;
  if !n = t.nrows then t else gather t (Array.sub idx 0 !n)

(* Allocation-free quadratic scan — the curriculum-style workloads run
   thousands of per-binding fixpoints over relations of a handful of
   rows, where a hash table (let alone an off-heap Pair_set) per call
   costs more than the scan. *)
let distinct_small t =
  let w = Array.length t.cols in
  let cols = t.cols in
  let eq_rows i k =
    let rec go j = j >= w || (col_eq cols.(j) i cols.(j) k && go (j + 1)) in
    go 0
  in
  let idx = Array.make t.nrows 0 in
  let n = ref 0 in
  for i = 0 to t.nrows - 1 do
    let dup = ref false in
    for k = 0 to !n - 1 do
      if (not !dup) && eq_rows i idx.(k) then dup := true
    done;
    if not !dup then begin
      idx.(!n) <- i;
      incr n
    end
  done;
  if !n = t.nrows then t else gather t (Array.sub idx 0 !n)

let distinct t =
  batch t.nrows;
  if t.nrows <= 1 then t
  else if t.nrows <= 24 then distinct_small t
  else
    let w = Array.length t.cols in
    let reps = Array.map int_rep t.cols in
    let all_int = Array.for_all Option.is_some reps in
    if all_int && w >= 1 && w <= 2 then begin
      let set = Pair_set.create t.nrows in
      let idx = Array.make t.nrows 0 in
      let n = ref 0 in
      let keep i =
        idx.(!n) <- i;
        incr n
      in
      (* monomorphic loops for the dominant column shapes; the closure
         pair from [int_rep] covers the rest *)
      (match t.cols with
      | [| Ints a; Nodes b |] ->
        for i = 0 to t.nrows - 1 do
          if
            Pair_set.add set
              (Array.unsafe_get a i lsl 2)
              (((Array.unsafe_get b i).Node.id lsl 2) lor 1)
          then keep i
        done
      | [| Ints a; Ints b |] ->
        for i = 0 to t.nrows - 1 do
          if
            Pair_set.add set
              (Array.unsafe_get a i lsl 2)
              (Array.unsafe_get b i lsl 2)
          then keep i
        done
      | _ ->
        let r1 = Option.get reps.(0) in
        let r2 = if w = 2 then Option.get reps.(1) else fun _ -> 0 in
        for i = 0 to t.nrows - 1 do
          if Pair_set.add set (r1 i) (r2 i) then keep i
        done);
      if !n = t.nrows then t else gather t (Array.sub idx 0 !n)
    end
    else distinct_generic t

let permute_to target t =
  if t.schema = target then t
  else project (List.map (fun c -> (c, c)) target) t

let union a b =
  if List.sort compare a.schema <> List.sort compare b.schema then
    invalid_arg "Relation.union: incompatible schemas";
  let b' = permute_to a.schema b in
  if a.nrows = 0 then { b' with schema = a.schema }
  else if b'.nrows = 0 then a
  else begin
    batch (a.nrows + b'.nrows);
    { schema = a.schema; nrows = a.nrows + b'.nrows;
      cols = Array.map2 concat_col a.cols b'.cols }
  end

let difference a b =
  if List.sort compare a.schema <> List.sort compare b.schema then
    invalid_arg "Relation.difference: incompatible schemas";
  let b' = permute_to a.schema b in
  (* Bag difference is cold (aggregate default branches only): the boxed
     path keeps the EXCEPT ALL multiplicity semantics simple. *)
  batch (a.nrows + b'.nrows);
  boxed_rows (a.nrows + b'.nrows);
  let counts = Row_tbl.create 64 in
  for i = 0 to b'.nrows - 1 do
    let r = row b' i in
    Row_tbl.replace counts r
      (1 + Option.value ~default:0 (Row_tbl.find_opt counts r))
  done;
  let idx = Array.make a.nrows 0 in
  let n = ref 0 in
  for i = 0 to a.nrows - 1 do
    let r = row a i in
    match Row_tbl.find_opt counts r with
    | Some k when k > 0 -> Row_tbl.replace counts r (k - 1)
    | _ ->
      idx.(!n) <- i;
      incr n
  done;
  gather a (Array.sub idx 0 !n)

(* ------------------------------------------------------------------ *)
(* Joins                                                               *)
(* ------------------------------------------------------------------ *)

let rename_clashes left_schema right_schema =
  List.map
    (fun c -> if List.mem c left_schema then c ^ "'" else c)
    right_schema

(* Join index: combined key hash → candidate row indices (collisions
   filtered at probe time by cell equality). Cached weakly per physical
   relation: memoized loop-invariant subplans re-enter [equi_join] with
   the physically same relation every fixpoint round. *)
module Index_cache = Ephemeron.K1.Make (struct
  type nonrec t = t

  let equal = ( == )
  let hash = Hashtbl.hash
end)

type join_index = (int, int list ref) Hashtbl.t

let join_indexes : (int array * join_index) list Index_cache.t =
  Index_cache.create 64

let key_hash cols (kidx : int array) i =
  let h = ref 17 in
  for j = 0 to Array.length kidx - 1 do
    h := (!h * 31) + col_hash (Array.unsafe_get cols (Array.unsafe_get kidx j)) i
  done;
  !h

let build_index (kidx : int array) rel : join_index =
  let tbl = Hashtbl.create (rel.nrows * 2) in
  for i = rel.nrows - 1 downto 0 do
    let h = key_hash rel.cols kidx i in
    match Hashtbl.find_opt tbl h with
    | Some bucket -> bucket := i :: !bucket
    | None -> Hashtbl.add tbl h (ref [ i ])
  done;
  tbl

let index_for kidx rel =
  let existing =
    match Index_cache.find_opt join_indexes rel with
    | Some l -> l
    | None -> []
  in
  match List.find_opt (fun (i, _) -> i = kidx) existing with
  | Some (_, tbl) -> tbl
  | None ->
    let tbl = build_index kidx rel in
    Index_cache.replace join_indexes rel ((kidx, tbl) :: existing);
    tbl

module Ibuf = struct
  type t = { mutable a : int array; mutable n : int }

  let create () = { a = Array.make 64 0; n = 0 }

  let push b v =
    if b.n = Array.length b.a then begin
      let a' = Array.make (b.n * 2) 0 in
      Array.blit b.a 0 a' 0 b.n;
      b.a <- a'
    end;
    b.a.(b.n) <- v;
    b.n <- b.n + 1

  let to_array b = Array.sub b.a 0 b.n
end

(* Per-key-pair equality, precompiled per join call: the probe loop
   runs one monomorphic closure per key instead of re-dispatching on
   the column variants for every candidate. *)
let key_eq_fns l lidx r ridx =
  Array.init (Array.length lidx) (fun k ->
      let ca = l.cols.(lidx.(k)) and cb = r.cols.(ridx.(k)) in
      match (ca, cb) with
      | (Ints x, Ints y) ->
        fun i j -> Array.unsafe_get x i = Array.unsafe_get y j
      | (Nodes x, Nodes y) ->
        fun i j ->
          (Array.unsafe_get x i).Node.id = (Array.unsafe_get y j).Node.id
      | (Strs x, Strs y) ->
        fun i j -> String.equal (Array.unsafe_get x i) (Array.unsafe_get y j)
      | (Bools x, Bools y) ->
        fun i j -> Bool.equal (Array.unsafe_get x i) (Array.unsafe_get y j)
      | _ -> fun i j -> col_eq ca i cb j)

(* A fixpoint round joins a big (often loop-invariant) build side
   against a handful of delta rows: below this probe-side size the
   hash index loses to a direct scan with the precompiled equality
   closures (no per-row key hashing, no bucket allocation). *)
let small_probe = 16

let equi_join ?extra keys l r =
  batch (l.nrows + r.nrows);
  let lidx =
    Array.of_list (List.map (fun (lc, _) -> column_index l lc) keys)
  in
  let ridx =
    Array.of_list (List.map (fun (_, rc) -> column_index r rc) keys)
  in
  let nk = Array.length lidx in
  let eqs = key_eq_fns l lidx r ridx in
  let lsel = Ibuf.create () and rsel = Ibuf.create () in
  let pair i j =
    let rec keys_eq k =
      k >= nk || ((Array.unsafe_get eqs k) i j && keys_eq (k + 1))
    in
    if keys_eq 0 && match extra with None -> true | Some f -> f i j
    then begin
      Ibuf.push lsel i;
      Ibuf.push rsel j
    end
  in
  if r.nrows <= small_probe then
    for i = 0 to l.nrows - 1 do
      for j = 0 to r.nrows - 1 do
        pair i j
      done
    done
  else if l.nrows > 4 * r.nrows then begin
    (* Index the bigger (typically loop-invariant, physically stable —
       so [index_for]'s ephemeron cache amortizes the build) left side
       and probe with the handful of right rows. Pairs come out probe-
       major; re-sort below keeps the left-major output order of the
       other branches. *)
    let tbl = index_for lidx l in
    for j = 0 to r.nrows - 1 do
      let h = key_hash r.cols ridx j in
      match Hashtbl.find_opt tbl h with
      | None -> ()
      | Some bucket -> List.iter (fun i -> pair i j) !bucket
    done
  end
  else begin
    let tbl = index_for ridx r in
    for i = 0 to l.nrows - 1 do
      let h = key_hash l.cols lidx i in
      match Hashtbl.find_opt tbl h with
      | None -> ()
      | Some bucket -> List.iter (fun j -> pair i j) !bucket
    done
  end;
  let la = Ibuf.to_array lsel and ra = Ibuf.to_array rsel in
  (* left-major, then right-ascending — identical for every branch *)
  let () =
    let n = Array.length la in
    let perm = Array.init n (fun k -> k) in
    let sorted = ref true in
    for k = 1 to n - 1 do
      if
        la.(k - 1) > la.(k)
        || (la.(k - 1) = la.(k) && ra.(k - 1) > ra.(k))
      then sorted := false
    done;
    if not !sorted then begin
      Array.sort
        (fun x y ->
          let c = Int.compare la.(x) la.(y) in
          if c <> 0 then c else Int.compare ra.(x) ra.(y))
        perm;
      let la' = Array.map (fun k -> la.(k)) perm
      and ra' = Array.map (fun k -> ra.(k)) perm in
      Array.blit la' 0 la 0 n;
      Array.blit ra' 0 ra 0 n
    end
  in
  let out_schema = l.schema @ rename_clashes l.schema r.schema in
  { schema = out_schema; nrows = Array.length la;
    cols =
      Array.append
        (Array.map (fun c -> gather_col c la) l.cols)
        (Array.map (fun c -> gather_col c ra) r.cols) }

(* Existential join: keep each left row at most once, as soon as one
   matching right row is found — never materializes the match pairs.
   The δ∘π∘⋈ pattern the compiler emits for predicates like
   [$doc//x[a = $y/b]] reduces to this. *)
let semi_join ?extra keys l r =
  batch (l.nrows + r.nrows);
  let lidx =
    Array.of_list (List.map (fun (lc, _) -> column_index l lc) keys)
  in
  let ridx =
    Array.of_list (List.map (fun (_, rc) -> column_index r rc) keys)
  in
  let nk = Array.length lidx in
  let eqs = key_eq_fns l lidx r ridx in
  let lsel = Ibuf.create () in
  let matches i j =
    let rec keys_eq k =
      k >= nk || ((Array.unsafe_get eqs k) i j && keys_eq (k + 1))
    in
    keys_eq 0 && match extra with None -> true | Some f -> f i j
  in
  if r.nrows <= small_probe then
    for i = 0 to l.nrows - 1 do
      let rec scan j =
        if j < r.nrows then
          if matches i j then Ibuf.push lsel i else scan (j + 1)
      in
      scan 0
    done
  else begin
    let tbl = index_for ridx r in
    for i = 0 to l.nrows - 1 do
      let h = key_hash l.cols lidx i in
      match Hashtbl.find_opt tbl h with
      | None -> ()
      | Some bucket ->
        if List.exists (fun j -> matches i j) !bucket then Ibuf.push lsel i
    done
  end;
  gather l (Ibuf.to_array lsel)

let cross l r =
  batch (l.nrows * r.nrows);
  let n = l.nrows * r.nrows in
  let la = Array.make n 0 and ra = Array.make n 0 in
  let k = ref 0 in
  for i = 0 to l.nrows - 1 do
    for j = 0 to r.nrows - 1 do
      la.(!k) <- i;
      ra.(!k) <- j;
      incr k
    done
  done;
  let out_schema = l.schema @ rename_clashes l.schema r.schema in
  { schema = out_schema; nrows = n;
    cols =
      Array.append
        (Array.map (fun c -> gather_col c la) l.cols)
        (Array.map (fun c -> gather_col c ra) r.cols) }

(* ------------------------------------------------------------------ *)
(* Grouping, numbering, ordering                                       *)
(* ------------------------------------------------------------------ *)

let group_count ~partition ~result t =
  batch t.nrows;
  match partition with
  | None -> of_cols [ result ] [| Ints [| t.nrows |] |]
  | Some part ->
    let c = col t part in
    (* first-appearance order of groups, like the row engine *)
    let tbl : (int, int list ref) Hashtbl.t = Hashtbl.create 64 in
    let reps = Ibuf.create () in
    let counts = Ibuf.create () in
    for i = 0 to t.nrows - 1 do
      let h = col_hash c i in
      let bucket =
        match Hashtbl.find_opt tbl h with
        | Some b -> b
        | None ->
          let b = ref [] in
          Hashtbl.add tbl h b;
          b
      in
      match List.find_opt (fun g -> col_eq c i c reps.Ibuf.a.(g)) !bucket with
      | Some g -> counts.Ibuf.a.(g) <- counts.Ibuf.a.(g) + 1
      | None ->
        let g = reps.Ibuf.n in
        bucket := g :: !bucket;
        Ibuf.push reps i;
        Ibuf.push counts 1
    done;
    let rep_idx = Ibuf.to_array reps in
    of_cols [ part; result ]
      [| gather_col c rep_idx; Ints (Ibuf.to_array counts) |]

let sort_idx cols_to_sort t =
  let cmp i j =
    let rec go = function
      | [] -> 0
      | c :: rest ->
        let o = col_order c i c j in
        if o <> 0 then o else go rest
    in
    go cols_to_sort
  in
  (* index tiebreak = stability, like the row engine's stable_sort *)
  let idx = Array.init t.nrows (fun i -> i) in
  Array.sort (fun i j -> let o = cmp i j in if o <> 0 then o else Int.compare i j) idx;
  idx

let sort_by names t =
  batch t.nrows;
  let cs = List.map (col t) names in
  gather t (sort_idx cs t)

let number ~order ~partition ~result t =
  batch t.nrows;
  let keys = (match partition with None -> [] | Some p -> [ p ]) @ order in
  let cs = List.map (col t) keys in
  let idx = sort_idx cs t in
  let sorted = gather t idx in
  let ranks = Array.make t.nrows 0 in
  (match partition with
  | None -> for i = 0 to t.nrows - 1 do ranks.(i) <- i + 1 done
  | Some p ->
    let pc = col sorted p in
    let rank = ref 0 in
    for i = 0 to t.nrows - 1 do
      if i > 0 && col_eq pc i pc (i - 1) then incr rank else rank := 1;
      ranks.(i) <- !rank
    done);
  append_col result (Ints ranks) sorted

let tag_counter = ref 0

let tag ~result t =
  batch t.nrows;
  let tags =
    Array.init t.nrows (fun _ ->
        incr tag_counter;
        !tag_counter)
  in
  append_col result (Ints tags) t

let pp ppf t =
  Format.fprintf ppf "@[<v>%s@," (String.concat " | " t.schema);
  List.iter
    (fun r ->
      Format.fprintf ppf "%s@,"
        (String.concat " | "
           (Array.to_list (Array.map (Format.asprintf "%a" Value.pp) r))))
    (rows t);
  Format.fprintf ppf "@]"
