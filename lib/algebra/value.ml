module Atom = Fixq_xdm.Atom
module Node = Fixq_xdm.Node

type t =
  | Int of int
  | Dbl of float
  | Str of string
  | Bool of bool
  | Nd of Node.t

let kind_rank = function
  | Int _ -> 0
  | Dbl _ -> 1
  | Str _ -> 2
  | Bool _ -> 3
  | Nd _ -> 4

let compare a b =
  match (a, b) with
  | (Int x, Int y) -> Int.compare x y
  | (Dbl x, Dbl y) -> Float.compare x y
  | (Str x, Str y) -> String.compare x y
  | (Bool x, Bool y) -> Bool.compare x y
  | (Nd x, Nd y) -> Node.compare_doc_order x y
  | _ -> Int.compare (kind_rank a) (kind_rank b)

let equal a b = compare a b = 0

let of_atom = function
  | Atom.Int i -> Int i
  | Atom.Dbl f -> Dbl f
  | Atom.Str s -> Str s
  | Atom.Bool b -> Bool b

let to_atom = function
  | Int i -> Atom.Int i
  | Dbl f -> Atom.Dbl f
  | Str s -> Atom.Str s
  | Bool b -> Atom.Bool b
  | Nd n -> Atom.Str (Node.string_value n)

let compare_value a b = Atom.compare_value (to_atom a) (to_atom b)

let as_node who = function
  | Nd n -> n
  | _ -> Atom.type_error "%s: expected a node cell" who

let to_bool = function
  | Bool b -> b
  | v -> Atom.to_bool (to_atom v)

type key = KI of int | KF of float | KS of string | KB of bool | KN of int

let key = function
  | Int i -> KI i
  | Dbl f -> KF f
  | Str s -> KS s
  | Bool b -> KB b
  | Nd n -> KN n.Node.id

(* Same equivalence as structural (=) on [key] — notably NaN ≠ NaN and
   nodes by identity — without allocating the key. These feed the hot
   row hash tables (distinct / difference / join indexes), where the
   per-cell [key] constructor plus per-row key list used to dominate. *)
let equal_key_cell a b =
  match (a, b) with
  | (Int x, Int y) -> Int.equal x y
  | (Dbl x, Dbl y) -> x = y
  | (Str x, Str y) -> String.equal x y
  | (Bool x, Bool y) -> Bool.equal x y
  | (Nd x, Nd y) -> x.Node.id = y.Node.id
  | _ -> false

let hash_cell = function
  | Int i -> Hashtbl.hash i
  | Dbl f -> Hashtbl.hash f
  | Str s -> Hashtbl.hash s
  | Bool b -> Hashtbl.hash b
  (* salted so node ids rarely collide with equal Int cells *)
  | Nd n -> 0x9e3779b1 * (n.Node.id + 1)

let pp ppf = function
  | Int i -> Format.pp_print_int ppf i
  | Dbl f -> Format.pp_print_float ppf f
  | Str s -> Format.fprintf ppf "%S" s
  | Bool b -> Format.pp_print_bool ppf b
  | Nd n -> Node.pp ppf n
