module Item = Fixq_xdm.Item
module Atom = Fixq_xdm.Atom
module Axis = Fixq_xdm.Axis
module Ast = Fixq_lang.Ast
module Distributivity = Fixq_lang.Distributivity
module Smap = Map.Make (String)

exception Unsupported of string

let unsupported fmt = Format.kasprintf (fun s -> raise (Unsupported s)) fmt

type compiled = {
  fix_id : int;
  body : Plan.t;
  binding_refs : (string * int) list;
}

type cenv = {
  loop : Plan.t;  (** schema [iter] *)
  vars : Plan.t Smap.t;  (** each schema [iter; item] *)
  functions : (string, Ast.fundef) Hashtbl.t;
  inlining : string list;  (** functions currently being inlined *)
  hoist : hoist_frame option;
      (** set inside an iteration: loop-invariant subexpressions compile
          against the outer scope and are lifted once at their root *)
  locals : string list;
      (** variables introduced since the last iteration boundary
          (the iterated binding, inner lets, inlined parameters) *)
}

and hoist_frame = { outer : cenv; frame_map : Plan.t }

(* Does the expression read the dynamic context of the CURRENT scope
   ('.', a leading '/', a relative step, or a context-dependent
   built-in)? Path right-hand sides and filter predicates install their
   own context and do not count. *)
let rec uses_context (e : Ast.expr) =
  match e with
  | Ast.Context_item | Ast.Root | Ast.Axis_step _ -> true
  | Ast.Call (("position" | "last"), _) -> true
  | Ast.Call (("string" | "string-length" | "normalize-space" | "number"
              | "name" | "local-name" | "root"), []) ->
    true
  | Ast.Call ("id", [ arg ]) -> true || uses_context arg
  | Ast.Path (a, _) -> uses_context a
  | Ast.Filter (a, _) -> uses_context a
  | Ast.Literal _ | Ast.Empty_seq | Ast.Var _ -> false
  | Ast.Sequence (a, b) | Ast.Union (a, b) | Ast.Except (a, b)
  | Ast.Intersect (a, b) | Ast.Arith (_, a, b) | Ast.Gen_cmp (_, a, b)
  | Ast.Val_cmp (_, a, b) | Ast.Node_is (a, b) | Ast.Node_before (a, b)
  | Ast.Node_after (a, b) | Ast.And (a, b) | Ast.Or (a, b)
  | Ast.Range (a, b) ->
    uses_context a || uses_context b
  | Ast.Neg a | Ast.Text_constr a | Ast.Attr_constr (_, a)
  | Ast.Comment_constr a | Ast.Doc_constr a | Ast.Comp_elem (_, a)
  | Ast.Instance_of (a, _) | Ast.Cast (a, _, _) | Ast.Castable (a, _, _) ->
    uses_context a
  | Ast.For { source; body; _ } -> uses_context source || uses_context body
  | Ast.Sort { source; key; body; _ } ->
    uses_context source || uses_context key || uses_context body
  | Ast.Let { value; body; _ } -> uses_context value || uses_context body
  | Ast.If (a, b, c) -> uses_context a || uses_context b || uses_context c
  | Ast.Quantified (_, _, a, b) -> uses_context a || uses_context b
  | Ast.Call (_, args) -> List.exists uses_context args
  | Ast.Elem_constr (_, attrs, content) ->
    List.exists
      (fun (_, pieces) ->
        List.exists
          (function Ast.A_lit _ -> false | Ast.A_expr e -> uses_context e)
          pieces)
      attrs
    || List.exists uses_context content
  | Ast.Typeswitch (a, cases, _, d) ->
    uses_context a
    || List.exists (fun (_, _, b) -> uses_context b) cases
    || uses_context d
  | Ast.Ifp { seed; body; _ } -> uses_context seed || uses_context body

let hoistable env e =
  match env.hoist with
  | None -> false
  | Some _ ->
    (not (List.exists (fun v -> Ast.is_free v e) env.locals))
    && (not (List.mem "." env.locals) || not (uses_context e))

(* A predicated step: [step[p1][p2]…] — the shapes whose filters can be
   pulled out of a path RHS (see the Path/Filter rewrite below). *)
let rec step_filter_chain = function
  | Ast.Axis_step _ -> true
  | Ast.Filter (b, _) -> step_filter_chain b
  | _ -> false

let ii = [ "iter"; "item" ]
let keep_ii = [ ("iter", "iter"); ("item", "item") ]

(* loop × single-value table *)
let const_table env v =
  Plan.Project
    (keep_ii, Plan.Cross (env.loop, Plan.Lit_table ([ "item" ], [ [| v |] ])))

let atomize p =
  Plan.Project
    ( [ ("iter", "iter"); ("item", "d") ],
      Plan.Fun (Plan.P_data, { Plan.fun_result = "d"; fun_args = [ "item" ] }, p)
    )

(* Per-iter boolean table from a set of "true" iters: loop gets false
   everywhere except the given iters. *)
let bool_table env true_iters =
  let truthy =
    Plan.Project
      ( [ ("iter", "iter"); ("item", "t") ],
        Plan.Fun
          (Plan.P_const (Value.Bool true), { Plan.fun_result = "t"; fun_args = [] },
           true_iters) )
  in
  let falsy =
    Plan.Project
      ( [ ("iter", "iter"); ("item", "f") ],
        Plan.Fun
          (Plan.P_const (Value.Bool false), { Plan.fun_result = "f"; fun_args = [] },
           Plan.Difference (env.loop, true_iters)) )
  in
  Plan.Union (truthy, falsy)

(* Iters (schema [iter]) in which [p]'s value has a truthy row. *)
let ebv_true_iters p =
  Plan.Distinct
    (Plan.Project
       ( [ ("iter", "iter") ],
         Plan.Select
           ( "b",
             Plan.Fun
               (Plan.P_ebv, { Plan.fun_result = "b"; fun_args = [ "item" ] }, p)
           ) ))

(* Per-iter EBV as a boolean [iter|item] table. *)
let ebv_table env p = bool_table env (ebv_true_iters p)

(* Restrict an [iter|item] table to a sub-loop (schema [iter]). *)
let restrict_to subloop p =
  Plan.Project
    (keep_ii, Plan.Join ({ Plan.equi = [ ("iter", "iter") ]; theta = [] }, p, subloop))

(* The loop-lifting "map" machinery shared by for, filter and general
   path right-hand sides: iterate [source] item-wise.

   map       : iter|item|inner   (inner = fresh per source row)
   loop'     : iter := inner
   item bind : the per-row singleton ($v or '.')
   lifted var: re-keyed to inner through map *)
let make_map source =
  let map = Plan.Tag ("inner", Plan.Distinct source) in
  let inner_loop = Plan.Project ([ ("iter", "inner") ], map) in
  let bind = Plan.Project ([ ("iter", "inner"); ("item", "item") ], map) in
  (map, inner_loop, bind)

let lift_var map v =
  (* v : iter|item ; map : iter|item|inner → inner-keyed iter|item
     (the join primes map's clashing columns, "inner" survives) *)
  Plan.Project
    ( [ ("iter", "inner"); ("item", "item") ],
      Plan.Join ({ Plan.equi = [ ("iter", "iter") ]; theta = [] }, v, map) )

let unmap map result =
  (* result : inner-keyed iter|item ; back to outer iters *)
  Plan.Distinct
    (Plan.Project
       ( [ ("iter", "iter'"); ("item", "item") ],
         Plan.Join
           ({ Plan.equi = [ ("iter", "inner") ]; theta = [] }, result, map) ))

let cmp_of : Ast.cmp -> Plan.cmp = function
  | Ast.Eq -> Plan.Ceq
  | Ast.Ne -> Plan.Cne
  | Ast.Lt -> Plan.Clt
  | Ast.Le -> Plan.Cle
  | Ast.Gt -> Plan.Cgt
  | Ast.Ge -> Plan.Cge

let rec comp env (e : Ast.expr) : Plan.t =
  match env.hoist with
  | Some { outer; frame_map }
    when hoistable env e
         && (match e with Ast.Var _ | Ast.Literal _ | Ast.Empty_seq -> false | _ -> true) ->
    (* Loop-invariant: compile once against the outer scope, lift the
       finished value into this iteration. Trivial leaves are excluded
       (Var lookups already resolve through lifting; literals are
       constant-per-iter anyway). *)
    lift_var frame_map (comp outer e)
  | _ -> comp_here env e

and comp_here env (e : Ast.expr) : Plan.t =
  match e with
  | Ast.Literal a -> const_table env (Value.of_atom a)
  | Ast.Empty_seq -> Plan.Lit_table (ii, [])
  | Ast.Var v -> (
    match Smap.find_opt v env.vars with
    | Some p -> p
    | None -> (
      match env.hoist with
      | Some { outer; frame_map } -> lift_var frame_map (comp outer (Ast.Var v))
      | None -> unsupported "unbound variable $%s in compiled body" v))
  | Ast.Context_item -> (
    match Smap.find_opt "." env.vars with
    | Some p -> p
    | None -> (
      match env.hoist with
      | Some { outer; frame_map }
        when not (List.mem "." env.locals) ->
        lift_var frame_map (comp outer Ast.Context_item)
      | _ -> unsupported "no context item in compiled body"))
  | Ast.Root ->
    let ctx = comp env Ast.Context_item in
    Plan.Distinct
      (Plan.Project
         ( [ ("iter", "iter"); ("item", "r") ],
           Plan.Fun
             (Plan.P_root, { Plan.fun_result = "r"; fun_args = [ "item" ] }, ctx)
         ))
  | Ast.Sequence (a, b) -> Plan.Union (comp env a, comp env b)
  | Ast.Union (a, b) -> Plan.Distinct (Plan.Union (comp env a, comp env b))
  | Ast.Except (a, b) ->
    Plan.Difference (Plan.Distinct (comp env a), Plan.Distinct (comp env b))
  | Ast.Intersect (a, b) ->
    let qa = Plan.Distinct (comp env a) and qb = Plan.Distinct (comp env b) in
    Plan.Distinct
      (Plan.Project
         ( keep_ii,
           Plan.Join
             ( { Plan.equi = [ ("iter", "iter"); ("item", "item") ]; theta = [] },
               qa, qb ) ))
  | Ast.Path (a, Ast.Axis_step { axis; test }) ->
    Plan.Template
      ( "step",
        Plan.Distinct (Plan.Step (axis, test, "item", Plan.Distinct (comp env a)))
      )
  | Ast.Path (a, Ast.Filter (b, p))
    when step_filter_chain b
         && (not (Distributivity.mentions_position p))
         && Distributivity.surely_non_numeric p ->
    (* a/step[p] ≡ (a/step)[p] for non-positional predicates (both
       denote { n ∈ step(a) : p(n) } — set-oriented mode already rejects
       position()/last() and numeric predicates). The left form maps b
       over every item of [a] (an |a| × loop blow-up before the step
       narrows anything); the right form keeps [a/step] a closed
       subexpression, so inside an iteration the hoist frame lifts it
       once instead of re-stepping the document every round. *)
    comp env (Ast.Filter (Ast.Path (a, b), p))
  | Ast.Path (a, b) -> compile_iteration env ~source:(comp env a) ~bind:"." b
  | Ast.Axis_step { axis; test } ->
    let ctx = comp env Ast.Context_item in
    Plan.Template
      ("step", Plan.Distinct (Plan.Step (axis, test, "item", Plan.Distinct ctx)))
  | Ast.Filter (a, Ast.Literal (Atom.Int k)) ->
    (* Positional predicate [k]: node sequences are in document order,
       so ̺ ordered by the item column per iteration recovers the
       position (the one place set-oriented compilation needs ̺). *)
    let numbered =
      Plan.Row_num
        ( { Plan.num_result = "rank"; num_order = [ "item" ];
            num_partition = Some "iter" },
          Plan.Distinct (comp env a) )
    in
    Plan.Project
      ( keep_ii,
        Plan.Select
          ( "hit",
            Plan.Fun
              ( Plan.P_cmp Plan.Ceq,
                { Plan.fun_result = "hit"; fun_args = [ "rank"; "k" ] },
                Plan.Fun
                  ( Plan.P_const (Value.Int k),
                    { Plan.fun_result = "k"; fun_args = [] },
                    numbered ) ) ) )
  | Ast.Filter (a, p) ->
    if Distributivity.mentions_position p then
      unsupported "position()/last() in a predicate (set-oriented mode)";
    if not (Distributivity.surely_non_numeric p) then
      unsupported "possibly positional (numeric) predicate";
    let q = comp env a in
    let (map, inner_loop, bind) = make_map q in
    let env' = iteration_env env map inner_loop bind in
    let kept = true_iters_of env' p in
    let result =
      Plan.Distinct
        (Plan.Project
           ( keep_ii,
             Plan.Join
               ({ Plan.equi = [ ("inner", "iter") ]; theta = [] }, map, kept)
           ))
    in
    Plan.Iterate
      { Plan.it_name = "filter"; it_source = q; it_map = map;
        it_result = result }
  | Ast.For { var; pos; source; body } ->
    if pos <> None then
      unsupported "positional for-variable (set-oriented mode)";
    compile_iteration env ~source:(comp env source) ~bind:var body
  | Ast.Let { var; value; body } ->
    let qv = comp env value in
    comp
      { env with vars = Smap.add var qv env.vars;
        locals = var :: env.locals }
      body
  | Ast.If (c, th, Ast.Empty_seq) ->
    (* The [where]-clause shape. Compiling straight to a restriction of
       the then-branch (a semijoin) avoids the boolean table and its
       loop-difference — this is what keeps the Section 4.1 variant (a
       general comparison inside [where]) algebraically distributive.
       The restriction applies to the branch RESULT: leaf values may
       arrive through hoist frames that bypass sub-loop narrowing. *)
    let true_iters = true_iters_of env c in
    restrict_to true_iters (comp { env with loop = true_iters } th)
  | Ast.If (c, th, el) ->
    let true_iters = true_iters_of env c in
    let false_iters = Plan.Difference (env.loop, true_iters) in
    let under subloop e =
      restrict_to subloop (comp { env with loop = subloop } e)
    in
    Plan.Union (under true_iters th, under false_iters el)
  | Ast.Quantified (q, v, source, pred) ->
    let qs = comp env source in
    let (map, inner_loop, bind) = make_map qs in
    let env' = iteration_env ~bind_var:v env map inner_loop bind in
    let pred_true = ebv_true_iters (comp env' pred) in
    let outer_with_true =
      Plan.Distinct
        (Plan.Project
           ( [ ("iter", "iter") ],
             Plan.Join
               ({ Plan.equi = [ ("inner", "iter") ]; theta = [] }, map, pred_true)
           ))
    in
    (match q with
    | Ast.Some_ -> bool_table env outer_with_true
    | Ast.Every ->
      (* every ≡ no witness where pred is false *)
      let pred_false =
        Plan.Difference (Plan.Project ([ ("iter", "inner") ], map), pred_true)
      in
      let outer_with_false =
        Plan.Distinct
          (Plan.Project
             ( [ ("iter", "iter") ],
               Plan.Join
                 ( { Plan.equi = [ ("inner", "iter") ]; theta = [] },
                   map, pred_false ) ))
      in
      bool_table env (Plan.Difference (env.loop, outer_with_false)))
  | Ast.Gen_cmp (c, a, b) ->
    let qa = atomize (comp env a) and qb = atomize (comp env b) in
    let matched =
      Plan.Distinct
        (Plan.Project
           ( [ ("iter", "iter") ],
             Plan.Join
               ( { Plan.equi = [ ("iter", "iter") ];
                   theta = [ ("item", cmp_of c, "item") ] },
                 qa, qb ) ))
    in
    bool_table env matched
  | Ast.Val_cmp (c, a, b) ->
    let qa = atomize (comp env a) and qb = atomize (comp env b) in
    Plan.Project
      ( [ ("iter", "iter"); ("item", "v") ],
        Plan.Fun
          ( Plan.P_cmp (cmp_of c),
            { Plan.fun_result = "v"; fun_args = [ "item"; "item'" ] },
            Plan.Join ({ Plan.equi = [ ("iter", "iter") ]; theta = [] }, qa, qb)
          ) )
  | Ast.Arith (op, a, b) ->
    let qa = atomize (comp env a) and qb = atomize (comp env b) in
    Plan.Project
      ( [ ("iter", "iter"); ("item", "v") ],
        Plan.Fun
          ( Plan.P_arith op,
            { Plan.fun_result = "v"; fun_args = [ "item"; "item'" ] },
            Plan.Join ({ Plan.equi = [ ("iter", "iter") ]; theta = [] }, qa, qb)
          ) )
  | Ast.Neg a -> comp env (Ast.Arith (Ast.Sub, Ast.Literal (Atom.Int 0), a))
  | Ast.And (a, b) | Ast.Or (a, b) ->
    let prim = match e with Ast.And _ -> Plan.P_and | _ -> Plan.P_or in
    let qa = ebv_table env (comp env a) and qb = ebv_table env (comp env b) in
    Plan.Project
      ( [ ("iter", "iter"); ("item", "v") ],
        Plan.Fun
          ( prim,
            { Plan.fun_result = "v"; fun_args = [ "item"; "item'" ] },
            Plan.Join ({ Plan.equi = [ ("iter", "iter") ]; theta = [] }, qa, qb)
          ) )
  | Ast.Node_is (a, b) ->
    (* node identity ≡ equality of node cells *)
    comp_binary_cmp env Plan.Ceq a b
  | Ast.Node_before (a, b) -> comp_binary_cmp env Plan.Clt a b
  | Ast.Node_after (a, b) -> comp_binary_cmp env Plan.Cgt a b
  | Ast.Call (f, args) -> comp_call env f args
  | Ast.Range _ -> unsupported "'to' ranges (set-oriented mode)"
  | Ast.Elem_constr _ | Ast.Comp_elem _ | Ast.Text_constr _
  | Ast.Attr_constr _ | Ast.Comment_constr _ | Ast.Doc_constr _ ->
    unsupported "node constructors in the algebra engine"
  | Ast.Typeswitch _ -> unsupported "typeswitch (set-oriented mode)"
  | Ast.Instance_of _ -> unsupported "'instance of' (set-oriented mode)"
  | Ast.Cast _ | Ast.Castable _ -> unsupported "'cast' (set-oriented mode)"
  | Ast.Sort _ -> unsupported "'order by' (set-oriented mode)"
  | Ast.Ifp _ -> unsupported "nested inflationary fixed points"

(* The sub-loop (schema [iter]) of iterations where condition [c] holds.
   Comparison- and existence-shaped conditions map to joins/projections
   directly (no boolean table, no loop difference). *)
and true_iters_of env (c : Ast.expr) : Plan.t =
  match c with
  | Ast.Gen_cmp (cmp, a, b) ->
    let qa = atomize (comp env a) and qb = atomize (comp env b) in
    Plan.Distinct
      (Plan.Project
         ( [ ("iter", "iter") ],
           Plan.Join
             ( { Plan.equi = [ ("iter", "iter") ];
                 theta = [ ("item", cmp_of cmp, "item") ] },
               qa, qb ) ))
  | Ast.And (a, b) ->
    Plan.Distinct
      (Plan.Project
         ( [ ("iter", "iter") ],
           Plan.Join
             ( { Plan.equi = [ ("iter", "iter") ]; theta = [] },
               true_iters_of env a, true_iters_of env b ) ))
  | Ast.Or (a, b) ->
    Plan.Distinct (Plan.Union (true_iters_of env a, true_iters_of env b))
  | Ast.Call ("exists", [ arg ]) ->
    Plan.Distinct (Plan.Project ([ ("iter", "iter") ], comp env arg))
  | Ast.Call ("empty", [ arg ]) ->
    Plan.Difference
      ( env.loop,
        Plan.Distinct (Plan.Project ([ ("iter", "iter") ], comp env arg)) )
  | Ast.Call ("not", [ arg ]) ->
    Plan.Difference (env.loop, true_iters_of env arg)
  | Ast.Call ("true", []) -> env.loop
  | Ast.Call ("false", []) -> Plan.Lit_table ([ "iter" ], [])
  | _ -> ebv_true_iters (comp env c)

and comp_binary_cmp env c a b =
  (* compare the raw cells (no atomization) — used for node order *)
  let qa = comp env a and qb = comp env b in
  Plan.Project
    ( [ ("iter", "iter"); ("item", "v") ],
      Plan.Fun
        ( Plan.P_cmp c,
          { Plan.fun_result = "v"; fun_args = [ "item"; "item'" ] },
          Plan.Join ({ Plan.equi = [ ("iter", "iter") ]; theta = [] }, qa, qb)
        ) )

and iteration_env ?(bind_var = ".") env map inner_loop bind =
  (* Only the iterated binding lives in the inner scope; every other
     variable (and the outer context item) resolves through the hoist
     frame, which lifts the outer value once at its root. *)
  { env with
    loop = inner_loop;
    vars = Smap.singleton bind_var bind;
    hoist = Some { outer = env; frame_map = map };
    locals = [ bind_var ] }

and compile_iteration env ~source ~bind body =
  let (map, inner_loop, bind_plan) = make_map source in
  let env' = iteration_env ~bind_var:bind env map inner_loop bind_plan in
  let result = comp env' body in
  Plan.Iterate
    { Plan.it_name = "loop"; it_source = source; it_map = map;
      it_result = unmap map result }

and comp_call env f args =
  match (f, args) with
  | ("doc", [ Ast.Literal (Atom.Str uri) ]) ->
    Plan.Project
      ( [ ("iter", "iter"); ("item", "item") ],
        Plan.Cross (env.loop, Plan.Doc uri) )
  | ("doc", _) -> unsupported "doc() with a dynamic URI"
  | ("id", [ arg ]) ->
    (* Without a context item the documents of the argument's own nodes
       provide the ID index (mirrors the interpreter's fn:id). *)
    let qarg = comp env arg in
    let ctx =
      match Smap.find_opt "." env.vars with Some p -> p | None -> qarg
    in
    Plan.Id_join (Plan.Distinct ctx, atomize qarg)
  | ("id", [ arg; node ]) ->
    Plan.Id_join (Plan.Distinct (comp env node), atomize (comp env arg))
  | ("count", [ arg ]) ->
    let q = comp env arg in
    let counts =
      Plan.Aggr
        ( Plan.A_count,
          { Plan.agg_result = "cnt"; agg_input = None; agg_partition = Some "iter" },
          q )
    in
    let found =
      Plan.Project ([ ("iter", "iter"); ("item", "cnt") ], counts)
    in
    let missing =
      Plan.Project
        ( [ ("iter", "iter"); ("item", "z") ],
          Plan.Fun
            ( Plan.P_const (Value.Int 0),
              { Plan.fun_result = "z"; fun_args = [] },
              Plan.Difference
                (env.loop, Plan.Project ([ ("iter", "iter") ], counts)) ) )
    in
    Plan.Union (found, missing)
  | ("empty", [ arg ]) ->
    let has_rows = Plan.Distinct (Plan.Project ([ ("iter", "iter") ], comp env arg)) in
    bool_table env (Plan.Difference (env.loop, has_rows))
  | ("exists", [ arg ]) ->
    let has_rows = Plan.Distinct (Plan.Project ([ ("iter", "iter") ], comp env arg)) in
    bool_table env has_rows
  | ("not", [ arg ]) ->
    let q = ebv_table env (comp env arg) in
    Plan.Project
      ( [ ("iter", "iter"); ("item", "v") ],
        Plan.Fun
          (Plan.P_not, { Plan.fun_result = "v"; fun_args = [ "item" ] }, q) )
  | ("boolean", [ arg ]) -> ebv_table env (comp env arg)
  | ("true", []) -> const_table env (Value.Bool true)
  | ("false", []) -> const_table env (Value.Bool false)
  | ("data", [ arg ]) -> atomize (comp env arg)
  | ("string", [ arg ]) -> atomize (comp env arg)
  | ("distinct-values", [ arg ]) -> Plan.Distinct (atomize (comp env arg))
  | ("root", [ arg ]) ->
    Plan.Distinct
      (Plan.Project
         ( [ ("iter", "iter"); ("item", "r") ],
           Plan.Fun
             ( Plan.P_root,
               { Plan.fun_result = "r"; fun_args = [ "item" ] },
               comp env arg ) ))
  | ("root", []) -> comp env Ast.Root
  | ("name", [ arg ]) ->
    Plan.Project
      ( [ ("iter", "iter"); ("item", "n") ],
        Plan.Fun
          (Plan.P_name, { Plan.fun_result = "n"; fun_args = [ "item" ] },
           comp env arg) )
  | ("sum", [ arg ]) -> comp_agg env Plan.A_sum arg (Some (Value.Int 0))
  | ("max", [ arg ]) -> comp_agg env Plan.A_max arg None
  | ("min", [ arg ]) -> comp_agg env Plan.A_min arg None
  | (("position" | "last"), _) ->
    unsupported "%s() (set-oriented mode)" f
  | _ -> (
    match Hashtbl.find_opt env.functions f with
    | None -> unsupported "function %s in the algebra engine" f
    | Some fd ->
      if List.mem f env.inlining then
        unsupported "recursive function %s in the algebra engine" f;
      if List.length fd.Ast.params <> List.length args then
        unsupported "arity mismatch calling %s" f;
      (* Inline: bind each parameter plan, compile the body. Function
         bodies see only their parameters (and globals, which the
         hybrid engine materializes into bindings). *)
      let param_plans =
        List.map2
          (fun (p, _) a -> (p, comp env a))
          fd.Ast.params args
      in
      let vars =
        List.fold_left
          (fun m (p, plan) -> Smap.add p plan m)
          (Smap.filter
             (fun k _ ->
               k <> "."
               && not (List.exists (fun (p, _) -> p = k) fd.Ast.params))
             env.vars)
          param_plans
      in
      comp
        { env with vars; inlining = f :: env.inlining;
          locals = List.map fst fd.Ast.params @ env.locals }
        fd.Ast.body)

and comp_agg env agg arg empty_default =
  let q = atomize (comp env arg) in
  let aggd =
    Plan.Aggr
      ( agg,
        { Plan.agg_result = "v"; agg_input = Some "item";
          agg_partition = Some "iter" },
        q )
  in
  let found = Plan.Project ([ ("iter", "iter"); ("item", "v") ], aggd) in
  match empty_default with
  | None -> found
  | Some dflt ->
    let missing =
      Plan.Project
        ( [ ("iter", "iter"); ("item", "z") ],
          Plan.Fun
            ( Plan.P_const dflt,
              { Plan.fun_result = "z"; fun_args = [] },
              Plan.Difference
                (env.loop, Plan.Project ([ ("iter", "iter") ], aggd)) ) )
    in
    Plan.Union (found, missing)

(* ------------------------------------------------------------------ *)
(* Entry points                                                        *)
(* ------------------------------------------------------------------ *)

let item_rows (items : Item.seq) =
  List.map
    (fun it ->
      match it with
      | Item.N n -> [| Value.Int 1; Value.Nd n |]
      | Item.A a -> [| Value.Int 1; Value.of_atom a |])
    items

let seed_table items = Plan.Lit_table (ii, item_rows items)
let items_relation items = Relation.create ii (item_rows items)

let single_loop = Plan.Lit_table ([ "iter" ], [ [| Value.Int 1 |] ])

let body ~functions ~recursion_var ?(bindings = []) e =
  let fix_id = Plan.fresh_fix_id () in
  let binding_refs =
    List.filter_map
      (fun v ->
        if String.equal v recursion_var then None
        else Some (v, Plan.fresh_fix_id ()))
      (List.sort_uniq String.compare bindings)
  in
  let vars =
    List.fold_left
      (fun m (v, id) -> Smap.add v (Plan.Fix_ref (id, ii)) m)
      Smap.empty binding_refs
  in
  let vars = Smap.add recursion_var (Plan.Fix_ref (fix_id, ii)) vars in
  let env =
    { loop = single_loop; vars; functions; inlining = []; hoist = None;
      locals = [] }
  in
  { fix_id; body = comp env e; binding_refs }

let expr ~functions ?(bindings = []) ?context e =
  let vars =
    List.fold_left
      (fun m (v, items) -> Smap.add v (seed_table items) m)
      Smap.empty bindings
  in
  let vars =
    match context with
    | None -> vars
    | Some it -> Smap.add "." (seed_table [ it ]) vars
  in
  comp
    { loop = single_loop; vars; functions; inlining = []; hoist = None;
      locals = [] }
    e

let result_items rel =
  match Relation.col rel "item" with
  | Relation.Nodes a ->
    (* All-node results go to document order. The µ loop hands sorted
       node columns over (sorted-run merge assembly), so this is the
       linear fast path of the ddo kernel, not a fallback sort. *)
    Item.ddo (List.map Item.node (Array.to_list a))
  | c ->
    let items =
      List.init (Relation.cardinal rel) (fun i ->
          match Relation.col_get c i with
          | Value.Nd n -> Item.N n
          | v -> Item.A (Value.to_atom v))
    in
    (* Document order for all-node results; leave atoms as produced. *)
    if List.for_all (function Item.N _ -> true | _ -> false) items then
      Item.ddo items
    else items
