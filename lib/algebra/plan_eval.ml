module Node = Fixq_xdm.Node
module Atom = Fixq_xdm.Atom
module Axis = Fixq_xdm.Axis
module Doc_registry = Fixq_xdm.Doc_registry
module Encoding = Fixq_store.Encoding
module Staircase = Fixq_store.Staircase
module Stats = Fixq_lang.Stats

exception Error of string

let err fmt = Format.kasprintf (fun s -> raise (Error s)) fmt

(* Plans are DAGs: compiled plans share subtrees (e.g. the context
   binding feeding both inputs of an id-join). Each physical node must
   evaluate exactly once per environment — operators like # (Tag) mint
   fresh values per evaluation, so re-evaluating a shared subtree would
   break join alignment. A fresh memo table is used per fixpoint
   round (the Fix_ref binding changes). *)
module Phys = Hashtbl.Make (struct
  type t = Plan.t

  let equal = ( == )

  (* Structural but depth-bounded (OCaml's generic hash): distinct
     physical nodes may collide only when structurally similar, and
     [equal] disambiguates. Hashing by operator symbol alone would
     degenerate every δ/π bucket into a linear scan. *)
  let hash = Hashtbl.hash
end)

type t = {
  registry : Doc_registry.t;
  max_iterations : int;
  stats : Stats.t;
  persistent : Relation.t Phys.t;
}

let create ?(registry = Doc_registry.default) ?(max_iterations = 1_000_000)
    ~stats () =
  { registry; max_iterations; stats; persistent = Phys.create 256 }

let stats t = t.stats

module Imap = Map.Make (Int)

let cmp_holds (c : Plan.cmp) ord =
  match c with
  | Plan.Ceq -> ord = 0
  | Plan.Cne -> ord <> 0
  | Plan.Clt -> ord < 0
  | Plan.Cle -> ord <= 0
  | Plan.Cgt -> ord > 0
  | Plan.Cge -> ord >= 0

let eval_prim prim (args : Value.t list) =
  match (prim, args) with
  | (Plan.P_cmp c, [ a; b ]) -> Value.Bool (cmp_holds c (Value.compare_value a b))
  | (Plan.P_arith op, [ a; b ]) -> (
    let ai = Value.to_atom a and bi = Value.to_atom b in
    match (op, ai, bi) with
    | (Fixq_lang.Ast.Add, Atom.Int x, Atom.Int y) -> Value.Int (x + y)
    | (Fixq_lang.Ast.Sub, Atom.Int x, Atom.Int y) -> Value.Int (x - y)
    | (Fixq_lang.Ast.Mul, Atom.Int x, Atom.Int y) -> Value.Int (x * y)
    | (Fixq_lang.Ast.Idiv, _, _) -> Value.Int (Atom.to_int ai / Atom.to_int bi)
    | (Fixq_lang.Ast.Mod, Atom.Int x, Atom.Int y) -> Value.Int (x mod y)
    | (Fixq_lang.Ast.Add, _, _) ->
      Value.Dbl (Atom.to_number ai +. Atom.to_number bi)
    | (Fixq_lang.Ast.Sub, _, _) ->
      Value.Dbl (Atom.to_number ai -. Atom.to_number bi)
    | (Fixq_lang.Ast.Mul, _, _) ->
      Value.Dbl (Atom.to_number ai *. Atom.to_number bi)
    | (Fixq_lang.Ast.Div, _, _) ->
      Value.Dbl (Atom.to_number ai /. Atom.to_number bi)
    | (Fixq_lang.Ast.Mod, _, _) ->
      Value.Dbl (Float.rem (Atom.to_number ai) (Atom.to_number bi)))
  | (Plan.P_and, [ a; b ]) -> Value.Bool (Value.to_bool a && Value.to_bool b)
  | (Plan.P_or, [ a; b ]) -> Value.Bool (Value.to_bool a || Value.to_bool b)
  | (Plan.P_not, [ a ]) -> Value.Bool (not (Value.to_bool a))
  | (Plan.P_data, [ a ]) -> (
    match a with Value.Nd n -> Value.Str (Node.string_value n) | v -> v)
  | (Plan.P_name, [ a ]) -> Value.Str (Node.name (Value.as_node "name" a))
  | (Plan.P_root, [ a ]) -> Value.Nd (Node.root (Value.as_node "root" a))
  | (Plan.P_ebv, [ a ]) -> (
    match a with Value.Nd _ -> Value.Bool true | v -> Value.Bool (Value.to_bool v))
  | (Plan.P_const v, []) -> v
  | _ -> err "⊚: arity mismatch"

let whitespace_tokens s =
  String.split_on_char ' ' s
  |> List.concat_map (String.split_on_char '\n')
  |> List.concat_map (String.split_on_char '\t')
  |> List.filter (fun x -> x <> "")

(* Axis steps repeat heavily across fixpoint rounds (lifted
   loop-invariant paths re-enter the step with the same context nodes),
   so results are cached per (axis, test, context node) — the in-memory
   analogue of reusing staircase-join scans. *)
let step_cache : (string * int, Node.t list) Hashtbl.t = Hashtbl.create 4096

let step_single axis test step_key (n : Node.t) =
  let key = (step_key, n.Node.id) in
  match Hashtbl.find_opt step_cache key with
  | Some r -> r
  | None ->
    let enc = Encoding.of_tree_cached n in
    let r = Staircase.step_nodes enc axis test [ n ] in
    Hashtbl.replace step_cache key r;
    r

let eval_step rel axis test col =
  let ci = Relation.column_index rel col in
  (* The textual cache key is a function of (axis, test) only — build it
     once per step evaluation, not once per row. *)
  let step_key =
    Axis.axis_to_string axis ^ "|" ^ Format.asprintf "%a" Axis.pp_test test
  in
  let out = ref [] in
  List.iter
    (fun row ->
      let n = Value.as_node "step" row.(ci) in
      List.iter
        (fun m ->
          let row' = Array.copy row in
          row'.(ci) <- Value.Nd m;
          out := row' :: !out)
        (step_single axis test step_key n))
    (Relation.rows rel);
  Relation.distinct (Relation.create (Relation.schema rel) (List.rev !out))

let _grouped_eval_step rel axis test col =
  let ci = Relation.column_index rel col in
  let groups = Hashtbl.create 16 in
  let order = ref [] in
  List.iter
    (fun row ->
      let key =
        Array.to_list row
        |> List.mapi (fun i v -> if i = ci then Value.KI 0 else Value.key v)
      in
      (match Hashtbl.find_opt groups key with
      | None ->
        order := (key, row) :: !order;
        Hashtbl.add groups key [ row.(ci) ]
      | Some vs -> Hashtbl.replace groups key (row.(ci) :: vs)))
    (Relation.rows rel);
  let out = ref [] in
  List.iter
    (fun (key, proto) ->
      let cells = Hashtbl.find groups key in
      let nodes = List.map (Value.as_node "step") cells in
      (* Partition by tree so each encoding sees its own pre ranks. *)
      let by_root = Hashtbl.create 4 in
      List.iter
        (fun n ->
          let r = Node.root n in
          let existing =
            Option.value ~default:[] (Hashtbl.find_opt by_root r.Node.id)
          in
          Hashtbl.replace by_root r.Node.id (n :: existing))
        nodes;
      Hashtbl.iter
        (fun _root ns ->
          let enc = Encoding.of_tree_cached (List.hd ns) in
          let result = Staircase.step_nodes enc axis test ns in
          List.iter
            (fun n ->
              let row = Array.copy proto in
              row.(ci) <- Value.Nd n;
              out := row :: !out)
            result)
        by_root)
    (List.rev !order);
  Relation.distinct (Relation.create (Relation.schema rel) (List.rev !out))

let eval_id_join registry ctx_rel arg_rel =
  ignore registry;
  (* Roots available per iter, from the ctx nodes. *)
  let iter_ci = Relation.column_index ctx_rel "iter" in
  let item_ci = Relation.column_index ctx_rel "item" in
  let roots_by_iter = Hashtbl.create 16 in
  List.iter
    (fun row ->
      match row.(item_ci) with
      | Value.Nd n ->
        let key = Value.key row.(iter_ci) in
        let r = Node.root n in
        let existing =
          Option.value ~default:[] (Hashtbl.find_opt roots_by_iter key)
        in
        if not (List.exists (fun x -> Node.equal x r) existing) then
          Hashtbl.replace roots_by_iter key (r :: existing)
      | _ -> ())
    (Relation.rows ctx_rel);
  let a_iter = Relation.column_index arg_rel "iter" in
  let a_item = Relation.column_index arg_rel "item" in
  let out = ref [] in
  List.iter
    (fun row ->
      let key = Value.key row.(a_iter) in
      let roots =
        Option.value ~default:[] (Hashtbl.find_opt roots_by_iter key)
      in
      let tokens =
        whitespace_tokens (Atom.to_string (Value.to_atom row.(a_item)))
      in
      List.iter
        (fun tok ->
          List.iter
            (fun root ->
              match Node.lookup_id root tok with
              | Some e ->
                let r = Array.copy row in
                r.(a_item) <- Value.Nd e;
                out := r :: !out
              | None -> ())
            roots)
        tokens)
    (Relation.rows arg_rel);
  Relation.distinct (Relation.create (Relation.schema arg_rel) (List.rev !out))

let eval_aggr agg spec rel =
  let module P = Plan in
  match agg with
  | P.A_count ->
    Relation.group_count ~partition:spec.P.agg_partition
      ~result:spec.P.agg_result rel
  | P.A_sum | P.A_max | P.A_min ->
    let input =
      match spec.P.agg_input with
      | Some c -> c
      | None -> err "aggr: sum/max/min need an input column"
    in
    let ii = Relation.column_index rel input in
    let groups = Hashtbl.create 16 in
    let keys = ref [] in
    let part_ci = Option.map (Relation.column_index rel) spec.P.agg_partition in
    List.iter
      (fun row ->
        let key =
          match part_ci with None -> Value.KI 0 | Some i -> Value.key row.(i)
        in
        (match Hashtbl.find_opt groups key with
        | None ->
          keys := (key, row) :: !keys;
          Hashtbl.add groups key [ row.(ii) ]
        | Some vs -> Hashtbl.replace groups key (row.(ii) :: vs)))
      (Relation.rows rel);
    let fold vs =
      match agg with
      | P.A_sum ->
        Value.Dbl
          (List.fold_left
             (fun acc v -> acc +. Atom.to_number (Value.to_atom v))
             0.0 vs)
      | P.A_max ->
        List.fold_left
          (fun acc v -> if Value.compare_value v acc > 0 then v else acc)
          (List.hd vs) (List.tl vs)
      | P.A_min ->
        List.fold_left
          (fun acc v -> if Value.compare_value v acc < 0 then v else acc)
          (List.hd vs) (List.tl vs)
      | P.A_count -> assert false
    in
    let schema =
      match spec.P.agg_partition with
      | None -> [ spec.P.agg_result ]
      | Some p -> [ p; spec.P.agg_result ]
    in
    let rows =
      List.rev_map
        (fun (key, proto) ->
          let v = fold (Hashtbl.find groups key) in
          match part_ci with
          | None -> [| v |]
          | Some i -> [| proto.(i); v |])
        !keys
    in
    Relation.create schema rows

(* Memo lifetimes:
   - volatile: plans depending on a Fix_ref being iterated by an
     enclosing µ/µ∆ — fresh every round;
   - run: plans depending on externally bound refs (variable bindings of
     a compiled body) — fresh per [run_with] call;
   - persistent (process-wide): pure plans over immutable documents —
     shared across runs, so e.g. [$doc//open_auction] materializes once
     even when thousands of fixpoints reuse it. *)
type env = {
  fix : Relation.t Imap.t;
  volatile : Relation.t Phys.t;
  run : Relation.t Phys.t;
  dep_ids : int list;  (** Fix_ref ids currently iterated *)
  run_ids : int list;  (** externally bound Fix_ref ids *)
}

let contains_cache : (int, bool) Hashtbl.t Phys.t = Phys.create 256

let contains_ref id p =
  let tbl =
    match Phys.find_opt contains_cache p with
    | Some t -> t
    | None ->
      let t = Hashtbl.create 4 in
      Phys.replace contains_cache p t;
      t
  in
  match Hashtbl.find_opt tbl id with
  | Some b -> b
  | None ->
    let b = Plan.contains_fix_ref id p in
    Hashtbl.replace tbl id b;
    b

let memo_for t env p =
  if List.exists (fun id -> contains_ref id p) env.dep_ids then env.volatile
  else if List.exists (fun id -> contains_ref id p) env.run_ids then env.run
  else t.persistent

let profile : (string, int * int) Hashtbl.t = Hashtbl.create 64

let rec eval t env p =
  let memo = memo_for t env p in
  match Phys.find_opt memo p with
  | Some rel -> rel
  | None ->
    let rel = eval_raw t env p in
    (let sym = Plan.op_symbol p in
     let kind =
       if memo == env.volatile then "V:"
       else if memo == env.run then "R:"
       else "P:"
     in
     let key = kind ^ String.sub sym 0 (min 6 (String.length sym)) in
     let (c, r) = Option.value ~default:(0, 0) (Hashtbl.find_opt profile key) in
     Hashtbl.replace profile key (c + 1, r + Relation.cardinal rel));
    Phys.replace memo p rel;
    rel

and eval_raw t env (p : Plan.t) : Relation.t =
  match p with
  | Plan.Lit_table (schema, rows) -> Relation.create schema rows
  | Plan.Doc uri -> (
    match Doc_registry.find ~registry:t.registry uri with
    | Some d -> Relation.create [ "item" ] [ [| Value.Nd d |] ]
    | None -> err "doc: document %S is not available" uri)
  | Plan.Fix_ref (id, schema) -> (
    match Imap.find_opt id env.fix with
    | Some rel -> rel
    | None -> Relation.empty schema)
  | Plan.Project (cols, q) -> Relation.project cols (eval t env q)
  | Plan.Select (c, q) ->
    let rel = eval t env q in
    let ci = Relation.column_index rel c in
    Relation.select (fun row -> Value.to_bool row.(ci)) rel
  | Plan.Join (pred, a, b) ->
    let ra = eval t env a and rb = eval t env b in
    let extra =
      if pred.Plan.theta = [] then None
      else
        Some
          (fun lrow rrow ->
            List.for_all
              (fun (lc, c, rc) ->
                let li = Relation.column_index ra lc in
                let ri = Relation.column_index rb rc in
                cmp_holds c (Value.compare_value lrow.(li) rrow.(ri)))
              pred.Plan.theta)
    in
    Relation.equi_join ?extra pred.Plan.equi ra rb
  | Plan.Cross (a, b) -> Relation.cross (eval t env a) (eval t env b)
  | Plan.Distinct q -> Relation.distinct (eval t env q)
  | Plan.Union (a, b) -> Relation.union (eval t env a) (eval t env b)
  | Plan.Difference (a, b) ->
    Relation.difference (eval t env a) (eval t env b)
  | Plan.Aggr (agg, spec, q) -> eval_aggr agg spec (eval t env q)
  | Plan.Fun (prim, spec, q) ->
    let rel = eval t env q in
    let idx = List.map (Relation.column_index rel) spec.Plan.fun_args in
    Relation.append_column spec.Plan.fun_result
      (fun row -> eval_prim prim (List.map (fun i -> row.(i)) idx))
      rel
  | Plan.Tag (c, q) -> Relation.tag ~result:c (eval t env q)
  | Plan.Row_num (spec, q) ->
    Relation.number ~order:spec.Plan.num_order
      ~partition:spec.Plan.num_partition ~result:spec.Plan.num_result
      (eval t env q)
  | Plan.Step (axis, test, col, q) -> eval_step (eval t env q) axis test col
  | Plan.Id_join (ctx, arg) ->
    eval_id_join t.registry (eval t env ctx) (eval t env arg)
  | Plan.Construct (kind, _) ->
    err "the algebra engine does not construct nodes (ε:%s)" kind
  | Plan.Template (_, q) -> eval t env q
  | Plan.Iterate it -> eval t env it.Plan.it_result
  | Plan.Mu f -> eval_mu t env ~delta:false f
  | Plan.Mu_delta f -> eval_mu t env ~delta:true f

(* µ (Naïve) and µ∆ (Delta) at the algebra level: Figure 3 lifted to
   relations. [iter] participates in every tuple, so the fixpoint of
   all outer iterations advances in lock-step. *)
and eval_mu t env ~delta (f : Plan.fix) =
  Stats.start_run t.stats;
  let seed = Relation.distinct (eval t env f.seed) in
  let record ~fed ~produced ~result_size =
    Stats.record_iteration t.stats ~fed ~produced ~result_size
  in
  let apply input =
    (* Fresh volatile memo — the Fix_ref binding changed; loop-invariant
       subplans keep their persistent entries across rounds. *)
    eval t
      { env with
        fix = Imap.add f.fix_id input env.fix;
        volatile = Phys.create 64;
        dep_ids = f.fix_id :: env.dep_ids }
      f.body
  in
  (* Incremental accumulation: a persistent seen-set of row keys plays
     the role the Accumulator bitmap plays in the interpreter, so each
     round costs O(|out|) — the old distinct/difference/union pair
     rebuilt hash tables over the whole accumulated result every
     round. Runs stay separate until the fixpoint converges. *)
  let seen = Relation.Row_tbl.create 1024 in
  let total = ref 0 in
  (* Fresh first-occurrence rows of [rel] not seen before, in row order;
     also their count and [rel]'s raw cardinality, from the same pass. *)
  let fresh_of rel =
    let fresh = ref [] and fresh_n = ref 0 and produced = ref 0 in
    List.iter
      (fun row ->
        incr produced;
        if not (Relation.Row_tbl.mem seen row) then begin
          Relation.Row_tbl.add seen row ();
          fresh := row :: !fresh;
          incr fresh_n
        end)
      (Relation.rows rel);
    total := !total + !fresh_n;
    (List.rev !fresh, !fresh_n, !produced)
  in
  let first = apply seed in
  let schema = Relation.schema first in
  let (rows0, n0, first_n) = fresh_of first in
  record ~fed:(Relation.cardinal seed) ~produced:first_n ~result_size:!total;
  let runs = ref [ rows0 ] in
  (* newest first *)
  let assemble () = Relation.create schema (List.concat (List.rev !runs)) in
  if delta then begin
    let rec loop dl dl_n i =
      if i > t.max_iterations then err "µ∆ diverged after %d iterations" i;
      let out = apply dl in
      let (fresh, fresh_n, out_n) = fresh_of out in
      record ~fed:dl_n ~produced:out_n ~result_size:!total;
      if fresh_n = 0 then assemble ()
      else begin
        runs := fresh :: !runs;
        loop (Relation.create schema fresh) fresh_n (i + 1)
      end
    in
    loop (Relation.create schema rows0) n0 1
  end
  else begin
    let rec loop res res_n i =
      if i > t.max_iterations then err "µ diverged after %d iterations" i;
      let out = apply res in
      let (fresh, fresh_n, out_n) = fresh_of out in
      record ~fed:res_n ~produced:out_n ~result_size:!total;
      if fresh_n = 0 then res
      else begin
        runs := fresh :: !runs;
        loop (Relation.union res (Relation.create schema fresh))
          (res_n + fresh_n) (i + 1)
      end
    in
    loop (Relation.create schema rows0) n0 1
  end

type session = Relation.t Phys.t

let new_session () : session = Phys.create 64

let run_with t ?session bindings p =
  let fix =
    List.fold_left (fun m (id, rel) -> Imap.add id rel m) Imap.empty bindings
  in
  let run = match session with Some s -> s | None -> new_session () in
  eval t
    { fix; volatile = Phys.create 64; run;
      dep_ids = []; run_ids = List.map fst bindings }
    p

let run t p = run_with t [] p
