module Node = Fixq_xdm.Node
module Atom = Fixq_xdm.Atom
module Axis = Fixq_xdm.Axis
module Accumulator = Fixq_xdm.Accumulator
module Doc_registry = Fixq_xdm.Doc_registry
module Encoding = Fixq_store.Encoding
module Staircase = Fixq_store.Staircase
module Stats = Fixq_lang.Stats

exception Error of string

let err fmt = Format.kasprintf (fun s -> raise (Error s)) fmt

(* Plans are DAGs: compiled plans share subtrees (e.g. the context
   binding feeding both inputs of an id-join). Each physical node must
   evaluate exactly once per environment — operators like # (Tag) mint
   fresh values per evaluation, so re-evaluating a shared subtree would
   break join alignment. A fresh memo table is used per fixpoint
   round (the Fix_ref binding changes). *)
module Phys = Hashtbl.Make (struct
  type t = Plan.t

  let equal = ( == )

  (* Structural but depth-bounded (OCaml's generic hash): distinct
     physical nodes may collide only when structurally similar, and
     [equal] disambiguates. Hashing by operator symbol alone would
     degenerate every δ/π bucket into a linear scan. *)
  let hash = Hashtbl.hash
end)

type t = {
  registry : Doc_registry.t;
  max_iterations : int;
  stats : Stats.t;
  persistent : Relation.t Phys.t;
}

let create ?(registry = Doc_registry.default) ?(max_iterations = 1_000_000)
    ~stats () =
  { registry; max_iterations; stats; persistent = Phys.create 256 }

let stats t = t.stats

module Imap = Map.Make (Int)

let cmp_holds (c : Plan.cmp) ord =
  match c with
  | Plan.Ceq -> ord = 0
  | Plan.Cne -> ord <> 0
  | Plan.Clt -> ord < 0
  | Plan.Cle -> ord <= 0
  | Plan.Cgt -> ord > 0
  | Plan.Cge -> ord >= 0

let eval_prim prim (args : Value.t list) =
  match (prim, args) with
  | (Plan.P_cmp c, [ a; b ]) -> Value.Bool (cmp_holds c (Value.compare_value a b))
  | (Plan.P_arith op, [ a; b ]) -> (
    let ai = Value.to_atom a and bi = Value.to_atom b in
    match (op, ai, bi) with
    | (Fixq_lang.Ast.Add, Atom.Int x, Atom.Int y) -> Value.Int (x + y)
    | (Fixq_lang.Ast.Sub, Atom.Int x, Atom.Int y) -> Value.Int (x - y)
    | (Fixq_lang.Ast.Mul, Atom.Int x, Atom.Int y) -> Value.Int (x * y)
    | (Fixq_lang.Ast.Idiv, _, _) -> Value.Int (Atom.to_int ai / Atom.to_int bi)
    | (Fixq_lang.Ast.Mod, Atom.Int x, Atom.Int y) -> Value.Int (x mod y)
    | (Fixq_lang.Ast.Add, _, _) ->
      Value.Dbl (Atom.to_number ai +. Atom.to_number bi)
    | (Fixq_lang.Ast.Sub, _, _) ->
      Value.Dbl (Atom.to_number ai -. Atom.to_number bi)
    | (Fixq_lang.Ast.Mul, _, _) ->
      Value.Dbl (Atom.to_number ai *. Atom.to_number bi)
    | (Fixq_lang.Ast.Div, _, _) ->
      Value.Dbl (Atom.to_number ai /. Atom.to_number bi)
    | (Fixq_lang.Ast.Mod, _, _) ->
      Value.Dbl (Float.rem (Atom.to_number ai) (Atom.to_number bi)))
  | (Plan.P_and, [ a; b ]) -> Value.Bool (Value.to_bool a && Value.to_bool b)
  | (Plan.P_or, [ a; b ]) -> Value.Bool (Value.to_bool a || Value.to_bool b)
  | (Plan.P_not, [ a ]) -> Value.Bool (not (Value.to_bool a))
  | (Plan.P_data, [ a ]) -> (
    match a with Value.Nd n -> Value.Str (Node.string_value n) | v -> v)
  | (Plan.P_name, [ a ]) -> Value.Str (Node.name (Value.as_node "name" a))
  | (Plan.P_root, [ a ]) -> Value.Nd (Node.root (Value.as_node "root" a))
  | (Plan.P_ebv, [ a ]) -> (
    match a with Value.Nd _ -> Value.Bool true | v -> Value.Bool (Value.to_bool v))
  | (Plan.P_const v, []) -> v
  | _ -> err "⊚: arity mismatch"

(* Batch (columnar) evaluation of ⊚: whole-column kernels for the hot
   primitives, boxed row-at-a-time only for the rest. *)
let eval_fun_col prim (args : Relation.col list) n =
  match (prim, args) with
  | (Plan.P_const v, []) -> (
    match v with
    | Value.Int x -> Relation.Ints (Array.make n x)
    | Value.Str s -> Relation.Strs (Array.make n s)
    | Value.Bool b -> Relation.Bools (Array.make n b)
    | Value.Nd nd -> Relation.Nodes (Array.make n nd)
    | Value.Dbl _ -> Relation.Vals (Array.make n v))
  | (Plan.P_data, [ c ]) -> (
    match c with
    | Relation.Nodes a -> Relation.Strs (Array.map Node.string_value a)
    | Relation.Ints _ | Relation.Strs _ | Relation.Bools _ -> c
    | Relation.Vals a ->
      Relation.col_of_values
        (Array.map
           (function
             | Value.Nd nd -> Value.Str (Node.string_value nd)
             | v -> v)
           a))
  | (Plan.P_ebv, [ c ]) -> (
    match c with
    | Relation.Nodes _ -> Relation.Bools (Array.make n true)
    | Relation.Bools _ -> c
    | Relation.Ints a -> Relation.Bools (Array.map (fun x -> x <> 0) a)
    | Relation.Strs a ->
      Relation.Bools (Array.map (fun s -> String.length s > 0) a)
    | Relation.Vals a ->
      Relation.Bools
        (Array.map
           (function Value.Nd _ -> true | v -> Value.to_bool v)
           a))
  | (Plan.P_cmp cm, [ a; b ]) -> (
    (* Value.compare_value atomizes: Int/Int and Str/Str reduce to the
       primitive comparisons, which covers iter and data() columns. *)
    match (a, b) with
    | (Relation.Ints x, Relation.Ints y) ->
      Relation.Bools
        (Array.init n (fun i -> cmp_holds cm (Int.compare x.(i) y.(i))))
    | (Relation.Strs x, Relation.Strs y) ->
      Relation.Bools
        (Array.init n (fun i -> cmp_holds cm (String.compare x.(i) y.(i))))
    | _ ->
      Fixq_xdm.Counters.col_boxed_rows :=
        !Fixq_xdm.Counters.col_boxed_rows + n;
      Relation.Bools
        (Array.init n (fun i ->
             cmp_holds cm
               (Value.compare_value (Relation.col_get a i)
                  (Relation.col_get b i)))))
  | _ ->
    Fixq_xdm.Counters.col_boxed_rows := !Fixq_xdm.Counters.col_boxed_rows + n;
    Relation.col_of_values
      (Array.init n (fun i ->
           eval_prim prim (List.map (fun c -> Relation.col_get c i) args)))

let whitespace_tokens s =
  String.split_on_char ' ' s
  |> List.concat_map (String.split_on_char '\n')
  |> List.concat_map (String.split_on_char '\t')
  |> List.filter (fun x -> x <> "")

(* Axis steps repeat heavily across fixpoint rounds (lifted
   loop-invariant paths re-enter the step with the same context nodes),
   so results are cached per (axis, test, context node). The (axis,
   test) part is interned to a small integer once per step evaluation,
   so the per-row cache key is a single unboxed int — hashing a string
   tuple per row costs more than the staircase scan it saves. *)
let step_ids : (string, int) Hashtbl.t = Hashtbl.create 64

let step_id_of key =
  match Hashtbl.find_opt step_ids key with
  | Some i -> i
  | None ->
    let i = Hashtbl.length step_ids in
    Hashtbl.add step_ids key i;
    i

let step_cache : (int, Node.t list) Hashtbl.t = Hashtbl.create 4096

(* node ids are dense ints; 20 bits cover every (axis, name-test) pair
   a process will ever intern while leaving 42 for the node id *)
let step_single axis test step_id (n : Node.t) =
  let key = (n.Node.id lsl 20) lor step_id in
  match Hashtbl.find_opt step_cache key with
  | Some r -> r
  | None ->
    let enc = Encoding.of_tree_cached n in
    let r = Staircase.step_nodes enc axis test [ n ] in
    Hashtbl.replace step_cache key r;
    r

(* Growable parallel (source index, result node) buffers for the step
   kernel output. *)
type step_buf = {
  mutable src : int array;
  mutable nds : Node.t array;
  mutable n : int;
}

let step_push b i (m : Node.t) =
  if b.n = Array.length b.src then begin
    let cap = max 64 (b.n * 2) in
    let src' = Array.make cap 0 in
    Array.blit b.src 0 src' 0 b.n;
    b.src <- src';
    let nds' = Array.make cap m in
    Array.blit b.nds 0 nds' 0 b.n;
    b.nds <- nds'
  end;
  b.src.(b.n) <- i;
  b.nds.(b.n) <- m;
  b.n <- b.n + 1

let eval_step rel axis test colname =
  let ci = Relation.column_index rel colname in
  let c = (Relation.cols rel).(ci) in
  let n = Relation.cardinal rel in
  (* The textual cache key is a function of (axis, test) only — build it
     once per step evaluation, not once per row. *)
  let step_id =
    step_id_of
      (Axis.axis_to_string axis ^ "|" ^ Format.asprintf "%a" Axis.pp_test test)
  in
  let node_at =
    match c with
    | Relation.Nodes a -> fun i -> a.(i)
    | _ -> fun i -> Value.as_node "step" (Relation.col_get c i)
  in
  let buf = { src = [||]; nds = [||]; n = 0 } in
  for i = 0 to n - 1 do
    List.iter (step_push buf i) (step_single axis test step_id (node_at i))
  done;
  let src = Array.sub buf.src 0 buf.n in
  let gathered = Relation.gather rel src in
  let cols = Array.copy (Relation.cols gathered) in
  cols.(ci) <- Relation.Nodes (Array.sub buf.nds 0 buf.n);
  Relation.distinct (Relation.of_cols (Relation.schema rel) cols)

let eval_id_join registry ctx_rel arg_rel =
  ignore registry;
  (* Roots available per iter, from the ctx nodes. *)
  let iter_ci = Relation.column_index ctx_rel "iter" in
  let item_ci = Relation.column_index ctx_rel "item" in
  let roots_by_iter = Hashtbl.create 16 in
  List.iter
    (fun row ->
      match row.(item_ci) with
      | Value.Nd n ->
        let key = Value.key row.(iter_ci) in
        let r = Node.root n in
        let existing =
          Option.value ~default:[] (Hashtbl.find_opt roots_by_iter key)
        in
        if not (List.exists (fun x -> Node.equal x r) existing) then
          Hashtbl.replace roots_by_iter key (r :: existing)
      | _ -> ())
    (Relation.rows ctx_rel);
  let a_iter = Relation.column_index arg_rel "iter" in
  let a_item = Relation.column_index arg_rel "item" in
  let out = ref [] in
  List.iter
    (fun row ->
      let key = Value.key row.(a_iter) in
      let roots =
        Option.value ~default:[] (Hashtbl.find_opt roots_by_iter key)
      in
      let tokens =
        whitespace_tokens (Atom.to_string (Value.to_atom row.(a_item)))
      in
      List.iter
        (fun tok ->
          List.iter
            (fun root ->
              match Node.lookup_id root tok with
              | Some e ->
                let r = Array.copy row in
                r.(a_item) <- Value.Nd e;
                out := r :: !out
              | None -> ())
            roots)
        tokens)
    (Relation.rows arg_rel);
  Relation.distinct (Relation.create (Relation.schema arg_rel) (List.rev !out))

let eval_aggr agg spec rel =
  let module P = Plan in
  match agg with
  | P.A_count ->
    Relation.group_count ~partition:spec.P.agg_partition
      ~result:spec.P.agg_result rel
  | P.A_sum | P.A_max | P.A_min ->
    let input =
      match spec.P.agg_input with
      | Some c -> c
      | None -> err "aggr: sum/max/min need an input column"
    in
    let ii = Relation.column_index rel input in
    let groups = Hashtbl.create 16 in
    let keys = ref [] in
    let part_ci = Option.map (Relation.column_index rel) spec.P.agg_partition in
    List.iter
      (fun row ->
        let key =
          match part_ci with None -> Value.KI 0 | Some i -> Value.key row.(i)
        in
        (match Hashtbl.find_opt groups key with
        | None ->
          keys := (key, row) :: !keys;
          Hashtbl.add groups key [ row.(ii) ]
        | Some vs -> Hashtbl.replace groups key (row.(ii) :: vs)))
      (Relation.rows rel);
    let fold vs =
      match agg with
      | P.A_sum ->
        Value.Dbl
          (List.fold_left
             (fun acc v -> acc +. Atom.to_number (Value.to_atom v))
             0.0 vs)
      | P.A_max ->
        List.fold_left
          (fun acc v -> if Value.compare_value v acc > 0 then v else acc)
          (List.hd vs) (List.tl vs)
      | P.A_min ->
        List.fold_left
          (fun acc v -> if Value.compare_value v acc < 0 then v else acc)
          (List.hd vs) (List.tl vs)
      | P.A_count -> assert false
    in
    let schema =
      match spec.P.agg_partition with
      | None -> [ spec.P.agg_result ]
      | Some p -> [ p; spec.P.agg_result ]
    in
    let rows =
      List.rev_map
        (fun (key, proto) ->
          let v = fold (Hashtbl.find groups key) in
          match part_ci with
          | None -> [| v |]
          | Some i -> [| proto.(i); v |])
        !keys
    in
    Relation.create schema rows

(* Memo lifetimes:
   - volatile: plans depending on a Fix_ref being iterated by an
     enclosing µ/µ∆ — fresh every round;
   - run: plans depending on externally bound refs (variable bindings of
     a compiled body) — fresh per [run_with] call;
   - persistent (process-wide): pure plans over immutable documents —
     shared across runs, so e.g. [$doc//open_auction] materializes once
     even when thousands of fixpoints reuse it. *)
type env = {
  fix : Relation.t Imap.t;
  volatile : Relation.t Phys.t;
  run : Relation.t Phys.t;
  dep_ids : int list;  (** Fix_ref ids currently iterated *)
  run_ids : int list;  (** externally bound Fix_ref ids *)
}

let contains_cache : (int, bool) Hashtbl.t Phys.t = Phys.create 256

let contains_ref id p =
  let tbl =
    match Phys.find_opt contains_cache p with
    | Some t -> t
    | None ->
      let t = Hashtbl.create 4 in
      Phys.replace contains_cache p t;
      t
  in
  match Hashtbl.find_opt tbl id with
  | Some b -> b
  | None ->
    let b = Plan.contains_fix_ref id p in
    Hashtbl.replace tbl id b;
    b

let memo_for t env p =
  if List.exists (fun id -> contains_ref id p) env.dep_ids then env.volatile
  else if List.exists (fun id -> contains_ref id p) env.run_ids then env.run
  else t.persistent

let profile : (string, int * int * float) Hashtbl.t = Hashtbl.create 64

(* Per-pair theta checks for a join, precompiled per column pair
   (specialized for the common string/int columns). *)
(* Promote θ-equalities over same-kind string/int columns into hash
   keys: [String.compare]/[Int.compare] equality coincides with the
   equi-join's [col_eq] on those kinds, and a hash probe replaces a
   per-pair bucket scan (the d=d value filters degenerate to O(|l|·|r|)
   otherwise). Mixed-kind comparisons keep θ's [Value.compare_value]
   coercions and stay residual. *)
let promote_theta_eq ra rb pred =
  let promote, rest =
    List.partition
      (fun (lc, cm, rc) ->
        cm = Plan.Ceq
        && (match (Relation.col ra lc, Relation.col rb rc) with
           | (Relation.Strs _, Relation.Strs _)
           | (Relation.Ints _, Relation.Ints _) ->
             true
           | _ -> false
           | exception _ -> false))
      pred.Plan.theta
  in
  (pred.Plan.equi @ List.map (fun (l, _, r) -> (l, r)) promote, rest)

let theta_extra ra rb theta =
  if theta = [] then None
  else begin
    let checks =
      List.map
        (fun (lc, cm, rc) ->
          let ca = Relation.col ra lc and cb = Relation.col rb rc in
          match (ca, cb) with
          | (Relation.Strs x, Relation.Strs y) ->
            fun i j -> cmp_holds cm (String.compare x.(i) y.(j))
          | (Relation.Ints x, Relation.Ints y) ->
            fun i j -> cmp_holds cm (Int.compare x.(i) y.(j))
          | _ ->
            fun i j ->
              cmp_holds cm
                (Value.compare_value (Relation.col_get ca i)
                   (Relation.col_get cb j)))
        theta
    in
    Some (fun i j -> List.for_all (fun f -> f i j) checks)
  end

(* Per-operator self-time accounting is opt-in: the two clock reads per
   evaluation are measurable on workloads with tens of thousands of
   tiny fixpoint rounds. *)
let profile_timing = ref false

(* Time spent in child evaluations of the current [eval_raw] frame, so
   the profile records self-time per operator, not inclusive time. *)
let child_time = ref 0.0

let rec eval t env p =
  let memo = memo_for t env p in
  match Phys.find_opt memo p with
  | Some rel -> rel
  | None ->
    let timed = !profile_timing in
    let t0 = if timed then Sys.time () else 0.0 in
    let saved = !child_time in
    child_time := 0.0;
    let rel = eval_raw t env p in
    let self =
      if timed then begin
        let elapsed = Sys.time () -. t0 in
        let s = elapsed -. !child_time in
        child_time := saved +. elapsed;
        s
      end
      else 0.0
    in
    (let sym = Plan.op_symbol p in
     let kind =
       if memo == env.volatile then "V:"
       else if memo == env.run then "R:"
       else "P:"
     in
     let key = kind ^ String.sub sym 0 (min 6 (String.length sym)) in
     let (c, r, s) =
       Option.value ~default:(0, 0, 0.) (Hashtbl.find_opt profile key)
     in
     Hashtbl.replace profile key (c + 1, r + Relation.cardinal rel, s +. self));
    Phys.replace memo p rel;
    rel

and eval_raw t env (p : Plan.t) : Relation.t =
  match p with
  | Plan.Lit_table (schema, rows) -> Relation.create schema rows
  | Plan.Doc uri -> (
    match Doc_registry.find ~registry:t.registry uri with
    | Some d -> Relation.create [ "item" ] [ [| Value.Nd d |] ]
    | None -> err "doc: document %S is not available" uri)
  | Plan.Fix_ref (id, schema) -> (
    match Imap.find_opt id env.fix with
    | Some rel -> rel
    | None -> Relation.empty schema)
  | Plan.Project (cols, q) -> Relation.project cols (eval t env q)
  | Plan.Select (c, q) -> Relation.select_bool c (eval t env q)
  | Plan.Join (pred, a, b) ->
    let ra = eval t env a and rb = eval t env b in
    let keys, residual = promote_theta_eq ra rb pred in
    let extra = theta_extra ra rb residual in
    Relation.equi_join ?extra keys ra rb
  | Plan.Cross (a, b) -> Relation.cross (eval t env a) (eval t env b)
  | Plan.Distinct (Plan.Project (cols, Plan.Join (pred, a, b)))
    when (match Plan.schema_of a with
         | sa -> List.for_all (fun (_, o) -> List.mem o sa) cols
         | exception _ -> false) ->
    (* δ∘π∘⋈ keeping only left-side columns is an existential filter —
       a semi-join: each left row survives at most once, and the match
       pairs are never materialized. (A left column's output name is
       never claimed by the right side: clashing right columns are
       renamed.) *)
    let ra = eval t env a and rb = eval t env b in
    let keys, residual = promote_theta_eq ra rb pred in
    let extra = theta_extra ra rb residual in
    Relation.distinct
      (Relation.project cols (Relation.semi_join ?extra keys ra rb))
  | Plan.Distinct q -> Relation.distinct (eval t env q)
  | Plan.Union (a, b) -> Relation.union (eval t env a) (eval t env b)
  | Plan.Difference (a, b) ->
    Relation.difference (eval t env a) (eval t env b)
  | Plan.Aggr (agg, spec, q) -> eval_aggr agg spec (eval t env q)
  | Plan.Fun (prim, spec, q) ->
    let rel = eval t env q in
    let args =
      List.map
        (fun a -> (Relation.cols rel).(Relation.column_index rel a))
        spec.Plan.fun_args
    in
    Relation.append_col spec.Plan.fun_result
      (eval_fun_col prim args (Relation.cardinal rel))
      rel
  | Plan.Tag (c, q) -> Relation.tag ~result:c (eval t env q)
  | Plan.Row_num (spec, q) ->
    Relation.number ~order:spec.Plan.num_order
      ~partition:spec.Plan.num_partition ~result:spec.Plan.num_result
      (eval t env q)
  | Plan.Step (axis, test, col, q) -> eval_step (eval t env q) axis test col
  | Plan.Id_join (ctx, arg) ->
    eval_id_join t.registry (eval t env ctx) (eval t env arg)
  | Plan.Construct (kind, _) ->
    err "the algebra engine does not construct nodes (ε:%s)" kind
  | Plan.Template (_, q) -> eval t env q
  | Plan.Iterate it -> eval t env it.Plan.it_result
  | Plan.Mu f -> eval_mu t env ~delta:false f
  | Plan.Mu_delta f -> eval_mu t env ~delta:true f

(* µ (Naïve) and µ∆ (Delta) at the algebra level: Figure 3 lifted to
   relations. The seen-set has two modes: packed mode covers the
   dominant [iter|item] shapes (int iters, node or int items) with two
   unboxed probes into an off-heap pair set; if a round produces a
   column kind packed keys can't represent (strings, doubles,
   width > 2), the accumulated runs replay once into the boxed row
   table and the loop continues there. *)
and eval_mu t env ~delta (f : Plan.fix) =
  Stats.start_run t.stats;
  let seed = Relation.distinct (eval t env f.seed) in
  let schema_width = List.length (Relation.schema seed) in
  let record ~fed ~produced ~result_size =
    Stats.record_iteration t.stats ~fed ~produced ~result_size
  in
  let apply input =
    (* Fresh volatile memo — the Fix_ref binding changed; loop-invariant
       subplans keep their persistent entries across rounds. *)
    eval t
      { env with
        fix = Imap.add f.fix_id input env.fix;
        volatile = Phys.create 64;
        dep_ids = f.fix_id :: env.dep_ids }
      f.body
  in
  let runs = ref [] in
  (* newest first *)
  let packed =
    (* sized from the seed: thousands of small per-course fixpoints must
       not each pay for a large off-heap table *)
    if schema_width >= 1 && schema_width <= 2 then
      Some (Relation.Pair_set.create (max 8 (Relation.cardinal seed * 4)))
    else None
  in
  let packed_ok = ref (packed <> None) in
  let boxed : unit Relation.Row_tbl.t lazy_t =
    lazy
      (let tbl = Relation.Row_tbl.create 1024 in
       (* migrate: replay already-accumulated runs *)
       List.iter
         (fun run ->
           for i = 0 to Relation.cardinal run - 1 do
             Relation.Row_tbl.replace tbl (Relation.row run i) ()
           done)
         !runs;
       tbl)
  in
  let total = ref 0 in
  (* Sorted-run bookkeeping: while the fixpoint stays over ["iter";
     "item"] rows with one constant iter and node items, per-round
     deltas are kept sorted by node id so the final assembly is a pure
     linear merge (and downstream ddo sees already-sorted input). *)
  let node_mode = ref (Relation.schema seed = [ "iter"; "item" ]) in
  let node_iter = ref None in
  let check_node_mode rel =
    if !node_mode && Relation.cardinal rel > 0 then
      match Relation.cols rel with
      | [| Relation.Ints iters; Relation.Nodes _ |] ->
        let v0 = match !node_iter with Some v -> v | None -> iters.(0) in
        node_iter := Some v0;
        if not (Array.for_all (fun v -> v = v0) iters) then node_mode := false
      | _ -> node_mode := false
  in
  let sort_run rel =
    (* silent pre-sort: makes every later merge input already sorted *)
    match Relation.cols rel with
    | [| Relation.Ints _; Relation.Nodes nds |] when !node_mode ->
      let n = Array.length nds in
      let sorted = ref true in
      for i = 1 to n - 1 do
        if nds.(i - 1).Node.id >= nds.(i).Node.id then sorted := false
      done;
      if !sorted then rel
      else begin
        let idx = Array.init n (fun i -> i) in
        Array.sort (fun i j -> Int.compare nds.(i).Node.id nds.(j).Node.id) idx;
        Relation.gather rel idx
      end
    | _ -> rel
  in
  (* Fresh first-occurrence rows of [rel] not seen before, in row order;
     also their count and [rel]'s raw cardinality, from the same pass. *)
  let fresh_of rel =
    let n = Relation.cardinal rel in
    let produced = n in
    let idx = Array.make n 0 in
    let k = ref 0 in
    let use_packed =
      !packed_ok
      &&
      match packed with
      | None -> false
      | Some set -> (
        let cols = Relation.cols rel in
        let reps = Array.map Relation.int_rep cols in
        if Array.for_all Option.is_some reps then begin
          (match reps with
          | [| Some r1 |] ->
            for i = 0 to n - 1 do
              if Relation.Pair_set.add set (r1 i) 0 then begin
                idx.(!k) <- i;
                incr k
              end
            done
          | [| Some r1; Some r2 |] ->
            for i = 0 to n - 1 do
              if Relation.Pair_set.add set (r1 i) (r2 i) then begin
                idx.(!k) <- i;
                incr k
              end
            done
          | _ -> assert false);
          true
        end
        else false)
    in
    if not use_packed then begin
      (* boxed fallback; disable packed mode for all later rounds so the
         two structures never diverge *)
      packed_ok := false;
      let tbl = Lazy.force boxed in
      k := 0;
      for i = 0 to n - 1 do
        let r = Relation.row rel i in
        if not (Relation.Row_tbl.mem tbl r) then begin
          Relation.Row_tbl.replace tbl r ();
          idx.(!k) <- i;
          incr k
        end
      done
    end;
    let fresh = Relation.gather rel (Array.sub idx 0 !k) in
    check_node_mode fresh;
    let fresh = sort_run fresh in
    total := !total + !k;
    if !k > 0 then runs := fresh :: !runs;
    (fresh, !k, produced)
  in
  let first = apply seed in
  let schema = Relation.schema first in
  let (fresh0, n0, first_n) = fresh_of first in
  record ~fed:(Relation.cardinal seed) ~produced:first_n ~result_size:!total;
  let assemble () =
    let rs = List.rev !runs in
    if !node_mode then
      (* pairwise linear merges over sorted, disjoint runs (the PR 3
         accumulator kernel) — output lands in document order, so the
         result gather is merge-only. *)
      let node_runs =
        List.map
          (fun r ->
            match Relation.cols r with
            | [| _; Relation.Nodes nds |] -> nds
            | _ -> assert false)
          rs
      in
      let merged = Accumulator.merge_runs node_runs in
      let iter_v = match !node_iter with Some v -> v | None -> 1 in
      Relation.of_cols schema
        [| Relation.Ints (Array.make (Array.length merged) iter_v);
           Relation.Nodes merged |]
    else Relation.concat_many schema rs
  in
  if delta then begin
    let rec loop dl dl_n i =
      if i > t.max_iterations then err "µ∆ diverged after %d iterations" i;
      let out = apply dl in
      let (fresh, fresh_n, out_n) = fresh_of out in
      record ~fed:dl_n ~produced:out_n ~result_size:!total;
      if fresh_n = 0 then assemble () else loop fresh fresh_n (i + 1)
    in
    loop fresh0 n0 1
  end
  else begin
    let rec loop res res_n i =
      if i > t.max_iterations then err "µ diverged after %d iterations" i;
      let out = apply res in
      let (fresh, fresh_n, out_n) = fresh_of out in
      record ~fed:res_n ~produced:out_n ~result_size:!total;
      if fresh_n = 0 then assemble ()
      else loop (Relation.union res fresh) (res_n + fresh_n) (i + 1)
    in
    loop fresh0 n0 1
  end

type session = Relation.t Phys.t

let new_session () : session = Phys.create 64

let run_with t ?session bindings p =
  let fix =
    List.fold_left (fun m (id, rel) -> Imap.add id rel m) Imap.empty bindings
  in
  let run = match session with Some s -> s | None -> new_session () in
  eval t
    { fix; volatile = Phys.create 64; run;
      dep_ids = []; run_ids = List.map fst bindings }
    p

let run t p = run_with t [] p
