(** Plan → SQL:1999 renderer: a µ/µ∆ body inside the step/id/data spine
    of the Table-1 dialect becomes one linear [WITH RECURSIVE] query
    over materialized document relations (step tables, string-value
    tables, fn:id resolution tables), executed by {!Fixq_sqlrec}.

    Rendering is static ({!render} needs only the plan); {!prepare}
    additionally materializes the document relations for a concrete
    seed and parses the emitted text back through
    {!Fixq_sqlrec.Sqlrec.parse}, so what runs is by construction inside
    the engine's grammar. *)

type rendered = {
  sql : string;  (** the [WITH RECURSIVE] text *)
  steps : (Fixq_xdm.Axis.t * Fixq_xdm.Axis.test) list;
      (** [step_k(src, dst)] is the k-th entry *)
  vals : int list;  (** step indices needing a [val_k(src, v)] table *)
  ids : int list;  (** step indices needing an [ids_k(v, dst)] table *)
}

(** Decide renderability and emit the SQL text, or explain the first
    obstruction (operator outside the subset, nonlinear recursion
    reference, …). *)
val render : fix_id:int -> Plan.t -> (rendered, string) result

type tables = {
  named : (string * Fixq_sqlrec.Sqldb.table) list;
  decode : (int, Fixq_xdm.Node.t) Hashtbl.t;
      (** node id → node, for reading result rows back *)
}

type prepared = {
  rendered : rendered;
  query : Fixq_sqlrec.Sqlrec.query;
  tables : tables;
  root : Fixq_xdm.Node.t;
}

(** Render and materialize against the (single) document of [seed].
    Fails when the body is not renderable or the seed is empty, carries
    atoms, or spans several documents. *)
val prepare :
  seed:Fixq_xdm.Item.seq -> fix_id:int -> Plan.t -> (prepared, string) result

(** A fresh database for one evaluation: the shared document relations
    plus a seed table holding [(iter, node id)] rows. *)
val database : prepared -> seed_rows:(int * int) list -> Fixq_sqlrec.Sqldb.t

(** Human-readable provenance of each materialized table (for
    [fixq plan --sql]). *)
val legend : rendered -> string list
