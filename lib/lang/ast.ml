(** Abstract syntax of the [fixq] XQuery subset.

    The language is LiXQuery-class (Hidders et al., SIGMOD Record 2005):
    FLWOR with [for]/[let]/[where], quantifiers, conditionals,
    [typeswitch], path expressions, node and value comparisons, node-set
    operators, arithmetic, user-defined functions, direct and computed
    node constructors — extended with the paper's inflationary fixed
    point form

    {v with $x seeded by e_seed recurse e_rec v}

    Paths are binary ([Path (e1, e2)]): [e2] is evaluated once per
    context item drawn from [e1], results are merged by
    [fs:distinct-doc-order]. This is the generality the distributivity
    rules STEP1/STEP2 of the paper assume. *)

module Axis = Fixq_xdm.Axis
module Atom = Fixq_xdm.Atom

type cmp = Eq | Ne | Lt | Le | Gt | Ge [@@deriving show { with_path = false }, eq]

type arith = Add | Sub | Mul | Div | Idiv | Mod
[@@deriving show { with_path = false }, eq]

type quantifier = Some_ | Every [@@deriving show { with_path = false }, eq]

(** Sequence types for [typeswitch] (and function signatures, where they
    are parsed but not dynamically enforced beyond node-ness checks). *)
type item_type =
  | It_item
  | It_node
  | It_element of string option
  | It_attribute of string option
  | It_text
  | It_comment
  | It_document
  | It_atomic of string  (** ["integer"], ["string"], ["boolean"], ["double"] *)
[@@deriving show { with_path = false }, eq]

type occurrence = One | Opt | Star | Plus
[@@deriving show { with_path = false }, eq]

type seq_type =
  | Empty_sequence
  | Typed of item_type * occurrence
[@@deriving show { with_path = false }, eq]

type axis_step = { axis : Axis.t; test : Axis.test }

let pp_axis_step ppf s =
  Format.fprintf ppf "%s::%a" (Axis.axis_to_string s.axis) Axis.pp_test s.test

let show_axis_step s = Format.asprintf "%a" pp_axis_step s

let equal_axis_step a b = a.axis = b.axis && a.test = b.test

(** Attribute content in direct element constructors: literal pieces and
    embedded expressions. *)
type 'e attr_piece = A_lit of string | A_expr of 'e
[@@deriving show { with_path = false }, eq]

type expr =
  | Literal of (Atom.t[@printer Atom.pp] [@equal Atom.equal_value])
  | Empty_seq  (** [()] *)
  | Var of string
  | Context_item  (** [.] *)
  | Root  (** leading [/] — root of the context node's tree *)
  | Sequence of expr * expr  (** [e1, e2] *)
  | Union of expr * expr
  | Except of expr * expr
  | Intersect of expr * expr
  | Path of expr * expr  (** [e1/e2] *)
  | Axis_step of axis_step  (** relative step, e.g. [child::a] *)
  | Filter of expr * expr  (** [e1\[e2\]] *)
  | For of { var : string; pos : string option; source : expr; body : expr }
  | Sort of { var : string; source : expr; key : expr; descending : bool; body : expr }
      (** restricted [order by]: a single-[for] FLWOR sorted by a
          per-binding key before the return clause evaluates *)
  | Let of { var : string; value : expr; body : expr }
  | If of expr * expr * expr
  | Quantified of quantifier * string * expr * expr
      (** [some $v in e satisfies e'] *)
  | Arith of arith * expr * expr
  | Neg of expr
  | Gen_cmp of cmp * expr * expr  (** existential comparisons [= != < …] *)
  | Val_cmp of cmp * expr * expr  (** [eq ne lt le gt ge] *)
  | Node_is of expr * expr
  | Node_before of expr * expr  (** [<<] *)
  | Node_after of expr * expr  (** [>>] *)
  | And of expr * expr
  | Or of expr * expr
  | Range of expr * expr  (** [e1 to e2] *)
  | Call of string * expr list
  | Elem_constr of string * (string * expr attr_piece list) list * expr list
      (** direct element constructor: name, attributes, content; text
          runs appear as [Literal (Str …)] wrapped by {!Text_constr} *)
  | Comp_elem of string * expr  (** [element n { e }] *)
  | Text_constr of expr  (** [text { e }] *)
  | Attr_constr of string * expr  (** [attribute n { e }] *)
  | Comment_constr of expr
  | Doc_constr of expr  (** [document { e }] *)
  | Instance_of of expr * seq_type  (** [e instance of T] *)
  | Cast of expr * string * bool
      (** [e cast as xs:T\[?\]]: atomic target type name, optional flag *)
  | Castable of expr * string * bool  (** [e castable as xs:T\[?\]] *)
  | Typeswitch of expr * (seq_type * string option * expr) list * string option * expr
      (** scrutinee, cases (type, optional case variable, body), default
          variable, default body *)
  | Ifp of { var : string; seed : expr; body : expr; accum : accum option }
      (** [with $var seeded by seed recurse body], optionally followed
          by [accumulate by kind(weight)] — a semiring annotation on
          every accumulated node *)

(** The [accumulate by] clause of an IFP: the annotation semiring and,
    for [min]/[max], the per-node weight expression (evaluated with the
    produced node as the context item). *)
and accum = {
  kind :
    (Fixq_semiring.Semiring.kind
    [@printer Fixq_semiring.Semiring.pp_kind]
    [@equal Fixq_semiring.Semiring.equal_kind]);
  weight : expr option;
}
[@@deriving show { with_path = false }, eq]

(** A user-defined function declaration. Parameter and return types are
    recorded for documentation/round-tripping but are not enforced at
    run time (LiXQuery drops static typing). *)
type fundef = {
  fname : string;
  params : (string * seq_type option) list;
  return_type : seq_type option;
  body : expr;
}
[@@deriving show { with_path = false }, eq]

type program = {
  functions : fundef list;
  variables : (string * expr) list;  (** [declare variable $v := e;] *)
  main : expr;
}
[@@deriving show { with_path = false }, eq]

(** Free variables of an expression (the [fv(·)] of the paper). *)
let free_vars (e : expr) : (string, unit) Hashtbl.t =
  let tbl = Hashtbl.create 8 in
  let rec go bound = function
    | Literal _ | Empty_seq | Context_item | Root -> ()
    | Var v -> if not (List.mem v bound) then Hashtbl.replace tbl v ()
    | Sequence (a, b)
    | Union (a, b)
    | Except (a, b)
    | Intersect (a, b)
    | Path (a, b)
    | Filter (a, b)
    | Arith (_, a, b)
    | Gen_cmp (_, a, b)
    | Val_cmp (_, a, b)
    | Node_is (a, b)
    | Node_before (a, b)
    | Node_after (a, b)
    | And (a, b)
    | Or (a, b)
    | Range (a, b) ->
      go bound a;
      go bound b
    | Neg a | Text_constr a | Attr_constr (_, a) | Comment_constr a
    | Doc_constr a | Comp_elem (_, a) | Instance_of (a, _)
    | Cast (a, _, _) | Castable (a, _, _) ->
      go bound a
    | Axis_step _ -> ()
    | For { var; pos; source; body } ->
      go bound source;
      let bound = var :: (match pos with Some p -> [ p ] | None -> []) @ bound in
      go bound body
    | Sort { var; source; key; body; _ } ->
      go bound source;
      go (var :: bound) key;
      go (var :: bound) body
    | Let { var; value; body } ->
      go bound value;
      go (var :: bound) body
    | If (c, t, e) ->
      go bound c;
      go bound t;
      go bound e
    | Quantified (_, v, source, pred) ->
      go bound source;
      go (v :: bound) pred
    | Call (_, args) -> List.iter (go bound) args
    | Elem_constr (_, attrs, content) ->
      List.iter
        (fun (_, pieces) ->
          List.iter
            (function A_lit _ -> () | A_expr e -> go bound e)
            pieces)
        attrs;
      List.iter (go bound) content
    | Typeswitch (scrut, cases, dvar, dbody) ->
      go bound scrut;
      List.iter
        (fun (_, v, body) ->
          let bound = match v with Some v -> v :: bound | None -> bound in
          go bound body)
        cases;
      let bound = match dvar with Some v -> v :: bound | None -> bound in
      go bound dbody
    | Ifp { var; seed; body; accum } ->
      go bound seed;
      (match accum with
      | Some { weight = Some w; _ } -> go bound w
      | _ -> ());
      go (var :: bound) body
  in
  go [] e;
  tbl

let is_free v e = Hashtbl.mem (free_vars e) v

(** Does the expression syntactically contain a node constructor
    (anywhere, including under binders)? Constructors create fresh node
    identities and void distributivity and IFP-termination guarantees. *)
let rec has_constructor = function
  | Elem_constr _ | Comp_elem _ | Text_constr _ | Attr_constr _
  | Comment_constr _ | Doc_constr _ ->
    true
  | Literal _ | Empty_seq | Var _ | Context_item | Root | Axis_step _ -> false
  | Sequence (a, b)
  | Union (a, b)
  | Except (a, b)
  | Intersect (a, b)
  | Path (a, b)
  | Filter (a, b)
  | Arith (_, a, b)
  | Gen_cmp (_, a, b)
  | Val_cmp (_, a, b)
  | Node_is (a, b)
  | Node_before (a, b)
  | Node_after (a, b)
  | And (a, b)
  | Or (a, b)
  | Range (a, b) ->
    has_constructor a || has_constructor b
  | Neg a | Instance_of (a, _) | Cast (a, _, _) | Castable (a, _, _) ->
    has_constructor a
  | For { source; body; _ } -> has_constructor source || has_constructor body
  | Sort { source; key; body; _ } ->
    has_constructor source || has_constructor key || has_constructor body
  | Let { value; body; _ } -> has_constructor value || has_constructor body
  | If (c, t, e) -> has_constructor c || has_constructor t || has_constructor e
  | Quantified (_, _, s, p) -> has_constructor s || has_constructor p
  | Call (_, args) -> List.exists has_constructor args
  | Typeswitch (s, cases, _, d) ->
    has_constructor s
    || List.exists (fun (_, _, b) -> has_constructor b) cases
    || has_constructor d
  | Ifp { seed; body; accum; _ } ->
    has_constructor seed || has_constructor body
    || (match accum with
       | Some { weight = Some w; _ } -> has_constructor w
       | _ -> false)

(** Is the value of [e] guaranteed never to be a single numeric atom?
    Filter predicates treat exactly that shape as an implicit position
    test, so rewrites that change a step's context positions (e.g.
    [//t\[p\]] → [descendant::t\[p\]]) are only sound for predicates
    that are surely boolean-valued. Conservative: [false] means
    "don't know". *)
let rec surely_boolean = function
  | Gen_cmp _ | Val_cmp _ | And _ | Or _ | Quantified _ | Instance_of _
  | Castable _ | Node_is _ | Node_before _ | Node_after _ ->
    true
  | Literal (Atom.Bool _) -> true
  | Call
      ( ( "not" | "empty" | "exists" | "boolean" | "true" | "false"
        | "contains" | "starts-with" | "ends-with" ),
        _ ) ->
    true
  | If (_, a, b) -> surely_boolean a && surely_boolean b
  | Let { body; _ } -> surely_boolean body
  | _ -> false

(** Does [e] syntactically mention [fn:position()] or [fn:last()]
    (anywhere, including under binders)? Such predicates observe the
    context sequence a step produced, so they block the [//] collapse
    above. *)
let rec calls_position_or_last = function
  | Call (("position" | "last"), _) -> true
  | Call (_, args) -> List.exists calls_position_or_last args
  | Literal _ | Empty_seq | Var _ | Context_item | Root | Axis_step _ -> false
  | Sequence (a, b)
  | Union (a, b)
  | Except (a, b)
  | Intersect (a, b)
  | Path (a, b)
  | Filter (a, b)
  | Arith (_, a, b)
  | Gen_cmp (_, a, b)
  | Val_cmp (_, a, b)
  | Node_is (a, b)
  | Node_before (a, b)
  | Node_after (a, b)
  | And (a, b)
  | Or (a, b)
  | Range (a, b) ->
    calls_position_or_last a || calls_position_or_last b
  | Neg a | Instance_of (a, _) | Cast (a, _, _) | Castable (a, _, _)
  | Comp_elem (_, a) | Text_constr a | Attr_constr (_, a)
  | Comment_constr a | Doc_constr a ->
    calls_position_or_last a
  | For { source; body; _ } ->
    calls_position_or_last source || calls_position_or_last body
  | Sort { source; key; body; _ } ->
    calls_position_or_last source
    || calls_position_or_last key
    || calls_position_or_last body
  | Let { value; body; _ } ->
    calls_position_or_last value || calls_position_or_last body
  | If (c, t, e) ->
    calls_position_or_last c
    || calls_position_or_last t
    || calls_position_or_last e
  | Quantified (_, _, s, p) ->
    calls_position_or_last s || calls_position_or_last p
  | Elem_constr (_, attrs, content) ->
    List.exists
      (fun (_, pieces) ->
        List.exists
          (function A_lit _ -> false | A_expr e -> calls_position_or_last e)
          pieces)
      attrs
    || List.exists calls_position_or_last content
  | Typeswitch (s, cases, _, d) ->
    calls_position_or_last s
    || List.exists (fun (_, _, b) -> calls_position_or_last b) cases
    || calls_position_or_last d
  | Ifp { seed; body; accum; _ } ->
    calls_position_or_last seed || calls_position_or_last body
    || (match accum with
       | Some { weight = Some w; _ } -> calls_position_or_last w
       | _ -> false)

(** Capture-avoiding-enough substitution [e1\[e2/$x\]] — the paper's
    [e1(e2)]. Inner rebindings of [$x] shadow as expected; we do not
    rename other binders, so callers must ensure [e2]'s free variables
    are not captured (all uses in this codebase substitute fresh or
    closed expressions). *)
let rec subst x replacement e =
  let s = subst x replacement in
  match e with
  | Var v -> if String.equal v x then replacement else e
  | Literal _ | Empty_seq | Context_item | Root | Axis_step _ -> e
  | Sequence (a, b) -> Sequence (s a, s b)
  | Union (a, b) -> Union (s a, s b)
  | Except (a, b) -> Except (s a, s b)
  | Intersect (a, b) -> Intersect (s a, s b)
  | Path (a, b) -> Path (s a, s b)
  | Filter (a, b) -> Filter (s a, s b)
  | Arith (op, a, b) -> Arith (op, s a, s b)
  | Neg a -> Neg (s a)
  | Gen_cmp (c, a, b) -> Gen_cmp (c, s a, s b)
  | Val_cmp (c, a, b) -> Val_cmp (c, s a, s b)
  | Node_is (a, b) -> Node_is (s a, s b)
  | Node_before (a, b) -> Node_before (s a, s b)
  | Node_after (a, b) -> Node_after (s a, s b)
  | And (a, b) -> And (s a, s b)
  | Or (a, b) -> Or (s a, s b)
  | Range (a, b) -> Range (s a, s b)
  | Call (f, args) -> Call (f, List.map s args)
  | For { var; pos; source; body } ->
    let body =
      if String.equal var x || pos = Some x then body else s body
    in
    For { var; pos; source = s source; body }
  | Sort { var; source; key; descending; body } ->
    let sub_in e = if String.equal var x then e else s e in
    Sort
      { var; source = s source; key = sub_in key; descending;
        body = sub_in body }
  | Let { var; value; body } ->
    let body = if String.equal var x then body else s body in
    Let { var; value = s value; body }
  | If (c, t, e') -> If (s c, s t, s e')
  | Quantified (q, v, source, pred) ->
    let pred = if String.equal v x then pred else s pred in
    Quantified (q, v, s source, pred)
  | Elem_constr (n, attrs, content) ->
    let attrs =
      List.map
        (fun (an, pieces) ->
          ( an,
            List.map
              (function A_lit l -> A_lit l | A_expr e -> A_expr (s e))
              pieces ))
        attrs
    in
    Elem_constr (n, attrs, List.map s content)
  | Comp_elem (n, a) -> Comp_elem (n, s a)
  | Instance_of (a, ty) -> Instance_of (s a, ty)
  | Cast (a, ty, opt) -> Cast (s a, ty, opt)
  | Castable (a, ty, opt) -> Castable (s a, ty, opt)
  | Text_constr a -> Text_constr (s a)
  | Attr_constr (n, a) -> Attr_constr (n, s a)
  | Comment_constr a -> Comment_constr (s a)
  | Doc_constr a -> Doc_constr (s a)
  | Typeswitch (scrut, cases, dvar, dbody) ->
    let cases =
      List.map
        (fun (ty, v, body) ->
          let body = if v = Some x then body else s body in
          (ty, v, body))
        cases
    in
    let dbody = if dvar = Some x then dbody else s dbody in
    Typeswitch (s scrut, cases, dvar, dbody)
  | Ifp { var; seed; body; accum } ->
    let body = if String.equal var x then body else s body in
    let accum =
      Option.map
        (fun a -> { a with weight = Option.map s a.weight })
        accum
    in
    Ifp { var; seed = s seed; body; accum }

(** Fresh variable names for rewrites. *)
let fresh_var =
  let n = ref 0 in
  fun prefix ->
    incr n;
    Printf.sprintf "%s_%d" prefix !n
