(** Instrumentation counters for fixed point evaluation.

    The paper's Table 2 reports, besides wall-clock times, the {e total
    number of nodes fed back} into the recursion body and the {e
    recursion depth}. One [t] is threaded through an evaluation and
    collects exactly those numbers, plus a per-iteration trace used to
    reproduce the iteration table of Example 2.4. *)

type iteration = {
  fed : int;  (** nodes fed into the body this round *)
  produced : int;  (** nodes the body returned *)
  result_size : int;  (** accumulated result after the round *)
  round_ms : float;  (** wall-clock spent in this round *)
  kernel : Fixq_xdm.Counters.snapshot;
      (** kernel activity (merges, bitmap tests, index-assisted steps)
          during this round *)
}

(** Immutable copy of the totals, cheap to store alongside a cached
    query result. *)
type snapshot = {
  snap_fed : int;
  snap_calls : int;
  snap_depth : int;
}

type t

val create : unit -> t
val reset : t -> unit

(** Record one payload invocation. *)
val record_iteration : t -> fed:int -> produced:int -> result_size:int -> unit

(** [snapshot t] copies the current totals. *)
val snapshot : t -> snapshot

(** Install (or clear) a callback invoked after every
    {!record_iteration} — i.e. once per fixpoint round on either
    engine. The hook may raise to abort the evaluation; the query
    service uses exactly that to enforce per-request wall-clock
    deadlines without the language layers needing a clock. *)
val set_iteration_hook : t -> (unit -> unit) option -> unit

(** Total nodes fed into the recursion body, across all IFP evaluations
    recorded by this [t]. *)
val nodes_fed : t -> int

(** Maximum recursion depth (iterations of a single IFP run). *)
val depth : t -> int

(** Payload invocations in total. *)
val payload_calls : t -> int

(** Iterations of the most recent IFP run, oldest first. *)
val last_run : t -> iteration list

(** Wall-clock milliseconds spent across all recorded rounds. *)
val total_ms : t -> float

(** Summed kernel counters over the most recent IFP run. *)
val run_kernel_totals : t -> Fixq_xdm.Counters.snapshot

(** Mark the start of a new IFP run (clears the per-run trace, keeps the
    totals). *)
val start_run : t -> unit

val pp : Format.formatter -> t -> unit
