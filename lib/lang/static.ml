open Ast

type severity = Error | Warning

type diagnostic = {
  severity : severity;
  context : string;
  message : string;
  code : string;
  at : Ast.expr option;
}

let errors = List.filter (fun d -> d.severity = Error)

let pp_diagnostic ppf d =
  Format.fprintf ppf "%s (%s): %s"
    (match d.severity with Error -> "error" | Warning -> "warning")
    d.context d.message

let check_program (p : program) : diagnostic list =
  let out = ref [] in
  let emit ?at severity code context fmt =
    Format.kasprintf
      (fun message -> out := { severity; context; message; code; at } :: !out)
      fmt
  in
  (* declared functions, with duplicate detection *)
  let declared : (string, int) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun fd ->
      if Hashtbl.mem declared fd.fname then
        emit Error "FQ013" fd.fname "function %s is declared more than once"
          fd.fname;
      Hashtbl.replace declared fd.fname (List.length fd.params);
      let rec dup_params = function
        | [] -> ()
        | (v, _) :: rest ->
          if List.mem_assoc v rest then
            emit Error "FQ014" fd.fname "duplicate parameter $%s" v;
          dup_params rest
      in
      dup_params fd.params)
    p.functions;
  let globals = List.map fst p.variables in
  (* expression walk with an environment of bound variable names *)
  let rec walk ctx bound e =
    let w = walk ctx bound in
    match e with
    | Var v ->
      if not (List.mem v bound) then
        emit ~at:e Error "FQ010" ctx "undefined variable $%s" v
    | Literal _ | Empty_seq | Context_item | Root | Axis_step _ -> ()
    | Sequence (a, b) | Union (a, b) | Except (a, b) | Intersect (a, b)
    | Path (a, b) | Filter (a, b) | Arith (_, a, b) | Gen_cmp (_, a, b)
    | Val_cmp (_, a, b) | Node_is (a, b) | Node_before (a, b)
    | Node_after (a, b) | And (a, b) | Or (a, b) | Range (a, b) ->
      w a;
      w b
    | Neg a | Text_constr a | Attr_constr (_, a) | Comment_constr a
    | Doc_constr a | Comp_elem (_, a) | Instance_of (a, _)
    | Cast (a, _, _) | Castable (a, _, _) ->
      w a
    | For { var; pos; source; body } ->
      w source;
      let bound =
        var :: (match pos with Some p -> [ p ] | None -> []) @ bound
      in
      walk ctx bound body
    | Sort { var; source; key; body; _ } ->
      w source;
      walk ctx (var :: bound) key;
      walk ctx (var :: bound) body
    | Let { var; value; body } ->
      w value;
      walk ctx (var :: bound) body
    | If (c, t, e') ->
      w c;
      w t;
      w e'
    | Quantified (_, v, source, pred) ->
      w source;
      walk ctx (v :: bound) pred
    | Call (f, args) ->
      (match Hashtbl.find_opt declared f with
      | Some arity ->
        if arity <> List.length args then
          emit ~at:e Error "FQ012" ctx
            "function %s expects %d argument(s), given %d" f arity
            (List.length args)
      | None ->
        if not (Builtins.is_builtin f) then
          emit ~at:e Error "FQ011" ctx "unknown function %s" f);
      List.iter w args
    | Elem_constr (_, attrs, content) ->
      List.iter
        (fun (_, pieces) ->
          List.iter
            (function A_lit _ -> () | A_expr e -> w e)
            pieces)
        attrs;
      List.iter w content
    | Typeswitch (scrut, cases, dvar, dbody) ->
      w scrut;
      List.iter
        (fun (_, v, body) ->
          let bound = match v with Some v -> v :: bound | None -> bound in
          walk ctx bound body)
        cases;
      let bound = match dvar with Some v -> v :: bound | None -> bound in
      walk ctx bound dbody
    | Ifp { var; seed; body; accum } ->
      w seed;
      (match accum with
      | Some { weight = Some wexpr; _ } -> w wexpr
      | _ -> ());
      if not (is_free var body) then
        emit ~at:e Warning "FQ015" ctx
          "the recursion body never uses $%s: the fixed point converges \
           after one round"
          var;
      walk ctx (var :: bound) body
  in
  (* globals are checked in declaration order; each sees the previous *)
  let _ =
    List.fold_left
      (fun seen (v, e) ->
        walk (Printf.sprintf "variable $%s" v) seen e;
        v :: seen)
      [] p.variables
  in
  List.iter
    (fun fd -> walk fd.fname (List.map fst fd.params @ globals) fd.body)
    p.functions;
  walk "main" globals p.main;
  List.rev !out
