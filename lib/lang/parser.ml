module Axis = Fixq_xdm.Axis
module Atom = Fixq_xdm.Atom
open Ast

exception Error of { line : int; col : int; msg : string }

(* ------------------------------------------------------------------ *)
(* Source spans                                                        *)
(* ------------------------------------------------------------------ *)

(* A side-table from AST nodes (by physical identity — the parser
   allocates a fresh block per construct, so identity is a stable key
   that survives every later read-only traversal) to the source offset
   of the construct's first token. Constant constructors (Root,
   Context_item, Empty_seq) are immediate values shared by every
   occurrence and cannot be keyed; [record] skips them. *)
module Spans = struct
  module Tbl = Hashtbl.Make (struct
    type t = Obj.t

    let equal = ( == )
    let hash = Hashtbl.hash
  end)

  type t = {
    src : string;
    tbl : int Tbl.t;
    names : (string, int) Hashtbl.t;
        (* "fn:<name>" / "var:<name>" → offset of the declaration *)
  }

  let create src =
    { src; tbl = Tbl.create 256; names = Hashtbl.create 16 }

  (* First record wins: inner parse functions note a node before the
     outer ones see it again, and the inner note is the precise one. *)
  let record t (e : Ast.expr) off =
    let r = Obj.repr e in
    if Obj.is_block r && not (Tbl.mem t.tbl r) then Tbl.add t.tbl r off

  let record_name t key off =
    if not (Hashtbl.mem t.names key) then Hashtbl.add t.names key off

  let source t = t.src

  let offset t (e : Ast.expr) =
    let r = Obj.repr e in
    if Obj.is_block r then Tbl.find_opt t.tbl r else None

  let line_col t e = Option.map (Lexer.line_col_of t.src) (offset t e)

  let fun_line_col t name =
    Option.map (Lexer.line_col_of t.src)
      (Hashtbl.find_opt t.names ("fn:" ^ name))

  let global_line_col t name =
    Option.map (Lexer.line_col_of t.src)
      (Hashtbl.find_opt t.names ("var:" ^ name))
end

(* The span table under construction. Parsing happens on server worker
   threads too, so the ref is guarded by a mutex held for the whole
   parse (parses are short; systhreads contend rarely). When no table
   is installed, [note] is free. *)
let spans_lock = Mutex.create ()
let current_spans : Spans.t option ref = ref None

let note start e =
  (match !current_spans with
  | Some s -> Spans.record s e start
  | None -> ());
  e

let note_name key start =
  match !current_spans with
  | Some s -> Spans.record_name s key start
  | None -> ()

let fail lx fmt =
  Format.kasprintf
    (fun msg ->
      let (line, col) = Lexer.line_col lx (Lexer.pos lx) in
      raise (Error { line; col; msg }))
    fmt

let expect lx tok =
  let got = Lexer.peek lx in
  if got = tok then Lexer.advance lx
  else fail lx "expected %s, found %s" (Lexer.describe tok) (Lexer.describe got)

let expect_name lx kw =
  match Lexer.peek lx with
  | Lexer.NAME n when String.equal n kw -> Lexer.advance lx
  | got -> fail lx "expected %S, found %s" kw (Lexer.describe got)

let is_kw lx kw =
  match Lexer.peek lx with
  | Lexer.NAME n -> String.equal n kw
  | _ -> false

(* Snapshot/restore for 2-token lookahead: restore re-lexes. *)
let save lx =
  ignore (Lexer.peek lx);
  Lexer.token_start lx

let restore lx p = Lexer.set_pos lx p

(* [local:] and [fn:] prefixes are normalized away so that user
   declarations and calls meet, and built-ins match by local name. *)
let normalize_fname n =
  match String.index_opt n ':' with
  | Some i when String.sub n 0 i = "local" || String.sub n 0 i = "fn" ->
    String.sub n (i + 1) (String.length n - i - 1)
  | _ -> n

(* ------------------------------------------------------------------ *)
(* Sequence types                                                      *)
(* ------------------------------------------------------------------ *)

let parse_opt_name_arg lx =
  (* after '(' of element(...) / attribute(...) *)
  match Lexer.peek lx with
  | Lexer.RPAREN ->
    Lexer.advance lx;
    None
  | Lexer.STAR ->
    Lexer.advance lx;
    expect lx Lexer.RPAREN;
    None
  | Lexer.NAME n ->
    Lexer.advance lx;
    expect lx Lexer.RPAREN;
    Some n
  | got -> fail lx "expected a name or ')' in kind test, found %s"
             (Lexer.describe got)

let parse_item_type lx =
  match Lexer.next lx with
  | Lexer.NAME "item" ->
    expect lx Lexer.LPAREN;
    expect lx Lexer.RPAREN;
    It_item
  | Lexer.NAME "node" ->
    expect lx Lexer.LPAREN;
    expect lx Lexer.RPAREN;
    It_node
  | Lexer.NAME "text" ->
    expect lx Lexer.LPAREN;
    expect lx Lexer.RPAREN;
    It_text
  | Lexer.NAME "comment" ->
    expect lx Lexer.LPAREN;
    expect lx Lexer.RPAREN;
    It_comment
  | Lexer.NAME "document-node" ->
    expect lx Lexer.LPAREN;
    expect lx Lexer.RPAREN;
    It_document
  | Lexer.NAME "element" ->
    expect lx Lexer.LPAREN;
    It_element (parse_opt_name_arg lx)
  | Lexer.NAME "attribute" ->
    expect lx Lexer.LPAREN;
    It_attribute (parse_opt_name_arg lx)
  | Lexer.NAME n when String.length n > 3 && String.sub n 0 3 = "xs:" ->
    It_atomic (String.sub n 3 (String.length n - 3))
  | Lexer.NAME ("integer" | "string" | "boolean" | "double" as n) ->
    It_atomic n
  | got -> fail lx "expected an item type, found %s" (Lexer.describe got)

let parse_seq_type_tokens lx =
  if is_kw lx "empty-sequence" then begin
    Lexer.advance lx;
    expect lx Lexer.LPAREN;
    expect lx Lexer.RPAREN;
    Empty_sequence
  end
  else
    let it = parse_item_type lx in
    let occ =
      match Lexer.peek lx with
      | Lexer.QMARK ->
        Lexer.advance lx;
        Opt
      | Lexer.STAR ->
        Lexer.advance lx;
        Star
      | Lexer.PLUS ->
        Lexer.advance lx;
        Plus
      | _ -> One
    in
    Typed (it, occ)

(* ------------------------------------------------------------------ *)
(* Expressions                                                         *)
(* ------------------------------------------------------------------ *)

let kind_test_of_name = function
  | "node" -> Some `Node
  | "text" -> Some `Text
  | "comment" -> Some `Comment
  | "processing-instruction" -> Some `Pi
  | "element" -> Some `Element
  | "attribute" -> Some `Attribute
  | "document-node" -> Some `Document
  | _ -> None

let rec parse_expr_seq lx =
  let start = Lexer.token_start lx in
  let e = parse_single lx in
  if Lexer.peek lx = Lexer.COMMA then begin
    Lexer.advance lx;
    note start (Sequence (e, parse_expr_seq lx))
  end
  else e

and parse_single lx =
  let start = Lexer.token_start lx in
  note start
    (match Lexer.peek lx with
    | Lexer.NAME ("for" | "let") when next_is_var_or_dollar lx ->
      parse_flwor lx
    | Lexer.NAME ("some" | "every") when next_is_var_or_dollar lx ->
      parse_quantified lx
    | Lexer.NAME "if" when next_is lx Lexer.LPAREN -> parse_if lx
    | Lexer.NAME "typeswitch" when next_is lx Lexer.LPAREN ->
      parse_typeswitch lx
    | Lexer.NAME "with" when next_is_var_or_dollar lx -> parse_ifp lx
    | _ -> parse_or lx)

and next_is lx tok =
  let p = save lx in
  Lexer.advance lx;
  let r = Lexer.peek lx = tok in
  restore lx p;
  r

and next_is_var_or_dollar lx =
  let p = save lx in
  Lexer.advance lx;
  let r = match Lexer.peek lx with Lexer.VAR _ -> true | _ -> false in
  restore lx p;
  r

and parse_var lx =
  match Lexer.next lx with
  | Lexer.VAR v -> v
  | got -> fail lx "expected a variable, found %s" (Lexer.describe got)

and parse_flwor lx =
  (* Collect clauses, then desugar into nested For/Let/If. *)
  let clauses = ref [] in
  let rec clause_loop () =
    if is_kw lx "for" && next_is_var_or_dollar lx then begin
      Lexer.advance lx;
      let rec bindings () =
        let voff = Lexer.token_start lx in
        let var = parse_var lx in
        let pos =
          if is_kw lx "at" then begin
            Lexer.advance lx;
            Some (parse_var lx)
          end
          else None
        in
        (if is_kw lx "as" then begin
           Lexer.advance lx;
           ignore (parse_seq_type_tokens lx)
         end);
        expect_name lx "in";
        let source = parse_single lx in
        clauses := `For (var, pos, source, voff) :: !clauses;
        if Lexer.peek lx = Lexer.COMMA then begin
          Lexer.advance lx;
          bindings ()
        end
      in
      bindings ();
      clause_loop ()
    end
    else if is_kw lx "let" && next_is_var_or_dollar lx then begin
      Lexer.advance lx;
      let rec bindings () =
        let voff = Lexer.token_start lx in
        let var = parse_var lx in
        (if is_kw lx "as" then begin
           Lexer.advance lx;
           ignore (parse_seq_type_tokens lx)
         end);
        expect lx Lexer.ASSIGN;
        let value = parse_single lx in
        clauses := `Let (var, value, voff) :: !clauses;
        if Lexer.peek lx = Lexer.COMMA then begin
          Lexer.advance lx;
          bindings ()
        end
      in
      bindings ();
      clause_loop ()
    end
  in
  clause_loop ();
  let where =
    if is_kw lx "where" then begin
      Lexer.advance lx;
      Some (parse_single lx)
    end
    else None
  in
  let order =
    if is_kw lx "order" then begin
      Lexer.advance lx;
      expect_name lx "by";
      let key = parse_single lx in
      let descending =
        if is_kw lx "descending" then begin
          Lexer.advance lx;
          true
        end
        else begin
          if is_kw lx "ascending" then Lexer.advance lx;
          false
        end
      in
      Some (key, descending)
    end
    else None
  in
  expect_name lx "return";
  let body = parse_single lx in
  let body =
    match where with
    | None -> body
    | Some cond -> If (cond, body, Empty_seq)
  in
  match order with
  | None ->
    List.fold_left
      (fun body clause ->
        match clause with
        | `For (var, pos, source, voff) ->
          note voff (For { var; pos; source; body })
        | `Let (var, value, voff) -> note voff (Let { var; value; body }))
      body !clauses
  | Some (key, descending) -> (
    (* restricted order by: exactly one positionless for binding *)
    match !clauses with
    | [ `For (var, None, source, voff) ] ->
      note voff (Sort { var; source; key; descending; body })
    | _ ->
      fail lx
        "'order by' is supported for FLWORs with exactly one 'for' \
         binding (and no positional variable)")

and parse_quantified lx =
  let q =
    match Lexer.next lx with
    | Lexer.NAME "some" -> Some_
    | Lexer.NAME "every" -> Every
    | _ -> assert false
  in
  let var = parse_var lx in
  expect_name lx "in";
  let source = parse_single lx in
  expect_name lx "satisfies";
  let pred = parse_single lx in
  Quantified (q, var, source, pred)

and parse_if lx =
  expect_name lx "if";
  expect lx Lexer.LPAREN;
  let c = parse_expr_seq lx in
  expect lx Lexer.RPAREN;
  expect_name lx "then";
  let t = parse_single lx in
  expect_name lx "else";
  let e = parse_single lx in
  If (c, t, e)

and parse_typeswitch lx =
  expect_name lx "typeswitch";
  expect lx Lexer.LPAREN;
  let scrut = parse_expr_seq lx in
  expect lx Lexer.RPAREN;
  let cases = ref [] in
  while is_kw lx "case" do
    Lexer.advance lx;
    let v =
      match Lexer.peek lx with
      | Lexer.VAR v ->
        Lexer.advance lx;
        expect_name lx "as";
        Some v
      | _ -> None
    in
    let ty = parse_seq_type_tokens lx in
    expect_name lx "return";
    let body = parse_single lx in
    cases := (ty, v, body) :: !cases
  done;
  expect_name lx "default";
  let dvar =
    match Lexer.peek lx with
    | Lexer.VAR v ->
      Lexer.advance lx;
      Some v
    | _ -> None
  in
  expect_name lx "return";
  let dbody = parse_single lx in
  Typeswitch (scrut, List.rev !cases, dvar, dbody)

and parse_ifp lx =
  expect_name lx "with";
  let var = parse_var lx in
  expect_name lx "seeded";
  expect_name lx "by";
  let seed = parse_single lx in
  expect_name lx "recurse";
  let body = parse_single lx in
  let accum = if is_kw lx "accumulate" then Some (parse_accum lx) else None in
  Ifp { var; seed; body; accum }

(* [accumulate by KIND] or [accumulate by KIND(weight)] after an IFP
   body. KIND names an annotation semiring; min/max require a weight
   expression (evaluated per produced node), the rest refuse one. *)
and parse_accum lx =
  expect_name lx "accumulate";
  expect_name lx "by";
  let kind_name =
    match Lexer.next lx with
    | Lexer.NAME n -> n
    | tok ->
      fail lx
        "accumulate by: expected a semiring kind (bool, count, max, min or \
         why), got %s"
        (Lexer.describe tok)
  in
  match Fixq_semiring.Semiring.kind_of_string kind_name with
  | None ->
    fail lx
      "accumulate by: unknown semiring kind %S (expected bool, count, max, \
       min or why)"
      kind_name
  | Some kind -> (
    let weight =
      if Lexer.peek lx = Lexer.LPAREN then begin
        Lexer.advance lx;
        let w = parse_expr_seq lx in
        expect lx Lexer.RPAREN;
        Some w
      end
      else None
    in
    match (Fixq_semiring.Semiring.takes_weight kind, weight) with
    | (true, None) ->
      fail lx
        "accumulate by %s: a weight expression is required, e.g. \
         'accumulate by %s(number(@cost))'"
        kind_name kind_name
    | (false, Some _) ->
      fail lx "accumulate by %s does not take a weight expression" kind_name
    | _ -> { kind; weight })

and parse_or lx =
  let start = Lexer.token_start lx in
  let e = parse_and lx in
  if is_kw lx "or" then begin
    Lexer.advance lx;
    note start (Or (e, parse_or lx))
  end
  else e

and parse_and lx =
  let start = Lexer.token_start lx in
  let e = parse_comparison lx in
  if is_kw lx "and" then begin
    Lexer.advance lx;
    note start (And (e, parse_and lx))
  end
  else e

and parse_comparison lx =
  let start = Lexer.token_start lx in
  let e = parse_range lx in
  let gen c =
    Lexer.advance lx;
    note start (Gen_cmp (c, e, parse_range lx))
  in
  let value c =
    Lexer.advance lx;
    note start (Val_cmp (c, e, parse_range lx))
  in
  match Lexer.peek lx with
  | Lexer.EQ -> gen Eq
  | Lexer.NE -> gen Ne
  | Lexer.LT -> gen Lt
  | Lexer.LE -> gen Le
  | Lexer.GT -> gen Gt
  | Lexer.GE -> gen Ge
  | Lexer.NAME "eq" -> value Eq
  | Lexer.NAME "ne" -> value Ne
  | Lexer.NAME "lt" -> value Lt
  | Lexer.NAME "le" -> value Le
  | Lexer.NAME "gt" -> value Gt
  | Lexer.NAME "ge" -> value Ge
  | Lexer.NAME "is" ->
    Lexer.advance lx;
    note start (Node_is (e, parse_range lx))
  | Lexer.LT2 ->
    Lexer.advance lx;
    note start (Node_before (e, parse_range lx))
  | Lexer.GT2 ->
    Lexer.advance lx;
    note start (Node_after (e, parse_range lx))
  | _ -> e

and parse_range lx =
  let start = Lexer.token_start lx in
  let e = parse_additive lx in
  if is_kw lx "to" then begin
    Lexer.advance lx;
    note start (Range (e, parse_additive lx))
  end
  else e

and parse_additive lx =
  let start = Lexer.token_start lx in
  let rec loop e =
    match Lexer.peek lx with
    | Lexer.PLUS ->
      Lexer.advance lx;
      loop (note start (Arith (Add, e, parse_multiplicative lx)))
    | Lexer.MINUS ->
      Lexer.advance lx;
      loop (note start (Arith (Sub, e, parse_multiplicative lx)))
    | _ -> e
  in
  loop (parse_multiplicative lx)

and parse_multiplicative lx =
  let start = Lexer.token_start lx in
  let rec loop e =
    match Lexer.peek lx with
    | Lexer.STAR ->
      Lexer.advance lx;
      loop (note start (Arith (Mul, e, parse_union lx)))
    | Lexer.NAME "div" ->
      Lexer.advance lx;
      loop (note start (Arith (Div, e, parse_union lx)))
    | Lexer.NAME "idiv" ->
      Lexer.advance lx;
      loop (note start (Arith (Idiv, e, parse_union lx)))
    | Lexer.NAME "mod" ->
      Lexer.advance lx;
      loop (note start (Arith (Mod, e, parse_union lx)))
    | _ -> e
  in
  loop (parse_union lx)

and parse_union lx =
  let start = Lexer.token_start lx in
  let rec loop e =
    match Lexer.peek lx with
    | Lexer.PIPE ->
      Lexer.advance lx;
      loop (note start (Union (e, parse_intersect lx)))
    | Lexer.NAME "union" ->
      Lexer.advance lx;
      loop (note start (Union (e, parse_intersect lx)))
    | _ -> e
  in
  loop (parse_intersect lx)

and parse_intersect lx =
  let start = Lexer.token_start lx in
  let rec loop e =
    match Lexer.peek lx with
    | Lexer.NAME "intersect" ->
      Lexer.advance lx;
      loop (note start (Intersect (e, parse_instance_of lx)))
    | Lexer.NAME "except" ->
      Lexer.advance lx;
      loop (note start (Except (e, parse_instance_of lx)))
    | _ -> e
  in
  loop (parse_instance_of lx)

and parse_instance_of lx =
  let start = Lexer.token_start lx in
  let e = parse_castable lx in
  if is_kw lx "instance" then begin
    Lexer.advance lx;
    expect_name lx "of";
    note start (Instance_of (e, parse_seq_type_tokens lx))
  end
  else e

and parse_castable lx =
  let start = Lexer.token_start lx in
  let e = parse_cast lx in
  if is_kw lx "castable" then begin
    Lexer.advance lx;
    expect_name lx "as";
    let (ty, opt) = parse_single_type lx in
    note start (Castable (e, ty, opt))
  end
  else e

and parse_cast lx =
  let start = Lexer.token_start lx in
  let e = parse_unary lx in
  if is_kw lx "cast" then begin
    Lexer.advance lx;
    expect_name lx "as";
    let (ty, opt) = parse_single_type lx in
    note start (Cast (e, ty, opt))
  end
  else e

(* SingleType ::= AtomicType "?"? *)
and parse_single_type lx =
  let name =
    match Lexer.next lx with
    | Lexer.NAME n when String.length n > 3 && String.sub n 0 3 = "xs:" ->
      String.sub n 3 (String.length n - 3)
    | Lexer.NAME ("integer" | "string" | "boolean" | "double" as n) -> n
    | got -> fail lx "expected an atomic type, found %s" (Lexer.describe got)
  in
  if Lexer.peek lx = Lexer.QMARK then begin
    Lexer.advance lx;
    (name, true)
  end
  else (name, false)

and parse_unary lx =
  let start = Lexer.token_start lx in
  match Lexer.peek lx with
  | Lexer.MINUS ->
    Lexer.advance lx;
    note start (Neg (parse_unary lx))
  | Lexer.PLUS ->
    Lexer.advance lx;
    parse_unary lx
  | _ -> parse_path lx

and parse_path lx =
  let start = Lexer.token_start lx in
  match Lexer.peek lx with
  | Lexer.SLASH ->
    Lexer.advance lx;
    if starts_step lx then parse_relative lx Root else Root
  | Lexer.SLASH2 ->
    Lexer.advance lx;
    let dos =
      note start
        (Path
           (Root, Axis_step { axis = Axis.Descendant_or_self; test = Axis.Kind_node }))
    in
    parse_relative lx dos
  | _ ->
    let first = parse_step lx in
    parse_relative_tail lx first

and starts_step lx =
  match Lexer.peek lx with
  | Lexer.NAME _ | Lexer.STAR | Lexer.AT | Lexer.DOT | Lexer.DOT2
  | Lexer.VAR _ | Lexer.LPAREN | Lexer.STRING _ | Lexer.INT _ | Lexer.DBL _
  | Lexer.LT ->
    true
  | _ -> false

and parse_relative lx left =
  let start = Lexer.token_start lx in
  let step = parse_step lx in
  parse_relative_tail lx (note start (Path (left, step)))

and parse_relative_tail lx e =
  let start = Lexer.token_start lx in
  match Lexer.peek lx with
  | Lexer.SLASH ->
    Lexer.advance lx;
    parse_relative lx e
  | Lexer.SLASH2 ->
    Lexer.advance lx;
    let dos =
      note start
        (Path (e, Axis_step { axis = Axis.Descendant_or_self; test = Axis.Kind_node }))
    in
    parse_relative lx dos
  | _ -> e

(* A step: axis step (with predicates) or postfix-primary. *)
and parse_step lx =
  let start = Lexer.token_start lx in
  match Lexer.peek lx with
  | Lexer.DOT2 ->
    Lexer.advance lx;
    parse_predicates lx start
      (note start (Axis_step { axis = Axis.Parent; test = Axis.Kind_node }))
  | Lexer.AT ->
    Lexer.advance lx;
    let test =
      match Lexer.next lx with
      | Lexer.NAME n -> Axis.Name n
      | Lexer.STAR -> Axis.Name "*"
      | got -> fail lx "expected an attribute name, found %s" (Lexer.describe got)
    in
    parse_predicates lx start
      (note start (Axis_step { axis = Axis.Attribute; test }))
  | Lexer.STAR ->
    Lexer.advance lx;
    parse_predicates lx start
      (note start (Axis_step { axis = Axis.Child; test = Axis.Name "*" }))
  | Lexer.NAME n -> (
    let p = save lx in
    Lexer.advance lx;
    match Lexer.peek lx with
    | Lexer.AXIS2 -> (
      match Axis.axis_of_string n with
      | None -> fail lx "unknown axis %S" n
      | Some axis ->
        Lexer.advance lx;
        let test = parse_node_test lx axis in
        parse_predicates lx start (note start (Axis_step { axis; test })))
    | Lexer.LPAREN when kind_test_of_name n <> None ->
      restore lx p;
      let axis =
        if n = "attribute" then Axis.Attribute else Axis.Child
      in
      let test = parse_node_test lx axis in
      parse_predicates lx start (note start (Axis_step { axis; test }))
    | Lexer.LPAREN | Lexer.LBRACE ->
      (* function call or computed constructor *)
      restore lx p;
      parse_postfix lx
    | Lexer.NAME _
      when (n = "element" || n = "attribute")
           && (restore lx p;
               next_is_name_then lx Lexer.LBRACE) ->
      (* computed element/attribute constructor in step position *)
      parse_postfix lx
    | _ ->
      restore lx p;
      Lexer.advance lx;
      parse_predicates lx start
        (note start (Axis_step { axis = Axis.Child; test = Axis.Name n })))
  | _ -> parse_postfix lx

and parse_node_test lx _axis =
  match Lexer.next lx with
  | Lexer.STAR -> Axis.Name "*"
  | Lexer.NAME n -> (
    match (kind_test_of_name n, Lexer.peek lx) with
    | (Some kind, Lexer.LPAREN) -> (
      Lexer.advance lx;
      match kind with
      | `Node ->
        expect lx Lexer.RPAREN;
        Axis.Kind_node
      | `Text ->
        expect lx Lexer.RPAREN;
        Axis.Kind_text
      | `Comment ->
        expect lx Lexer.RPAREN;
        Axis.Kind_comment
      | `Pi ->
        (match Lexer.peek lx with
        | Lexer.NAME _ | Lexer.STRING _ -> Lexer.advance lx
        | _ -> ());
        expect lx Lexer.RPAREN;
        Axis.Kind_pi
      | `Element -> Axis.Kind_element (parse_opt_name_arg lx)
      | `Attribute -> Axis.Kind_attribute (parse_opt_name_arg lx)
      | `Document ->
        expect lx Lexer.RPAREN;
        Axis.Kind_document)
    | _ -> Axis.Name n)
  | got -> fail lx "expected a node test, found %s" (Lexer.describe got)

and parse_predicates lx start e =
  if Lexer.peek lx = Lexer.LBRACKET then begin
    Lexer.advance lx;
    let pred = parse_expr_seq lx in
    expect lx Lexer.RBRACKET;
    parse_predicates lx start (note start (Filter (e, pred)))
  end
  else e

and parse_postfix lx =
  let start = Lexer.token_start lx in
  let e = parse_primary lx in
  parse_predicates lx start e

and parse_primary lx =
  let start = Lexer.token_start lx in
  note start
    (match Lexer.peek lx with
    | Lexer.INT n ->
      Lexer.advance lx;
      Literal (Atom.Int n)
    | Lexer.DBL f ->
      Lexer.advance lx;
      Literal (Atom.Dbl f)
    | Lexer.STRING s ->
      Lexer.advance lx;
      Literal (Atom.Str s)
    | Lexer.VAR v ->
      Lexer.advance lx;
      Var v
    | Lexer.DOT ->
      Lexer.advance lx;
      Context_item
    | Lexer.LPAREN ->
      Lexer.advance lx;
      if Lexer.peek lx = Lexer.RPAREN then begin
        Lexer.advance lx;
        Empty_seq
      end
      else begin
        let e = parse_expr_seq lx in
        expect lx Lexer.RPAREN;
        e
      end
    | Lexer.LT -> parse_direct_constructor lx
    | Lexer.NAME "element" when next_is_name_then lx Lexer.LBRACE ->
      Lexer.advance lx;
      let name = parse_ncname lx in
      let body = parse_enclosed lx in
      Comp_elem (name, body)
    | Lexer.NAME "attribute" when next_is_name_then lx Lexer.LBRACE ->
      Lexer.advance lx;
      let name = parse_ncname lx in
      let body = parse_enclosed lx in
      Attr_constr (name, body)
    | Lexer.NAME "text" when next_is lx Lexer.LBRACE ->
      Lexer.advance lx;
      Text_constr (parse_enclosed lx)
    | Lexer.NAME "comment" when next_is lx Lexer.LBRACE ->
      Lexer.advance lx;
      Comment_constr (parse_enclosed lx)
    | Lexer.NAME "document" when next_is lx Lexer.LBRACE ->
      Lexer.advance lx;
      Doc_constr (parse_enclosed lx)
    | Lexer.NAME n when next_is lx Lexer.LPAREN ->
      Lexer.advance lx;
      Lexer.advance lx;
      let args =
        if Lexer.peek lx = Lexer.RPAREN then []
        else
          let rec args acc =
            let a = parse_single lx in
            if Lexer.peek lx = Lexer.COMMA then begin
              Lexer.advance lx;
              args (a :: acc)
            end
            else List.rev (a :: acc)
          in
          args []
      in
      expect lx Lexer.RPAREN;
      Call (normalize_fname n, args)
    | got -> fail lx "expected an expression, found %s" (Lexer.describe got))

and next_is_name_then lx tok =
  let p = save lx in
  Lexer.advance lx;
  let ok =
    match Lexer.peek lx with
    | Lexer.NAME _ ->
      Lexer.advance lx;
      Lexer.peek lx = tok
    | _ -> false
  in
  restore lx p;
  ok

and parse_ncname lx =
  match Lexer.next lx with
  | Lexer.NAME n -> n
  | got -> fail lx "expected a name, found %s" (Lexer.describe got)

and parse_enclosed lx =
  expect lx Lexer.LBRACE;
  if Lexer.peek lx = Lexer.RBRACE then begin
    Lexer.advance lx;
    Empty_seq
  end
  else begin
    let e = parse_expr_seq lx in
    expect lx Lexer.RBRACE;
    e
  end

(* ------------------------------------------------------------------ *)
(* Direct constructors (XML mode)                                      *)
(* ------------------------------------------------------------------ *)

and parse_direct_constructor lx =
  (* The '<' is the buffered lookahead; rewind to it and read raw. *)
  let start = save lx in
  restore lx start;
  Lexer.raw_advance lx;
  (* past '<' *)
  parse_direct_element lx

and raw_name lx =
  let buf = Buffer.create 8 in
  let is_name_char c =
    (c >= 'a' && c <= 'z')
    || (c >= 'A' && c <= 'Z')
    || (c >= '0' && c <= '9')
    || c = '_' || c = '-' || c = '.' || c = ':'
  in
  while is_name_char (Lexer.raw_peek lx) do
    Buffer.add_char buf (Lexer.raw_peek lx);
    Lexer.raw_advance lx
  done;
  if Buffer.length buf = 0 then fail lx "expected a name in constructor";
  Buffer.contents buf

and raw_skip_space lx =
  while
    match Lexer.raw_peek lx with
    | ' ' | '\t' | '\n' | '\r' -> true
    | _ -> false
  do
    Lexer.raw_advance lx
  done

and raw_entity lx =
  (* after '&' *)
  let buf = Buffer.create 4 in
  while Lexer.raw_peek lx <> ';' && Lexer.raw_peek lx <> '\000' do
    Buffer.add_char buf (Lexer.raw_peek lx);
    Lexer.raw_advance lx
  done;
  if Lexer.raw_peek lx = ';' then Lexer.raw_advance lx
  else fail lx "unterminated entity reference";
  match Buffer.contents buf with
  | "lt" -> "<"
  | "gt" -> ">"
  | "amp" -> "&"
  | "quot" -> "\""
  | "apos" -> "'"
  | s when String.length s > 1 && s.[0] = '#' -> (
    let code =
      if s.[1] = 'x' then int_of_string_opt ("0x" ^ String.sub s 2 (String.length s - 2))
      else int_of_string_opt (String.sub s 1 (String.length s - 1))
    in
    match code with
    | Some c when c < 128 -> String.make 1 (Char.chr c)
    | _ -> fail lx "unsupported character reference &%s;" s)
  | s -> fail lx "unknown entity &%s;" s

and parse_attr_value lx quote =
  (* Pieces of literal text and {expr}; "" style quote escape, {{ }}
     brace escapes. *)
  let pieces = ref [] in
  let buf = Buffer.create 16 in
  let flush () =
    if Buffer.length buf > 0 then begin
      pieces := A_lit (Buffer.contents buf) :: !pieces;
      Buffer.clear buf
    end
  in
  let rec go () =
    match Lexer.raw_peek lx with
    | '\000' -> fail lx "unterminated attribute value"
    | c when c = quote ->
      Lexer.raw_advance lx;
      if Lexer.raw_peek lx = quote then begin
        Buffer.add_char buf quote;
        Lexer.raw_advance lx;
        go ()
      end
    | '{' ->
      Lexer.raw_advance lx;
      if Lexer.raw_peek lx = '{' then begin
        Buffer.add_char buf '{';
        Lexer.raw_advance lx;
        go ()
      end
      else begin
        flush ();
        (* Token mode for the enclosed expression. *)
        let e = parse_expr_seq lx in
        expect lx Lexer.RBRACE;
        pieces := A_expr e :: !pieces;
        go ()
      end
    | '}' ->
      Lexer.raw_advance lx;
      if Lexer.raw_peek lx = '}' then Lexer.raw_advance lx;
      Buffer.add_char buf '}';
      go ()
    | '&' ->
      Lexer.raw_advance lx;
      Buffer.add_string buf (raw_entity lx);
      go ()
    | c ->
      Buffer.add_char buf c;
      Lexer.raw_advance lx;
      go ()
  in
  go ();
  flush ();
  List.rev !pieces

and parse_direct_element lx =
  let name = raw_name lx in
  let attrs = ref [] in
  let rec attr_loop () =
    raw_skip_space lx;
    match Lexer.raw_peek lx with
    | '/' ->
      Lexer.raw_advance lx;
      if Lexer.raw_peek lx = '>' then begin
        Lexer.raw_advance lx;
        Elem_constr (name, List.rev !attrs, [])
      end
      else fail lx "expected '/>'"
    | '>' ->
      Lexer.raw_advance lx;
      let content = parse_direct_content lx name in
      Elem_constr (name, List.rev !attrs, content)
    | '\000' -> fail lx "unterminated start tag <%s" name
    | _ ->
      let an = raw_name lx in
      raw_skip_space lx;
      if Lexer.raw_peek lx <> '=' then fail lx "expected '=' in attribute";
      Lexer.raw_advance lx;
      raw_skip_space lx;
      let quote = Lexer.raw_peek lx in
      if quote <> '"' && quote <> '\'' then
        fail lx "expected a quoted attribute value";
      Lexer.raw_advance lx;
      let pieces = parse_attr_value lx quote in
      attrs := (an, pieces) :: !attrs;
      attr_loop ()
  in
  attr_loop ()

and parse_direct_content lx name =
  let items = ref [] in
  let buf = Buffer.create 32 in
  let is_boundary_ws s = String.for_all (fun c -> c = ' ' || c = '\t' || c = '\n' || c = '\r') s in
  let flush () =
    if Buffer.length buf > 0 then begin
      let s = Buffer.contents buf in
      (* Boundary-space policy: strip (XQuery default). *)
      if not (is_boundary_ws s) then
        items := Text_constr (Literal (Atom.Str s)) :: !items;
      Buffer.clear buf
    end
  in
  let rec go () =
    match Lexer.raw_peek lx with
    | '\000' -> fail lx "unterminated element <%s>" name
    | '<' ->
      Lexer.raw_advance lx;
      if Lexer.raw_peek lx = '/' then begin
        Lexer.raw_advance lx;
        let close = raw_name lx in
        if close <> name then
          fail lx "mismatched </%s> for <%s>" close name;
        raw_skip_space lx;
        if Lexer.raw_peek lx <> '>' then fail lx "expected '>'";
        Lexer.raw_advance lx;
        flush ()
      end
      else if Lexer.raw_peek lx = '!' then begin
        (* comment <!-- ... --> *)
        flush ();
        Lexer.raw_advance lx;
        let expect_ch c =
          if Lexer.raw_peek lx = c then Lexer.raw_advance lx
          else fail lx "malformed comment in constructor"
        in
        expect_ch '-';
        expect_ch '-';
        let cbuf = Buffer.create 16 in
        let rec comment () =
          match Lexer.raw_peek lx with
          | '\000' -> fail lx "unterminated comment"
          | '-' ->
            Lexer.raw_advance lx;
            if Lexer.raw_peek lx = '-' then begin
              Lexer.raw_advance lx;
              if Lexer.raw_peek lx = '>' then Lexer.raw_advance lx
              else fail lx "'--' not allowed in comment"
            end
            else begin
              Buffer.add_char cbuf '-';
              comment ()
            end
          | c ->
            Buffer.add_char cbuf c;
            Lexer.raw_advance lx;
            comment ()
        in
        comment ();
        items := Comment_constr (Literal (Atom.Str (Buffer.contents cbuf))) :: !items;
        go ()
      end
      else begin
        flush ();
        let start = Lexer.pos lx - 1 in
        let e = note start (parse_direct_element lx) in
        items := e :: !items;
        go ()
      end
    | '{' ->
      Lexer.raw_advance lx;
      if Lexer.raw_peek lx = '{' then begin
        Buffer.add_char buf '{';
        Lexer.raw_advance lx;
        go ()
      end
      else begin
        flush ();
        let e = parse_expr_seq lx in
        expect lx Lexer.RBRACE;
        items := e :: !items;
        go ()
      end
    | '}' ->
      Lexer.raw_advance lx;
      if Lexer.raw_peek lx = '}' then begin
        Buffer.add_char buf '}';
        Lexer.raw_advance lx;
        go ()
      end
      else fail lx "'}' must be escaped as '}}' in element content"
    | '&' ->
      Lexer.raw_advance lx;
      Buffer.add_string buf (raw_entity lx);
      go ()
    | c ->
      Buffer.add_char buf c;
      Lexer.raw_advance lx;
      go ()
  in
  go ();
  List.rev !items

(* ------------------------------------------------------------------ *)
(* Programs                                                            *)
(* ------------------------------------------------------------------ *)

let parse_fundef lx =
  (* after 'declare function' *)
  let noff = Lexer.token_start lx in
  let name = normalize_fname (parse_ncname lx) in
  note_name ("fn:" ^ name) noff;
  expect lx Lexer.LPAREN;
  let params =
    if Lexer.peek lx = Lexer.RPAREN then []
    else
      let rec params acc =
        let v = parse_var lx in
        let ty =
          if is_kw lx "as" then begin
            Lexer.advance lx;
            Some (parse_seq_type_tokens lx)
          end
          else None
        in
        if Lexer.peek lx = Lexer.COMMA then begin
          Lexer.advance lx;
          params ((v, ty) :: acc)
        end
        else List.rev ((v, ty) :: acc)
      in
      params []
  in
  expect lx Lexer.RPAREN;
  let return_type =
    if is_kw lx "as" then begin
      Lexer.advance lx;
      Some (parse_seq_type_tokens lx)
    end
    else None
  in
  expect lx Lexer.LBRACE;
  let body = parse_expr_seq lx in
  expect lx Lexer.RBRACE;
  { fname = name; params; return_type; body }

let parse_program_lx lx =
  let functions = ref [] in
  let variables = ref [] in
  let rec prolog () =
    if is_kw lx "declare" then begin
      Lexer.advance lx;
      (if is_kw lx "function" then begin
         Lexer.advance lx;
         functions := parse_fundef lx :: !functions
       end
       else if is_kw lx "variable" then begin
         Lexer.advance lx;
         let voff = Lexer.token_start lx in
         let v = parse_var lx in
         note_name ("var:" ^ v) voff;
         (if is_kw lx "as" then begin
            Lexer.advance lx;
            ignore (parse_seq_type_tokens lx)
          end);
         expect lx Lexer.ASSIGN;
         let e = parse_single lx in
         variables := (v, e) :: !variables
       end
       else fail lx "expected 'function' or 'variable' after 'declare'");
      if Lexer.peek lx = Lexer.SEMI then Lexer.advance lx;
      prolog ()
    end
  in
  prolog ();
  let main = parse_expr_seq lx in
  (match Lexer.peek lx with
  | Lexer.EOF -> ()
  | got -> fail lx "trailing input: %s" (Lexer.describe got));
  { functions = List.rev !functions; variables = List.rev !variables; main }

let wrap_errors lx f =
  try f () with
  | Lexer.Error { pos; msg } ->
    let (line, col) = Lexer.line_col lx pos in
    raise (Error { line; col; msg })

let parse_program src =
  let lx = Lexer.create src in
  wrap_errors lx (fun () -> parse_program_lx lx)

let parse_program_spans src =
  let lx = Lexer.create src in
  let spans = Spans.create src in
  Mutex.lock spans_lock;
  current_spans := Some spans;
  Fun.protect
    ~finally:(fun () ->
      current_spans := None;
      Mutex.unlock spans_lock)
    (fun () ->
      let p = wrap_errors lx (fun () -> parse_program_lx lx) in
      (p, spans))

let parse_expr src =
  let lx = Lexer.create src in
  wrap_errors lx (fun () ->
      let e = parse_expr_seq lx in
      match Lexer.peek lx with
      | Lexer.EOF -> e
      | got -> fail lx "trailing input: %s" (Lexer.describe got))

let parse_seq_type src =
  let lx = Lexer.create src in
  wrap_errors lx (fun () ->
      let t = parse_seq_type_tokens lx in
      match Lexer.peek lx with
      | Lexer.EOF -> t
      | got -> fail lx "trailing input: %s" (Lexer.describe got))
