open Ast
module Axis = Fixq_xdm.Axis
module Atom = Fixq_xdm.Atom

let buf_add = Buffer.add_string

let string_lit s =
  (* double-quote literal with XQuery's "" escape *)
  let b = Buffer.create (String.length s + 2) in
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      if c = '"' then buf_add b "\"\"" else Buffer.add_char b c)
    s;
  Buffer.add_char b '"';
  Buffer.contents b

let atom_lit = function
  | Atom.Int i -> if i < 0 then Printf.sprintf "(%d)" i else string_of_int i
  | Atom.Dbl f ->
    if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
    else Printf.sprintf "%.17g" f
  | Atom.Str s -> string_lit s
  | Atom.Bool true -> "true()"
  | Atom.Bool false -> "false()"

let test_to_string = function
  | Axis.Name n -> n
  | Axis.Kind_node -> "node()"
  | Axis.Kind_text -> "text()"
  | Axis.Kind_comment -> "comment()"
  | Axis.Kind_pi -> "processing-instruction()"
  | Axis.Kind_element None -> "element()"
  | Axis.Kind_element (Some n) -> Printf.sprintf "element(%s)" n
  | Axis.Kind_attribute None -> "attribute()"
  | Axis.Kind_attribute (Some n) -> Printf.sprintf "attribute(%s)" n
  | Axis.Kind_document -> "document-node()"

let step_to_string { axis; test } =
  Printf.sprintf "%s::%s" (Axis.axis_to_string axis) (test_to_string test)

let item_type_to_string = function
  | It_item -> "item()"
  | It_node -> "node()"
  | It_element None -> "element()"
  | It_element (Some n) -> Printf.sprintf "element(%s)" n
  | It_attribute None -> "attribute()"
  | It_attribute (Some n) -> Printf.sprintf "attribute(%s)" n
  | It_text -> "text()"
  | It_comment -> "comment()"
  | It_document -> "document-node()"
  | It_atomic t -> "xs:" ^ t

let seq_type_to_string = function
  | Empty_sequence -> "empty-sequence()"
  | Typed (it, occ) ->
    item_type_to_string it
    ^ (match occ with One -> "" | Opt -> "?" | Star -> "*" | Plus -> "+")

let cmp_gen = function
  | Eq -> "=" | Ne -> "!=" | Lt -> "<" | Le -> "<=" | Gt -> ">" | Ge -> ">="

let cmp_val = function
  | Eq -> "eq" | Ne -> "ne" | Lt -> "lt" | Le -> "le" | Gt -> "gt" | Ge -> "ge"

let arith_sym = function
  | Add -> "+" | Sub -> "-" | Mul -> "*" | Div -> "div" | Idiv -> "idiv"
  | Mod -> "mod"

(* Escape literal text for direct-constructor content / attribute
   values. *)
let escape_constructor_text ~attr s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '<' -> buf_add b "&lt;"
      | '>' -> buf_add b "&gt;"
      | '&' -> buf_add b "&amp;"
      | '{' -> buf_add b "{{"
      | '}' -> buf_add b "}}"
      | '"' when attr -> buf_add b "&quot;"
      | '\'' when attr -> buf_add b "&apos;"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

(* Everything below is rendered fully parenthesized where nesting could
   change the parse; [go] returns a self-delimiting string. *)
let rec go (e : expr) : string =
  match e with
  | Literal a -> atom_lit a
  | Empty_seq -> "()"
  | Var v -> "$" ^ v
  | Context_item -> "."
  | Root -> "(/)"
  | Sequence (a, b) -> Printf.sprintf "(%s, %s)" (go a) (go b)
  | Union (a, b) -> Printf.sprintf "(%s union %s)" (go a) (go b)
  | Except (a, b) -> Printf.sprintf "(%s except %s)" (go a) (go b)
  | Intersect (a, b) -> Printf.sprintf "(%s intersect %s)" (go a) (go b)
  | Path (Root, b) -> Printf.sprintf "/%s" (go_step b)
  | Path (a, b) -> Printf.sprintf "%s/%s" (go_path_operand a) (go_step b)
  | Axis_step s -> step_to_string s
  | Filter (a, p) -> Printf.sprintf "%s[%s]" (go_filter_base a) (go p)
  | For { var; pos; source; body } ->
    Printf.sprintf "(for $%s%s in %s return %s)" var
      (match pos with None -> "" | Some p -> " at $" ^ p)
      (go source) (go body)
  | Sort { var; source; key; descending; body } ->
    Printf.sprintf "(for $%s in %s order by %s%s return %s)" var (go source)
      (go key)
      (if descending then " descending" else "")
      (go body)
  | Let { var; value; body } ->
    Printf.sprintf "(let $%s := %s return %s)" var (go value) (go body)
  | If (c, t, e') ->
    Printf.sprintf "(if (%s) then %s else %s)" (go c) (go t) (go e')
  | Quantified (q, v, source, pred) ->
    Printf.sprintf "(%s $%s in %s satisfies %s)"
      (match q with Some_ -> "some" | Every -> "every")
      v (go source) (go pred)
  | Arith (op, a, b) ->
    Printf.sprintf "(%s %s %s)" (go a) (arith_sym op) (go b)
  | Neg a -> Printf.sprintf "(- %s)" (go a)
  | Gen_cmp (c, a, b) ->
    Printf.sprintf "(%s %s %s)" (go a) (cmp_gen c) (go b)
  | Val_cmp (c, a, b) ->
    Printf.sprintf "(%s %s %s)" (go a) (cmp_val c) (go b)
  | Node_is (a, b) -> Printf.sprintf "(%s is %s)" (go a) (go b)
  | Node_before (a, b) -> Printf.sprintf "(%s << %s)" (go a) (go b)
  | Node_after (a, b) -> Printf.sprintf "(%s >> %s)" (go a) (go b)
  | And (a, b) -> Printf.sprintf "(%s and %s)" (go a) (go b)
  | Or (a, b) -> Printf.sprintf "(%s or %s)" (go a) (go b)
  | Range (a, b) -> Printf.sprintf "(%s to %s)" (go a) (go b)
  | Call (f, args) ->
    Printf.sprintf "%s(%s)" f (String.concat ", " (List.map go args))
  | Elem_constr (name, attrs, content) ->
    let attr (an, pieces) =
      let body =
        String.concat ""
          (List.map
             (function
               | A_lit s -> escape_constructor_text ~attr:true s
               | A_expr e -> Printf.sprintf "{%s}" (go e))
             pieces)
      in
      Printf.sprintf " %s=\"%s\"" an body
    in
    if content = [] then
      Printf.sprintf "<%s%s/>" name (String.concat "" (List.map attr attrs))
    else
      Printf.sprintf "<%s%s>%s</%s>" name
        (String.concat "" (List.map attr attrs))
        (String.concat ""
           (List.map (fun c -> Printf.sprintf "{%s}" (go c)) content))
        name
  | Instance_of (a, ty) ->
    Printf.sprintf "(%s instance of %s)" (go a) (seq_type_to_string ty)
  | Cast (a, ty, opt) ->
    Printf.sprintf "(%s cast as xs:%s%s)" (go a) ty (if opt then "?" else "")
  | Castable (a, ty, opt) ->
    Printf.sprintf "(%s castable as xs:%s%s)" (go a) ty
      (if opt then "?" else "")
  | Comp_elem (name, body) ->
    Printf.sprintf "(element %s { %s })" name (go body)
  | Text_constr body -> Printf.sprintf "(text { %s })" (go body)
  | Attr_constr (name, body) ->
    Printf.sprintf "(attribute %s { %s })" name (go body)
  | Comment_constr body -> Printf.sprintf "(comment { %s })" (go body)
  | Doc_constr body -> Printf.sprintf "(document { %s })" (go body)
  | Typeswitch (scrut, cases, dvar, dbody) ->
    let case (ty, v, body) =
      Printf.sprintf " case %s%s return %s"
        (match v with None -> "" | Some v -> "$" ^ v ^ " as ")
        (seq_type_to_string ty) (go body)
    in
    Printf.sprintf "(typeswitch (%s)%s default %sreturn %s)" (go scrut)
      (String.concat "" (List.map case cases))
      (match dvar with None -> "" | Some v -> "$" ^ v ^ " ")
      (go dbody)
  | Ifp { var; seed; body; accum } ->
    Printf.sprintf "(with $%s seeded by %s recurse %s%s)" var (go seed)
      (go body)
      (match accum with
      | None -> ""
      | Some { kind; weight } ->
        Printf.sprintf " accumulate by %s%s"
          (Fixq_semiring.Semiring.kind_to_string kind)
          (match weight with
          | None -> ""
          | Some w -> "(" ^ go w ^ ")"))

(* Base of a predicate: like a path operand, except that a Path base
   must be parenthesized — "a/b[p]" attaches the predicate to the last
   step, not to the whole path. *)
and go_filter_base e =
  match e with
  | Path _ -> Printf.sprintf "(%s)" (go e)
  | _ -> go_path_operand e

(* Left operand of '/' or '[': must be a step expression; wrap others in
   parentheses (which the grammar accepts in step position). *)
and go_path_operand e =
  match e with
  | Path _ | Axis_step _ | Filter _ | Var _ | Call _ | Context_item
  | Literal _ ->
    go e
  | _ -> Printf.sprintf "(%s)" (go e)

(* Right-hand side of '/': a step or a parenthesized expression. *)
and go_step e =
  match e with
  | Axis_step s -> step_to_string s
  | Filter ((Axis_step _ as s), p) ->
    Printf.sprintf "%s[%s]" (go_step s) (go p)
  | Call _ | Var _ -> go e
  | _ -> Printf.sprintf "(%s)" (go e)

let expr_to_string = go

let pp_expr ppf e = Format.pp_print_string ppf (expr_to_string e)

let program_to_string (p : program) =
  let b = Buffer.create 256 in
  List.iter
    (fun fd ->
      let param (v, ty) =
        Printf.sprintf "$%s%s" v
          (match ty with
          | None -> ""
          | Some t -> " as " ^ seq_type_to_string t)
      in
      buf_add b
        (Printf.sprintf "declare function %s(%s)%s { %s };\n" fd.fname
           (String.concat ", " (List.map param fd.params))
           (match fd.return_type with
           | None -> ""
           | Some t -> " as " ^ seq_type_to_string t)
           (go fd.body)))
    p.functions;
  List.iter
    (fun (v, e) ->
      buf_add b (Printf.sprintf "declare variable $%s := %s;\n" v (go e)))
    p.variables;
  buf_add b (go p.main);
  Buffer.contents b
