type token =
  | INT of int
  | DBL of float
  | STRING of string
  | NAME of string
  | VAR of string
  | LPAREN
  | RPAREN
  | LBRACKET
  | RBRACKET
  | LBRACE
  | RBRACE
  | COMMA
  | SEMI
  | SLASH
  | SLASH2
  | DOT
  | DOT2
  | AT
  | AXIS2
  | ASSIGN
  | EQ
  | NE
  | LT
  | LE
  | GT
  | GE
  | LT2
  | GT2
  | PLUS
  | MINUS
  | STAR
  | QMARK
  | PIPE
  | EOF

exception Error of { pos : int; msg : string }

type t = {
  src : string;
  mutable cursor : int;  (** position after the buffered token *)
  mutable buffered : (token * int) option;  (** token and its start *)
}

let create src = { src; cursor = 0; buffered = None }
let source t = t.src

let error t fmt =
  Format.kasprintf (fun msg -> raise (Error { pos = t.cursor; msg })) fmt

let is_space = function ' ' | '\t' | '\n' | '\r' -> true | _ -> false
let is_digit c = c >= '0' && c <= '9'

let is_name_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
  || Char.code c >= 128

let is_name_char c = is_name_start c || is_digit c || c = '-' || c = '.'
let at t i = if i < String.length t.src then t.src.[i] else '\000'

(* Skip whitespace and (: nested comments :). *)
let rec skip_trivia t i =
  if i < String.length t.src && is_space t.src.[i] then skip_trivia t (i + 1)
  else if at t i = '(' && at t (i + 1) = ':' then begin
    let rec comment i depth =
      if i >= String.length t.src then
        raise (Error { pos = i; msg = "unterminated comment" })
      else if at t i = '(' && at t (i + 1) = ':' then comment (i + 2) (depth + 1)
      else if at t i = ':' && at t (i + 1) = ')' then
        if depth = 1 then i + 2 else comment (i + 2) (depth - 1)
      else comment (i + 1) depth
    in
    skip_trivia t (comment (i + 2) 1)
  end
  else i

let lex_name t i =
  let start = i in
  let i = ref i in
  while is_name_char (at t !i) do
    incr i
  done;
  (* Allow one prefix:local pair, but not '::' (axis) or ':=' . *)
  if at t !i = ':' && is_name_start (at t (!i + 1)) && at t (!i + 1) <> ':'
  then begin
    incr i;
    while is_name_char (at t !i) do
      incr i
    done
  end;
  (String.sub t.src start (!i - start), !i)

let lex_string t i =
  let quote = at t i in
  let buf = Buffer.create 16 in
  let rec go i =
    if i >= String.length t.src then error t "unterminated string literal"
    else if at t i = quote then
      if at t (i + 1) = quote then begin
        Buffer.add_char buf quote;
        go (i + 2)
      end
      else (Buffer.contents buf, i + 1)
    else begin
      Buffer.add_char buf (at t i);
      go (i + 1)
    end
  in
  go (i + 1)

let lex_number t i =
  let start = i in
  let i = ref i in
  while is_digit (at t !i) do
    incr i
  done;
  let is_dbl = ref false in
  if at t !i = '.' && is_digit (at t (!i + 1)) then begin
    is_dbl := true;
    incr i;
    while is_digit (at t !i) do
      incr i
    done
  end;
  if at t !i = 'e' || at t !i = 'E' then begin
    is_dbl := true;
    incr i;
    if at t !i = '+' || at t !i = '-' then incr i;
    while is_digit (at t !i) do
      incr i
    done
  end;
  let s = String.sub t.src start (!i - start) in
  let tok =
    if !is_dbl then DBL (float_of_string s)
    else
      match int_of_string_opt s with
      | Some n -> INT n
      | None -> DBL (float_of_string s)
  in
  (tok, !i)

let scan t =
  let i = skip_trivia t t.cursor in
  if i >= String.length t.src then (EOF, i, i)
  else
    let c = t.src.[i] in
    let two tok = (tok, i, i + 2) in
    let one tok = (tok, i, i + 1) in
    match c with
    | '(' -> one LPAREN
    | ')' -> one RPAREN
    | '[' -> one LBRACKET
    | ']' -> one RBRACKET
    | '{' -> one LBRACE
    | '}' -> one RBRACE
    | ',' -> one COMMA
    | ';' -> one SEMI
    | '?' -> one QMARK
    | '|' -> one PIPE
    | '+' -> one PLUS
    | '-' -> one MINUS
    | '*' -> one STAR
    | '@' -> one AT
    | '=' -> one EQ
    | '/' -> if at t (i + 1) = '/' then two SLASH2 else one SLASH
    | '.' -> if at t (i + 1) = '.' then two DOT2 else one DOT
    | ':' ->
      if at t (i + 1) = ':' then two AXIS2
      else if at t (i + 1) = '=' then two ASSIGN
      else error t "unexpected ':'"
    | '!' ->
      if at t (i + 1) = '=' then two NE else error t "unexpected '!'"
    | '<' ->
      if at t (i + 1) = '=' then two LE
      else if at t (i + 1) = '<' then two LT2
      else one LT
    | '>' ->
      if at t (i + 1) = '=' then two GE
      else if at t (i + 1) = '>' then two GT2
      else one GT
    | '$' ->
      if not (is_name_start (at t (i + 1))) then
        error t "expected a variable name after '$'"
      else
        let (name, j) = lex_name t (i + 1) in
        (VAR name, i, j)
    | '"' | '\'' ->
      let (s, j) = lex_string t i in
      (STRING s, i, j)
    | c when is_digit c ->
      let (tok, j) = lex_number t i in
      (tok, i, j)
    | c when is_name_start c ->
      let (name, j) = lex_name t i in
      (NAME name, i, j)
    | c -> error t "unexpected character %C" c

let fill t =
  match t.buffered with
  | Some _ -> ()
  | None ->
    let (tok, start, stop) = scan t in
    t.buffered <- Some (tok, start);
    t.cursor <- stop

let peek t =
  fill t;
  match t.buffered with Some (tok, _) -> tok | None -> assert false

let token_start t =
  fill t;
  match t.buffered with Some (_, s) -> s | None -> assert false

let advance t =
  fill t;
  t.buffered <- None

let next t =
  let tok = peek t in
  advance t;
  tok

let pos t = match t.buffered with Some (_, s) -> s | None -> t.cursor

let set_pos t p =
  t.buffered <- None;
  t.cursor <- p

let raw_peek t =
  assert (t.buffered = None);
  at t t.cursor

let raw_advance t =
  assert (t.buffered = None);
  t.cursor <- t.cursor + 1

let describe = function
  | INT n -> Printf.sprintf "integer %d" n
  | DBL f -> Printf.sprintf "double %g" f
  | STRING s -> Printf.sprintf "string %S" s
  | NAME n -> Printf.sprintf "name %S" n
  | VAR v -> Printf.sprintf "variable $%s" v
  | LPAREN -> "'('"
  | RPAREN -> "')'"
  | LBRACKET -> "'['"
  | RBRACKET -> "']'"
  | LBRACE -> "'{'"
  | RBRACE -> "'}'"
  | COMMA -> "','"
  | SEMI -> "';'"
  | SLASH -> "'/'"
  | SLASH2 -> "'//'"
  | DOT -> "'.'"
  | DOT2 -> "'..'"
  | AT -> "'@'"
  | AXIS2 -> "'::'"
  | ASSIGN -> "':='"
  | EQ -> "'='"
  | NE -> "'!='"
  | LT -> "'<'"
  | LE -> "'<='"
  | GT -> "'>'"
  | GE -> "'>='"
  | LT2 -> "'<<'"
  | GT2 -> "'>>'"
  | PLUS -> "'+'"
  | MINUS -> "'-'"
  | STAR -> "'*'"
  | QMARK -> "'?'"
  | PIPE -> "'|'"
  | EOF -> "end of input"

let line_col_of src off =
  let line = ref 1 and col = ref 1 in
  for i = 0 to min (off - 1) (String.length src - 1) do
    if src.[i] = '\n' then begin
      incr line;
      col := 1
    end
    else incr col
  done;
  (!line, !col)

let line_col t off = line_col_of t.src off
