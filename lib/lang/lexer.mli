(** Hand-written lexer for the [fixq] XQuery subset.

    XQuery has no reserved words — keywords are recognized contextually
    by the parser — so names are returned as {!NAME} tokens. Direct
    element constructors switch the reader into XML mode: the parser
    drives that through the raw-character interface ({!raw_peek},
    {!raw_advance}, {!set_pos}), which operates on the same source
    position as the token stream. *)

type token =
  | INT of int
  | DBL of float
  | STRING of string
  | NAME of string  (** possibly prefixed, e.g. ["fn:id"] *)
  | VAR of string  (** [$name], without the dollar *)
  | LPAREN
  | RPAREN
  | LBRACKET
  | RBRACKET
  | LBRACE
  | RBRACE
  | COMMA
  | SEMI
  | SLASH
  | SLASH2
  | DOT
  | DOT2
  | AT
  | AXIS2  (** [::] *)
  | ASSIGN  (** [:=] *)
  | EQ
  | NE
  | LT
  | LE
  | GT
  | GE
  | LT2  (** [<<] *)
  | GT2  (** [>>] *)
  | PLUS
  | MINUS
  | STAR
  | QMARK
  | PIPE
  | EOF

exception Error of { pos : int; msg : string }

type t

val create : string -> t

(** Current lookahead token (lexing on demand). *)
val peek : t -> token

(** Consume the lookahead. *)
val advance : t -> unit

(** Consume and return the lookahead. *)
val next : t -> token

(** Source offset where the current lookahead token starts. *)
val token_start : t -> int

(** Raw-character interface for XML mode. [set_pos] discards any
    buffered lookahead. *)
val raw_peek : t -> char

val raw_advance : t -> unit
val pos : t -> int
val set_pos : t -> int -> unit
val source : t -> string

val describe : token -> string

(** Line/column of an offset, for error reporting. *)
val line_col : t -> int -> int * int

(** Same, directly from a source string — for error sites that hold
    only the original source text, not the lexer. *)
val line_col_of : string -> int -> int * int
