(** Syntactic distributivity safety [ds_$x(·)] — Figure 5 of the paper.

    [check ~functions x e] soundly approximates "is [e] distributive for
    [$x]" (Definition 3.1): a [true] verdict guarantees

    {v for $y in X return e[$y/$x]  s=  e[X/$x] v}

    for every non-empty sequence [X], which by Theorem 3.2 licenses the
    Delta algorithm for [with $x seeded by … recurse e]. [false] only
    means the rules could not establish distributivity (the property
    itself is undecidable); the "distributivity hint" rewrite
    ({!Rewrite.distributivity_hint}) can often help.

    Implemented rules: CONST, VAR, IF, CONCAT (for [,] and [union]),
    FOR1, FOR2 (the latter only without a positional variable — [at $p]
    exposes the division of the input), LET1, LET2, TYPESW, STEP1,
    STEP2, FUNCALL (recursing into user-defined function bodies;
    recursive functions are conservatively rejected), plus two sound
    extensions beyond the paper's figure:

    - a base rule: any expression in which [$x] does not occur free and
      that contains no node constructor is distributivity-safe (the
      paper's prose, Section 3.2);
    - a FILTER rule for predicates [e1\[p\]] where [p] cannot be
      positional (no [position()]/[last()], provably non-numeric) and
      does not mention [$x].

    Built-in functions carry per-argument distributivity annotations
    (e.g. [fn:id] is distributive in its first argument, [fn:count] in
    none), mirroring what rule FUNCALL would infer from their
    definitions. *)

(** Why a check failed (best-effort, for diagnostics). *)
type verdict = Safe | Unsafe of string

(** Structured failure: the Figure-5 rule that could not be applied
    ([FOR1/FOR2], [EXCEPT/INTERSECT], [ARITH], …), the human-readable
    reason, and the smallest blamed subexpression (a physical node of
    the input tree, so it resolves to [line:col] through
    {!Parser.Spans}). *)
type blame = { rule : string; reason : string; blamed : Ast.expr }

(** [stratified] (default [false]) enables the Section-6 refinement the
    paper credits to stratified Datalog: [e1 except e2] is distributive
    for [$x] when [e1] is and [e2] is fixed (no free [$x]) —
    [f(x) = x \ R] distributes over ∪. Figure 5 itself has no such
    rule, so the flag is off by default. *)
val check :
  ?functions:(string, Ast.fundef) Hashtbl.t ->
  ?stratified:bool ->
  string ->
  Ast.expr ->
  bool

val explain :
  ?functions:(string, Ast.fundef) Hashtbl.t ->
  ?stratified:bool ->
  string ->
  Ast.expr ->
  verdict

(** [blame_of x e] is [None] when [ds_x(e)] holds, otherwise the first
    (leftmost-innermost along the inference) violated rule with the
    blamed subexpression. [explain] is its reason projection. *)
val blame_of :
  ?functions:(string, Ast.fundef) Hashtbl.t ->
  ?stratified:bool ->
  string ->
  Ast.expr ->
  blame option

(** Does the expression mention [position()] or [last()] anywhere?
    (Used by the FILTER rule and by the algebra compiler to reject
    positional predicates in set-oriented mode.) *)
val mentions_position : Ast.expr -> bool

(** Can the expression be shown never to evaluate to a numeric value
    (so a predicate built from it cannot be positional)? Conservative. *)
val surely_non_numeric : Ast.expr -> bool

(** Per-argument distributivity annotation of a built-in: [Some mask]
    where [mask.(i)] says argument [i] may carry [$x]; [None] for
    built-ins never distributive in any argument. *)
val builtin_annotation : string -> bool array option
