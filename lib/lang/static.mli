(** Static checks over parsed programs: name resolution and arity —
    the mistakes a processor should report before evaluation rather
    than as dynamic errors deep inside a fixpoint.

    Checked:
    - references to undefined variables (respecting [for]/[let]/
      quantifier/typeswitch/IFP binders, function parameters and
      global declarations);
    - calls to unknown functions (neither built-in nor declared) and
      declared-function calls with the wrong arity;
    - duplicate function declarations and duplicate parameters;
    - IFP bodies that never use their recursion variable (reported as a
      warning — the fixed point converges after one round). *)

type severity = Error | Warning

type diagnostic = {
  severity : severity;
  context : string;  (** enclosing function name, or ["main"] *)
  message : string;
  code : string;  (** stable [FQ0xx] diagnostic code *)
  at : Ast.expr option;
      (** the offending node, when one exists — resolves to a source
          [line:col] through {!Parser.Spans} *)
}

val check_program : Ast.program -> diagnostic list

(** [errors ds] keeps only the hard errors. *)
val errors : diagnostic list -> diagnostic list

val pp_diagnostic : Format.formatter -> diagnostic -> unit
