module Item = Fixq_xdm.Item
module Accumulator = Fixq_xdm.Accumulator

exception Diverged of int

let default_max = 1_000_000

(* Both loops thread an {!Fixq_xdm.Accumulator} instead of re-sorting
   the accumulated result every round: [absorb] filters the body's
   output against a bitmap (the old [Item.except]), appends the fresh
   nodes as a sorted run (the old [Item.union]) and counts sizes along
   the way, so the per-round cost depends on |out| + |Δ| only — and the
   stats recording below costs no extra traversals. *)

(* Figure 3(a): res ← erec(eseed); do res ← erec(res) ∪ res while res
   grows. Growth is detected on node-identity sets, which for node
   sequences coincides with the set-equality test of Definition 2.1.
   With [include_seed] the iteration starts from res ← eseed instead
   (Example 2.4's convention). *)
let naive ?(max_iterations = default_max) ?(include_seed = false) ~stats ~body
    ~seed () =
  Stats.start_run stats;
  let acc = Accumulator.create () in
  if include_seed then ignore (Accumulator.absorb acc ~who:"fs:ddo" seed)
  else begin
    let seed_n = List.length seed in
    let first = body seed in
    let (_, _, first_n) = Accumulator.absorb acc ~who:"fs:ddo" first in
    Stats.record_iteration stats ~fed:seed_n ~produced:first_n
      ~result_size:(Accumulator.size acc)
  end;
  let rec loop i =
    if i > max_iterations then raise (Diverged i);
    let res_n = Accumulator.size acc in
    let out = body (Accumulator.to_seq acc) in
    let (_, fresh_n, out_n) = Accumulator.absorb acc ~who:"union" out in
    Stats.record_iteration stats ~fed:res_n ~produced:out_n
      ~result_size:(Accumulator.size acc);
    if fresh_n = 0 then Accumulator.to_seq acc else loop (i + 1)
  in
  loop 1

(* Figure 3(b): the payload sees only the newly discovered nodes. *)
let delta ?(max_iterations = default_max) ?(include_seed = false) ~stats ~body
    ~seed () =
  Stats.start_run stats;
  let acc = Accumulator.create () in
  let start =
    if include_seed then
      let (fresh, fresh_n, _) = Accumulator.absorb acc ~who:"fs:ddo" seed in
      (fresh, fresh_n)
    else begin
      let seed_n = List.length seed in
      let first = body seed in
      let (fresh, fresh_n, first_n) =
        Accumulator.absorb acc ~who:"fs:ddo" first
      in
      Stats.record_iteration stats ~fed:seed_n ~produced:first_n
        ~result_size:(Accumulator.size acc);
      (fresh, fresh_n)
    end
  in
  let rec loop (delta, delta_n) i =
    if i > max_iterations then raise (Diverged i);
    let out = body delta in
    let (fresh, fresh_n, out_n) = Accumulator.absorb acc ~who:"except" out in
    Stats.record_iteration stats ~fed:delta_n ~produced:out_n
      ~result_size:(Accumulator.size acc);
    if fresh_n = 0 then Accumulator.to_seq acc
    else loop (fresh, fresh_n) (i + 1)
  in
  loop start 1

(* Parallel Delta (Section 7's divide-and-conquer reading of
   distributivity): split each round's ∆ across domains. The first
   round runs sequentially so lazily-built document indexes are in
   place before concurrent reads. *)
let delta_parallel ?(max_iterations = default_max) ?(include_seed = false)
    ?domains ?(chunk_threshold = 64) ~stats ~body ~seed () =
  let domains =
    match domains with
    | Some d -> max 1 d
    | None -> max 1 (Domain.recommended_domain_count () - 1)
  in
  let split n k items =
    (* k roughly equal chunks, preserving order within chunks *)
    let size = max 1 ((n + k - 1) / k) in
    let rec go acc current count = function
      | [] ->
        List.rev
          (if current = [] then acc else List.rev current :: acc)
      | x :: rest ->
        if count = size then go (List.rev current :: acc) [ x ] 1 rest
        else go acc (x :: current) (count + 1) rest
    in
    go [] [] 0 items
  in
  (* Returns the per-chunk results in a preallocated array (slot 0 is
     the chunk evaluated on this domain) — absorbed without ever
     concatenating them into one list. *)
  let apply_parallel input input_n =
    if domains = 1 || input_n < chunk_threshold then [| body input |]
    else begin
      match split input_n domains input with
      | [] -> [||]
      | first :: rest ->
        let handles =
          List.map (fun chunk -> Domain.spawn (fun () -> body chunk)) rest
        in
        let parts = Array.make (List.length handles + 1) [] in
        parts.(0) <- body first;
        List.iteri (fun i h -> parts.(i + 1) <- Domain.join h) handles;
        parts
    end
  in
  Stats.start_run stats;
  let acc = Accumulator.create () in
  let start =
    if include_seed then
      let (fresh, fresh_n, _) = Accumulator.absorb acc ~who:"fs:ddo" seed in
      (fresh, fresh_n)
    else begin
      (* sequential first application: warms lazy indexes *)
      let seed_n = List.length seed in
      let first = body seed in
      let (fresh, fresh_n, first_n) =
        Accumulator.absorb acc ~who:"fs:ddo" first
      in
      Stats.record_iteration stats ~fed:seed_n ~produced:first_n
        ~result_size:(Accumulator.size acc);
      (fresh, fresh_n)
    end
  in
  let rec loop (delta, delta_n) i =
    if i > max_iterations then raise (Diverged i);
    let out_parts = apply_parallel delta delta_n in
    let (fresh, fresh_n, out_n) =
      Accumulator.absorb_parts acc ~who:"except" out_parts
    in
    Stats.record_iteration stats ~fed:delta_n ~produced:out_n
      ~result_size:(Accumulator.size acc);
    if fresh_n = 0 then Accumulator.to_seq acc
    else loop (fresh, fresh_n) (i + 1)
  in
  loop start 1
