module Item = Fixq_xdm.Item
module Atom = Fixq_xdm.Atom
module Node = Fixq_xdm.Node
module Axis = Fixq_xdm.Axis
module Doc_registry = Fixq_xdm.Doc_registry
module Smap = Map.Make (String)
open Ast

type strategy = Naive | Delta | Auto

exception Error of string

let err fmt = Format.kasprintf (fun s -> raise (Error s)) fmt

module Semiring = Fixq_semiring.Semiring
module Kernel = Fixq_semiring.Kernel

type ifp_site = {
  ifp_var : string;
  ifp_seed : Item.seq;
  ifp_body : Ast.expr;
  ifp_accum : Ast.accum option;
  ifp_bindings : (string * Item.seq) list;
  ifp_context : Item.t option;
}

type t = {
  functions : (string, fundef) Hashtbl.t;
  registry : Doc_registry.t;
  stats : Stats.t;
  mutable strategy : strategy;
  max_iterations : int;
  max_call_depth : int;
  mutable globals : Item.seq Smap.t;
  mutable last_ifp_used_delta : bool option;
  mutable last_annotations :
    (Semiring.kind * (Node.t * Semiring.ann) list) option;
      (** annotated result of the most recent [accumulate by] fixpoint *)
  mutable ifp_handler : (ifp_site -> Item.seq option) option;
  stratified : bool;
  domains : int option;  (** Some d: run Delta rounds on d domains *)
  chunk_threshold : int;
}

type env = {
  vars : Item.seq Smap.t;
  ctx : (Item.t * int * int) option;  (** item, position, size *)
  depth : int;
}

let create ?(registry = Doc_registry.default) ?(strategy = Auto)
    ?(max_iterations = 1_000_000) ?(max_call_depth = 100_000)
    ?(stratified = false) ?domains ?(chunk_threshold = 64) () =
  { functions = Hashtbl.create 16; registry; stats = Stats.create ();
    strategy; max_iterations; max_call_depth; globals = Smap.empty;
    last_ifp_used_delta = None; last_annotations = None; ifp_handler = None;
    stratified; domains; chunk_threshold }

let set_ifp_handler t h = t.ifp_handler <- h

let stats t = t.stats
let strategy t = t.strategy
let set_strategy t s = t.strategy <- s
let registry t = t.registry
let functions t = t.functions
let last_ifp_used_delta t = t.last_ifp_used_delta
let last_annotations t = t.last_annotations

let builtin_ctx t env =
  let (context_item, context_pos, context_size) =
    match env.ctx with
    | None -> (None, 0, 0)
    | Some (it, pos, size) -> (Some it, pos, size)
  in
  { Builtins.context_item; context_pos; context_size;
    registry = t.registry }

let lookup_var env v =
  match Smap.find_opt v env.vars with
  | Some s -> s
  | None -> err "undefined variable $%s" v

(* ------------------------------------------------------------------ *)
(* Typeswitch matching                                                 *)
(* ------------------------------------------------------------------ *)

let item_matches ty (it : Item.t) =
  match (ty, it) with
  | (It_item, _) -> true
  | (It_node, Item.N _) -> true
  | (It_node, Item.A _) -> false
  | (It_element pat, Item.N n) ->
    n.Node.kind = Node.Element
    && (match pat with None -> true | Some p -> p = Node.name n)
  | (It_element _, Item.A _) -> false
  | (It_attribute pat, Item.N n) ->
    n.Node.kind = Node.Attribute
    && (match pat with None -> true | Some p -> p = Node.name n)
  | (It_attribute _, Item.A _) -> false
  | (It_text, Item.N n) -> n.Node.kind = Node.Text
  | (It_text, Item.A _) -> false
  | (It_comment, Item.N n) -> n.Node.kind = Node.Comment
  | (It_comment, Item.A _) -> false
  | (It_document, Item.N n) -> n.Node.kind = Node.Document
  | (It_document, Item.A _) -> false
  | (It_atomic "integer", Item.A (Atom.Int _)) -> true
  | (It_atomic "double", Item.A (Atom.Dbl _)) -> true
  | (It_atomic "string", Item.A (Atom.Str _)) -> true
  | (It_atomic "boolean", Item.A (Atom.Bool _)) -> true
  | (It_atomic ("decimal" | "numeric"), Item.A (Atom.Int _ | Atom.Dbl _)) ->
    true
  | (It_atomic ("anyAtomicType" | "untypedAtomic"), Item.A _) -> true
  | (It_atomic _, _) -> false

let seq_matches ty (s : Item.seq) =
  match ty with
  | Empty_sequence -> s = []
  | Typed (it, occ) -> (
    let all = List.for_all (item_matches it) s in
    match occ with
    | One -> List.length s = 1 && all
    | Opt -> List.length s <= 1 && all
    | Star -> all
    | Plus -> s <> [] && all)

(* ------------------------------------------------------------------ *)
(* Arithmetic and comparisons                                          *)
(* ------------------------------------------------------------------ *)

let arith_op op a b =
  match op with
  | Add | Sub | Mul -> (
    let f = match op with Add -> ( +. ) | Sub -> ( -. ) | _ -> ( *. ) in
    let fi = match op with Add -> ( + ) | Sub -> ( - ) | _ -> ( * ) in
    match (a, b) with
    | (Atom.Int x, Atom.Int y) -> Atom.Int (fi x y)
    | _ -> Atom.Dbl (f (Atom.to_number a) (Atom.to_number b)))
  | Div ->
    let y = Atom.to_number b in
    if y = 0.0 then err "division by zero"
    else Atom.Dbl (Atom.to_number a /. y)
  | Idiv ->
    let y = Atom.to_int b in
    if y = 0 then err "integer division by zero" else Atom.Int (Atom.to_int a / y)
  | Mod -> (
    match (a, b) with
    | (Atom.Int x, Atom.Int y) ->
      if y = 0 then err "modulus by zero" else Atom.Int (x mod y)
    | _ ->
      let y = Atom.to_number b in
      if y = 0.0 then err "modulus by zero"
      else Atom.Dbl (Float.rem (Atom.to_number a) y))

(* XQuery cast: atomic value conversion by target type name. *)
let cast_atom ty (a : Atom.t) =
  match ty with
  | "integer" | "int" | "long" -> Atom.Int (Atom.to_int a)
  | "double" | "decimal" | "float" -> Atom.Dbl (Atom.to_number a)
  | "string" | "untypedAtomic" | "anyURI" -> Atom.Str (Atom.to_string a)
  | "boolean" -> (
    match a with
    | Atom.Bool _ -> a
    | Atom.Str "true" | Atom.Str "1" -> Atom.Bool true
    | Atom.Str "false" | Atom.Str "0" -> Atom.Bool false
    | Atom.Int 0 -> Atom.Bool false
    | Atom.Int _ -> Atom.Bool true
    | Atom.Dbl f -> Atom.Bool (f <> 0.0 && not (Float.is_nan f))
    | Atom.Str s -> Atom.type_error "cannot cast %S to xs:boolean" s)
  | other -> Atom.type_error "unsupported cast target xs:%s" other

let cmp_result c ord =
  match c with
  | Eq -> ord = 0
  | Ne -> ord <> 0
  | Lt -> ord < 0
  | Le -> ord <= 0
  | Gt -> ord > 0
  | Ge -> ord >= 0

(* ------------------------------------------------------------------ *)
(* Node construction                                                   *)
(* ------------------------------------------------------------------ *)

(* Content sequence → (attributes, children): runs of adjacent atoms
   merge into one space-separated text node; document nodes contribute
   their children; attribute nodes become element attributes (they must
   precede other content, which we enforce loosely by collecting them
   wherever they appear). *)
let assemble_content (content : Item.seq) =
  let attrs = ref [] in
  let kids = ref [] in
  let pending = ref [] in
  let flush_atoms () =
    if !pending <> [] then begin
      let s = String.concat " " (List.rev_map Atom.to_string !pending) in
      kids := Node.text s :: !kids;
      pending := []
    end
  in
  List.iter
    (fun it ->
      match it with
      | Item.A a -> pending := a :: !pending
      | Item.N n -> (
        flush_atoms ();
        match n.Node.kind with
        | Node.Attribute -> attrs := (Node.name n, n.Node.content) :: !attrs
        | Node.Document -> List.iter (fun c -> kids := c :: !kids) (Node.children n)
        | _ -> kids := n :: !kids))
    content;
  flush_atoms ();
  (List.rev !attrs, List.rev !kids)

(* ------------------------------------------------------------------ *)
(* The evaluator                                                       *)
(* ------------------------------------------------------------------ *)

let rec eval t env (e : expr) : Item.seq =
  match e with
  | Literal a -> [ Item.A a ]
  | Empty_seq -> []
  | Var v -> lookup_var env v
  | Context_item -> (
    match env.ctx with
    | Some (it, _, _) -> [ it ]
    | None -> err "no context item for '.'")
  | Root -> (
    match env.ctx with
    | Some (Item.N n, _, _) -> [ Item.N (Node.root n) ]
    | Some (Item.A _, _, _) -> err "the context item for '/' is not a node"
    | None -> err "no context item for '/'")
  (* Binary operands evaluate left to right explicitly: OCaml's
     right-to-left argument order would make constructors in the right
     operand allocate node ids first, putting separately constructed
     trees in surprising document order. *)
  | Sequence (a, b) ->
    let va = eval t env a in
    va @ eval t env b
  | Union (a, b) ->
    let va = eval t env a in
    Item.union va (eval t env b)
  | Except (a, b) ->
    let va = eval t env a in
    Item.except va (eval t env b)
  | Intersect (a, b) ->
    let va = eval t env a in
    Item.intersect va (eval t env b)
  | Path (a, b) -> eval_path t env a b
  | Axis_step { axis; test } -> (
    match env.ctx with
    | Some (Item.N n, _, _) ->
      List.map Item.node (Axis.step axis test n)
    | Some (Item.A _, _, _) -> err "axis step on a non-node context item"
    | None -> err "no context item for an axis step")
  | Filter (a, p) -> eval_filter t env a p
  | For { var; pos; source; body } ->
    let src = eval t env source in
    List.concat
      (List.mapi
         (fun i it ->
           let vars = Smap.add var [ it ] env.vars in
           let vars =
             match pos with
             | None -> vars
             | Some p -> Smap.add p [ Item.A (Atom.Int (i + 1)) ] vars
           in
           eval t { env with vars } body)
         src)
  | Sort { var; source; key; descending; body } ->
    let src = eval t env source in
    let keyed =
      List.map
        (fun it ->
          let kv =
            Item.atomize
              (eval t { env with vars = Smap.add var [ it ] env.vars } key)
          in
          let k =
            match kv with
            | [] -> None (* empty keys sort first ("empty least") *)
            | [ a ] -> Some a
            | _ -> err "order by: the key is not a singleton"
          in
          (k, it))
        src
    in
    let cmp (a, _) (b, _) =
      let base =
        match (a, b) with
        | (None, None) -> 0
        | (None, Some _) -> -1
        | (Some _, None) -> 1
        | (Some x, Some y) -> Atom.compare_value x y
      in
      if descending then -base else base
    in
    let sorted = List.stable_sort cmp keyed in
    List.concat_map
      (fun (_, it) ->
        eval t { env with vars = Smap.add var [ it ] env.vars } body)
      sorted
  | Let { var; value; body } ->
    let v = eval t env value in
    eval t { env with vars = Smap.add var v env.vars } body
  | If (c, th, el) ->
    if Item.effective_boolean (eval t env c) then eval t env th
    else eval t env el
  | Quantified (q, v, source, pred) ->
    let src = eval t env source in
    let test it =
      Item.effective_boolean
        (eval t { env with vars = Smap.add v [ it ] env.vars } pred)
    in
    let r =
      match q with
      | Some_ -> List.exists test src
      | Every -> List.for_all test src
    in
    [ Item.A (Atom.Bool r) ]
  | Arith (op, a, b) -> (
    let va = Item.atomize (eval t env a) in
    let vb = Item.atomize (eval t env b) in
    match (va, vb) with
    | ([], _) | (_, []) -> []
    | ([ x ], [ y ]) -> [ Item.A (arith_op op x y) ]
    | _ -> err "arithmetic over non-singleton sequences")
  | Neg a -> (
    match Item.atomize (eval t env a) with
    | [] -> []
    | [ Atom.Int i ] -> [ Item.A (Atom.Int (-i)) ]
    | [ x ] -> [ Item.A (Atom.Dbl (-.Atom.to_number x)) ]
    | _ -> err "unary minus over a non-singleton sequence")
  | Gen_cmp (c, a, b) ->
    let va = Item.atomize (eval t env a) in
    let vb = Item.atomize (eval t env b) in
    let holds =
      List.exists
        (fun x ->
          List.exists (fun y -> cmp_result c (Atom.compare_value x y)) vb)
        va
    in
    [ Item.A (Atom.Bool holds) ]
  | Val_cmp (c, a, b) -> (
    let va = Item.atomize (eval t env a) in
    let vb = Item.atomize (eval t env b) in
    match (va, vb) with
    | ([], _) | (_, []) -> []
    | ([ x ], [ y ]) -> [ Item.A (Atom.Bool (cmp_result c (Atom.compare_value x y))) ]
    | _ -> err "value comparison over non-singleton sequences")
  | Node_is (a, b) -> eval_node_cmp t env a b (fun x y -> Node.equal x y)
  | Node_before (a, b) ->
    eval_node_cmp t env a b (fun x y -> Node.compare_doc_order x y < 0)
  | Node_after (a, b) ->
    eval_node_cmp t env a b (fun x y -> Node.compare_doc_order x y > 0)
  | And (a, b) ->
    [ Item.A
        (Atom.Bool
           (Item.effective_boolean (eval t env a)
           && Item.effective_boolean (eval t env b))) ]
  | Or (a, b) ->
    [ Item.A
        (Atom.Bool
           (Item.effective_boolean (eval t env a)
           || Item.effective_boolean (eval t env b))) ]
  | Range (a, b) -> (
    let va = Item.atomize (eval t env a) in
    let vb = Item.atomize (eval t env b) in
    match (va, vb) with
    | ([], _) | (_, []) -> []
    | ([ x ], [ y ]) ->
      let lo = Atom.to_int x and hi = Atom.to_int y in
      let rec build i acc = if i < lo then acc else build (i - 1) (Item.A (Atom.Int i) :: acc) in
      build hi []
    | _ -> err "'to' over non-singleton sequences")
  | Call (f, args) -> eval_call t env f args
  | Elem_constr (name, attr_specs, content) ->
    let attr_of_spec (an, pieces) =
      let v =
        String.concat ""
          (List.map
             (function
               | A_lit s -> s
               | A_expr e ->
                 String.concat " "
                   (List.map Atom.to_string (Item.atomize (eval t env e))))
             pieces)
      in
      (an, v)
    in
    let direct_attrs = List.map attr_of_spec attr_specs in
    let content_items = List.concat_map (eval t env) content in
    let (content_attrs, kids) = assemble_content content_items in
    [ Item.N (Node.element name ~attrs:(direct_attrs @ content_attrs) kids) ]
  | Comp_elem (name, body) ->
    let (content_attrs, kids) = assemble_content (eval t env body) in
    [ Item.N (Node.element name ~attrs:content_attrs kids) ]
  | Text_constr body -> (
    match Item.atomize (eval t env body) with
    | [] -> []
    | atoms ->
      let s = String.concat " " (List.map Atom.to_string atoms) in
      [ Item.N (Node.text s) ])
  | Attr_constr (name, body) ->
    let s =
      String.concat " "
        (List.map Atom.to_string (Item.atomize (eval t env body)))
    in
    [ Item.N (Node.attribute name s) ]
  | Comment_constr body ->
    let s =
      String.concat " "
        (List.map Atom.to_string (Item.atomize (eval t env body)))
    in
    [ Item.N (Node.comment s) ]
  | Doc_constr body ->
    let (attrs, kids) = assemble_content (eval t env body) in
    if attrs <> [] then err "document constructor content has attributes";
    [ Item.N (Node.document kids) ]
  | Instance_of (a, ty) ->
    [ Item.A (Atom.Bool (seq_matches ty (eval t env a))) ]
  | Cast (a, ty, optional) -> (
    match Item.atomize (eval t env a) with
    | [] ->
      if optional then []
      else err "cast as xs:%s: empty sequence (no '?')" ty
    | [ atom ] -> [ Item.A (cast_atom ty atom) ]
    | _ -> err "cast as xs:%s: more than one item" ty)
  | Castable (a, ty, optional) -> (
    match Item.atomize (eval t env a) with
    | [] -> [ Item.A (Atom.Bool optional) ]
    | [ atom ] ->
      [ Item.A
          (Atom.Bool
             (match cast_atom ty atom with
             | (_ : Atom.t) -> true
             | exception _ -> false)) ]
    | _ -> [ Item.A (Atom.Bool false) ])
  | Typeswitch (scrut, cases, dvar, dbody) ->
    let v = eval t env scrut in
    let rec try_cases = function
      | [] ->
        let vars =
          match dvar with
          | None -> env.vars
          | Some x -> Smap.add x v env.vars
        in
        eval t { env with vars } dbody
      | (ty, cvar, body) :: rest ->
        if seq_matches ty v then
          let vars =
            match cvar with
            | None -> env.vars
            | Some x -> Smap.add x v env.vars
          in
          eval t { env with vars } body
        else try_cases rest
    in
    try_cases cases
  | Ifp { var; seed; body; accum } -> eval_ifp t env var seed body accum

and eval_node_cmp t env a b op =
  let na = eval t env a and nb = eval t env b in
  match (na, nb) with
  | ([], _) | (_, []) -> []
  | ([ Item.N x ], [ Item.N y ]) -> [ Item.A (Atom.Bool (op x y)) ]
  | _ -> err "node comparison requires single nodes"

and eval_path t env a b =
  (* Collapse the // desugaring [e/descendant-or-self::node()/child::T]
     to [e/descendant::T] — same node set for any test T, and the form
     the per-document name index can answer. Through a filter the
     rewrite changes the predicate's context positions, so it is gated
     on the predicate being surely boolean and position()/last()-free. *)
  match (a, b) with
  | ( Path (x, Axis_step { axis = Axis.Descendant_or_self; test = Axis.Kind_node }),
      Axis_step { axis = Axis.Child; test } ) ->
    eval_path t env x (Axis_step { axis = Axis.Descendant; test })
  | ( Path (x, Axis_step { axis = Axis.Descendant_or_self; test = Axis.Kind_node }),
      Filter (Axis_step { axis = Axis.Child; test }, pred) )
    when Ast.surely_boolean pred && not (Ast.calls_position_or_last pred) ->
    eval_path t env x (Filter (Axis_step { axis = Axis.Descendant; test }, pred))
  | _ -> eval_path_steps t env a b

and eval_path_steps t env a b =
  let left = eval t env a in
  let nodes = Item.as_node_seq "path" left in
  let nodes = Item.sort_uniq_nodes nodes in
  let size = List.length nodes in
  let results =
    List.concat
      (List.mapi
         (fun i n ->
           let env' = { env with ctx = Some (Item.N n, i + 1, size) } in
           eval t env' b)
         nodes)
  in
  let all_nodes = List.for_all (function Item.N _ -> true | _ -> false) results in
  let all_atoms = List.for_all (function Item.A _ -> true | _ -> false) results in
  if all_nodes then Item.ddo results
  else if all_atoms then results
  else err "a path step mixes nodes and atomic values"

and eval_filter t env a p =
  let src = eval t env a in
  let size = List.length src in
  let keep i it =
    let env' = { env with ctx = Some (it, i + 1, size) } in
    let pv = eval t env' p in
    match pv with
    | [ Item.A ((Atom.Int _ | Atom.Dbl _) as num) ] ->
      Float.equal (Atom.to_number num) (float_of_int (i + 1))
    | _ -> Item.effective_boolean pv
  in
  List.filteri keep src

and eval_call t env f args =
  let vargs = List.map (eval t env) args in
  match Builtins.call (builtin_ctx t env) f vargs with
  | Some result -> result
  | None -> (
    match Hashtbl.find_opt t.functions f with
    | None -> err "unknown function %s#%d" f (List.length args)
    | Some fd ->
      if List.length fd.params <> List.length vargs then
        err "function %s expects %d arguments, got %d" f
          (List.length fd.params) (List.length vargs);
      if env.depth >= t.max_call_depth then
        err "maximum call depth exceeded in %s" f;
      (* XQuery functions see globals but not the caller's locals or
         context. *)
      let vars =
        List.fold_left2
          (fun m (p, _) v -> Smap.add p v m)
          t.globals fd.params vargs
      in
      eval t { vars; ctx = None; depth = env.depth + 1 } fd.body)

and eval_ifp t env var seed body accum =
  let seed_v = eval t env seed in
  let external_result =
    match t.ifp_handler with
    | None -> None
    | Some handler ->
      (* The whole scope (locals and globals), not just fv(body):
         compiling the body may inline functions whose own bodies
         reference global variables. *)
      let bindings =
        Smap.fold
          (fun v value acc ->
            if String.equal v var then acc else (v, value) :: acc)
          env.vars []
      in
      let context =
        match env.ctx with Some (it, _, _) -> Some it | None -> None
      in
      handler
        { ifp_var = var; ifp_seed = seed_v; ifp_body = body;
          ifp_accum = accum; ifp_bindings = bindings; ifp_context = context }
  in
  match external_result with
  | Some result -> result
  | None -> (
    let body_fn input =
      eval t { env with vars = Smap.add var input env.vars } body
    in
    let use_delta =
      match t.strategy with
      | Naive -> false
      | Delta -> true
      | Auto ->
        Distributivity.check ~functions:t.functions ~stratified:t.stratified
          var body
    in
    match accum with
    | Some a -> eval_ifp_semiring t env var seed_v body a ~use_delta ~body_fn
    | None -> (
      t.last_ifp_used_delta <- Some use_delta;
      match (use_delta, t.domains) with
      | (true, Some d) ->
        (* Parallel Delta is only sound for constructor-free distributive
           bodies — exactly the bodies Delta itself is chosen for. *)
        Fixpoint.delta_parallel ~max_iterations:t.max_iterations ~domains:d
          ~chunk_threshold:t.chunk_threshold ~stats:t.stats ~body:body_fn
          ~seed:seed_v ()
      | (true, None) ->
        Fixpoint.delta ~max_iterations:t.max_iterations ~stats:t.stats
          ~body:body_fn ~seed:seed_v ()
      | (false, _) ->
        Fixpoint.naive ~max_iterations:t.max_iterations ~stats:t.stats
          ~body:body_fn ~seed:seed_v ()))

(* [accumulate by …]: route the fixpoint through the semiring kernel.
   [bool] runs the batch kernel with the same naive/delta choice as the
   legacy loop (byte-identical results and round statistics); the other
   kinds feed the body one frontier node at a time so each produced
   node's annotation extends its source's via ⊗, re-feeding only strict
   improvements. *)
and eval_ifp_semiring t env var seed_v body a ~use_delta ~body_fn =
  let kind = a.kind in
  let record ~fed ~produced ~result_size =
    Stats.record_iteration t.stats ~fed ~produced ~result_size
  in
  Stats.start_run t.stats;
  let acc =
    match
      Kernel.run ~max_iterations:t.max_iterations ~kind ~use_delta ~record
        ~body:body_fn
        ~step:(fun n ->
          eval t { env with vars = Smap.add var [ Item.N n ] env.vars } body)
        ~weight:(weight_fn t env a) ~seed:seed_v ()
    with
    | acc -> acc
    | exception Kernel.Diverged i -> raise (Fixpoint.Diverged i)
  in
  t.last_ifp_used_delta <- Some (kind <> Semiring.Bool || use_delta);
  t.last_annotations <- Some (kind, Kernel.Annot_acc.entries acc);
  Kernel.Annot_acc.to_seq acc

(* The weight expression of [min]/[max] is evaluated once per produced
   node, with that node as the context item (the recursion variable is
   not in scope). It must yield a single number. *)
and weight_fn t env (a : Ast.accum) =
  match a.weight with
  | None -> None
  | Some we ->
    Some
      (fun n ->
        let env' = { env with ctx = Some (Item.N n, 1, 1) } in
        match Item.atomize (eval t env' we) with
        | [ atom ] -> Atom.to_number atom
        | [] -> err "accumulate by: the weight expression yielded ()"
        | _ -> err "accumulate by: the weight expression is not a singleton")

(* ------------------------------------------------------------------ *)
(* Program interface                                                   *)
(* ------------------------------------------------------------------ *)

let initial_env t ?(vars = []) ?context () =
  let vmap =
    List.fold_left (fun m (k, v) -> Smap.add k v m) t.globals vars
  in
  let ctx = Option.map (fun it -> (it, 1, 1)) context in
  { vars = vmap; ctx; depth = 0 }

let load_prolog t (p : program) =
  List.iter (fun fd -> Hashtbl.replace t.functions fd.fname fd) p.functions;
  List.iter
    (fun (v, e) ->
      let value = eval t (initial_env t ()) e in
      t.globals <- Smap.add v value t.globals)
    p.variables

let run_program t (p : program) =
  load_prolog t p;
  eval t (initial_env t ()) p.main

let eval_expr t ?vars ?context e = eval t (initial_env t ?vars ?context ()) e

let run_string t src = run_program t (Parser.parse_program src)
