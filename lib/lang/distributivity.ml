open Ast

type verdict = Safe | Unsafe of string

(* Built-ins that distribute over their argument under set-equality:
   applying them to singletons and uniting gives the same node/value
   set. The mask says which arguments may carry the recursion
   variable. *)
let builtin_annotation = function
  | "id" -> Some [| true; false |]
  | "idref" -> Some [| true; false |]
  | "data" -> Some [| true |]
  | "distinct-values" -> Some [| true |]
  | "reverse" -> Some [| true |]
  | "unordered" -> Some [| true |]
  | "root" -> Some [| true |]
  | _ -> None

(* position()/last() anywhere in an expression make its value depend on
   how the context sequence was divided. *)
let rec mentions_position = function
  | Call (("position" | "last"), _) -> true
  | Literal _ | Empty_seq | Var _ | Context_item | Root | Axis_step _ -> false
  | Sequence (a, b) | Union (a, b) | Except (a, b) | Intersect (a, b)
  | Path (a, b) | Filter (a, b) | Arith (_, a, b) | Gen_cmp (_, a, b)
  | Val_cmp (_, a, b) | Node_is (a, b) | Node_before (a, b)
  | Node_after (a, b) | And (a, b) | Or (a, b) | Range (a, b) ->
    mentions_position a || mentions_position b
  | Neg a | Text_constr a | Attr_constr (_, a) | Comment_constr a
  | Doc_constr a | Comp_elem (_, a) | Instance_of (a, _)
  | Cast (a, _, _) | Castable (a, _, _) ->
    mentions_position a
  | For { source; body; _ } -> mentions_position source || mentions_position body
  | Sort { source; key; body; _ } ->
    mentions_position source || mentions_position key
    || mentions_position body
  | Let { value; body; _ } -> mentions_position value || mentions_position body
  | If (c, t, e) ->
    mentions_position c || mentions_position t || mentions_position e
  | Quantified (_, _, s, p) -> mentions_position s || mentions_position p
  | Call (_, args) -> List.exists mentions_position args
  | Elem_constr (_, attrs, content) ->
    List.exists
      (fun (_, pieces) ->
        List.exists
          (function A_lit _ -> false | A_expr e -> mentions_position e)
          pieces)
      attrs
    || List.exists mentions_position content
  | Typeswitch (s, cases, _, d) ->
    mentions_position s
    || List.exists (fun (_, _, b) -> mentions_position b) cases
    || mentions_position d
  | Ifp { seed; body; _ } -> mentions_position seed || mentions_position body

(* A predicate that surely evaluates to a non-numeric value cannot act
   as a positional filter. Conservative. *)
let rec surely_non_numeric = function
  | Gen_cmp _ | Val_cmp _ | And _ | Or _ | Quantified _ | Node_is _
  | Node_before _ | Node_after _ | Instance_of _ | Castable _ ->
    true
  | Literal (Fixq_xdm.Atom.Str _) | Literal (Fixq_xdm.Atom.Bool _) -> true
  | Path _ | Axis_step _ | Root | Union _ | Except _ | Intersect _ -> true
  | Filter (e, _) -> surely_non_numeric e
  | Call
      ( ( "empty" | "exists" | "not" | "boolean" | "contains"
        | "starts-with" | "ends-with" | "true" | "false" | "deep-equal"
        | "lang" ),
        _ ) ->
    true
  | If (_, t, e) -> surely_non_numeric t && surely_non_numeric e
  | Let { body; _ } -> surely_non_numeric body
  | _ -> false

type blame = { rule : string; reason : string; blamed : Ast.expr }

(* The outermost constructor inside an expression — the precise node
   to blame when the base rule rejects a constructor-carrying
   subexpression. *)
let rec find_constructor e =
  let first xs = List.find_map find_constructor xs in
  match e with
  | Elem_constr _ | Comp_elem _ | Text_constr _ | Attr_constr _
  | Comment_constr _ | Doc_constr _ ->
    Some e
  | Literal _ | Empty_seq | Var _ | Context_item | Root | Axis_step _ -> None
  | Sequence (a, b) | Union (a, b) | Except (a, b) | Intersect (a, b)
  | Path (a, b) | Filter (a, b) | Arith (_, a, b) | Gen_cmp (_, a, b)
  | Val_cmp (_, a, b) | Node_is (a, b) | Node_before (a, b)
  | Node_after (a, b) | And (a, b) | Or (a, b) | Range (a, b) ->
    first [ a; b ]
  | Neg a | Instance_of (a, _) | Cast (a, _, _) | Castable (a, _, _) ->
    find_constructor a
  | For { source; body; _ } -> first [ source; body ]
  | Sort { source; key; body; _ } -> first [ source; key; body ]
  | Let { value; body; _ } -> first [ value; body ]
  | If (c, t, e') -> first [ c; t; e' ]
  | Quantified (_, _, s, p) -> first [ s; p ]
  | Call (_, args) -> first args
  | Typeswitch (s, cases, _, d) ->
    first (s :: List.map (fun (_, _, b) -> b) cases @ [ d ])
  | Ifp { seed; body; _ } -> first [ seed; body ]

let blame_of ?(functions = Hashtbl.create 0) ?(stratified = false) x expr =
  (* [in_progress] guards rule FUNCALL against recursive functions:
     encountering a function whose distributivity is already being
     assessed rejects conservatively. *)
  let in_progress : (string, unit) Hashtbl.t = Hashtbl.create 4 in
  let unsafe rule blamed fmt =
    Format.kasprintf (fun reason -> Some { rule; reason; blamed }) fmt
  in
  let constructor_in e = Option.value ~default:e (find_constructor e) in
  (* Returns None when safe, Some blame when the rules fail. *)
  let rec ds x e =
    if not (is_free x e) then
      if has_constructor e then
        unsafe "BASE" (constructor_in e)
          "a node constructor occurs (fresh node identities)"
      else None
    else
      match e with
      | Var _ -> None (* rule VAR *)
      | Literal _ | Empty_seq -> None (* rule CONST *)
      | Sequence (a, b) | Union (a, b) -> (
        (* rule CONCAT, ⊕ ∈ {`,`, union} *)
        match ds x a with Some r -> Some r | None -> ds x b)
      | If (c, t, e') ->
        (* rule IF *)
        if is_free x c then
          unsafe "IF" c "rule IF: $%s occurs free in the condition" x
        else (
          match ds x t with Some r -> Some r | None -> ds x e')
      | For { var = _; pos; source; body } ->
        if not (is_free x source) then
          (* rule FOR1: $x only in the body *)
          ds x body
        else if is_free x body then
          unsafe "FOR1/FOR2" e
            "rule FOR1/FOR2: $%s occurs free in both the range and the \
             body of a for (linearity violation)"
            x
        else if pos <> None then
          unsafe "FOR2" e
            "rule FOR2: a positional variable exposes the division of \
             the input"
        else ds x source (* rule FOR2 *)
      | Let { var; value; body } ->
        if not (is_free x value) then
          (* rule LET1 *)
          ds x body
        else if is_free x body then
          unsafe "LET1/LET2" e
            "rule LET1/LET2: $%s occurs free in both the value and the \
             body of a let"
            x
        else (
          (* rule LET2: ds_x(e1) ∧ ds_v(e2) *)
          match ds x value with
          | Some r -> Some r
          | None -> ds var body)
      | Typeswitch (scrut, cases, _, dbody) ->
        (* rule TYPESW *)
        if is_free x scrut then
          unsafe "TYPESW" scrut
            "rule TYPESW: $%s occurs free in the scrutinee" x
        else
          List.fold_left
            (fun acc (_, _, b) ->
              match acc with Some r -> Some r | None -> ds x b)
            None cases
          |> fun acc ->
          (match acc with Some r -> Some r | None -> ds x dbody)
      | Path (a, b) ->
        (* rules STEP1 / STEP2 *)
        if not (is_free x a) then ds x b
        else if is_free x b then
          unsafe "STEP1/STEP2" e
            "rule STEP1/STEP2: $%s occurs free on both sides of '/'" x
        else ds x a
      | Filter (a, p) ->
        (* FILTER extension (sound, beyond Figure 5): itemwise,
           non-positional predicates distribute. *)
        if is_free x p then
          unsafe "FILTER" p "filter: $%s occurs free in a predicate" x
        else if mentions_position p then
          unsafe "FILTER" p "filter: the predicate uses position()/last()"
        else if not (surely_non_numeric p) then
          unsafe "FILTER" p "filter: the predicate may be positional (numeric)"
        else if has_constructor p then
          unsafe "FILTER" (constructor_in p)
            "filter: the predicate contains a node constructor"
        else ds x a
      | Call (f, args) -> (
        (* rule FUNCALL: user functions by recursion into the body;
           built-ins by annotation. *)
        match Hashtbl.find_opt functions f with
        | Some fd ->
          if Hashtbl.mem in_progress f then
            unsafe "FUNCALL" e "rule FUNCALL: %s is recursive" f
          else begin
            Hashtbl.replace in_progress f ();
            let result =
              if List.length fd.params <> List.length args then
                unsafe "FUNCALL" e "rule FUNCALL: wrong arity for %s" f
              else
                List.fold_left2
                  (fun acc (param, _) arg ->
                    match acc with
                    | Some r -> Some r
                    | None ->
                      if not (is_free x arg) then
                        if has_constructor arg then
                          unsafe "FUNCALL" (constructor_in arg)
                            "rule FUNCALL: an argument contains a node \
                             constructor"
                        else None
                      else (
                        match ds x arg with
                        | Some r -> Some r
                        | None -> ds param fd.body))
                  None fd.params args
            in
            Hashtbl.remove in_progress f;
            result
          end
        | None -> (
          match builtin_annotation f with
          | Some mask ->
            let check_arg i arg =
              let allowed = i < Array.length mask && mask.(i) in
              if not (is_free x arg) then
                if has_constructor arg then
                  unsafe "FUNCALL" (constructor_in arg)
                    "an argument of %s contains a node constructor" f
                else None
              else if allowed then ds x arg
              else
                unsafe "FUNCALL" e
                  "built-in %s is not distributive in argument %d" f (i + 1)
            in
            List.fold_left
              (fun (i, acc) arg ->
                match acc with
                | Some r -> (i + 1, Some r)
                | None -> (i + 1, check_arg i arg))
              (0, None) args
            |> snd
          | None ->
            unsafe "FUNCALL" e
              "built-in %s must see its whole input (not distributive)" f))
      | Axis_step _ | Context_item | Root -> None
      | Except (a, b) when stratified && not (is_free x b) ->
        (* Section 6: x \ R with R fixed is distributive. The fixed side
           must also be constructor-free (base rule). *)
        if has_constructor b then
          unsafe "BASE" (constructor_in b)
            "a node constructor occurs in the fixed side of except"
        else ds x a
      | Except _ | Intersect _ ->
        unsafe "EXCEPT/INTERSECT" e
          "'except'/'intersect' with $%s free must see both sides" x
      | Arith _ | Neg _ | Range _ ->
        unsafe "ARITH" e "arithmetic over $%s atomizes the whole sequence" x
      | Gen_cmp _ | Val_cmp _ | Node_is _ | Node_before _ | Node_after _ ->
        unsafe "CMP" e
          "a comparison inspects the sequence bound to $%s as a whole" x
      | And _ | Or _ ->
        unsafe "BOOL" e "a boolean connective inspects $%s as a whole" x
      | Quantified _ ->
        unsafe "QUANT" e "a quantifier over $%s yields a single boolean" x
      | Sort _ ->
        (* order by is moot under set-equality, but the key may be
           positional and the construct is outside Figure 5 — stay
           conservative *)
        unsafe "ORDER" e "'order by' over $%s is not assessed" x
      | Instance_of _ | Cast _ | Castable _ ->
        unsafe "CAST" e
          "'instance of'/'cast' inspects the sequence bound to $%s as a \
           whole"
          x
      | Elem_constr _ | Comp_elem _ | Text_constr _ | Attr_constr _
      | Comment_constr _ | Doc_constr _ ->
        unsafe "CONSTR" e "a node constructor creates fresh node identities"
      | Ifp _ -> unsafe "NESTED-IFP" e "nested fixed points are not assessed"
  in
  ds x expr

let explain ?functions ?stratified x expr =
  match blame_of ?functions ?stratified x expr with
  | None -> Safe
  | Some b -> Unsafe b.reason

let check ?functions ?stratified x e =
  match explain ?functions ?stratified x e with
  | Safe -> true
  | Unsafe _ -> false
