open Ast

(* Bottom-up expression transformation. *)
let rec map_expr f e =
  let m = map_expr f in
  let e' =
    match e with
    | Literal _ | Empty_seq | Var _ | Context_item | Root | Axis_step _ -> e
    | Sequence (a, b) -> Sequence (m a, m b)
    | Union (a, b) -> Union (m a, m b)
    | Except (a, b) -> Except (m a, m b)
    | Intersect (a, b) -> Intersect (m a, m b)
    | Path (a, b) -> Path (m a, m b)
    | Filter (a, b) -> Filter (m a, m b)
    | For { var; pos; source; body } ->
      For { var; pos; source = m source; body = m body }
    | Sort { var; source; key; descending; body } ->
      Sort { var; source = m source; key = m key; descending; body = m body }
    | Let { var; value; body } -> Let { var; value = m value; body = m body }
    | If (c, t, e') -> If (m c, m t, m e')
    | Quantified (q, v, s, p) -> Quantified (q, v, m s, m p)
    | Arith (op, a, b) -> Arith (op, m a, m b)
    | Neg a -> Neg (m a)
    | Gen_cmp (c, a, b) -> Gen_cmp (c, m a, m b)
    | Val_cmp (c, a, b) -> Val_cmp (c, m a, m b)
    | Node_is (a, b) -> Node_is (m a, m b)
    | Node_before (a, b) -> Node_before (m a, m b)
    | Node_after (a, b) -> Node_after (m a, m b)
    | And (a, b) -> And (m a, m b)
    | Or (a, b) -> Or (m a, m b)
    | Range (a, b) -> Range (m a, m b)
    | Call (f', args) -> Call (f', List.map m args)
    | Elem_constr (n, attrs, content) ->
      let attrs =
        List.map
          (fun (an, pieces) ->
            ( an,
              List.map
                (function A_lit l -> A_lit l | A_expr e -> A_expr (m e))
                pieces ))
          attrs
      in
      Elem_constr (n, attrs, List.map m content)
    | Comp_elem (n, a) -> Comp_elem (n, m a)
    | Instance_of (a, ty) -> Instance_of (m a, ty)
    | Cast (a, ty, opt) -> Cast (m a, ty, opt)
    | Castable (a, ty, opt) -> Castable (m a, ty, opt)
    | Text_constr a -> Text_constr (m a)
    | Attr_constr (n, a) -> Attr_constr (n, m a)
    | Comment_constr a -> Comment_constr (m a)
    | Doc_constr a -> Doc_constr (m a)
    | Typeswitch (s, cases, dv, db) ->
      Typeswitch (m s, List.map (fun (ty, v, b) -> (ty, v, m b)) cases, dv, m db)
    | Ifp { var; seed; body; accum } ->
      let accum =
        Option.map
          (fun a -> { a with weight = Option.map m a.weight })
          accum
      in
      Ifp { var; seed = m seed; body = m body; accum }
  in
  f e'

let free_vars_list e =
  Hashtbl.fold (fun v () acc -> v :: acc) (free_vars e) []
  |> List.sort compare

let node_star = Some (Typed (It_node, Star))

(* Shared worker: rewrite every Ifp occurrence into calls to fresh
   template functions built by [make_templates var extras], which
   returns (new fundefs, replacement expression builder taking the seed
   argument list). *)
let desugar_with ~make p =
  let new_funs = ref [] in
  let counter = ref 0 in
  let rewrite_expr e =
    map_expr
      (function
        (* Annotated IFPs have no recursive-function reading in the set
           semantics of the Figure 2/4 templates; they stay in place. *)
        | Ifp { var; seed; body; accum = None } ->
          incr counter;
          let extras =
            List.filter (fun v -> v <> var) (free_vars_list body)
          in
          let (funs, call) = make !counter var extras body in
          new_funs := funs @ !new_funs;
          call seed
        | e -> e)
      e
  in
  let functions =
    List.map (fun fd -> { fd with body = rewrite_expr fd.body }) p.functions
  in
  let variables = List.map (fun (v, e) -> (v, rewrite_expr e)) p.variables in
  let main = rewrite_expr p.main in
  { functions = functions @ List.rev !new_funs; variables; main }

(* Figure 2: the Naïve template.

   declare function rec_k($x, extras)  { e_rec };
   declare function fix_k($x, extras)
   { let $res := rec_k($x, extras)
     return if (empty($res except $x)) then $x
            else fix_k($res union $x, extras) };
   …  fix_k(rec_k(e_seed, extras), extras)  …

   (The termination test follows Definition 2.1 / Figure 3(a): stop
   when the payload contributes no new nodes and return the accumulated
   sequence.) *)
let naive_templates k var extras body =
  let recn = Printf.sprintf "rec_%d" k in
  let fixn = Printf.sprintf "fix_%d" k in
  let params = (var, node_star) :: List.map (fun v -> (v, None)) extras in
  let extra_args = List.map (fun v -> Var v) extras in
  let rec_fun = { fname = recn; params; return_type = node_star; body } in
  let res = fresh_var "res" in
  let fix_body =
    Let
      { var = res;
        value = Call (recn, Var var :: extra_args);
        body =
          If
            ( Call ("empty", [ Except (Var res, Var var) ]),
              Var var,
              Call (fixn, Union (Var res, Var var) :: extra_args) ) }
  in
  let fix_fun =
    { fname = fixn; params; return_type = node_star; body = fix_body }
  in
  let call seed =
    Call (fixn, Call (recn, seed :: extra_args) :: extra_args)
  in
  ([ rec_fun; fix_fun ], call)

(* Figure 4: the Delta template.

   declare function delta_k($x, $res, extras)
   { let $d := rec_k($x, extras) except $res
     return if (empty($d)) then $res
            else delta_k($d, $d union $res, extras) };
   …  let $r0 := rec_k(e_seed, extras)
      return delta_k($r0, $r0, extras)  …

   The initial accumulator is rec(seed) itself (Figure 3(b) sets
   ∆ ← res after the seeding step); calling delta(rec($seed), ()) as
   printed in the paper would drop the first layer from the result. *)
let delta_templates k var extras body =
  let recn = Printf.sprintf "rec_%d" k in
  let deltan = Printf.sprintf "delta_%d" k in
  let rec_params = (var, node_star) :: List.map (fun v -> (v, None)) extras in
  let extra_args = List.map (fun v -> Var v) extras in
  let rec_fun =
    { fname = recn; params = rec_params; return_type = node_star; body }
  in
  let res = fresh_var "res" in
  let d = fresh_var "d" in
  let delta_params =
    (var, node_star) :: (res, node_star)
    :: List.map (fun v -> (v, None)) extras
  in
  let delta_body =
    Let
      { var = d;
        value = Except (Call (recn, Var var :: extra_args), Var res);
        body =
          If
            ( Call ("empty", [ Var d ]),
              Var res,
              Call (deltan, Var d :: Union (Var d, Var res) :: extra_args) )
      }
  in
  let delta_fun =
    { fname = deltan; params = delta_params; return_type = node_star;
      body = delta_body }
  in
  let call seed =
    let r0 = fresh_var "r0" in
    Let
      { var = r0;
        value = Call (recn, seed :: extra_args);
        body = Call (deltan, Var r0 :: Var r0 :: extra_args) }
  in
  ([ rec_fun; delta_fun ], call)

let desugar_naive p = desugar_with ~make:naive_templates p
let desugar_delta p = desugar_with ~make:delta_templates p

let distributivity_hint ~var e =
  let y = fresh_var "y" in
  For { var = y; pos = None; source = Var var; body = subst var (Var y) e }

let hint_program p =
  let rewrite e =
    map_expr
      (function
        | Ifp { var; seed; body; accum } ->
          Ifp { var; seed; body = distributivity_hint ~var body; accum }
        | e -> e)
      e
  in
  { functions =
      List.map (fun fd -> { fd with body = rewrite fd.body }) p.functions;
    variables = List.map (fun (v, e) -> (v, rewrite e)) p.variables;
    main = rewrite p.main }

(* ------------------------------------------------------------------ *)
(* Function inlining                                                   *)
(* ------------------------------------------------------------------ *)

let calls_in e =
  let acc = ref [] in
  ignore
    (map_expr
       (function
         | Call (f, _) as e ->
           acc := f :: !acc;
           e
         | e -> e)
       e);
  !acc

(* Functions reachable from their own body (directly or transitively)
   must not be inlined. *)
let recursive_functions (funs : fundef list) =
  let tbl = Hashtbl.create 16 in
  List.iter (fun fd -> Hashtbl.replace tbl fd.fname (calls_in fd.body)) funs;
  let reaches_self start =
    let visited = Hashtbl.create 8 in
    let rec go f =
      match Hashtbl.find_opt tbl f with
      | None -> false
      | Some callees ->
        List.exists
          (fun c ->
            c = start
            ||
            if Hashtbl.mem visited c then false
            else begin
              Hashtbl.replace visited c ();
              go c
            end)
          callees
    in
    go start
  in
  List.filter (fun fd -> reaches_self fd.fname) funs
  |> List.map (fun fd -> fd.fname)

let inline_functions ?(max_rounds = 5) p =
  let recs = recursive_functions p.functions in
  let by_name = Hashtbl.create 16 in
  List.iter
    (fun fd ->
      if not (List.mem fd.fname recs) then Hashtbl.replace by_name fd.fname fd)
    p.functions;
  let inline_once e =
    map_expr
      (function
        | Call (f, args) as e -> (
          match Hashtbl.find_opt by_name f with
          | Some fd when List.length fd.params = List.length args ->
            (* let $fresh_i := arg_i in body[param_i → $fresh_i] *)
            let bindings =
              List.map2
                (fun (param, _) arg -> (param, fresh_var param, arg))
                fd.params args
            in
            let body =
              List.fold_left
                (fun body (param, fresh, _) -> subst param (Var fresh) body)
                fd.body bindings
            in
            List.fold_right
              (fun (_, fresh, arg) body ->
                Let { var = fresh; value = arg; body })
              bindings body
          | _ -> e)
        | e -> e)
      e
  in
  let rec rounds i e =
    if i >= max_rounds then e
    else
      let e' = inline_once e in
      if equal_expr e e' then e else rounds (i + 1) e'
  in
  { functions =
      List.map
        (fun fd ->
          if List.mem fd.fname recs then
            { fd with body = rounds 0 fd.body }
          else fd)
        p.functions;
    variables = List.map (fun (v, e) -> (v, rounds 0 e)) p.variables;
    main = rounds 0 p.main }
