(** Source-level rewrites around the IFP form.

    The paper points out that [with … seeded by … recurse] is syntactic
    sugar over the recursive user-defined function templates of Figure 2
    ([fix]) and Figure 4 ([delta]); a conventional XQuery processor
    without a fixpoint operator (Saxon, in the paper's experiments) runs
    exactly those templates. {!desugar_naive} and {!desugar_delta}
    perform that instantiation on a whole program. *)

(** Bottom-up expression mapper: rebuild [e] with every subexpression
    (children first) passed through [f]. The workhorse behind the
    desugarings below, exposed for whole-program AST surgery elsewhere
    (e.g. annotating every [Ifp] with an [accumulate by] clause). *)
val map_expr : (Ast.expr -> Ast.expr) -> Ast.expr -> Ast.expr

(** [desugar_naive p] replaces every [Ifp] node in [p] by a call to a
    freshly declared [fix]-style function pair (Figure 2):

    {v
    declare function fix_k($x) { let $res := rec_k($x) return
      if (empty($x except $res)) then $res else fix_k($res union $x) };
    declare function rec_k($x) { e_rec };
    …  fix_k(rec_k(e_seed))  …
    v} *)
val desugar_naive : Ast.program -> Ast.program

(** [desugar_delta p] instantiates the Figure 4 template instead —
    {e only sound when each recursion body is distributive}:

    {v
    declare function delta_k($x, $res) { let $d := rec_k($x) except $res
      return if (empty($d)) then $res
             else delta_k($d, $d union $res) };
    …  delta_k(rec_k(e_seed), rec_k(e_seed'))  …
    v}

    (following the paper's drop-in replacement: line 14 of Figure 2
    becomes [delta(rec($seed), ())], after which the result is united
    with the first layer). *)
val desugar_delta : Ast.program -> Ast.program

(** The "distributivity hint" of Section 3.2: rewrite a recursion body
    [e] into [for $y in $x return e\[$y/$x\]], which the rules of
    Figure 5 always accept when they accepted nothing about [e]. The
    hint preserves semantics exactly when [e] really is distributive
    for [$x] — the caller asserts that. *)
val distributivity_hint : var:string -> Ast.expr -> Ast.expr

(** Apply {!distributivity_hint} to every [Ifp] body in the program. *)
val hint_program : Ast.program -> Ast.program

(** Inline non-recursive user-defined function calls (one pass,
    repeated to a fixpoint up to [max_rounds]); used to compare the
    syntactic and algebraic distributivity checks on the Section 4.1
    example. *)
val inline_functions : ?max_rounds:int -> Ast.program -> Ast.program
