type iteration = { fed : int; produced : int; result_size : int }

type snapshot = { snap_fed : int; snap_calls : int; snap_depth : int }

type t = {
  mutable total_fed : int;
  mutable total_calls : int;
  mutable max_depth : int;
  mutable current_run : iteration list;  (** newest first *)
  mutable iteration_hook : (unit -> unit) option;
}

let create () =
  { total_fed = 0; total_calls = 0; max_depth = 0; current_run = [];
    iteration_hook = None }

let reset t =
  t.total_fed <- 0;
  t.total_calls <- 0;
  t.max_depth <- 0;
  t.current_run <- []

let start_run t = t.current_run <- []

let set_iteration_hook t hook = t.iteration_hook <- hook

let record_iteration t ~fed ~produced ~result_size =
  t.total_fed <- t.total_fed + fed;
  t.total_calls <- t.total_calls + 1;
  t.current_run <- { fed; produced; result_size } :: t.current_run;
  let depth = List.length t.current_run in
  if depth > t.max_depth then t.max_depth <- depth;
  match t.iteration_hook with None -> () | Some hook -> hook ()

let snapshot t =
  { snap_fed = t.total_fed; snap_calls = t.total_calls;
    snap_depth = t.max_depth }

let nodes_fed t = t.total_fed
let depth t = t.max_depth
let payload_calls t = t.total_calls
let last_run t = List.rev t.current_run

let pp ppf t =
  Format.fprintf ppf "fed=%d calls=%d depth=%d" t.total_fed t.total_calls
    t.max_depth
