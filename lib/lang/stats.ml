module Counters = Fixq_xdm.Counters

type iteration = {
  fed : int;
  produced : int;
  result_size : int;
  round_ms : float;
  kernel : Counters.snapshot;
}

type snapshot = { snap_fed : int; snap_calls : int; snap_depth : int }

type t = {
  mutable total_fed : int;
  mutable total_calls : int;
  mutable max_depth : int;
  mutable current_run : iteration list;  (** newest first *)
  mutable run_len : int;  (** [List.length current_run], kept O(1) *)
  mutable iteration_hook : (unit -> unit) option;
  mutable round_started : float;
  mutable round_counters : Counters.snapshot;
  mutable total_ms : float;
}

let now () = Unix.gettimeofday ()

let create () =
  { total_fed = 0; total_calls = 0; max_depth = 0; current_run = [];
    run_len = 0; iteration_hook = None; round_started = now ();
    round_counters = Counters.snapshot (); total_ms = 0.0 }

let reset t =
  t.total_fed <- 0;
  t.total_calls <- 0;
  t.max_depth <- 0;
  t.current_run <- [];
  t.run_len <- 0;
  t.total_ms <- 0.0;
  t.round_started <- now ();
  t.round_counters <- Counters.snapshot ()

let start_run t =
  t.current_run <- [];
  t.run_len <- 0;
  t.round_started <- now ();
  t.round_counters <- Counters.snapshot ()

let set_iteration_hook t hook = t.iteration_hook <- hook

(* Both engines report every fixpoint round here (the µ/µ∆ evaluator
   shares the interpreter's Stats.t), so this is the single place where
   a chaos schedule can fault "mid-round" deterministically: a
   simulated allocation failure, a stall, or a worker crash between
   rounds N and N+1. *)
let chaos_round_point () =
  match Fixq_chaos.check "fixpoint.round" with
  | None | Some (Fixq_chaos.Drop | Fixq_chaos.Truncate) -> ()
  | Some (Fixq_chaos.Delay s) -> Fixq_chaos.sleep s
  | Some Fixq_chaos.Oom -> raise Out_of_memory
  | Some Fixq_chaos.Kill -> Fixq_chaos.kill_self ()

let record_iteration t ~fed ~produced ~result_size =
  chaos_round_point ();
  let stamp = now () in
  let counters = Counters.snapshot () in
  let round_ms = (stamp -. t.round_started) *. 1000.0 in
  let kernel = Counters.diff counters t.round_counters in
  t.round_started <- stamp;
  t.round_counters <- counters;
  t.total_ms <- t.total_ms +. round_ms;
  t.total_fed <- t.total_fed + fed;
  t.total_calls <- t.total_calls + 1;
  t.current_run <- { fed; produced; result_size; round_ms; kernel }
    :: t.current_run;
  t.run_len <- t.run_len + 1;
  if t.run_len > t.max_depth then t.max_depth <- t.run_len;
  match t.iteration_hook with None -> () | Some hook -> hook ()

let snapshot t =
  { snap_fed = t.total_fed; snap_calls = t.total_calls;
    snap_depth = t.max_depth }

let nodes_fed t = t.total_fed
let depth t = t.max_depth
let payload_calls t = t.total_calls
let last_run t = List.rev t.current_run
let total_ms t = t.total_ms

let run_kernel_totals t =
  List.fold_left
    (fun acc it -> Counters.add acc it.kernel)
    Counters.zero t.current_run

let pp ppf t =
  Format.fprintf ppf "fed=%d calls=%d depth=%d" t.total_fed t.total_calls
    t.max_depth
