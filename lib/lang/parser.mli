(** Recursive-descent parser for the [fixq] XQuery subset.

    Grammar highlights (see {!Ast} for the produced tree):
    - full expression language: FLWOR ([for]/[let]/[where]/[return]),
      quantifiers, [if], [typeswitch], general/value/node comparisons,
      arithmetic, ranges, node-set operators, paths with all axes and
      abbreviations ([@], [..], [//]), predicates, direct and computed
      constructors;
    - the paper's inflationary fixed point form
      [with $x seeded by e1 recurse e2];
    - a prolog of [declare function] and [declare variable]
      declarations ([local:] and [fn:] prefixes are normalized away).

    XQuery keywords are not reserved; [for], [union], … still parse as
    element names in path position. *)

exception Error of { line : int; col : int; msg : string }

(** A source-span side-table: AST node (by physical identity — every
    construct allocates a fresh block) → offset of its first token,
    plus declaration sites of functions and global variables. Filled
    by {!parse_program_spans}; diagnostics use it to report
    [line:col]. Constant constructors ([Root], [.], [()]) are
    immediate values shared by all their occurrences and carry no
    span. *)
module Spans : sig
  type t

  val source : t -> string
  val offset : t -> Ast.expr -> int option
  val line_col : t -> Ast.expr -> (int * int) option

  (** Declaration site of a [declare function]. *)
  val fun_line_col : t -> string -> (int * int) option

  (** Declaration site of a [declare variable]. *)
  val global_line_col : t -> string -> (int * int) option
end

(** Parse a complete program: prolog followed by the main expression. *)
val parse_program : string -> Ast.program

(** Like {!parse_program}, additionally recording a source span for
    every binder, call, constructor, operator and IFP node. *)
val parse_program_spans : string -> Ast.program * Spans.t

(** Parse a single expression (no prolog). *)
val parse_expr : string -> Ast.expr

(** Parse a sequence type, e.g. ["node()*"] (used by tests). *)
val parse_seq_type : string -> Ast.seq_type
