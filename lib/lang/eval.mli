(** Tree-walking evaluator for the [fixq] XQuery subset — the
    conventional-processor stand-in (the paper's Saxon experiments
    translate one-to-one to this engine).

    The evaluator owns a function environment, a document registry, a
    {!Stats.t} for fixpoint instrumentation, and an IFP strategy:

    - [Naive]: always run Figure 3(a);
    - [Delta]: always run Figure 3(b) — {e unsound} for
      non-distributive bodies (exposed deliberately, to reproduce
      Example 2.4);
    - [Auto]: run Delta exactly when the syntactic distributivity check
      ({!Distributivity.check}) accepts the body, else fall back to
      Naive — the mode a production processor would ship. *)

type strategy = Naive | Delta | Auto

type t

exception Error of string

val create :
  ?registry:Fixq_xdm.Doc_registry.t ->
  ?strategy:strategy ->
  ?max_iterations:int ->
  ?max_call_depth:int ->
  ?stratified:bool ->
  ?domains:int ->
  ?chunk_threshold:int ->
  unit ->
  t
(** [stratified] extends [Auto]'s distributivity check with the
    Section-6 stratified-difference rule (see
    {!Distributivity.check}). [domains] makes Delta-eligible fixpoints
    run as {!Fixpoint.delta_parallel} on that many OCaml domains
    (rounds smaller than [chunk_threshold], default 64, stay
    sequential); Naive fixpoints are unaffected. *)

val stats : t -> Stats.t
val strategy : t -> strategy
val set_strategy : t -> strategy -> unit
val registry : t -> Fixq_xdm.Doc_registry.t
val functions : t -> (string, Ast.fundef) Hashtbl.t

(** Whether the most recent IFP evaluation used Delta ([None] before any
    IFP ran). *)
val last_ifp_used_delta : t -> bool option

(** Annotated result of the most recent [accumulate by] fixpoint: the
    semiring kind and each accumulated node's final annotation, in
    document order. [None] before any annotated IFP ran. *)
val last_annotations :
  t ->
  (Fixq_semiring.Semiring.kind
  * (Fixq_xdm.Node.t * Fixq_semiring.Semiring.ann) list)
  option

(** Everything an external IFP executor needs about an [Ifp] site: the
    recursion variable, the evaluated seed, the body expression, the
    [accumulate by] clause (if any), the values of the body's other
    free variables, and the context item. *)
type ifp_site = {
  ifp_var : string;
  ifp_seed : Fixq_xdm.Item.seq;
  ifp_body : Ast.expr;
  ifp_accum : Ast.accum option;
  ifp_bindings : (string * Fixq_xdm.Item.seq) list;
  ifp_context : Fixq_xdm.Item.t option;
}

(** Install (or clear) an external IFP executor — the hook the hybrid
    algebraic engine uses to run fixpoints as µ/µ∆ plans. A [None]
    result means "cannot handle this site" and the evaluator falls back
    to its own strategy; exceptions propagate. *)
val set_ifp_handler :
  t -> (ifp_site -> Fixq_xdm.Item.seq option) option -> unit

(** Install the functions and evaluate the global variable declarations
    of a program, then evaluate its main expression. *)
val run_program : t -> Ast.program -> Fixq_xdm.Item.seq

(** Evaluate one expression under optional variable bindings and
    context item. Program functions/globals installed by a previous
    {!run_program} (or {!load_prolog}) remain visible. *)
val eval_expr :
  t ->
  ?vars:(string * Fixq_xdm.Item.seq) list ->
  ?context:Fixq_xdm.Item.t ->
  Ast.expr ->
  Fixq_xdm.Item.seq

(** Install a program's functions and globals without running [main]. *)
val load_prolog : t -> Ast.program -> unit

(** Convenience: parse and run a complete query string. *)
val run_string : t -> string -> Fixq_xdm.Item.seq
