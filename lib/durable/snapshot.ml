type loaded = { meta : string; items : string list }

let file ~dir = Filename.concat dir "snapshot"
let tmp_file ~dir = Filename.concat dir "snapshot.tmp"

let trailer_payload n = Printf.sprintf "FXQSNAP-END %d" n

let render ~meta ~items =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf (Wal.render ~seq:0 meta);
  List.iteri
    (fun i item -> Buffer.add_string buf (Wal.render ~seq:(i + 1) item))
    items;
  Buffer.add_string buf
    (Wal.render ~seq:(List.length items + 1)
       (trailer_payload (List.length items)));
  Buffer.contents buf

let write_bytes fd s =
  let b = Bytes.of_string s in
  let rec go off len =
    if len > 0 then begin
      let n = Unix.write fd b off len in
      go (off + n) (len - n)
    end
  in
  go 0 (Bytes.length b)

(* [Kill] must leave a half-written tmp behind — the realistic crash
   mid-snapshot — so recovery proves it ignores tmp files. *)
let chaos_point ~dir contents =
  match Fixq_chaos.check "store.snapshot" with
  | None -> Ok ()
  | Some (Fixq_chaos.Delay s) ->
    Fixq_chaos.sleep s;
    Ok ()
  | Some Fixq_chaos.Oom -> raise Out_of_memory
  | Some (Fixq_chaos.Drop | Fixq_chaos.Truncate) ->
    (try Sys.remove (tmp_file ~dir) with Sys_error _ -> ());
    Error "chaos: snapshot aborted"
  | Some Fixq_chaos.Kill ->
    (try
       let fd =
         Unix.openfile (tmp_file ~dir)
           [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ]
           0o644
       in
       write_bytes fd (String.sub contents 0 (String.length contents / 2));
       Unix.close fd
     with Unix.Unix_error _ -> ());
    Fixq_chaos.kill_self ()

let write ~dir ~meta ~items =
  let contents = render ~meta ~items in
  match chaos_point ~dir contents with
  | Error _ as e -> e
  | Ok () -> (
    match
      let tmp = tmp_file ~dir in
      let fd =
        Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644
      in
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () ->
          write_bytes fd contents;
          Unix.fsync fd);
      Unix.rename tmp (file ~dir)
    with
    | () -> Ok ()
    | exception Unix.Unix_error (e, _, _) ->
      (try Sys.remove (tmp_file ~dir) with Sys_error _ -> ());
      Error ("snapshot write failed: " ^ Unix.error_message e))

let read ~dir =
  let path = file ~dir in
  if not (Sys.file_exists path) then Ok None
  else begin
    let contents =
      match open_in_bin path with
      | exception Sys_error _ -> ""
      | ic ->
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () ->
            let n = in_channel_length ic in
            try really_input_string ic n with End_of_file -> "")
    in
    let r = Wal.parse_all contents in
    if r.Wal.truncated_bytes > 0 then
      Error
        (Printf.sprintf "snapshot invalid: %s"
           (Option.value ~default:"trailing garbage" r.Wal.diagnostic))
    else
      match List.rev r.Wal.records with
      | (_, trailer) :: rev_items -> (
        match List.rev rev_items with
        | (0, meta) :: items
          when trailer = trailer_payload (List.length items) ->
          Ok (Some { meta; items = List.map snd items })
        | _ -> Error "snapshot invalid: bad meta or trailer")
      | [] -> Error "snapshot invalid: empty file"
  end
