(** Atomic snapshots: a materialized registry image that makes the WAL
    tail short.

    A snapshot file is a sequence of {!Wal}-framed records (same
    length-prefixed, checksummed line format): record 0 carries the
    caller's opaque [meta] payload, records 1..n the item payloads, and
    a final trailer record seals the count. The file is written to
    [<dir>/snapshot.tmp], fsynced, then renamed over [<dir>/snapshot] —
    a crash mid-write leaves at worst a garbage [.tmp] that {!read}
    never looks at, so the visible snapshot is always either absent or
    complete.

    The payload encoding is the caller's business (the service layer
    stores JSON); this module only guarantees integrity and
    atomicity. *)

type loaded = { meta : string; items : string list }

val file : dir:string -> string
(** [<dir>/snapshot] *)

val write : dir:string -> meta:string -> items:string list -> (unit, string) result
(** Write atomically. Hosts the [store.snapshot] chaos point: [Kill]
    SIGKILLs after half the tmp bytes (the torn tmp is ignored on
    recovery); [Drop]/[Truncate] abort the snapshot cleanly, removing
    the tmp and leaving the previous snapshot and the WAL intact. *)

val read : dir:string -> (loaded option, string) result
(** [Ok None] when no snapshot exists; [Error diag] when a snapshot
    file exists but fails validation (callers fall back to full WAL
    replay — the WAL is only ever truncated {e after} a snapshot
    committed, so an invalid snapshot never loses data). Never
    raises. *)
