(** Write-ahead log of length-prefixed, checksummed records.

    One record per line:
    {v
      FXQW1 <seq> <len> <md5-hex> <payload>\n
    v}
    where [len] is the payload's byte length and the digest covers
    ["<seq>:<payload>"]. The framing discipline mirrors {!Frame}'s
    newline-delimited protocol (a record is exactly one line, so a
    reader can always resynchronize on record boundaries), with the
    length prefix and checksum catching the two failure modes a crash
    or disk fault can leave behind: a torn tail (partial final record)
    and flipped bytes.

    Replay validates strictly and stops at the first record that fails
    any check — recovery always lands on the last complete record and
    {e never} raises on corrupt input. {!open_wal} physically truncates
    a torn tail before appending, so new records can never land after
    garbage. *)

exception Append_failed of string
(** An append was refused before any partial record could remain in the
    log (injected fault, or a detected-and-repaired partial write). *)

type t

val path : t -> string

val open_wal : string -> t
(** Open (creating if missing) for appending. A torn or corrupt tail is
    truncated to the last complete record first. *)

val append : t -> seq:int -> string -> unit
(** Append one record. [payload] must not contain a newline. Hosts the
    [store.wal] chaos point: [Kill] leaves a real torn tail (partial
    record, then SIGKILL); [Truncate] simulates a partial write that
    the appender detects and truncates back (the op fails cleanly);
    [Drop] fails the append with nothing written. *)

val size : t -> int
(** Current log size in bytes. *)

val truncate : t -> unit
(** Empty the log (after a successful snapshot made it redundant). *)

val rewind : t -> int -> unit
(** [rewind t size] — truncate back to a record boundary the caller
    remembered from {!size}: the undo for a record whose operation
    failed {e after} the append (log-before-apply, apply raised). No-op
    unless [size] is smaller than the current log. *)

val fsync : t -> unit
val close : t -> unit

type replayed = {
  records : (int * string) list;  (** (seq, payload), in log order *)
  valid_bytes : int;  (** offset of the first invalid byte *)
  truncated_bytes : int;  (** bytes dropped after the last valid record *)
  diagnostic : string option;
      (** why scanning stopped early, when it did *)
}

val load : string -> replayed
(** Scan a log read-only. A missing file is an empty log. Never
    raises on corrupt input. *)

val repair : string -> replayed
(** {!load}, then physically truncate the file to [valid_bytes]. *)

val render : seq:int -> string -> string
(** The exact bytes {!append} writes for one record (shared with the
    snapshot format). *)

val parse_all : string -> replayed
(** Validate a byte string of records (shared with the snapshot
    format). *)
