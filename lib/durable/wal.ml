exception Append_failed of string

let magic = "FXQW1"

let digest_of ~seq payload =
  Digest.to_hex (Digest.string (string_of_int seq ^ ":" ^ payload))

let render ~seq payload =
  if String.contains payload '\n' then
    invalid_arg "Wal.render: payload contains a newline";
  Printf.sprintf "%s %d %d %s %s\n" magic seq (String.length payload)
    (digest_of ~seq payload) payload

type replayed = {
  records : (int * string) list;
  valid_bytes : int;
  truncated_bytes : int;
  diagnostic : string option;
}

(* Scan [contents] record by record. Each record must be a complete,
   well-formed, checksummed line; the first violation stops the scan at
   that record's START, so everything before it is kept and everything
   from it on is the (to-be-truncated) invalid tail. *)
let parse_all contents =
  let n = String.length contents in
  let bad off msg =
    Some (Printf.sprintf "%s at byte %d" msg off)
  in
  let rec go acc off =
    if off >= n then (List.rev acc, off, None)
    else
      match String.index_from_opt contents off '\n' with
      | None ->
        (List.rev acc, off, bad off "unterminated final record")
      | Some nl -> (
        let line = String.sub contents off (nl - off) in
        (* magic SP seq SP len SP digest SP payload *)
        let fields_ok =
          match String.split_on_char ' ' line with
          | m :: seq_s :: len_s :: digest :: rest when m = magic -> (
            match (int_of_string_opt seq_s, int_of_string_opt len_s) with
            | (Some seq, Some len) ->
              (* the payload may itself contain spaces: rejoin *)
              let payload = String.concat " " rest in
              if String.length payload <> len then
                Error "length prefix mismatch"
              else if not (String.equal digest (digest_of ~seq payload)) then
                Error "checksum mismatch"
              else Ok (seq, payload)
            | _ -> Error "malformed record header")
          | _ -> Error "bad record magic"
        in
        match fields_ok with
        | Ok record -> go (record :: acc) (nl + 1)
        | Error msg -> (List.rev acc, off, bad off msg))
  in
  let (records, valid_bytes, diagnostic) = go [] 0 in
  { records; valid_bytes; truncated_bytes = n - valid_bytes; diagnostic }

let read_file path =
  match open_in_bin path with
  | exception Sys_error _ -> ""
  | ic ->
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        let n = in_channel_length ic in
        try really_input_string ic n with End_of_file -> "")

let load path = parse_all (read_file path)

let repair path =
  let r = load path in
  if r.truncated_bytes > 0 && Sys.file_exists path then
    (try Unix.truncate path r.valid_bytes with Unix.Unix_error _ -> ());
  r

(* ------------------------------------------------------------------ *)
(* Appending                                                           *)
(* ------------------------------------------------------------------ *)

type t = {
  w_path : string;
  fd : Unix.file_descr;
  mutable offset : int;  (** end of the last complete record *)
}

let path t = t.w_path
let size t = t.offset

let open_wal path =
  let r = repair path in
  let fd = Unix.openfile path [ Unix.O_WRONLY; Unix.O_CREAT ] 0o644 in
  ignore (Unix.lseek fd r.valid_bytes Unix.SEEK_SET);
  { w_path = path; fd; offset = r.valid_bytes }

let write_all fd bytes off len =
  let rec go off len =
    if len > 0 then begin
      let n = Unix.write fd bytes off len in
      go (off + n) (len - n)
    end
  in
  go off len

(* Chaos [store.wal]: [Kill] leaves a genuinely torn tail on disk —
   half a record, then SIGKILL — so recovery exercises the real
   truncation path. [Truncate] is the partial write an appender
   detects: half a record lands, the appender truncates back to the
   record boundary and reports failure, leaving the log whole. *)
let chaos_append t record =
  match Fixq_chaos.check "store.wal" with
  | None -> ()
  | Some (Fixq_chaos.Delay s) -> Fixq_chaos.sleep s
  | Some Fixq_chaos.Oom -> raise Out_of_memory
  | Some Fixq_chaos.Drop ->
    raise (Append_failed "chaos: wal append dropped")
  | Some Fixq_chaos.Kill ->
    let b = Bytes.of_string record in
    let half = max 1 (Bytes.length b / 2) in
    (try write_all t.fd b 0 half with Unix.Unix_error _ -> ());
    Fixq_chaos.kill_self ()
  | Some Fixq_chaos.Truncate ->
    let b = Bytes.of_string record in
    let half = max 1 (Bytes.length b / 2) in
    (try write_all t.fd b 0 half with Unix.Unix_error _ -> ());
    (try
       Unix.ftruncate t.fd t.offset;
       ignore (Unix.lseek t.fd t.offset Unix.SEEK_SET)
     with Unix.Unix_error _ -> ());
    raise (Append_failed "chaos: wal append torn mid-write (repaired)")

let append t ~seq payload =
  let record = render ~seq payload in
  chaos_append t record;
  let b = Bytes.of_string record in
  (match write_all t.fd b 0 (Bytes.length b) with
  | () -> ()
  | exception Unix.Unix_error (e, _, _) ->
    (* undo any partial write so the log stays whole *)
    (try
       Unix.ftruncate t.fd t.offset;
       ignore (Unix.lseek t.fd t.offset Unix.SEEK_SET)
     with Unix.Unix_error _ -> ());
    raise (Append_failed ("wal append failed: " ^ Unix.error_message e)));
  t.offset <- t.offset + Bytes.length b

let truncate t =
  (try
     Unix.ftruncate t.fd 0;
     ignore (Unix.lseek t.fd 0 Unix.SEEK_SET)
   with Unix.Unix_error _ -> ());
  t.offset <- 0

let rewind t size =
  if size < t.offset then begin
    (try
       Unix.ftruncate t.fd size;
       ignore (Unix.lseek t.fd size Unix.SEEK_SET)
     with Unix.Unix_error _ -> ());
    t.offset <- size
  end

let fsync t = try Unix.fsync t.fd with Unix.Unix_error _ -> ()

let close t =
  fsync t;
  try Unix.close t.fd with Unix.Unix_error _ -> ()
