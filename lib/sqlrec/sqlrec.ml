exception Error of string

let err fmt = Format.kasprintf (fun s -> raise (Error s)) fmt

type colref = { tbl : string option; col : string }

type operand = Col of colref | Lit of Sqldb.value

type cmp = Ceq | Cne | Clt | Cle | Cgt | Cge

type select = {
  distinct : bool;
  columns : operand list;
  from : (string * string) list;
  where : (operand * cmp * operand) list;
}

type query = {
  rec_name : string;
  rec_columns : string list;
  seed : select;
  body : select;
  final : select;
}

(* ------------------------------------------------------------------ *)
(* Tokenizer                                                           *)
(* ------------------------------------------------------------------ *)

type token = Word of string | Str_lit of string | Int_lit of int | Sym of char

let tokenize src =
  let toks = ref [] in
  let n = String.length src in
  let i = ref 0 in
  let is_word c =
    (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
    || c = '_'
  in
  while !i < n do
    let c = src.[!i] in
    if c = ' ' || c = '\n' || c = '\t' || c = '\r' then incr i
    else if c = '\'' then begin
      let j = ref (!i + 1) in
      let buf = Buffer.create 8 in
      let rec scan () =
        if !j >= n then err "unterminated string literal"
        else if src.[!j] = '\'' then
          if !j + 1 < n && src.[!j + 1] = '\'' then begin
            Buffer.add_char buf '\'';
            j := !j + 2;
            scan ()
          end
          else j := !j + 1
        else begin
          Buffer.add_char buf src.[!j];
          incr j;
          scan ()
        end
      in
      scan ();
      toks := Str_lit (Buffer.contents buf) :: !toks;
      i := !j
    end
    else if c >= '0' && c <= '9' then begin
      let j = ref !i in
      while !j < n && src.[!j] >= '0' && src.[!j] <= '9' do
        incr j
      done;
      toks := Int_lit (int_of_string (String.sub src !i (!j - !i))) :: !toks;
      i := !j
    end
    else if is_word c then begin
      let j = ref !i in
      while !j < n && is_word src.[!j] do
        incr j
      done;
      toks := Word (String.lowercase_ascii (String.sub src !i (!j - !i))) :: !toks;
      i := !j
    end
    else begin
      toks := Sym c :: !toks;
      incr i
    end
  done;
  List.rev !toks

(* ------------------------------------------------------------------ *)
(* Parser                                                              *)
(* ------------------------------------------------------------------ *)

type pstate = { mutable toks : token list }

let peek st = match st.toks with [] -> None | t :: _ -> Some t

let advance st =
  match st.toks with [] -> err "unexpected end of query" | _ :: r -> st.toks <- r

let expect_word st w =
  match peek st with
  | Some (Word x) when x = w -> advance st
  | _ -> err "expected %S" w

let expect_sym st c =
  match peek st with
  | Some (Sym x) when x = c -> advance st
  | _ -> err "expected %C" c

let word st =
  match peek st with
  | Some (Word w) ->
    advance st;
    w
  | _ -> err "expected an identifier"

let at_word st w = match peek st with Some (Word x) -> x = w | _ -> false

let parse_operand st =
  match peek st with
  | Some (Str_lit s) ->
    advance st;
    Lit (Sqldb.S s)
  | Some (Int_lit i) ->
    advance st;
    Lit (Sqldb.I i)
  | Some (Word w) ->
    advance st;
    if peek st = Some (Sym '.') then begin
      advance st;
      let col = word st in
      Col { tbl = Some w; col }
    end
    else Col { tbl = None; col = w }
  | _ -> err "expected a column reference or literal"

let parse_select_body st =
  expect_word st "select";
  let distinct =
    if at_word st "distinct" then begin
      advance st;
      true
    end
    else false
  in
  let columns =
    if peek st = Some (Sym '*') then begin
      advance st;
      []
    end
    else begin
      let rec cols acc =
        let c = parse_operand st in
        if peek st = Some (Sym ',') then begin
          advance st;
          cols (c :: acc)
        end
        else List.rev (c :: acc)
      in
      cols []
    end
  in
  expect_word st "from";
  let rec tables acc =
    let name = word st in
    let alias =
      match peek st with
      | Some (Word w)
        when w <> "where" && w <> "union" && w <> "select" ->
        advance st;
        w
      | _ -> name
    in
    if peek st = Some (Sym ',') then begin
      advance st;
      tables ((name, alias) :: acc)
    end
    else List.rev ((name, alias) :: acc)
  in
  let from = tables [] in
  let parse_cmp st =
    match peek st with
    | Some (Sym '=') ->
      advance st;
      Ceq
    | Some (Sym '<') ->
      advance st;
      (match peek st with
      | Some (Sym '>') ->
        advance st;
        Cne
      | Some (Sym '=') ->
        advance st;
        Cle
      | _ -> Clt)
    | Some (Sym '>') ->
      advance st;
      (match peek st with
      | Some (Sym '=') ->
        advance st;
        Cge
      | _ -> Cgt)
    | _ -> err "expected a comparison operator (=, <>, <, <=, >, >=)"
  in
  let where =
    if at_word st "where" then begin
      advance st;
      let rec conds acc =
        let l = parse_operand st in
        let cm = parse_cmp st in
        let r = parse_operand st in
        if at_word st "and" then begin
          advance st;
          conds ((l, cm, r) :: acc)
        end
        else List.rev ((l, cm, r) :: acc)
      in
      conds []
    end
    else []
  in
  { distinct; columns; from; where }

let parse_paren_select st =
  let parens = peek st = Some (Sym '(') in
  if parens then advance st;
  let s = parse_select_body st in
  if parens then expect_sym st ')';
  s

let parse src =
  let st = { toks = tokenize src } in
  expect_word st "with";
  expect_word st "recursive";
  let rec_name = word st in
  expect_sym st '(';
  let rec cols acc =
    let c = word st in
    if peek st = Some (Sym ',') then begin
      advance st;
      cols (c :: acc)
    end
    else List.rev (c :: acc)
  in
  let rec_columns = cols [] in
  expect_sym st ')';
  expect_word st "as";
  expect_sym st '(';
  let seed = parse_paren_select st in
  expect_word st "union";
  expect_word st "all";
  let body = parse_paren_select st in
  expect_sym st ')';
  let final = parse_select_body st in
  (match peek st with
  | Some (Sym ';') -> advance st
  | _ -> ());
  (match peek st with
  | None -> ()
  | Some _ -> err "trailing input after the final SELECT");
  { rec_name; rec_columns; seed; body; final }

let parse_select src =
  let st = { toks = tokenize src } in
  let s = parse_select_body st in
  (match peek st with
  | Some (Sym ';') -> advance st
  | _ -> ());
  (match peek st with None -> () | Some _ -> err "trailing input");
  s

(* ------------------------------------------------------------------ *)
(* Evaluation                                                          *)
(* ------------------------------------------------------------------ *)

let is_linear q =
  let refs =
    List.length
      (List.filter
         (fun (name, _) -> String.lowercase_ascii name = String.lowercase_ascii q.rec_name)
         q.body.from)
  in
  refs <= 1

(* Evaluate a select against [db], with [extra] binding the recursive
   table name during iteration. *)
let eval_select ?extra (db : Sqldb.t) (s : select) : Sqldb.table =
  let resolve_table name =
    let lname = String.lowercase_ascii name in
    match extra with
    | Some (rn, t) when String.lowercase_ascii rn = lname -> t
    | _ -> (
      match Sqldb.find_table db name with
      | Some t -> t
      | None -> err "unknown table %S" name)
  in
  let tables = List.map (fun (name, alias) -> (alias, resolve_table name)) s.from in
  (* environment: alias → row *)
  let col_value env (r : colref) =
    let lookup alias (t : Sqldb.table) row =
      let rec idx i = function
        | [] -> None
        | c :: _ when String.lowercase_ascii c = String.lowercase_ascii r.col ->
          Some i
        | _ :: rest -> idx (i + 1) rest
      in
      ignore alias;
      Option.map (fun i -> List.nth row i) (idx 0 t.Sqldb.columns)
    in
    match r.tbl with
    | Some a -> (
      match List.assoc_opt a env with
      | None -> err "unknown table alias %S" a
      | Some (t, row) -> (
        match lookup a t row with
        | Some v -> v
        | None -> err "unknown column %s.%s" a r.col))
    | None -> (
      let hits =
        List.filter_map (fun (a, (t, row)) -> lookup a t row) env
      in
      match hits with
      | [ v ] -> v
      | [] -> err "unknown column %S" r.col
      | _ -> err "ambiguous column %S" r.col)
  in
  let operand_value env = function
    | Lit v -> v
    | Col r -> col_value env r
  in
  (* Ordering comparisons require operands of the same kind; SQL:1999 has
     no implicit string/number coercion in this subset. *)
  let order l r =
    match (l, r) with
    | (Sqldb.I a, Sqldb.I b) -> Int.compare a b
    | (Sqldb.S a, Sqldb.S b) -> String.compare a b
    | _ ->
      err "type mismatch in comparison: %a vs %a" Sqldb.pp_value l
        Sqldb.pp_value r
  in
  let cmp_holds cm l r =
    match cm with
    | Ceq -> Sqldb.value_equal l r
    | Cne -> not (Sqldb.value_equal l r)
    | Clt -> order l r < 0
    | Cle -> order l r <= 0
    | Cgt -> order l r > 0
    | Cge -> order l r >= 0
  in
  (* Predicate pushdown: each WHERE conjunct runs at the outermost level
     of the FROM nesting where every column it references is bound, so
     the product enumeration prunes eagerly instead of filtering only
     completed rows — the chain equalities WITH RECURSIVE bodies emit
     turn the nested loop into a join. Row order is unchanged: the
     surviving leaves appear in the same nesting order. Conjuncts whose
     columns are unknown or ambiguous stay at the innermost level, where
     evaluation raises the same errors as before. *)
  let n_tables = List.length tables in
  let level_of_operand = function
    | Lit _ -> Some (-1)
    | Col { tbl = Some a; _ } ->
      let la = String.lowercase_ascii a in
      let (_, last) =
        List.fold_left
          (fun (i, acc) (a', _) ->
            ( i + 1,
              if String.lowercase_ascii a' = la then Some i else acc ))
          (0, None) tables
      in
      last
    | Col { tbl = None; col } ->
      let lcol = String.lowercase_ascii col in
      let holders =
        List.mapi (fun i e -> (i, e)) tables
        |> List.filter (fun (_, (_, (t : Sqldb.table))) ->
               List.exists
                 (fun c -> String.lowercase_ascii c = lcol)
                 t.Sqldb.columns)
      in
      (match holders with [ (i, _) ] -> Some i | _ -> None)
  in
  let pred_level (l, _, r) =
    match (level_of_operand l, level_of_operand r) with
    | (Some a, Some b) -> max a b
    | _ -> n_tables - 1
  in
  let preds_at = Array.make (max 1 n_tables) [] in
  let pre = ref [] in
  List.iter
    (fun p ->
      let lv = pred_level p in
      if lv < 0 then pre := p :: !pre else preds_at.(lv) <- p :: preds_at.(lv))
    s.where;
  Array.iteri (fun i l -> preds_at.(i) <- List.rev l) preds_at;
  let holds env (l, cm, r) =
    cmp_holds cm (operand_value env l) (operand_value env r)
  in
  (* Hash-join narrowing: when a level carries a pushed equality between
     one of its own columns and an operand bound earlier, bucket the
     table's rows by that column and enumerate only the matching bucket.
     Because [Sqldb.value_equal] coerces between [S] and [I] spellings
     (and is not transitive), an [S] cell that also reads as an integer
     is bucketed under both spellings and the bucket is only a candidate
     pre-filter — every WHERE conjunct is still checked per row, so the
     result is bit-for-bit what the plain scan produces. *)
  let keys_of = function
    | Sqldb.I _ as v -> [ v ]
    | Sqldb.S str as v -> (
      match int_of_string_opt str with
      | Some i -> [ v; Sqldb.I i ]
      | None -> [ v ])
  in
  let col_index_in (t : Sqldb.table) col =
    let lcol = String.lowercase_ascii col in
    let rec idx i = function
      | [] -> None
      | c :: _ when String.lowercase_ascii c = lcol -> Some i
      | _ :: rest -> idx (i + 1) rest
    in
    idx 0 t.Sqldb.columns
  in
  let tables_arr = Array.of_list tables in
  let index_at =
    Array.init (max 1 n_tables) (fun i ->
        if i >= n_tables then None
        else
          let (_, t) = tables_arr.(i) in
          let local op =
            match op with
            | Col { col; _ } when level_of_operand op = Some i ->
              col_index_in t col
            | _ -> None
          in
          let earlier op =
            match level_of_operand op with Some l -> l < i | None -> false
          in
          let eligible = function
            | (l, Ceq, r) -> (
              match (local l, earlier r) with
              | (Some ci, true) -> Some (ci, r)
              | _ -> (
                match (local r, earlier l) with
                | (Some ci, true) -> Some (ci, l)
                | _ -> None))
            | _ -> None
          in
          match List.find_map eligible preds_at.(i) with
          | None -> None
          | Some (ci, outer) ->
            let buckets = Hashtbl.create 64 in
            List.iteri
              (fun ri row ->
                List.iter
                  (fun k ->
                    Hashtbl.replace buckets k
                      ((ri, row)
                      ::
                      (match Hashtbl.find_opt buckets k with
                      | Some l -> l
                      | None -> [])))
                  (keys_of (List.nth row ci)))
              t.Sqldb.rows;
            Hashtbl.filter_map_inplace
              (fun _ l -> Some (List.rev l))
              buckets;
            Some (outer, buckets))
  in
  (* Merge two idx-sorted candidate lists, dropping duplicate rows. *)
  let rec merge a b =
    match (a, b) with
    | ([], l) | (l, []) -> l
    | (((ia, _) as x) :: ta, ((ib, _) as y) :: tb) ->
      if ia < ib then x :: merge ta b
      else if ib < ia then y :: merge a tb
      else x :: merge ta tb
  in
  let out = ref [] in
  let rec product i env = function
    | [] ->
      let row =
        if s.columns = [] then
          List.concat_map (fun (_, (_, row)) -> row) (List.rev env)
        else List.map (operand_value env) s.columns
      in
      out := row :: !out
    | (alias, t) :: rest ->
      let visit row =
        let env = (alias, (t, row)) :: env in
        if List.for_all (holds env) preds_at.(i) then product (i + 1) env rest
      in
      (match index_at.(i) with
      | Some (outer, buckets) ->
        let cands =
          List.fold_left
            (fun acc k ->
              match Hashtbl.find_opt buckets k with
              | Some l -> merge acc l
              | None -> acc)
            []
            (keys_of (operand_value env outer))
        in
        List.iter (fun (_, row) -> visit row) cands
      | None -> List.iter visit t.Sqldb.rows)
  in
  if List.for_all (holds []) (List.rev !pre) then product 0 [] tables;
  let columns =
    if s.columns = [] then
      List.concat_map (fun (alias, t) ->
          List.map (fun c -> alias ^ "." ^ c) t.Sqldb.columns)
        tables
    else
      List.map
        (function
          | Col r -> r.col
          | Lit _ -> "?")
        s.columns
  in
  let t = { Sqldb.columns; rows = List.rev !out } in
  if s.distinct then Sqldb.distinct t else t

let run_select db s = eval_select db s

type algorithm = Naive | Delta

type run = { result : Sqldb.table; iterations : int; rows_fed : int }

let run ?(enforce_linearity = true) ?on_round ~algorithm db q =
  if enforce_linearity && not (is_linear q) then
    err
      "SQL:1999 linearity violation: %s is referenced more than once in \
       the recursive body"
      q.rec_name;
  let with_cols (t : Sqldb.table) =
    if List.length t.Sqldb.columns <> List.length q.rec_columns then
      err "recursive table %s has %d columns, select yields %d" q.rec_name
        (List.length q.rec_columns)
        (List.length t.Sqldb.columns);
    { t with Sqldb.columns = q.rec_columns }
  in
  let seed = Sqldb.distinct (with_cols (eval_select db q.seed)) in
  let iterations = ref 0 in
  let rows_fed = ref 0 in
  let apply (input : Sqldb.table) =
    incr iterations;
    rows_fed := !rows_fed + List.length input.Sqldb.rows;
    Sqldb.distinct
      (with_cols (eval_select ~extra:(q.rec_name, input) db q.body))
  in
  let union (a : Sqldb.table) (b : Sqldb.table) =
    Sqldb.distinct { a with Sqldb.rows = a.Sqldb.rows @ b.Sqldb.rows }
  in
  let round ~fed ~produced ~total =
    match on_round with
    | Some f -> f ~fed ~produced ~total
    | None -> ()
  in
  let rec naive res =
    let out = apply res in
    let next = union out res in
    round
      ~fed:(List.length res.Sqldb.rows)
      ~produced:(List.length out.Sqldb.rows)
      ~total:(List.length next.Sqldb.rows);
    if List.length next.Sqldb.rows = List.length res.Sqldb.rows then next
    else naive next
  in
  let rec delta dl res =
    let out = apply dl in
    let dl' = Sqldb.difference out res in
    let res' = union res dl' in
    round
      ~fed:(List.length dl.Sqldb.rows)
      ~produced:(List.length out.Sqldb.rows)
      ~total:(List.length res'.Sqldb.rows);
    if dl'.Sqldb.rows = [] then res' else delta dl' res'
  in
  let fixed =
    match algorithm with Naive -> naive seed | Delta -> delta seed seed
  in
  let result =
    eval_select ~extra:(q.rec_name, fixed) db q.final
  in
  { result; iterations = !iterations; rows_fed = !rows_fed }
