(** A [WITH RECURSIVE] evaluator over {!Sqldb} tables — the SQL:1999
    side of the paper's Section 2 example and Section 6 discussion.

    Supported SQL subset:

    {v
    WITH RECURSIVE name(col, …) AS (
        SELECT … FROM … [WHERE …]      -- seed
      UNION ALL
        SELECT … FROM … [WHERE …]      -- body
    )
    SELECT [DISTINCT] cols FROM tables [WHERE …] ;
    v}

    where selects use [FROM t [alias], …] and conjunctive [WHERE]
    comparisons ([=], [<>], [<], [<=], [>], [>=]) between column
    references or against literals. Equality and inequality compare any
    two values; the ordering operators require both operands to be of
    the same kind (two ints or two strings) and raise {!Error}
    otherwise.

    The engine implements both Naïve and Delta (semi-naïve) iteration
    for the recursive table, plus the standard's {e linearity} check:
    SQL:1999 requires the recursive table to be referenced at most once
    in the body's FROM clause (Section 6 — "rigid syntactical
    restrictions … that make Delta applicable"). *)

exception Error of string

type colref = { tbl : string option; col : string }

type operand = Col of colref | Lit of Sqldb.value

(** WHERE comparison operators: [=], [<>], [<], [<=], [>], [>=]. *)
type cmp = Ceq | Cne | Clt | Cle | Cgt | Cge

type select = {
  distinct : bool;
  columns : operand list;  (** empty means [*] *)
  from : (string * string) list;  (** (table, alias) *)
  where : (operand * cmp * operand) list;  (** conjunctive comparisons *)
}

type query = {
  rec_name : string;
  rec_columns : string list;
  seed : select;
  body : select;
  final : select;
}

val parse : string -> query

(** Does the body satisfy SQL:1999's linearity restriction (at most one
    reference to the recursive table)? *)
val is_linear : query -> bool

type algorithm = Naive | Delta

type run = {
  result : Sqldb.table;
  iterations : int;
  rows_fed : int;  (** total rows fed into the body across iterations *)
}

(** Evaluate. Raises {!Error} for nonlinear queries when
    [enforce_linearity] (default [true]) — matching the standard — and
    for unknown tables/columns. [on_round] fires after every iteration
    with the rows fed into the body, the rows it produced, and the
    accumulated result size — the observation hook the fixpoint stats
    layer and cooperative deadlines attach to. *)
val run :
  ?enforce_linearity:bool ->
  ?on_round:(fed:int -> produced:int -> total:int -> unit) ->
  algorithm:algorithm ->
  Sqldb.t ->
  query ->
  run

(** Evaluate a plain (non-recursive) select, for tests. *)
val run_select : Sqldb.t -> select -> Sqldb.table

(** Parse and evaluate a plain select statement (no WITH clause). *)
val parse_select : string -> select
