(** Registry backing [fn:doc]: maps URIs to document nodes.

    Queries in this reproduction never touch the file system; the
    benchmark and test harnesses register generated documents under the
    URIs the paper's queries use ([doc("curriculum.xml")],
    [doc("auction.xml")], …). A registered URI always returns the same
    node, preserving [doc] stability as required by XQuery.

    Each registry carries a {e generation counter}, bumped on every
    mutation of the visible document set ({!register}, {!unregister},
    {!clear}, and the file-system fallback of {!find}). Long-lived
    consumers — the [fixq serve] result cache in particular — key
    cached answers on the generation, so a document swap invalidates
    exactly the answers it could have changed. All operations are
    thread-safe (a per-registry mutex guards the table and counter). *)

(** Isolated registry instances let tests avoid cross-talk. *)
type t

val create : unit -> t

(** The process-wide default registry. *)
val default : t

val register : ?registry:t -> string -> Node.t -> unit

(** Remove a URI from the registry. Bumps the generation only when the
    URI was actually registered. *)
val unregister : ?registry:t -> string -> unit

(** [find uri] returns the registered document. Falls back to parsing
    the file at [uri] if nothing is registered and the file exists. *)
val find : ?registry:t -> string -> Node.t option

(** Number of visible-document-set mutations so far; starts at [0] for
    a fresh registry. *)
val generation : ?registry:t -> unit -> int

(** [doc_generation uri] — per-document generation stamp: how many times
    {e this} URI's binding changed ({!register}, {!unregister},
    {!clear}, fallback loads). [0] for a URI never seen. Stamps persist
    across {!unregister}, so a re-registered URI never repeats one.
    Fine-grained consumers (the result-cache footprint) key on these
    instead of the global {!generation}, so an unrelated [load-doc] no
    longer invalidates everything. *)
val doc_generation : ?registry:t -> string -> int

(** [track f] runs [f ()] while recording every URI that {!find}
    resolves in this registry — from any thread, which over-approximates
    the footprint under concurrency and is therefore safe (it can only
    over-invalidate). Returns [f]'s result together with the sorted
    [(uri, doc_generation uri)] footprint observed at completion. *)
val track : ?registry:t -> (unit -> 'a) -> 'a * (string * int) list

(** [synopsis uri] — the structural synopsis of the registered
    document ({!Synopsis}), built lazily on first use and cached
    against the URI's {!doc_generation}: any re-registration (swap,
    patch, reload) invalidates it automatically. [None] when the URI
    resolves to nothing. *)
val synopsis : ?registry:t -> string -> Synopsis.t option

(** Install an incrementally maintained synopsis for the URI's {e
    current} generation — the [patch-doc] path calls this with
    {!Synopsis.patched} output right after registering the patched
    tree, so the next {!synopsis} is a cache hit instead of an
    [O(|doc|)] rebuild. *)
val set_synopsis : ?registry:t -> string -> Synopsis.t -> unit

(** The cached synopsis for the URI's current generation, without
    building one. *)
val cached_synopsis : ?registry:t -> string -> Synopsis.t option

(** Registered URIs, sorted. *)
val uris : ?registry:t -> unit -> string list

(** Every per-URI generation stamp, sorted — including stamps of
    currently {e unloaded} URIs, which must survive a persistence
    round-trip so a re-registered URI still never repeats one. *)
val generations : ?registry:t -> unit -> (string * int) list

(** [restore ~gens ~generation ()] reinstates persisted generation
    stamps after a recovery reload: per-URI stamps are overwritten with
    the recorded values and the global counter is raised to at least
    [generation] (never lowered — the reload itself already bumped it).
    Restoring stamps lets result-cache footprints recorded before a
    crash validate against the rebuilt registry. *)
val restore :
  ?registry:t -> gens:(string * int) list -> generation:int -> unit -> unit

val clear : ?registry:t -> unit -> unit
