type t =
  | Child
  | Descendant
  | Descendant_or_self
  | Parent
  | Ancestor
  | Ancestor_or_self
  | Self
  | Following_sibling
  | Preceding_sibling
  | Following
  | Preceding
  | Attribute

type test =
  | Name of string
  | Kind_node
  | Kind_text
  | Kind_comment
  | Kind_pi
  | Kind_element of string option
  | Kind_attribute of string option
  | Kind_document

let axis_of_string = function
  | "child" -> Some Child
  | "descendant" -> Some Descendant
  | "descendant-or-self" -> Some Descendant_or_self
  | "parent" -> Some Parent
  | "ancestor" -> Some Ancestor
  | "ancestor-or-self" -> Some Ancestor_or_self
  | "self" -> Some Self
  | "following-sibling" -> Some Following_sibling
  | "preceding-sibling" -> Some Preceding_sibling
  | "following" -> Some Following
  | "preceding" -> Some Preceding
  | "attribute" -> Some Attribute
  | _ -> None

let axis_to_string = function
  | Child -> "child"
  | Descendant -> "descendant"
  | Descendant_or_self -> "descendant-or-self"
  | Parent -> "parent"
  | Ancestor -> "ancestor"
  | Ancestor_or_self -> "ancestor-or-self"
  | Self -> "self"
  | Following_sibling -> "following-sibling"
  | Preceding_sibling -> "preceding-sibling"
  | Following -> "following"
  | Preceding -> "preceding"
  | Attribute -> "attribute"

let is_reverse = function
  | Parent | Ancestor | Ancestor_or_self | Preceding | Preceding_sibling ->
    true
  | Child | Descendant | Descendant_or_self | Self | Following_sibling
  | Following | Attribute ->
    false

let name_matches pat n =
  String.equal pat "*" || String.equal pat (Node.name n)

let matches axis test (n : Node.t) =
  match test with
  | Name pat -> (
    (* A bare name test selects the principal node kind of the axis:
       attributes on the attribute axis, elements elsewhere. *)
    match axis with
    | Attribute -> n.Node.kind = Node.Attribute && name_matches pat n
    | _ -> n.Node.kind = Node.Element && name_matches pat n)
  | Kind_node -> true
  | Kind_text -> n.Node.kind = Node.Text
  | Kind_comment -> n.Node.kind = Node.Comment
  | Kind_pi -> n.Node.kind = Node.Pi
  | Kind_element pat ->
    n.Node.kind = Node.Element
    && (match pat with None -> true | Some p -> name_matches p n)
  | Kind_attribute pat ->
    n.Node.kind = Node.Attribute
    && (match pat with None -> true | Some p -> name_matches p n)
  | Kind_document -> n.Node.kind = Node.Document

let descendants_acc acc n =
  let rec go acc (n : Node.t) =
    Array.fold_left (fun acc c -> go (c :: acc) c) acc n.Node.children
  in
  List.rev (go (List.rev acc) n)

let rec ancestors (n : Node.t) =
  match n.Node.parent with None -> [] | Some p -> p :: ancestors p

let siblings_after (n : Node.t) =
  match n.Node.parent with
  | None -> []
  | Some p ->
    let sibs = Array.to_list p.Node.children in
    let rec drop = function
      | [] -> []
      | s :: rest -> if Node.equal s n then rest else drop rest
    in
    drop sibs

let siblings_before (n : Node.t) =
  match n.Node.parent with
  | None -> []
  | Some p ->
    let rec take acc = function
      | [] -> List.rev acc
      | s :: rest ->
        if Node.equal s n then List.rev acc else take (s :: acc) rest
    in
    take [] (Array.to_list p.Node.children)

let nodes axis (n : Node.t) =
  match axis with
  | Self -> [ n ]
  | Child -> Array.to_list n.Node.children
  | Attribute -> Array.to_list n.Node.attributes
  | Descendant -> descendants_acc [] n
  | Descendant_or_self -> n :: descendants_acc [] n
  | Parent -> ( match n.Node.parent with None -> [] | Some p -> [ p ])
  | Ancestor -> ancestors n
  | Ancestor_or_self -> n :: ancestors n
  | Following_sibling -> siblings_after n
  | Preceding_sibling -> List.rev (siblings_before n)
  | Following ->
    (* Nodes after n in document order, excluding descendants: the
       descendant-or-self closure of the following siblings of n and of
       each of its ancestors. *)
    List.concat_map
      (fun s ->
        List.concat_map (fun fs -> fs :: descendants_acc [] fs)
          (siblings_after s))
      (n :: ancestors n)
  | Preceding ->
    (* axis order = reverse document order *)
    let sources = n :: ancestors n in
    List.rev
      (List.concat_map
         (fun s ->
           List.concat_map (fun ps -> ps :: descendants_acc [] ps)
             (siblings_before s))
         (List.rev sources))

(* --- index-assisted steps ------------------------------------------ *)

(* [range arr lo hi] = (i, j) such that arr.(i..j-1) are exactly the
   entries with lo <= id <= hi ([arr] is sorted by id). *)
let range (arr : Node.t array) lo hi =
  let len = Array.length arr in
  let lower target =
    let l = ref 0 and r = ref len in
    while !l < !r do
      let m = (!l + !r) / 2 in
      if arr.(m).Node.id < target then l := m + 1 else r := m
    done;
    !l
  in
  (lower lo, lower (hi + 1))

(* Elements named [pat] in the subtree of [n], answered from the
   per-document name index: a binary search for the id interval
   [(n.id), subtree_max_id n] — the subtree-containment pruning that
   keeps overlapping Δ subtrees from being re-walked. Only consulted
   for real documents (Document-rooted trees); ephemeral constructed
   fragments keep the plain walk, so no index is built for them. *)
let indexed_named_subtree ~or_self pat (n : Node.t) =
  match n.Node.kind with
  | Node.Element | Node.Document -> (
    let r = Node.root n in
    if r.Node.kind <> Node.Document then None
    else
      match Node.elements_by_name r pat with
      | None -> None
      | Some arr ->
        let lo = n.Node.id + (if or_self then 0 else 1) in
        let hi = Node.subtree_max_id n in
        let (i, j) = range arr lo hi in
        incr Counters.index_steps;
        Counters.index_nodes := !Counters.index_nodes + (j - i);
        let rec collect k acc =
          if k < i then acc else collect (k - 1) (arr.(k) :: acc)
        in
        Some (collect (j - 1) []))
  | _ -> None

let step axis test n =
  match (axis, test) with
  | ((Descendant | Descendant_or_self), (Name pat | Kind_element (Some pat)))
    when not (String.equal pat "*") -> (
    let or_self = axis = Descendant_or_self in
    match indexed_named_subtree ~or_self pat n with
    | Some hits -> hits
    | None -> List.filter (matches axis test) (nodes axis n))
  | (Child, (Name pat | Kind_element (Some pat)))
    when not (String.equal pat "*") && Array.length n.Node.children > 8 -> (
    (* Use the index for child::name only when it beats scanning the
       children: candidates are all same-named elements in the subtree,
       so compare counts before materializing. *)
    match indexed_named_subtree ~or_self:false pat n with
    | Some hits when List.length hits <= Array.length n.Node.children ->
      List.filter
        (fun (c : Node.t) ->
          match c.Node.parent with Some p -> Node.equal p n | None -> false)
        hits
    | _ -> List.filter (matches axis test) (nodes axis n))
  | _ -> List.filter (matches axis test) (nodes axis n)

let pp_test ppf = function
  | Name s -> Format.pp_print_string ppf s
  | Kind_node -> Format.pp_print_string ppf "node()"
  | Kind_text -> Format.pp_print_string ppf "text()"
  | Kind_comment -> Format.pp_print_string ppf "comment()"
  | Kind_pi -> Format.pp_print_string ppf "processing-instruction()"
  | Kind_element None -> Format.pp_print_string ppf "element()"
  | Kind_element (Some s) -> Format.fprintf ppf "element(%s)" s
  | Kind_attribute None -> Format.pp_print_string ppf "attribute()"
  | Kind_attribute (Some s) -> Format.fprintf ppf "attribute(%s)" s
  | Kind_document -> Format.pp_print_string ppf "document-node()"
