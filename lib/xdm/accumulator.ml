type t = {
  mutable bitmap : Bytes.t;
  mutable runs : Node.t array list;  (* newest first; sorted, disjoint *)
  mutable size : int;
  mutable cache : Node.t array option;
}

let create () =
  { bitmap = Bytes.make 1024 '\000'; runs = []; size = 0; cache = None }

let size t = t.size

let ensure t id =
  let need = (id lsr 3) + 1 in
  let len = Bytes.length t.bitmap in
  if len < need then begin
    let n = ref len in
    while !n < need do
      n := !n * 2
    done;
    let b = Bytes.make !n '\000' in
    Bytes.blit t.bitmap 0 b 0 len;
    t.bitmap <- b
  end

let mem_id t id =
  incr Counters.bitmap_tests;
  let byte = id lsr 3 in
  let hit =
    byte < Bytes.length t.bitmap
    && Char.code (Bytes.unsafe_get t.bitmap byte) land (1 lsl (id land 7)) <> 0
  in
  if hit then incr Counters.bitmap_hits;
  hit

let mem t (n : Node.t) = mem_id t n.Node.id

let set_id t id =
  ensure t id;
  let byte = id lsr 3 in
  Bytes.unsafe_set t.bitmap byte
    (Char.chr
       (Char.code (Bytes.unsafe_get t.bitmap byte) lor (1 lsl (id land 7))))

let absorb_into t ~who produced fresh_rev fresh_count items =
  List.iter
    (fun it ->
      incr produced;
      match it with
      | Item.N n ->
        if not (mem_id t n.Node.id) then begin
          set_id t n.Node.id;
          fresh_rev := n :: !fresh_rev;
          incr fresh_count
        end
      | Item.A a ->
        Atom.type_error "%s: expected a sequence of nodes, got atom %s" who
          (Atom.to_string a))
    items

let commit t fresh_rev fresh_count =
  let fresh = Item.sort_uniq_nodes (List.rev !fresh_rev) in
  (match fresh with
  | [] -> ()
  | _ ->
    t.runs <- Array.of_list fresh :: t.runs;
    t.size <- t.size + !fresh_count;
    t.cache <- None);
  (List.map Item.node fresh, !fresh_count, !fresh_count)

let absorb t ~who items =
  let produced = ref 0 in
  let fresh_rev = ref [] in
  let fresh_count = ref 0 in
  absorb_into t ~who produced fresh_rev fresh_count items;
  let (fresh, n, _) = commit t fresh_rev fresh_count in
  (fresh, n, !produced)

let absorb_parts t ~who parts =
  let produced = ref 0 in
  let fresh_rev = ref [] in
  let fresh_count = ref 0 in
  Array.iter (absorb_into t ~who produced fresh_rev fresh_count) parts;
  let (fresh, n, _) = commit t fresh_rev fresh_count in
  (fresh, n, !produced)

(* Runs are pairwise disjoint (the bitmap blocks re-insertion), so the
   final result is a pure merge with no deduplication. Merging
   bottom-up in adjacent pairs keeps the total cost O(|res| log #runs)
   and is paid once per fixpoint, not once per round. *)
let merge_two a b =
  incr Counters.merges;
  let la = Array.length a and lb = Array.length b in
  Counters.merged_items := !Counters.merged_items + la + lb;
  let out = Array.make (la + lb) a.(0) in
  let i = ref 0 and j = ref 0 and k = ref 0 in
  while !i < la && !j < lb do
    if a.(!i).Node.id < b.(!j).Node.id then begin
      out.(!k) <- a.(!i);
      incr i
    end
    else begin
      out.(!k) <- b.(!j);
      incr j
    end;
    incr k
  done;
  while !i < la do
    out.(!k) <- a.(!i);
    incr i;
    incr k
  done;
  while !j < lb do
    out.(!k) <- b.(!j);
    incr j;
    incr k
  done;
  out

let merge_runs runs =
  let runs = List.filter (fun a -> Array.length a > 0) runs in
  let rec pairs = function
    | [] -> []
    | [ r ] -> [ r ]
    | a :: b :: rest -> merge_two a b :: pairs rest
  in
  let rec reduce = function
    | [] -> [||]
    | [ r ] -> r
    | rs -> reduce (pairs rs)
  in
  reduce runs

let merged t =
  match t.cache with
  | Some a -> a
  | None ->
    let rec pairs = function
      | [] -> []
      | [ r ] -> [ r ]
      | a :: b :: rest -> merge_two a b :: pairs rest
    in
    let rec reduce = function
      | [] -> [||]
      | [ r ] -> r
      | runs -> reduce (pairs runs)
    in
    let a = reduce t.runs in
    t.cache <- Some a;
    t.runs <- (if Array.length a = 0 then [] else [ a ]);
    a

let to_nodes t = Array.to_list (merged t)
let to_seq t = List.map Item.node (to_nodes t)
