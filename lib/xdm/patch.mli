(** Structured document edits ([patch-doc]) over {!Node.t} trees.

    An {!op} addresses an element with a tiny path language
    ([/site/people[2]/person] — child element steps with 1-based
    positional selectors) and inserts, deletes or replaces a subtree
    there, or rewrites its text content. {!apply} executes the edit by
    rebuilding the tree with fresh preorder ids (see
    {!Node.rebuild_patched}) and returns the structured {!delta} that
    incremental-maintenance consumers need: the old-id → new-node remap
    for surviving nodes, the inserted subtree roots, the deleted old
    ids, and the surviving parent of the edit point (the frontier from
    which differential re-evaluation restarts). *)

exception Patch_error of string

(** Where an [Insert] lands relative to the addressed element:
    [First]/[Last] are child positions inside it, [Before]/[After] are
    sibling positions next to it. *)
type position = First | Last | Before | After

type op =
  | Insert of { path : string; position : position; xml : string }
  | Delete of { path : string }
  | Replace of { path : string; xml : string }
  | Set_text of { path : string; text : string }

type delta = {
  new_root : Node.t;  (** the patched document, fresh preorder ids *)
  remap : (int, Node.t) Hashtbl.t;
      (** every surviving old id (attributes included) → its new node *)
  inserted : Node.t list;
      (** roots of inserted subtrees in the new tree, document order *)
  inserted_count : int;  (** total inserted nodes, attributes included *)
  deleted : int list;  (** old ids that no longer exist *)
  edit_parent : Node.t option;
      (** surviving node (new tree) whose subtree changed — the
          maintenance frontier anchor *)
}

(** [None] if the string is not one of [into], [into-first],
    [into-last], [first], [last], [before], [after]. *)
val position_of_string : string -> position option

val string_of_position : position -> string
val path_of_op : op -> string

(** [parse_path "/a/b[2]"] → [[("a", 1); ("b", 2)]]. Raises
    {!Patch_error} on malformed paths. *)
val parse_path : string -> (string * int) list

(** Resolve a path from a (document or element) root to the addressed
    element. Raises {!Patch_error} when a step matches nothing. *)
val resolve : Node.t -> string -> Node.t

(** [apply root op] — rebuild the tree with the edit applied. Raises
    {!Patch_error} on bad paths/XML and on edits that would damage the
    document shape (deleting the root element, giving it siblings). *)
val apply : Node.t -> op -> delta
