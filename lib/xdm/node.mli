(** Ordered, unranked trees with node identity — the backbone of the
    XQuery Data Model.

    Every node carries a globally unique integer {!id} assigned at
    construction time in document (pre-)order: within a tree, [id]
    increases in preorder (element, then its attributes, then its
    children); across trees, ids order trees by construction time. As a
    consequence, document order is exactly the order of [id] and
    [fs:distinct-doc-order] is "sort by id, drop duplicates"
    (see {!Item.ddo}).

    Node construction from a {!spec} and {!deep_copy} both allocate
    fresh ids, matching XQuery's semantics of node constructors (new
    node identities on every evaluation). *)

type kind = Document | Element | Attribute | Text | Comment | Pi

type t = private {
  id : int;
  kind : kind;
  name : Qname.t option;
  mutable content : string;  (** text / comment / PI / attribute value *)
  mutable parent : t option;
  mutable children : t array;
  mutable attributes : t array;
  mutable doc : doc option;  (** set on tree roots only *)
}

(** Per-document bookkeeping attached to the root node. *)
and doc = {
  mutable uri : string option;
  mutable id_attribute_names : string list;
      (** attribute names declared of type ID (via DTD or
          {!register_id_attribute}) *)
  mutable id_index : (string, t) Hashtbl.t option;  (** built lazily *)
  mutable idref_attribute_names : string list;
      (** attribute names declared of type IDREF/IDREFS *)
  mutable idref_index : (string, t list) Hashtbl.t option;
  mutable name_index : name_index;  (** built lazily, see {!elements_by_name} *)
}

(** Lazy element-name index over a tree, same pattern as [id_index]. *)
and name_index =
  | Ni_unbuilt
  | Ni_disabled
      (** preorder id validation failed during the build walk; callers
          must fall back to walking the tree *)
  | Ni_built of (string, t array) Hashtbl.t
      (** element name (as written) → elements with that name, in
          document order *)

(** Construction specification: a value describing a tree to build. *)
type spec =
  | E of string * (string * string) list * spec list
      (** element: name, attributes, children *)
  | T of string  (** text node *)
  | C of string  (** comment node *)
  | P of string * string  (** processing instruction: target, content *)

(** [of_spec ?uri ?id_attrs spec] builds a document node rooted over
    [spec], assigning fresh preorder ids. [id_attrs] lists attribute
    names of DTD type ID (for [fn:id]). *)
val of_spec : ?uri:string -> ?id_attrs:string list -> spec -> t

(** Build a parentless element (XQuery element constructor). Children
    that already have a parent are deep-copied, parentless ones are
    adopted — both receive fresh ids. *)
val element : string -> attrs:(string * string) list -> t list -> t

val text : string -> t
val comment : string -> t
val attribute : string -> string -> t

(** XQuery [document { … }] constructor: a fresh document node whose
    children are copies of the given nodes. *)
val document : t list -> t

(** [deep_copy n] clones the subtree rooted at [n] with fresh ids and no
    parent. *)
val deep_copy : t -> t

(** Root of the tree containing [n] (follows parent links). *)
val root : t -> t

val parent : t -> t option
val children : t -> t list
val attributes : t -> t list

(** XPath string value: text content for text/comment/PI/attribute
    nodes, concatenation of descendant text for elements/documents. *)
val string_value : t -> string

(** Name as written ([Qname.to_string]), or [""] for unnamed kinds. *)
val name : t -> string

val local_name : t -> string

(** [register_id_attribute root name] declares attribute [name] to be of
    DTD type ID for the whole tree under [root] and invalidates the ID
    index. *)
val register_id_attribute : t -> string -> unit

(** [lookup_id root v] finds the element that carries an ID-typed
    attribute with value [v], if any (the index is built on first use). *)
val lookup_id : t -> string -> t option

(** Declare attribute [name] of DTD type IDREF/IDREFS for the whole
    tree. *)
val register_idref_attribute : t -> string -> unit

(** [lookup_idref root v] returns the IDREF-typed attribute nodes whose
    (whitespace-tokenized) value mentions ID [v], in document order. *)
val lookup_idref : t -> string -> t list

val set_uri : t -> string -> unit
val uri : t -> string option

(** Document order = id order. *)
val compare_doc_order : t -> t -> int

val equal : t -> t -> bool

(** Nodes allocated so far in this process; useful to bound work in
    tests. *)
val allocated : unit -> int

(** Number of nodes in the subtree (excluding attributes), as used by
    size accounting in benchmarks. *)
val subtree_size : t -> int

(** Preorder iteration over the subtree, attributes excluded. *)
val iter_subtree : (t -> unit) -> t -> unit

(** Largest id inside the subtree of [n], attributes included. With
    preorder ids the subtree is exactly the id interval
    [[n.id, subtree_max_id n]] — the containment test behind
    index-assisted descendant steps. *)
val subtree_max_id : t -> int

(** [elements_by_name n name] — all elements named [name] (as written)
    in the tree containing [n], in document order, answered from a lazy
    per-document index. [None] when the index is disabled (preorder id
    validation failed); callers must then walk the tree. *)
val elements_by_name : t -> string -> t array option

(** One structural edit applied during a {!rebuild_patched} walk.
    Template nodes ([Pa_replace], [Pa_insert_*]) are deep-copied at
    their splice point so their fresh ids land in document order. *)
type patch_action =
  | Pa_delete
  | Pa_replace of t
  | Pa_insert_child of t * [ `First | `Last ]
  | Pa_insert_sibling of t * [ `Before | `After ]
  | Pa_set_text of string
      (** replace the element's content with a single text node *)

(** [rebuild_patched root ~target ~action] copies the whole tree under
    [root] with fresh preorder ids, applying [action] at [target]
    (compared by physical identity, so [target] must come from this
    tree). In-place splicing is impossible here: node ids {e are}
    document order, and no fresh id fits between two existing
    neighbours — so every patch is a full O(|doc|) rebuild (still a
    plain pointer walk, far cheaper than re-running a fixpoint).

    Returns [(new_root, remap, inserted, deleted)]: the patched tree;
    a map from every surviving old id (attributes included) to its new
    node; the roots of newly inserted subtrees inside the new tree, in
    document order; and the old ids that were removed. Document
    metadata (URI, ID/IDREF attribute declarations) is carried over;
    lazy indexes restart unbuilt. *)
val rebuild_patched :
  t ->
  target:t ->
  action:patch_action ->
  t * (int, t) Hashtbl.t * t list * int list

val pp : Format.formatter -> t -> unit
