type t = {
  docs : (string, Node.t) Hashtbl.t;
  gens : (string, int) Hashtbl.t;
      (* per-URI generation stamps; persist across unregister so a
         re-registered URI never reuses an old stamp *)
  syns : (string, int * Synopsis.t) Hashtbl.t;
      (* lazily built structural synopses, keyed by the doc generation
         they describe — a stale stamp is an automatic invalidation *)
  lock : Mutex.t;
  mutable generation : int;
  mutable trackers : (string -> unit) list;
      (* footprint callbacks, notified on every successful [find] *)
}

let create () : t =
  { docs = Hashtbl.create 8; gens = Hashtbl.create 8;
    syns = Hashtbl.create 8;
    lock = Mutex.create (); generation = 0; trackers = [] }

let default : t = create ()

let with_lock registry f =
  Mutex.lock registry.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock registry.lock) f

(* Callers hold the lock. *)
let bump_doc registry uri =
  Hashtbl.replace registry.gens uri
    (1 + Option.value ~default:0 (Hashtbl.find_opt registry.gens uri))

let register ?(registry = default) uri doc =
  Node.set_uri doc uri;
  with_lock registry (fun () ->
      Hashtbl.replace registry.docs uri doc;
      bump_doc registry uri;
      registry.generation <- registry.generation + 1)

let unregister ?(registry = default) uri =
  with_lock registry (fun () ->
      if Hashtbl.mem registry.docs uri then begin
        Hashtbl.remove registry.docs uri;
        Hashtbl.remove registry.syns uri;
        bump_doc registry uri;
        registry.generation <- registry.generation + 1
      end)

let notify registry uri =
  match with_lock registry (fun () -> registry.trackers) with
  | [] -> ()
  | cbs -> List.iter (fun cb -> cb uri) cbs

(* Fires only on the filesystem fallback — registered documents are in
   memory and have no read to fail. *)
let chaos_read_point () =
  match Fixq_chaos.check "store.read" with
  | None -> false
  | Some (Fixq_chaos.Delay s) ->
    Fixq_chaos.sleep s;
    false
  | Some Fixq_chaos.Oom -> raise Out_of_memory
  | Some Fixq_chaos.Kill -> Fixq_chaos.kill_self ()
  | Some (Fixq_chaos.Drop | Fixq_chaos.Truncate) -> true

let find ?(registry = default) uri =
  match with_lock registry (fun () -> Hashtbl.find_opt registry.docs uri) with
  | Some d ->
    notify registry uri;
    Some d
  | None ->
    if (not (chaos_read_point ())) && Sys.file_exists uri then begin
      match
        let ic = open_in_bin uri in
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () ->
            let len = in_channel_length ic in
            really_input_string ic len)
      with
      | exception (Sys_error _ | End_of_file) ->
        (* unreadable or truncated mid-read: same as not present *)
        None
      | s -> (
        match Xml_parser.parse_string ~uri s with
        | doc ->
          let found =
            with_lock registry (fun () ->
                match Hashtbl.find_opt registry.docs uri with
                | Some d -> Some d  (* lost a race; keep doc stability *)
                | None ->
                  Hashtbl.replace registry.docs uri doc;
                  bump_doc registry uri;
                  registry.generation <- registry.generation + 1;
                  Some doc)
          in
          notify registry uri;
          found
        | exception Xml_parser.Parse_error _ -> None)
    end
    else None

let generation ?(registry = default) () =
  with_lock registry (fun () -> registry.generation)

let doc_generation ?(registry = default) uri =
  with_lock registry (fun () ->
      Option.value ~default:0 (Hashtbl.find_opt registry.gens uri))

let uris ?(registry = default) () =
  with_lock registry (fun () ->
      Hashtbl.fold (fun uri _ acc -> uri :: acc) registry.docs []
      |> List.sort String.compare)

let clear ?(registry = default) () =
  with_lock registry (fun () ->
      Hashtbl.iter (fun uri _ -> bump_doc registry uri) registry.docs;
      Hashtbl.reset registry.docs;
      Hashtbl.reset registry.syns;
      registry.generation <- registry.generation + 1)

let generations ?(registry = default) () =
  with_lock registry (fun () ->
      Hashtbl.fold (fun uri g acc -> (uri, g) :: acc) registry.gens []
      |> List.sort compare)

let restore ?(registry = default) ~gens ~generation () =
  with_lock registry (fun () ->
      List.iter (fun (uri, g) -> Hashtbl.replace registry.gens uri g) gens;
      if generation > registry.generation then
        registry.generation <- generation)

let synopsis ?(registry = default) uri =
  match find ~registry uri with
  | None -> None
  | Some root -> (
    let gen = doc_generation ~registry uri in
    match with_lock registry (fun () -> Hashtbl.find_opt registry.syns uri) with
    | Some (g, syn) when g = gen -> Some syn
    | _ ->
      let syn = Synopsis.build root in
      with_lock registry (fun () ->
          Hashtbl.replace registry.syns uri (gen, syn));
      Some syn)

let set_synopsis ?(registry = default) uri syn =
  let gen = doc_generation ~registry uri in
  with_lock registry (fun () -> Hashtbl.replace registry.syns uri (gen, syn))

let cached_synopsis ?(registry = default) uri =
  let gen = doc_generation ~registry uri in
  match with_lock registry (fun () -> Hashtbl.find_opt registry.syns uri) with
  | Some (g, syn) when g = gen -> Some syn
  | _ -> None

let track ?(registry = default) f =
  let seen : (string, unit) Hashtbl.t = Hashtbl.create 8 in
  let seen_lock = Mutex.create () in
  let cb uri =
    Mutex.lock seen_lock;
    Hashtbl.replace seen uri ();
    Mutex.unlock seen_lock
  in
  with_lock registry (fun () ->
      registry.trackers <- cb :: registry.trackers);
  let detach () =
    with_lock registry (fun () ->
        registry.trackers <- List.filter (fun c -> c != cb) registry.trackers)
  in
  match f () with
  | v ->
    detach ();
    let fp =
      Hashtbl.fold (fun uri () acc -> uri :: acc) seen []
      |> List.sort String.compare
      |> List.map (fun uri -> (uri, doc_generation ~registry uri))
    in
    (v, fp)
  | exception e ->
    detach ();
    raise e
