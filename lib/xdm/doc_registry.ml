type t = {
  docs : (string, Node.t) Hashtbl.t;
  lock : Mutex.t;
  mutable generation : int;
}

let create () : t =
  { docs = Hashtbl.create 8; lock = Mutex.create (); generation = 0 }

let default : t = create ()

let with_lock registry f =
  Mutex.lock registry.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock registry.lock) f

let register ?(registry = default) uri doc =
  Node.set_uri doc uri;
  with_lock registry (fun () ->
      Hashtbl.replace registry.docs uri doc;
      registry.generation <- registry.generation + 1)

let unregister ?(registry = default) uri =
  with_lock registry (fun () ->
      if Hashtbl.mem registry.docs uri then begin
        Hashtbl.remove registry.docs uri;
        registry.generation <- registry.generation + 1
      end)

(* Fires only on the filesystem fallback — registered documents are in
   memory and have no read to fail. *)
let chaos_read_point () =
  match Fixq_chaos.check "store.read" with
  | None -> false
  | Some (Fixq_chaos.Delay s) ->
    Fixq_chaos.sleep s;
    false
  | Some Fixq_chaos.Oom -> raise Out_of_memory
  | Some Fixq_chaos.Kill -> Fixq_chaos.kill_self ()
  | Some (Fixq_chaos.Drop | Fixq_chaos.Truncate) -> true

let find ?(registry = default) uri =
  match with_lock registry (fun () -> Hashtbl.find_opt registry.docs uri) with
  | Some d -> Some d
  | None ->
    if (not (chaos_read_point ())) && Sys.file_exists uri then begin
      match
        let ic = open_in_bin uri in
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () ->
            let len = in_channel_length ic in
            really_input_string ic len)
      with
      | exception (Sys_error _ | End_of_file) ->
        (* unreadable or truncated mid-read: same as not present *)
        None
      | s -> (
        match Xml_parser.parse_string ~uri s with
        | doc ->
          with_lock registry (fun () ->
              match Hashtbl.find_opt registry.docs uri with
              | Some d -> Some d  (* lost a race; keep doc stability *)
              | None ->
                Hashtbl.replace registry.docs uri doc;
                registry.generation <- registry.generation + 1;
                Some doc)
        | exception Xml_parser.Parse_error _ -> None)
    end
    else None

let generation ?(registry = default) () =
  with_lock registry (fun () -> registry.generation)

let uris ?(registry = default) () =
  with_lock registry (fun () ->
      Hashtbl.fold (fun uri _ acc -> uri :: acc) registry.docs []
      |> List.sort String.compare)

let clear ?(registry = default) () =
  with_lock registry (fun () ->
      Hashtbl.reset registry.docs;
      registry.generation <- registry.generation + 1)
