(** Incremental fixpoint accumulator.

    Carries the accumulated result of an inflationary fixpoint across
    rounds as a set of sorted, pairwise-disjoint runs (one per round's
    delta) plus a growable bitmap over node ids for O(1) membership.
    Node ids are dense preorder integers assigned by a single global
    counter ({!Node.id}), so document order is id order and one bitmap
    covers all documents.

    Per round, {!absorb} costs O(|out| + |Δ| log |Δ|) — independent of
    the accumulated size |res| — replacing the
    [Item.except]/[Item.union] pair that re-sorted the whole result
    every round. The full doc-ordered result is only materialized by
    {!to_seq}/{!to_nodes} at the end, as an O(|res| log #rounds)
    bottom-up merge of the runs. *)

type t

val create : unit -> t

(** Number of distinct nodes absorbed so far. O(1) — this is the
    inflationary termination test. *)
val size : t -> int

(** [mem t n] — has [n] been absorbed? O(1) bitmap test. *)
val mem : t -> Node.t -> bool

(** [absorb t ~who items] filters [items] against the bitmap, adds the
    previously-unseen nodes as a new sorted run, and returns
    [(fresh, fresh_count, produced)]: the new nodes in document order
    (the next round's Δ), how many there are, and [List.length items]
    (counted during the same pass, so callers never re-traverse for
    stats). Raises [Atom.Type_error] on atoms, with the same message as
    [Item.as_node_seq who]. *)
val absorb : t -> who:string -> Item.seq -> Item.seq * int * int

(** [absorb_parts t ~who parts] is [absorb t ~who (List.concat parts)]
    without building the concatenation — the gather path for
    [Fixpoint.delta_parallel], where [parts] is the preallocated array
    of per-domain results. *)
val absorb_parts : t -> who:string -> Item.seq array -> Item.seq * int * int

(** [merge_runs runs] — bottom-up pairwise linear merge of sorted,
    pairwise-disjoint node runs into one sorted array. The merge kernel
    behind {!to_nodes}, exposed for external run stores (the columnar
    µ/µ∆ loop keeps its per-round deltas as sorted node vectors and
    assembles the result here). *)
val merge_runs : Node.t array list -> Node.t array

(** Accumulated result in document order. Cached; absorbing afterwards
    invalidates the cache. *)
val to_seq : t -> Item.seq

val to_nodes : t -> Node.t list
