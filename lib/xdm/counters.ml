type snapshot = {
  merges : int;
  merged_items : int;
  fallback_sorts : int;
  bitmap_tests : int;
  bitmap_hits : int;
  index_steps : int;
  index_nodes : int;
  col_batches : int;
  col_rows : int;
  col_boxed_rows : int;
}

let merges = ref 0
let merged_items = ref 0
let fallback_sorts = ref 0
let bitmap_tests = ref 0
let bitmap_hits = ref 0
let index_steps = ref 0
let index_nodes = ref 0
let col_batches = ref 0
let col_rows = ref 0
let col_boxed_rows = ref 0

let snapshot () =
  { merges = !merges; merged_items = !merged_items;
    fallback_sorts = !fallback_sorts; bitmap_tests = !bitmap_tests;
    bitmap_hits = !bitmap_hits; index_steps = !index_steps;
    index_nodes = !index_nodes; col_batches = !col_batches;
    col_rows = !col_rows; col_boxed_rows = !col_boxed_rows }

let zero =
  { merges = 0; merged_items = 0; fallback_sorts = 0; bitmap_tests = 0;
    bitmap_hits = 0; index_steps = 0; index_nodes = 0; col_batches = 0;
    col_rows = 0; col_boxed_rows = 0 }

let diff a b =
  { merges = a.merges - b.merges;
    merged_items = a.merged_items - b.merged_items;
    fallback_sorts = a.fallback_sorts - b.fallback_sorts;
    bitmap_tests = a.bitmap_tests - b.bitmap_tests;
    bitmap_hits = a.bitmap_hits - b.bitmap_hits;
    index_steps = a.index_steps - b.index_steps;
    index_nodes = a.index_nodes - b.index_nodes;
    col_batches = a.col_batches - b.col_batches;
    col_rows = a.col_rows - b.col_rows;
    col_boxed_rows = a.col_boxed_rows - b.col_boxed_rows }

let add a b =
  { merges = a.merges + b.merges;
    merged_items = a.merged_items + b.merged_items;
    fallback_sorts = a.fallback_sorts + b.fallback_sorts;
    bitmap_tests = a.bitmap_tests + b.bitmap_tests;
    bitmap_hits = a.bitmap_hits + b.bitmap_hits;
    index_steps = a.index_steps + b.index_steps;
    index_nodes = a.index_nodes + b.index_nodes;
    col_batches = a.col_batches + b.col_batches;
    col_rows = a.col_rows + b.col_rows;
    col_boxed_rows = a.col_boxed_rows + b.col_boxed_rows }

let reset () =
  merges := 0;
  merged_items := 0;
  fallback_sorts := 0;
  bitmap_tests := 0;
  bitmap_hits := 0;
  index_steps := 0;
  index_nodes := 0;
  col_batches := 0;
  col_rows := 0;
  col_boxed_rows := 0
