(** Process-wide kernel counters for the set kernels of {!Item},
    {!Accumulator} and the index-assisted steps of {!Axis}.

    These sit below the language layer (which owns {!Fixq_lang.Stats}),
    so they are plain global counters the stats layer snapshots around
    fixpoint rounds. Updates are unsynchronized: under
    [Fixpoint.delta_parallel] concurrent increments may be lost, which
    is acceptable for observability counters (they never feed back into
    evaluation). *)

type snapshot = {
  merges : int;  (** merge-kernel invocations (ddo/union/except/intersect) *)
  merged_items : int;  (** items flowing through merge kernels *)
  fallback_sorts : int;  (** kernel inputs that were not already sorted *)
  bitmap_tests : int;  (** accumulator bitmap membership tests *)
  bitmap_hits : int;  (** … of which answered "already present" *)
  index_steps : int;  (** axis steps answered from the name index *)
  index_nodes : int;  (** nodes produced by index-assisted steps *)
  col_batches : int;  (** columnar batch-kernel invocations (algebra) *)
  col_rows : int;  (** rows flowing through columnar batch kernels *)
  col_boxed_rows : int;  (** … of which fell back to boxed row-at-a-time *)
}

val merges : int ref
val merged_items : int ref
val fallback_sorts : int ref
val bitmap_tests : int ref
val bitmap_hits : int ref
val index_steps : int ref
val index_nodes : int ref
val col_batches : int ref
val col_rows : int ref
val col_boxed_rows : int ref

val snapshot : unit -> snapshot
val zero : snapshot

(** [diff a b] is the componentwise [a - b]. *)
val diff : snapshot -> snapshot -> snapshot

val add : snapshot -> snapshot -> snapshot
val reset : unit -> unit
