type entry = {
  mutable count : int;
  mutable texts : int;
  mutable comments : int;
  mutable max_children : int;
      (* sound upper bound: inserts raise it, deletes leave it *)
  kids : (string, unit) Hashtbl.t;
  attrs : (string, int) Hashtbl.t;
}

type t = {
  paths : (string, entry) Hashtbl.t;
  name_totals : (string, int) Hashtbl.t;
  attr_totals : (string, int) Hashtbl.t;
  mutable total_nodes : int;
  mutable total_elements : int;
  mutable root_key : string;
}

let root_key t = t.root_key
let child_key key name = if key = "" then name else key ^ "/" ^ name

let fresh_entry () =
  { count = 0; texts = 0; comments = 0; max_children = 0;
    kids = Hashtbl.create 4; attrs = Hashtbl.create 4 }

let entry t key =
  match Hashtbl.find_opt t.paths key with
  | Some e -> e
  | None ->
    let e = fresh_entry () in
    Hashtbl.replace t.paths key e;
    e

let bump tbl key n =
  Hashtbl.replace tbl key (n + Option.value ~default:0 (Hashtbl.find_opt tbl key))

let create () =
  { paths = Hashtbl.create 64; name_totals = Hashtbl.create 16;
    attr_totals = Hashtbl.create 16; total_nodes = 0; total_elements = 0;
    root_key = "" }

(* Add ([sign = 1]) or remove ([sign = -1]) the subtree rooted at [n],
   whose own path key is [key]. Counts every node (attributes and text
   included); fan-out bounds only ever grow. *)
let rec record t ~sign key (n : Node.t) =
  match n.Node.kind with
  | Node.Element | Node.Document ->
    let e = entry t key in
    e.count <- e.count + sign;
    t.total_nodes <- t.total_nodes + sign;
    if n.Node.kind = Node.Element then begin
      t.total_elements <- t.total_elements + sign;
      bump t.name_totals (Node.name n) sign
    end;
    Array.iter
      (fun (a : Node.t) ->
        let an = Node.name a in
        bump e.attrs an sign;
        bump t.attr_totals an sign;
        t.total_nodes <- t.total_nodes + sign)
      n.Node.attributes;
    let elt_kids = ref 0 in
    Array.iter
      (fun (c : Node.t) ->
        match c.Node.kind with
        | Node.Element ->
          incr elt_kids;
          let cn = Node.name c in
          if sign > 0 then Hashtbl.replace e.kids cn ();
          record t ~sign (child_key key cn) c
        | Node.Text ->
          e.texts <- e.texts + sign;
          t.total_nodes <- t.total_nodes + sign
        | Node.Comment | Node.Pi ->
          e.comments <- e.comments + sign;
          t.total_nodes <- t.total_nodes + sign
        | Node.Document | Node.Attribute -> ())
      n.Node.children;
    if sign > 0 && !elt_kids > e.max_children then e.max_children <- !elt_kids
  | Node.Attribute | Node.Text | Node.Comment | Node.Pi ->
    (* a bare non-element root: count it, no path structure *)
    t.total_nodes <- t.total_nodes + sign

let build root =
  let t = create () in
  t.root_key <-
    (match root.Node.kind with Node.Document -> "" | _ -> Node.name root);
  record t ~sign:1 t.root_key root;
  t

let copy t =
  { paths =
      (let h = Hashtbl.create (Hashtbl.length t.paths) in
       Hashtbl.iter
         (fun k e ->
           Hashtbl.replace h k
             { e with kids = Hashtbl.copy e.kids; attrs = Hashtbl.copy e.attrs })
         t.paths;
       h);
    name_totals = Hashtbl.copy t.name_totals;
    attr_totals = Hashtbl.copy t.attr_totals;
    total_nodes = t.total_nodes;
    total_elements = t.total_elements;
    root_key = t.root_key }

(* Path key of a node already attached to its tree: element names from
   the top down to (and including) [n]. *)
let key_of (n : Node.t) =
  let rec up acc (n : Node.t) =
    match n.Node.kind with
    | Node.Element -> (
      let acc = Node.name n :: acc in
      match n.Node.parent with None -> acc | Some p -> up acc p)
    | _ -> acc
  in
  String.concat "/" (up [] n)

let parent_key (n : Node.t) =
  match n.Node.parent with None -> "" | Some p -> key_of p

(* After an insert, the edit parent's single-node fan-out may exceed
   the recorded bound; re-probe that one node. *)
let refresh_fanout t (parent : Node.t option) =
  match parent with
  | None -> ()
  | Some p ->
    let key = match p.Node.kind with Node.Document -> "" | _ -> key_of p in
    let e = entry t key in
    let kids =
      Array.fold_left
        (fun acc (c : Node.t) ->
          if c.Node.kind = Node.Element then acc + 1 else acc)
        0 p.Node.children
    in
    if kids > e.max_children then e.max_children <- kids

let patched t ~old_root ~op ~(delta : Patch.delta) =
  let t = copy t in
  let target = Patch.resolve old_root (Patch.path_of_op op) in
  (match op with
  | Patch.Insert _ -> ()
  | Patch.Delete _ | Patch.Replace _ | Patch.Set_text _ ->
    record t ~sign:(-1) (key_of target) target);
  (match op with
  | Patch.Set_text _ -> (
    (* the element survives with rewritten content — re-add its (now
       single-text-child) subtree from the new tree *)
    match Hashtbl.find_opt delta.Patch.remap target.Node.id with
    | Some fresh -> record t ~sign:1 (key_of fresh) fresh
    | None -> ())
  | Patch.Insert _ | Patch.Delete _ | Patch.Replace _ ->
    List.iter
      (fun (inserted : Node.t) ->
        let key = child_key (parent_key inserted) (Node.name inserted) in
        record t ~sign:1 key inserted)
      delta.Patch.inserted);
  refresh_fanout t delta.Patch.edit_parent;
  t

let total_nodes t = t.total_nodes
let total_elements t = t.total_elements

let path_count t key =
  match Hashtbl.find_opt t.paths key with Some e -> e.count | None -> 0

let child_names t key =
  match Hashtbl.find_opt t.paths key with
  | None -> []
  | Some e ->
    Hashtbl.fold (fun k () acc -> k :: acc) e.kids [] |> List.sort compare

let fanout t key =
  match Hashtbl.find_opt t.paths key with
  | Some e -> e.max_children
  | None -> 0

let attr_count t key name =
  match Hashtbl.find_opt t.paths key with
  | None -> 0
  | Some e -> Option.value ~default:0 (Hashtbl.find_opt e.attrs name)

let attr_names t key =
  match Hashtbl.find_opt t.paths key with
  | None -> []
  | Some e ->
    Hashtbl.fold (fun k n acc -> if n > 0 then k :: acc else acc) e.attrs []
    |> List.sort compare

let text_count t key =
  match Hashtbl.find_opt t.paths key with Some e -> e.texts | None -> 0

let name_total t name =
  Option.value ~default:0 (Hashtbl.find_opt t.name_totals name)

let attr_total t name =
  Option.value ~default:0 (Hashtbl.find_opt t.attr_totals name)

let paths_with_prefix t key =
  let prefix = if key = "" then "" else key ^ "/" in
  let plen = String.length prefix in
  Hashtbl.fold
    (fun k (e : entry) acc ->
      if
        k <> "" && k <> key
        && String.length k >= plen
        && String.sub k 0 plen = prefix
      then (k, e.count) :: acc
      else acc)
    t.paths []
  |> List.sort compare

let fold_paths f t init =
  Hashtbl.fold (fun k (e : entry) acc -> f k e.count acc) t.paths init

let equal_counts a b =
  let norm t =
    let rows = ref [] in
    Hashtbl.iter
      (fun k (e : entry) ->
        let attrs =
          Hashtbl.fold (fun n c acc -> if c <> 0 then (n, c) :: acc else acc)
            e.attrs []
          |> List.sort compare
        in
        if e.count <> 0 || e.texts <> 0 || e.comments <> 0 || attrs <> [] then
          rows := (k, e.count, e.texts, e.comments, attrs) :: !rows)
      t.paths;
    List.sort compare !rows
  in
  let totals t =
    Hashtbl.fold (fun k c acc -> if c <> 0 then (k, c) :: acc else acc)
      t.name_totals []
    |> List.sort compare
  in
  norm a = norm b && totals a = totals b
  && a.total_nodes = b.total_nodes
  && a.total_elements = b.total_elements

let pp fmt t =
  Format.fprintf fmt "@[<v>%d nodes, %d elements@," t.total_nodes
    t.total_elements;
  let rows =
    Hashtbl.fold (fun k (e : entry) acc -> (k, e) :: acc) t.paths []
    |> List.sort compare
  in
  List.iter
    (fun (k, (e : entry)) ->
      Format.fprintf fmt "%-40s %6d  (fan<=%d, text %d)@,"
        (if k = "" then "(document)" else k)
        e.count e.max_children e.texts)
    rows;
  Format.fprintf fmt "@]"
