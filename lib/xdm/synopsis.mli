(** DataGuide-style structural synopsis of one document.

    A synopsis summarizes a tree by its set of rooted element {e
    paths} (["curriculum/course/prerequisites"]); per path it keeps the
    exact number of elements, per-name attribute counts, text/comment
    child counts and an upper bound on single-node element fan-out,
    plus whole-document totals (nodes, elements, per-name element
    counts, per-name attribute counts). The cost analyzer
    ({!Fixq_cost}) evaluates axis steps over this summary instead of
    the document.

    Synopses are built lazily per registered document (see
    {!Doc_registry.synopsis}) and maintained {e incrementally} under
    [patch-doc] by {!patched}: path counts stay exact across arbitrary
    edit sequences (property-tested); fan-out stays a sound upper
    bound (a delete never shrinks it). *)

type t

(** Path key of the registered root: [""] when the root is a document
    node, the element name when a bare element was registered. Child
    keys are formed with {!child_key}. *)
val root_key : t -> string

val child_key : string -> string -> string
(** [child_key "a/b" "c" = "a/b/c"]; [child_key "" "a" = "a"]. *)

(** Walk the whole tree. [O(|doc|)]. *)
val build : Node.t -> t

(** Structure-only copy (the result shares nothing mutable). *)
val copy : t -> t

(** [patched t ~old_root ~op ~delta] — the synopsis of
    [delta.new_root], derived from [t] (the synopsis of [old_root]) in
    time proportional to the edited subtrees, not the document. *)
val patched : t -> old_root:Node.t -> op:Patch.op -> delta:Patch.delta -> t

val total_nodes : t -> int
(** Every node: document, elements, attributes, text, comments, PIs. *)

val total_elements : t -> int

val path_count : t -> string -> int
(** Elements at this exact path ([root_key t] → 1 for the root). *)

val child_names : t -> string -> string list
(** Element names ever seen as children of this path (sound
    over-approximation after deletes). *)

val fanout : t -> string -> int
(** Upper bound on the element-children count of any single node at
    this path. *)

val attr_count : t -> string -> string -> int
(** [attr_count t path name] — attributes [name] on elements at
    [path]. *)

val attr_names : t -> string -> string list
val text_count : t -> string -> int
val name_total : t -> string -> int
(** Elements named [name] anywhere in the document. *)

val attr_total : t -> string -> int
(** Attributes named [name] anywhere in the document. *)

val paths_with_prefix : t -> string -> (string * int) list
(** All (path, element count) entries that are descendants of the
    given path key (the key itself excluded); [""] lists every element
    path. *)

val fold_paths : (string -> int -> 'a -> 'a) -> t -> 'a -> 'a

val equal_counts : t -> t -> bool
(** Same exact counts everywhere (paths, attributes, texts, totals) —
    fan-out bounds excluded. The property-test oracle: a maintained
    synopsis must [equal_counts] a fresh {!build} of the patched
    tree. *)

val pp : Format.formatter -> t -> unit
