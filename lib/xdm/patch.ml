exception Patch_error of string

let err fmt = Printf.ksprintf (fun s -> raise (Patch_error s)) fmt

type position = First | Last | Before | After

type op =
  | Insert of { path : string; position : position; xml : string }
  | Delete of { path : string }
  | Replace of { path : string; xml : string }
  | Set_text of { path : string; text : string }

type delta = {
  new_root : Node.t;
  remap : (int, Node.t) Hashtbl.t;
  inserted : Node.t list;
  inserted_count : int;
  deleted : int list;
  edit_parent : Node.t option;
}

let position_of_string = function
  | "into" | "into-last" | "last" -> Some Last
  | "into-first" | "first" -> Some First
  | "before" -> Some Before
  | "after" -> Some After
  | _ -> None

let string_of_position = function
  | First -> "into-first"
  | Last -> "into-last"
  | Before -> "before"
  | After -> "after"

let path_of_op = function
  | Insert { path; _ } | Delete { path } | Replace { path; _ }
  | Set_text { path; _ } ->
    path

(* Paths are a deliberately small fragment of XPath: child element
   steps with optional 1-based positional selectors, [/site/people[2]].
   Anything richer belongs in a query, not an edit address. *)
let parse_path s =
  if s = "" || s.[0] <> '/' then err "patch path must start with '/': %S" s;
  let segs = List.tl (String.split_on_char '/' s) in
  if segs = [] || List.exists (fun x -> x = "") segs then
    err "empty step in patch path %S" s;
  List.map
    (fun seg ->
      match String.index_opt seg '[' with
      | None -> (seg, 1)
      | Some i ->
        let n = String.length seg in
        if i = 0 || n < i + 3 || seg.[n - 1] <> ']' then
          err "malformed step %S in patch path %S" seg s;
        let name = String.sub seg 0 i in
        (match int_of_string_opt (String.sub seg (i + 1) (n - i - 2)) with
        | Some k when k >= 1 -> (name, k)
        | _ -> err "positional selector in %S must be a positive integer" seg))
    segs

let resolve root path =
  let steps = parse_path path in
  List.fold_left
    (fun ctx (nm, k) ->
      let kids =
        List.filter
          (fun c -> c.Node.kind = Node.Element && Node.name c = nm)
          (Node.children ctx)
      in
      match List.nth_opt kids (k - 1) with
      | Some c -> c
      | None ->
        err "path %S: no element %s[%d] under %s" path nm k
          (match ctx.Node.kind with
          | Node.Document -> "the document root"
          | _ -> "<" ^ Node.name ctx ^ ">"))
    root steps

let fragment xml =
  match Xml_parser.parse_fragment ~strip_whitespace:true xml with
  | n -> n
  | exception Xml_parser.Parse_error { line; col; msg } ->
    err "bad patch XML (line %d, col %d): %s" line col msg

let count_subtree n =
  let k = ref 0 in
  Node.iter_subtree
    (fun x -> k := !k + 1 + List.length (Node.attributes x))
    n;
  !k

let under_document t =
  match Node.parent t with
  | Some p -> p.Node.kind = Node.Document
  | None -> true

let apply root op =
  let target, action, anchor =
    match op with
    | Insert { path; position; xml } ->
      let t = resolve root path in
      let tpl = fragment xml in
      (match position with
      | First -> (t, Node.Pa_insert_child (tpl, `First), t)
      | Last -> (t, Node.Pa_insert_child (tpl, `Last), t)
      | Before | After ->
        if under_document t then
          err "cannot insert a sibling of the document root element";
        let dir = if position = Before then `Before else `After in
        let anchor =
          match Node.parent t with Some p -> p | None -> t
        in
        (t, Node.Pa_insert_sibling (tpl, dir), anchor))
    | Delete { path } ->
      let t = resolve root path in
      if under_document t then
        err "cannot delete the document root element";
      let anchor = match Node.parent t with Some p -> p | None -> t in
      (t, Node.Pa_delete, anchor)
    | Replace { path; xml } ->
      let t = resolve root path in
      let anchor = match Node.parent t with Some p -> p | None -> t in
      (t, Node.Pa_replace (fragment xml), anchor)
    | Set_text { path; text } ->
      let t = resolve root path in
      (t, Node.Pa_set_text text, t)
  in
  let new_root, remap, inserted, deleted =
    Node.rebuild_patched root ~target ~action
  in
  let edit_parent = Hashtbl.find_opt remap anchor.Node.id in
  let inserted_count =
    List.fold_left (fun a n -> a + count_subtree n) 0 inserted
  in
  { new_root; remap; inserted; inserted_count; deleted; edit_parent }
