type kind = Document | Element | Attribute | Text | Comment | Pi

type t = {
  id : int;
  kind : kind;
  name : Qname.t option;
  mutable content : string;
  mutable parent : t option;
  mutable children : t array;
  mutable attributes : t array;
  mutable doc : doc option;
}

and doc = {
  mutable uri : string option;
  mutable id_attribute_names : string list;
  mutable id_index : (string, t) Hashtbl.t option;
  mutable idref_attribute_names : string list;
  mutable idref_index : (string, t list) Hashtbl.t option;
      (** ID token → IDREF-typed attribute nodes referring to it *)
  mutable name_index : name_index;
}

and name_index =
  | Ni_unbuilt
  | Ni_disabled  (** preorder id validation failed; callers must walk *)
  | Ni_built of (string, t array) Hashtbl.t
      (** element name → elements with that name, in document order *)

type spec =
  | E of string * (string * string) list * spec list
  | T of string
  | C of string
  | P of string * string

let counter = ref 0

let fresh_id () =
  incr counter;
  !counter

let allocated () = !counter

let mk kind name content =
  { id = fresh_id (); kind; name; content;
    parent = None; children = [||]; attributes = [||]; doc = None }

(* Ids are assigned in preorder: the node itself, then its attributes,
   then its children — this makes document order coincide with id
   order. *)
let rec build spec =
  match spec with
  | T s -> mk Text None s
  | C s -> mk Comment None s
  | P (target, s) -> mk Pi (Some (Qname.of_string target)) s
  | E (name, attrs, kids) ->
    let e = mk Element (Some (Qname.of_string name)) "" in
    let build_attr (an, av) =
      let a = mk Attribute (Some (Qname.of_string an)) av in
      a.parent <- Some e;
      a
    in
    e.attributes <- Array.of_list (List.map build_attr attrs);
    let build_kid k =
      let c = build k in
      c.parent <- Some e;
      c
    in
    e.children <- Array.of_list (List.map build_kid kids);
    e

let of_spec ?uri ?(id_attrs = []) spec =
  let d = mk Document None "" in
  d.doc <- Some { uri; id_attribute_names = id_attrs; id_index = None;
      idref_attribute_names = []; idref_index = None; name_index = Ni_unbuilt };
  let c = build spec in
  c.parent <- Some d;
  d.children <- [| c |];
  d

let rec deep_copy n =
  match n.kind with
  | Text -> mk Text None n.content
  | Comment -> mk Comment None n.content
  | Pi -> mk Pi n.name n.content
  | Attribute -> mk Attribute n.name n.content
  | Element ->
    let e = mk Element n.name "" in
    let copy_into c =
      let c' = deep_copy c in
      c'.parent <- Some e;
      c'
    in
    e.attributes <- Array.map copy_into n.attributes;
    e.children <- Array.map copy_into n.children;
    e
  | Document ->
    let d = mk Document None "" in
    d.doc <- Some { uri = None; id_attribute_names = []; id_index = None;
      idref_attribute_names = []; idref_index = None; name_index = Ni_unbuilt };
    let copy_into c =
      let c' = deep_copy c in
      c'.parent <- Some d;
      c'
    in
    d.children <- Array.map copy_into n.children;
    d

let element name ~attrs kids =
  let e = mk Element (Some (Qname.of_string name)) "" in
  let attr (an, av) =
    let a = mk Attribute (Some (Qname.of_string an)) av in
    a.parent <- Some e;
    a
  in
  e.attributes <- Array.of_list (List.map attr attrs);
  (* XQuery element construction copies its content — unconditionally:
     content nodes were built before this element, so adopting them
     as-is would give children smaller ids than their parent and break
     the id-is-document-order invariant. A document child contributes
     its children (element content semantics). *)
  let adopt k =
    let k' = deep_copy k in
    k'.parent <- Some e;
    k'
  in
  let kids =
    List.concat_map
      (fun k ->
        match k.kind with Document -> Array.to_list k.children | _ -> [ k ])
      kids
  in
  e.children <- Array.of_list (List.map adopt kids);
  e

let text s = mk Text None s
let comment s = mk Comment None s
let attribute n v = mk Attribute (Some (Qname.of_string n)) v

let document kids =
  let d = mk Document None "" in
  d.doc <- Some { uri = None; id_attribute_names = []; id_index = None;
      idref_attribute_names = []; idref_index = None; name_index = Ni_unbuilt };
  let adopt k =
    let k' = deep_copy k in
    k'.parent <- Some d;
    k'
  in
  let kids =
    List.concat_map
      (fun k ->
        match k.kind with Document -> Array.to_list k.children | _ -> [ k ])
      kids
  in
  d.children <- Array.of_list (List.map adopt kids);
  d

let rec root n = match n.parent with None -> n | Some p -> root p
let parent n = n.parent
let children n = Array.to_list n.children
let attributes n = Array.to_list n.attributes

let string_value n =
  match n.kind with
  | Text | Comment | Pi | Attribute -> n.content
  | Element | Document ->
    let buf = Buffer.create 64 in
    let rec go n =
      match n.kind with
      | Text -> Buffer.add_string buf n.content
      | Element | Document -> Array.iter go n.children
      | Attribute | Comment | Pi -> ()
    in
    go n;
    Buffer.contents buf

let name n = match n.name with None -> "" | Some q -> Qname.to_string q
let local_name n = match n.name with None -> "" | Some q -> Qname.local q

let doc_of_root r =
  match r.doc with
  | Some d -> d
  | None ->
    let d = { uri = None; id_attribute_names = []; id_index = None;
      idref_attribute_names = []; idref_index = None; name_index = Ni_unbuilt } in
    r.doc <- Some d;
    d

let register_id_attribute r an =
  let r = root r in
  let d = doc_of_root r in
  if not (List.mem an d.id_attribute_names) then
    d.id_attribute_names <- an :: d.id_attribute_names;
  d.id_index <- None

let register_idref_attribute r an =
  let r = root r in
  let d = doc_of_root r in
  if not (List.mem an d.idref_attribute_names) then
    d.idref_attribute_names <- an :: d.idref_attribute_names;
  d.idref_index <- None

let rec iter_subtree f n =
  f n;
  Array.iter (iter_subtree f) n.children

let build_id_index r d =
  let tbl = Hashtbl.create 256 in
  let visit n =
    if n.kind = Element then
      Array.iter
        (fun a ->
          if List.mem (name a) d.id_attribute_names then
            if not (Hashtbl.mem tbl a.content) then
              Hashtbl.add tbl a.content n)
        n.attributes
  in
  iter_subtree visit r;
  d.id_index <- Some tbl;
  tbl

let lookup_id r v =
  let r = root r in
  let d = doc_of_root r in
  let tbl =
    match d.id_index with Some t -> t | None -> build_id_index r d
  in
  Hashtbl.find_opt tbl v

let whitespace_tokens s =
  String.split_on_char ' ' s
  |> List.concat_map (String.split_on_char '\n')
  |> List.concat_map (String.split_on_char '\t')
  |> List.filter (fun x -> x <> "")

let build_idref_index r d =
  let tbl = Hashtbl.create 256 in
  let visit n =
    if n.kind = Element then
      Array.iter
        (fun a ->
          if List.mem (name a) d.idref_attribute_names then
            List.iter
              (fun tok ->
                let prev = Option.value ~default:[] (Hashtbl.find_opt tbl tok) in
                Hashtbl.replace tbl tok (a :: prev))
              (whitespace_tokens a.content))
        n.attributes
  in
  iter_subtree visit r;
  Hashtbl.iter (fun k v -> Hashtbl.replace tbl k (List.rev v)) tbl;
  d.idref_index <- Some tbl;
  tbl

let lookup_idref r v =
  let r = root r in
  let d = doc_of_root r in
  let tbl =
    match d.idref_index with Some t -> t | None -> build_idref_index r d
  in
  Option.value ~default:[] (Hashtbl.find_opt tbl v)

let set_uri r u = (doc_of_root (root r)).uri <- Some u
let uri r = match (root r).doc with Some d -> d.uri | None -> None
let compare_doc_order a b = Int.compare a.id b.id
let equal a b = a.id = b.id

let subtree_size n =
  let k = ref 0 in
  iter_subtree (fun _ -> incr k) n;
  !k

(* Largest id in the subtree of [n] (attributes included): with preorder
   ids, the subtree occupies exactly the interval [n.id, subtree_max_id n],
   found by descending the rightmost spine. *)
let rec subtree_max_id (n : t) =
  let nc = Array.length n.children in
  if nc > 0 then subtree_max_id n.children.(nc - 1)
  else
    let na = Array.length n.attributes in
    if na > 0 then n.attributes.(na - 1).id else n.id

(* The name index is only sound if ids really are preorder within this
   tree (document order = id order, so each bucket is doc-ordered and
   subtree containment is an id-interval test). All constructors
   guarantee this, but we validate during the build walk and disable
   the index for the whole tree if the invariant ever fails. *)
let build_name_index r d =
  let tbl : (string, t list ref) Hashtbl.t = Hashtbl.create 256 in
  let prev = ref (r.id - 1) in
  let ok = ref true in
  let check (n : t) =
    if n.id <= !prev then ok := false;
    prev := n.id
  in
  let rec visit n =
    check n;
    Array.iter check n.attributes;
    (if n.kind = Element then
       let key = name n in
       match Hashtbl.find_opt tbl key with
       | Some l -> l := n :: !l
       | None -> Hashtbl.add tbl key (ref [ n ]));
    Array.iter visit n.children
  in
  visit r;
  if !ok then begin
    let out = Hashtbl.create (max 16 (Hashtbl.length tbl)) in
    Hashtbl.iter
      (fun k l -> Hashtbl.replace out k (Array.of_list (List.rev !l)))
      tbl;
    d.name_index <- Ni_built out;
    Some out
  end
  else begin
    d.name_index <- Ni_disabled;
    None
  end

let elements_by_name n nm =
  let r = root n in
  let d = doc_of_root r in
  let tbl =
    match d.name_index with
    | Ni_built t -> Some t
    | Ni_disabled -> None
    | Ni_unbuilt -> build_name_index r d
  in
  match tbl with
  | None -> None
  | Some t -> Some (Option.value ~default:[||] (Hashtbl.find_opt t nm))

let pp ppf n =
  match n.kind with
  | Document -> Format.fprintf ppf "document-node(#%d)" n.id
  | Element -> Format.fprintf ppf "<%s>#%d" (name n) n.id
  | Attribute -> Format.fprintf ppf "@%s=%S#%d" (name n) n.content n.id
  | Text -> Format.fprintf ppf "text(%S)#%d" n.content n.id
  | Comment -> Format.fprintf ppf "comment(#%d)" n.id
  | Pi -> Format.fprintf ppf "pi(%s)#%d" (name n) n.id
