type kind = Document | Element | Attribute | Text | Comment | Pi

type t = {
  id : int;
  kind : kind;
  name : Qname.t option;
  mutable content : string;
  mutable parent : t option;
  mutable children : t array;
  mutable attributes : t array;
  mutable doc : doc option;
}

and doc = {
  mutable uri : string option;
  mutable id_attribute_names : string list;
  mutable id_index : (string, t) Hashtbl.t option;
  mutable idref_attribute_names : string list;
  mutable idref_index : (string, t list) Hashtbl.t option;
      (** ID token → IDREF-typed attribute nodes referring to it *)
  mutable name_index : name_index;
}

and name_index =
  | Ni_unbuilt
  | Ni_disabled  (** preorder id validation failed; callers must walk *)
  | Ni_built of (string, t array) Hashtbl.t
      (** element name → elements with that name, in document order *)

type spec =
  | E of string * (string * string) list * spec list
  | T of string
  | C of string
  | P of string * string

let counter = ref 0

let fresh_id () =
  incr counter;
  !counter

let allocated () = !counter

let mk kind name content =
  { id = fresh_id (); kind; name; content;
    parent = None; children = [||]; attributes = [||]; doc = None }

(* Ids are assigned in preorder: the node itself, then its attributes,
   then its children — this makes document order coincide with id
   order. *)
let rec build spec =
  match spec with
  | T s -> mk Text None s
  | C s -> mk Comment None s
  | P (target, s) -> mk Pi (Some (Qname.of_string target)) s
  | E (name, attrs, kids) ->
    let e = mk Element (Some (Qname.of_string name)) "" in
    let build_attr (an, av) =
      let a = mk Attribute (Some (Qname.of_string an)) av in
      a.parent <- Some e;
      a
    in
    e.attributes <- Array.of_list (List.map build_attr attrs);
    let build_kid k =
      let c = build k in
      c.parent <- Some e;
      c
    in
    e.children <- Array.of_list (List.map build_kid kids);
    e

let of_spec ?uri ?(id_attrs = []) spec =
  let d = mk Document None "" in
  d.doc <- Some { uri; id_attribute_names = id_attrs; id_index = None;
      idref_attribute_names = []; idref_index = None; name_index = Ni_unbuilt };
  let c = build spec in
  c.parent <- Some d;
  d.children <- [| c |];
  d

let rec deep_copy n =
  match n.kind with
  | Text -> mk Text None n.content
  | Comment -> mk Comment None n.content
  | Pi -> mk Pi n.name n.content
  | Attribute -> mk Attribute n.name n.content
  | Element ->
    let e = mk Element n.name "" in
    let copy_into c =
      let c' = deep_copy c in
      c'.parent <- Some e;
      c'
    in
    e.attributes <- Array.map copy_into n.attributes;
    e.children <- Array.map copy_into n.children;
    e
  | Document ->
    let d = mk Document None "" in
    d.doc <- Some { uri = None; id_attribute_names = []; id_index = None;
      idref_attribute_names = []; idref_index = None; name_index = Ni_unbuilt };
    let copy_into c =
      let c' = deep_copy c in
      c'.parent <- Some d;
      c'
    in
    d.children <- Array.map copy_into n.children;
    d

let element name ~attrs kids =
  let e = mk Element (Some (Qname.of_string name)) "" in
  let attr (an, av) =
    let a = mk Attribute (Some (Qname.of_string an)) av in
    a.parent <- Some e;
    a
  in
  e.attributes <- Array.of_list (List.map attr attrs);
  (* XQuery element construction copies its content — unconditionally:
     content nodes were built before this element, so adopting them
     as-is would give children smaller ids than their parent and break
     the id-is-document-order invariant. A document child contributes
     its children (element content semantics). *)
  let adopt k =
    let k' = deep_copy k in
    k'.parent <- Some e;
    k'
  in
  let kids =
    List.concat_map
      (fun k ->
        match k.kind with Document -> Array.to_list k.children | _ -> [ k ])
      kids
  in
  e.children <- Array.of_list (List.map adopt kids);
  e

let text s = mk Text None s
let comment s = mk Comment None s
let attribute n v = mk Attribute (Some (Qname.of_string n)) v

let document kids =
  let d = mk Document None "" in
  d.doc <- Some { uri = None; id_attribute_names = []; id_index = None;
      idref_attribute_names = []; idref_index = None; name_index = Ni_unbuilt };
  let adopt k =
    let k' = deep_copy k in
    k'.parent <- Some d;
    k'
  in
  let kids =
    List.concat_map
      (fun k ->
        match k.kind with Document -> Array.to_list k.children | _ -> [ k ])
      kids
  in
  d.children <- Array.of_list (List.map adopt kids);
  d

let rec root n = match n.parent with None -> n | Some p -> root p
let parent n = n.parent
let children n = Array.to_list n.children
let attributes n = Array.to_list n.attributes

let string_value n =
  match n.kind with
  | Text | Comment | Pi | Attribute -> n.content
  | Element | Document ->
    let buf = Buffer.create 64 in
    let rec go n =
      match n.kind with
      | Text -> Buffer.add_string buf n.content
      | Element | Document -> Array.iter go n.children
      | Attribute | Comment | Pi -> ()
    in
    go n;
    Buffer.contents buf

let name n = match n.name with None -> "" | Some q -> Qname.to_string q
let local_name n = match n.name with None -> "" | Some q -> Qname.local q

let doc_of_root r =
  match r.doc with
  | Some d -> d
  | None ->
    let d = { uri = None; id_attribute_names = []; id_index = None;
      idref_attribute_names = []; idref_index = None; name_index = Ni_unbuilt } in
    r.doc <- Some d;
    d

let register_id_attribute r an =
  let r = root r in
  let d = doc_of_root r in
  if not (List.mem an d.id_attribute_names) then
    d.id_attribute_names <- an :: d.id_attribute_names;
  d.id_index <- None

let register_idref_attribute r an =
  let r = root r in
  let d = doc_of_root r in
  if not (List.mem an d.idref_attribute_names) then
    d.idref_attribute_names <- an :: d.idref_attribute_names;
  d.idref_index <- None

let rec iter_subtree f n =
  f n;
  Array.iter (iter_subtree f) n.children

let build_id_index r d =
  let tbl = Hashtbl.create 256 in
  let visit n =
    if n.kind = Element then
      Array.iter
        (fun a ->
          if List.mem (name a) d.id_attribute_names then
            if not (Hashtbl.mem tbl a.content) then
              Hashtbl.add tbl a.content n)
        n.attributes
  in
  iter_subtree visit r;
  d.id_index <- Some tbl;
  tbl

let lookup_id r v =
  let r = root r in
  let d = doc_of_root r in
  let tbl =
    match d.id_index with Some t -> t | None -> build_id_index r d
  in
  Hashtbl.find_opt tbl v

let whitespace_tokens s =
  String.split_on_char ' ' s
  |> List.concat_map (String.split_on_char '\n')
  |> List.concat_map (String.split_on_char '\t')
  |> List.filter (fun x -> x <> "")

let build_idref_index r d =
  let tbl = Hashtbl.create 256 in
  let visit n =
    if n.kind = Element then
      Array.iter
        (fun a ->
          if List.mem (name a) d.idref_attribute_names then
            List.iter
              (fun tok ->
                let prev = Option.value ~default:[] (Hashtbl.find_opt tbl tok) in
                Hashtbl.replace tbl tok (a :: prev))
              (whitespace_tokens a.content))
        n.attributes
  in
  iter_subtree visit r;
  Hashtbl.iter (fun k v -> Hashtbl.replace tbl k (List.rev v)) tbl;
  d.idref_index <- Some tbl;
  tbl

let lookup_idref r v =
  let r = root r in
  let d = doc_of_root r in
  let tbl =
    match d.idref_index with Some t -> t | None -> build_idref_index r d
  in
  Option.value ~default:[] (Hashtbl.find_opt tbl v)

let set_uri r u = (doc_of_root (root r)).uri <- Some u
let uri r = match (root r).doc with Some d -> d.uri | None -> None
let compare_doc_order a b = Int.compare a.id b.id
let equal a b = a.id = b.id

let subtree_size n =
  let k = ref 0 in
  iter_subtree (fun _ -> incr k) n;
  !k

(* Largest id in the subtree of [n] (attributes included): with preorder
   ids, the subtree occupies exactly the interval [n.id, subtree_max_id n],
   found by descending the rightmost spine. *)
let rec subtree_max_id (n : t) =
  let nc = Array.length n.children in
  if nc > 0 then subtree_max_id n.children.(nc - 1)
  else
    let na = Array.length n.attributes in
    if na > 0 then n.attributes.(na - 1).id else n.id

(* The name index is only sound if ids really are preorder within this
   tree (document order = id order, so each bucket is doc-ordered and
   subtree containment is an id-interval test). All constructors
   guarantee this, but we validate during the build walk and disable
   the index for the whole tree if the invariant ever fails. *)
let build_name_index r d =
  let tbl : (string, t list ref) Hashtbl.t = Hashtbl.create 256 in
  let prev = ref (r.id - 1) in
  let ok = ref true in
  let check (n : t) =
    if n.id <= !prev then ok := false;
    prev := n.id
  in
  let rec visit n =
    check n;
    Array.iter check n.attributes;
    (if n.kind = Element then
       let key = name n in
       match Hashtbl.find_opt tbl key with
       | Some l -> l := n :: !l
       | None -> Hashtbl.add tbl key (ref [ n ]));
    Array.iter visit n.children
  in
  visit r;
  if !ok then begin
    let out = Hashtbl.create (max 16 (Hashtbl.length tbl)) in
    Hashtbl.iter
      (fun k l -> Hashtbl.replace out k (Array.of_list (List.rev !l)))
      tbl;
    d.name_index <- Ni_built out;
    Some out
  end
  else begin
    d.name_index <- Ni_disabled;
    None
  end

let elements_by_name n nm =
  let r = root n in
  let d = doc_of_root r in
  let tbl =
    match d.name_index with
    | Ni_built t -> Some t
    | Ni_disabled -> None
    | Ni_unbuilt -> build_name_index r d
  in
  match tbl with
  | None -> None
  | Some t -> Some (Option.value ~default:[||] (Hashtbl.find_opt t nm))

(* ------------------------------------------------------------------ *)
(* Patch rebuild                                                       *)
(* ------------------------------------------------------------------ *)

type patch_action =
  | Pa_delete
  | Pa_replace of t
  | Pa_insert_child of t * [ `First | `Last ]
  | Pa_insert_sibling of t * [ `Before | `After ]
  | Pa_set_text of string

(* In-place edits would break the id-is-document-order invariant (a
   node inserted mid-tree cannot receive an id between its neighbours'),
   which the accumulator bitmaps, ddo and the name index all rely on.
   So a patch rebuilds the whole tree with fresh preorder ids — an
   O(|doc|) pointer walk with no query evaluation — and reports how old
   ids map to surviving new nodes, which inserted subtrees are new, and
   which old ids disappeared. *)
let rebuild_patched old_root ~target ~action =
  let remap : (int, t) Hashtbl.t = Hashtbl.create 1024 in
  let inserted = ref [] in
  let deleted = ref [] in
  let record_deleted old =
    let rec go n =
      deleted := n.id :: !deleted;
      Array.iter (fun a -> deleted := a.id :: !deleted) n.attributes;
      Array.iter go n.children
    in
    go old
  in
  (* Templates are deep-copied at their splice point, so the copies'
     fresh ids land exactly where document order puts them. *)
  let insert_copy template =
    let n = deep_copy template in
    inserted := n :: !inserted;
    n
  in
  let remember old n =
    Hashtbl.replace remap old.id n;
    n
  in
  let rec copy_kids olds =
    List.concat_map
      (fun c ->
        if c == target then
          match action with
          | Pa_delete ->
            record_deleted c;
            []
          | Pa_insert_sibling (tpl, `Before) ->
            let n = insert_copy tpl in
            let c' = copy_one c in
            [ n; c' ]
          | Pa_insert_sibling (tpl, `After) ->
            let c' = copy_one c in
            let n = insert_copy tpl in
            [ c'; n ]
          | Pa_replace _ | Pa_insert_child _ | Pa_set_text _ -> [ copy_one c ]
        else [ copy_one c ])
      (Array.to_list olds)
  and copy_one old =
    if old == target then
      match action with
      | Pa_replace tpl ->
        record_deleted old;
        insert_copy tpl
      | Pa_set_text text when old.kind = Text || old.kind = Comment ->
        remember old (mk old.kind None text)
      | _ -> copy_plain old
    else copy_plain old
  and copy_plain old =
    match old.kind with
    | Text -> remember old (mk Text None old.content)
    | Comment -> remember old (mk Comment None old.content)
    | Pi -> remember old (mk Pi old.name old.content)
    | Attribute -> remember old (mk Attribute old.name old.content)
    | Element ->
      let e = remember old (mk Element old.name "") in
      let attrs =
        Array.map
          (fun a ->
            let a' = remember a (mk Attribute a.name a.content) in
            a'.parent <- Some e;
            a')
          old.attributes
      in
      e.attributes <- attrs;
      let kids =
        if old == target then
          match action with
          | Pa_insert_child (tpl, `First) ->
            let n = insert_copy tpl in
            n :: copy_kids old.children
          | Pa_insert_child (tpl, `Last) ->
            let kids = copy_kids old.children in
            let n = insert_copy tpl in
            kids @ [ n ]
          | Pa_set_text text ->
            Array.iter record_deleted old.children;
            let tn = mk Text None text in
            inserted := tn :: !inserted;
            [ tn ]
          | Pa_delete | Pa_replace _ | Pa_insert_sibling _ ->
            copy_kids old.children
        else copy_kids old.children
      in
      let kids = Array.of_list kids in
      Array.iter (fun c -> c.parent <- Some e) kids;
      e.children <- kids;
      e
    | Document ->
      let d = remember old (mk Document None "") in
      let meta =
        match old.doc with
        | Some m ->
          { uri = m.uri; id_attribute_names = m.id_attribute_names;
            id_index = None; idref_attribute_names = m.idref_attribute_names;
            idref_index = None; name_index = Ni_unbuilt }
        | None ->
          { uri = None; id_attribute_names = []; id_index = None;
            idref_attribute_names = []; idref_index = None;
            name_index = Ni_unbuilt }
      in
      d.doc <- Some meta;
      let kids = Array.of_list (copy_kids old.children) in
      Array.iter (fun c -> c.parent <- Some d) kids;
      d.children <- kids;
      d
  in
  let new_root = copy_one old_root in
  (new_root, remap, List.rev !inserted, !deleted)

let pp ppf n =
  match n.kind with
  | Document -> Format.fprintf ppf "document-node(#%d)" n.id
  | Element -> Format.fprintf ppf "<%s>#%d" (name n) n.id
  | Attribute -> Format.fprintf ppf "@%s=%S#%d" (name n) n.content n.id
  | Text -> Format.fprintf ppf "text(%S)#%d" n.content n.id
  | Comment -> Format.fprintf ppf "comment(#%d)" n.id
  | Pi -> Format.fprintf ppf "pi(%s)#%d" (name n) n.id
