(** XQuery items and item sequences, with the node-sequence operations
    the IFP semantics is built on.

    The paper's set-equality [s=] (Definition 2.1) disregards duplicates
    and order; for node sequences it coincides with equality after
    [fs:distinct-doc-order] ({!ddo}), which this module implements. *)

type t = N of Node.t | A of Atom.t

type seq = t list

val node : Node.t -> t
val atom : Atom.t -> t

(** [as_node_seq who s] checks that [s] contains nodes only and returns
    them; raises [Atom.Type_error] otherwise ([who] names the operation
    for the error message). *)
val as_node_seq : string -> seq -> Node.t list

(** [sort_uniq_nodes ns] is [ns] in document order without duplicate
    identities. Detects already-sorted inputs in one pass (the common
    case for axis-step and fixpoint outputs) and only falls back to a
    full sort otherwise; see {!Counters}. *)
val sort_uniq_nodes : Node.t list -> Node.t list

(** Node-level kernels underlying {!union}/{!except}/{!intersect}:
    linear merges of sorted runs (inputs are normalized with
    {!sort_uniq_nodes} first). Results are in document order,
    duplicate free. *)
val union_nodes : Node.t list -> Node.t list -> Node.t list

val except_nodes : Node.t list -> Node.t list -> Node.t list
val intersect_nodes : Node.t list -> Node.t list -> Node.t list

(** [fs:distinct-doc-order]: sort by document order, remove duplicate
    node identities. Requires a node-only sequence. *)
val ddo : seq -> seq

(** Node-set union / except / intersect ([union], [except], [intersect]
    operators) — results in document order, duplicate-free. *)
val union : seq -> seq -> seq

val except : seq -> seq -> seq
val intersect : seq -> seq -> seq

(** Set-equality [s=] of Definition 2.1: equality modulo duplicates and
    order. Atoms compare by value equality, nodes by identity. *)
val set_equal : seq -> seq -> bool

(** Effective boolean value (XPath semantics): empty is false, a
    sequence whose first item is a node is true, a single atom maps by
    {!Atom.to_bool}; other sequences raise a type error. *)
val effective_boolean : seq -> bool

(** Atomization: nodes become (untyped) string atoms via their string
    value, atoms pass through. *)
val atomize : seq -> Atom.t list

(** String value of a single item. *)
val string_of_item : t -> string

(** [fn:deep-equal] on two sequences: pairwise, atoms by value, nodes by
    structural comparison (name, attributes as sets, children in
    order). *)
val deep_equal : seq -> seq -> bool

(** Identity-based membership/cardinality helpers for fixpoints. *)
val node_ids : seq -> Node_set.t

val equal_item : t -> t -> bool
val pp : Format.formatter -> t -> unit
val pp_seq : Format.formatter -> seq -> unit
