type t = N of Node.t | A of Atom.t

type seq = t list

let node n = N n
let atom a = A a

let as_node_seq who s =
  List.map
    (function
      | N n -> n
      | A a ->
        Atom.type_error "%s: expected a sequence of nodes, got atom %s" who
          (Atom.to_string a))
    s

(* One pass over a node list: its length and whether ids are strictly
   increasing (strictly sorted = already in doc order and duplicate
   free). *)
let scan_nodes ns =
  let rec go len prev sorted = function
    | [] -> (sorted, len)
    | (n : Node.t) :: rest ->
      go (len + 1) n.Node.id (sorted && n.Node.id > prev) rest
  in
  go 0 min_int true ns

let sort_uniq_nodes ns =
  let (sorted, len) = scan_nodes ns in
  incr Counters.merges;
  Counters.merged_items := !Counters.merged_items + len;
  if sorted then ns
  else begin
    incr Counters.fallback_sorts;
    let sorted = List.sort Node.compare_doc_order ns in
    let rec dedup = function
      | a :: (b :: _ as rest) ->
        if Node.equal a b then dedup rest else a :: dedup rest
      | l -> l
    in
    dedup sorted
  end

(* Linear merges over sorted, duplicate-free runs. All tail-recursive:
   fixpoint accumulators get long. *)
let rec merge_union acc a b =
  match (a, b) with
  | ([], rest) | (rest, []) -> List.rev_append acc rest
  | ((x : Node.t) :: a', (y : Node.t) :: b') ->
    if x.Node.id < y.Node.id then merge_union (x :: acc) a' b
    else if x.Node.id > y.Node.id then merge_union (y :: acc) a b'
    else merge_union (x :: acc) a' b'

let rec merge_except acc a b =
  match a with
  | [] -> List.rev acc
  | (x : Node.t) :: a' -> (
    match b with
    | [] -> List.rev_append acc a
    | (y : Node.t) :: b' ->
      if x.Node.id < y.Node.id then merge_except (x :: acc) a' b
      else if x.Node.id > y.Node.id then merge_except acc a b'
      else merge_except acc a' b')

let rec merge_intersect acc a b =
  match (a, b) with
  | ([], _) | (_, []) -> List.rev acc
  | ((x : Node.t) :: a', (y : Node.t) :: b') ->
    if x.Node.id < y.Node.id then merge_intersect acc a' b
    else if x.Node.id > y.Node.id then merge_intersect acc a b'
    else merge_intersect (x :: acc) a' b'

let union_nodes na nb = merge_union [] (sort_uniq_nodes na) (sort_uniq_nodes nb)
let except_nodes na nb = merge_except [] (sort_uniq_nodes na) (sort_uniq_nodes nb)

let intersect_nodes na nb =
  merge_intersect [] (sort_uniq_nodes na) (sort_uniq_nodes nb)

let ddo s = List.map node (sort_uniq_nodes (as_node_seq "fs:ddo" s))

let union a b =
  let na = as_node_seq "union" a and nb = as_node_seq "union" b in
  List.map node (union_nodes na nb)

let except a b =
  let na = as_node_seq "except" a and nb = as_node_seq "except" b in
  List.map node (except_nodes na nb)

let intersect a b =
  let na = as_node_seq "intersect" a and nb = as_node_seq "intersect" b in
  List.map node (intersect_nodes na nb)

(* Set-equality s= over general sequences: split into node part (by
   identity) and atom part (by value).

   [Atom.equal_value] is not transitive across numeric strings
   (Int 1 ~ Str "1" and Int 1 ~ Str "01", yet Str "1" <> Str "01"), so a
   key-based comparison is only sound when numbers and numeric-looking
   strings don't both occur. We detect that case and keep the original
   pairwise comparison for it; everything else goes through an O(n log n)
   sort of comparison keys. *)
module Atom_set = struct
  let mem a l = List.exists (Atom.equal_value a) l

  let of_seq s =
    List.fold_left (fun acc a -> if mem a acc then acc else a :: acc) [] s

  let equal_pairwise a b =
    let a = of_seq a and b = of_seq b in
    List.length a = List.length b && List.for_all (fun x -> mem x b) a

  type key = KB of bool | KN of float | KS of string

  let key = function
    | Atom.Bool b -> KB b
    | Atom.Int i -> KN (float_of_int i)
    | Atom.Dbl f -> KN f
    | Atom.Str s -> KS s

  (* Stdlib.compare gives nan = nan, matching Atom.compare_value. *)
  let compare_key (x : key) (y : key) = Stdlib.compare x y

  let numeric_crossover s =
    let has_num = ref false and has_numstr = ref false in
    List.iter
      (function
        | Atom.Int _ | Atom.Dbl _ -> has_num := true
        | Atom.Str str ->
          if float_of_string_opt (String.trim str) <> None then
            has_numstr := true
        | Atom.Bool _ -> ())
      s;
    !has_num && !has_numstr

  let rec equal_keys a b =
    match (a, b) with
    | ([], []) -> true
    | (x :: a', y :: b') -> compare_key x y = 0 && equal_keys a' b'
    | _ -> false

  let equal a b =
    if numeric_crossover (List.rev_append a b) then equal_pairwise a b
    else
      equal_keys
        (List.sort_uniq compare_key (List.map key a))
        (List.sort_uniq compare_key (List.map key b))
end

let set_equal a b =
  let nodes_of = List.filter_map (function N n -> Some n | A _ -> None) in
  let atoms_of = List.filter_map (function A a -> Some a | N _ -> None) in
  Node_set.equal (Node_set.of_nodes (nodes_of a)) (Node_set.of_nodes (nodes_of b))
  && Atom_set.equal (atoms_of a) (atoms_of b)

let effective_boolean = function
  | [] -> false
  | [ A a ] -> Atom.to_bool a
  | N _ :: _ -> true
  | _ ->
    Atom.type_error
      "effective boolean value undefined for a multi-atom sequence"

let atomize s =
  List.map
    (function A a -> a | N n -> Atom.Str (Node.string_value n))
    s

let string_of_item = function
  | A a -> Atom.to_string a
  | N n -> Node.string_value n

let rec deep_equal_node (a : Node.t) (b : Node.t) =
  a.Node.kind = b.Node.kind
  && (match (a.Node.name, b.Node.name) with
     | (None, None) -> true
     | (Some x, Some y) -> Qname.equal x y
     | _ -> false)
  && (match a.Node.kind with
     | Node.Text | Node.Comment | Node.Pi | Node.Attribute ->
       String.equal a.Node.content b.Node.content
     | Node.Element | Node.Document -> true)
  && Array.length a.Node.attributes = Array.length b.Node.attributes
  && List.for_all
       (fun (x : Node.t) ->
         Array.exists
           (fun (y : Node.t) ->
             Node.name x = Node.name y
             && String.equal x.Node.content y.Node.content)
           b.Node.attributes)
       (Array.to_list a.Node.attributes)
  && Array.length a.Node.children = Array.length b.Node.children
  && List.for_all2 deep_equal_node
       (Array.to_list a.Node.children)
       (Array.to_list b.Node.children)

let deep_equal a b =
  List.length a = List.length b
  && List.for_all2
       (fun x y ->
         match (x, y) with
         | (A u, A v) -> Atom.equal_value u v
         | (N u, N v) -> deep_equal_node u v
         | _ -> false)
       a b

let node_ids s =
  Node_set.of_nodes
    (List.filter_map (function N n -> Some n | A _ -> None) s)

let equal_item a b =
  match (a, b) with
  | (N x, N y) -> Node.equal x y
  | (A x, A y) -> Atom.equal_value x y
  | _ -> false

let pp ppf = function
  | N n -> Node.pp ppf n
  | A a -> Atom.pp ppf a

let pp_seq ppf s =
  Format.fprintf ppf "(@[%a@])"
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ",@ ") pp)
    s
