module Xdm = Fixq_xdm
module Lang = Fixq_lang
module Algebra_ir = Fixq_algebra
module Store = Fixq_store

module Item = Xdm.Item
module Eval = Lang.Eval
module Stats = Lang.Stats
module Compile = Algebra_ir.Compile
module Plan = Algebra_ir.Plan
module Plan_eval = Algebra_ir.Plan_eval
module Push = Algebra_ir.Push
module Optimize = Algebra_ir.Optimize
module Render_sql = Algebra_ir.Render_sql
module Sqlrec = Fixq_sqlrec.Sqlrec

type mode = Naive | Delta | Auto

type engine = Interpreter of mode | Algebra of mode | Sql of mode

type report = {
  result : Item.seq;
  engine : engine;
  used_delta : bool option;
  nodes_fed : int;
  depth : int;
  wall_ms : float;
  fallbacks : string list;
  semiring : string option;
  annotations : (string * string) list;
}

exception Error of string

(* Raised (from the stats iteration hook) when a per-request wall-clock
   deadline passes mid-fixpoint; converted to [Error] in run_program. *)
exception Deadline_exceeded

let strategy_of_mode = function
  | Naive -> Eval.Naive
  | Delta -> Eval.Delta
  | Auto -> Eval.Auto

let now_ms () = Unix.gettimeofday () *. 1000.0

(* The hybrid algebraic engine: the interpreter drives the query, every
   IFP site is compiled once (plans are cached per body expression and
   carry rebindable leaves for the scope variables) and executed as a
   µ/µ∆ plan on a shared plan evaluator, so loop-invariant relations
   persist across the many fixpoints of a query like the bidder
   network. *)
module Expr_tbl = Hashtbl.Make (struct
  type t = Lang.Ast.expr

  let equal = ( == )
  let hash = Hashtbl.hash
end)

type compiled_site = {
  cs : Compile.compiled;
  used_refs : (string * int) list;
      (** binding refs that actually occur in the plan *)
  push_distributive : bool;
  mutable session : (Xdm.Item.seq list * Plan_eval.session) option;
      (** last used-binding values (physical) and the session memo *)
}

let install_algebra_handler ~registry ~max_iterations ~stratified ~mode
    ~fallbacks ~used_delta ev =
  let pe =
    Plan_eval.create ~registry ~max_iterations ~stats:(Eval.stats ev) ()
  in
  let cache : compiled_site Expr_tbl.t = Expr_tbl.create 8 in
  let failed : string Expr_tbl.t = Expr_tbl.create 8 in
  Eval.set_ifp_handler ev
    (Some
       (fun (site : Eval.ifp_site) ->
         if site.Eval.ifp_accum <> None then begin
           (* Annotated sites: Table-1 relations carry node identities,
              not semiring annotations — both engines run the
              interpreter's semiring kernel, keeping results equal. *)
           if not (Expr_tbl.mem failed site.Eval.ifp_body) then begin
             let reason =
               "accumulate by: annotated fixpoints run on the \
                interpreter's semiring kernel"
             in
             fallbacks := reason :: !fallbacks;
             Expr_tbl.replace failed site.Eval.ifp_body reason
           end;
           None
         end
         else if
           (* Definition 2.1 restricts IFP to node()*; decline atom
              seeds so both engines raise the same dynamic error *)
           List.exists
             (function Xdm.Item.A _ -> true | Xdm.Item.N _ -> false)
             site.Eval.ifp_seed
         then None
         else if Expr_tbl.mem failed site.Eval.ifp_body then None
         else
           let compiled =
             match Expr_tbl.find_opt cache site.Eval.ifp_body with
             | Some c -> Some c
             | None -> (
               let names =
                 List.map fst site.Eval.ifp_bindings
                 @ (if site.Eval.ifp_context <> None then [ "." ] else [])
               in
               match
                 Compile.body ~functions:(Eval.functions ev)
                   ~recursion_var:site.Eval.ifp_var ~bindings:names
                   site.Eval.ifp_body
               with
               | exception Compile.Unsupported reason ->
                 fallbacks := reason :: !fallbacks;
                 Expr_tbl.replace failed site.Eval.ifp_body reason;
                 None
               | cs ->
                 let cs =
                   { cs with Compile.body = Optimize.optimize cs.Compile.body }
                 in
                 let push_distributive =
                   (Push.check ~stratified ~fix_id:cs.Compile.fix_id
                      cs.Compile.body)
                     .Push.distributive
                 in
                 let used_refs =
                   List.filter
                     (fun (_, id) -> Plan.contains_fix_ref id cs.Compile.body)
                     cs.Compile.binding_refs
                 in
                 let c = { cs; used_refs; push_distributive; session = None } in
                 Expr_tbl.replace cache site.Eval.ifp_body c;
                 Some c)
           in
           match compiled with
           | None -> None
           | Some c ->
             let use_delta =
               match mode with
               | Naive -> false
               | Delta -> true
               | Auto -> c.push_distributive
             in
             used_delta := Some use_delta;
             let fix =
               { Plan.fix_id = c.cs.Compile.fix_id;
                 seed = Compile.seed_table site.Eval.ifp_seed;
                 body = c.cs.Compile.body }
             in
             let plan = if use_delta then Plan.Mu_delta fix else Plan.Mu fix in
             let value_of (name, _) =
               if String.equal name "." then
                 match site.Eval.ifp_context with
                 | Some it -> [ it ]
                 | None -> []
               else
                 Option.value ~default:[]
                   (List.assoc_opt name site.Eval.ifp_bindings)
             in
             let values = List.map value_of c.used_refs in
             let bindings =
               List.map2
                 (fun (_, id) items -> (id, Compile.items_relation items))
                 c.used_refs values
             in
             let session =
               match c.session with
               | Some (prev, s)
                 when List.length prev = List.length values
                      && List.for_all2 ( == ) prev values ->
                 s
               | _ ->
                 let s = Plan_eval.new_session () in
                 c.session <- Some (values, s);
                 s
             in
             let rel = Plan_eval.run_with pe ~session bindings plan in
             Some (Compile.result_items rel)))

(* The SQL:1999 engine: the interpreter drives the query; every IFP
   site whose optimized plan renders to a linear WITH RECURSIVE query
   (see {!Render_sql}) runs on the {!Fixq_sqlrec} evaluator over
   materialized document relations. Non-renderable sites fall back to
   the interpreter — results stay byte-identical either way, the
   rendering only changes which fixpoint loop produces them. *)
type sql_site = {
  sql_cs : Compile.compiled;
  sql_distributive : bool;
  mutable sql_prep : Render_sql.prepared option;
      (** materialization, reusable while the seed's document root is
          unchanged (e.g. the per-course fixpoints of Rule 5) *)
}

let install_sql_handler ~mode ~fallbacks ~used_delta ev =
  let cache : sql_site Expr_tbl.t = Expr_tbl.create 8 in
  let failed : string Expr_tbl.t = Expr_tbl.create 8 in
  let stats = Eval.stats ev in
  let decline reason site =
    if not (Expr_tbl.mem failed site.Eval.ifp_body) then begin
      fallbacks := reason :: !fallbacks;
      Expr_tbl.replace failed site.Eval.ifp_body reason
    end;
    None
  in
  Eval.set_ifp_handler ev
    (Some
       (fun (site : Eval.ifp_site) ->
         if site.Eval.ifp_accum <> None then
           decline
             "accumulate by: annotated fixpoints run on the interpreter's \
              semiring kernel"
             site
         else if
           List.exists
             (function Xdm.Item.A _ -> true | Xdm.Item.N _ -> false)
             site.Eval.ifp_seed
         then None (* Definition 2.1: let the interpreter raise *)
         else if Expr_tbl.mem failed site.Eval.ifp_body then None
         else
           let compiled =
             match Expr_tbl.find_opt cache site.Eval.ifp_body with
             | Some c -> Some c
             | None -> (
               let names =
                 List.map fst site.Eval.ifp_bindings
                 @ (if site.Eval.ifp_context <> None then [ "." ] else [])
               in
               match
                 Compile.body ~functions:(Eval.functions ev)
                   ~recursion_var:site.Eval.ifp_var ~bindings:names
                   site.Eval.ifp_body
               with
               | exception Compile.Unsupported reason ->
                 decline ("no SQL rendering: " ^ reason) site
               | cs ->
                 let cs =
                   { cs with Compile.body = Optimize.optimize cs.Compile.body }
                 in
                 (* Static renderability is a property of the body; a
                    failure here is permanent for the site. *)
                 (match
                    Render_sql.render ~fix_id:cs.Compile.fix_id cs.Compile.body
                  with
                 | Error reason -> decline ("no SQL rendering: " ^ reason) site
                 | Ok _ ->
                   let sql_distributive =
                     (Push.check ~stratified:false ~fix_id:cs.Compile.fix_id
                        cs.Compile.body)
                       .Push.distributive
                   in
                   let c = { sql_cs = cs; sql_distributive; sql_prep = None } in
                   Expr_tbl.replace cache site.Eval.ifp_body c;
                   Some c))
           in
           match compiled with
           | None -> None
           | Some c -> (
             let prep =
               match (c.sql_prep, site.Eval.ifp_seed) with
               | (Some p, Xdm.Item.N n :: _)
                 when Xdm.Node.equal (Xdm.Node.root n) p.Render_sql.root ->
                 Ok p
               | _ ->
                 Render_sql.prepare ~seed:site.Eval.ifp_seed
                   ~fix_id:c.sql_cs.Compile.fix_id c.sql_cs.Compile.body
             in
             match prep with
             | Error reason ->
               (* Seed-dependent: the same site may get a renderable
                  seed next time, so this is not a permanent failure. *)
               fallbacks := ("no SQL rendering: " ^ reason) :: !fallbacks;
               None
             | Ok p ->
               c.sql_prep <- Some p;
               let use_delta =
                 match mode with
                 | Naive -> false
                 | Delta -> true
                 | Auto -> c.sql_distributive
               in
               used_delta := Some use_delta;
               let seed_rows =
                 List.filter_map
                   (function
                     | Xdm.Item.N n -> Some (1, n.Xdm.Node.id)
                     | Xdm.Item.A _ -> None)
                   site.Eval.ifp_seed
               in
               let db = Render_sql.database p ~seed_rows in
               Stats.start_run stats;
               let r =
                 Sqlrec.run
                   ~on_round:(fun ~fed ~produced ~total ->
                     Stats.record_iteration stats ~fed ~produced
                       ~result_size:total)
                   ~algorithm:(if use_delta then Sqlrec.Delta else Sqlrec.Naive)
                   db p.Render_sql.query
               in
               let rows =
                 List.filter_map
                   (function
                     | [ Fixq_sqlrec.Sqldb.I it; Fixq_sqlrec.Sqldb.I id ] ->
                       Option.map
                         (fun n -> [| Algebra_ir.Value.Int it; Algebra_ir.Value.Nd n |])
                         (Hashtbl.find_opt p.Render_sql.tables.Render_sql.decode id)
                     | _ -> None)
                   r.Sqlrec.result.Fixq_sqlrec.Sqldb.rows
               in
               Some
                 (Compile.result_items
                    (Algebra_ir.Relation.create [ "iter"; "item" ] rows)))))

let run_program ?(registry = Xdm.Doc_registry.default)
    ?(max_iterations = 1_000_000) ?(stratified = false) ?domains
    ?chunk_threshold ?deadline ?round_hook ?max_call_depth ~engine p =
  let fallbacks = ref [] in
  let used_delta = ref None in
  let ev =
    match engine with
    | Interpreter mode ->
      Eval.create ~registry ~max_iterations ~stratified ?domains
        ?chunk_threshold ?max_call_depth ~strategy:(strategy_of_mode mode) ()
    | Algebra mode ->
      let ev =
        (* Interpreter strategy doubles as the fallback policy (and runs
           any IFP the compiler rejects, hence the parallel knobs). *)
        Eval.create ~registry ~max_iterations ~stratified ?domains
          ?chunk_threshold ?max_call_depth ~strategy:(strategy_of_mode mode) ()
      in
      install_algebra_handler ~registry ~max_iterations ~stratified ~mode
        ~fallbacks ~used_delta ev;
      ev
    | Sql mode ->
      let ev =
        Eval.create ~registry ~max_iterations ~stratified ?domains
          ?chunk_threshold ?max_call_depth ~strategy:(strategy_of_mode mode) ()
      in
      install_sql_handler ~mode ~fallbacks ~used_delta ev;
      ev
  in
  (match (deadline, round_hook) with
  | None, None -> ()
  | _ ->
    (* Cooperative: checked once per fixpoint round, on both engines
       (the plan evaluator shares this Stats.t). Straight-line queries
       without an IFP are not interrupted. *)
    Stats.set_iteration_hook (Eval.stats ev)
      (Some
         (fun () ->
           (match round_hook with None -> () | Some h -> h ());
           match deadline with
           | Some d when Unix.gettimeofday () > d -> raise Deadline_exceeded
           | _ -> ())));
  let t0 = now_ms () in
  let result =
    try Eval.run_program ev p with
    | Eval.Error m | Lang.Builtins.Error m | Plan_eval.Error m
    | Sqlrec.Error m ->
      raise (Error m)
    | Lang.Fixpoint.Diverged n ->
      raise (Error (Printf.sprintf "IFP diverged after %d iterations" n))
    | Deadline_exceeded -> raise (Error "deadline exceeded during IFP evaluation")
    | Xdm.Atom.Type_error m -> raise (Error ("type error: " ^ m))
  in
  let wall_ms = now_ms () -. t0 in
  let stats = Eval.stats ev in
  let used_delta =
    match engine with
    | Interpreter _ -> Eval.last_ifp_used_delta ev
    | Algebra _ | Sql _ -> (
      match !used_delta with
      | Some d -> Some d
      | None -> Eval.last_ifp_used_delta ev)
  in
  let semiring, annotations =
    match Eval.last_annotations ev with
    | None -> (None, [])
    | Some (kind, entries) ->
      ( Some (Fixq_semiring.Semiring.kind_to_string kind),
        List.map
          (fun (n, ann) ->
            ( Xdm.Serializer.seq_to_string [ Item.N n ],
              Fixq_semiring.Semiring.ann_to_string ann ))
          entries )
  in
  { result; engine; used_delta; nodes_fed = Stats.nodes_fed stats;
    depth = Stats.depth stats; wall_ms; fallbacks = List.rev !fallbacks;
    semiring; annotations }

let parse src =
  try Lang.Parser.parse_program src with
  | Lang.Parser.Error { line; col; msg } ->
    raise (Error (Printf.sprintf "parse error at %d:%d: %s" line col msg))
  | Lang.Lexer.Error { pos; msg } ->
    let line, col = Lang.Lexer.line_col_of src pos in
    raise (Error (Printf.sprintf "lex error at %d:%d: %s" line col msg))

let run ?registry ?max_iterations ?stratified ?domains ?chunk_threshold
    ?deadline ?round_hook ?max_call_depth ~engine src =
  run_program ?registry ?max_iterations ?stratified ?domains ?chunk_threshold
    ?deadline ?round_hook ?max_call_depth ~engine (parse src)

(* Capture the compiled plan of the first IFP encountered dynamically:
   install a capturing handler, then run the program on the interpreter.
   The handler fires at site entry — before any fixpoint iteration — so
   once the first site has been seen there is nothing left to learn and
   we abort the run.  Without the abort, preparing a divergent query
   would spin through the whole iteration budget just to capture a plan
   that was already in hand. *)
exception Plan_captured

let plan_of_first_ifp ?(registry = Xdm.Doc_registry.default)
    ?(max_iterations = 1_000_000) p =
  let captured = ref None in
  let ev = Eval.create ~registry ~max_iterations ~strategy:Eval.Naive () in
  Eval.set_ifp_handler ev
    (Some
       (fun (site : Eval.ifp_site) ->
         (match
            Compile.body ~functions:(Eval.functions ev)
              ~recursion_var:site.Eval.ifp_var
              ~bindings:
                (List.map fst site.Eval.ifp_bindings
                @ if site.Eval.ifp_context <> None then [ "." ] else [])
              site.Eval.ifp_body
          with
         | exception Compile.Unsupported _ -> ()
         | { Compile.fix_id; body; _ } -> captured := Some (fix_id, body));
         raise Plan_captured));
  (try ignore (Eval.run_program ev p) with _ -> ());
  !captured

(* The SQL:1999 rendering of the first IFP's (optimized) body — what
   the Sql engine would run at that site. [None] when the query has no
   compilable IFP at all. *)
let sql_of_first_ifp ?registry ?max_iterations p =
  match plan_of_first_ifp ?registry ?max_iterations p with
  | None -> None
  | Some (fix_id, plan) ->
    Some (Render_sql.render ~fix_id (Optimize.optimize plan))

(* One canonical child enumeration for whole-program expression walks
   (first-IFP lookup, IFP counting for the prepared-query layer, …). *)
let subexprs (e : Lang.Ast.expr) : Lang.Ast.expr list =
  match (e : Lang.Ast.expr) with
  | Lang.Ast.Sequence (a, b)
          | Lang.Ast.Union (a, b)
          | Lang.Ast.Except (a, b)
          | Lang.Ast.Intersect (a, b)
          | Lang.Ast.Path (a, b)
          | Lang.Ast.Filter (a, b)
          | Lang.Ast.Arith (_, a, b)
          | Lang.Ast.Gen_cmp (_, a, b)
          | Lang.Ast.Val_cmp (_, a, b)
          | Lang.Ast.Node_is (a, b)
          | Lang.Ast.Node_before (a, b)
          | Lang.Ast.Node_after (a, b)
          | Lang.Ast.And (a, b)
          | Lang.Ast.Or (a, b)
          | Lang.Ast.Range (a, b) ->
            [ a; b ]
          | Lang.Ast.Neg a
          | Lang.Ast.Text_constr a
          | Lang.Ast.Attr_constr (_, a)
          | Lang.Ast.Comment_constr a
          | Lang.Ast.Doc_constr a
          | Lang.Ast.Comp_elem (_, a)
          | Lang.Ast.Instance_of (a, _)
          | Lang.Ast.Cast (a, _, _)
          | Lang.Ast.Castable (a, _, _) ->
            [ a ]
          | Lang.Ast.For { source; body; _ } -> [ source; body ]
          | Lang.Ast.Sort { source; key; body; _ } -> [ source; key; body ]
          | Lang.Ast.Let { value; body; _ } -> [ value; body ]
          | Lang.Ast.If (a, b, c) -> [ a; b; c ]
          | Lang.Ast.Quantified (_, _, a, b) -> [ a; b ]
          | Lang.Ast.Call (_, args) -> args
          | Lang.Ast.Elem_constr (_, attrs, content) ->
            List.concat_map
              (fun (_, pieces) ->
                List.filter_map
                  (function
                    | Lang.Ast.A_lit _ -> None
                    | Lang.Ast.A_expr e -> Some e)
                  pieces)
              attrs
            @ content
          | Lang.Ast.Typeswitch (s, cases, _, d) ->
            (s :: List.map (fun (_, _, b) -> b) cases) @ [ d ]
  | Lang.Ast.Ifp { seed; body; accum; _ } -> (
    seed :: body
    ::
    (match accum with
    | Some { Lang.Ast.weight = Some w; _ } -> [ w ]
    | _ -> []))
  | Lang.Ast.Literal _ | Lang.Ast.Empty_seq | Lang.Ast.Var _
  | Lang.Ast.Context_item | Lang.Ast.Root | Lang.Ast.Axis_step _ ->
    []

let iter_exprs f (p : Lang.Ast.program) =
  let rec go e =
    f e;
    List.iter go (subexprs e)
  in
  go p.Lang.Ast.main;
  List.iter (fun fd -> go fd.Lang.Ast.body) p.Lang.Ast.functions

(* Literal doc("uri") references anywhere in the program — main
   expression, function bodies and global variable declarations. The
   cluster router keys document-sharded placement on these. *)
let doc_uris (p : Lang.Ast.program) =
  let seen = Hashtbl.create 4 in
  let uris = ref [] in
  let visit e =
    match (e : Lang.Ast.expr) with
    | Lang.Ast.Call ("doc", [ Lang.Ast.Literal (Xdm.Atom.Str u) ])
      when not (Hashtbl.mem seen u) ->
      Hashtbl.replace seen u ();
      uris := u :: !uris
    | _ -> ()
  in
  let rec go e =
    visit e;
    List.iter go (subexprs e)
  in
  go p.Lang.Ast.main;
  List.iter (fun fd -> go fd.Lang.Ast.body) p.Lang.Ast.functions;
  List.iter (fun (_, e) -> go e) p.Lang.Ast.variables;
  List.rev !uris

let first_ifp (p : Lang.Ast.program) =
  let found = ref None in
  iter_exprs
    (fun e ->
      match (e : Lang.Ast.expr) with
      | Lang.Ast.Ifp { var; body; _ } when !found = None ->
        found := Some (var, body)
      | _ -> ())
    p;
  !found

(* Conservative syntactic check that [e] evaluates to document-tree
   nodes only — never atoms, never freshly constructed nodes. The
   cluster's scatter gate needs this: gathered slices are merged by
   portable node identity (document uri, preorder rank); atoms and
   constructed nodes have none, and a single process emits them in
   engine-production order, which cannot be reconstructed from
   slices. The check itself lives in the analyzer
   ({!Fixq_analysis.Analyze.node_only}), shared with the divergence
   classifier; this delegate keeps existing call sites working. *)
let node_only = Fixq_analysis.Analyze.node_only

let count_ifps (p : Lang.Ast.program) =
  let n = ref 0 in
  iter_exprs
    (function Lang.Ast.Ifp _ -> incr n | _ -> ())
    p;
  !n

(* Rewrite the first IFP's seed to its [index]-th residue class modulo
   [count]: [seed] becomes [seed[(position() - 1) mod count = index]].
   Theorem 3.2 (distributivity) is exactly the licence to evaluate a
   distributive IFP on each slice separately and union the results —
   the cluster coordinator's scatter-gather applies this rewrite on one
   worker per replica. The rewrite itself is mode- and engine-agnostic:
   the sliced seed is an ordinary filter expression. *)
let partition_first_seed ~index ~count (p : Lang.Ast.program) =
  if count < 1 || index < 0 || index >= count then
    raise
      (Error
         (Printf.sprintf "invalid seed partition %d/%d" index count));
  let ilit n = Lang.Ast.Literal (Xdm.Atom.Int n) in
  let slice seed =
    Lang.Ast.Filter
      ( seed,
        Lang.Ast.Gen_cmp
          ( Lang.Ast.Eq,
            Lang.Ast.Arith
              ( Lang.Ast.Mod,
                Lang.Ast.Arith
                  (Lang.Ast.Sub, Lang.Ast.Call ("position", []), ilit 1),
                ilit count ),
            ilit index ) )
  in
  let done_ = ref false in
  let rec go e =
    if !done_ then e
    else
      match (e : Lang.Ast.expr) with
      | Lang.Ast.Ifp { var; seed; body; accum } ->
        done_ := true;
        Lang.Ast.Ifp { var; seed = slice seed; body; accum }
      | _ -> map_subexprs go e
  and map_subexprs f e =
    match (e : Lang.Ast.expr) with
    | Lang.Ast.Literal _ | Lang.Ast.Empty_seq | Lang.Ast.Var _
    | Lang.Ast.Context_item | Lang.Ast.Root | Lang.Ast.Axis_step _ ->
      e
    | Lang.Ast.Sequence (a, b) -> Lang.Ast.Sequence (f a, f b)
    | Lang.Ast.Union (a, b) -> Lang.Ast.Union (f a, f b)
    | Lang.Ast.Except (a, b) -> Lang.Ast.Except (f a, f b)
    | Lang.Ast.Intersect (a, b) -> Lang.Ast.Intersect (f a, f b)
    | Lang.Ast.Path (a, b) -> Lang.Ast.Path (f a, f b)
    | Lang.Ast.Filter (a, b) -> Lang.Ast.Filter (f a, f b)
    | Lang.Ast.For r ->
      Lang.Ast.For { r with source = f r.source; body = f r.body }
    | Lang.Ast.Sort r ->
      Lang.Ast.Sort
        { r with source = f r.source; key = f r.key; body = f r.body }
    | Lang.Ast.Let r ->
      Lang.Ast.Let { r with value = f r.value; body = f r.body }
    | Lang.Ast.If (c, t, e') -> Lang.Ast.If (f c, f t, f e')
    | Lang.Ast.Quantified (q, v, s, pr) -> Lang.Ast.Quantified (q, v, f s, f pr)
    | Lang.Ast.Arith (op, a, b) -> Lang.Ast.Arith (op, f a, f b)
    | Lang.Ast.Neg a -> Lang.Ast.Neg (f a)
    | Lang.Ast.Gen_cmp (c, a, b) -> Lang.Ast.Gen_cmp (c, f a, f b)
    | Lang.Ast.Val_cmp (c, a, b) -> Lang.Ast.Val_cmp (c, f a, f b)
    | Lang.Ast.Node_is (a, b) -> Lang.Ast.Node_is (f a, f b)
    | Lang.Ast.Node_before (a, b) -> Lang.Ast.Node_before (f a, f b)
    | Lang.Ast.Node_after (a, b) -> Lang.Ast.Node_after (f a, f b)
    | Lang.Ast.And (a, b) -> Lang.Ast.And (f a, f b)
    | Lang.Ast.Or (a, b) -> Lang.Ast.Or (f a, f b)
    | Lang.Ast.Range (a, b) -> Lang.Ast.Range (f a, f b)
    | Lang.Ast.Call (n, args) -> Lang.Ast.Call (n, List.map f args)
    | Lang.Ast.Elem_constr (n, attrs, content) ->
      Lang.Ast.Elem_constr
        ( n,
          List.map
            (fun (an, pieces) ->
              ( an,
                List.map
                  (function
                    | Lang.Ast.A_lit l -> Lang.Ast.A_lit l
                    | Lang.Ast.A_expr e -> Lang.Ast.A_expr (f e))
                  pieces ))
            attrs,
          List.map f content )
    | Lang.Ast.Comp_elem (n, a) -> Lang.Ast.Comp_elem (n, f a)
    | Lang.Ast.Text_constr a -> Lang.Ast.Text_constr (f a)
    | Lang.Ast.Attr_constr (n, a) -> Lang.Ast.Attr_constr (n, f a)
    | Lang.Ast.Comment_constr a -> Lang.Ast.Comment_constr (f a)
    | Lang.Ast.Doc_constr a -> Lang.Ast.Doc_constr (f a)
    | Lang.Ast.Instance_of (a, ty) -> Lang.Ast.Instance_of (f a, ty)
    | Lang.Ast.Cast (a, ty, o) -> Lang.Ast.Cast (f a, ty, o)
    | Lang.Ast.Castable (a, ty, o) -> Lang.Ast.Castable (f a, ty, o)
    | Lang.Ast.Typeswitch (s, cases, dv, db) ->
      Lang.Ast.Typeswitch
        (f s, List.map (fun (ty, v, b) -> (ty, v, f b)) cases, dv, f db)
    | Lang.Ast.Ifp { var; seed; body; accum } ->
      let accum =
        Option.map
          (fun (a : Lang.Ast.accum) ->
            { a with Lang.Ast.weight = Option.map f a.Lang.Ast.weight })
          accum
      in
      Lang.Ast.Ifp { var; seed = f seed; body = f body; accum }
  in
  let main = go p.Lang.Ast.main in
  let functions =
    List.map
      (fun fd -> { fd with Lang.Ast.body = go fd.Lang.Ast.body })
      p.Lang.Ast.functions
  in
  if not !done_ then
    raise (Error "seed partition requires a query with an IFP");
  { p with Lang.Ast.main; functions }

let program_functions (p : Lang.Ast.program) =
  let functions = Hashtbl.create 16 in
  List.iter
    (fun fd -> Hashtbl.replace functions fd.Lang.Ast.fname fd)
    p.Lang.Ast.functions;
  functions

let distributivity_verdicts ?registry ?(stratified = false) p =
  match first_ifp p with
  | None -> None
  | Some (var, body) ->
    let functions = program_functions p in
    let syntactic =
      Lang.Distributivity.check ~functions ~stratified var body
    in
    let algebraic =
      match plan_of_first_ifp ?registry p with
      | None -> None
      | Some (fix_id, plan) ->
        Some (Push.check ~stratified ~fix_id plan).Push.distributive
    in
    Some (syntactic, algebraic)
