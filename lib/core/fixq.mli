(** [fixq] — an inflationary fixed point operator for XQuery.

    This is the public entry point of the reproduction of Afanasiev,
    Grust, Marx, Rittinger, Teubner: {e An Inflationary Fixed Point
    Operator in XQuery} (ICDE 2008). It runs queries of the extended
    XQuery subset (including [with $x seeded by … recurse …]) on two
    engines:

    - {!Interpreter}: a conventional tree-walking processor (the Saxon
      stand-in). Its [Auto] strategy applies the {e syntactic}
      distributivity check (Figure 5) to trade Naïve for Delta.
    - {!Algebra}: the Relational-XQuery hybrid (the MonetDB/XQuery
      stand-in). Each IFP body is compiled to a Table-1 algebra plan;
      the {e algebraic} ∪ push-up (Section 4.1) decides between the µ
      and µ∆ fixpoint operators; evaluation runs over [iter|item]
      relations with staircase-join steps. Bodies outside the
      compilable subset fall back to the interpreter.
    - {!Sql}: the SQL:1999 comparison engine (Sections 2 and 6). IFP
      plans that render to a linear [WITH RECURSIVE] query (see
      {!Algebra_ir.Render_sql}) run on the {!Fixq_sqlrec} evaluator
      over materialized document relations; everything else falls back
      to the interpreter, so results stay byte-identical.

    Re-exported substrate libraries: {!Xdm} (data model), {!Lang}
    (language), {!Algebra_ir} (plans), {!Store} (pre/size/level
    encoding). *)

module Xdm = Fixq_xdm
module Lang = Fixq_lang
module Algebra_ir = Fixq_algebra
module Store = Fixq_store

(** Fixpoint algorithm selection for either engine. *)
type mode =
  | Naive  (** always Figure 3(a) / µ *)
  | Delta  (** always Figure 3(b) / µ∆ — unsound if non-distributive *)
  | Auto  (** Delta when the engine's distributivity check succeeds *)

type engine = Interpreter of mode | Algebra of mode | Sql of mode

(** Outcome of a query run, with the instrumentation that Table 2
    reports. *)
type report = {
  result : Xdm.Item.seq;
  engine : engine;
  used_delta : bool option;  (** [None] if the query had no IFP *)
  nodes_fed : int;  (** total nodes fed into recursion bodies *)
  depth : int;  (** recursion depth (IFP iterations) *)
  wall_ms : float;
  fallbacks : string list;
      (** algebra-engine IFP sites that fell back to the interpreter,
          with reasons *)
  semiring : string option;
      (** the [accumulate by] kind of the last annotated IFP, if any *)
  annotations : (string * string) list;
      (** [(serialized node, annotation)] pairs of the last annotated
          IFP, in document order — how [run]/[client] print
          [node @ annotation] *)
}

exception Error of string

(** Compile-and-run a query string. [max_iterations] bounds every IFP
    (default 1,000,000); exceeding it raises {!Error} — relevant for
    bodies with node constructors, whose fixed points may be undefined
    (Definition 2.1). [stratified] (default [false]) extends both
    [Auto] distributivity checks with the Section-6
    stratified-difference rule ([$x except R] with fixed [R]).
    [deadline] (absolute [Unix.gettimeofday] seconds) aborts the run
    with {!Error} once the wall clock passes it; enforcement is
    cooperative, checked once per fixpoint round on either engine — the
    budget knob of the long-running [fixq serve] front end.
    [domains]/[chunk_threshold] make Delta-eligible interpreter
    fixpoints run the body in parallel on that many OCaml domains
    (rounds smaller than [chunk_threshold], default 64, stay
    sequential); they do not affect µ/µ∆ plans. [round_hook] is called
    once per fixpoint round (same cooperative site as [deadline], before
    the deadline check) — the serving layer's resource governor uses it
    to abort runs whose heap growth exceeds their memory budget; any
    exception it raises propagates out of the run unconverted.
    [max_call_depth] bounds user-function recursion depth (default
    100,000; exceeding it raises {!Error}). *)
val run :
  ?registry:Xdm.Doc_registry.t ->
  ?max_iterations:int ->
  ?stratified:bool ->
  ?domains:int ->
  ?chunk_threshold:int ->
  ?deadline:float ->
  ?round_hook:(unit -> unit) ->
  ?max_call_depth:int ->
  engine:engine ->
  string ->
  report

(** Run an already-parsed program. *)
val run_program :
  ?registry:Xdm.Doc_registry.t ->
  ?max_iterations:int ->
  ?stratified:bool ->
  ?domains:int ->
  ?chunk_threshold:int ->
  ?deadline:float ->
  ?round_hook:(unit -> unit) ->
  ?max_call_depth:int ->
  engine:engine ->
  Lang.Ast.program ->
  report

(** The recursion variable and body of the first IFP in the program
    (document order, main expression before function bodies). *)
val first_ifp : Lang.Ast.program -> (string * Lang.Ast.expr) option

(** Conservative syntactic check that the expression surely evaluates
    to document-tree nodes only — never atoms or freshly constructed
    nodes. [env] lists the variables known to be node-only (the IFP
    recursion variable, for its body). The cluster scatter gate
    requires it: scattered result slices are united by portable node
    identity (document uri, preorder rank), which atoms and
    constructed nodes do not have — and a single process serializes
    such items in engine-production order, which slices cannot
    reproduce. *)
val node_only : env:string list -> Lang.Ast.expr -> bool

(** Number of [with … seeded by … recurse] sites in the whole program.
    The prepared-query layer pins a fixpoint algorithm at preparation
    time only for single-IFP programs; anything else keeps the per-site
    [Auto] decision. *)
val count_ifps : Lang.Ast.program -> int

(** The distinct literal [doc("uri")] references of the whole program
    (main expression, function bodies, global variable declarations),
    in first-occurrence order. Document-sharded routing keys on
    these. *)
val doc_uris : Lang.Ast.program -> string list

(** [partition_first_seed ~index ~count p] rewrites the {e first} IFP
    (same traversal order as {!first_ifp}) so its seed keeps only the
    [index]-th residue class modulo [count]:
    [seed\[(position() - 1) mod count = index\]]. When the IFP body is
    distributive, Theorem 3.2 makes evaluating the IFP once per slice
    and uniting the results equivalent to one evaluation of the whole
    seed — the soundness argument behind the cluster's scatter-gather
    (and the same licence that justifies Naïve→Delta). Raises {!Error}
    if the program has no IFP or the partition is malformed
    ([count < 1] or [index] outside [0 .. count-1]). *)
val partition_first_seed :
  index:int -> count:int -> Lang.Ast.program -> Lang.Ast.program

(** Both distributivity verdicts for the body of the {e first} IFP in
    the program: [(syntactic, algebraic)]. The algebraic verdict is
    [None] when the body is outside the compilable subset.
    [stratified] enables the Section-6 refinement in both checks. *)
val distributivity_verdicts :
  ?registry:Xdm.Doc_registry.t ->
  ?stratified:bool ->
  Lang.Ast.program ->
  (bool * bool option) option

(** Compile the first IFP body of a program to its algebra plan (for
    plan inspection à la Figure 9). Returns the fix-ref id and plan.
    Free variables and context of the body are materialized by
    evaluating the surrounding program as far as needed — bounded by
    [max_iterations] so preparing a divergent query terminates. *)
val plan_of_first_ifp :
  ?registry:Xdm.Doc_registry.t ->
  ?max_iterations:int ->
  Lang.Ast.program ->
  (int * Algebra_ir.Plan.t) option

(** The SQL:1999 rendering of the first IFP's optimized body — the
    [WITH RECURSIVE] query the {!Sql} engine would run at that site, or
    the reason there is none. [None] when no IFP body compiles at
    all. *)
val sql_of_first_ifp :
  ?registry:Xdm.Doc_registry.t ->
  ?max_iterations:int ->
  Lang.Ast.program ->
  (Algebra_ir.Render_sql.rendered, string) result option
