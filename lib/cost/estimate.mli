(** Static cost & cardinality analysis.

    An abstract interpreter over the AST propagates {e cardinality
    intervals} through axis steps, filters, unions and µ/µ∆ loops,
    reading per-document {!Fixq_xdm.Synopsis} summaries (DataGuide
    path counts) instead of the documents. The abstraction tracks the
    set of synopsis paths a node-valued expression can produce and a
    {e saturation} bit ("exactly all nodes at these paths"), which
    keeps common step chains ([doc(…)/a/b], [$doc//c]) {e exact}, not
    just bounded.

    Per query it yields: a per-operator estimate table (rendered by
    [fixq explain] and [fixq plan]), a certified upper bound on
    fixpoint rounds where derivable — an unannotated IFP only ever
    accumulates document nodes, so its rounds are bounded by the
    reachable-node count over the synopsis plus one — the FQ050–FQ054
    diagnostics, and a total cost estimate per engine from which the
    cheapest eligible engine is chosen ([--engine auto]).

    Everything here is an {e upper-bound} analysis: estimates are
    sound to use for admission control and round budgets, never for
    pruning results. *)

module Lang = Fixq_lang
module Xdm = Fixq_xdm

(** [{lo; hi}] with [hi = None] meaning unbounded. *)
type interval = { lo : int; hi : int option }

val exactly : int -> interval
val interval_string : interval -> string
(** ["7"] when exact, ["0..40"], ["0..∞"]. *)

(** One line of the annotated-plan table, preorder over the query. *)
type op_row = {
  op_loc : (int * int) option;  (** 1-based [line, col] *)
  op_depth : int;  (** nesting depth, for indentation *)
  op_desc : string;  (** operator rendering, e.g. ["step child::course"] *)
  op_card : interval;
  op_note : string option;  (** paths / emptiness / bound remarks *)
}

type engine_estimate = {
  eng_name : string;  (** ["interp"], ["algebra"], ["sql"] *)
  eng_cost : float;  (** abstract work units *)
  eng_native : bool;
      (** the first IFP runs natively on this engine (no interpreter
          fallback) *)
  eng_note : string;
}

type t = {
  rows : op_row list;
  result_card : interval;
  rounds_bound : int option;
      (** certified upper bound on fixpoint rounds of the first IFP;
          [None] when there is no IFP or no bound is derivable *)
  bound_reason : string;
  work : float;  (** engine-independent abstract work estimate *)
  engines : engine_estimate list;
  chosen : string;  (** cheapest engine: ["interp"|"algebra"|"sql"] *)
  choice_reason : string;
  diagnostics : Fixq_analysis.Diag.t list;
      (** FQ050 statically-empty step, FQ051 dead branch, FQ052
          statically-empty seed, FQ053 certified bound, FQ054
          uncertifiable bound *)
  docs : (string * bool) list;
      (** every [doc(…)] URI → whether a synopsis was available *)
}

(** [analyze p] — run the abstract interpreter over [p]'s main
    expression (user functions are inlined to a fixed depth).
    [registry] supplies documents/synopses; URIs that resolve to
    nothing degrade to unbounded estimates. [compiled] /
    [sql_renderable] are the prepared-query verdicts for the first IFP
    ([Some true] = the engine runs it natively), [algebra_delta] /
    [interp_delta] the distributivity verdicts — together they shape
    the per-engine costs. *)
val analyze :
  ?registry:Xdm.Doc_registry.t ->
  ?spans:Lang.Parser.Spans.t ->
  ?compiled:bool option ->
  ?sql_renderable:bool option ->
  ?algebra_delta:bool ->
  ?interp_delta:bool ->
  Lang.Ast.program ->
  t

(** Deterministic human rendering of a report: work, result
    cardinality, round bound, per-engine costs (the chosen one starred)
    and the indented per-operator table. Shared by [fixq explain] and
    the server's [explain] op. *)
val to_text : t -> string

(** Per-operator cardinality intervals for a Table-1 plan, memoized
    over the shared DAG — the [fixq plan] annotation source. Coarser
    than the AST walk (no path tracking), but honest about document
    totals: caps come from the loaded synopses. *)
val plan_cards :
  ?registry:Xdm.Doc_registry.t ->
  Fixq_algebra.Plan.t ->
  Fixq_algebra.Plan.t -> interval
