module Lang = Fixq_lang
module Xdm = Fixq_xdm
module Ast = Lang.Ast
module Axis = Xdm.Axis
module Syn = Xdm.Synopsis
module Diag = Fixq_analysis.Diag
module Plan = Fixq_algebra.Plan

(* ------------------------------------------------------------------ *)
(* Cardinality intervals                                               *)
(* ------------------------------------------------------------------ *)

type interval = { lo : int; hi : int option }

let exactly n = { lo = n; hi = Some n }
let zero = exactly 0
let one = exactly 1
let top = { lo = 0; hi = None }
let atmost n = { lo = 0; hi = Some n }

let interval_string i =
  match i.hi with
  | Some h when h = i.lo -> string_of_int h
  | Some h -> Printf.sprintf "%d..%d" i.lo h
  | None -> Printf.sprintf "%d..\xe2\x88\x9e" i.lo

let add_i a b =
  { lo = a.lo + b.lo;
    hi = (match (a.hi, b.hi) with Some x, Some y -> Some (x + y) | _ -> None) }

let mul_i a b =
  { lo = a.lo * b.lo;
    hi = (match (a.hi, b.hi) with Some x, Some y -> Some (x * y) | _ -> None) }

let hull a b =
  { lo = min a.lo b.lo;
    hi = (match (a.hi, b.hi) with Some x, Some y -> Some (max x y) | _ -> None) }

(* min of two upper bounds, keeping the given lower bound *)
let cap i c =
  match (i.hi, c) with
  | Some h, Some c -> { i with hi = Some (min h c) }
  | None, Some c -> { i with hi = Some c }
  | _, None -> i

let is_empty i = i.hi = Some 0

(* magnitude used for work accounting when a bound is unknown *)
let approx i = match i.hi with Some h -> float_of_int h | None -> 1000.0

(* ------------------------------------------------------------------ *)
(* Abstract values: cardinality × where-the-nodes-live                 *)
(* ------------------------------------------------------------------ *)

module PS = Set.Make (struct
  type t = string * string (* document uri, synopsis path key *)

  let compare = compare
end)

module SS = Set.Make (String)

(* [Paths]: document {e element} (or document-node) paths — steps stay
   inside the synopsis. [Any]: document nodes of known documents,
   unknown paths (a step re-anchors them by name totals). [Opaque]:
   atoms, constructed nodes, or nodes of unknown documents — nothing
   can be said, and fixpoint round bounds are no longer certifiable. *)
type pathset = Paths of PS.t | Any of SS.t | Opaque

type aval = {
  card : interval;
  paths : pathset;
  sat : bool;  (** exactly {e all} nodes at [paths] (Paths only) *)
}

let opaque card = { card; paths = Opaque; sat = false }

let uris_of = function
  | Paths ps -> PS.fold (fun (u, _) acc -> SS.add u acc) ps SS.empty
  | Any us -> us
  | Opaque -> SS.empty

let join_paths a b =
  match (a, b) with
  | Opaque, _ | _, Opaque -> Opaque
  | Any ua, other | other, Any ua -> Any (SS.union ua (uris_of other))
  | Paths a, Paths b -> Paths (PS.union a b)

(* ------------------------------------------------------------------ *)
(* Analysis state                                                      *)
(* ------------------------------------------------------------------ *)

type op_row = {
  op_loc : (int * int) option;
  op_depth : int;
  op_desc : string;
  op_card : interval;
  op_note : string option;
}

type engine_estimate = {
  eng_name : string;
  eng_cost : float;
  eng_native : bool;
  eng_note : string;
}

type t = {
  rows : op_row list;
  result_card : interval;
  rounds_bound : int option;
  bound_reason : string;
  work : float;
  engines : engine_estimate list;
  chosen : string;
  choice_reason : string;
  diagnostics : Diag.t list;
  docs : (string * bool) list;
}

type env = {
  registry : Xdm.Doc_registry.t option;
  spans : Lang.Parser.Spans.t option;
  syns : (string, Syn.t option) Hashtbl.t;
  id_attrs : (string, string list) Hashtbl.t;
  funcs : (string, Ast.fundef) Hashtbl.t;
  mutable rows : op_row option ref list;  (* reversed; reserved slots *)
  mutable diags : Diag.t list;
  mutable work : float;
  mutable docs : (string * bool) list;
  mutable first_bound : (int option * string) option;
      (* first IFP: certified bound (None = uncertifiable) and reason *)
  mutable quiet : bool;  (* inside speculative closure evaluation *)
  mutable inline : int;  (* user-function inlining depth left *)
}

let syn_of env uri =
  match Hashtbl.find_opt env.syns uri with
  | Some s -> s
  | None ->
    let s =
      match env.registry with
      | None -> None
      | Some registry -> Xdm.Doc_registry.synopsis ~registry uri
    in
    Hashtbl.replace env.syns uri s;
    if not (List.mem_assoc uri env.docs) then
      env.docs <- env.docs @ [ (uri, s <> None) ];
    s

let id_attrs_of env uri =
  match Hashtbl.find_opt env.id_attrs uri with
  | Some names -> names
  | None ->
    let names =
      match env.registry with
      | None -> []
      | Some registry -> (
        match Xdm.Doc_registry.find ~registry uri with
        | Some root -> (
          match root.Xdm.Node.doc with
          | Some d -> d.Xdm.Node.id_attribute_names
          | None -> [])
        | None -> [])
    in
    Hashtbl.replace env.id_attrs uri names;
    names

let loc_of env e =
  match env.spans with
  | None -> None
  | Some spans -> Lang.Parser.Spans.line_col spans e

let diag env ?at ~code ~severity msg =
  if not env.quiet then
    env.diags <-
      Diag.make ~loc:(match at with None -> None | Some e -> loc_of env e)
        ~code ~severity ~context:"main" msg
      :: env.diags

let reserve env =
  if env.quiet then None
  else begin
    let slot = ref None in
    env.rows <- slot :: env.rows;
    Some slot
  end

let fill env slot e ~depth desc card note =
  match slot with
  | None -> ()
  | Some slot ->
    slot :=
      Some
        { op_loc = loc_of env e; op_depth = depth; op_desc = desc;
          op_card = card; op_note = note }

let charge env units = if not env.quiet then env.work <- env.work +. units

(* Run [f] and scale the work it accrues by [times] — loop bodies. *)
let scaled env times f =
  let before = env.work in
  let r = f () in
  if not env.quiet then
    env.work <- before +. ((env.work -. before) *. max 1.0 times);
  r

(* ------------------------------------------------------------------ *)
(* Synopsis-backed totals                                              *)
(* ------------------------------------------------------------------ *)

(* Exact element count over a path set; [None] when any synopsis is
   missing. *)
let total_elements env = function
  | Opaque -> None
  | Any us ->
    SS.fold
      (fun u acc ->
        match (acc, syn_of env u) with
        | Some n, Some s -> Some (n + Syn.total_elements s + 1)
        | _ -> None)
      us (Some 0)
  | Paths ps ->
    PS.fold
      (fun (u, k) acc ->
        match (acc, syn_of env u) with
        | Some n, Some s -> Some (n + Syn.path_count s k)
        | _ -> None)
      ps (Some 0)

(* Keep only paths that actually hold elements. *)
let prune env ps =
  PS.filter
    (fun (u, k) ->
      match syn_of env u with Some s -> Syn.path_count s k > 0 | None -> true)
    ps

let all_paths_named env us name =
  SS.fold
    (fun u acc ->
      match syn_of env u with
      | None -> acc
      | Some s ->
        Syn.fold_paths
          (fun k count acc ->
            if count > 0 then
              let last =
                match String.rindex_opt k '/' with
                | Some i -> String.sub k (i + 1) (String.length k - i - 1)
                | None -> k
              in
              if name = "*" || last = name then PS.add (u, k) acc else acc
            else acc)
          s acc)
    us PS.empty

let last_component k =
  match String.rindex_opt k '/' with
  | Some i -> String.sub k (i + 1) (String.length k - i - 1)
  | None -> k

let parent_key k =
  match String.rindex_opt k '/' with
  | Some i -> Some (String.sub k 0 i)
  | None -> if k = "" then None else Some ""

(* ------------------------------------------------------------------ *)
(* Axis steps over the synopsis                                        *)
(* ------------------------------------------------------------------ *)

let name_of_test = function
  | Axis.Name n -> Some n
  | Axis.Kind_element (Some n) -> Some n
  | Axis.Kind_element None -> Some "*"
  | _ -> None

(* element-valued tests keep us inside the synopsis paths *)
let element_test t = name_of_test t <> None

let step_desc (s : Ast.axis_step) = "step " ^ Ast.show_axis_step s

(* Abstract axis step. Saturated contexts give exact counts for
   downward element steps; everything else is an upper bound. *)
let step_est env (ctx : aval) (s : Ast.axis_step) : aval =
  let axis = s.Ast.axis and test = s.Ast.test in
  charge env (approx ctx.card);
  let name_cap name us =
    SS.fold
      (fun u acc ->
        match (acc, syn_of env u) with
        | Some n, Some s ->
          Some (n + if name = "*" then Syn.total_elements s else Syn.name_total s name)
        | _ -> None)
      us (Some 0)
  in
  match ctx.paths with
  | Opaque -> (
    (* unknown context: cap by whole-universe name totals when the
       registry is in view *)
    match (element_test test, env.registry) with
    | true, Some registry ->
      let us = SS.of_list (Xdm.Doc_registry.uris ~registry ()) in
      let c = name_cap (Option.get (name_of_test test)) us in
      { card = (match c with Some n -> atmost n | None -> top);
        paths = Opaque; sat = false }
    | _ -> opaque top)
  | Any us when element_test test -> (
    let name = Option.get (name_of_test test) in
    match axis with
    | Axis.Child | Axis.Descendant | Axis.Descendant_or_self | Axis.Self
    | Axis.Following_sibling | Axis.Preceding_sibling | Axis.Following
    | Axis.Preceding | Axis.Parent | Axis.Ancestor | Axis.Ancestor_or_self ->
      let ps = all_paths_named env us name in
      let t = total_elements env (Paths ps) in
      { card = (match t with Some n -> atmost n | None -> top);
        paths = Paths ps; sat = false }
    | Axis.Attribute -> opaque top)
  | Any _ -> opaque top
  | Paths ps -> (
    let syn u = syn_of env u in
    let sum f =
      PS.fold
        (fun (u, k) acc ->
          match (acc, syn u) with
          | Some n, Some s -> (
            match f u s k with Some m -> Some (n + m) | None -> None)
          | _ -> None)
        ps (Some 0)
    in
    let collect f =
      PS.fold
        (fun (u, k) acc ->
          match (acc, syn u) with
          | Some set, Some s -> Some (f u s k set)
          | _ -> None)
        ps (Some PS.empty)
    in
    let named_kids s k =
      match name_of_test test with
      | Some "*" | None -> Syn.child_names s k
      | Some n -> if List.mem n (Syn.child_names s k) then [ n ] else []
    in
    let result paths ~exact_total ~fallback_hi =
      match paths with
      | None -> opaque (match fallback_hi with Some h -> atmost h | None -> top)
      | Some paths ->
        let paths = prune env paths in
        let t = total_elements env (Paths paths) in
        let card =
          match t with
          | Some n when ctx.sat -> exactly n
          | Some n ->
            cap (match fallback_hi with Some h -> atmost h | None -> top)
              (Some n)
          | None -> ( match fallback_hi with Some h -> atmost h | None -> top)
        in
        ignore exact_total;
        { card; paths = Paths paths; sat = ctx.sat && element_test test }
    in
    match (axis, element_test test) with
    | Axis.Child, true ->
      let paths =
        collect (fun u s k set ->
            List.fold_left
              (fun set n -> PS.add (u, Syn.child_key k n) set)
              set (named_kids s k))
      in
      let fanout_hi =
        match
          ( ctx.card.hi,
            sum (fun _ s k -> Some (Syn.fanout s k)) )
        with
        | Some c, Some f -> Some (c * f)
        | _ -> None
      in
      result paths ~exact_total:true ~fallback_hi:fanout_hi
    | Axis.Descendant, true | Axis.Descendant_or_self, true ->
      let rec close frontier seen =
        if PS.is_empty frontier then Some seen
        else
          match
            collect (fun _ _ _ set -> set) |> fun _ ->
            PS.fold
              (fun (u, k) acc ->
                match (acc, syn u) with
                | Some set, Some s ->
                  Some
                    (List.fold_left
                       (fun set n -> PS.add (u, Syn.child_key k n) set)
                       set (Syn.child_names s k))
                | _ -> None)
              frontier (Some PS.empty)
          with
          | None -> None
          | Some kids ->
            let fresh = PS.diff kids seen in
            close fresh (PS.union seen fresh)
      in
      (match close ps PS.empty with
      | None -> opaque top
      | Some all ->
        let all =
          if axis = Axis.Descendant_or_self then PS.union all ps else all
        in
        let keep =
          match name_of_test test with
          | Some "*" | None -> all
          | Some n -> PS.filter (fun (_, k) -> last_component k = n) all
        in
        result (Some keep) ~exact_total:true ~fallback_hi:None)
    | Axis.Self, _ ->
      let keep =
        match name_of_test test with
        | Some "*" | None -> if element_test test then ps else ps
        | Some n -> PS.filter (fun (_, k) -> last_component k = n) ps
      in
      if element_test test then
        let t = total_elements env (Paths (prune env keep)) in
        { card =
            (match t with
            | Some n when ctx.sat -> exactly n
            | Some n -> cap { lo = 0; hi = ctx.card.hi } (Some n)
            | None -> { lo = 0; hi = ctx.card.hi });
          paths = Paths (prune env keep); sat = ctx.sat }
      else { card = { lo = 0; hi = ctx.card.hi }; paths = Paths ps; sat = false }
    | Axis.Parent, _ ->
      let paths =
        PS.fold
          (fun (u, k) acc ->
            match parent_key k with
            | Some p -> PS.add (u, p) acc
            | None -> acc)
          ps PS.empty
      in
      let t = total_elements env (Paths paths) in
      { card =
          (match t with
          | Some n -> cap { lo = 0; hi = ctx.card.hi } (Some n)
          | None -> { lo = 0; hi = ctx.card.hi });
        paths = Paths paths; sat = false }
    | Axis.Ancestor, _ | Axis.Ancestor_or_self, _ ->
      let paths =
        PS.fold
          (fun (u, k) acc ->
            let rec up k acc =
              match parent_key k with
              | Some p -> up p (PS.add (u, p) acc)
              | None -> acc
            in
            up k (if axis = Axis.Ancestor_or_self then PS.add (u, k) acc else acc))
          ps PS.empty
      in
      let keep =
        match name_of_test test with
        | Some n when n <> "*" ->
          PS.filter (fun (_, k) -> last_component k = n) paths
        | _ -> paths
      in
      result (Some keep) ~exact_total:false ~fallback_hi:None
      |> fun v -> { v with sat = false }
    | Axis.Following_sibling, true | Axis.Preceding_sibling, true ->
      let paths =
        collect (fun u s k set ->
            match parent_key k with
            | None -> set
            | Some p ->
              List.fold_left
                (fun set n -> PS.add (u, Syn.child_key p n) set)
                set
                (match name_of_test test with
                | Some "*" | None -> Syn.child_names s p
                | Some n ->
                  if List.mem n (Syn.child_names s p) then [ n ] else []))
      in
      (result paths ~exact_total:false ~fallback_hi:None |> fun v ->
       { v with sat = false })
    | Axis.Following, true | Axis.Preceding, true ->
      let us = uris_of (Paths ps) in
      let keep = all_paths_named env us (Option.get (name_of_test test)) in
      (result (Some keep) ~exact_total:false ~fallback_hi:None |> fun v ->
       { v with sat = false })
    | Axis.Attribute, _ -> (
      let name =
        match test with
        | Axis.Name n -> Some n
        | Axis.Kind_attribute (Some n) -> Some n
        | Axis.Kind_attribute None -> Some "*"
        | _ -> None
      in
      match name with
      | None -> opaque zero
      | Some n ->
        let t =
          sum (fun _ s k ->
              Some
                (if n = "*" then
                   List.fold_left
                     (fun acc a -> acc + Syn.attr_count s k a)
                     0 (Syn.attr_names s k)
                 else Syn.attr_count s k n))
        in
        opaque
          (match t with
          | Some total when ctx.sat -> exactly total
          | Some total -> atmost total
          | None -> top))
    | _, false -> (
      (* text()/comment()/node() steps leave the element abstraction *)
      match axis with
      | Axis.Child | Axis.Descendant | Axis.Descendant_or_self ->
        let t =
          match test with
          | Axis.Kind_text ->
            sum (fun _ s k -> Some (Syn.text_count s k))
          | _ -> None
        in
        opaque
          (match t with
          | Some total when ctx.sat && axis = Axis.Child -> exactly total
          | Some total -> atmost total
          | None -> top)
      | _ -> opaque top))

(* ------------------------------------------------------------------ *)
(* The abstract interpreter                                            *)
(* ------------------------------------------------------------------ *)

let inline_depth = 3
let closure_rounds_max = 500
let default_rounds = 10.0

let rec est env (vars : (string * aval) list) (ctx : aval option) d
    (e : Ast.expr) : aval =
  let self = est env in
  let ctx_val () =
    match ctx with Some c -> c | None -> opaque top
  in
  match e with
  | Ast.Literal _ -> { card = one; paths = Opaque; sat = false }
  | Ast.Empty_seq -> { card = zero; paths = Opaque; sat = false }
  | Ast.Var v -> (
    match List.assoc_opt v vars with Some a -> a | None -> opaque top)
  | Ast.Context_item -> ctx_val ()
  | Ast.Root -> (
    let c = ctx_val () in
    match uris_of c.paths |> SS.elements with
    | [] -> opaque { lo = 0; hi = Some 1 }
    | us ->
      let ps =
        List.fold_left
          (fun acc u ->
            match syn_of env u with
            | Some s -> PS.add (u, Syn.root_key s) acc
            | None -> acc)
          PS.empty us
      in
      if PS.is_empty ps then opaque { lo = 0; hi = Some 1 }
      else
        { card = exactly (PS.cardinal ps); paths = Paths ps; sat = true })
  | Ast.Sequence (a, b) ->
    let va = self vars ctx d a and vb = self vars ctx d b in
    { card = add_i va.card vb.card; paths = join_paths va.paths vb.paths;
      sat = false }
  | Ast.Union (a, b) ->
    let va = self vars ctx d a and vb = self vars ctx d b in
    let slot = reserve env in
    let paths = join_paths va.paths vb.paths in
    let card =
      cap
        { lo = max va.card.lo vb.card.lo;
          hi = (add_i va.card vb.card).hi }
        (total_elements env paths)
    in
    let v = { card; paths; sat = va.sat && vb.sat } in
    fill env slot e ~depth:d "union" v.card None;
    charge env (approx va.card +. approx vb.card);
    v
  | Ast.Except (a, b) ->
    let va = self vars ctx d a and vb = self vars ctx d b in
    charge env (approx va.card +. approx vb.card);
    { card = { lo = 0; hi = va.card.hi }; paths = va.paths; sat = false }
  | Ast.Intersect (a, b) ->
    let va = self vars ctx d a and vb = self vars ctx d b in
    charge env (approx va.card +. approx vb.card);
    { card =
        { lo = 0;
          hi =
            (match (va.card.hi, vb.card.hi) with
            | Some x, Some y -> Some (min x y)
            | Some x, None | None, Some x -> Some x
            | None, None -> None) };
      paths =
        (match (va.paths, vb.paths) with
        | Paths x, Paths y -> Paths (PS.inter x y)
        | p, Opaque | Opaque, p -> p
        | p, _ -> p);
      sat = false }
  | Ast.Path (a, b) ->
    let va = self vars ctx d a in
    let item_ctx = { va with card = (if is_empty va.card then zero else one) } in
    scaled env (approx va.card) (fun () ->
        let vb = self vars (Some { item_ctx with sat = va.sat }) (d + 1) b in
        (* per-item evaluation then ddo: the abstraction already works on
           the whole set when saturated, so take vb as the union *)
        let card =
          if va.sat then vb.card
          else
            match vb.paths with
            | Paths _ ->
              cap (mul_i { lo = 0; hi = va.card.hi } vb.card)
                (total_elements env vb.paths)
            | _ -> mul_i { lo = min 1 va.card.lo; hi = va.card.hi } vb.card
        in
        { vb with card; sat = va.sat && vb.sat })
  | Ast.Axis_step s ->
    let slot = reserve env in
    let v = step_est env (ctx_val ()) s in
    let note =
      match v.paths with
      | Paths ps when PS.cardinal ps <= 4 && not (PS.is_empty ps) ->
        Some
          (String.concat ", "
             (List.map
                (fun (_, k) -> if k = "" then "/" else k)
                (PS.elements ps)))
      | Paths ps when PS.is_empty ps -> Some "statically empty"
      | _ -> None
    in
    fill env slot e ~depth:d (step_desc s) v.card note;
    let c = ctx_val () in
    if is_empty v.card && not (is_empty c.card) && c.paths <> Opaque then
      diag env ~at:e ~code:"FQ050" ~severity:Diag.Warning
        (Printf.sprintf
           "%s matches nothing in the loaded documents (synopsis-empty step)"
           (step_desc s));
    v
  | Ast.Filter (a, p) ->
    let va = self vars ctx d a in
    let slot = reserve env in
    let vp =
      scaled env (approx va.card) (fun () ->
          self vars
            (Some { va with card = (if is_empty va.card then zero else one) })
            (d + 1) p)
    in
    let positional = match p with Ast.Literal _ -> true | _ -> false in
    let v =
      if is_empty va.card then { va with card = zero; sat = false }
      else if is_empty vp.card then begin
        (* predicate can never select anything *)
        diag env ~at:e ~code:"FQ051" ~severity:Diag.Warning
          "filter predicate is statically empty — this branch selects \
           nothing (dead branch)";
        { va with card = zero; sat = false }
      end
      else if positional then
        { va with card = { lo = 0; hi = Some 1 }; sat = false }
      else { va with card = { va.card with lo = 0 }; sat = false }
    in
    fill env slot e ~depth:d "filter" v.card
      (if positional then Some "positional" else None);
    v
  | Ast.For { var; pos; source; body } ->
    let vs = self vars ctx d source in
    let slot = reserve env in
    let item = { vs with card = (if is_empty vs.card then zero else one) } in
    let vars' =
      (var, { item with sat = false })
      :: (match pos with Some p -> [ (p, opaque one) ] | None -> [])
      @ vars
    in
    let vb =
      scaled env (approx vs.card) (fun () -> self vars' ctx (d + 1) body)
    in
    let card =
      match vb.paths with
      | Paths _ ->
        cap (mul_i { lo = 0; hi = vs.card.hi } vb.card)
          (total_elements env vb.paths)
      | _ -> mul_i { lo = 0; hi = vs.card.hi } vb.card
    in
    let v = { card; paths = vb.paths; sat = false } in
    fill env slot e ~depth:d (Printf.sprintf "for $%s" var) v.card None;
    v
  | Ast.Sort { var; source; key; body; _ } ->
    let vs = self vars ctx d source in
    let item = { vs with card = (if is_empty vs.card then zero else one) } in
    let vars' = (var, { item with sat = false }) :: vars in
    scaled env (approx vs.card) (fun () ->
        ignore (self vars' ctx (d + 1) key));
    let vb =
      scaled env (approx vs.card) (fun () -> self vars' ctx (d + 1) body)
    in
    charge env (approx vs.card *. 2.0);
    { card = mul_i { lo = 0; hi = vs.card.hi } vb.card; paths = vb.paths;
      sat = false }
  | Ast.Let { var; value; body } ->
    let vv = self vars ctx d value in
    self ((var, vv) :: vars) ctx d body
  | Ast.If (c, t_, e_) ->
    let vc = self vars ctx d c in
    if is_empty vc.card then begin
      diag env ~at:t_ ~code:"FQ051" ~severity:Diag.Warning
        "condition is statically empty (effective boolean value false) — \
         the then-branch is dead";
      self vars ctx d e_
    end
    else
      let vt = self vars ctx (d + 1) t_ and ve = self vars ctx (d + 1) e_ in
      { card = hull vt.card ve.card; paths = join_paths vt.paths ve.paths;
        sat = false }
  | Ast.Quantified (_, v, s, p) ->
    let vs = self vars ctx d s in
    scaled env (approx vs.card) (fun () ->
        ignore
          (self
             ((v, { vs with card = one; sat = false }) :: vars)
             ctx (d + 1) p));
    opaque one
  | Ast.Arith (_, a, b) ->
    let va = self vars ctx d a and vb = self vars ctx d b in
    opaque
      { lo = min 1 (min va.card.lo vb.card.lo); hi = Some 1 }
  | Ast.Neg a ->
    let va = self vars ctx d a in
    opaque { lo = min 1 va.card.lo; hi = Some 1 }
  | Ast.Gen_cmp (_, a, b) | Ast.Node_is (a, b) | Ast.Node_before (a, b)
  | Ast.Node_after (a, b) ->
    let va = self vars ctx d a and vb = self vars ctx d b in
    charge env (approx va.card +. approx vb.card);
    opaque one
  | Ast.Val_cmp (_, a, b) ->
    let va = self vars ctx d a and vb = self vars ctx d b in
    opaque { lo = min 1 (min va.card.lo vb.card.lo); hi = Some 1 }
  | Ast.And (a, b) | Ast.Or (a, b) ->
    ignore (self vars ctx d a);
    ignore (self vars ctx d b);
    opaque one
  | Ast.Range (a, b) -> (
    ignore (self vars ctx d a);
    ignore (self vars ctx d b);
    match (a, b) with
    | Ast.Literal (Xdm.Atom.Int x), Ast.Literal (Xdm.Atom.Int y) ->
      if y >= x then opaque (exactly (y - x + 1)) else opaque zero
    | _ -> opaque top)
  | Ast.Call ("doc", [ Ast.Literal (Xdm.Atom.Str uri) ]) -> (
    let slot = reserve env in
    match syn_of env uri with
    | Some s ->
      let v =
        { card = one; paths = Paths (PS.singleton (uri, Syn.root_key s));
          sat = true }
      in
      fill env slot e ~depth:d (Printf.sprintf "doc(%S)" uri) v.card
        (Some (Printf.sprintf "%d nodes" (Syn.total_nodes s)));
      v
    | None ->
      fill env slot e ~depth:d (Printf.sprintf "doc(%S)" uri)
        { lo = 0; hi = Some 1 }
        (Some "no synopsis (document not loaded)");
      { card = { lo = 0; hi = Some 1 }; paths = Any (SS.singleton uri);
        sat = false })
  | Ast.Call ("doc", _) -> opaque { lo = 0; hi = Some 1 }
  | Ast.Call ("id", args) ->
    let vargs = List.map (self vars ctx d) args in
    let slot = reserve env in
    List.iter (fun v -> charge env (approx v.card)) vargs;
    let us =
      List.fold_left
        (fun acc v -> SS.union acc (uris_of v.paths))
        SS.empty vargs
    in
    let us =
      if SS.is_empty us then uris_of (ctx_val ()).paths else us
    in
    let v =
      if SS.is_empty us then opaque top
      else
        let ps =
          SS.fold
            (fun u acc ->
              match syn_of env u with
              | None -> acc
              | Some s ->
                let id_names = id_attrs_of env u in
                Syn.fold_paths
                  (fun k count acc ->
                    if
                      count > 0
                      && List.exists (fun n -> Syn.attr_count s k n > 0) id_names
                    then PS.add (u, k) acc
                    else acc)
                  s acc)
            us PS.empty
        in
        let t = total_elements env (Paths ps) in
        { card = (match t with Some n -> atmost n | None -> top);
          paths = Paths ps; sat = false }
    in
    fill env slot e ~depth:d "id(...)" v.card None;
    v
  | Ast.Call (("count" | "position" | "last" | "string-length" | "empty"
              | "exists" | "not" | "number" | "sum" | "round" | "floor"
              | "ceiling" | "abs" | "name" | "local-name" | "string"
              | "concat" | "true" | "false"), args) ->
    List.iter (fun a -> ignore (self vars ctx d a)) args;
    opaque one
  | Ast.Call (("min" | "max" | "avg" | "string-join" | "zero-or-one"
              | "exactly-one" | "data" | "distinct-values"), args) ->
    let vs = List.map (self vars ctx d) args in
    let c = List.fold_left (fun acc v -> add_i acc v.card) zero vs in
    opaque { lo = 0; hi = c.hi }
  | Ast.Call (("reverse" | "subsequence" | "insert-before" | "remove"
              | "one-or-more"), args) ->
    let vs = List.map (self vars ctx d) args in
    let c = List.fold_left (fun acc v -> add_i acc v.card) zero vs in
    let paths =
      List.fold_left (fun acc v -> join_paths acc v.paths) (Paths PS.empty) vs
    in
    { card = { lo = 0; hi = c.hi }; paths; sat = false }
  | Ast.Call ("root", [ a ]) ->
    let va = self vars ctx d a in
    est env vars (Some va) d Ast.Root
  | Ast.Call (f, args) -> (
    let vargs = List.map (self vars ctx d) args in
    match Hashtbl.find_opt env.funcs f with
    | Some fd when env.inline > 0 ->
      let saved = env.inline in
      env.inline <- env.inline - 1;
      let bindings =
        List.map2 (fun (p, _) v -> (p, v)) fd.Ast.params vargs
      in
      let r = self (bindings @ vars) None d fd.Ast.body in
      env.inline <- saved;
      r
    | Some _ ->
      (* recursion (or too deep to chase): nodes of the documents in
         scope at worst *)
      let us =
        List.fold_left
          (fun acc v -> SS.union acc (uris_of v.paths))
          SS.empty vargs
      in
      if SS.is_empty us then opaque top
      else { card = top; paths = Any us; sat = false }
    | None -> opaque top)
  | Ast.Elem_constr (_, attrs, content) ->
    List.iter
      (fun (_, pieces) ->
        List.iter
          (function
            | Ast.A_lit _ -> ()
            | Ast.A_expr a -> ignore (self vars ctx d a))
          pieces)
      attrs;
    List.iter (fun c -> ignore (self vars ctx (d + 1) c)) content;
    { card = one; paths = Opaque; sat = false }
  | Ast.Comp_elem (_, a) | Ast.Text_constr a | Ast.Attr_constr (_, a)
  | Ast.Comment_constr a | Ast.Doc_constr a ->
    ignore (self vars ctx d a);
    { card = one; paths = Opaque; sat = false }
  | Ast.Instance_of (a, _) | Ast.Castable (a, _, _) ->
    ignore (self vars ctx d a);
    opaque one
  | Ast.Cast (a, _, _) ->
    let va = self vars ctx d a in
    opaque { lo = min 1 va.card.lo; hi = Some 1 }
  | Ast.Typeswitch (s, cases, _, dflt) ->
    let vs = self vars ctx d s in
    let branches =
      List.map
        (fun (_, v, b) ->
          let vars' =
            match v with Some v -> (v, vs) :: vars | None -> vars
          in
          self vars' ctx (d + 1) b)
        cases
      @ [ self vars ctx (d + 1) dflt ]
    in
    List.fold_left
      (fun acc v ->
        { card = hull acc.card v.card; paths = join_paths acc.paths v.paths;
          sat = false })
      (List.hd branches) (List.tl branches)
  | Ast.Ifp { var; seed; body; accum } -> ifp_est env vars ctx d e ~var ~seed ~body ~accum

and ifp_est env vars ctx d e ~var ~seed ~body ~accum =
  let slot = reserve env in
  let vseed = est env vars ctx (d + 1) seed in
  if is_empty vseed.card then
    diag env ~at:seed ~code:"FQ052" ~severity:Diag.Warning
      "the fixpoint seed is statically empty — the IFP returns the empty \
       sequence without iterating";
  (* Reachability closure over the synopsis: everything an inflationary
     accumulation of document nodes can ever contain. *)
  let closure () =
    let union_tot p = total_elements env p in
    let rec go paths n =
      if n > closure_rounds_max then Error "closure did not stabilize"
      else
        let x =
          { card =
              (match union_tot paths with
              | Some t -> atmost t
              | None -> top);
            paths; sat = false }
        in
        let was_quiet = env.quiet in
        env.quiet <- true;
        let vb = est env ((var, x) :: vars) ctx (d + 1) body in
        env.quiet <- was_quiet;
        match join_paths paths vb.paths with
        | Opaque ->
          Error
            "the recursion step can produce nodes outside the loaded \
             documents (constructed nodes, atoms, or unknown paths)"
        | joined -> (
          let grew =
            match (paths, joined) with
            | Paths a, Paths b -> PS.cardinal b > PS.cardinal a
            | Paths _, Any _ -> true
            | Any a, Any b -> SS.cardinal b > SS.cardinal a
            | Any _, Paths _ -> false
            | Opaque, _ | _, Opaque -> false
          in
          if grew then go joined (n + 1)
          else
            match union_tot joined with
            | Some t -> Ok (joined, t)
            | None -> Error "a referenced document has no synopsis")
    in
    match vseed.paths with
    | Opaque -> Error "the seed's paths are not derivable from the synopsis"
    | p -> go p 0
  in
  let bound, bound_reason, reach =
    if accum <> None then
      ( None,
        "accumulate by: semiring iteration is not bounded by node counts",
        None )
    else
      match closure () with
      | Ok (paths, t) ->
        ( Some (t + 1),
          Printf.sprintf
            "node-only IFP: at most %d reachable nodes over the synopsis, \
             so at most %d rounds" t (t + 1),
          Some (paths, t) )
      | Error reason -> (None, reason, None)
  in
  (match bound with
  | Some b ->
    diag env ~at:e ~code:"FQ053" ~severity:Diag.Info
      (Printf.sprintf "certified fixpoint round bound: <= %d (%s)" b
         bound_reason)
  | None ->
    diag env ~at:e ~code:"FQ054" ~severity:Diag.Info
      (Printf.sprintf "fixpoint round bound not certifiable: %s" bound_reason));
  if env.first_bound = None && not env.quiet then
    env.first_bound <- Some (bound, bound_reason);
  (* Steady-state body estimate (visible rows + work), scaled by the
     expected number of rounds. *)
  let x_final =
    match reach with
    | Some (paths, t) -> { card = atmost t; paths; sat = false }
    | None -> (
      match join_paths vseed.paths vseed.paths with
      | p -> { card = top; paths = p; sat = false })
  in
  let rounds_est =
    match bound with
    | Some b -> float_of_int (min b 1_000_000)
    | None -> default_rounds
  in
  let vb =
    scaled env rounds_est (fun () ->
        est env ((var, x_final) :: vars) ctx (d + 1) body)
  in
  (match accum with
  | Some { Ast.weight = Some w; _ } ->
    ignore (est env ((var, x_final) :: vars) ctx (d + 1) w)
  | _ -> ());
  let v =
    match reach with
    | Some (paths, t) ->
      { card = { lo = vseed.card.lo; hi = Some t }; paths; sat = false }
    | None ->
      { card = { lo = vseed.card.lo; hi = None };
        paths = join_paths vseed.paths vb.paths; sat = false }
  in
  fill env slot e ~depth:d
    (Printf.sprintf "ifp $%s%s" var
       (match accum with
       | Some { Ast.kind; _ } ->
         " accumulate by " ^ Fixq_semiring.Semiring.kind_to_string kind
       | None -> ""))
    v.card
    (Some
       (match bound with
       | Some b -> Printf.sprintf "rounds <= %d (certified)" b
       | None -> "rounds uncertified"));
  v

(* ------------------------------------------------------------------ *)
(* Engine cost model and selection                                     *)
(* ------------------------------------------------------------------ *)

let engine_estimates ~work ~mat_nodes ~has_ifp ~compiled ~sql_renderable
    ~algebra_delta ~interp_delta =
  let delta_factor d = if d then 0.7 else 1.0 in
  let interp =
    { eng_name = "interp";
      eng_cost = work *. delta_factor interp_delta;
      eng_native = true;
      eng_note =
        (if interp_delta then "Delta (Figure 5) halves refeeding"
         else "Naive fixpoint on the tree interpreter") }
  in
  let algebra =
    match (has_ifp, compiled) with
    | false, _ | _, None ->
      { eng_name = "algebra"; eng_cost = work +. 5.0; eng_native = false;
        eng_note = "no compilable fixpoint: runs on the interpreter" }
    | true, Some true ->
      (* calibrated against bench -- cost: the relational emulation pays
         roughly a 1.4x per-unit overhead over the tree interpreter, so
         it only wins via the delta discount when the interpreter cannot
         have it (push-up holds but Figure 5 is blamed) *)
      { eng_name = "algebra";
        eng_cost = 40.0 +. (1.4 *. work *. delta_factor algebra_delta);
        eng_native = true;
        eng_note =
          (if algebra_delta then "Table-1 plan, mu-delta (push-up holds)"
           else "Table-1 plan, mu (push-up blocked)") }
    | true, Some false ->
      { eng_name = "algebra"; eng_cost = work +. 15.0; eng_native = false;
        eng_note = "body outside the compilable subset: interpreter fallback" }
  in
  let sql =
    match (has_ifp, sql_renderable) with
    | false, _ | _, None ->
      { eng_name = "sql"; eng_cost = work +. 5.0; eng_native = false;
        eng_note = "no fixpoint to render: runs on the interpreter" }
    | true, Some true ->
      (* materialization of the document relations plus a heavier
         per-unit factor: measured consistently slowest of the three *)
      { eng_name = "sql";
        eng_cost =
          60.0 +. (0.25 *. mat_nodes)
          +. (2.5 *. work *. delta_factor algebra_delta);
        eng_native = true;
        eng_note = "WITH RECURSIVE over materialized document relations" }
    | true, Some false ->
      { eng_name = "sql"; eng_cost = work +. 15.0; eng_native = false;
        eng_note = "not renderable to linear WITH RECURSIVE: fallback" }
  in
  [ interp; algebra; sql ]

let choose engines =
  let best =
    List.fold_left
      (fun acc e -> match acc with
        | Some b when b.eng_cost <= e.eng_cost -> Some b
        | _ -> Some e)
      None engines
  in
  let b = Option.get best in
  ( b.eng_name,
    Printf.sprintf "%s (cheapest: %s)"
      (String.concat ", "
         (List.map
            (fun e -> Printf.sprintf "%s %.0f" e.eng_name e.eng_cost)
            engines))
      b.eng_name )

let analyze ?registry ?spans ?(compiled = None) ?(sql_renderable = None)
    ?(algebra_delta = false) ?(interp_delta = false) (p : Ast.program) : t =
  let env =
    { registry; spans; syns = Hashtbl.create 8; id_attrs = Hashtbl.create 8;
      funcs = Hashtbl.create 8; rows = []; diags = []; work = 0.0; docs = [];
      first_bound = None; quiet = false; inline = inline_depth }
  in
  List.iter (fun fd -> Hashtbl.replace env.funcs fd.Ast.fname fd) p.Ast.functions;
  let globals =
    List.fold_left
      (fun vars (v, e) -> (v, est env vars None 0 e) :: vars)
      [] p.Ast.variables
  in
  let result = est env globals None 0 p.Ast.main in
  let has_ifp = Fixq.count_ifps p > 0 in
  let mat_nodes =
    List.fold_left
      (fun acc (uri, ok) ->
        if ok then
          match syn_of env uri with
          | Some s -> acc +. float_of_int (Syn.total_nodes s)
          | None -> acc
        else acc)
      0.0 env.docs
  in
  let work = max 1.0 env.work in
  let engines =
    engine_estimates ~work ~mat_nodes ~has_ifp ~compiled ~sql_renderable
      ~algebra_delta ~interp_delta
  in
  let chosen, choice_reason = choose engines in
  let rounds_bound, bound_reason =
    match env.first_bound with
    | Some (b, r) -> (b, r)
    | None -> (None, if has_ifp then "no bound derived" else "no fixpoint")
  in
  let diagnostics =
    List.sort_uniq
      (fun a b ->
        let c = Diag.compare a b in
        if c <> 0 then c else compare a b)
      (List.rev env.diags)
  in
  { rows = List.filter_map (fun r -> !r) (List.rev env.rows);
    result_card = result.card;
    rounds_bound; bound_reason; work; engines; chosen; choice_reason;
    diagnostics; docs = env.docs }

(* ------------------------------------------------------------------ *)
(* Human rendering (fixq explain, the explain protocol op)             *)
(* ------------------------------------------------------------------ *)

let to_text (t : t) =
  let b = Buffer.create 1024 in
  let pf fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  pf "cost estimate\n";
  pf "  work: %.0f units\n" t.work;
  pf "  result cardinality: %s\n" (interval_string t.result_card);
  (match t.rounds_bound with
  | Some n -> pf "  rounds bound: <= %d (certified)\n" n
  | None -> pf "  rounds bound: none (%s)\n" t.bound_reason);
  List.iter
    (fun (uri, ok) ->
      pf "  doc %s: %s\n" uri
        (if ok then "synopsis available" else "no synopsis"))
    t.docs;
  pf "engines\n";
  List.iter
    (fun e ->
      pf "%s %-8s %8.0f  %-8s %s\n"
        (if e.eng_name = t.chosen then "*" else " ")
        e.eng_name e.eng_cost
        (if e.eng_native then "native" else "fallback")
        e.eng_note)
    t.engines;
  pf "  chosen: %s\n" t.choice_reason;
  if t.rows <> [] then begin
    pf "operators\n";
    let loc_str r =
      match r.op_loc with
      | Some (l, c) -> Printf.sprintf "%d:%d" l c
      | None -> "-"
    in
    let w_loc =
      List.fold_left (fun w r -> max w (String.length (loc_str r))) 3 t.rows
    in
    let w_card =
      List.fold_left
        (fun w r -> max w (String.length (interval_string r.op_card)))
        4 t.rows
    in
    List.iter
      (fun r ->
        pf "  %-*s  %-*s  %s%s%s\n" w_loc (loc_str r) w_card
          (interval_string r.op_card)
          (String.make (2 * r.op_depth) ' ')
          r.op_desc
          (match r.op_note with None -> "" | Some n -> "  [" ^ n ^ "]"))
      t.rows
  end;
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Table-1 plan annotation                                             *)
(* ------------------------------------------------------------------ *)

module PH = Hashtbl.Make (struct
  type t = Plan.t

  let equal = ( == )
  let hash = Hashtbl.hash
end)

let plan_cards ?registry plan =
  let syn uri =
    match registry with
    | None -> None
    | Some registry -> Xdm.Doc_registry.synopsis ~registry uri
  in
  let uris =
    match registry with
    | None -> []
    | Some registry -> Xdm.Doc_registry.uris ~registry ()
  in
  let sum f =
    List.fold_left
      (fun acc u ->
        match (acc, syn u) with
        | Some n, Some s -> Some (n + f s)
        | _ -> None)
      (Some 0) uris
  in
  let elements_cap = sum Syn.total_elements in
  let name_cap n = sum (fun s -> Syn.name_total s n) in
  let memo = PH.create 32 in
  let rec go p =
    match PH.find_opt memo p with
    | Some c -> c
    | None ->
      let c =
        match p with
        | Plan.Lit_table (_, rows) -> exactly (List.length rows)
        | Plan.Doc _ -> one
        | Plan.Fix_ref _ -> (
          match elements_cap with Some n -> atmost n | None -> top)
        | Plan.Project (_, q) | Plan.Fun (_, _, q) | Plan.Tag (_, q)
        | Plan.Row_num (_, q) | Plan.Construct (_, q) | Plan.Template (_, q) ->
          go q
        | Plan.Select (_, q) | Plan.Distinct q ->
          { lo = 0; hi = (go q).hi }
        | Plan.Join (_, a, b) | Plan.Cross (a, b) ->
          { lo = 0; hi = (mul_i (go a) (go b)).hi }
        | Plan.Union (a, b) -> add_i (go a) (go b)
        | Plan.Difference (a, b) ->
          ignore (go b);
          { lo = 0; hi = (go a).hi }
        | Plan.Aggr (_, spec, q) ->
          let c = go q in
          if spec.Plan.agg_partition = None then one else { lo = 0; hi = c.hi }
        | Plan.Step (axis, test, _, q) -> (
          let c = go q in
          let capn =
            match name_of_test test with
            | Some n when n <> "*" -> name_cap n
            | _ -> elements_cap
          in
          match axis with
          | Axis.Self | Axis.Parent -> cap { lo = 0; hi = c.hi } capn
          | _ -> (
            match capn with Some n -> atmost n | None -> top))
        | Plan.Id_join (a, b) ->
          ignore (go b);
          cap { lo = 0; hi = (go a).hi } elements_cap
        | Plan.Mu { Plan.seed; body; _ } | Plan.Mu_delta { Plan.seed; body; _ }
          ->
          ignore (go body);
          let s = go seed in
          cap { lo = s.lo; hi = None } elements_cap
        | Plan.Iterate it -> go it.Plan.it_result
      in
      PH.replace memo p c;
      c
  in
  ignore (go plan);
  fun p -> go p
