(** A [WITH RECURSIVE] evaluator over {!Sqldb} tables — the SQL:1999
    side of the paper's Section 2 example and Section 6 discussion.

    Supported SQL subset:

    {v
    WITH RECURSIVE name(col, …) AS (
        SELECT … FROM … [WHERE …]      -- seed
      UNION ALL
        SELECT … FROM … [WHERE …]      -- body
    )
    SELECT [DISTINCT] cols FROM tables [WHERE …] ;
    v}

    where selects use [FROM t [alias], …] and conjunctive [WHERE]
    equality conditions between column references or against literals.

    The engine implements both Naïve and Delta (semi-naïve) iteration
    for the recursive table, plus the standard's {e linearity} check:
    SQL:1999 requires the recursive table to be referenced at most once
    in the body's FROM clause (Section 6 — "rigid syntactical
    restrictions … that make Delta applicable"). *)

exception Error of string

type colref = { tbl : string option; col : string }

type operand = Col of colref | Lit of Sqldb.value

type select = {
  distinct : bool;
  columns : operand list;  (** empty means [*] *)
  from : (string * string) list;  (** (table, alias) *)
  where : (operand * operand) list;  (** conjunctive equalities *)
}

type query = {
  rec_name : string;
  rec_columns : string list;
  seed : select;
  body : select;
  final : select;
}

val parse : string -> query

(** Does the body satisfy SQL:1999's linearity restriction (at most one
    reference to the recursive table)? *)
val is_linear : query -> bool

type algorithm = Naive | Delta

type run = {
  result : Sqldb.table;
  iterations : int;
  rows_fed : int;  (** total rows fed into the body across iterations *)
}

(** Evaluate. Raises {!Error} for nonlinear queries when
    [enforce_linearity] (default [true]) — matching the standard — and
    for unknown tables/columns. *)
val run :
  ?enforce_linearity:bool -> algorithm:algorithm -> Sqldb.t -> query -> run

(** Evaluate a plain (non-recursive) select, for tests. *)
val run_select : Sqldb.t -> select -> Sqldb.table

(** Parse and evaluate a plain select statement (no WITH clause). *)
val parse_select : string -> select
