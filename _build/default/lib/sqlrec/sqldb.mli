(** A miniature relational database for the SQL:1999 [WITH RECURSIVE]
    comparison (Section 2 of the paper): named tables of string/int
    cells. *)

type value = S of string | I of int

type table = { columns : string list; rows : value list list }

type t

val create : unit -> t
val add_table : t -> string -> table -> unit
val find_table : t -> string -> table option
val table_names : t -> string list

val value_equal : value -> value -> bool
val pp_value : Format.formatter -> value -> unit
val pp_table : Format.formatter -> table -> unit

(** Distinct rows (set semantics). *)
val distinct : table -> table

(** Row-set equality modulo duplicates and order. *)
val set_equal : table -> table -> bool

(** Bag difference (removes every occurrence present in the second). *)
val difference : table -> table -> table
