type value = S of string | I of int

type table = { columns : string list; rows : value list list }

type t = (string, table) Hashtbl.t

let create () : t = Hashtbl.create 8
let add_table t name table = Hashtbl.replace t (String.lowercase_ascii name) table
let find_table t name = Hashtbl.find_opt t (String.lowercase_ascii name)

let table_names t =
  Hashtbl.fold (fun k _ acc -> k :: acc) t [] |> List.sort compare

let value_equal a b =
  match (a, b) with
  | (S x, S y) -> String.equal x y
  | (I x, I y) -> Int.equal x y
  | (S x, I y) | (I y, S x) -> (
    match int_of_string_opt x with Some v -> v = y | None -> false)

let pp_value ppf = function
  | S s -> Format.fprintf ppf "'%s'" s
  | I i -> Format.pp_print_int ppf i

let pp_table ppf t =
  Format.fprintf ppf "@[<v>%s@," (String.concat " | " t.columns);
  List.iter
    (fun row ->
      Format.fprintf ppf "%s@,"
        (String.concat " | "
           (List.map (Format.asprintf "%a" pp_value) row)))
    t.rows;
  Format.fprintf ppf "@]"

let canonical row =
  List.map (function S s -> "s:" ^ s | I i -> "i:" ^ string_of_int i) row
  |> String.concat "\x00"

let distinct t =
  let seen = Hashtbl.create 64 in
  { t with
    rows =
      List.filter
        (fun row ->
          let k = canonical row in
          if Hashtbl.mem seen k then false
          else begin
            Hashtbl.add seen k ();
            true
          end)
        t.rows }

let set_equal a b =
  let key_set t =
    let s = Hashtbl.create 64 in
    List.iter (fun row -> Hashtbl.replace s (canonical row) ()) t.rows;
    s
  in
  let sa = key_set a and sb = key_set b in
  Hashtbl.length sa = Hashtbl.length sb
  && Hashtbl.fold (fun k () acc -> acc && Hashtbl.mem sb k) sa true

let difference a b =
  let forbidden = Hashtbl.create 64 in
  List.iter (fun row -> Hashtbl.replace forbidden (canonical row) ()) b.rows;
  { a with
    rows = List.filter (fun row -> not (Hashtbl.mem forbidden (canonical row))) a.rows
  }
