lib/sqlrec/sqlrec.ml: Buffer Format List Option Sqldb String
