lib/sqlrec/sqldb.mli: Format
