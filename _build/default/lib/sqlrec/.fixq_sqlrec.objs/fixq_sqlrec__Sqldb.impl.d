lib/sqlrec/sqldb.ml: Format Hashtbl Int List String
