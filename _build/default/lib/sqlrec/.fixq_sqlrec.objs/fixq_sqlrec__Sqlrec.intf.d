lib/sqlrec/sqlrec.mli: Sqldb
