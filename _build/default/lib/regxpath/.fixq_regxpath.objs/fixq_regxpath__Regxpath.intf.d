lib/regxpath/regxpath.mli: Fixq_lang Fixq_xdm Format
