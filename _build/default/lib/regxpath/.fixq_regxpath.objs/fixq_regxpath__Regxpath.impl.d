lib/regxpath/regxpath.ml: Fixq_lang Fixq_xdm Format Hashtbl List String
