(** Regular XPath (ten Cate, PODS 2006) — XPath with transitive
    closure — implemented by translation to the IFP form (Section 2 of
    the paper: [s+ ≡ with $x seeded by . recurse $x/s]).

    Grammar of path expressions:

    {v
    p ::= step | p "/" p | p "|" p | p "+" | p "*" | p "?" | "(" p ")"
          | p "[" p "]"                    (filter: existence of a path)
    step ::= axis "::" test | name | "@" name | "." | ".."
    v}

    Every Regular XPath step satisfies the distributivity conditions of
    Section 3.1 ((i) no free recursion variable, (ii) no
    [position()]/[last()], (iii) no constructors), so closures always
    qualify for Delta / µ∆ evaluation — {!to_ifp} produces bodies the
    checkers accept. *)

type t =
  | Step of Fixq_xdm.Axis.t * Fixq_xdm.Axis.test
  | Seq of t * t  (** p/p *)
  | Alt of t * t  (** p|p *)
  | Plus of t  (** transitive closure p+ *)
  | Star of t  (** reflexive-transitive closure p* *)
  | Opt of t  (** p? ≡ .|p *)
  | Test of t  (** [p] — filter on path existence *)
  | Self

exception Parse_error of string

val parse : string -> t

val pp : Format.formatter -> t -> unit

(** Translate to the XQuery subset; closures become [Ifp] forms whose
    bodies are distributivity-safe. The resulting expression denotes
    the nodes reachable from the context item. *)
val to_ifp : t -> Fixq_lang.Ast.expr

(** Evaluate from a set of start nodes (through the interpreter with
    the given strategy; [Auto] exploits Delta). *)
val eval :
  ?strategy:Fixq_lang.Eval.strategy ->
  Fixq_xdm.Node.t list ->
  t ->
  Fixq_xdm.Node.t list

(** Direct semantics (no IFP): computes the binary-relation semantics
    by breadth-first closure. Used as a test oracle against
    {!eval}. *)
val eval_reference : Fixq_xdm.Node.t list -> t -> Fixq_xdm.Node.t list
