(** Loop-lifting compiler: XQuery recursion bodies → algebra plans.

    Following the Relational XQuery architecture (Section 4), the unit
    of algebraic compilation here is the recursion body [e_rec] of an
    IFP: the compiler translates the LiXQuery constructs it contains
    into the Table-1 dialect over [iter|item] tables, with the recursion
    variable [$x] becoming a {!Plan.Fix_ref} leaf. Compilation is
    {e set-oriented}: the [pos] bookkeeping of full loop-lifting is
    omitted, which the paper itself licenses for fixpoint work (the IFP
    semantics and the distributivity notion are insensitive to
    duplicates and order — Section 4.1 "the compiler may … omit those
    parts of the plan that realize the proper XQuery order semantics").

    Plan templates: [for]-iteration maps and XPath steps are wrapped in
    {!Plan.Template} nodes ("loop", "step"), so the ∪ push-up can cross
    them in one big step (Figure 7(b)).

    Constructs outside the supported subset (node constructors,
    positional predicates, [position()]/[last()], recursive function
    calls, dynamic [doc()] URIs, ranges) raise {!Unsupported}; the
    hybrid engine then falls back to interpreted evaluation. *)

exception Unsupported of string

type compiled = {
  fix_id : int;  (** the recursion input *)
  body : Plan.t;
  binding_refs : (string * int) list;
      (** rebindable leaves for the body's other free variables (and
          ["."] for the context item): the same compiled plan serves
          every evaluation of the site — bind them via
          {!Plan_eval.run_with} *)
}

(** [body ~functions ~recursion_var ~bindings e_rec] compiles a
    recursion body. [bindings] names the variables in scope (include
    ["."] when a context item exists); each becomes a {!Plan.Fix_ref}
    leaf reported in [binding_refs]. *)
val body :
  functions:(string, Fixq_lang.Ast.fundef) Hashtbl.t ->
  recursion_var:string ->
  ?bindings:string list ->
  Fixq_lang.Ast.expr ->
  compiled

(** Compile an arbitrary closed expression (no recursion variable) for
    testing the compiler against the interpreter; same restrictions. *)
val expr :
  functions:(string, Fixq_lang.Ast.fundef) Hashtbl.t ->
  ?bindings:(string * Fixq_xdm.Item.seq) list ->
  ?context:Fixq_xdm.Item.t ->
  Fixq_lang.Ast.expr ->
  Plan.t

(** Turn an item sequence into a single-iteration [iter|item] literal
    table (iter = 1), e.g. to seed µ/µ∆. *)
val seed_table : Fixq_xdm.Item.seq -> Plan.t

(** The same encoding as a relation, for binding [Fix_ref] leaves at
    run time. *)
val items_relation : Fixq_xdm.Item.seq -> Relation.t

(** Read an [iter|item] relation back as an item sequence in document
    order (iter must be the single seed iteration). *)
val result_items : Relation.t -> Fixq_xdm.Item.seq
