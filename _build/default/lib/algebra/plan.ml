type cmp = Ceq | Cne | Clt | Cle | Cgt | Cge

type prim =
  | P_cmp of cmp
  | P_arith of Fixq_lang.Ast.arith
  | P_and
  | P_or
  | P_not
  | P_data
  | P_name
  | P_root
  | P_ebv
  | P_const of Value.t

type agg = A_count | A_sum | A_max | A_min

type join_pred = {
  equi : (string * string) list;
  theta : (string * cmp * string) list;
}

type agg_spec = {
  agg_result : string;
  agg_input : string option;
  agg_partition : string option;
}

type fun_spec = { fun_result : string; fun_args : string list }

type num_spec = {
  num_result : string;
  num_order : string list;
  num_partition : string option;
}

type t =
  | Lit_table of string list * Value.t array list
  | Doc of string
  | Fix_ref of int * string list
  | Project of (string * string) list * t
  | Select of string * t
  | Join of join_pred * t * t
  | Cross of t * t
  | Distinct of t
  | Union of t * t
  | Difference of t * t
  | Aggr of agg * agg_spec * t
  | Fun of prim * fun_spec * t
  | Tag of string * t
  | Row_num of num_spec * t
  | Step of Fixq_xdm.Axis.t * Fixq_xdm.Axis.test * string * t
  | Id_join of t * t
  | Construct of string * t
  | Mu of fix
  | Mu_delta of fix
  | Template of string * t
  | Iterate of iterate

and fix = { fix_id : int; seed : t; body : t }

and iterate = {
  it_name : string;
  it_source : t;
  it_map : t;
  it_result : t;
}

let op_symbol = function
  | Lit_table _ -> "table"
  | Doc uri -> "doc(" ^ uri ^ ")"
  | Fix_ref (i, _) -> Printf.sprintf "R%d" i
  | Project (cols, _) ->
    "π" ^ String.concat "," (List.map (fun (n, o) ->
        if n = o then n else n ^ ":" ^ o) cols)
  | Select (c, _) -> "σ" ^ c
  | Join _ -> "⋈"
  | Cross _ -> "×"
  | Distinct _ -> "δ"
  | Union _ -> "∪"
  | Difference _ -> "\\"
  | Aggr (A_count, s, _) ->
    "count" ^ (match s.agg_partition with None -> "" | Some p -> "/" ^ p)
  | Aggr (A_sum, _, _) -> "sum"
  | Aggr (A_max, _, _) -> "max"
  | Aggr (A_min, _, _) -> "min"
  | Fun (p, s, _) ->
    let sym =
      match p with
      | P_cmp Ceq -> "=" | P_cmp Cne -> "≠" | P_cmp Clt -> "<"
      | P_cmp Cle -> "≤" | P_cmp Cgt -> ">" | P_cmp Cge -> "≥"
      | P_arith Fixq_lang.Ast.Add -> "+"
      | P_arith Fixq_lang.Ast.Sub -> "-"
      | P_arith Fixq_lang.Ast.Mul -> "*"
      | P_arith Fixq_lang.Ast.Div -> "÷"
      | P_arith Fixq_lang.Ast.Idiv -> "idiv"
      | P_arith Fixq_lang.Ast.Mod -> "mod"
      | P_and -> "∧" | P_or -> "∨" | P_not -> "¬"
      | P_data -> "data" | P_name -> "name"
      | P_root -> "root" | P_ebv -> "ebv"
      | P_const v -> Format.asprintf "const %a" Value.pp v
    in
    "⊚" ^ s.fun_result ^ ":" ^ sym
  | Tag (c, _) -> "#" ^ c
  | Row_num _ -> "̺"
  | Step (axis, test, _, _) ->
    Format.asprintf "%s::%a" (Fixq_xdm.Axis.axis_to_string axis)
      Fixq_xdm.Axis.pp_test test
  | Id_join _ -> "⋈id"
  | Construct (k, _) -> "ε:" ^ k
  | Mu _ -> "µ"
  | Mu_delta _ -> "µ∆"
  | Template (n, _) -> "«" ^ n ^ "»"
  | Iterate it -> "«" ^ it.it_name ^ "»"

(* The Push? column of Table 1: operators that must consume their whole
   input to produce any output block the ∪ push-up. *)
let push_through = function
  | Project _ | Select _ | Fun _ | Tag _ | Step _ -> true
  | Join _ | Cross _ | Union _ | Id_join _ -> true
  | Distinct _ | Difference _ | Aggr _ | Row_num _ | Construct _ -> false
  | Mu _ | Mu_delta _ -> true  (* µ itself admits the push (Table 1) *)
  | Lit_table _ | Doc _ | Fix_ref _ -> true
  | Template _ | Iterate _ -> true  (* decided by the big-step check, see Push *)

let children = function
  | Lit_table _ | Doc _ | Fix_ref _ -> []
  | Project (_, p) | Select (_, p) | Distinct p | Aggr (_, _, p)
  | Fun (_, _, p) | Tag (_, p) | Row_num (_, p) | Step (_, _, _, p)
  | Construct (_, p) | Template (_, p) ->
    [ p ]
  | Join (_, a, b) | Cross (a, b) | Union (a, b) | Difference (a, b)
  | Id_join (a, b) ->
    [ a; b ]
  | Mu f | Mu_delta f -> [ f.seed; f.body ]
  | Iterate it -> [ it.it_result ]

let rec contains_fix_ref id = function
  | Fix_ref (i, _) -> i = id
  | Mu f | Mu_delta f ->
    (* A nested fixpoint's body references its own input; only the seed
       can smuggle the outer ref in. *)
    contains_fix_ref id f.seed || contains_fix_ref id f.body
  | p -> List.exists (contains_fix_ref id) (children p)

let tag_counter = ref 0

let fresh_fix_id () =
  incr tag_counter;
  !tag_counter

let bad fmt = Format.kasprintf invalid_arg fmt

let rec schema_of = function
  | Lit_table (schema, _) -> schema
  | Doc _ -> [ "item" ]
  | Fix_ref (_, schema) -> schema
  | Project (cols, p) ->
    let s = schema_of p in
    List.iter
      (fun (_, old) ->
        if not (List.mem old s) then bad "π: unknown column %s" old)
      cols;
    List.map fst cols
  | Select (c, p) ->
    let s = schema_of p in
    if not (List.mem c s) then bad "σ: unknown column %s" c;
    s
  | Join (pred, a, b) ->
    let sa = schema_of a and sb = schema_of b in
    List.iter
      (fun (lc, rc) ->
        if not (List.mem lc sa) then bad "⋈: unknown left column %s" lc;
        if not (List.mem rc sb) then bad "⋈: unknown right column %s" rc)
      pred.equi;
    sa @ List.map (fun c -> if List.mem c sa then c ^ "'" else c) sb
  | Cross (a, b) ->
    let sa = schema_of a and sb = schema_of b in
    sa @ List.map (fun c -> if List.mem c sa then c ^ "'" else c) sb
  | Distinct p -> schema_of p
  | Union (a, b) | Difference (a, b) ->
    let sa = schema_of a and sb = schema_of b in
    if List.sort compare sa <> List.sort compare sb then
      bad "∪/\\: schema mismatch";
    sa
  | Aggr (_, spec, p) ->
    let s = schema_of p in
    (match spec.agg_input with
    | Some c when not (List.mem c s) -> bad "aggr: unknown column %s" c
    | _ -> ());
    (match spec.agg_partition with
    | None -> [ spec.agg_result ]
    | Some part ->
      if not (List.mem part s) then bad "aggr: unknown partition %s" part;
      [ part; spec.agg_result ])
  | Fun (_, spec, p) ->
    let s = schema_of p in
    List.iter
      (fun c -> if not (List.mem c s) then bad "⊚: unknown column %s" c)
      spec.fun_args;
    s @ [ spec.fun_result ]
  | Tag (c, p) -> schema_of p @ [ c ]
  | Row_num (spec, p) -> schema_of p @ [ spec.num_result ]
  | Step (_, _, item, p) ->
    let s = schema_of p in
    if not (List.mem item s) then bad "step: unknown column %s" item;
    s
  | Id_join (ctx, arg) ->
    let sc = schema_of ctx and sa = schema_of arg in
    if not (List.mem "item" sc) then bad "id: ctx plan lacks item";
    if not (List.mem "item" sa) then bad "id: arg plan lacks item";
    sa
  | Construct (_, _) -> [ "iter"; "item" ]
  | Mu f | Mu_delta f ->
    let s = schema_of f.seed in
    let sb = schema_of f.body in
    if List.sort compare s <> List.sort compare sb then
      bad "µ: seed and body schemas differ";
    s
  | Template (_, p) -> schema_of p
  | Iterate it -> schema_of it.it_result
