(** Algebraic plan simplification.

    A small rewriting pass in the spirit of Pathfinder's peephole
    optimizer: idempotent δ collapses, projection fusion, identity
    projections, units of ∪ and \ (empty literal tables), keyless joins
    as ×, and δ elimination above operators that already emit distinct
    output (the step join). Rewriting is {e sharing-preserving}: each
    physical node is rewritten once and reused, so the DAG structure the
    evaluator's memoization and the push-up's template big-steps depend
    on survives (an {!Plan.Iterate}'s [it_map] keeps pointing into its
    [it_result]). *)

val optimize : Plan.t -> Plan.t

(** Number of rewrites applied by the last {!optimize} call (for tests
    and diagnostics). *)
val last_rewrite_count : unit -> int
