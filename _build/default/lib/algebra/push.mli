(** The algebraic distributivity check of Section 4.1: place a ∪ at the
    recursion input ({!Plan.Fix_ref}) and push it up towards the plan
    root (Figures 7 and 8).

    The per-operator verdicts follow the Push? column of Table 1
    (π σ ⊚ # step ⋈ × ∪ admit the push; δ \ aggregates ̺ ε block it).
    Two refinements from the paper's prose are implemented:

    - {e simplification for assessment}: since distributivity disregards
      duplicates and order (Definition 3.1), δ and ̺ operators may be
      removed from the plan before checking
      ({!simplify_for_assessment});
    - {e big steps}: compiler-emitted {!Plan.Template} fragments are
      crossed in a single step (Figure 7(b)).

    A binary operator reached by the ∪ through {e both} inputs blocks
    the push (splitting [(X∪Y) ⋈ (X∪Y)] is unsound) — except ∪
    itself. *)

type outcome = {
  distributive : bool;
  blocking : string option;  (** symbol of the operator that blocked *)
  steps : string list;  (** operators crossed, in push order *)
}

(** Check whether the ∪ can be pushed from [Fix_ref fix_id] to the plan
    root. [simplify] (default [true]) removes δ operators on the fly
    (legal for assessment). [stratified] (default [false]) additionally
    lets the ∪ cross a difference whose {e right} input is fixed —
    [(X∪Y) \ R = (X\R) ∪ (Y\R)] — the Section-6 refinement. *)
val check :
  ?simplify:bool -> ?stratified:bool -> fix_id:int -> Plan.t -> outcome

(** Strip δ and ̺ operators (legal for distributivity assessment
    only). *)
val simplify_for_assessment : Plan.t -> Plan.t

val pp_outcome : Format.formatter -> outcome -> unit
